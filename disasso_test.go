package disasso_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"disasso"
)

func TestFacadeEndToEnd(t *testing.T) {
	cfg := disasso.DefaultQuestConfig()
	cfg.NumTransactions = 500
	cfg.DomainSize = 80
	cfg.NumPatterns = 40
	cfg.Seed = 5
	d, err := disasso.GenerateQuest(cfg)
	if err != nil {
		t.Fatalf("GenerateQuest: %v", err)
	}
	a, err := disasso.Anonymize(d, disasso.Options{K: 4, M: 2, Seed: 9})
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	if err := disasso.VerifyAgainstOriginal(a, d); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	r := disasso.Reconstruct(a, 1)
	if r.Len() != d.Len() {
		t.Fatalf("reconstruction has %d records, want %d", r.Len(), d.Len())
	}
	tkd := disasso.TopKDeviation(d, r, 100, 2)
	if tkd < 0 || tkd > 1 {
		t.Errorf("tKd = %v out of range", tkd)
	}
	terms := disasso.RangeTerms(d, 10, 30)
	re := disasso.RelativeError(d, r, terms)
	if re < 0 || re > 2 {
		t.Errorf("re = %v out of range", re)
	}
	tl := disasso.TermsLost(d, a, 4)
	if tl < 0 || tl > 1 {
		t.Errorf("tlost = %v out of range", tl)
	}
	many := disasso.ReconstructMany(a, 3, 2)
	if len(many) != 3 {
		t.Fatalf("ReconstructMany returned %d", len(many))
	}
}

func TestFacadeIO(t *testing.T) {
	d := disasso.NewDataset(
		disasso.NewRecord(1, 2, 3),
		disasso.NewRecord(4),
	)
	var buf bytes.Buffer
	if err := disasso.WriteIDs(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := disasso.ReadIDs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || !back.Records[0].Equal(disasso.NewRecord(1, 2, 3)) {
		t.Errorf("round trip broken: %v", back.Records)
	}

	// Tokens in the names format are whitespace-delimited; multi-word terms
	// need interning with their own separator.
	dict := disasso.NewDictionary()
	named := disasso.NewDataset(dict.InternRecord("new-york", "air-tickets"))
	buf.Reset()
	if err := disasso.WriteNames(&buf, named, dict); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "air-tickets") {
		t.Errorf("WriteNames output %q", buf.String())
	}
	back, err = disasso.ReadNames(strings.NewReader(buf.String()), dict)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Records[0].Equal(named.Records[0]) {
		t.Error("names round trip broken")
	}
}

func TestFacadeQueryAndAudit(t *testing.T) {
	cfg := disasso.DefaultQuestConfig()
	cfg.NumTransactions = 400
	cfg.DomainSize = 60
	cfg.NumPatterns = 30
	cfg.Seed = 9
	d, err := disasso.GenerateQuest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := disasso.Anonymize(d, disasso.Options{K: 4, M: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every term of the original must be estimable with sound bounds.
	for _, term := range d.Domain() {
		s := disasso.NewRecord(term)
		est := disasso.EstimateSupport(a, s)
		orig := d.SupportOf(s)
		if orig < est.Lower || orig > est.Upper {
			t.Errorf("term %d: support %d outside [%d, %d]", term, orig, est.Lower, est.Upper)
		}
		if c := disasso.Candidates(a, s); c != est.Upper {
			t.Errorf("Candidates(%d) = %d, Upper = %d", term, c, est.Upper)
		}
	}
	if err := disasso.AuditGuarantee(a, d, 2, 4, 100, 5); err != nil {
		t.Errorf("AuditGuarantee: %v", err)
	}
}

func TestFacadeStatsAndRangeTerms(t *testing.T) {
	d := disasso.NewDataset(
		disasso.NewRecord(1, 2), disasso.NewRecord(1, 2), disasso.NewRecord(1, 2),
		disasso.NewRecord(1, 3), disasso.NewRecord(1, 3), disasso.NewRecord(1, 3),
	)
	a, err := disasso.Anonymize(d, disasso.Options{K: 3, M: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := disasso.Stats(a)
	if s.Records != 6 || s.Leaves < 1 {
		t.Errorf("Stats = %+v", s)
	}
	terms := disasso.RangeTerms(d, 0, 2)
	if len(terms) != 2 || terms[0] != 1 {
		t.Errorf("RangeTerms = %v", terms)
	}
}

func TestFacadeJSONRoundTrip(t *testing.T) {
	d := disasso.NewDataset(
		disasso.NewRecord(1, 2), disasso.NewRecord(1, 2), disasso.NewRecord(1, 2),
		disasso.NewRecord(3), disasso.NewRecord(3), disasso.NewRecord(3),
	)
	a, err := disasso.Anonymize(d, disasso.Options{K: 3, M: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := disasso.WriteJSON(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := disasso.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := disasso.VerifyAgainstOriginal(back, d); err != nil {
		t.Errorf("re-read output fails verification: %v", err)
	}
}

// Example demonstrates the basic anonymize–verify–reconstruct loop on the
// paper's motivating scenario: a web search log where the combination
// {new york, air tickets} identifies a single user.
func Example() {
	dict := disasso.NewDictionary()
	d := disasso.NewDataset(
		dict.InternRecord("new york", "air tickets", "hotels"),
		dict.InternRecord("new york", "pizza"),
		dict.InternRecord("air tickets", "visa"),
		dict.InternRecord("new york", "pizza"),
		dict.InternRecord("air tickets", "visa"),
		dict.InternRecord("new york", "pizza", "visa"),
	)
	a, err := disasso.Anonymize(d, disasso.Options{K: 2, M: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	if err := disasso.VerifyAgainstOriginal(a, d); err != nil {
		panic(err)
	}
	fmt.Println("records:", a.NumRecords())
	fmt.Println("verified: k =", a.K, "m =", a.M)
	// Output:
	// records: 6
	// verified: k = 2 m = 2
}
