package disasso_test

import (
	"fmt"

	"disasso"
)

// ExampleAnonymize shows the minimal publish pipeline: anonymize, verify,
// inspect.
func ExampleAnonymize() {
	d := disasso.NewDataset(
		disasso.NewRecord(1, 2), disasso.NewRecord(1, 2), disasso.NewRecord(1, 2),
		disasso.NewRecord(3, 4), disasso.NewRecord(3, 4), disasso.NewRecord(3, 4),
	)
	a, err := disasso.Anonymize(d, disasso.Options{K: 3, M: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	if err := disasso.VerifyAgainstOriginal(a, d); err != nil {
		panic(err)
	}
	fmt.Println("records:", a.NumRecords())
	// Output:
	// records: 6
}

// ExampleEstimateSupport shows analysis on the published form without
// reconstructing: supports come back as certain lower bounds, sound upper
// bounds and expected values.
func ExampleEstimateSupport() {
	d := disasso.NewDataset(
		disasso.NewRecord(1, 2), disasso.NewRecord(1, 2), disasso.NewRecord(1, 2),
		disasso.NewRecord(1, 2), disasso.NewRecord(1), disasso.NewRecord(2),
	)
	a, err := disasso.Anonymize(d, disasso.Options{K: 3, M: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	est := disasso.EstimateSupport(a, disasso.NewRecord(1, 2))
	fmt.Printf("pair support in [%d, %d]\n", est.Lower, est.Upper)
	// Output:
	// pair support in [4, 4]
}

// ExampleReconstruct shows sampling a plausible original dataset and mining
// it.
func ExampleReconstruct() {
	d := disasso.NewDataset(
		disasso.NewRecord(1, 2), disasso.NewRecord(1, 2), disasso.NewRecord(1, 2),
		disasso.NewRecord(1, 3), disasso.NewRecord(1, 3), disasso.NewRecord(1, 3),
	)
	a, err := disasso.Anonymize(d, disasso.Options{K: 3, M: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	r := disasso.Reconstruct(a, 7)
	fmt.Println("records:", r.Len(), "tKd:", disasso.TopKDeviation(d, r, 5, 2))
	// Output:
	// records: 6 tKd: 0
}

// ExampleCandidates shows the adversary's view: how many records match a
// piece of background knowledge.
func ExampleCandidates() {
	d := disasso.NewDataset(
		disasso.NewRecord(1, 2, 9), disasso.NewRecord(1, 2), disasso.NewRecord(1, 2),
		disasso.NewRecord(1, 2), disasso.NewRecord(1), disasso.NewRecord(2),
	)
	a, err := disasso.Anonymize(d, disasso.Options{K: 3, M: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	// The adversary knows one user searched for both 1 and 2.
	c := disasso.Candidates(a, disasso.NewRecord(1, 2))
	fmt.Println("at least k candidates:", c >= 3)
	// Output:
	// at least k candidates: true
}
