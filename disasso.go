// Package disasso is a Go implementation of anonymization by disassociation
// for sparse multidimensional (set-valued) data, reproducing Terrovitis,
// Liagouris, Mamoulis & Skiadopoulos: "Privacy Preservation by
// Disassociation", PVLDB 5(10), 2012.
//
// Disassociation protects against identity disclosure under the
// k^m-anonymity model: an adversary who knows up to M terms of a record
// (search queries, purchased items, clicked URLs) cannot narrow it down to
// fewer than K candidate records in any original dataset consistent with the
// published form. Unlike generalization or suppression, every original term
// survives publication; what is hidden is which infrequent combinations of
// terms co-occurred in a record.
//
// The published form partitions records into clusters, each cluster into
// k^m-anonymous record chunks plus a term chunk, and optionally joins
// clusters sharing refining terms into joint clusters with shared chunks:
//
//	d, _ := disasso.ReadIDs(file)
//	a, err := disasso.Anonymize(d, disasso.Options{K: 5, M: 2})
//	...
//	sample := disasso.Reconstruct(a, seed) // one plausible original dataset
//
// Analysts either work on the disassociated form directly (its itemset
// supports are certain lower bounds — see LowerBoundSupports) or mine any
// number of reconstructed datasets, averaging results across them.
package disasso

import (
	"fmt"
	"io"
	"math/rand/v2"

	"disasso/internal/anonymity"
	"disasso/internal/attack"
	"disasso/internal/breach"
	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/load"
	"disasso/internal/metrics"
	"disasso/internal/query"
	"disasso/internal/quest"
	"disasso/internal/reconstruct"
	"disasso/internal/server"
	"disasso/internal/shard"
)

// Core data model, re-exported from the internal packages so that library
// users interact with one import path.
type (
	// Term identifies a term of the domain (a query, product, URL...).
	Term = dataset.Term
	// Record is a normalized set of terms.
	Record = dataset.Record
	// Dataset is a bag of records.
	Dataset = dataset.Dataset
	// Dictionary maps external term strings to Terms and back.
	Dictionary = dataset.Dictionary
	// Options configures Anonymize; K and M are the k^m-anonymity
	// parameters.
	Options = core.Options
	// Anonymized is the published disassociated dataset.
	Anonymized = core.Anonymized
	// Cluster is one simple cluster of the published form.
	Cluster = core.Cluster
	// Chunk is a record chunk or shared chunk.
	Chunk = core.Chunk
	// ClusterNode is a node of the published cluster forest (leaf or joint).
	ClusterNode = core.ClusterNode
)

// NewRecord builds a normalized record from the given terms.
func NewRecord(terms ...Term) Record { return dataset.NewRecord(terms...) }

// NewDataset wraps records (normalized in place) into a dataset.
func NewDataset(records ...Record) *Dataset {
	d := dataset.New(len(records))
	for _, r := range records {
		d.Add(r)
	}
	return d
}

// NewDictionary returns an empty term dictionary.
func NewDictionary() *Dictionary { return dataset.NewDictionary() }

// ReadIDs parses a dataset of integer term IDs, one record per line.
func ReadIDs(r io.Reader) (*Dataset, error) { return dataset.ReadIDs(r) }

// WriteIDs writes a dataset as integer term IDs, one record per line.
func WriteIDs(w io.Writer, d *Dataset) error { return dataset.WriteIDs(w, d) }

// ReadNames parses a dataset of whitespace-separated term names, interning
// them in dict.
func ReadNames(r io.Reader, dict *Dictionary) (*Dataset, error) {
	return dataset.ReadNames(r, dict)
}

// WriteNames writes a dataset through the dictionary.
func WriteNames(w io.Writer, d *Dataset, dict *Dictionary) error {
	return dataset.WriteNames(w, d, dict)
}

// Anonymize runs the disassociation pipeline (HORPART, VERPART, REFINE) and
// returns the published k^m-anonymous dataset. The input is unchanged.
func Anonymize(d *Dataset, opts Options) (*Anonymized, error) {
	return core.Anonymize(d, opts)
}

// Incremental delta republish: a publish that retains its shard-plan state
// can absorb batches of appended and removed records at a cost proportional
// to the churn, not the dataset — only the shards the delta touches are
// re-anonymized, and the published bytes are exactly what a from-scratch
// Anonymize over the updated records would produce.
type (
	// RepublishState is the retained state of AnonymizeWithState. Immutable:
	// ApplyDelta returns a successor state and leaves the receiver valid.
	RepublishState = core.RepubState
	// RepublishDelta is one batch of removals and appends.
	RepublishDelta = core.Delta
	// RepublishStats reports what a delta republish recomputed.
	RepublishStats = core.RepublishStats
)

// ErrRecordNotFound reports a delta removal of a record not present in the
// dataset; the delta is rejected as a whole.
var ErrRecordNotFound = core.ErrRecordNotFound

// AnonymizeWithState is Anonymize plus retained delta-republish state: the
// publication is byte-identical to Anonymize(d, opts), and the returned state
// accepts RepublishState.Apply calls for incremental republishes. Publish
// with Options.MaxShardRecords > 0 — a single global shard makes every delta
// a full republish.
func AnonymizeWithState(d *Dataset, opts Options) (*Anonymized, *RepublishState, error) {
	return core.AnonymizeWithState(d, opts)
}

// StreamOptions configures AnonymizeStream: the core anonymization
// parameters plus the memory budget, spill directory and output format of
// the sharded streaming engine.
type StreamOptions = shard.Options

// StreamStats reports what a streaming run did: records and terms seen,
// shards processed, clusters published, the shard cut used and how much data
// spilled to temp files.
type StreamStats = shard.Stats

// AnonymizeStream anonymizes a dataset too large to hold in memory: records
// stream in from r (the text format ReadIDs parses), are cut into shards
// along HORPART's own split boundaries, anonymized shard by shard within the
// configured memory budget (spilling to temp files as needed), and published
// incrementally to w. The output is byte-identical to Anonymize +
// WriteBinary (or WriteJSON) on the same records with the same effective
// options, including the derived Options.MaxShardRecords reported in
// StreamStats.ShardRecords.
func AnonymizeStream(r io.Reader, w io.Writer, opts StreamOptions) (StreamStats, error) {
	return shard.Anonymize(r, w, opts)
}

// Verify independently re-checks every privacy condition of the published
// dataset (chunk k^m-anonymity, the Lemma 2 record-count condition, Property
// 1 on shared chunks, structural invariants) and returns nil when all hold.
func Verify(a *Anonymized) error {
	return anonymity.Verify(a).Err()
}

// VerifyAgainstOriginal additionally cross-checks record counts and domain
// coverage against the original dataset.
func VerifyAgainstOriginal(a *Anonymized, d *Dataset) error {
	return anonymity.VerifyAgainstOriginal(a, d).Err()
}

// Reconstruct samples one plausible original dataset D' ∈ I(D_A).
func Reconstruct(a *Anonymized, seed uint64) *Dataset {
	return reconstruct.Sample(a, rand.New(rand.NewPCG(seed, 0x5EED)))
}

// ReconstructMany samples n independent reconstructions.
func ReconstructMany(a *Anonymized, n int, seed uint64) []*Dataset {
	return reconstruct.SampleMany(a, n, rand.New(rand.NewPCG(seed, 0x5EED)))
}

// TopKDeviation computes the tKd information-loss metric between the
// original records and published (e.g. reconstructed) records: the fraction
// of the original's top-K frequent itemsets (of size up to maxSize) missing
// from the published top-K.
func TopKDeviation(original, published *Dataset, k, maxSize int) float64 {
	return metrics.TopKDeviation(original.Records, published.Records, k, maxSize)
}

// RelativeError computes the re metric: the mean relative error of pair
// supports over the given terms, in [0, 2].
func RelativeError(original, published *Dataset, terms []Term) float64 {
	return metrics.RelativeError(original.Records, published.Records, terms)
}

// RangeTerms returns the dataset's terms ranked [lo, hi) by descending
// support — e.g. RangeTerms(d, 200, 220) for the paper's re convention.
func RangeTerms(d *Dataset, lo, hi int) []Term {
	return metrics.RangeTerms(d, lo, hi)
}

// TermsLost computes the tlost metric: the fraction of terms frequent in the
// original (support ≥ k) that the anonymization left only in term chunks.
func TermsLost(d *Dataset, a *Anonymized, k int) float64 {
	return metrics.TermsLost(d, a, k)
}

// Summary describes the shape of a published dataset (clusters, chunks,
// subrecords, term-chunk load) — what a publisher inspects before release.
type Summary = core.Summary

// Stats summarizes the published form.
func Stats(a *Anonymized) Summary { return a.Stats() }

// SupportEstimate carries the three support estimators computable directly
// on the published form (Section 6): certain lower bound, reconstruction
// upper bound, and the expected value under the probabilistic chunk model.
type SupportEstimate = query.Estimate

// EstimateSupport estimates an itemset's support from the published form
// alone, without sampling reconstructions, by a linear scan over the
// clusters. For repeated queries over one publication, build a SupportIndex
// instead — same estimates, sublinear per query.
func EstimateSupport(a *Anonymized, itemset Record) SupportEstimate {
	return query.Support(a, itemset)
}

// SupportIndex answers support queries through an inverted term index over
// the published form: each query visits only the clusters containing every
// term of the itemset, and singleton estimates are precomputed. Estimates
// are identical to EstimateSupport. A SupportIndex is immutable and safe
// for concurrent use.
type SupportIndex = query.Estimator

// NewSupportIndex builds the inverted index over a published dataset. The
// publication must not be mutated afterwards.
func NewSupportIndex(a *Anonymized) *SupportIndex {
	return query.NewEstimator(a)
}

// HTTP query service (cmd/disassod): request and response wire types,
// re-exported so API clients can marshal against the same definitions the
// server uses.
type (
	// ServerOptions configures NewServer.
	ServerOptions = server.Options
	// ServerDatasetInfo describes one registered dataset.
	ServerDatasetInfo = server.DatasetInfo
	// ServerListEntry is one dataset in the listing: its info plus the cold
	// (recovered-from-disk) and mapped serving-tier facts.
	ServerListEntry = server.ListEntry
	// ServerListResponse answers GET /v1/datasets.
	ServerListResponse = server.ListResponse
	// ServerStatsResponse answers GET /v1/datasets/{name}/stats.
	ServerStatsResponse = server.StatsResponse
	// ServerSupportRequest is the body of POST .../support.
	ServerSupportRequest = server.SupportRequest
	// ServerSupportResponse answers a support request.
	ServerSupportResponse = server.SupportResponse
	// ServerItemsetEstimate is one itemset's served support estimate.
	ServerItemsetEstimate = server.ItemsetEstimate
	// ServerReconstructRequest is the body of POST .../reconstruct.
	ServerReconstructRequest = server.ReconstructRequest
	// ServerReconstructResponse carries sampled reconstructions.
	ServerReconstructResponse = server.ReconstructResponse
	// ServerMetricsResponse answers GET .../metrics.
	ServerMetricsResponse = server.MetricsResponse
	// ServerDeltaResponse answers POST .../append and .../remove.
	ServerDeltaResponse = server.DeltaResponse
	// ServerErrorResponse is the body of every non-2xx answer.
	ServerErrorResponse = server.ErrorResponse
	// Server is the HTTP query service itself. It implements http.Handler;
	// beyond serving it exposes Recover, which repopulates the registry from
	// ServerOptions.DataDir snapshot files in O(files) — no re-anonymization,
	// no re-indexing.
	Server = server.Server
	// ServerRecoveryReport says what a Recover scan loaded and skipped.
	ServerRecoveryReport = server.RecoveryReport
	// ServerSkippedFile is one file Recover passed over, with the reason.
	ServerSkippedFile = server.SkippedFile
)

// NewServer returns the HTTP query service serving the disassod API:
// dataset publishing (in-memory or streaming), itemset support estimates
// over the inverted index (memoized by a bounded per-snapshot support cache,
// ServerOptions.SupportCacheEntries), reconstruction sampling, utility
// metrics and stats. With ServerOptions.DataDir set, publications persist as
// snapshot files and (*Server).Recover restores them after a restart. The
// server is safe for concurrent use.
func NewServer(opts ServerOptions) *Server {
	return server.New(opts)
}

// Workload modeling (cmd/loadbench): seeded deterministic query streams
// drawn from a published snapshot's own term domain — Zipf-skewed singleton
// supports, correlated itemsets from co-occurring cluster terms,
// reconstruction calls, publish/delete churn and append/remove delta
// batches — described by a small text mix spec. The same machinery drives
// load benchmarks and the correctness-under-concurrency soak tests.
type (
	// WorkloadSpec is a parsed workload mix (see ParseWorkloadSpec).
	WorkloadSpec = load.Spec
	// WorkloadEntry is one weighted mix entry.
	WorkloadEntry = load.Entry
	// WorkloadModel compiles a spec against one publication; immutable and
	// safe for concurrent use.
	WorkloadModel = load.Model
	// WorkloadStream is one client's deterministic op stream.
	WorkloadStream = load.Stream
	// WorkloadOp is one generated operation.
	WorkloadOp = load.Op
	// WorkloadOpKind discriminates WorkloadOp operations.
	WorkloadOpKind = load.OpKind
	// LatencyHistogram is the bounded-memory log-linear latency histogram
	// loadbench reports quantiles from (deterministic: the same samples
	// always yield the same p50/p95/p99).
	LatencyHistogram = load.Histogram
)

// Workload op kinds a WorkloadStream emits.
const (
	WorkloadSupport     = load.OpSupport
	WorkloadReconstruct = load.OpReconstruct
	WorkloadPublish     = load.OpPublish
	WorkloadDelete      = load.OpDelete
	WorkloadAppend      = load.OpAppend
	WorkloadRemove      = load.OpRemove
)

// ParseWorkloadSpec parses the workload mix text format: one entry per
// line or ';'-separated, `kind key=value ...` with '#' comments, kinds
// singleton/itemset/reconstruct/publish/delete/append/remove. See
// load.ParseSpec for the per-kind parameters.
func ParseWorkloadSpec(text string) (*WorkloadSpec, error) {
	return load.ParseSpec(text)
}

// DefaultWorkloadSpec returns the built-in mixed read-heavy workload.
func DefaultWorkloadSpec() *WorkloadSpec { return load.DefaultSpec() }

// NewWorkloadModel compiles a workload spec against a publication. Streams
// handed out by the model are pure functions of (publication, spec, seed,
// client id) — same inputs, same ops.
func NewWorkloadModel(a *Anonymized, spec *WorkloadSpec, seed uint64) (*WorkloadModel, error) {
	return load.NewModel(a, spec, seed)
}

// Cover-problem breach auditing: k^m-anonymity bounds how few candidate
// records an adversary can reach, but combinations of chunks covering a
// cluster can still let term associations be inferred with probability above
// 1/k (the cover problem; Terrovitis et al. Section 5.2). AuditBreaches
// detects such breaches on the published form; Options.SafeDisassociation
// repairs them at publish time by merging or demoting the offending chunks.
type (
	// BreachReport is a full cover-problem audit of a publication.
	BreachReport = breach.Report
	// BreachFinding is one itemset whose association probability exceeds 1/k.
	BreachFinding = breach.Finding
	// ServerBreachResponse answers GET /v1/datasets/{name}/breaches.
	ServerBreachResponse = server.BreachResponse
)

// AuditBreaches runs the cover-problem breach detector over every published
// cluster and returns the findings, worst first. A publication produced with
// Options.SafeDisassociation audits clean.
func AuditBreaches(a *Anonymized) *BreachReport { return breach.Audit(a) }

// Candidates returns how many records an adversary holding the given
// background knowledge must consider — the quantity the k^m guarantee bounds
// below by K (or zero, when the combination never existed).
func Candidates(a *Anonymized, knowledge Record) int {
	return attack.Candidates(a, knowledge)
}

// AuditGuarantee sweeps adversary knowledge drawn from the original records
// (random subsets of up to m terms, trials samples) plus every single term,
// and returns an error describing the first k^m violation found, if any.
func AuditGuarantee(a *Anonymized, d *Dataset, m, k, trials int, seed uint64) error {
	if v := attack.AuditTerms(a, k); len(v) > 0 {
		return fmt.Errorf("disasso: term %v has only %d candidates (k=%d)", v[0].Knowledge, v[0].Candidates, k)
	}
	rng := rand.New(rand.NewPCG(seed, 0xA0D17))
	if v := attack.AuditRecords(a, d, m, k, trials, rng); len(v) > 0 {
		return fmt.Errorf("disasso: knowledge %v has only %d candidates (k=%d)", v[0].Knowledge, v[0].Candidates, k)
	}
	return nil
}

// WriteJSON serializes a published dataset as indented JSON — the archival
// wire format of cmd/disasso.
func WriteJSON(w io.Writer, a *Anonymized) error { return core.WriteJSON(w, a) }

// ReadJSON parses a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Anonymized, error) { return core.ReadJSON(r) }

// WriteBinary serializes a published dataset in the compact delta-encoded
// binary format (roughly 8× smaller than JSON on large publications).
func WriteBinary(w io.Writer, a *Anonymized) error { return core.WriteBinary(w, a) }

// ReadBinary parses a dataset written by WriteBinary.
func ReadBinary(r io.Reader) (*Anonymized, error) { return core.ReadBinary(r) }

// QuestConfig parameterizes the bundled IBM Quest market-basket generator.
type QuestConfig = quest.Config

// DefaultQuestConfig returns the paper's synthetic defaults (1M records, 5k
// terms, average record length 10).
func DefaultQuestConfig() QuestConfig { return quest.DefaultConfig() }

// GenerateQuest produces a synthetic transactional dataset with the classic
// Agrawal–Srikant procedure; same seed, same dataset.
func GenerateQuest(cfg QuestConfig) (*Dataset, error) {
	g, err := quest.New(cfg)
	if err != nil {
		return nil, err
	}
	return g.Generate(), nil
}
