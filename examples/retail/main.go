// Retail: anonymize a market-basket dataset (IBM Quest synthetic, the
// paper's synthetic workload) and measure what an analyst keeps: frequent
// itemsets, pair supports, and the benefit of averaging over several
// reconstructions (the paper's Figure 7d effect).
//
//	go run ./examples/retail
package main

import (
	"fmt"
	"log"

	"disasso"
)

func main() {
	cfg := disasso.DefaultQuestConfig()
	cfg.NumTransactions = 20_000
	cfg.DomainSize = 800
	cfg.AvgTransLen = 8
	cfg.Seed = 11
	d, err := disasso.GenerateQuest(cfg)
	if err != nil {
		log.Fatal(err)
	}
	st := d.ComputeStats()
	fmt.Printf("market-basket data: %d transactions, %d products, avg basket %.1f\n\n",
		st.NumRecords, st.DomainSize, st.AvgRecord)

	a, err := disasso.Anonymize(d, disasso.Options{K: 5, M: 2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := disasso.VerifyAgainstOriginal(a, d); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymized at k=5, m=2: %d clusters\n\n", len(a.Clusters))

	// Frequent-itemset utility: how much of the original top-200 an analyst
	// mining one reconstruction recovers.
	r := disasso.Reconstruct(a, 1)
	for _, topK := range []int{50, 100, 200} {
		tkd := disasso.TopKDeviation(d, r, topK, 3)
		fmt.Printf("top-%-3d itemsets preserved: %5.1f%%\n", topK, (1-tkd)*100)
	}

	// Pair-support accuracy at different popularity depths, averaged over
	// increasingly many reconstructions.
	fmt.Printf("\nrelative error of pair supports (0 exact … 2 useless):\n")
	fmt.Printf("%-24s %8s %8s %8s\n", "term popularity rank", "1 rec.", "5 rec.", "10 rec.")
	rs := disasso.ReconstructMany(a, 10, 77)
	for _, lo := range []int{0, 50, 100, 200} {
		terms := disasso.RangeTerms(d, lo, lo+20)
		if len(terms) == 0 {
			continue
		}
		re1 := avgRE(d, rs[:1], terms)
		re5 := avgRE(d, rs[:5], terms)
		re10 := avgRE(d, rs, terms)
		fmt.Printf("%-24s %8.3f %8.3f %8.3f\n", fmt.Sprintf("%dth–%dth", lo, lo+20), re1, re5, re10)
	}
}

// avgRE computes the relative error against pair supports averaged across
// reconstructions, mirroring the paper's Figure 7d protocol.
func avgRE(d *disasso.Dataset, rs []*disasso.Dataset, terms []disasso.Term) float64 {
	// Average the published pair supports by concatenating the
	// reconstructions and dividing — equivalent to averaging supports.
	merged := disasso.NewDataset()
	for _, r := range rs {
		merged.Records = append(merged.Records, r.Records...)
	}
	// RelativeError compares so against sp/len(rs) implicitly only if we
	// scale; easiest is to replicate the original the same number of times.
	scaledOrig := disasso.NewDataset()
	for range rs {
		scaledOrig.Records = append(scaledOrig.Records, d.Records...)
	}
	return disasso.RelativeError(scaledOrig, merged, terms)
}
