// Audit: publish a dataset, then interrogate the published form the way a
// data analyst and a privacy officer would — support estimation without
// reconstruction (Section 6's probabilistic querying) and an adversary
// sweep validating the k^m guarantee empirically (Section 5).
//
//	go run ./examples/audit
package main

import (
	"fmt"
	"log"

	"disasso"
)

func main() {
	// A mid-sized market-basket dataset.
	cfg := disasso.DefaultQuestConfig()
	cfg.NumTransactions = 10_000
	cfg.DomainSize = 600
	cfg.AvgTransLen = 7
	cfg.Seed = 31
	d, err := disasso.GenerateQuest(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const k, m = 5, 2
	a, err := disasso.Anonymize(d, disasso.Options{K: k, M: m, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}

	// The publisher's pre-release checklist: structural verification plus an
	// empirical adversary audit.
	if err := disasso.VerifyAgainstOriginal(a, d); err != nil {
		log.Fatal("verification failed: ", err)
	}
	if err := disasso.AuditGuarantee(a, d, m, k, 500, 99); err != nil {
		log.Fatal("audit failed: ", err)
	}
	fmt.Printf("published form verified and audited (k=%d, m=%d)\n\n", k, m)
	fmt.Println(disasso.Stats(a))

	// The analyst's view: query supports straight off the published form.
	fmt.Printf("\n%-28s %8s %8s %10s %10s\n", "itemset", "original", "lower", "upper", "expected")
	top := d.TermsByFrequency()
	queries := []disasso.Record{
		disasso.NewRecord(top[0]),
		disasso.NewRecord(top[0], top[1]),
		disasso.NewRecord(top[10], top[11]),
		disasso.NewRecord(top[100], top[101]),
	}
	for _, q := range queries {
		est := disasso.EstimateSupport(a, q)
		fmt.Printf("%-28v %8d %8d %10d %10.1f\n",
			q, d.SupportOf(q), est.Lower, est.Upper, est.Expected)
	}

	// The adversary's view: candidate sets for knowledge of growing size.
	fmt.Printf("\nadversary candidates (k = %d):\n", k)
	for _, q := range queries {
		fmt.Printf("  knows %-24v → %d candidate records\n", q, disasso.Candidates(a, q))
	}
}
