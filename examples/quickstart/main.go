// Quickstart: anonymize the paper's running example (Figure 2) and inspect
// the published form.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"disasso"
)

func main() {
	// The web search log of Figure 2a: one record per user.
	dict := disasso.NewDictionary()
	d := disasso.NewDataset(
		dict.InternRecord("itunes", "flu", "madonna", "ikea", "ruby"),
		dict.InternRecord("madonna", "flu", "viagra", "ruby", "audi-a4", "sony-tv"),
		dict.InternRecord("itunes", "madonna", "audi-a4", "ikea", "sony-tv"),
		dict.InternRecord("itunes", "flu", "viagra"),
		dict.InternRecord("itunes", "flu", "madonna", "audi-a4", "sony-tv"),
		dict.InternRecord("madonna", "digital-camera", "panic-disorder", "playboy"),
		dict.InternRecord("iphone-sdk", "madonna", "ikea", "ruby"),
		dict.InternRecord("iphone-sdk", "digital-camera", "madonna", "playboy"),
		dict.InternRecord("iphone-sdk", "digital-camera", "panic-disorder"),
		dict.InternRecord("iphone-sdk", "digital-camera", "madonna", "ikea", "ruby"),
	)

	// k^m-anonymity with k=3, m=2: an adversary knowing any 2 queries of a
	// user faces at least 3 candidate records.
	a, err := disasso.Anonymize(d, disasso.Options{K: 3, M: 2, MaxClusterSize: 6, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := disasso.VerifyAgainstOriginal(a, d); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("anonymized %d records into %d top-level clusters (k=%d, m=%d)\n\n",
		a.NumRecords(), len(a.Clusters), a.K, a.M)
	for i, node := range a.Clusters {
		printNode(dict, node, i, 0)
	}

	// Sample one plausible original dataset and show it.
	fmt.Println("one reconstructed dataset:")
	r := disasso.Reconstruct(a, 42)
	if err := disasso.WriteNames(os.Stdout, r, dict); err != nil {
		log.Fatal(err)
	}
}

func printNode(dict *disasso.Dictionary, n *disasso.ClusterNode, idx, depth int) {
	pad := strings.Repeat("  ", depth)
	if n.IsLeaf() {
		cl := n.Simple
		fmt.Printf("%scluster %d (|P|=%d)\n", pad, idx, cl.Size)
		for j, c := range cl.RecordChunks {
			fmt.Printf("%s  record chunk %d over {%s}:\n", pad, j, strings.Join(dict.Names(c.Domain), ", "))
			for _, sr := range c.Subrecords {
				fmt.Printf("%s    {%s}\n", pad, strings.Join(dict.Names(sr), ", "))
			}
		}
		fmt.Printf("%s  term chunk: {%s}\n\n", pad, strings.Join(dict.Names(cl.TermChunk), ", "))
		return
	}
	fmt.Printf("%sjoint cluster %d (size %d)\n", pad, idx, n.Size())
	for j, c := range n.SharedChunks {
		fmt.Printf("%s  shared chunk %d over {%s}:\n", pad, j, strings.Join(dict.Names(c.Domain), ", "))
		for _, sr := range c.Subrecords {
			fmt.Printf("%s    {%s}\n", pad, strings.Join(dict.Names(sr), ", "))
		}
	}
	for j, child := range n.Children {
		printNode(dict, child, j, depth+1)
	}
}
