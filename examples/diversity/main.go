// Diversity: protecting against attribute disclosure (Section 5 of the
// paper). When some terms are known to be sensitive — here, medical
// diagnoses inside a purchase log — marking them Sensitive forces them into
// term chunks: the published form never links a diagnosis to any subrecord,
// so the association probability is at most 1/|P| (l-diversity via cluster
// size).
//
//	go run ./examples/diversity
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"strings"

	"disasso"
)

func main() {
	dict := disasso.NewDictionary()
	rng := rand.New(rand.NewPCG(5, 15))

	products := []string{
		"aspirin", "bandages", "vitamins", "thermometer", "tissues",
		"soap", "shampoo", "razors", "toothpaste", "sunscreen",
	}
	diagnoses := []string{"hiv-test-kit", "pregnancy-test", "naloxone"}

	// A pharmacy log: most baskets are mundane; some include a sensitive
	// item.
	d := disasso.NewDataset()
	for i := 0; i < 600; i++ {
		n := 2 + rng.IntN(3)
		basket := make([]string, 0, n+1)
		for j := 0; j < n; j++ {
			basket = append(basket, products[rng.IntN(len(products))])
		}
		if rng.IntN(12) == 0 {
			basket = append(basket, diagnoses[rng.IntN(len(diagnoses))])
		}
		d.Add(dict.InternRecord(basket...))
	}

	sensitive := make(map[disasso.Term]bool)
	for _, name := range diagnoses {
		if t, ok := dict.Lookup(name); ok {
			sensitive[t] = true
		}
	}

	a, err := disasso.Anonymize(d, disasso.Options{
		K: 5, M: 2, Sensitive: sensitive, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := disasso.VerifyAgainstOriginal(a, d); err != nil {
		log.Fatal(err)
	}

	// Confirm: no sensitive term appears in any record or shared chunk.
	leaked := 0
	for _, c := range a.AllChunks() {
		for _, t := range c.Domain {
			if sensitive[t] {
				leaked++
			}
		}
	}
	fmt.Printf("pharmacy log: %d baskets, %d sensitive item types\n", d.Len(), len(sensitive))
	fmt.Printf("sensitive terms found in record/shared chunks: %d (must be 0)\n\n", leaked)

	// The association bound: a sensitive term in a cluster of |P| records
	// links to any one with probability ≤ 1/|P|.
	fmt.Println("sensitive terms in published term chunks:")
	for _, leaf := range a.AllLeaves() {
		var hits []string
		for _, t := range leaf.TermChunk {
			if sensitive[t] {
				hits = append(hits, dict.Name(t))
			}
		}
		if len(hits) > 0 {
			fmt.Printf("  cluster of %2d records: {%s} → association probability ≤ 1/%d\n",
				leaf.Size, strings.Join(hits, ", "), leaf.Size)
		}
	}
}
