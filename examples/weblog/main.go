// Weblog: the paper's motivating scenario. A web search query log is
// published; an adversary knows two queries a user posed (the background
// knowledge of Section 1: {new york, air tickets}) and tries to single out
// the user's record. Before disassociation the combination is unique; after
// it, every reconstruction the adversary can build contains at least k
// candidate records.
//
//	go run ./examples/weblog
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"disasso"
)

const (
	k = 5
	m = 2
)

func main() {
	dict := disasso.NewDictionary()
	d := buildQueryLog(dict)
	ny, _ := dict.Lookup("new-york")
	air, _ := dict.Lookup("air-tickets")
	attack := disasso.NewRecord(ny, air)

	fmt.Printf("query log: %d users, %d distinct queries\n", d.Len(), d.ComputeStats().DomainSize)
	fmt.Printf("adversary knowledge: {new-york, air-tickets}\n\n")

	before := d.SupportOf(attack)
	fmt.Printf("records matching the attack in the RAW log: %d", before)
	if before == 1 {
		fmt.Printf("  ← unique: the user is re-identified\n\n")
	} else {
		fmt.Printf("\n\n")
	}

	a, err := disasso.Anonymize(d, disasso.Options{K: k, M: m, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := disasso.VerifyAgainstOriginal(a, d); err != nil {
		log.Fatal(err)
	}

	// The published form never links the two queries: the adversary only
	// learns that both exist somewhere in a cluster of |P| records, so the
	// candidate set is the whole cluster (Guarantee 1: some reconstruction
	// assigns the pair to at least k records).
	fmt.Printf("after disassociation (k=%d, m=%d):\n", k, m)
	pairInChunk := 0
	for _, c := range a.AllChunks() {
		if !c.Domain.ContainsAll(attack) {
			continue
		}
		for _, sr := range c.Subrecords {
			if sr.ContainsAll(attack) {
				pairInChunk++
			}
		}
	}
	if pairInChunk > 0 {
		// The pair was frequent enough to survive intact — then it survived
		// with at least k copies.
		fmt.Printf("  the pair survives in a chunk with support %d ≥ k\n\n", pairInChunk)
	} else {
		fmt.Printf("  the pair appears in NO published chunk: it is disassociated.\n")
		for i, leaf := range a.AllLeaves() {
			all := leaf.TermChunk
			for _, c := range leaf.RecordChunks {
				all = all.Union(c.Domain)
			}
			if all.ContainsAll(attack) {
				fmt.Printf("  cluster %d holds both terms among %d records → every one of its\n"+
					"  records is a candidate; the adversary cannot narrow below k=%d\n\n",
					i, leaf.Size, k)
				break
			}
		}
	}

	// Utility: the log's popular queries survive.
	r := disasso.Reconstruct(a, 99)
	tkd := disasso.TopKDeviation(d, r, 100, 2)
	fmt.Printf("top-100 itemset deviation (tKd): %.3f — %.0f%% of popular query patterns preserved\n",
		tkd, (1-tkd)*100)
}

// buildQueryLog synthesizes a small query log: one user poses the
// identifying combination, a crowd of others poses overlapping queries.
func buildQueryLog(dict *disasso.Dictionary) *disasso.Dataset {
	rng := rand.New(rand.NewPCG(2024, 6))
	common := []string{
		"weather", "news", "maps", "translate", "youtube", "facebook",
		"recipes", "football", "netflix", "email",
	}
	travel := []string{"new-york", "air-tickets", "hotels", "car-rental", "travel-insurance"}
	rare := []string{"rash-symptoms", "divorce-lawyer", "casino-bonus", "crypto-leverage"}

	d := disasso.NewDataset()
	// The target user: the only one combining new-york with air-tickets.
	d.Add(dict.InternRecord("new-york", "air-tickets", "weather", "email"))
	// 400 background users.
	for i := 0; i < 400; i++ {
		n := 2 + rng.IntN(4)
		queries := make([]string, 0, n)
		for j := 0; j < n; j++ {
			switch {
			case rng.IntN(10) < 6:
				queries = append(queries, common[rng.IntN(len(common))])
			case rng.IntN(10) < 8:
				// Travel queries, but never the full identifying pair.
				q := travel[rng.IntN(len(travel))]
				if q == "air-tickets" {
					q = "hotels"
				}
				queries = append(queries, q)
			default:
				queries = append(queries, rare[rng.IntN(len(rare))])
			}
		}
		d.Add(dict.InternRecord(queries...))
	}
	return d
}
