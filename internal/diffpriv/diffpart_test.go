package diffpriv

import (
	"math"
	"math/rand/v2"
	"testing"

	"disasso/internal/dataset"
	"disasso/internal/hierarchy"
)

func rec(terms ...dataset.Term) dataset.Record { return dataset.NewRecord(terms...) }

func TestConfigValidation(t *testing.T) {
	h, _ := hierarchy.New(4, 2)
	d := dataset.FromRecords([]dataset.Record{rec(0)})
	if _, err := Anonymize(d, h, Config{Epsilon: 0}); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := Anonymize(d, h, Config{Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestLaplaceProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const n = 50000
	sum, absSum := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := laplace(rng, 2.0)
		sum += v
		absSum += math.Abs(v)
	}
	if mean := sum / n; math.Abs(mean) > 0.1 {
		t.Errorf("Laplace mean %.3f, want ≈0", mean)
	}
	// E|X| = b for Laplace(b).
	if meanAbs := absSum / n; math.Abs(meanAbs-2.0) > 0.1 {
		t.Errorf("Laplace E|X| = %.3f, want ≈2", meanAbs)
	}
}

func TestFrequentItemsetsSurvive(t *testing.T) {
	// A single dominant itemset must survive with roughly its true support.
	h, _ := hierarchy.New(8, 2)
	var records []dataset.Record
	for i := 0; i < 400; i++ {
		records = append(records, rec(0, 1))
	}
	d := dataset.FromRecords(records)
	out, err := Anonymize(d, h, Config{Epsilon: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sup := out.SupportOf(rec(0, 1))
	if sup < 300 || sup > 500 {
		t.Errorf("dominant itemset support %d, want ≈400", sup)
	}
}

func TestInfrequentTermsSuppressed(t *testing.T) {
	// Rare terms must overwhelmingly vanish: that is the behaviour the
	// paper's Figure 11 comparison relies on.
	h, _ := hierarchy.New(64, 4)
	var records []dataset.Record
	for i := 0; i < 300; i++ {
		records = append(records, rec(0))
	}
	// 32 singleton rare terms.
	for tm := dataset.Term(32); tm < 64; tm++ {
		records = append(records, rec(tm))
	}
	d := dataset.FromRecords(records)
	out, err := Anonymize(d, h, Config{Epsilon: 1.0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sup := out.Supports()
	if sup[0] < 200 {
		t.Errorf("frequent term support %d, want near 300", sup[0])
	}
	survivors := 0
	for tm := dataset.Term(32); tm < 64; tm++ {
		if sup[tm] > 0 {
			survivors++
		}
	}
	if survivors > 8 {
		t.Errorf("%d of 32 rare terms survived; suppression too weak", survivors)
	}
}

func TestOutputTermsAreLeaves(t *testing.T) {
	h, _ := hierarchy.New(16, 4)
	rng := rand.New(rand.NewPCG(7, 8))
	var records []dataset.Record
	for i := 0; i < 200; i++ {
		records = append(records, rec(dataset.Term(rng.IntN(4)), dataset.Term(rng.IntN(16))))
	}
	d := dataset.FromRecords(records)
	out, err := Anonymize(d, h, Config{Epsilon: 1.0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Records {
		for _, tm := range r {
			if !h.IsLeaf(tm) {
				t.Fatalf("published record %v contains generalized node %d", r, tm)
			}
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	h, _ := hierarchy.New(16, 4)
	var records []dataset.Record
	for i := 0; i < 100; i++ {
		records = append(records, rec(dataset.Term(i%8), dataset.Term(8+i%4)))
	}
	d := dataset.FromRecords(records)
	a, _ := Anonymize(d, h, Config{Epsilon: 1.0, Seed: 42})
	b, _ := Anonymize(d, h, Config{Epsilon: 1.0, Seed: 42})
	if a.Len() != b.Len() {
		t.Fatal("same seed produced different output sizes")
	}
	for i := range a.Records {
		if !a.Records[i].Equal(b.Records[i]) {
			t.Fatal("same seed produced different records")
		}
	}
}

func TestHigherEpsilonPreservesMore(t *testing.T) {
	// More budget → less noise and lower thresholds → more of the original
	// distinct itemsets survive. Compare a tight and a loose budget.
	h, _ := hierarchy.New(32, 4)
	rng := rand.New(rand.NewPCG(11, 12))
	var records []dataset.Record
	for i := 0; i < 1000; i++ {
		records = append(records, rec(dataset.Term(rng.IntN(8)), dataset.Term(rng.IntN(32))))
	}
	d := dataset.FromRecords(records)
	loose, _ := Anonymize(d, h, Config{Epsilon: 2.0, Seed: 1})
	tight, _ := Anonymize(d, h, Config{Epsilon: 0.1, Seed: 1})
	looseTerms := len(loose.Supports())
	tightTerms := len(tight.Supports())
	if looseTerms < tightTerms {
		t.Errorf("ε=2.0 kept %d terms, ε=0.1 kept %d — expected more at higher budget", looseTerms, tightTerms)
	}
}

func TestEmptyInput(t *testing.T) {
	h, _ := hierarchy.New(8, 2)
	out, err := Anonymize(dataset.New(0), h, Config{Epsilon: 1.0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Pure noise can create a few spurious records, but nothing systematic.
	if out.Len() > 50 {
		t.Errorf("empty input produced %d records", out.Len())
	}
}

func TestDescribe(t *testing.T) {
	d := dataset.FromRecords([]dataset.Record{rec(1), rec(1), rec(2)})
	if got := Describe(d); got != "3 records, 2 distinct itemsets" {
		t.Errorf("Describe = %q", got)
	}
}
