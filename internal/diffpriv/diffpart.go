// Package diffpriv implements the DiffPart baseline the paper compares
// against in Figure 11a/c: ε-differentially private publication of set-valued
// data from Chen, Mohammed, Fung, Desai & Xiong ("Publishing set-valued data
// via differential privacy", PVLDB 2011), reference [6] of the paper.
//
// DiffPart partitions the records top-down along a context-free taxonomy:
// starting from the taxonomy root, it repeatedly expands one cut node into
// its children, splits the partition by the records' generalized
// representations, adds Laplace noise to each sub-partition's cardinality and
// prunes sub-partitions whose noisy count falls below a threshold scaled to
// the noise magnitude. Surviving leaf partitions (cuts of original terms)
// are published as noisy-count copies of their itemset.
//
// The behaviour the comparison depends on — suppression of all infrequent
// terms and itemsets, plus noise on the surviving supports — follows from
// the mechanism; see DESIGN.md §4 for the simplifications taken (bounded
// probing of empty sub-partitions instead of enumerating all 2^fanout
// candidates).
package diffpriv

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"disasso/internal/dataset"
	"disasso/internal/hierarchy"
)

// Config parameterizes DiffPart.
type Config struct {
	// Epsilon is the total privacy budget ε. The paper's evaluation sweeps
	// 0.5 to 1.25 and reports the best result.
	Epsilon float64
	// ThresholdC scales the pruning threshold θ = ThresholdC · √2 / ε';
	// the DiffPart paper recommends values around 2 (default when 0).
	ThresholdC float64
	// EmptyProbes bounds how many empty candidate sub-partitions are probed
	// per expansion (the full mechanism considers all; probing a bounded
	// random sample keeps the generator tractable while preserving the
	// spurious-itemset behaviour). Default 8.
	EmptyProbes int
	// Seed drives the Laplace noise.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.ThresholdC == 0 {
		c.ThresholdC = 2
	}
	if c.EmptyProbes == 0 {
		c.EmptyProbes = 8
	}
	return c
}

// partition is a group of records sharing a generalized representation.
type partition struct {
	cut     dataset.Record // hierarchy nodes forming the representation
	records []dataset.Record
	budget  float64 // remaining internal budget for this path
}

// Anonymize publishes a differentially private version of d using the given
// taxonomy. The output is an ordinary dataset: surviving itemsets repeated
// their noisy number of times. The original records never appear verbatim
// unless their full itemset survives the partitioning.
func Anonymize(d *dataset.Dataset, h *hierarchy.Hierarchy, cfg Config) (*dataset.Dataset, error) {
	if cfg.Epsilon <= 0 {
		return nil, fmt.Errorf("diffpriv: epsilon %v must be positive", cfg.Epsilon)
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xD1FF))

	// Budget split per the paper: half for the final leaf counts, half
	// spread across the taxonomy levels traversed by the partitioning.
	leafBudget := cfg.Epsilon / 2
	internalTotal := cfg.Epsilon / 2
	levels := h.NumLevels()
	if levels < 1 {
		levels = 1
	}

	out := dataset.New(0)
	root := partition{
		cut:     dataset.NewRecord(h.Root()),
		records: d.Records,
		budget:  internalTotal,
	}
	stack := []partition{root}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		expand := pickNonLeaf(p.cut, h)
		if expand < 0 {
			// Leaf partition: all cut nodes are original terms. Publish the
			// itemset with a noisy count.
			count := float64(len(p.records)) + laplace(rng, 1/leafBudget)
			n := int(math.Round(count))
			for i := 0; i < n; i++ {
				out.Records = append(out.Records, p.cut.Clone())
			}
			continue
		}

		// ε' for this expansion: remaining internal budget divided by the
		// maximum remaining depth (adaptive allocation).
		depthLeft := maxDepthLeft(p.cut, h)
		if depthLeft < 1 {
			depthLeft = 1
		}
		eps := p.budget / float64(depthLeft)
		threshold := cfg.ThresholdC * math.Sqrt2 / eps

		// Split records by their generalized representation over the
		// expanded cut.
		node := p.cut[expand]
		children := h.Children(node)
		groups := make(map[string][]dataset.Record)
		reps := make(map[string]dataset.Record)
		for _, r := range p.records {
			rep := represent(r, p.cut, expand, children, h)
			if len(rep) == 0 {
				continue // record has no item under the remaining cut
			}
			key := rep.Key()
			groups[key] = append(groups[key], r)
			if _, ok := reps[key]; !ok {
				reps[key] = rep
			}
		}

		// Deterministic iteration order over the observed sub-partitions.
		keys := make([]string, 0, len(groups))
		for key := range groups {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			noisy := float64(len(groups[key])) + laplace(rng, 1/eps)
			if noisy < threshold {
				continue // pruned: infrequent representation suppressed
			}
			stack = append(stack, partition{
				cut:     reps[key],
				records: groups[key],
				budget:  p.budget - eps,
			})
		}

		// Probe a bounded number of empty candidate sub-partitions: with
		// some probability the pure noise exceeds the threshold and a
		// spurious partition survives (as in the full mechanism).
		for probe := 0; probe < cfg.EmptyProbes; probe++ {
			rep := randomRepresentation(p.cut, expand, children, rng)
			if _, seen := groups[rep.Key()]; seen {
				continue
			}
			if laplace(rng, 1/eps) >= threshold {
				stack = append(stack, partition{
					cut:    rep,
					budget: p.budget - eps,
				})
			}
		}
	}
	return out, nil
}

// pickNonLeaf returns the index of the first non-leaf node in the cut, or −1
// if the cut consists only of original terms.
func pickNonLeaf(cut dataset.Record, h *hierarchy.Hierarchy) int {
	for i, t := range cut {
		if !h.IsLeaf(t) {
			return i
		}
	}
	return -1
}

// maxDepthLeft returns the largest number of expansions any cut node still
// needs to reach the leaves.
func maxDepthLeft(cut dataset.Record, h *hierarchy.Hierarchy) int {
	depth := 0
	for _, t := range cut {
		if l := h.Level(t); l > depth {
			depth = l
		}
	}
	return depth
}

// represent computes a record's generalized representation after expanding
// cut[expand]: the unchanged cut nodes that cover at least one record term,
// plus the expanded node's children that do.
func represent(r dataset.Record, cut dataset.Record, expand int, children []dataset.Term, h *hierarchy.Hierarchy) dataset.Record {
	var rep dataset.Record
	covers := func(node dataset.Term) bool {
		for _, t := range r {
			if h.IsAncestor(node, t) {
				return true
			}
		}
		return false
	}
	for i, node := range cut {
		if i == expand {
			continue
		}
		if covers(node) {
			rep = append(rep, node)
		}
	}
	for _, c := range children {
		if covers(c) {
			rep = append(rep, c)
		}
	}
	return rep.Normalize()
}

// randomRepresentation draws a candidate representation: the non-expanded cut
// nodes each kept with probability 1/2, plus a random non-empty subset of the
// expanded node's children.
func randomRepresentation(cut dataset.Record, expand int, children []dataset.Term, rng *rand.Rand) dataset.Record {
	var rep dataset.Record
	for i, node := range cut {
		if i == expand {
			continue
		}
		if rng.IntN(2) == 0 {
			rep = append(rep, node)
		}
	}
	picked := false
	for _, c := range children {
		if rng.IntN(2) == 0 {
			rep = append(rep, c)
			picked = true
		}
	}
	if !picked && len(children) > 0 {
		rep = append(rep, children[rng.IntN(len(children))])
	}
	return rep.Normalize()
}

// laplace draws from the Laplace distribution with scale b via inverse CDF.
func laplace(rng *rand.Rand, b float64) float64 {
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	return b * math.Log(1+2*u)
}

// Describe summarizes an output dataset for debugging: distinct itemsets and
// total records.
func Describe(d *dataset.Dataset) string {
	distinct := make(map[string]int)
	for _, r := range d.Records {
		distinct[r.Key()]++
	}
	return fmt.Sprintf("%d records, %d distinct itemsets", d.Len(), len(distinct))
}
