package breach

import (
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/quest"
)

// benchInputs are the audit benchmark workloads: Quest market-basket data at
// the density profile of the paper's evaluation, and the dense skewed
// synthetic profile the property tests use, scaled up — dense data is where
// covers (and therefore repairs) concentrate.
func benchInputs(b *testing.B) []struct {
	name string
	d    *dataset.Dataset
} {
	b.Helper()
	cfg := quest.DefaultConfig()
	cfg.NumTransactions = 5_000
	cfg.DomainSize = 400
	cfg.AvgTransLen = 6
	cfg.Seed = 7
	g, err := quest.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return []struct {
		name string
		d    *dataset.Dataset
	}{
		{"quest", g.Generate()},
		{"dense", genDataset(propConfig{k: 2, m: 2, maxCluster: 5, records: 400, domain: 24, maxLen: 6, seed: 505})},
	}
}

func benchOptions(name string) core.Options {
	if name == "dense" {
		return core.Options{K: 2, M: 2, MaxClusterSize: 5, Seed: 505, MaxShardRecords: 200}
	}
	return core.Options{K: 4, M: 2, Seed: 7, MaxShardRecords: 1_000}
}

// BenchmarkBreachAudit times the cover-problem detector over a full plain
// publication and attaches the breach rate it finds: findings plus the
// fraction of clusters breached — the "before repair" numbers of the
// BENCH_PR10 record.
func BenchmarkBreachAudit(b *testing.B) {
	for _, in := range benchInputs(b) {
		name, d := in.name, in.d
		b.Run(name, func(b *testing.B) {
			a, err := core.Anonymize(d, benchOptions(name))
			if err != nil {
				b.Fatal(err)
			}
			var rep *Report
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep = Audit(a)
			}
			b.ReportMetric(float64(len(rep.Findings)), "findings")
			b.ReportMetric(float64(rep.BreachedClusters)/float64(rep.Clusters), "breached-frac")
		})
	}
}

// BenchmarkSafeRepair times a full SafeDisassociation publication (pipeline
// plus repair) against the plain pipeline's breach count: breaches-before is
// what the repair had to fix, breaches-after must be zero.
func BenchmarkSafeRepair(b *testing.B) {
	for _, in := range benchInputs(b) {
		name, d := in.name, in.d
		b.Run(name, func(b *testing.B) {
			opts := benchOptions(name)
			plain, err := core.Anonymize(d, opts)
			if err != nil {
				b.Fatal(err)
			}
			before := len(Audit(plain).Findings)
			opts.SafeDisassociation = true
			var safe *core.Anonymized
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if safe, err = core.Anonymize(d, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			after := len(Audit(safe).Findings)
			if after != 0 {
				b.Fatalf("safe publication still has %d breaches", after)
			}
			b.ReportMetric(float64(before), "breaches-before")
			b.ReportMetric(float64(after), "breaches-after")
		})
	}
}
