package breach

import (
	"fmt"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// The brute-force reconstruction-enumeration oracle.
//
// Where the fast detector scores a pair with the closed form
// s / max(n_learned, n_anchor), the oracle derives the same probability
// from first principles: it enumerates every assignment of the two
// sources' subrecords onto the slots of their covered ranges (every
// injection, each equally likely under the uniform-reconstruction model)
// and counts, over all assignments and all slots, how often a slot holding
// the anchor term also holds the learned term:
//
//	P(learned | anchor) = Fav / Tot
//	Fav = Σ_assignments #slots carrying both terms
//	Tot = Σ_assignments #slots carrying the anchor
//
// Sources not involved in the pair are marginalized out exactly (their
// assignments are independent and term-disjoint, so they cancel from the
// ratio). The two computations share no code — the detector never
// enumerates, the oracle never multiplies supports — which is what makes
// their agreement (exact, by integer cross-multiplication) evidence.
//
// Enumeration is factorial, so every evaluation carries a budget: a pair
// whose assignment space exceeds it is skipped, never approximated. The
// property tests and the breach_exhaustive build keep cluster sizes small
// enough that real pairs terminate.

// oracleSource mirrors one association source of a cluster node,
// re-derived independently from the published structure: record chunks and
// shared chunks with their materialized subrecords, and each term-chunk
// term as its own single-subrecord source (independent placement).
type oracleSource struct {
	where string
	lo, n int
	subs  []dataset.Record
}

// collectOracleSources walks one top-level node exactly like the canonical
// layout: leaves left to right, each joint's shared chunks after its
// descendants, slot offsets by in-order leaf sizes. The where strings match
// the detector's so verdicts can be joined on locus.
func collectOracleSources(root *core.ClusterNode) []oracleSource {
	var out []oracleSource
	leafIdx := 0
	var walk func(n *core.ClusterNode, lo int) int
	walk = func(n *core.ClusterNode, lo int) int {
		if n.IsLeaf() {
			cl := n.Simple
			for ci := range cl.RecordChunks {
				out = append(out, oracleSource{
					where: fmt.Sprintf("leaf %d record chunk %d", leafIdx, ci),
					lo:    lo, n: cl.Size,
					subs: cl.RecordChunks[ci].Subrecords,
				})
			}
			for _, t := range cl.TermChunk {
				out = append(out, oracleSource{
					where: fmt.Sprintf("leaf %d term chunk", leafIdx),
					lo:    lo, n: cl.Size,
					subs: []dataset.Record{{t}},
				})
			}
			leafIdx++
			return lo + cl.Size
		}
		end := lo
		for _, c := range n.Children {
			end = walk(c, end)
		}
		for ci := range n.SharedChunks {
			out = append(out, oracleSource{
				where: fmt.Sprintf("joint at slots %d-%d shared chunk %d", lo, end-1, ci),
				lo:    lo, n: end - lo,
				subs: n.SharedChunks[ci].Subrecords,
			})
		}
		return end
	}
	walk(root, 0)
	return out
}

func (s *oracleSource) overlaps(o *oracleSource) bool {
	return s.lo < o.lo+o.n && o.lo < s.lo+s.n
}

// terms returns the distinct terms appearing in the source's subrecords.
func (s *oracleSource) termSet() dataset.Record {
	var all dataset.Record
	for _, sr := range s.subs {
		all = all.Union(sr)
	}
	return all
}

// injectionCount returns n·(n−1)·…·(n−s+1), the number of ways to place s
// distinct subrecords on n slots, capped at limit (returns limit+1 when
// exceeded, so callers can compare against budgets without overflow).
func injectionCount(n, s int, limit int64) int64 {
	count := int64(1)
	for i := 0; i < s; i++ {
		count *= int64(n - i)
		if count > limit {
			return limit + 1
		}
	}
	return count
}

// forEachInjection enumerates every assignment of subs onto distinct slots
// of [0, n), calling f with pos[i] = slot of subs[i]. Deterministic order.
func forEachInjection(n int, subs int, f func(pos []int)) {
	pos := make([]int, subs)
	used := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == subs {
			f(pos)
			return
		}
		for slot := 0; slot < n; slot++ {
			if used[slot] {
				continue
			}
			used[slot] = true
			pos[i] = slot
			rec(i + 1)
			used[slot] = false
		}
	}
	rec(0)
}

// pairVerdict is the oracle's evaluation of one (anchor, learned) pair.
type pairVerdict struct {
	Fav, Tot int64 // P(learned | anchor) = Fav/Tot over all assignments
	Breach   bool  // k·Fav > Tot, exactly
}

// oraclePair evaluates P(a learned | b known) for a in the learned source
// and b in the anchor source by full enumeration. Returns ok=false when the
// assignment space exceeds budget (the oracle refuses to approximate).
func oraclePair(learned, anchor *oracleSource, a, b dataset.Term, k int, budget int64) (pairVerdict, bool) {
	nl := injectionCount(learned.n, len(learned.subs), budget)
	na := injectionCount(anchor.n, len(anchor.subs), budget)
	if nl > budget || na > budget || nl*na > budget {
		return pairVerdict{}, false
	}
	hasA := make([]bool, len(learned.subs))
	for i, sr := range learned.subs {
		hasA[i] = sr.Contains(a)
	}
	hasB := make([]bool, len(anchor.subs))
	for i, sr := range anchor.subs {
		hasB[i] = sr.Contains(b)
	}
	var v pairVerdict
	// Slots are global: the two ranges may nest anywhere in the cluster.
	forEachInjection(learned.n, len(learned.subs), func(lpos []int) {
		var aSlots []int
		for i, p := range lpos {
			if hasA[i] {
				aSlots = append(aSlots, learned.lo+p)
			}
		}
		forEachInjection(anchor.n, len(anchor.subs), func(apos []int) {
			for i, p := range apos {
				if !hasB[i] {
					continue
				}
				slot := anchor.lo + p
				v.Tot++
				for _, s := range aSlots {
					if s == slot {
						v.Fav++
					}
				}
			}
		})
	})
	v.Breach = int64(k)*v.Fav > v.Tot
	return v, true
}

// oracleBudget bounds one pair's assignment-space size under the
// breach_exhaustive cross-check; maxPairEvals bounds how many pairs one
// node's completeness sweep evaluates before the tail is skipped (both
// deterministic cut-offs — the oracle skips, it never guesses).
const (
	oracleBudget = 200_000
	maxPairEvals = 20_000
)

// crossCheckNode validates the fast detector against the oracle on one
// node, panicking on any divergence:
//
//   - soundness: every reported breach re-derives exactly (same verdict and
//     the same probability, compared by integer cross-multiplication);
//   - completeness: every pair the oracle can afford to enumerate and finds
//     breaching must appear among the detector's findings (by learned
//     locus and term — the detector reports one witness anchor per heavy
//     term, so presence is the contract).
//
// Pairs over budget are skipped: the oracle must agree with the detector
// whenever it terminates, and says nothing otherwise.
func crossCheckNode(n *core.ClusterNode, k int, brs []core.Breach) {
	srcs := collectOracleSources(n)
	find := func(where string, t dataset.Term) *oracleSource {
		for i := range srcs {
			if srcs[i].where == where && srcs[i].termSet().Contains(t) {
				return &srcs[i]
			}
		}
		return nil
	}
	for _, b := range brs {
		learned := find(b.Where, b.Learned)
		anchor := find(b.AnchorWhere, b.Anchor)
		if learned == nil || anchor == nil {
			panic(fmt.Sprintf("breach: finding names unknown source %q/%q", b.Where, b.AnchorWhere))
		}
		v, ok := oraclePair(learned, anchor, b.Learned, b.Anchor, k, oracleBudget)
		if !ok {
			continue
		}
		if !v.Breach {
			panic(fmt.Sprintf("breach: oracle refutes finding %v from %s (anchor %v from %s): P = %d/%d ≤ 1/%d",
				b.Learned, b.Where, b.Anchor, b.AnchorWhere, v.Fav, v.Tot, k))
		}
		if v.Fav*int64(b.Den) != int64(b.Num)*v.Tot {
			panic(fmt.Sprintf("breach: probability mismatch for %v from %s: detector %d/%d, oracle %d/%d",
				b.Learned, b.Where, b.Num, b.Den, v.Fav, v.Tot))
		}
	}
	reported := make(map[string]bool, len(brs))
	for _, b := range brs {
		reported[fmt.Sprintf("%s#%d", b.Where, b.Learned)] = true
	}
	evals := 0
	for li := range srcs {
		learned := &srcs[li]
		for ai := range srcs {
			anchor := &srcs[ai]
			if ai == li || !learned.overlaps(anchor) {
				continue
			}
			for _, a := range learned.termSet() {
				for _, b := range anchor.termSet() {
					if b == a {
						continue
					}
					if evals++; evals > maxPairEvals {
						return
					}
					v, ok := oraclePair(learned, anchor, a, b, k, oracleBudget)
					if !ok || !v.Breach {
						continue
					}
					if !reported[fmt.Sprintf("%s#%d", learned.where, a)] {
						panic(fmt.Sprintf("breach: oracle finds unreported breach: %v from %s learned via %v from %s with P = %d/%d > 1/%d",
							a, learned.where, b, anchor.where, v.Fav, v.Tot, k))
					}
				}
			}
		}
	}
}
