package breach

import (
	"testing"

	"disasso/internal/anonymity"
	"disasso/internal/core"
	"disasso/internal/dataset"
)

// FuzzBreachDetector drives random small publications through the detector,
// the oracle and the repair: the detector must never panic, must agree with
// the brute-force oracle on every pair the oracle can afford to enumerate,
// and the repaired publication must audit clean while still passing the
// independent k^m verifier.
func FuzzBreachDetector(f *testing.F) {
	f.Add([]byte{2, 1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 2, 3})
	f.Add([]byte{3, 3, 9, 9, 9, 9, 8, 8, 8, 7, 7, 6, 5, 4, 3, 2, 1, 0, 0, 1, 9, 9})
	f.Add([]byte{4, 0, 5, 5, 5, 5, 5, 5, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			t.Skip()
		}
		k := 2 + int(data[0])%3
		maxCluster := k + 2 + int(data[1])%4
		var records []dataset.Record
		for i := 2; i < len(data); {
			length := 1 + int(data[i])%4
			i++
			terms := make([]dataset.Term, 0, length)
			for j := 0; j < length && i < len(data); j++ {
				terms = append(terms, dataset.Term(data[i]%11))
				i++
			}
			if r := dataset.NewRecord(terms...); len(r) > 0 {
				records = append(records, r)
			}
			if len(records) >= 48 {
				break // keep the oracle's enumeration spaces affordable
			}
		}
		if len(records) < 2*k {
			t.Skip()
		}
		d := dataset.FromRecords(records)
		opts := core.Options{K: k, M: 2, MaxClusterSize: maxCluster, Parallel: 1, Seed: uint64(len(data))}
		a, err := core.Anonymize(d, opts)
		if err != nil {
			t.Skip()
		}
		for i, n := range a.Clusters {
			brs := core.NodeBreaches(n, a.K) // must not panic
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("cluster %d: detector/oracle divergence: %v", i, r)
					}
				}()
				crossCheckNode(n, a.K, brs)
			}()
		}
		opts.SafeDisassociation = true
		repaired, err := core.Anonymize(d, opts)
		if err != nil {
			t.Fatalf("safe anonymize failed where plain succeeded: %v", err)
		}
		if rep := Audit(repaired); !rep.Clean() {
			t.Fatalf("repaired publication still has %d breaches", len(rep.Findings))
		}
		if vr := anonymity.Verify(repaired); !vr.OK() {
			t.Fatalf("repaired publication fails the verifier: %v", vr.Err())
		}
	})
}
