//go:build !breach_exhaustive

package breach

// breachExhaustiveDefault leaves the brute-force reconstruction-enumeration
// oracle off: Audit serves the fast detector's findings directly. Building
// with -tags breach_exhaustive flips the default so every audit in the
// suite is cross-checked against the oracle — the same device as
// internal/core's refine_replan and internal/query's query_scan tags.
const breachExhaustiveDefault = false
