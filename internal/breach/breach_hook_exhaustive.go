//go:build breach_exhaustive

package breach

// breachExhaustiveDefault under the breach_exhaustive build tag makes every
// Audit cross-check the fast detector against the brute-force
// reconstruction-enumeration oracle wherever the enumeration budget allows,
// panicking on any divergence in verdict or exact probability. Served
// findings are the detector's either way — the oracle confirms, it never
// substitutes.
const breachExhaustiveDefault = true
