// Package breach audits a disassociated publication for cover-problem
// association breaches: cross-chunk term associations an adversary learns
// with probability above 1/k despite k^m-anonymity (Barakat et al., "On the
// Evaluation of the Privacy Breach in Disassociated Set-Valued Datasets";
// Awad et al., "Safe Disassociation of Set-Valued Datasets").
//
// The fast detector lives in internal/core (NodeBreaches), next to the
// safe-disassociation repair that consumes it; this package wraps it into
// the served audit report and carries the house correctness oracle: a
// brute-force reconstruction-enumeration oracle (oracle.go) that re-derives
// every association probability by enumerating chunk assignments, compiled
// against the detector under the breach_exhaustive build tag and in the
// property tests.
package breach

import (
	"sort"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// breachExhaustive cross-checks every Audit against the brute-force
// reconstruction-enumeration oracle (where the oracle's enumeration budget
// allows) and panics on divergence. The default comes from the
// breach_exhaustive build tag (see breach_hook_*.go); tests can also flip
// the variable directly.
var breachExhaustive = breachExhaustiveDefault

// Finding is one reported breach, JSON-shaped for the audit endpoint.
type Finding struct {
	// Cluster is the top-level cluster index the association binds to.
	Cluster int `json:"cluster"`
	// Where and AnchorWhere name the learned term's and the anchor term's
	// sources in the cluster's canonical chunk layout.
	Where       string `json:"where"`
	AnchorWhere string `json:"anchorWhere"`
	// Knowing Anchor, an adversary learns Learned with probability
	// Num/Den (> 1/k); Probability is the same ratio as a float for
	// human consumption — verdicts are computed on the exact integers.
	Anchor      dataset.Term `json:"anchor"`
	Learned     dataset.Term `json:"learned"`
	Num         int          `json:"num"`
	Den         int          `json:"den"`
	Probability float64      `json:"probability"`
}

// Report is a full breach audit of one publication.
type Report struct {
	K int `json:"k"`
	M int `json:"m"`
	// Clusters counts top-level clusters; BreachedClusters those with at
	// least one finding.
	Clusters         int `json:"clusters"`
	BreachedClusters int `json:"breachedClusters"`
	// Threshold is 1/k: any association learnable with higher probability
	// is a breach.
	Threshold float64 `json:"threshold"`
	// MaxProbability is the worst finding's probability (0 when clean).
	MaxProbability float64   `json:"maxProbability"`
	Findings       []Finding `json:"findings"`
}

// Clean reports a breach-free publication.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// Audit runs the cover-problem breach detector over every top-level cluster
// of the publication and assembles the report, findings sorted by
// descending probability (exact integer comparison), then cluster, then
// locus. Deterministic for a fixed publication; the forest is not modified.
func Audit(a *core.Anonymized) *Report {
	rep := &Report{
		K: a.K, M: a.M,
		Clusters:  len(a.Clusters),
		Threshold: 1 / float64(a.K),
	}
	for i, n := range a.Clusters {
		brs := core.NodeBreaches(n, a.K)
		if breachExhaustive {
			crossCheckNode(n, a.K, brs)
		}
		if len(brs) > 0 {
			rep.BreachedClusters++
		}
		for _, b := range brs {
			rep.Findings = append(rep.Findings, Finding{
				Cluster: i,
				Where:   b.Where, AnchorWhere: b.AnchorWhere,
				Anchor: b.Anchor, Learned: b.Learned,
				Num: b.Num, Den: b.Den,
				Probability: float64(b.Num) / float64(b.Den),
			})
		}
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		fi, fj := &rep.Findings[i], &rep.Findings[j]
		if d := fi.Num*fj.Den - fj.Num*fi.Den; d != 0 {
			return d > 0
		}
		if fi.Cluster != fj.Cluster {
			return fi.Cluster < fj.Cluster
		}
		if fi.Where != fj.Where {
			return fi.Where < fj.Where
		}
		return fi.Learned < fj.Learned
	})
	if len(rep.Findings) > 0 {
		rep.MaxProbability = rep.Findings[0].Probability
	}
	return rep
}
