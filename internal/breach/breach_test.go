package breach

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"disasso/internal/anonymity"
	"disasso/internal/core"
	"disasso/internal/dataset"
)

// propConfig is one random-dataset configuration of the property sweep. The
// acceptance bar is ≥ 4 distinct configs; cluster sizes stay small enough
// that the oracle's factorial enumeration terminates for most pairs.
type propConfig struct {
	name            string
	k, m            int
	maxCluster      int
	records, domain int
	maxLen          int
	seed            uint64
}

var propConfigs = []propConfig{
	{name: "k2m2", k: 2, m: 2, maxCluster: 6, records: 40, domain: 14, maxLen: 4, seed: 101},
	{name: "k3m2", k: 3, m: 2, maxCluster: 7, records: 60, domain: 18, maxLen: 5, seed: 202},
	{name: "k3m3", k: 3, m: 3, maxCluster: 8, records: 50, domain: 12, maxLen: 4, seed: 303},
	{name: "k4m2", k: 4, m: 2, maxCluster: 9, records: 70, domain: 20, maxLen: 5, seed: 404},
	{name: "k2m2-dense", k: 2, m: 2, maxCluster: 5, records: 30, domain: 8, maxLen: 6, seed: 505},
}

// genDataset builds a small random dataset with a skewed term distribution
// (squaring a uniform variate favors low ids), which reliably produces the
// frequent in-chunk terms the cover problem feeds on.
func genDataset(cfg propConfig) *dataset.Dataset {
	rng := rand.New(rand.NewPCG(cfg.seed, 0xDA7A))
	records := make([]dataset.Record, 0, cfg.records)
	for len(records) < cfg.records {
		length := 1 + rng.IntN(cfg.maxLen)
		terms := make([]dataset.Term, 0, length)
		for i := 0; i < length; i++ {
			u := rng.Float64()
			terms = append(terms, dataset.Term(float64(cfg.domain)*u*u))
		}
		r := dataset.NewRecord(terms...)
		if len(r) > 0 {
			records = append(records, r)
		}
	}
	return dataset.FromRecords(records)
}

func (cfg propConfig) options() core.Options {
	return core.Options{K: cfg.k, M: cfg.m, MaxClusterSize: cfg.maxCluster, Parallel: 1, Seed: cfg.seed}
}

// TestDetectorMatchesOracle proves the fast detector ≡ the brute-force
// reconstruction-enumeration oracle on every property config: every
// reported breach re-derives with the exact same probability, and every
// breach the oracle finds (within budget) is reported. crossCheckNode
// panics on any divergence, which the test surfaces as a failure.
func TestDetectorMatchesOracle(t *testing.T) {
	totalFindings := 0
	for _, cfg := range propConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			a, err := core.Anonymize(genDataset(cfg), cfg.options())
			if err != nil {
				t.Fatalf("anonymize: %v", err)
			}
			for i, n := range a.Clusters {
				brs := core.NodeBreaches(n, a.K)
				totalFindings += len(brs)
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("cluster %d: oracle disagrees with detector: %v", i, r)
						}
					}()
					crossCheckNode(n, a.K, brs)
				}()
			}
		})
	}
	// The sweep must exercise real breaches, not vacuously agree on clean
	// publications.
	if totalFindings == 0 {
		t.Fatalf("property sweep found no breaches across %d configs; the configs no longer exercise the detector", len(propConfigs))
	}
}

// TestRepairedBreachFree proves the tentpole acceptance property on every
// config and worker count: a SafeDisassociation publication audits clean,
// still passes the independent k^m verifier, and is byte-identical across
// worker counts. The unrepaired publication must show a positive breach
// rate somewhere, or the repair proof is vacuous.
func TestRepairedBreachFree(t *testing.T) {
	breachedBefore := 0
	for _, cfg := range propConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			d := genDataset(cfg)
			plain, err := core.Anonymize(d, cfg.options())
			if err != nil {
				t.Fatalf("anonymize: %v", err)
			}
			breachedBefore += len(Audit(plain).Findings)

			var byWorkers []*core.Anonymized
			for _, workers := range []int{1, 4} {
				opts := cfg.options()
				opts.SafeDisassociation = true
				opts.Parallel = workers
				repaired, err := core.Anonymize(d, opts)
				if err != nil {
					t.Fatalf("anonymize (safe, %d workers): %v", workers, err)
				}
				rep := Audit(repaired)
				if !rep.Clean() {
					t.Fatalf("%d workers: repaired publication still has %d breaches; worst %s -> %v with P=%d/%d",
						workers, len(rep.Findings), rep.Findings[0].Where, rep.Findings[0].Learned,
						rep.Findings[0].Num, rep.Findings[0].Den)
				}
				if vr := anonymity.Verify(repaired); !vr.OK() {
					t.Fatalf("%d workers: repaired publication fails the k^m verifier: %v", workers, vr.Err())
				}
				if vr := anonymity.VerifyAgainstOriginal(repaired, d); !vr.OK() {
					t.Fatalf("%d workers: repaired publication diverges from original: %v", workers, vr.Err())
				}
				byWorkers = append(byWorkers, repaired)
			}
			if !reflect.DeepEqual(byWorkers[0], byWorkers[1]) {
				t.Fatalf("repaired publication differs between 1 and 4 workers")
			}
		})
	}
	if breachedBefore == 0 {
		t.Fatalf("no config produced a breached publication before repair; the repair property is vacuous")
	}
}

// TestRepairIsIdempotent re-audits and re-verifies that repairing an
// already-safe publication changes nothing: anonymizing twice with
// SafeDisassociation yields identical forests (the repair consumes no
// randomness when there is nothing to repair).
func TestRepairIsIdempotent(t *testing.T) {
	cfg := propConfigs[1]
	d := genDataset(cfg)
	opts := cfg.options()
	opts.SafeDisassociation = true
	a1, err := core.Anonymize(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.Anonymize(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("two safe-disassociation runs over the same input differ")
	}
}

// TestAuditReportShape pins the report bookkeeping: counts, threshold and
// ordering (descending probability, exact comparison).
func TestAuditReportShape(t *testing.T) {
	cfg := propConfigs[4] // the dense config: breaches guaranteed in practice
	a, err := core.Anonymize(genDataset(cfg), cfg.options())
	if err != nil {
		t.Fatal(err)
	}
	rep := Audit(a)
	if rep.K != cfg.k || rep.M != cfg.m {
		t.Fatalf("report carries K=%d M=%d, want %d/%d", rep.K, rep.M, cfg.k, cfg.m)
	}
	if rep.Clusters != len(a.Clusters) {
		t.Fatalf("report counts %d clusters, forest has %d", rep.Clusters, len(a.Clusters))
	}
	if got, want := rep.Threshold, 1/float64(cfg.k); got != want {
		t.Fatalf("threshold %v, want %v", got, want)
	}
	for i := 1; i < len(rep.Findings); i++ {
		a, b := rep.Findings[i-1], rep.Findings[i]
		if a.Num*b.Den < b.Num*a.Den {
			t.Fatalf("findings not sorted by descending probability at %d: %d/%d before %d/%d", i, a.Num, a.Den, b.Num, b.Den)
		}
	}
	for _, f := range rep.Findings {
		if f.Num <= 0 || f.Den <= 0 || f.Num*cfg.k <= f.Den {
			t.Fatalf("finding %+v does not clear the 1/k threshold", f)
		}
		if f.Probability != float64(f.Num)/float64(f.Den) {
			t.Fatalf("finding %+v probability disagrees with Num/Den", f)
		}
	}
	if len(rep.Findings) > 0 && rep.MaxProbability != rep.Findings[0].Probability {
		t.Fatalf("MaxProbability %v != worst finding %v", rep.MaxProbability, rep.Findings[0].Probability)
	}
	clean := &Report{}
	if !clean.Clean() {
		t.Fatal("empty report must be clean")
	}
}
