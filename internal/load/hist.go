package load

import (
	"math"
	"math/bits"
	"time"
)

// Histogram bucket layout: exact unit buckets below 2^histSubBits, then
// log-linear — histSub linear sub-buckets per power of two — above, the
// HDR-histogram shape. Relative quantile error is bounded by 1/histSub
// (6.25%) while the whole structure is a fixed ~7.5 KiB array, so per-client
// per-endpoint histograms are cheap and merging is element-wise addition.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // linear sub-buckets per power of two
	// histBuckets covers every non-negative int64 nanosecond value:
	// histSub exact buckets + histSub per remaining power of two.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// Histogram records latency samples in nanoseconds with bounded memory and
// deterministic quantiles: the same multiset of observations always reports
// the same quantile values (each is the upper bound of the bucket holding
// the rank-th sample, capped at the exact observed maximum). The zero value
// is ready to use. Not safe for concurrent use; give each goroutine its own
// and Merge.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// Observe records one latency sample. Negative durations (clock steps) are
// clamped to zero rather than corrupting the layout.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e ≤ v < 2^(e+1), e ≥ histSubBits
	return histSub + (e-histSubBits)*histSub + int(v>>(e-histSubBits)) - histSub
}

// bucketMax returns the largest value a bucket can hold — the quantile
// representative.
func bucketMax(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	block := (idx - histSub) / histSub
	sub := (idx - histSub) % histSub
	shift := uint(block)
	return (int64(histSub+sub+1) << shift) - 1
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum) }

// Mean returns the average observation, 0 when empty.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Min and Max return the exact observed extremes (0 when empty).
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the exact largest observation, 0 when empty.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the latency at quantile q in [0, 1]: the upper bound of
// the bucket containing the ⌈q·count⌉-th smallest sample, capped at the
// exact maximum (so Quantile(1) == Max). Returns 0 when the histogram is
// empty; q outside [0, 1] is clamped.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var seen uint64
	for idx, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketMax(idx)
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max) // unreachable: counts sum to count
}

// Merge folds other into h. Both histograms keep working afterwards.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
}
