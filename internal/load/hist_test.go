package load

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"time"
)

// TestHistogramGoldenQuantiles pins the exact quantile values of a known
// input stream, so the reporting layer cannot silently drift: 1..1000 ns,
// one observation each. Under the log-linear layout (16 sub-buckets per
// power of two) the expected values are bucket upper bounds: rank 500 lands
// in [496, 511], rank 950 in [928, 959], rank 990 in [960, 991]; the p100
// bucket bound 1023 is capped at the exact observed max.
func TestHistogramGoldenQuantiles(t *testing.T) {
	var h Histogram
	for v := 1; v <= 1000; v++ {
		h.Observe(time.Duration(v))
	}
	golden := []struct {
		q    float64
		want time.Duration
	}{
		{0, 1},      // rank clamps to 1 → first sample's bucket, exact below 16
		{0.5, 511},  // rank 500 → bucket [496, 511]
		{0.95, 959}, // rank 950 → bucket [928, 959]
		{0.99, 991}, // rank 990 → bucket [960, 991]
		{1, 1000},   // bucket [992, 1023] capped at the exact max
	}
	for _, g := range golden {
		if got := h.Quantile(g.q); got != g.want {
			t.Errorf("Quantile(%v) = %d, want %d", g.q, got, g.want)
		}
	}
	if h.Count() != 1000 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Sum() != 500500 {
		t.Errorf("Sum = %d", h.Sum())
	}
	if h.Mean() != 500 {
		t.Errorf("Mean = %d", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Errorf("Min, Max = %d, %d", h.Min(), h.Max())
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(-5 * time.Second) // clock step: clamped to 0
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Errorf("negative observation: min=%d max=%d count=%d", h.Min(), h.Max(), h.Count())
	}
	h.Observe(7)
	if h.Quantile(-1) != 0 { // q clamps low
		t.Errorf("Quantile(-1) = %d", h.Quantile(-1))
	}
	if h.Quantile(2) != 7 { // q clamps high
		t.Errorf("Quantile(2) = %d", h.Quantile(2))
	}
}

// TestHistogramExactBelowSixteen: the unit buckets report small values
// exactly.
func TestHistogramExactBelowSixteen(t *testing.T) {
	var h Histogram
	for v := 0; v < 16; v++ {
		h.Observe(time.Duration(v))
	}
	for i := 1; i <= 16; i++ {
		want := time.Duration(i - 1) // rank i is value i-1
		if got := h.Quantile(float64(i) / 16); got != want {
			t.Errorf("Quantile(%d/16) = %d, want %d", i, got, want)
		}
	}
}

// TestHistogramErrorBoundAndMerge: against a sorted reference, every
// quantile is ≥ the true order statistic and within the layout's 1/16
// relative error; merging per-client histograms equals observing the
// concatenated stream.
func TestHistogramErrorBoundAndMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	var merged, whole Histogram
	var all []int64
	for c := 0; c < 4; c++ {
		var h Histogram
		for i := 0; i < 2500; i++ {
			v := rng.Int64N(1 << uint(4+rng.IntN(30)))
			all = append(all, v)
			h.Observe(time.Duration(v))
			whole.Observe(time.Duration(v))
		}
		merged.Merge(&h)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		rank := int(math.Ceil(q * float64(len(all)))) // the implementation's rank rule
		if rank < 1 {
			rank = 1
		}
		truth := all[rank-1]
		got := int64(merged.Quantile(q))
		if got < truth {
			t.Errorf("q=%v: reported %d below true order statistic %d", q, got, truth)
		}
		if limit := truth + truth/16 + 1; got > limit {
			t.Errorf("q=%v: reported %d exceeds error bound %d (truth %d)", q, got, limit, truth)
		}
		if whole.Quantile(q) != merged.Quantile(q) {
			t.Errorf("q=%v: merged %d != whole-stream %d", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Error("merged aggregates differ from whole-stream aggregates")
	}
}
