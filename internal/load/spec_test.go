package load

import (
	"strings"
	"testing"
)

func TestParseSpecDefaultsAndParams(t *testing.T) {
	s, err := ParseSpec(`
		# a comment line
		singleton weight=10 zipf=1.5
		itemset min=3 max=4   # trailing comment
		reconstruct samples=2; publish weight=2
		delete
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) != 5 {
		t.Fatalf("got %d entries, want 5: %+v", len(s.Entries), s.Entries)
	}
	e := s.Entries[0]
	if e.Kind != KindSingleton || e.Weight != 10 || e.Zipf != 1.5 {
		t.Errorf("singleton entry = %+v", e)
	}
	e = s.Entries[1]
	if e.Kind != KindItemset || e.Weight != 1 || e.MinSize != 3 || e.MaxSize != 4 {
		t.Errorf("itemset entry = %+v", e)
	}
	e = s.Entries[2]
	if e.Kind != KindReconstruct || e.Samples != 2 {
		t.Errorf("reconstruct entry = %+v", e)
	}
	if s.Entries[3].Kind != KindPublish || s.Entries[3].Weight != 2 {
		t.Errorf("publish entry = %+v", s.Entries[3])
	}
	if s.Entries[4].Kind != KindDelete || s.Entries[4].Weight != 1 {
		t.Errorf("delete entry = %+v", s.Entries[4])
	}
	if s.TotalWeight() != 10+1+1+2+1 {
		t.Errorf("TotalWeight = %d", s.TotalWeight())
	}
}

// TestParseSpecCommentWithSemicolon: a comment runs to end of line, so a
// ';' inside it must not start a new entry.
func TestParseSpecCommentWithSemicolon(t *testing.T) {
	s, err := ParseSpec("singleton weight=1 # head terms; tuned later\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Entries) != 1 || s.Entries[0].Kind != KindSingleton {
		t.Fatalf("entries = %+v", s.Entries)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"empty", "", "no entries"},
		{"comments only", "# nothing\n  \n", "no entries"},
		{"unknown kind", "scan weight=1", "unknown op kind"},
		{"malformed param", "singleton weight", "key=value"},
		{"weight zero", "singleton weight=0", "weight"},
		{"weight huge", "singleton weight=9999999", "weight"},
		{"zipf negative", "singleton zipf=-1", "zipf"},
		{"zipf nan", "singleton zipf=NaN", "zipf"},
		{"zipf huge", "singleton zipf=99", "zipf"},
		{"wrong key for kind", "publish zipf=1", "not valid"},
		{"samples on itemset", "itemset samples=3", "not valid"},
		{"min gt max", "itemset min=4 max=2", "exceeds"},
		{"size cap", "itemset min=1 max=99", "max"},
		{"samples cap", "reconstruct samples=1000", "samples"},
		{"long line", "singleton " + strings.Repeat("x", 2000), "longer"},
		{"too many entries", strings.Repeat("publish\n", 100), "entries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseSpec(tc.in); err == nil {
				t.Fatalf("ParseSpec(%q) accepted", tc.in)
			} else if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("ParseSpec(%q) error %q does not mention %q", tc.in, err, tc.wantSub)
			}
		})
	}
}

// TestSpecStringRoundTrip: String() is a canonical form the parser accepts
// and reproduces.
func TestSpecStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"singleton\n",
		"singleton weight=3 zipf=0\nitemset min=1 max=16\nreconstruct samples=64\npublish weight=1000000\ndelete\n",
		"append count=100 min=1 max=5\nremove weight=2\n",
		DefaultSpec().String(),
	} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		canon := s.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("ParseSpec(String()) of %q rejected %q: %v", in, canon, err)
		}
		if again.String() != canon {
			t.Fatalf("round trip not stable:\nfirst:  %q\nsecond: %q", canon, again.String())
		}
	}
}

func TestDefaultSpecHasEveryKind(t *testing.T) {
	kinds := map[string]bool{}
	for _, e := range DefaultSpec().Entries {
		kinds[e.Kind] = true
	}
	for _, k := range []string{KindSingleton, KindItemset, KindReconstruct, KindPublish, KindDelete} {
		if !kinds[k] {
			t.Errorf("default spec lacks %q", k)
		}
	}
}
