package load

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// testPublication anonymizes a small random dataset — the substrate every
// model test draws workloads from.
func testPublication(t *testing.T, seed uint64, n, domain, maxLen, k, m int) *core.Anonymized {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed^0xD15A))
	var records []dataset.Record
	for i := 0; i < n; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(maxLen))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(domain))
		}
		records = append(records, dataset.NewRecord(terms...))
	}
	a, err := core.Anonymize(dataset.FromRecords(records), core.Options{K: k, M: m, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestStreamDeterminism: the op sequence is a pure function of
// (publication, spec, seed, client id) — the property the soak tests and
// replayable load runs rely on.
func TestStreamDeterminism(t *testing.T) {
	a := testPublication(t, 5, 300, 60, 6, 3, 2)
	spec := DefaultSpec()
	m1, err := NewModel(a, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewModel(a, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	for client := 0; client < 3; client++ {
		s1, s2 := m1.Stream(client), m2.Stream(client)
		for i := 0; i < 500; i++ {
			o1, o2 := s1.Next(), s2.Next()
			if !reflect.DeepEqual(o1, o2) {
				t.Fatalf("client %d op %d differs: %+v vs %+v", client, i, o1, o2)
			}
		}
	}
	// Distinct clients and distinct seeds must not replay the same stream.
	diff := 0
	s1, s3 := m1.Stream(0), m1.Stream(1)
	for i := 0; i < 200; i++ {
		if !reflect.DeepEqual(s1.Next(), s3.Next()) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("clients 0 and 1 emitted identical 200-op streams")
	}
	m3, err := NewModel(a, spec, 43)
	if err != nil {
		t.Fatal(err)
	}
	diff = 0
	s1, s4 := m1.Stream(0), m3.Stream(0)
	for i := 0; i < 200; i++ {
		if !reflect.DeepEqual(s1.Next(), s4.Next()) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seeds 42 and 43 emitted identical 200-op streams")
	}
}

// TestStreamOpsWellFormed: every generated op respects its mix entry — the
// itemset sizes, the sample caps, terms inside the published domain — and
// multi-term itemsets only combine terms that co-occur in one cluster.
func TestStreamOpsWellFormed(t *testing.T) {
	a := testPublication(t, 9, 400, 80, 6, 4, 2)
	spec, err := ParseSpec(`
		singleton weight=4 zipf=1.3
		itemset weight=4 min=2 max=4
		reconstruct weight=1 samples=3
		publish weight=1
		delete weight=1
		append weight=1 count=5 min=1 max=3
		remove weight=1
	`)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewModel(a, spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	domain := dataset.Record(model.terms).Normalize()
	seen := map[OpKind]int{}
	st := model.Stream(0)
	for i := 0; i < 4000; i++ {
		op := st.Next()
		seen[op.Kind]++
		if op.Entry < 0 || op.Entry >= len(spec.Entries) {
			t.Fatalf("op %d: entry index %d out of range", i, op.Entry)
		}
		e := spec.Entries[op.Entry]
		switch op.Kind {
		case OpSupport:
			if !op.Itemset.IsNormalized() || len(op.Itemset) == 0 {
				t.Fatalf("op %d: bad itemset %v", i, op.Itemset)
			}
			if !domain.ContainsAll(op.Itemset) {
				t.Fatalf("op %d: itemset %v outside the published domain", i, op.Itemset)
			}
			switch e.Kind {
			case KindSingleton:
				if len(op.Itemset) != 1 {
					t.Fatalf("op %d: singleton entry produced %v", i, op.Itemset)
				}
			case KindItemset:
				if len(op.Itemset) > e.MaxSize {
					t.Fatalf("op %d: itemset %v exceeds max=%d", i, op.Itemset, e.MaxSize)
				}
				if !coOccursInOneCluster(model, op.Itemset) {
					t.Fatalf("op %d: itemset %v terms do not co-occur in any cluster", i, op.Itemset)
				}
			default:
				t.Fatalf("op %d: OpSupport from entry kind %q", i, e.Kind)
			}
		case OpReconstruct:
			if op.Samples != 3 {
				t.Fatalf("op %d: samples = %d", i, op.Samples)
			}
		case OpPublish, OpDelete, OpRemove:
			// carry no payload
			if op.Batch != nil {
				t.Fatalf("op %d: kind %v carries a batch", i, op.Kind)
			}
		case OpAppend:
			if len(op.Batch) != e.Count {
				t.Fatalf("op %d: append batch has %d records, want count=%d", i, len(op.Batch), e.Count)
			}
			for _, r := range op.Batch {
				if len(r) == 0 || !r.IsNormalized() {
					t.Fatalf("op %d: bad append record %v", i, r)
				}
				if len(r) > e.MaxSize {
					t.Fatalf("op %d: append record %v exceeds max=%d", i, r, e.MaxSize)
				}
				if !domain.ContainsAll(r) {
					t.Fatalf("op %d: append record %v outside the published domain", i, r)
				}
			}
		default:
			t.Fatalf("op %d: unknown kind %v", i, op.Kind)
		}
	}
	for _, k := range []OpKind{OpSupport, OpReconstruct, OpPublish, OpDelete, OpAppend, OpRemove} {
		if seen[k] == 0 {
			t.Errorf("4000 ops never drew kind %v (mix %+v)", k, seen)
		}
	}
}

// coOccursInOneCluster reports whether some cluster pool contains the whole
// itemset.
func coOccursInOneCluster(m *Model, s dataset.Record) bool {
	for _, pool := range m.pools {
		if pool != nil && dataset.Record(pool).ContainsAll(s) {
			return true
		}
	}
	return false
}

// TestSingletonZipfSkew: with a strong skew, the head support-rank terms
// must dominate the draw — the repeat-heavy property the support cache's
// benchmark leans on.
func TestSingletonZipfSkew(t *testing.T) {
	a := testPublication(t, 3, 500, 200, 8, 3, 2)
	spec, err := ParseSpec("singleton zipf=1.4")
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewModel(a, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if model.NumTerms() < 50 {
		t.Fatalf("publication too small for the skew check: %d terms", model.NumTerms())
	}
	head := map[dataset.Term]bool{}
	for _, t := range model.terms[:10] {
		head[t] = true
	}
	st := model.Stream(0)
	const draws = 5000
	headHits := 0
	for i := 0; i < draws; i++ {
		if head[st.Next().Itemset[0]] {
			headHits++
		}
	}
	// Under uniform draws the top-10 of ≥50 terms would get ≤ ~20%; the
	// Zipf(1.4) head mass over even 500 ranks is ≥ 45%. Split the
	// difference with margin for sampling noise.
	if frac := float64(headHits) / draws; frac < 0.30 {
		t.Errorf("top-10 terms drew only %.1f%% of singleton queries, want the Zipf head to dominate", 100*frac)
	}
}

// TestItemsetUniverseRepeats: itemset draws come from the entry's fixed
// pre-drawn universe, so a bounded universe makes queries repeat — the
// property the support cache's throughput win rests on.
func TestItemsetUniverseRepeats(t *testing.T) {
	a := testPublication(t, 4, 300, 80, 6, 3, 2)
	spec, err := ParseSpec("itemset min=2 max=3 universe=16 zipf=1.2")
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewModel(a, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(model.universes[0]); n > 16 {
		t.Fatalf("universe holds %d itemsets, cap 16", n)
	}
	distinct := map[string]int{}
	st := model.Stream(0)
	for i := 0; i < 1000; i++ {
		distinct[st.Next().Itemset.String()]++
	}
	if len(distinct) > 16 {
		t.Errorf("1000 draws produced %d distinct itemsets from a 16-itemset universe", len(distinct))
	}
	// Zipf over the universe: some itemset must clearly dominate a uniform
	// share (1000/16 ≈ 62).
	maxHits := 0
	for _, n := range distinct {
		if n > maxHits {
			maxHits = n
		}
	}
	if maxHits < 100 {
		t.Errorf("head itemset drawn only %d of 1000 times; want Zipf-skewed repeats", maxHits)
	}
}

// TestNewModelErrors: mixes that could only ever error are rejected at
// compile time.
func TestNewModelErrors(t *testing.T) {
	empty := &core.Anonymized{K: 2, M: 2}
	for _, in := range []string{"singleton", "itemset"} {
		spec, err := ParseSpec(in)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewModel(empty, spec, 1); err == nil {
			t.Errorf("NewModel(empty publication, %q) accepted", in)
		}
	}
	// Churn-only mixes are fine against an empty publication.
	spec, err := ParseSpec("publish; delete")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewModel(empty, spec, 1); err != nil {
		t.Errorf("NewModel(empty publication, churn-only) rejected: %v", err)
	}
	if _, err := NewModel(empty, &Spec{}, 1); err == nil {
		t.Error("NewModel with an empty spec accepted")
	}
}
