// Package load generates query workloads against a published disassociated
// dataset — the traffic side of the paper's evaluation. Terrovitis et al.
// judge a publication by how query workloads behave against it (the Figure
// 6/7 workloads over POS/WV1/WV2), and the ROADMAP north star is a service
// surviving heavy traffic; this package is the substrate for both: a seeded,
// deterministic workload model that draws operation streams from a
// snapshot's own term domain, usable as a load generator (cmd/loadbench)
// and as the op source of correctness-under-concurrency tests.
//
// A workload is described by a small text mix spec (ParseSpec), compiled
// against one publication into a Model, and consumed as independent
// per-client Streams: same spec, same publication, same seed — same ops,
// regardless of how many clients drain them or how they interleave.
package load

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Op kinds a workload mix can contain, keyed by their spec-line names.
const (
	// KindSingleton issues single-term support queries, terms drawn
	// Zipf-skewed from the publication's domain ranked by support — the
	// repeat-heavy head-dominated mix real query traffic shows.
	KindSingleton = "singleton"
	// KindItemset issues multi-term support queries whose terms co-occur in
	// one published cluster, so the posting-list intersection is non-trivial
	// (uniformly random term pairs almost never share a cluster).
	KindItemset = "itemset"
	// KindReconstruct issues reconstruction-sampling calls.
	KindReconstruct = "reconstruct"
	// KindPublish issues publication churn: re-anonymize and swap in a
	// snapshot (drivers direct it at a scratch dataset or a replace=1
	// republish).
	KindPublish = "publish"
	// KindDelete issues deletion churn, the other half of snapshot swap.
	KindDelete = "delete"
	// KindAppend issues incremental republish churn: a batch of Count fresh
	// records (sized by min/max, drawn from the publication's cluster pools so
	// they look like resident data) appended through the delta endpoint.
	KindAppend = "append"
	// KindRemove issues the other half of delta churn: the driver removes the
	// oldest batch it previously appended (the model cannot know what is
	// resident, so the op carries no records of its own).
	KindRemove = "remove"
)

// Validation caps of the spec parser. They bound what a hostile or fuzzed
// spec can make a Model allocate or a driver send, and double as the
// documented limits of the format.
const (
	maxSpecEntries  = 64
	maxSpecWeight   = 1_000_000
	maxSpecZipf     = 8.0
	maxItemsetSize  = 16
	maxSamples      = 64
	maxSpecLine     = 1024
	maxUniverseSize = 65_536
	maxDeltaCount   = 4096
)

// Entry is one parsed mix line: an op kind, its relative weight and its
// kind-specific parameters (defaults filled in by the parser).
type Entry struct {
	Kind   string
	Weight int
	// Zipf is the skew exponent s: the query at popularity rank r is drawn
	// with probability proportional to 1/(r+1)^s, 0 meaning uniform. For
	// singletons the rank space is the domain ordered by support; for
	// itemsets it is the entry's query universe.
	Zipf float64
	// MinSize and MaxSize bound the itemset size drawn per query.
	MinSize, MaxSize int
	// Universe is the itemset entry's query-universe size: the model
	// pre-draws this many co-occurring itemsets once, and the stream picks
	// among them Zipf-skewed — the standard workload-benchmark shape
	// (popular queries repeat), and what makes a mix repeat-heavy.
	Universe int
	// Samples is the per-reconstruction-call sample count.
	Samples int
	// Count is the records-per-delta batch size of append/remove entries.
	Count int
}

// Spec is a parsed workload mix: a weighted set of op kinds.
type Spec struct {
	Entries []Entry
}

// DefaultSpec returns the mixed read-heavy workload loadbench and the soak
// tests use when no spec is given: Zipf-skewed singletons dominating,
// correlated itemsets, a trickle of reconstructions and snapshot churn.
func DefaultSpec() *Spec {
	s, err := ParseSpec(`
		singleton weight=60 zipf=1.1
		itemset weight=25 min=2 max=3
		reconstruct weight=5 samples=1
		publish weight=5
		delete weight=5
	`)
	if err != nil {
		panic("load: default spec invalid: " + err.Error())
	}
	return s
}

// ParseSpec parses the workload mix format: one entry per line (";" also
// separates entries), each `kind key=value ...`, with "#" starting a
// comment. Kinds and their keys:
//
//	singleton   [weight=N] [zipf=S]
//	itemset     [weight=N] [min=N] [max=N] [universe=N] [zipf=S]
//	reconstruct [weight=N] [samples=N]
//	publish     [weight=N]
//	delete      [weight=N]
//	append      [weight=N] [count=N] [min=N] [max=N]
//	remove      [weight=N]
//
// Weights default to 1; zipf defaults to 1.1 (0 means uniform); itemset
// sizes default to min=2 max=3 over a universe of 1024 pre-drawn itemsets;
// samples defaults to 1; delta batches default to count=8 records of min=2
// max=3 terms. The same kind may appear several times (e.g. two singleton
// entries with different skews). At least one entry is required.
func ParseSpec(text string) (*Spec, error) {
	spec := &Spec{}
	lineNo := 0
	for line := range strings.Lines(text) {
		lineNo++
		if len(line) > maxSpecLine {
			return nil, fmt.Errorf("load: spec line %d longer than %d bytes", lineNo, maxSpecLine)
		}
		// The comment runs to end of line, so it is stripped before the
		// line splits into ';'-separated statements — a ';' inside a
		// comment is commentary, not a new entry.
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, stmt := range strings.Split(line, ";") {
			fields := strings.Fields(stmt)
			if len(fields) == 0 {
				continue
			}
			if len(spec.Entries) >= maxSpecEntries {
				return nil, fmt.Errorf("load: spec has more than %d entries", maxSpecEntries)
			}
			e, err := parseEntry(fields)
			if err != nil {
				return nil, fmt.Errorf("load: spec line %d: %w", lineNo, err)
			}
			spec.Entries = append(spec.Entries, e)
		}
	}
	if len(spec.Entries) == 0 {
		return nil, fmt.Errorf("load: spec has no entries")
	}
	return spec, nil
}

// parseEntry parses one `kind key=value ...` statement.
func parseEntry(fields []string) (Entry, error) {
	e := Entry{
		Kind:    fields[0],
		Weight:  1,
		Zipf:    1.1,
		MinSize: 2, MaxSize: 3,
		Universe: 1024,
		Samples:  1,
		Count:    8,
	}
	switch e.Kind {
	case KindSingleton, KindItemset, KindReconstruct, KindPublish, KindDelete,
		KindAppend, KindRemove:
	default:
		return Entry{}, fmt.Errorf("unknown op kind %q", e.Kind)
	}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Entry{}, fmt.Errorf("%s: malformed parameter %q (want key=value)", e.Kind, f)
		}
		if err := setParam(&e, key, val); err != nil {
			return Entry{}, fmt.Errorf("%s: %w", e.Kind, err)
		}
	}
	if e.MinSize > e.MaxSize {
		return Entry{}, fmt.Errorf("%s: min=%d exceeds max=%d", e.Kind, e.MinSize, e.MaxSize)
	}
	return e, nil
}

// setParam applies one key=value pair, validating both that the key belongs
// to the entry's kind and that the value is inside the format's caps.
func setParam(e *Entry, key, val string) error {
	intIn := func(lo, hi int) (int, error) {
		n, err := strconv.Atoi(val)
		if err != nil || n < lo || n > hi {
			return 0, fmt.Errorf("%s=%q must be an integer in [%d, %d]", key, val, lo, hi)
		}
		return n, nil
	}
	switch key {
	case "weight":
		n, err := intIn(1, maxSpecWeight)
		if err != nil {
			return err
		}
		e.Weight = n
		return nil
	case "zipf":
		if e.Kind != KindSingleton && e.Kind != KindItemset {
			break
		}
		s, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(s) || s < 0 || s > maxSpecZipf {
			return fmt.Errorf("zipf=%q must be a number in [0, %g]", val, maxSpecZipf)
		}
		e.Zipf = s
		return nil
	case "min":
		if e.Kind != KindItemset && e.Kind != KindAppend {
			break
		}
		n, err := intIn(1, maxItemsetSize)
		if err != nil {
			return err
		}
		e.MinSize = n
		return nil
	case "max":
		if e.Kind != KindItemset && e.Kind != KindAppend {
			break
		}
		n, err := intIn(1, maxItemsetSize)
		if err != nil {
			return err
		}
		e.MaxSize = n
		return nil
	case "count":
		if e.Kind != KindAppend {
			break
		}
		n, err := intIn(1, maxDeltaCount)
		if err != nil {
			return err
		}
		e.Count = n
		return nil
	case "universe":
		if e.Kind != KindItemset {
			break
		}
		n, err := intIn(1, maxUniverseSize)
		if err != nil {
			return err
		}
		e.Universe = n
		return nil
	case "samples":
		if e.Kind != KindReconstruct {
			break
		}
		n, err := intIn(1, maxSamples)
		if err != nil {
			return err
		}
		e.Samples = n
		return nil
	}
	return fmt.Errorf("parameter %q not valid for this kind", key)
}

// String renders the spec back in the format ParseSpec accepts, one entry
// per line with every parameter explicit — a canonical form, so
// ParseSpec(s.String()).String() == s.String().
func (s *Spec) String() string {
	var b strings.Builder
	for _, e := range s.Entries {
		fmt.Fprintf(&b, "%s weight=%d", e.Kind, e.Weight)
		switch e.Kind {
		case KindSingleton:
			fmt.Fprintf(&b, " zipf=%s", strconv.FormatFloat(e.Zipf, 'g', -1, 64))
		case KindItemset:
			fmt.Fprintf(&b, " min=%d max=%d universe=%d zipf=%s",
				e.MinSize, e.MaxSize, e.Universe, strconv.FormatFloat(e.Zipf, 'g', -1, 64))
		case KindReconstruct:
			fmt.Fprintf(&b, " samples=%d", e.Samples)
		case KindAppend:
			fmt.Fprintf(&b, " count=%d min=%d max=%d", e.Count, e.MinSize, e.MaxSize)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TotalWeight sums the entry weights (the denominator of each entry's draw
// probability).
func (s *Spec) TotalWeight() int {
	t := 0
	for _, e := range s.Entries {
		t += e.Weight
	}
	return t
}
