package load

import (
	"testing"
)

// FuzzParseWorkloadSpec feeds arbitrary text to the mix-spec parser: no
// panics, entry counts and parameters stay inside the documented caps, and
// any accepted spec must round-trip through its canonical String() form
// unchanged (the same pattern as the dataset/core decoder fuzz targets).
func FuzzParseWorkloadSpec(f *testing.F) {
	f.Add("singleton weight=60 zipf=1.1\nitemset weight=25 min=2 max=3\n")
	f.Add("reconstruct samples=2; publish; delete weight=3")
	f.Add("# comment\nsingleton # tail\n")
	f.Add("singleton weight=1 # head terms; tuned later")
	f.Add("singleton zipf=0.0e0 weight=1000000")
	f.Add("itemset min=16 max=16")
	f.Add("scan weight=1")
	f.Add("singleton weight=-3")
	f.Add("singleton zipf=Inf")
	f.Add(";;;;")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return // rejected input: fine, as long as nothing panicked
		}
		if len(s.Entries) == 0 || len(s.Entries) > maxSpecEntries {
			t.Fatalf("accepted spec has %d entries", len(s.Entries))
		}
		for i, e := range s.Entries {
			if e.Weight < 1 || e.Weight > maxSpecWeight {
				t.Fatalf("entry %d weight %d out of range", i, e.Weight)
			}
			if e.Zipf < 0 || e.Zipf > maxSpecZipf {
				t.Fatalf("entry %d zipf %v out of range", i, e.Zipf)
			}
			if e.MinSize < 1 || e.MaxSize > maxItemsetSize || e.MinSize > e.MaxSize {
				t.Fatalf("entry %d sizes [%d, %d] out of range", i, e.MinSize, e.MaxSize)
			}
			if e.Samples < 1 || e.Samples > maxSamples {
				t.Fatalf("entry %d samples %d out of range", i, e.Samples)
			}
			if e.Universe < 1 || e.Universe > maxUniverseSize {
				t.Fatalf("entry %d universe %d out of range", i, e.Universe)
			}
		}
		canon := s.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q rejected: %v", canon, text, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, again.String())
		}
	})
}
