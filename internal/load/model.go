package load

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// OpKind discriminates the operations a Stream emits.
type OpKind uint8

const (
	// OpSupport is one itemset support query (Op.Itemset).
	OpSupport OpKind = iota
	// OpReconstruct is one reconstruction-sampling call (Op.Samples, Op.Seed).
	OpReconstruct
	// OpPublish asks the driver to publish/republish a snapshot.
	OpPublish
	// OpDelete asks the driver to delete a snapshot.
	OpDelete
	// OpAppend asks the driver to append Op.Batch through the incremental
	// delta-republish endpoint.
	OpAppend
	// OpRemove asks the driver to remove the oldest batch it previously
	// appended (the driver owns the bookkeeping of what is resident; the
	// model only paces the churn).
	OpRemove
)

// String names the kind with its spec-line vocabulary (support ops report
// which mix entry produced them via Op.Entry, not the kind name).
func (k OpKind) String() string {
	switch k {
	case OpSupport:
		return "support"
	case OpReconstruct:
		return KindReconstruct
	case OpPublish:
		return KindPublish
	case OpDelete:
		return KindDelete
	case OpAppend:
		return KindAppend
	case OpRemove:
		return KindRemove
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	// Entry is the index into Spec.Entries of the mix entry that produced
	// the op — drivers bucket latency per entry so two singleton mixes with
	// different skews report separately.
	Entry int
	// Itemset is the queried itemset of an OpSupport (normalized, non-empty).
	Itemset dataset.Record
	// Samples and Seed parameterize an OpReconstruct.
	Samples int
	Seed    uint64
	// Batch is the records of an OpAppend (each normalized, non-empty),
	// drawn from the publication's cluster pools so appended data correlates
	// with the resident domain the way organic growth does.
	Batch []dataset.Record
}

// Model compiles a Spec against one publication: the term domain ranked by
// certain support (the Zipf rank space), per-entry cumulative skew tables,
// and per-cluster co-occurring term pools. A Model is immutable after New
// and safe for concurrent use; all randomness lives in the Streams it hands
// out.
type Model struct {
	spec *Spec
	seed uint64

	// terms is the published domain ordered by descending lower-bound
	// support (ties broken by ascending term id) — rank 0 is the head term.
	terms []dataset.Term

	// zipf[i] is the cumulative weight table of query entry i (nil for
	// churn/reconstruct kinds): P(rank r) ∝ 1/(r+1)^s. For singletons the
	// rank space is terms; for itemsets it is universes[i].
	zipf [][]float64

	// universes[i] is itemset entry i's pre-drawn query universe: the fixed
	// set of co-occurring itemsets the stream picks among Zipf-skewed, so
	// popular queries repeat the way real workloads do.
	universes [][]dataset.Record

	// pools holds each top-level cluster's domain (sorted, deduplicated);
	// poolCum is the cumulative record-span weight used to pick a cluster,
	// so itemsets land in clusters proportionally to the records they govern.
	pools   [][]dataset.Term
	poolCum []float64

	entryCum    []int // cumulative entry weights
	totalWeight int
}

// NewModel compiles the spec against the publication. It fails when the mix
// asks for query ops but the publication's domain (or, for itemsets, every
// cluster pool) is empty — a workload that could only ever error is a
// configuration mistake, not a load profile.
func NewModel(a *core.Anonymized, spec *Spec, seed uint64) (*Model, error) {
	if len(spec.Entries) == 0 {
		return nil, fmt.Errorf("load: spec has no entries")
	}
	m := &Model{spec: spec, seed: seed}

	m.terms = rankTerms(a)
	m.pools, m.poolCum = clusterPools(a)

	m.zipf = make([][]float64, len(spec.Entries))
	m.universes = make([][]dataset.Record, len(spec.Entries))
	m.entryCum = make([]int, len(spec.Entries))
	for i, e := range spec.Entries {
		m.totalWeight += e.Weight
		m.entryCum[i] = m.totalWeight
		switch e.Kind {
		case KindSingleton:
			if len(m.terms) == 0 {
				return nil, fmt.Errorf("load: singleton entry %d: publication has an empty domain", i)
			}
			m.zipf[i] = zipfTable(len(m.terms), e.Zipf)
		case KindItemset:
			if len(m.pools) == 0 {
				return nil, fmt.Errorf("load: itemset entry %d: publication has no non-empty clusters", i)
			}
			m.universes[i] = m.drawUniverse(&spec.Entries[i], uint64(i))
			m.zipf[i] = zipfTable(len(m.universes[i]), e.Zipf)
		case KindAppend:
			if len(m.pools) == 0 {
				return nil, fmt.Errorf("load: append entry %d: publication has no non-empty clusters", i)
			}
		}
	}
	return m, nil
}

// drawUniverse pre-draws an itemset entry's query universe: Universe
// itemsets, each from one cluster's co-occurring terms, deduplicated (the
// duplicate budget is spent on redraws, with a bounded attempt count so
// tiny publications cannot loop forever). The universe is ordered by draw,
// so rank 0 — the Zipf head — is an arbitrary but fixed popular query.
func (m *Model) drawUniverse(e *Entry, idx uint64) []dataset.Record {
	rng := rand.New(rand.NewPCG(m.seed^0x00D17E55E, idx))
	seen := make(map[string]bool, e.Universe)
	universe := make([]dataset.Record, 0, e.Universe)
	for attempts := 0; len(universe) < e.Universe && attempts < 4*e.Universe+64; attempts++ {
		s := drawItemset(rng, m, e)
		key := fmt.Sprint(s)
		if seen[key] {
			continue
		}
		seen[key] = true
		universe = append(universe, s)
	}
	return universe
}

// Spec returns the mix the model was compiled from.
func (m *Model) Spec() *Spec { return m.spec }

// NumTerms returns the size of the rank space singleton draws use.
func (m *Model) NumTerms() int { return len(m.terms) }

// Stream returns the deterministic op stream of client id: the sequence is
// a pure function of (publication, spec, model seed, id). Distinct ids give
// independent streams; the same id always replays the same ops.
func (m *Model) Stream(id int) *Stream {
	return &Stream{
		m: m,
		// Golden-ratio mixing separates per-client streams drawn from one
		// model seed; the second PCG word pins the package so a model and
		// e.g. a reconstruction sampler seeded alike do not correlate.
		rng: rand.New(rand.NewPCG(m.seed+uint64(id)*0x9E3779B97F4A7C15, 0x10AD)),
	}
}

// Stream draws ops from a Model. Not safe for concurrent use — give each
// client goroutine its own Stream.
type Stream struct {
	m   *Model
	rng *rand.Rand
}

// Next returns the stream's next operation.
func (s *Stream) Next() Op {
	m := s.m
	w := s.rng.IntN(m.totalWeight)
	i := sort.SearchInts(m.entryCum, w+1)
	e := &m.spec.Entries[i]
	op := Op{Entry: i}
	switch e.Kind {
	case KindSingleton:
		op.Kind = OpSupport
		op.Itemset = dataset.Record{m.terms[cumSearch(m.zipf[i], s.rng.Float64())]}
	case KindItemset:
		op.Kind = OpSupport
		// A Zipf draw from the entry's fixed universe: popular itemsets
		// repeat. The returned record is shared — callers must not modify.
		op.Itemset = m.universes[i][cumSearch(m.zipf[i], s.rng.Float64())]
	case KindReconstruct:
		op.Kind = OpReconstruct
		op.Samples = e.Samples
		op.Seed = s.rng.Uint64()
	case KindPublish:
		op.Kind = OpPublish
	case KindDelete:
		op.Kind = OpDelete
	case KindAppend:
		op.Kind = OpAppend
		op.Batch = make([]dataset.Record, e.Count)
		for j := range op.Batch {
			op.Batch[j] = drawItemset(s.rng, m, e)
		}
	case KindRemove:
		op.Kind = OpRemove
	}
	return op
}

// drawItemset draws one correlated multi-term itemset: a cluster picked
// with probability proportional to its record span, then size distinct
// terms from that cluster's domain — terms that genuinely co-occur in the
// publication, so the query's posting-list intersection is non-empty.
func drawItemset(rng *rand.Rand, m *Model, e *Entry) dataset.Record {
	pool := m.pools[cumSearch(m.poolCum, rng.Float64())]
	size := e.MinSize + rng.IntN(e.MaxSize-e.MinSize+1)
	if size > len(pool) {
		size = len(pool)
	}
	var picked [maxItemsetSize]dataset.Term
	n := 0
	for n < size {
		t := pool[rng.IntN(len(pool))]
		dup := false
		for _, p := range picked[:n] {
			if p == t {
				dup = true
				break
			}
		}
		if !dup {
			picked[n] = t
			n++
		}
	}
	return dataset.NewRecord(picked[:n]...)
}

// rankTerms returns the published domain ordered by descending certain
// support, ties by ascending term — the support-rank space Zipf skews over.
func rankTerms(a *core.Anonymized) []dataset.Term {
	sup := a.LowerBoundSupports()
	terms := make([]dataset.Term, 0, len(sup))
	for t := range sup {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		si, sj := sup[terms[i]], sup[terms[j]]
		if si != sj {
			return si > sj
		}
		return terms[i] < terms[j]
	})
	return terms
}

// clusterPools collects each top-level cluster's domain and the cumulative
// record-span weights for picking one. Clusters with fewer than two terms
// cannot host a multi-term itemset but still get a pool (singleton draw
// from a tiny cluster is a legitimate query); empty ones are dropped.
func clusterPools(a *core.Anonymized) ([][]dataset.Term, []float64) {
	var pools [][]dataset.Term
	var cum []float64
	total := 0.0
	for _, node := range a.Clusters {
		var pool []dataset.Term
		node.Walk(func(cn *core.ClusterNode) {
			if cn.IsLeaf() {
				for _, c := range cn.Simple.RecordChunks {
					pool = append(pool, c.Domain...)
				}
				pool = append(pool, cn.Simple.TermChunk...)
				return
			}
			for _, c := range cn.SharedChunks {
				pool = append(pool, c.Domain...)
			}
		})
		pool = dataset.Record(pool).Normalize()
		if len(pool) == 0 {
			continue
		}
		pools = append(pools, pool)
		total += float64(node.Size())
		cum = append(cum, total)
	}
	if len(cum) > 0 && total > 0 {
		for i := range cum {
			cum[i] /= total
		}
		cum[len(cum)-1] = 1
	} else {
		// Degenerate publications (every cluster empty of records) still get
		// a uniform table so a pool pick cannot run off the end.
		for i := range cum {
			cum[i] = float64(i+1) / float64(len(cum))
		}
	}
	return pools, cum
}

// zipfTable builds the cumulative weight table over n ranks with exponent
// s: weight(r) = 1/(r+1)^s, normalized so the last cumulative value is 1.
func zipfTable(n int, s float64) []float64 {
	cum := make([]float64, n)
	total := 0.0
	for r := 0; r < n; r++ {
		total += math.Pow(float64(r+1), -s)
		cum[r] = total
	}
	for r := range cum {
		cum[r] /= total
	}
	cum[n-1] = 1 // exact, despite rounding
	return cum
}

// cumSearch maps a uniform u in [0, 1) through a normalized cumulative
// table: the least index whose cumulative value exceeds u.
func cumSearch(cum []float64, u float64) int {
	i := sort.SearchFloat64s(cum, u)
	// SearchFloat64s finds the first cum[i] >= u; when u lands exactly on a
	// boundary the draw belongs to the next bucket.
	if i < len(cum) && cum[i] == u {
		i++
	}
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return i
}
