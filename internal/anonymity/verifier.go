// Package anonymity independently verifies that a disassociated dataset
// satisfies the paper's privacy conditions: k^m-anonymity of every record
// chunk (Section 3), the Lemma 2 subrecord-count condition that closes the
// Example 1 attack (Section 5), Property 1 on shared chunks that closes the
// Figure 5a attack, and the structural invariants of the published form.
//
// The verifier shares no state with the anonymizer — it recomputes every
// check from scratch — so tests can use it as an oracle: if core.Anonymize
// ever emits output this package rejects, one of the two is wrong.
package anonymity

import (
	"fmt"
	"runtime"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/par"
)

// Violation describes one failed check.
type Violation struct {
	// Where locates the problem (e.g. "cluster 3, record chunk 1").
	Where string
	// What states the failed condition.
	What string
}

func (v Violation) String() string { return v.Where + ": " + v.What }

// Report collects the violations found in one verification run.
type Report struct {
	Violations []Violation
}

// OK reports whether no violations were found.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the report is clean, or an error summarizing the
// first violation and the total count.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("anonymity: %d violation(s), first: %s", len(r.Violations), r.Violations[0])
}

func (r *Report) addf(where, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Where: where, What: fmt.Sprintf(format, args...)})
}

// Verify checks the whole anonymized dataset and returns the full report.
// Clusters verify independently, so the checks fan out across GOMAXPROCS
// workers; per-cluster sub-reports merge in cluster order, keeping the
// violation list deterministic.
func Verify(a *core.Anonymized) *Report {
	// Minimum cluster size: a term disclosed only in a term chunk offers at
	// most |P| candidate records, so |P| < k breaks the guarantee (unless
	// the whole dataset is smaller than k — nothing can fix that).
	minSize := a.K
	if total := a.NumRecords(); total < minSize {
		minSize = total
	}
	subs := make([]*Report, len(a.Clusters))
	par.Do(runtime.GOMAXPROCS(0), len(a.Clusters), func(i int) {
		sub := &Report{}
		n := a.Clusters[i]
		where := fmt.Sprintf("cluster %d", i)
		for li, leaf := range n.Leaves(nil) {
			if leaf.Size < minSize {
				sub.addf(fmt.Sprintf("%s, leaf %d", where, li),
					"cluster size %d below k=%d: term-chunk terms have too few candidates", leaf.Size, a.K)
			}
		}
		verifyNode(sub, where, n, a.K, a.M)
		subs[i] = sub
	})
	rep := &Report{}
	for _, sub := range subs {
		rep.Violations = append(rep.Violations, sub.Violations...)
	}
	return rep
}

func verifyNode(rep *Report, where string, n *core.ClusterNode, k, m int) {
	if n.IsLeaf() {
		if len(n.Children) > 0 || len(n.SharedChunks) > 0 {
			rep.addf(where, "leaf node carries children or shared chunks")
		}
		verifyLeaf(rep, where, n.Simple, k, m)
		return
	}
	if len(n.Children) < 2 {
		rep.addf(where, "joint node has %d children, need ≥ 2", len(n.Children))
	}
	verifyJoint(rep, where, n, k, m)
	for i, c := range n.Children {
		verifyNode(rep, fmt.Sprintf("%s, child %d", where, i), c, k, m)
	}
}

// verifyLeaf checks the structural invariants, the k^m-anonymity of every
// record chunk and the Lemma 2 condition of one simple cluster.
func verifyLeaf(rep *Report, where string, cl *core.Cluster, k, m int) {
	if cl.Size <= 0 {
		rep.addf(where, "cluster size %d", cl.Size)
		return
	}
	seen := make(map[dataset.Term]string)
	claim := func(terms dataset.Record, label string) {
		for _, t := range terms {
			if prev, ok := seen[t]; ok {
				rep.addf(where, "term %d appears in both %s and %s", t, prev, label)
			}
			seen[t] = label
		}
	}
	for i, c := range cl.RecordChunks {
		label := fmt.Sprintf("record chunk %d", i)
		claim(c.Domain, label)
		verifyChunkStructure(rep, where+", "+label, c, cl.Size)
		if !core.IsChunkKMAnonymous(c.Domain, c.Subrecords, k, m) {
			rep.addf(where+", "+label, "not %d^%d-anonymous", k, m)
		}
	}
	claim(cl.TermChunk, "term chunk")
	if !cl.TermChunk.IsNormalized() {
		rep.addf(where, "term chunk not normalized: %v", cl.TermChunk)
	}

	// Lemma 2: with an empty term chunk the chunks must hold enough
	// subrecords to populate a valid original cluster.
	if len(cl.TermChunk) == 0 {
		total := 0
		for _, c := range cl.RecordChunks {
			total += len(c.Subrecords)
		}
		h := m
		if v := len(cl.RecordChunks); v < h {
			h = v
		}
		if len(cl.RecordChunks) == 0 {
			rep.addf(where, "cluster has no chunks and no term chunk")
		} else if total < cl.Size+k*(h-1) {
			rep.addf(where, "Lemma 2 violated: %d subrecords < %d + %d·(%d−1)", total, cl.Size, k, h)
		}
	}
}

// verifyChunkStructure checks one chunk's internal invariants against the
// cluster (or joint) size bound.
func verifyChunkStructure(rep *Report, where string, c core.Chunk, sizeBound int) {
	if !c.Domain.IsNormalized() || len(c.Domain) == 0 {
		rep.addf(where, "bad domain %v", c.Domain)
	}
	if len(c.Subrecords) > sizeBound {
		rep.addf(where, "%d subrecords exceed cluster size %d", len(c.Subrecords), sizeBound)
	}
	for j, sr := range c.Subrecords {
		if len(sr) == 0 {
			rep.addf(where, "subrecord %d is empty (empties must be implicit)", j)
			continue
		}
		if !sr.IsNormalized() {
			rep.addf(where, "subrecord %d not normalized: %v", j, sr)
		}
		if !c.Domain.ContainsAll(sr) {
			rep.addf(where, "subrecord %d ⊄ domain: %v ⊄ %v", j, sr, c.Domain)
		}
	}
}

// verifyJoint checks a joint node: shared chunk domains must be pairwise
// disjoint, disjoint from descendant term chunks, and each shared chunk must
// be k-anonymous when its domain meets T^r (Property 1) or k^m-anonymous
// otherwise.
func verifyJoint(rep *Report, where string, n *core.ClusterNode, k, m int) {
	// T^r: record-chunk terms of descendant leaves plus shared-chunk terms
	// of descendant joints (the node's own shared chunks are excluded — they
	// are what is being checked).
	tr := make(map[dataset.Term]bool)
	termChunkTerms := make(map[dataset.Term]bool)
	for _, child := range n.Children {
		child.Walk(func(cn *core.ClusterNode) {
			if cn.IsLeaf() {
				for _, c := range cn.Simple.RecordChunks {
					for _, t := range c.Domain {
						tr[t] = true
					}
				}
				for _, t := range cn.Simple.TermChunk {
					termChunkTerms[t] = true
				}
			} else {
				for _, c := range cn.SharedChunks {
					for _, t := range c.Domain {
						tr[t] = true
					}
				}
			}
		})
	}

	size := n.Size()
	claimed := make(map[dataset.Term]bool)
	for i, c := range n.SharedChunks {
		label := fmt.Sprintf("%s, shared chunk %d", where, i)
		verifyChunkStructure(rep, label, c, size)
		conflict := false
		for _, t := range c.Domain {
			if claimed[t] {
				rep.addf(label, "term %d appears in two shared chunks of the same joint", t)
			}
			claimed[t] = true
			if termChunkTerms[t] {
				rep.addf(label, "term %d is both in a shared chunk and in a descendant term chunk", t)
			}
			if tr[t] {
				conflict = true
			}
		}
		if conflict {
			if !core.IsChunkKAnonymous(c.Domain, c.Subrecords, k) {
				rep.addf(label, "domain meets T^r but chunk is not %d-anonymous (Property 1)", k)
			}
		} else if !core.IsChunkKMAnonymous(c.Domain, c.Subrecords, k, m) {
			rep.addf(label, "not %d^%d-anonymous", k, m)
		}
	}
}

// VerifyAgainstOriginal adds cross-checks that need the original dataset:
// the anonymized output must cover exactly the original terms (disassociation
// never deletes or invents terms), and the total record count must match.
func VerifyAgainstOriginal(a *core.Anonymized, d *dataset.Dataset) *Report {
	rep := Verify(a)
	if got, want := a.NumRecords(), d.Len(); got != want {
		rep.addf("dataset", "anonymized covers %d records, original has %d", got, want)
	}
	origDomain := dataset.NewRecord(d.Domain()...)
	anonDomain := dataset.Record(a.Domain())
	if !origDomain.Equal(anonDomain) {
		missing := origDomain.Subtract(anonDomain)
		invented := anonDomain.Subtract(origDomain)
		rep.addf("dataset", "domain mismatch: %d terms missing %v, %d invented %v",
			len(missing), truncate(missing), len(invented), truncate(invented))
	}
	return rep
}

func truncate(r dataset.Record) dataset.Record {
	if len(r) > 8 {
		return r[:8]
	}
	return r
}
