package anonymity

import (
	"math/rand/v2"
	"strings"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

func rec(terms ...dataset.Term) dataset.Record { return dataset.NewRecord(terms...) }

// figure2b builds the paper's anonymized dataset of Figure 2b by hand.
func figure2b() *core.Anonymized {
	const (
		itunes dataset.Term = iota
		flu
		madonna
		ikea
		ruby
		viagra
		audiA4
		sonyTV
		iphoneSDK
		digitalCam
		panicDis
		playboy
	)
	p1 := &core.Cluster{
		Size: 5,
		RecordChunks: []core.Chunk{
			{
				Domain: rec(itunes, flu, madonna),
				Subrecords: []dataset.Record{
					rec(itunes, flu, madonna), rec(madonna, flu), rec(itunes, madonna),
					rec(itunes, flu), rec(itunes, flu, madonna),
				},
			},
			{
				Domain: rec(audiA4, sonyTV),
				Subrecords: []dataset.Record{
					rec(audiA4, sonyTV), rec(audiA4, sonyTV), rec(audiA4, sonyTV),
				},
			},
		},
		TermChunk: rec(ikea, viagra, ruby),
	}
	p2 := &core.Cluster{
		Size: 5,
		RecordChunks: []core.Chunk{
			{
				Domain: rec(madonna, iphoneSDK, digitalCam),
				Subrecords: []dataset.Record{
					rec(madonna, digitalCam), rec(iphoneSDK, madonna),
					rec(iphoneSDK, digitalCam, madonna), rec(iphoneSDK, digitalCam),
					rec(iphoneSDK, digitalCam, madonna),
				},
			},
		},
		TermChunk: rec(panicDis, playboy, ikea, ruby),
	}
	return &core.Anonymized{
		K: 3, M: 2,
		Clusters: []*core.ClusterNode{{Simple: p1}, {Simple: p2}},
	}
}

func TestVerifyAcceptsFigure2b(t *testing.T) {
	rep := Verify(figure2b())
	if !rep.OK() {
		t.Fatalf("the paper's own example rejected: %v", rep.Violations)
	}
	if rep.Err() != nil {
		t.Error("Err() must be nil for a clean report")
	}
}

func TestVerifyAcceptsFigure3JointCluster(t *testing.T) {
	// Figure 3: P1 and P2 joined with shared chunk {ikea, ruby}.
	const (
		ikea dataset.Term = 3
		ruby dataset.Term = 4
	)
	a := figure2b()
	p1 := a.Clusters[0].Simple
	p2 := a.Clusters[1].Simple
	p1.TermChunk = rec(5)      // viagra
	p2.TermChunk = rec(10, 11) // panic disorder, playboy
	joint := &core.ClusterNode{
		Children: []*core.ClusterNode{{Simple: p1}, {Simple: p2}},
		SharedChunks: []core.Chunk{{
			Domain: rec(ikea, ruby),
			Subrecords: []dataset.Record{
				rec(ikea, ruby), rec(ruby), rec(ikea), rec(ikea, ruby), rec(ikea, ruby),
			},
		}},
	}
	rep := Verify(&core.Anonymized{K: 3, M: 2, Clusters: []*core.ClusterNode{joint}})
	if !rep.OK() {
		t.Fatalf("Figure 3 joint cluster rejected: %v", rep.Violations)
	}
}

func TestVerifyFlagsFigure4Lemma2Violation(t *testing.T) {
	// Example 1 (Figure 4): 3^2-anonymous chunks but an invalid cluster —
	// 6 subrecords cannot fill 5 records with pairs spanning two chunks.
	a, b, c := dataset.Term(0), dataset.Term(1), dataset.Term(2)
	cl := &core.Cluster{
		Size: 5,
		RecordChunks: []core.Chunk{
			{Domain: rec(a), Subrecords: []dataset.Record{rec(a), rec(a), rec(a)}},
			{Domain: rec(b, c), Subrecords: []dataset.Record{rec(b, c), rec(b, c), rec(b, c)}},
		},
	}
	rep := Verify(&core.Anonymized{K: 3, M: 2, Clusters: []*core.ClusterNode{{Simple: cl}}})
	if rep.OK() {
		t.Fatal("the Example 1 attack dataset passed verification")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v.What, "Lemma 2") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a Lemma 2 violation, got %v", rep.Violations)
	}
}

func TestVerifyFlagsFigure5aUnsafeSharedChunk(t *testing.T) {
	// Figure 5a: term a appears in a record chunk (with x) and in a shared
	// chunk that is not k-anonymous → Property 1 violation.
	const (
		a dataset.Term = 0
		e dataset.Term = 1
		o dataset.Term = 2
		x dataset.Term = 3
		b dataset.Term = 4
	)
	first := &core.Cluster{
		Size: 10,
		RecordChunks: []core.Chunk{
			{Domain: rec(e), Subrecords: []dataset.Record{rec(e), rec(e), rec(e)}},
			{Domain: rec(a, x), Subrecords: []dataset.Record{rec(a, x), rec(a, x), rec(a, x)}},
		},
		TermChunk: rec(),
	}
	second := &core.Cluster{
		Size:         3,
		RecordChunks: []core.Chunk{{Domain: rec(b), Subrecords: []dataset.Record{rec(b), rec(b), rec(b)}}},
		TermChunk:    rec(),
	}
	joint := &core.ClusterNode{
		Children: []*core.ClusterNode{{Simple: first}, {Simple: second}},
		SharedChunks: []core.Chunk{{
			Domain: rec(a, o),
			// {a,o}×2, {a}, {o}: distinct groups below k=3, and term a
			// conflicts with the record chunk {a,x}.
			Subrecords: []dataset.Record{rec(a, o), rec(a, o), rec(a), rec(o)},
		}},
	}
	rep := Verify(&core.Anonymized{K: 3, M: 2, Clusters: []*core.ClusterNode{joint}})
	if rep.OK() {
		t.Fatal("the Figure 5a unsafe shared chunk passed verification")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v.What, "Property 1") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a Property 1 violation, got %v", rep.Violations)
	}
}

func TestVerifyFlagsNonAnonymousChunk(t *testing.T) {
	cl := &core.Cluster{
		Size: 4,
		RecordChunks: []core.Chunk{{
			Domain: rec(1, 2),
			// Pair {1,2} appears twice < k=3.
			Subrecords: []dataset.Record{rec(1, 2), rec(1, 2), rec(1), rec(2)},
		}},
		TermChunk: rec(9),
	}
	rep := Verify(&core.Anonymized{K: 3, M: 2, Clusters: []*core.ClusterNode{{Simple: cl}}})
	if rep.OK() {
		t.Fatal("non-k^m-anonymous chunk passed")
	}
}

func TestVerifyFlagsStructuralProblems(t *testing.T) {
	mk := func(mutate func(*core.Cluster)) *core.Anonymized {
		cl := &core.Cluster{
			Size: 3,
			RecordChunks: []core.Chunk{{
				Domain:     rec(1),
				Subrecords: []dataset.Record{rec(1), rec(1), rec(1)},
			}},
			TermChunk: rec(2),
		}
		mutate(cl)
		return &core.Anonymized{K: 3, M: 2, Clusters: []*core.ClusterNode{{Simple: cl}}}
	}
	cases := []struct {
		name   string
		mutate func(*core.Cluster)
	}{
		{"zero size", func(c *core.Cluster) { c.Size = 0 }},
		{"term overlap", func(c *core.Cluster) { c.TermChunk = rec(1, 2) }},
		{"subrecord outside domain", func(c *core.Cluster) {
			c.RecordChunks[0].Subrecords[0] = rec(9)
		}},
		{"empty materialized subrecord", func(c *core.Cluster) {
			c.RecordChunks[0].Subrecords[0] = rec()
		}},
		{"more subrecords than records", func(c *core.Cluster) {
			c.RecordChunks[0].Subrecords = append(c.RecordChunks[0].Subrecords, rec(1), rec(1))
		}},
		{"empty domain", func(c *core.Cluster) { c.RecordChunks[0].Domain = rec() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if Verify(mk(tc.mutate)).OK() {
				t.Error("corrupted structure passed verification")
			}
		})
	}
}

func TestVerifyNestedJoints(t *testing.T) {
	// A two-level joint: the inner joint's shared chunk holds term 5; the
	// outer joint's shared chunk holds term 6. Both k^m-anonymous; the
	// verifier must accept the nesting and reject a single-child joint.
	leaf := func(size int, tc ...dataset.Term) *core.ClusterNode {
		return &core.ClusterNode{Simple: &core.Cluster{Size: size, TermChunk: rec(tc...)}}
	}
	inner := &core.ClusterNode{
		Children: []*core.ClusterNode{leaf(3, 7), leaf(3, 8)},
		SharedChunks: []core.Chunk{{
			Domain:     rec(5),
			Subrecords: []dataset.Record{rec(5), rec(5), rec(5)},
		}},
	}
	outer := &core.ClusterNode{
		Children: []*core.ClusterNode{inner, leaf(3, 9)},
		SharedChunks: []core.Chunk{{
			Domain:     rec(6),
			Subrecords: []dataset.Record{rec(6), rec(6), rec(6)},
		}},
	}
	rep := Verify(&core.Anonymized{K: 3, M: 2, Clusters: []*core.ClusterNode{outer}})
	if !rep.OK() {
		t.Fatalf("valid nested joint rejected: %v", rep.Violations)
	}

	bad := &core.ClusterNode{Children: []*core.ClusterNode{leaf(3, 7)}}
	rep = Verify(&core.Anonymized{K: 3, M: 2, Clusters: []*core.ClusterNode{bad}})
	if rep.OK() {
		t.Error("single-child joint accepted")
	}
}

func TestVerifyFlagsUndersizedCluster(t *testing.T) {
	// Two clusters: one fine, one with 2 < k records — the term-chunk
	// candidate-set weakness the anonymizer's MergeUndersized prevents.
	ok := &core.ClusterNode{Simple: &core.Cluster{Size: 5, TermChunk: rec(1)}}
	tiny := &core.ClusterNode{Simple: &core.Cluster{Size: 2, TermChunk: rec(2)}}
	rep := Verify(&core.Anonymized{K: 3, M: 2, Clusters: []*core.ClusterNode{ok, tiny}})
	if rep.OK() {
		t.Fatal("undersized cluster accepted")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v.What, "below k") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a cluster-size violation, got %v", rep.Violations)
	}
}

func TestVerifyAgainstOriginal(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	var records []dataset.Record
	for i := 0; i < 120; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(5))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(25))
		}
		records = append(records, rec(terms...))
	}
	d := dataset.FromRecords(records)
	a, err := core.Anonymize(d, core.Options{K: 3, M: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyAgainstOriginal(a, d)
	if !rep.OK() {
		t.Fatalf("anonymizer output rejected: %v", rep.Violations)
	}
	// Tamper: drop a cluster → record count mismatch.
	tampered := &core.Anonymized{K: a.K, M: a.M, Clusters: a.Clusters[1:]}
	if VerifyAgainstOriginal(tampered, d).OK() {
		t.Error("record-count mismatch not flagged")
	}
}

// Property: the verifier accepts every anonymizer output across random
// datasets and parameter combinations — the central end-to-end invariant.
func TestVerifierAcceptsAnonymizerOutput(t *testing.T) {
	rng := rand.New(rand.NewPCG(123, 456))
	for trial := 0; trial < 30; trial++ {
		var records []dataset.Record
		n := 30 + rng.IntN(300)
		domain := 5 + rng.IntN(60)
		maxLen := 1 + rng.IntN(7)
		for i := 0; i < n; i++ {
			terms := make([]dataset.Term, 1+rng.IntN(maxLen))
			for j := range terms {
				terms[j] = dataset.Term(rng.IntN(domain))
			}
			records = append(records, rec(terms...))
		}
		d := dataset.FromRecords(records)
		opts := core.Options{
			K:    2 + rng.IntN(5),
			M:    1 + rng.IntN(3),
			Seed: uint64(trial),
		}
		if rng.IntN(3) == 0 {
			opts.DisableRefine = true
		}
		if rng.IntN(3) == 0 {
			opts.Sensitive = map[dataset.Term]bool{dataset.Term(rng.IntN(domain)): true}
		}
		a, err := core.Anonymize(d, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rep := VerifyAgainstOriginal(a, d)
		if !rep.OK() {
			t.Fatalf("trial %d (k=%d, m=%d, refine=%v): %v",
				trial, opts.K, opts.M, !opts.DisableRefine, rep.Violations[:min(len(rep.Violations), 5)])
		}
	}
}
