package dataset

import (
	"math/rand/v2"
	"testing"
)

func TestDenseDomainRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	records := make([]Record, 50)
	for i := range records {
		terms := make([]Term, 1+rng.IntN(6))
		for j := range terms {
			terms[j] = Term(rng.IntN(1000) * 7) // sparse global ids
		}
		records[i] = NewRecord(terms...)
	}
	dd := NewDenseDomain(records)
	dense := dd.RemapAll(records)
	if len(dense) != len(records) {
		t.Fatalf("remap changed record count: %d != %d", len(dense), len(records))
	}
	for i, r := range dense {
		if !r.IsNormalized() {
			t.Fatalf("record %d not normalized after remap: %v", i, r)
		}
		if len(r) != len(records[i]) {
			t.Fatalf("record %d changed length", i)
		}
		restored := r.Clone()
		dd.RestoreRecord(restored)
		if !restored.Equal(records[i]) {
			t.Fatalf("record %d round trip: got %v want %v", i, restored, records[i])
		}
	}
}

func TestDenseDomainIDsAscend(t *testing.T) {
	records := []Record{NewRecord(100, 7, 42), NewRecord(7, 9)}
	dd := NewDenseDomain(records)
	if dd.Len() != 4 {
		t.Fatalf("domain size = %d, want 4", dd.Len())
	}
	prev := Term(-1)
	for id := 0; id < dd.Len(); id++ {
		g := dd.TermOf(Term(id))
		if g <= prev {
			t.Fatalf("TermOf not ascending at id %d", id)
		}
		prev = g
		back, ok := dd.ID(g)
		if !ok || back != int32(id) {
			t.Fatalf("ID(TermOf(%d)) = %d, %v", id, back, ok)
		}
	}
	if _, ok := dd.ID(8); ok {
		t.Fatal("ID reported a term outside the domain")
	}
}
