package dataset

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseByteSize parses a byte count with an optional K/M/G multiplier, in
// any of the usual spellings ("64K", "512MiB", "2gb", "64 M"). The empty
// string parses to 0 (callers treat it as "use the default"). Negative
// values, garbage, and — crucially — values whose multiplication by the
// suffix would overflow int64 are rejected: "9223372036854775807K" is an
// error, not a silently wrapped negative budget.
func ParseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	upper := strings.TrimSuffix(strings.TrimSuffix(strings.ToUpper(s), "IB"), "B")
	switch {
	case strings.HasSuffix(upper, "K"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "K")
	case strings.HasSuffix(upper, "M"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "M")
	case strings.HasSuffix(upper, "G"):
		mult, upper = 1<<30, strings.TrimSuffix(upper, "G")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	if v > math.MaxInt64/mult {
		return 0, fmt.Errorf("byte count %q overflows", s)
	}
	return v * mult, nil
}
