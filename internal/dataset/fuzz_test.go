package dataset

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadIDs feeds arbitrary text to the dataset parser: no panics, and any
// accepted dataset must survive a write/read round trip unchanged (parsing
// normalizes, and WriteIDs of normalized records is canonical).
func FuzzReadIDs(f *testing.F) {
	f.Add([]byte("1 2 3\n4 5\n"))
	f.Add([]byte("  7 7 5  \n\n-4 0 9\n"))
	f.Add([]byte("2147483647 -2147483648\n"))
	f.Add([]byte("9999999999\n")) // beyond int32
	f.Add([]byte("1 x\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadIDs(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, r := range d.Records {
			if !r.IsNormalized() {
				t.Fatalf("record %d not normalized: %v", i, r)
			}
		}
		var enc bytes.Buffer
		if err := WriteIDs(&enc, d); err != nil {
			t.Fatal(err)
		}
		again, err := ReadIDs(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded dataset rejected: %v", err)
		}
		if len(again.Records) != len(d.Records) {
			t.Fatalf("round trip changed record count: %d vs %d", len(again.Records), len(d.Records))
		}
		for i := range d.Records {
			if !again.Records[i].Equal(d.Records[i]) {
				t.Fatalf("round trip changed record %d: %v vs %v", i, again.Records[i], d.Records[i])
			}
		}
	})
}

// FuzzBinaryRecordReader feeds arbitrary bytes to the spill-file codec: no
// panics, and whatever decodes must be a strictly increasing record that
// re-encodes and decodes to the same terms.
func FuzzBinaryRecordReader(f *testing.F) {
	var seed bytes.Buffer
	w := NewBinaryRecordWriter(&seed)
	for _, r := range []Record{NewRecord(1, 5, 9), NewRecord(-3, 0, 2), {}} {
		if err := w.Write(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{0x00})
	f.Add([]byte{0x03, 0x01})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rr := NewBinaryRecordReader(bytes.NewReader(data))
		var decoded []Record
		for {
			rec, err := rr.Next(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				return // malformed tail: fine, as long as nothing panicked
			}
			if !rec.IsNormalized() {
				t.Fatalf("decoder produced unnormalized record %v", rec)
			}
			decoded = append(decoded, rec)
		}
		var enc bytes.Buffer
		w := NewBinaryRecordWriter(&enc)
		for _, r := range decoded {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		rr = NewBinaryRecordReader(bytes.NewReader(enc.Bytes()))
		for i := 0; ; i++ {
			rec, err := rr.Next(nil)
			if err == io.EOF {
				if i != len(decoded) {
					t.Fatalf("round trip lost records: %d of %d", i, len(decoded))
				}
				break
			}
			if err != nil {
				t.Fatalf("round trip failed at record %d: %v", i, err)
			}
			if !rec.Equal(decoded[i]) {
				t.Fatalf("round trip changed record %d", i)
			}
		}
	})
}
