package dataset

import (
	"fmt"
	"sort"
)

// Dictionary maps external term strings (query strings, product names) to the
// compact Term IDs used internally, and back. IDs are assigned densely in
// insertion order starting from 0.
type Dictionary struct {
	byName map[string]Term
	byID   []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byName: make(map[string]Term)}
}

// Intern returns the Term for name, assigning a fresh ID if the name has not
// been seen before.
func (d *Dictionary) Intern(name string) Term {
	if id, ok := d.byName[name]; ok {
		return id
	}
	id := Term(len(d.byID))
	d.byName[name] = id
	d.byID = append(d.byID, name)
	return id
}

// Lookup returns the Term for name and whether it is known.
func (d *Dictionary) Lookup(name string) (Term, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// Name returns the external string of a term. Unknown terms render as "#id".
func (d *Dictionary) Name(t Term) string {
	if int(t) >= 0 && int(t) < len(d.byID) {
		return d.byID[t]
	}
	return fmt.Sprintf("#%d", t)
}

// Len returns the number of interned terms.
func (d *Dictionary) Len() int { return len(d.byID) }

// Names renders a record through the dictionary, sorted by term ID.
func (d *Dictionary) Names(r Record) []string {
	out := make([]string, len(r))
	for i, t := range r {
		out[i] = d.Name(t)
	}
	return out
}

// InternRecord interns every name and returns the normalized record.
func (d *Dictionary) InternRecord(names ...string) Record {
	terms := make([]Term, len(names))
	for i, n := range names {
		terms[i] = d.Intern(n)
	}
	return NewRecord(terms...)
}

// SortedNames returns all interned names in lexicographic order; useful for
// deterministic test output.
func (d *Dictionary) SortedNames() []string {
	out := make([]string, len(d.byID))
	copy(out, d.byID)
	sort.Strings(out)
	return out
}
