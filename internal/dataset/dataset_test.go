package dataset

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewRecord(t *testing.T) {
	tests := []struct {
		name string
		in   []Term
		want Record
	}{
		{"empty", nil, Record{}},
		{"single", []Term{5}, Record{5}},
		{"sorted input", []Term{1, 2, 3}, Record{1, 2, 3}},
		{"unsorted input", []Term{3, 1, 2}, Record{1, 2, 3}},
		{"duplicates", []Term{2, 1, 2, 1, 2}, Record{1, 2}},
		{"all same", []Term{7, 7, 7}, Record{7}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := NewRecord(tc.in...)
			if !got.Equal(tc.want) {
				t.Errorf("NewRecord(%v) = %v, want %v", tc.in, got, tc.want)
			}
			if !got.IsNormalized() {
				t.Errorf("NewRecord(%v) = %v is not normalized", tc.in, got)
			}
		})
	}
}

func TestNewRecordDoesNotMutateInput(t *testing.T) {
	in := []Term{3, 1, 2}
	NewRecord(in...)
	if !reflect.DeepEqual(in, []Term{3, 1, 2}) {
		t.Errorf("input mutated: %v", in)
	}
}

func TestRecordContains(t *testing.T) {
	r := NewRecord(2, 4, 6, 8)
	for _, tc := range []struct {
		t    Term
		want bool
	}{{2, true}, {8, true}, {6, true}, {1, false}, {5, false}, {9, false}} {
		if got := r.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestRecordContainsAll(t *testing.T) {
	r := NewRecord(1, 3, 5, 7, 9)
	tests := []struct {
		sub  Record
		want bool
	}{
		{NewRecord(), true},
		{NewRecord(1), true},
		{NewRecord(9), true},
		{NewRecord(3, 7), true},
		{NewRecord(1, 3, 5, 7, 9), true},
		{NewRecord(2), false},
		{NewRecord(1, 2), false},
		{NewRecord(9, 10), false},
		{NewRecord(0, 1), false},
	}
	for _, tc := range tests {
		if got := r.ContainsAll(tc.sub); got != tc.want {
			t.Errorf("ContainsAll(%v) = %v, want %v", tc.sub, got, tc.want)
		}
	}
}

func TestRecordSetOps(t *testing.T) {
	a := NewRecord(1, 2, 3, 5)
	b := NewRecord(2, 3, 4)
	if got, want := a.Intersect(b), NewRecord(2, 3); !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Subtract(b), NewRecord(1, 5); !got.Equal(want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
	if got, want := a.Union(b), NewRecord(1, 2, 3, 4, 5); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	empty := NewRecord()
	if got := a.Intersect(empty); len(got) != 0 {
		t.Errorf("Intersect with empty = %v, want empty", got)
	}
	if got := a.Subtract(empty); !got.Equal(a) {
		t.Errorf("Subtract empty = %v, want %v", got, a)
	}
	if got := empty.Union(a); !got.Equal(a) {
		t.Errorf("empty.Union(a) = %v, want %v", got, a)
	}
}

func TestRecordJaccard(t *testing.T) {
	tests := []struct {
		a, b Record
		want float64
	}{
		{NewRecord(), NewRecord(), 1},
		{NewRecord(1), NewRecord(), 0},
		{NewRecord(1, 2), NewRecord(1, 2), 1},
		{NewRecord(1, 2), NewRecord(3, 4), 0},
		{NewRecord(1, 2, 3), NewRecord(2, 3, 4), 0.5},
	}
	for _, tc := range tests {
		if got := tc.a.Jaccard(tc.b); got != tc.want {
			t.Errorf("Jaccard(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Jaccard(tc.a); got != tc.want {
			t.Errorf("Jaccard not symmetric on (%v, %v)", tc.a, tc.b)
		}
	}
}

func TestRecordKeyUniqueness(t *testing.T) {
	a := NewRecord(1, 23)
	b := NewRecord(12, 3)
	if a.Key() == b.Key() {
		t.Errorf("keys collide: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() != NewRecord(23, 1).Key() {
		t.Error("equal records must have equal keys")
	}
}

func TestRecordString(t *testing.T) {
	if got, want := NewRecord(3, 1).String(), "{1, 3}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := NewRecord().String(), "{}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDatasetBasics(t *testing.T) {
	d := New(4)
	d.Add(Record{3, 1, 3})
	d.Add(Record{2})
	d.Add(Record{1, 2})
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	if !d.Records[0].Equal(NewRecord(1, 3)) {
		t.Errorf("Add did not normalize: %v", d.Records[0])
	}
	if got, want := d.Domain(), []Term{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("Domain = %v, want %v", got, want)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDatasetSupports(t *testing.T) {
	d := FromRecords([]Record{
		NewRecord(1, 2),
		NewRecord(1, 3),
		NewRecord(1, 2, 3),
		NewRecord(4),
	})
	want := map[Term]int{1: 3, 2: 2, 3: 2, 4: 1}
	if got := d.Supports(); !reflect.DeepEqual(got, want) {
		t.Errorf("Supports = %v, want %v", got, want)
	}
	if got := d.Support(1); got != 3 {
		t.Errorf("Support(1) = %d, want 3", got)
	}
	if got := d.Support(99); got != 0 {
		t.Errorf("Support(99) = %d, want 0", got)
	}
	if got := d.SupportOf(NewRecord(1, 2)); got != 2 {
		t.Errorf("SupportOf({1,2}) = %d, want 2", got)
	}
	if got := d.SupportOf(NewRecord(2, 4)); got != 0 {
		t.Errorf("SupportOf({2,4}) = %d, want 0", got)
	}
	if got := d.SupportOf(NewRecord()); got != 4 {
		t.Errorf("SupportOf({}) = %d, want 4 (every record contains the empty set)", got)
	}
}

func TestTermsByFrequency(t *testing.T) {
	d := FromRecords([]Record{
		NewRecord(1, 2, 3),
		NewRecord(1, 2),
		NewRecord(1),
		NewRecord(5),
	})
	got := d.TermsByFrequency()
	want := []Term{1, 2, 3, 5} // support 3, 2, 1, 1 — tie broken by ID
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TermsByFrequency = %v, want %v", got, want)
	}
}

func TestComputeStats(t *testing.T) {
	d := FromRecords([]Record{
		NewRecord(1, 2, 3),
		NewRecord(1, 2),
		NewRecord(1, 2),
		NewRecord(4),
	})
	st := d.ComputeStats()
	if st.NumRecords != 4 || st.DomainSize != 4 || st.MaxRecord != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.TotalTerms != 8 || st.AvgRecord != 2.0 {
		t.Errorf("stats totals = %+v", st)
	}
	if st.DistinctRec != 3 {
		t.Errorf("DistinctRec = %d, want 3", st.DistinctRec)
	}
	if st.EmptyCount != 0 {
		t.Errorf("EmptyCount = %d, want 0", st.EmptyCount)
	}
}

func TestValidateRejectsBadRecords(t *testing.T) {
	d := FromRecords([]Record{NewRecord(1), {}})
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted an empty record")
	}
	d = FromRecords([]Record{{3, 1}})
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted an unsorted record")
	}
	d = FromRecords([]Record{{1, 1}})
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted a duplicate term")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := FromRecords([]Record{NewRecord(1, 2)})
	c := d.Clone()
	c.Records[0][0] = 99
	if d.Records[0][0] == 99 {
		t.Error("Clone shares record storage with the original")
	}
}

// Property: for random term multisets, NewRecord output is always normalized
// and contains exactly the distinct input terms.
func TestNewRecordProperties(t *testing.T) {
	f := func(raw []int16) bool {
		terms := make([]Term, len(raw))
		want := make(map[Term]bool)
		for i, v := range raw {
			terms[i] = Term(v)
			want[Term(v)] = true
		}
		r := NewRecord(terms...)
		if !r.IsNormalized() || len(r) != len(want) {
			return false
		}
		for _, tm := range r {
			if !want[tm] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Intersect/Subtract/Union agree with naive map-based definitions.
func TestSetOpProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	randomRecord := func() Record {
		n := rng.IntN(12)
		terms := make([]Term, n)
		for i := range terms {
			terms[i] = Term(rng.IntN(20))
		}
		return NewRecord(terms...)
	}
	for trial := 0; trial < 300; trial++ {
		a, b := randomRecord(), randomRecord()
		inA := make(map[Term]bool)
		for _, tm := range a {
			inA[tm] = true
		}
		inB := make(map[Term]bool)
		for _, tm := range b {
			inB[tm] = true
		}
		for _, tm := range a.Intersect(b) {
			if !inA[tm] || !inB[tm] {
				t.Fatalf("Intersect(%v,%v) contains %d", a, b, tm)
			}
		}
		for _, tm := range a.Subtract(b) {
			if !inA[tm] || inB[tm] {
				t.Fatalf("Subtract(%v,%v) contains %d", a, b, tm)
			}
		}
		u := a.Union(b)
		if len(u) != len(inA)+len(b)-len(a.Intersect(b)) {
			// |A ∪ B| = |A| + |B| − |A ∩ B|
			t.Fatalf("Union(%v,%v) = %v has wrong size", a, b, u)
		}
		if !u.IsNormalized() {
			t.Fatalf("Union(%v,%v) = %v not normalized", a, b, u)
		}
	}
}
