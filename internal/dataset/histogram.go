package dataset

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Histogram summarizes a discrete distribution: bucketed counts for display
// plus the quantiles datasets are compared by (DESIGN.md §4's stand-in
// validation relies on record-length and support distributions, not just
// means).
type Histogram struct {
	// Buckets holds (upper bound, count) pairs; counts cover values in
	// (previous bound, bound].
	Buckets []HistBucket
	// Count, Min, Max, Mean describe the whole sample.
	Count int
	Min   int
	Max   int
	Mean  float64
	// P50, P90, P99 are quantiles.
	P50, P90, P99 int
}

// HistBucket is one histogram bar.
type HistBucket struct {
	UpperBound int
	N          int
}

// NewHistogram summarizes values with roughly the given number of
// exponentially widening buckets (suiting the heavy-tailed distributions of
// transactional data).
func NewHistogram(values []int, buckets int) Histogram {
	h := Histogram{Count: len(values)}
	if len(values) == 0 {
		return h
	}
	sorted := make([]int, len(values))
	copy(sorted, values)
	sort.Ints(sorted)
	h.Min = sorted[0]
	h.Max = sorted[len(sorted)-1]
	total := 0
	for _, v := range sorted {
		total += v
	}
	h.Mean = float64(total) / float64(len(sorted))
	quantile := func(q float64) int {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	h.P50, h.P90, h.P99 = quantile(0.50), quantile(0.90), quantile(0.99)

	if buckets < 1 {
		buckets = 8
	}
	// Exponentially widening bucket bounds starting at Min: the first bucket
	// covers exactly the minimum, each later one doubles its width every
	// other step, capturing heavy tails compactly.
	bound := h.Min
	step := 1
	idx := 0
	for {
		n := 0
		for idx < len(sorted) && sorted[idx] <= bound {
			n++
			idx++
		}
		h.Buckets = append(h.Buckets, HistBucket{UpperBound: bound, N: n})
		if idx >= len(sorted) || len(h.Buckets) > 64 {
			break
		}
		bound += step
		if len(h.Buckets)%2 == 0 {
			step *= 2
		}
	}
	// Sweep any tail values into a final bucket.
	if idx < len(sorted) {
		h.Buckets = append(h.Buckets, HistBucket{UpperBound: h.Max, N: len(sorted) - idx})
	}
	return h
}

// Fprint renders the histogram with proportional bars.
func (h Histogram) Fprint(w io.Writer, label string) {
	fmt.Fprintf(w, "%s: n=%d min=%d max=%d mean=%.2f p50=%d p90=%d p99=%d\n",
		label, h.Count, h.Min, h.Max, h.Mean, h.P50, h.P90, h.P99)
	maxN := 1
	for _, b := range h.Buckets {
		if b.N > maxN {
			maxN = b.N
		}
	}
	for _, b := range h.Buckets {
		if b.N == 0 {
			continue
		}
		bar := strings.Repeat("#", 1+b.N*40/maxN)
		fmt.Fprintf(w, "  ≤%-8d %8d %s\n", b.UpperBound, b.N, bar)
	}
}

// RecordLengths returns every record's size, for histogramming.
func (d *Dataset) RecordLengths() []int {
	out := make([]int, d.Len())
	for i, r := range d.Records {
		out[i] = len(r)
	}
	return out
}

// SupportValues returns every term's support in ascending order, for
// histogramming.
func (d *Dataset) SupportValues() []int {
	s := d.Supports()
	out := make([]int, 0, len(s))
	for _, v := range s {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
