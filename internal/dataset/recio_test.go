package dataset

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestStreamReaderMatchesReadIDs(t *testing.T) {
	input := "3 1 2\n\n  7 7 5  \n-4 0 9\n"
	d, err := ReadIDs(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	sr := NewStreamReader(strings.NewReader(input))
	var streamed []Record
	for {
		r, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, r)
	}
	if len(streamed) != len(d.Records) {
		t.Fatalf("stream got %d records, ReadIDs %d", len(streamed), len(d.Records))
	}
	for i := range streamed {
		if !streamed[i].Equal(d.Records[i]) {
			t.Errorf("record %d: %v vs %v", i, streamed[i], d.Records[i])
		}
	}
}

func TestStreamReaderBadTermLineNumber(t *testing.T) {
	sr := NewStreamReader(strings.NewReader("1 2\n\nx\n"))
	if _, err := sr.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := sr.Next()
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line-3 error, got %v", err)
	}
}

func TestStreamWriterMatchesWriteIDs(t *testing.T) {
	d := FromRecords([]Record{NewRecord(3, 1, 2), NewRecord(-7, 9), NewRecord(0)})
	var want bytes.Buffer
	if err := WriteIDs(&want, d); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	sw := NewStreamWriter(&got)
	for _, r := range d.Records {
		if err := sw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("streamed %q != WriteIDs %q", got.String(), want.String())
	}
}

func TestBinaryRecordRoundTrip(t *testing.T) {
	records := []Record{
		NewRecord(0),
		NewRecord(5, 9, 1000000),
		NewRecord(-2147483648, 2147483647), // full int32 span: gap needs 32 bits
		NewRecord(-5, -4, -3, 0, 7),
		{},
	}
	var buf bytes.Buffer
	w := NewBinaryRecordWriter(&buf)
	for _, r := range records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rr := NewBinaryRecordReader(bytes.NewReader(buf.Bytes()))
	var scratch Record
	for i, want := range records {
		got, err := rr.Next(scratch)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("record %d: got %v want %v", i, got, want)
		}
		scratch = got
	}
	if _, err := rr.Next(scratch); err != io.EOF {
		t.Fatalf("want io.EOF after last record, got %v", err)
	}
}

func TestBinaryRecordTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryRecordWriter(&buf)
	if err := w.Write(NewRecord(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		rr := NewBinaryRecordReader(bytes.NewReader(full[:cut]))
		if _, err := rr.Next(nil); err == nil {
			t.Fatalf("cut at %d: truncated record decoded without error", cut)
		}
	}
}
