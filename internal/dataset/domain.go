package dataset

import "slices"

// DenseDomain is a monotone bijection between a dataset's global terms and
// the dense ids 0..Len()-1, assigned in ascending term order. Remapping a
// dataset through it preserves every ordering the anonymization pipeline
// relies on (term-ascending ties, support comparisons, lexicographic record
// comparisons), so a pipeline run over the dense ids followed by RestoreRecord
// on the published output is byte-identical to a run over the original terms —
// while every per-term table inside the pipeline becomes a flat slice indexed
// by the id instead of a map keyed by the term.
type DenseDomain struct {
	terms []Term // dense id -> global term, ascending
}

// NewDenseDomain collects the distinct terms of the records into a domain.
func NewDenseDomain(records []Record) *DenseDomain {
	total := 0
	for _, r := range records {
		total += len(r)
	}
	all := make([]Term, 0, total)
	for _, r := range records {
		all = append(all, r...)
	}
	slices.Sort(all)
	return &DenseDomain{terms: slices.Compact(all)}
}

// NewDenseDomainFromTerms wraps an already sorted, duplicate-free term list
// (e.g. the keys of a streamed support count) into a domain, taking ownership
// of the slice.
func NewDenseDomainFromTerms(terms []Term) *DenseDomain {
	if !Record(terms).IsNormalized() {
		panic("dataset: NewDenseDomainFromTerms needs sorted, duplicate-free terms")
	}
	return &DenseDomain{terms: terms}
}

// Len returns the domain size |T|.
func (dd *DenseDomain) Len() int { return len(dd.terms) }

// ID returns the dense id of a global term and whether the term is in the
// domain.
func (dd *DenseDomain) ID(t Term) (int32, bool) {
	i, ok := slices.BinarySearch(dd.terms, t)
	return int32(i), ok
}

// TermOf returns the global term behind a dense id.
func (dd *DenseDomain) TermOf(id Term) Term { return dd.terms[id] }

// RemapAll returns the records with every term replaced by its dense id,
// backed by one flat allocation. Every input term must be in the domain.
// Because ids ascend with terms, the outputs are normalized records.
func (dd *DenseDomain) RemapAll(records []Record) []Record {
	total := 0
	for _, r := range records {
		total += len(r)
	}
	flat := make([]Term, 0, total)
	out := make([]Record, len(records))
	for i, r := range records {
		start := len(flat)
		for _, t := range r {
			id, ok := slices.BinarySearch(dd.terms, t)
			if !ok {
				panic("dataset: RemapAll term outside domain")
			}
			flat = append(flat, Term(id))
		}
		out[i] = Record(flat[start:len(flat):len(flat)])
	}
	return out
}

// RestoreRecord rewrites a dense-id record back to global terms in place.
// Monotonicity keeps the record normalized.
func (dd *DenseDomain) RestoreRecord(r Record) {
	for i, id := range r {
		r[i] = dd.terms[id]
	}
}
