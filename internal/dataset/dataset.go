// Package dataset provides the transactional data model used throughout the
// disassociation library: records are sets of terms drawn from a huge domain
// (web search queries, purchased products, clicked URLs), and a dataset is an
// ordered collection of such records.
//
// The representation follows the paper's data assumptions (Section 2 of
// "Privacy Preservation by Disassociation", PVLDB 2012): records have set
// semantics (no duplicate terms inside a record) while datasets have bag
// semantics (duplicate records are allowed).
package dataset

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// Term identifies a term (item) of the domain T. Terms are small integers so
// that supports, projections and combination checks stay allocation-friendly;
// a Dictionary maps them back to their external string form.
type Term int32

// Record is a set of terms: sorted ascending with no duplicates. The zero
// value is the empty record. Records must be normalized (see NewRecord) before
// being handed to any algorithm in this module.
type Record []Term

// NewRecord builds a normalized record from the given terms: the result is
// sorted and duplicate-free. The input slice is not modified.
func NewRecord(terms ...Term) Record {
	r := make(Record, len(terms))
	copy(r, terms)
	slices.Sort(r)
	return slices.Compact(r)
}

// Normalize sorts the record and removes duplicate terms in place, returning
// the normalized record. Use it after bulk-loading raw term slices.
func (r Record) Normalize() Record {
	slices.Sort(r)
	return slices.Compact(r)
}

// IsNormalized reports whether the record is sorted ascending with no
// duplicates.
func (r Record) IsNormalized() bool {
	for i := 1; i < len(r); i++ {
		if r[i] <= r[i-1] {
			return false
		}
	}
	return true
}

// Contains reports whether term t appears in the record. The record must be
// normalized; lookup is a binary search.
func (r Record) Contains(t Term) bool {
	_, ok := slices.BinarySearch(r, t)
	return ok
}

// ContainsAll reports whether every term of sub appears in r. Both records
// must be normalized. It runs in O(len(r)+len(sub)).
func (r Record) ContainsAll(sub Record) bool {
	i := 0
	for _, t := range sub {
		for i < len(r) && r[i] < t {
			i++
		}
		if i == len(r) || r[i] != t {
			return false
		}
		i++
	}
	return true
}

// Intersect returns the normalized intersection of r and other.
func (r Record) Intersect(other Record) Record {
	out := make(Record, 0, min(len(r), len(other)))
	i, j := 0, 0
	for i < len(r) && j < len(other) {
		switch {
		case r[i] < other[j]:
			i++
		case r[i] > other[j]:
			j++
		default:
			out = append(out, r[i])
			i, j = i+1, j+1
		}
	}
	return out
}

// Subtract returns the normalized difference r − other.
func (r Record) Subtract(other Record) Record {
	out := make(Record, 0, len(r))
	j := 0
	for _, t := range r {
		for j < len(other) && other[j] < t {
			j++
		}
		if j < len(other) && other[j] == t {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Union returns the normalized union of r and other.
func (r Record) Union(other Record) Record {
	out := make(Record, 0, len(r)+len(other))
	i, j := 0, 0
	for i < len(r) && j < len(other) {
		switch {
		case r[i] < other[j]:
			out = append(out, r[i])
			i++
		case r[i] > other[j]:
			out = append(out, other[j])
			j++
		default:
			out = append(out, r[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, r[i:]...)
	out = append(out, other[j:]...)
	return out
}

// Equal reports whether two normalized records contain exactly the same terms.
func (r Record) Equal(other Record) bool {
	return slices.Equal(r, other)
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	return slices.Clone(r)
}

// Jaccard returns the Jaccard similarity |r ∩ other| / |r ∪ other| of two
// normalized records; two empty records have similarity 1.
func (r Record) Jaccard(other Record) float64 {
	if len(r) == 0 && len(other) == 0 {
		return 1
	}
	inter := 0
	i, j := 0, 0
	for i < len(r) && j < len(other) {
		switch {
		case r[i] < other[j]:
			i++
		case r[i] > other[j]:
			j++
		default:
			inter++
			i, j = i+1, j+1
		}
	}
	union := len(r) + len(other) - inter
	return float64(inter) / float64(union)
}

// Key returns a compact string form of the record usable as a map key. Two
// normalized records have equal keys iff they are Equal.
func (r Record) Key() string {
	var b strings.Builder
	for i, t := range r {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", t)
	}
	return b.String()
}

// String renders the record as a braced term list, e.g. {3, 17, 42}.
func (r Record) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", t)
	}
	b.WriteByte('}')
	return b.String()
}

// Dataset is a bag of records. Records keeps insertion order; algorithms that
// need a stable order rely on it.
type Dataset struct {
	Records []Record
}

// New returns an empty dataset with capacity for n records.
func New(n int) *Dataset {
	return &Dataset{Records: make([]Record, 0, n)}
}

// FromRecords wraps the given records in a Dataset without copying them.
// Records must already be normalized.
func FromRecords(records []Record) *Dataset {
	return &Dataset{Records: records}
}

// Len returns the number of records |D|.
func (d *Dataset) Len() int { return len(d.Records) }

// Add appends a record to the dataset. The record is normalized in place.
func (d *Dataset) Add(r Record) {
	d.Records = append(d.Records, r.Normalize())
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := New(d.Len())
	for _, r := range d.Records {
		out.Records = append(out.Records, r.Clone())
	}
	return out
}

// Domain returns the sorted set of distinct terms appearing in the dataset.
func (d *Dataset) Domain() []Term {
	seen := make(map[Term]struct{})
	for _, r := range d.Records {
		for _, t := range r {
			seen[t] = struct{}{}
		}
	}
	out := make([]Term, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	slices.Sort(out)
	return out
}

// Supports returns the support s(t) — the number of records containing t —
// for every term in the dataset.
func (d *Dataset) Supports() map[Term]int {
	s := make(map[Term]int)
	for _, r := range d.Records {
		for _, t := range r {
			s[t]++
		}
	}
	return s
}

// Support returns the support of a single term.
func (d *Dataset) Support(t Term) int {
	n := 0
	for _, r := range d.Records {
		if r.Contains(t) {
			n++
		}
	}
	return n
}

// SupportOf returns the number of records containing every term of the given
// normalized itemset.
func (d *Dataset) SupportOf(itemset Record) int {
	n := 0
	for _, r := range d.Records {
		if r.ContainsAll(itemset) {
			n++
		}
	}
	return n
}

// TermsByFrequency returns the dataset's terms ordered by descending support;
// ties broken by ascending term ID so the order is deterministic.
func (d *Dataset) TermsByFrequency() []Term {
	s := d.Supports()
	terms := make([]Term, 0, len(s))
	for t := range s {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		if s[terms[i]] != s[terms[j]] {
			return s[terms[i]] > s[terms[j]]
		}
		return terms[i] < terms[j]
	})
	return terms
}

// Stats summarizes a dataset the way the paper's Figure 6 does.
type Stats struct {
	NumRecords  int     // |D|
	DomainSize  int     // |T|
	MaxRecord   int     // max record size
	AvgRecord   float64 // avg record size
	TotalTerms  int     // Σ |r| over all records
	EmptyCount  int     // number of empty records (0 for valid inputs)
	DistinctRec int     // number of distinct records
}

// ComputeStats scans the dataset once and returns its summary statistics.
func (d *Dataset) ComputeStats() Stats {
	st := Stats{NumRecords: d.Len()}
	seen := make(map[Term]struct{})
	distinct := make(map[string]struct{})
	for _, r := range d.Records {
		if len(r) == 0 {
			st.EmptyCount++
		}
		if len(r) > st.MaxRecord {
			st.MaxRecord = len(r)
		}
		st.TotalTerms += len(r)
		for _, t := range r {
			seen[t] = struct{}{}
		}
		distinct[r.Key()] = struct{}{}
	}
	st.DomainSize = len(seen)
	st.DistinctRec = len(distinct)
	if st.NumRecords > 0 {
		st.AvgRecord = float64(st.TotalTerms) / float64(st.NumRecords)
	}
	return st
}

// Validate checks structural invariants: every record normalized and
// non-empty. It returns the first violation found.
func (d *Dataset) Validate() error {
	for i, r := range d.Records {
		if len(r) == 0 {
			return fmt.Errorf("dataset: record %d is empty", i)
		}
		if !r.IsNormalized() {
			return fmt.Errorf("dataset: record %d is not normalized: %v", i, r)
		}
	}
	return nil
}
