package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadWriteIDsRoundTrip(t *testing.T) {
	in := FromRecords([]Record{
		NewRecord(1, 2, 3),
		NewRecord(42),
		NewRecord(7, 9),
	})
	var buf bytes.Buffer
	if err := WriteIDs(&buf, in); err != nil {
		t.Fatalf("WriteIDs: %v", err)
	}
	out, err := ReadIDs(&buf)
	if err != nil {
		t.Fatalf("ReadIDs: %v", err)
	}
	if out.Len() != in.Len() {
		t.Fatalf("round trip length %d, want %d", out.Len(), in.Len())
	}
	for i := range in.Records {
		if !out.Records[i].Equal(in.Records[i]) {
			t.Errorf("record %d: got %v, want %v", i, out.Records[i], in.Records[i])
		}
	}
}

func TestReadIDsSkipsBlankLinesAndNormalizes(t *testing.T) {
	d, err := ReadIDs(strings.NewReader("3 1 3\n\n   \n2\n"))
	if err != nil {
		t.Fatalf("ReadIDs: %v", err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if !d.Records[0].Equal(NewRecord(1, 3)) {
		t.Errorf("record 0 = %v, want {1, 3}", d.Records[0])
	}
}

func TestReadIDsRejectsGarbage(t *testing.T) {
	if _, err := ReadIDs(strings.NewReader("1 two 3\n")); err == nil {
		t.Error("ReadIDs accepted a non-integer token")
	}
}

func TestReadWriteNamesRoundTrip(t *testing.T) {
	dict := NewDictionary()
	in := FromRecords([]Record{
		dict.InternRecord("madonna", "flu", "viagra"),
		dict.InternRecord("ikea"),
	})
	var buf bytes.Buffer
	if err := WriteNames(&buf, in, dict); err != nil {
		t.Fatalf("WriteNames: %v", err)
	}
	out, err := ReadNames(&buf, dict)
	if err != nil {
		t.Fatalf("ReadNames: %v", err)
	}
	if out.Len() != 2 {
		t.Fatalf("Len = %d, want 2", out.Len())
	}
	for i := range in.Records {
		if !out.Records[i].Equal(in.Records[i]) {
			t.Errorf("record %d: got %v, want %v", i, out.Records[i], in.Records[i])
		}
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	if a == b {
		t.Fatal("distinct names share an ID")
	}
	if got := d.Intern("alpha"); got != a {
		t.Errorf("re-intern gave %d, want %d", got, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if got, ok := d.Lookup("beta"); !ok || got != b {
		t.Errorf("Lookup(beta) = %d,%v", got, ok)
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup(gamma) found a missing name")
	}
	if got := d.Name(a); got != "alpha" {
		t.Errorf("Name = %q", got)
	}
	if got := d.Name(Term(999)); got != "#999" {
		t.Errorf("Name(unknown) = %q", got)
	}
	names := d.Names(NewRecord(a, b))
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("Names = %v", names)
	}
	sorted := d.SortedNames()
	if len(sorted) != 2 || sorted[0] != "alpha" {
		t.Errorf("SortedNames = %v", sorted)
	}
}
