package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk format is the one transactional mining tools conventionally use:
// one record per line, terms separated by single spaces. ReadIDs/WriteIDs use
// raw integer IDs; ReadNames/WriteNames use dictionary strings (whitespace-
// separated tokens).

// StreamReader parses the text format one record at a time, without
// materializing the dataset — the streaming anonymization engine's input
// path. It applies exactly the ReadIDs conventions: blank lines skipped,
// records normalized, errors reported with their line number.
type StreamReader struct {
	sc   *bufio.Scanner
	line int
}

// NewStreamReader returns a streaming parser over r.
func NewStreamReader(r io.Reader) *StreamReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	return &StreamReader{sc: sc}
}

// Next returns the next record, or io.EOF after the last one. The returned
// record is freshly allocated and owned by the caller.
func (sr *StreamReader) Next() (Record, error) {
	for sr.sc.Scan() {
		sr.line++
		text := strings.TrimSpace(sr.sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		rec := make(Record, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad term %q: %w", sr.line, f, err)
			}
			rec = append(rec, Term(v))
		}
		return rec.Normalize(), nil
	}
	if err := sr.sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scan: %w", err)
	}
	return nil, io.EOF
}

// ReadIDs parses a dataset of integer term IDs, one record per line. Blank
// lines are skipped. Records are normalized.
func ReadIDs(r io.Reader) (*Dataset, error) {
	sr := NewStreamReader(r)
	d := New(0)
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, err
		}
		d.Records = append(d.Records, rec)
	}
}

// StreamWriter writes records in the text format one at a time — the
// record-streaming counterpart of WriteIDs. Flush must be called after the
// last record.
type StreamWriter struct {
	bw *bufio.Writer
}

// NewStreamWriter returns a streaming writer over w.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{bw: bufio.NewWriter(w)}
}

// Write emits one record as a line of space-separated integer IDs.
func (sw *StreamWriter) Write(r Record) error {
	for i, t := range r {
		if i > 0 {
			if err := sw.bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := sw.bw.WriteString(strconv.Itoa(int(t))); err != nil {
			return err
		}
	}
	return sw.bw.WriteByte('\n')
}

// Flush drains the writer's buffer.
func (sw *StreamWriter) Flush() error { return sw.bw.Flush() }

// WriteIDs writes the dataset as integer term IDs, one record per line.
func WriteIDs(w io.Writer, d *Dataset) error {
	sw := NewStreamWriter(w)
	for _, rec := range d.Records {
		if err := sw.Write(rec); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// ReadNames parses a dataset of whitespace-separated term names, one record
// per line, interning names through dict (which must be non-nil).
func ReadNames(r io.Reader, dict *Dictionary) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	d := New(0)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		d.Records = append(d.Records, dict.InternRecord(strings.Fields(text)...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scan: %w", err)
	}
	return d, nil
}

// WriteNames writes the dataset through the dictionary, one record per line.
func WriteNames(w io.Writer, d *Dataset, dict *Dictionary) error {
	bw := bufio.NewWriter(w)
	for _, rec := range d.Records {
		for i, t := range rec {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(dict.Name(t)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
