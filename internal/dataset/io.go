package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk format is the one transactional mining tools conventionally use:
// one record per line, terms separated by single spaces. ReadIDs/WriteIDs use
// raw integer IDs; ReadNames/WriteNames use dictionary strings (whitespace-
// separated tokens).

// ReadIDs parses a dataset of integer term IDs, one record per line. Blank
// lines are skipped. Records are normalized.
func ReadIDs(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	d := New(0)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		rec := make(Record, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseInt(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad term %q: %w", line, f, err)
			}
			rec = append(rec, Term(v))
		}
		d.Records = append(d.Records, rec.Normalize())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scan: %w", err)
	}
	return d, nil
}

// WriteIDs writes the dataset as integer term IDs, one record per line.
func WriteIDs(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, rec := range d.Records {
		for i, t := range rec {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(t))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNames parses a dataset of whitespace-separated term names, one record
// per line, interning names through dict (which must be non-nil).
func ReadNames(r io.Reader, dict *Dictionary) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	d := New(0)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		d.Records = append(d.Records, dict.InternRecord(strings.Fields(text)...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scan: %w", err)
	}
	return d, nil
}

// WriteNames writes the dataset through the dictionary, one record per line.
func WriteNames(w io.Writer, d *Dataset, dict *Dictionary) error {
	bw := bufio.NewWriter(w)
	for _, rec := range d.Records {
		for i, t := range rec {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(dict.Name(t)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
