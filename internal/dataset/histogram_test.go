package dataset

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]int{1, 1, 2, 3, 10}, 8)
	if h.Count != 5 || h.Min != 1 || h.Max != 10 {
		t.Errorf("summary: %+v", h)
	}
	if h.Mean != 3.4 {
		t.Errorf("Mean = %v", h.Mean)
	}
	if h.P50 != 2 {
		t.Errorf("P50 = %d", h.P50)
	}
	// Bucket counts must cover every value exactly once.
	total := 0
	for _, b := range h.Buckets {
		total += b.N
	}
	if total != 5 {
		t.Errorf("buckets cover %d of 5 values: %+v", total, h.Buckets)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil, 8)
	if h.Count != 0 || len(h.Buckets) != 0 {
		t.Errorf("empty histogram: %+v", h)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram([]int{7, 7, 7}, 8)
	if h.Min != 7 || h.Max != 7 || h.P99 != 7 {
		t.Errorf("%+v", h)
	}
	if len(h.Buckets) != 1 || h.Buckets[0].N != 3 {
		t.Errorf("buckets: %+v", h.Buckets)
	}
}

func TestHistogramCoversHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	values := make([]int, 10000)
	for i := range values {
		values[i] = 1 + rng.IntN(3)
		if rng.IntN(100) == 0 {
			values[i] = 1000 + rng.IntN(5000) // heavy tail
		}
	}
	h := NewHistogram(values, 8)
	total := 0
	for _, b := range h.Buckets {
		total += b.N
	}
	if total != len(values) {
		t.Errorf("buckets cover %d of %d", total, len(values))
	}
	if len(h.Buckets) > 66 {
		t.Errorf("bucket explosion: %d", len(h.Buckets))
	}
	if h.P99 < 100 && h.Max > 1000 {
		t.Errorf("quantiles off: p99=%d max=%d", h.P99, h.Max)
	}
}

func TestHistogramFprint(t *testing.T) {
	var buf bytes.Buffer
	NewHistogram([]int{1, 2, 2, 3}, 4).Fprint(&buf, "lengths")
	out := buf.String()
	if !strings.Contains(out, "lengths:") || !strings.Contains(out, "#") {
		t.Errorf("Fprint output:\n%s", out)
	}
}

func TestRecordLengthsAndSupportValues(t *testing.T) {
	d := FromRecords([]Record{NewRecord(1, 2, 3), NewRecord(1)})
	lens := d.RecordLengths()
	if len(lens) != 2 || lens[0] != 3 || lens[1] != 1 {
		t.Errorf("RecordLengths = %v", lens)
	}
	sups := d.SupportValues()
	if len(sups) != 3 {
		t.Errorf("SupportValues = %v", sups)
	}
	total := 0
	for _, s := range sups {
		total += s
	}
	if total != 4 {
		t.Errorf("support total = %d, want 4", total)
	}
}

// SupportValues is built by ranging the support map, which iterates in a
// different order every run; the datagen summary prints derived quantiles,
// so the slice must be sorted rather than left in map order (detorder).
func TestSupportValuesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	recs := make([]Record, 200)
	for i := range recs {
		terms := make([]Term, 1+rng.IntN(8))
		for j := range terms {
			terms[j] = Term(rng.IntN(500))
		}
		recs[i] = NewRecord(terms...)
	}
	d := FromRecords(recs)

	first := d.SupportValues()
	for i := 1; i < len(first); i++ {
		if first[i-1] > first[i] {
			t.Fatalf("SupportValues not ascending at %d: %d > %d", i, first[i-1], first[i])
		}
	}
	for trial := 0; trial < 5; trial++ {
		again := d.SupportValues()
		if len(again) != len(first) {
			t.Fatalf("trial %d: length %d, want %d", trial, len(again), len(first))
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("trial %d: SupportValues[%d] = %d, want %d (map-order leak)",
					trial, i, again[i], first[i])
			}
		}
	}
}
