package dataset

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]int{1, 1, 2, 3, 10}, 8)
	if h.Count != 5 || h.Min != 1 || h.Max != 10 {
		t.Errorf("summary: %+v", h)
	}
	if h.Mean != 3.4 {
		t.Errorf("Mean = %v", h.Mean)
	}
	if h.P50 != 2 {
		t.Errorf("P50 = %d", h.P50)
	}
	// Bucket counts must cover every value exactly once.
	total := 0
	for _, b := range h.Buckets {
		total += b.N
	}
	if total != 5 {
		t.Errorf("buckets cover %d of 5 values: %+v", total, h.Buckets)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil, 8)
	if h.Count != 0 || len(h.Buckets) != 0 {
		t.Errorf("empty histogram: %+v", h)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram([]int{7, 7, 7}, 8)
	if h.Min != 7 || h.Max != 7 || h.P99 != 7 {
		t.Errorf("%+v", h)
	}
	if len(h.Buckets) != 1 || h.Buckets[0].N != 3 {
		t.Errorf("buckets: %+v", h.Buckets)
	}
}

func TestHistogramCoversHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	values := make([]int, 10000)
	for i := range values {
		values[i] = 1 + rng.IntN(3)
		if rng.IntN(100) == 0 {
			values[i] = 1000 + rng.IntN(5000) // heavy tail
		}
	}
	h := NewHistogram(values, 8)
	total := 0
	for _, b := range h.Buckets {
		total += b.N
	}
	if total != len(values) {
		t.Errorf("buckets cover %d of %d", total, len(values))
	}
	if len(h.Buckets) > 66 {
		t.Errorf("bucket explosion: %d", len(h.Buckets))
	}
	if h.P99 < 100 && h.Max > 1000 {
		t.Errorf("quantiles off: p99=%d max=%d", h.P99, h.Max)
	}
}

func TestHistogramFprint(t *testing.T) {
	var buf bytes.Buffer
	NewHistogram([]int{1, 2, 2, 3}, 4).Fprint(&buf, "lengths")
	out := buf.String()
	if !strings.Contains(out, "lengths:") || !strings.Contains(out, "#") {
		t.Errorf("Fprint output:\n%s", out)
	}
}

func TestRecordLengthsAndSupportValues(t *testing.T) {
	d := FromRecords([]Record{NewRecord(1, 2, 3), NewRecord(1)})
	lens := d.RecordLengths()
	if len(lens) != 2 || lens[0] != 3 || lens[1] != 1 {
		t.Errorf("RecordLengths = %v", lens)
	}
	sups := d.SupportValues()
	if len(sups) != 3 {
		t.Errorf("SupportValues = %v", sups)
	}
	total := 0
	for _, s := range sups {
		total += s
	}
	if total != 4 {
		t.Errorf("support total = %d, want 4", total)
	}
}
