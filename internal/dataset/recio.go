package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Delta-varint record framing for the streaming engine's spill files: each
// record is a uvarint length followed by its terms, the first absolute (as
// its uint32 bit pattern, so negative input terms survive) and every
// subsequent term as the gap to its predecessor — always ≥ 1 for a
// normalized record. This is the same per-record layout the published binary
// format uses, framed standalone so shard files can be written and re-read
// record by record with bounded memory.

// BinaryRecordWriter streams records into a spill file.
type BinaryRecordWriter struct {
	bw      *bufio.Writer
	scratch [binary.MaxVarintLen64]byte
}

// NewBinaryRecordWriter returns a writer over w.
func NewBinaryRecordWriter(w io.Writer) *BinaryRecordWriter {
	return &BinaryRecordWriter{bw: bufio.NewWriter(w)}
}

func (rw *BinaryRecordWriter) put(v uint64) error {
	n := binary.PutUvarint(rw.scratch[:], v)
	_, err := rw.bw.Write(rw.scratch[:n])
	return err
}

// Write emits one normalized record.
func (rw *BinaryRecordWriter) Write(r Record) error {
	if err := rw.put(uint64(len(r))); err != nil {
		return err
	}
	prev := Term(0)
	for i, t := range r {
		if i == 0 {
			if err := rw.put(uint64(uint32(t))); err != nil {
				return err
			}
		} else if err := rw.put(uint64(int64(t) - int64(prev))); err != nil {
			// Gaps are computed in 64 bits: between int32 terms they can
			// exceed the int32 range (negative first terms).
			return err
		}
		prev = t
	}
	return nil
}

// Flush drains the writer's buffer.
func (rw *BinaryRecordWriter) Flush() error { return rw.bw.Flush() }

// BinaryRecordReader streams records back out of a spill file.
type BinaryRecordReader struct {
	br *bufio.Reader
}

// NewBinaryRecordReader returns a reader over r.
func NewBinaryRecordReader(r io.Reader) *BinaryRecordReader {
	return &BinaryRecordReader{br: bufio.NewReader(r)}
}

// Next returns the next record, reusing buf's storage when it has capacity.
// It returns io.EOF exactly at a clean end of stream; a record truncated
// mid-way surfaces as io.ErrUnexpectedEOF.
func (rr *BinaryRecordReader) Next(buf Record) (Record, error) {
	n, err := binary.ReadUvarint(rr.br)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("dataset: record length: %w", err)
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("dataset: implausible record length %d", n)
	}
	r := buf[:0]
	var cur Term
	for i := uint64(0); i < n; i++ {
		v, err := binary.ReadUvarint(rr.br)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("dataset: record term %d: %w", i, err)
		}
		if i == 0 {
			if v > 1<<32-1 {
				return nil, fmt.Errorf("dataset: first term %d overflows", v)
			}
			cur = Term(int32(uint32(v)))
		} else {
			if v == 0 {
				return nil, fmt.Errorf("dataset: zero gap: record not strictly increasing")
			}
			if v > 1<<32-1 {
				return nil, fmt.Errorf("dataset: gap %d overflows", v)
			}
			// Gaps between int32 terms can span the full uint32 range
			// (negative first terms), so the sum is checked in 64 bits.
			next := int64(cur) + int64(v)
			if next > 1<<31-1 {
				return nil, fmt.Errorf("dataset: term %d overflows", next)
			}
			cur = Term(next)
		}
		r = append(r, cur)
	}
	return r, nil
}
