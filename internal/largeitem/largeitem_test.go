package largeitem

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/dataset"
)

func rec(terms ...dataset.Term) dataset.Record { return dataset.NewRecord(terms...) }

func TestClusterSeparatesCommunities(t *testing.T) {
	// Two disjoint item communities must land in different clusters.
	var records []dataset.Record
	for i := 0; i < 15; i++ {
		records = append(records, rec(1, 2, 3))
	}
	for i := 0; i < 15; i++ {
		records = append(records, rec(100, 101, 102))
	}
	cl := Cluster(records, DefaultConfig())
	if cl.NumClusters < 2 {
		t.Fatalf("NumClusters = %d, want ≥ 2", cl.NumClusters)
	}
	// All community-A records share a cluster distinct from community B's.
	a := cl.Assignments[0]
	for i := 1; i < 15; i++ {
		if cl.Assignments[i] != a {
			t.Errorf("community A split: record %d in cluster %d", i, cl.Assignments[i])
		}
	}
	b := cl.Assignments[15]
	if a == b {
		t.Error("communities merged")
	}
	for i := 16; i < 30; i++ {
		if cl.Assignments[i] != b {
			t.Errorf("community B split: record %d in cluster %d", i, cl.Assignments[i])
		}
	}
}

func TestClusterAssignmentsComplete(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var records []dataset.Record
	for i := 0; i < 80; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(4))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(20))
		}
		records = append(records, rec(terms...))
	}
	cl := Cluster(records, DefaultConfig())
	if len(cl.Assignments) != len(records) {
		t.Fatalf("assignments %d, records %d", len(cl.Assignments), len(records))
	}
	groups := cl.Groups(records)
	if len(groups) != cl.NumClusters {
		t.Fatalf("groups %d, NumClusters %d", len(groups), cl.NumClusters)
	}
	total := 0
	for gi, g := range groups {
		if len(g) == 0 {
			t.Errorf("cluster %d empty after compaction", gi)
		}
		total += len(g)
	}
	if total != len(records) {
		t.Errorf("groups cover %d records, want %d", total, len(records))
	}
	for _, ci := range cl.Assignments {
		if ci < 0 || ci >= cl.NumClusters {
			t.Fatalf("assignment %d out of range", ci)
		}
	}
}

func TestClusterEmptyAndSingle(t *testing.T) {
	cl := Cluster(nil, DefaultConfig())
	if cl.NumClusters != 0 || len(cl.Assignments) != 0 {
		t.Errorf("empty input: %+v", cl)
	}
	cl = Cluster([]dataset.Record{rec(1, 2)}, DefaultConfig())
	if cl.NumClusters != 1 || cl.Assignments[0] != 0 {
		t.Errorf("single record: %+v", cl)
	}
}

func TestClusterDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	var records []dataset.Record
	for i := 0; i < 50; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(3))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(10))
		}
		records = append(records, rec(terms...))
	}
	a := Cluster(records, DefaultConfig())
	b := Cluster(records, DefaultConfig())
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("clustering not deterministic")
		}
	}
}

func TestClusterDefaultsApplied(t *testing.T) {
	// Zero-value config must not divide by zero or loop forever.
	records := []dataset.Record{rec(1), rec(1), rec(2)}
	cl := Cluster(records, Config{})
	if len(cl.Assignments) != 3 {
		t.Fatalf("assignments: %v", cl.Assignments)
	}
}

// The disassociation paper's complaint (b): no explicit size control. Verify
// the algorithm indeed produces clusters far beyond any bound when the data
// is homogeneous — the behaviour HORPART's maxClusterSize prevents.
func TestClusterHasNoSizeControl(t *testing.T) {
	var records []dataset.Record
	for i := 0; i < 200; i++ {
		records = append(records, rec(1, 2, 3))
	}
	cl := Cluster(records, DefaultConfig())
	groups := cl.Groups(records)
	max := 0
	for _, g := range groups {
		if len(g) > max {
			max = len(g)
		}
	}
	if max < 100 {
		t.Errorf("homogeneous data split into clusters of at most %d — expected one giant cluster", max)
	}
}
