// Package largeitem implements the transaction clustering of Wang, Xu & Liu
// ("Clustering transactions using large items", CIKM 1999) — the set-valued
// clustering the paper's Section 4 cites as reference [29] and dismisses for
// the horizontal partitioning step because "(a) they are not efficient on
// large datasets and (b) they do not explicitly control the size of the
// clusters".
//
// Implementing it lets the ablation benchmarks measure that claim instead of
// taking it on faith: the AblationClustering experiment swaps HORPART for
// this algorithm and compares cost, cluster-size spread and information
// loss.
//
// The algorithm: an item is "large" in a cluster when its in-cluster support
// reaches θ·|C|, "small" otherwise. The clustering cost is
//
//	cost(C) = w · Intra + Inter
//
// where Intra is the number of distinct small items across clusters
// (disorder inside clusters) and Inter is the overlap of large items between
// clusters (loss of inter-cluster dissimilarity). Phase 1 scans transactions
// once, assigning each to the cluster (possibly a fresh one) whose cost
// increase is smallest; phase 2 re-assigns transactions until no move
// reduces the cost.
package largeitem

import (
	"disasso/internal/dataset"
)

// Config parameterizes the clustering.
type Config struct {
	// MinSupportRatio is θ: an item is large in a cluster when its support
	// reaches θ·|C|. The CIKM paper's experiments use values around 0.1–0.3.
	MinSupportRatio float64
	// Weight is w, the relative weight of the intra-cluster cost (the CIKM
	// paper's default is 1).
	Weight float64
	// MaxPasses bounds the phase-2 refinement sweeps (defensive; the cost
	// function decreases monotonically so it terminates anyway).
	MaxPasses int
}

// DefaultConfig mirrors the CIKM paper's defaults.
func DefaultConfig() Config {
	return Config{MinSupportRatio: 0.2, Weight: 1, MaxPasses: 10}
}

// cluster is the mutable working state: member indices plus item supports.
type cluster struct {
	members  []int
	supports map[dataset.Term]int
}

func (c *cluster) add(r dataset.Record, idx int) {
	c.members = append(c.members, idx)
	for _, t := range r {
		c.supports[t]++
	}
}

func (c *cluster) remove(r dataset.Record, idx int) {
	for i, m := range c.members {
		if m == idx {
			c.members[i] = c.members[len(c.members)-1]
			c.members = c.members[:len(c.members)-1]
			break
		}
	}
	for _, t := range r {
		if c.supports[t] <= 1 {
			delete(c.supports, t)
		} else {
			c.supports[t]--
		}
	}
}

// largeSmall splits a cluster's items by the θ·|C| threshold.
func (c *cluster) largeSmall(theta float64) (large, small int, largeSet map[dataset.Term]bool) {
	largeSet = make(map[dataset.Term]bool)
	bound := theta * float64(len(c.members))
	for t, s := range c.supports {
		if float64(s) >= bound && len(c.members) > 0 {
			large++
			largeSet[t] = true
		} else {
			small++
		}
	}
	return large, small, largeSet
}

// Clustering is the result: record indices grouped by cluster.
type Clustering struct {
	// Assignments maps record index → cluster index.
	Assignments []int
	// NumClusters is the number of non-empty clusters.
	NumClusters int
	// Cost is the final clustering cost.
	Cost float64
}

// Groups materializes the clusters as record slices, preserving record
// order inside each cluster.
func (cl *Clustering) Groups(records []dataset.Record) [][]dataset.Record {
	groups := make([][]dataset.Record, cl.NumClusters)
	for i, c := range cl.Assignments {
		groups[c] = append(groups[c], records[i])
	}
	return groups
}

// Cluster runs the two-phase large-item clustering over the records.
func Cluster(records []dataset.Record, cfg Config) *Clustering {
	if cfg.MinSupportRatio <= 0 {
		cfg.MinSupportRatio = DefaultConfig().MinSupportRatio
	}
	if cfg.Weight <= 0 {
		cfg.Weight = 1
	}
	if cfg.MaxPasses <= 0 {
		cfg.MaxPasses = DefaultConfig().MaxPasses
	}

	var clusters []*cluster
	assign := make([]int, len(records))

	// Phase 1: single allocation sweep.
	for i, r := range records {
		best, bestCost := -1, 0.0
		for ci := range clusters {
			delta := costDelta(clusters, ci, r, cfg)
			if best == -1 || delta < bestCost {
				best, bestCost = ci, delta
			}
		}
		// A fresh cluster is always an option.
		freshDelta := costDelta(append(clusters, newCluster()), len(clusters), r, cfg)
		if best == -1 || freshDelta < bestCost {
			clusters = append(clusters, newCluster())
			best = len(clusters) - 1
		}
		clusters[best].add(r, i)
		assign[i] = best
	}

	// Phase 2: move transactions while the cost decreases.
	for pass := 0; pass < cfg.MaxPasses; pass++ {
		moved := false
		for i, r := range records {
			cur := assign[i]
			clusters[cur].remove(r, i)
			best, bestCost := -1, 0.0
			for ci := range clusters {
				if len(clusters[ci].members) == 0 && ci != cur {
					continue
				}
				delta := costDelta(clusters, ci, r, cfg)
				if best == -1 || delta < bestCost {
					best, bestCost = ci, delta
				}
			}
			if best == -1 {
				best = cur
			}
			clusters[best].add(r, i)
			if best != cur {
				moved = true
				assign[i] = best
			}
		}
		if !moved {
			break
		}
	}

	// Compact empty clusters.
	remap := make(map[int]int)
	for ci, c := range clusters {
		if len(c.members) > 0 {
			remap[ci] = len(remap)
		}
	}
	out := &Clustering{Assignments: make([]int, len(records)), NumClusters: len(remap)}
	for i, ci := range assign {
		out.Assignments[i] = remap[ci]
	}
	out.Cost = totalCost(clusters, cfg)
	return out
}

func newCluster() *cluster {
	return &cluster{supports: make(map[dataset.Term]int)}
}

// totalCost evaluates cost(C) = w·Intra + Inter over the live clusters.
func totalCost(clusters []*cluster, cfg Config) float64 {
	intra := 0
	largeCounts := make(map[dataset.Term]int)
	for _, c := range clusters {
		if len(c.members) == 0 {
			continue
		}
		_, small, largeSet := c.largeSmall(cfg.MinSupportRatio)
		intra += small
		for t := range largeSet {
			largeCounts[t]++
		}
	}
	inter := 0
	for _, n := range largeCounts {
		inter += n - 1 // overlap beyond the first cluster
	}
	return cfg.Weight*float64(intra) + float64(inter)
}

// costDelta evaluates the cost change of adding r to clusters[ci]. The CIKM
// paper evaluates candidates exactly this way — recomputing the affected
// cluster's contribution — which is what makes it slow on large data (the
// inefficiency the disassociation paper calls out).
func costDelta(clusters []*cluster, ci int, r dataset.Record, cfg Config) float64 {
	before := totalCost(clusters, cfg)
	clusters[ci].add(r, -1)
	after := totalCost(clusters, cfg)
	clusters[ci].remove(r, -1)
	return after - before
}
