package attack

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

func rec(terms ...dataset.Term) dataset.Record { return dataset.NewRecord(terms...) }

func randomDataset(seed uint64, n, domain, maxLen int) *dataset.Dataset {
	rng := rand.New(rand.NewPCG(seed, 9))
	var records []dataset.Record
	for i := 0; i < n; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(maxLen))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(domain))
		}
		records = append(records, rec(terms...))
	}
	return dataset.FromRecords(records)
}

func TestCandidatesOnHandBuiltCluster(t *testing.T) {
	a := &core.Anonymized{
		K: 3, M: 2,
		Clusters: []*core.ClusterNode{{Simple: &core.Cluster{
			Size: 6,
			RecordChunks: []core.Chunk{{
				Domain: rec(1, 2),
				Subrecords: []dataset.Record{
					rec(1, 2), rec(1, 2), rec(1, 2), rec(1), rec(1),
				},
			}},
			TermChunk: rec(9),
		}}},
	}
	if got := Candidates(a, rec(1, 2)); got != 3 {
		t.Errorf("Candidates({1,2}) = %d, want 3", got)
	}
	if got := Candidates(a, rec(9)); got != 6 {
		t.Errorf("Candidates({9}) = %d, want 6 (whole cluster)", got)
	}
	if got := Candidates(a, rec(42)); got != 0 {
		t.Errorf("Candidates(absent) = %d, want 0", got)
	}
	if !GuaranteeHolds(a, rec(1, 2), 3) || !GuaranteeHolds(a, rec(42), 3) {
		t.Error("GuaranteeHolds false on satisfied cases")
	}
	if GuaranteeHolds(a, rec(1), 6) {
		t.Error("GuaranteeHolds true at k above the candidate count")
	}
}

// The tiny-cluster weakness the anonymizer must avoid: a term confined to
// the term chunk of a 2-record cluster yields 2 < k candidates.
func TestAuditTermsFlagsTinyClusterLeak(t *testing.T) {
	bad := &core.Anonymized{
		K: 5, M: 2,
		Clusters: []*core.ClusterNode{{Simple: &core.Cluster{
			Size:      2,
			TermChunk: rec(7, 8),
		}}},
	}
	violations := AuditTerms(bad, 5)
	if len(violations) != 2 {
		t.Fatalf("violations = %v, want both term-chunk terms flagged", violations)
	}
	for _, v := range violations {
		if v.Candidates != 2 {
			t.Errorf("violation %v: candidates %d, want 2", v.Knowledge, v.Candidates)
		}
	}
}

// End-to-end: the anonymizer (with undersized-cluster merging) must pass the
// single-term audit and the record-sampled m-term audit.
func TestAnonymizerPassesAudit(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		d := randomDataset(seed, 300, 40, 5)
		k := 3 + int(seed)%3
		a, err := core.Anonymize(d, core.Options{K: k, M: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if v := AuditTerms(a, k); len(v) > 0 {
			t.Errorf("seed %d: single-term audit failed: %v", seed, v[:min(3, len(v))])
		}
		rng := rand.New(rand.NewPCG(seed, 77))
		if v := AuditRecords(a, d, 2, k, 200, rng); len(v) > 0 {
			t.Errorf("seed %d: record audit failed: %v", seed, v[:min(3, len(v))])
		}
	}
}

func TestStrongerAdversaryDegrades(t *testing.T) {
	d := randomDataset(11, 400, 30, 6)
	a, err := core.Anonymize(d, core.Options{K: 5, M: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(12, 13))
	exposures := StrongerAdversary(a, d, 5, 300, rng)
	if len(exposures) != 5 {
		t.Fatalf("exposures = %d", len(exposures))
	}
	// Within the model (size ≤ m=2): min candidates ≥ k.
	for _, e := range exposures[:2] {
		if e.Samples == 0 {
			t.Fatalf("no samples at size %d", e.KnowledgeSize)
		}
		if e.MinCandidates < 5 {
			t.Errorf("size %d: min candidates %d < k", e.KnowledgeSize, e.MinCandidates)
		}
	}
	// Candidate counts shrink (weakly) as knowledge grows.
	for i := 1; i < len(exposures); i++ {
		if exposures[i].Samples == 0 {
			continue
		}
		if exposures[i].MeanCandidates > exposures[i-1].MeanCandidates*1.5+1 {
			t.Errorf("mean candidates grew sharply from size %d to %d: %v → %v",
				i, i+1, exposures[i-1].MeanCandidates, exposures[i].MeanCandidates)
		}
	}
}

func TestBaselineCandidates(t *testing.T) {
	d := dataset.FromRecords([]dataset.Record{rec(1, 2), rec(1, 2), rec(1)})
	if got := BaselineCandidates(d, rec(1, 2)); got != 2 {
		t.Errorf("BaselineCandidates = %d", got)
	}
}

func TestAuditRecordsZeroCandidatesIsViolation(t *testing.T) {
	// Knowledge drawn from a real record must never be unreconstructable.
	// Build a broken publication that dropped a record's terms.
	d := dataset.FromRecords([]dataset.Record{rec(1, 2), rec(3)})
	broken := &core.Anonymized{
		K: 2, M: 2,
		Clusters: []*core.ClusterNode{{Simple: &core.Cluster{
			Size:      2,
			TermChunk: rec(1, 2), // term 3 vanished
		}}},
	}
	rng := rand.New(rand.NewPCG(1, 1))
	v := AuditRecords(broken, d, 1, 2, 100, rng)
	found := false
	for _, violation := range v {
		if violation.Knowledge.Contains(3) {
			found = true
		}
	}
	if !found {
		t.Error("dropped term not flagged by the record audit")
	}
}
