// Package attack simulates the paper's adversary (Section 2 attack model,
// Section 5 "Protection against stronger adversaries"): an attacker holds
// background knowledge — a set of terms she knows a user's record contains —
// and tries to narrow the published dataset down to that record.
//
// The candidate set of a knowledge set S is every record that could contain
// all of S in some valid reconstruction. Guarantee 1 promises |candidates|
// is zero (the combination never existed) or at least k whenever |S| ≤ m.
// Audit sweeps verify this empirically over the published form; the
// stronger-adversary helpers quantify how the protection degrades once
// knowledge exceeds m — the paper's qualitative discussion, measured.
package attack

import (
	"math/rand/v2"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/itemset"
	"disasso/internal/query"
)

// Candidates returns the number of candidate records for the given
// background knowledge: the largest number of records that can carry all
// knowledge terms in any single reconstruction (the adversary must consider
// each of them).
func Candidates(a *core.Anonymized, knowledge dataset.Record) int {
	return query.Support(a, knowledge).Upper
}

// GuaranteeHolds reports whether the k^m promise stands for one knowledge
// set: no candidates at all, or at least k of them.
func GuaranteeHolds(a *core.Anonymized, knowledge dataset.Record, k int) bool {
	c := Candidates(a, knowledge)
	return c == 0 || c >= k
}

// Violation records one knowledge set whose candidate count lands strictly
// between zero and k.
type Violation struct {
	Knowledge  dataset.Record
	Candidates int
}

// AuditTerms checks every single term of the published domain (the m = 1
// adversary) and returns all violations.
func AuditTerms(a *core.Anonymized, k int) []Violation {
	var out []Violation
	for _, t := range a.Domain() {
		s := dataset.Record{t}
		if c := Candidates(a, s); c > 0 && c < k {
			out = append(out, Violation{Knowledge: s.Clone(), Candidates: c})
		}
	}
	return out
}

// AuditRecords draws background knowledge the way the paper's adversary
// obtains it: random m-subsets of actual original records (knowledge that
// certainly existed). It samples up to trials subsets and returns the
// violations found.
func AuditRecords(a *core.Anonymized, d *dataset.Dataset, m, k, trials int, rng *rand.Rand) []Violation {
	var out []Violation
	if d.Len() == 0 {
		return out
	}
	seen := make(map[string]bool)
	for i := 0; i < trials; i++ {
		r := d.Records[rng.IntN(d.Len())]
		if len(r) == 0 {
			continue
		}
		size := m
		if size > len(r) {
			size = len(r)
		}
		perm := rng.Perm(len(r))[:size]
		terms := make([]dataset.Term, size)
		for j, idx := range perm {
			terms[j] = r[idx]
		}
		s := dataset.NewRecord(terms...)
		if seen[s.Key()] {
			continue
		}
		seen[s.Key()] = true
		if c := Candidates(a, s); c < k {
			// Knowledge drawn from a real record must be reconstructable:
			// zero candidates would itself be a soundness bug.
			out = append(out, Violation{Knowledge: s, Candidates: c})
		}
	}
	return out
}

// Exposure summarizes a stronger-adversary sweep: how the candidate count
// shrinks as the background knowledge grows past m.
type Exposure struct {
	KnowledgeSize int
	// MinCandidates is the smallest non-zero candidate count observed.
	MinCandidates int
	// MeanCandidates averages the non-zero candidate counts.
	MeanCandidates float64
	// Identified counts knowledge sets that pinned a single candidate.
	Identified int
	// Samples is the number of knowledge sets evaluated.
	Samples int
}

// StrongerAdversary measures exposure for knowledge sizes 1..maxKnowledge
// using random subsets of original records — the degradation the paper
// discusses for adversaries exceeding the attack-model assumptions. Records
// shorter than the knowledge size contribute their full term set.
func StrongerAdversary(a *core.Anonymized, d *dataset.Dataset, maxKnowledge, trials int, rng *rand.Rand) []Exposure {
	out := make([]Exposure, 0, maxKnowledge)
	for size := 1; size <= maxKnowledge; size++ {
		exp := Exposure{KnowledgeSize: size}
		sum := 0
		for i := 0; i < trials; i++ {
			r := d.Records[rng.IntN(d.Len())]
			if len(r) == 0 {
				continue
			}
			take := size
			if take > len(r) {
				take = len(r)
			}
			perm := rng.Perm(len(r))[:take]
			terms := make([]dataset.Term, take)
			for j, idx := range perm {
				terms[j] = r[idx]
			}
			s := dataset.NewRecord(terms...)
			c := Candidates(a, s)
			if c <= 0 {
				continue
			}
			exp.Samples++
			sum += c
			if exp.MinCandidates == 0 || c < exp.MinCandidates {
				exp.MinCandidates = c
			}
			if c == 1 {
				exp.Identified++
			}
		}
		if exp.Samples > 0 {
			exp.MeanCandidates = float64(sum) / float64(exp.Samples)
		}
		out = append(out, exp)
	}
	return out
}

// BaselineCandidates counts the records of the raw (unprotected) dataset
// matching the knowledge — what the adversary gets without anonymization.
func BaselineCandidates(d *dataset.Dataset, knowledge dataset.Record) int {
	return itemset.SupportOf(d.Records, knowledge)
}
