package core

import (
	"slices"

	"disasso/internal/dataset"
)

// clusterIndex remaps one cluster's records from the huge global term domain
// onto dense local ids (0..n−1, assigned in ascending global-term order so
// projections stay sorted in local-id space) and keeps per-term posting
// lists. The anonymity checkers work entirely in local-id space: m-term
// combinations pack into a single uint64 key and the posting lists let
// TryAdd visit only the records that actually contain the candidate term.
//
// The index also owns the scratch buffers the checkers borrow. Checkers
// built on one index must be used from one goroutine at a time (VERPART and
// REFINE build one index per cluster/join, so cross-cluster parallelism
// never shares an index).
type clusterIndex struct {
	records  []dataset.Record // the original record bag, for slow-path checkers
	terms    []dataset.Term   // local id -> global term, ascending
	recs     [][]uint32       // per record, its terms as sorted local ids
	postings [][]int32        // local id -> indices of records containing it

	// Scratch borrowed by checkers (single-goroutine use).
	domBits []bool       // current checker's domain as a local-id bitmap
	proj    []uint32     // record ∩ domain projection buffer
	counter comboCounter // combination counts, reused across TryAdd calls
	enum    subsetEnum   // reusable subset enumeration state
}

// collectTerms returns the sorted distinct terms of a record bag. Dense
// local ids are positions in this list, so they ascend with global terms —
// the invariant the packed combination keys, VERPART's candidate ordering
// and HORPART's tie-breaking all rely on.
func collectTerms(records []dataset.Record) []dataset.Term {
	total := 0
	for _, r := range records {
		total += len(r)
	}
	all := make([]dataset.Term, 0, total)
	for _, r := range records {
		all = append(all, r...)
	}
	slices.Sort(all)
	return slices.Compact(all)
}

// buildClusterIndex scans the record bag once and builds the dense remapping.
func buildClusterIndex(records []dataset.Record) *clusterIndex {
	total := 0
	for _, r := range records {
		total += len(r)
	}
	terms := collectTerms(records)

	ix := &clusterIndex{records: records, terms: terms}

	// Remap by binary search: records are short and the term list small, so
	// this beats building a lookup map.
	flat := make([]uint32, total)
	ix.recs = make([][]uint32, len(records))
	supports := make([]int32, len(terms))
	used := 0
	for i, r := range records {
		lr := flat[used : used : used+len(r)]
		for _, t := range r {
			j, _ := slices.BinarySearch(terms, t)
			lt := uint32(j)
			lr = append(lr, lt)
			supports[lt]++
		}
		ix.recs[i] = lr
		used += len(r)
	}

	post := make([]int32, total)
	ix.postings = make([][]int32, len(terms))
	used = 0
	for lt, s := range supports {
		ix.postings[lt] = post[used : used : used+int(s)]
		used += int(s)
	}
	for ri, lr := range ix.recs {
		for _, lt := range lr {
			ix.postings[lt] = append(ix.postings[lt], int32(ri))
		}
	}

	ix.domBits = make([]bool, len(terms))
	return ix
}

// indexScratch rebuilds clusterIndexes over record bags drawn from one dense
// term domain (terms must be ids below nTerms) without allocating in the
// steady state: distinct-term collection and the local-id remap go through
// epoch-stamped flat arrays instead of per-term binary searches, and the
// index's backing storage is reused between builds. Each worker owns one
// scratch; an index (and every checker built on it) is valid only until the
// owning scratch's next build call.
type indexScratch struct {
	localOf []int32  // dense term id -> local id, valid when stamp matches
	stamp   []uint32 // epoch marks for localOf
	epoch   uint32

	ix      clusterIndex
	termBuf []dataset.Term
	flat    []uint32
	recsBuf [][]uint32
	postBuf []int32
	posts   [][]int32
	supBuf  []int32
	domBuf  []bool
}

func newIndexScratch(nTerms int) *indexScratch {
	return &indexScratch{
		localOf: make([]int32, nTerms),
		stamp:   make([]uint32, nTerms),
	}
}

// build rebuilds the scratch-owned index over the records. It is the dense
// counterpart of buildClusterIndex with identical observable behavior.
func (s *indexScratch) build(records []dataset.Record) *clusterIndex {
	s.epoch++
	total := 0
	terms := s.termBuf[:0]
	for _, r := range records {
		total += len(r)
		for _, t := range r {
			if s.stamp[t] != s.epoch {
				s.stamp[t] = s.epoch
				terms = append(terms, t)
			}
		}
	}
	slices.Sort(terms)
	s.termBuf = terms
	for i, t := range terms {
		s.localOf[t] = int32(i)
	}

	if cap(s.flat) < total {
		s.flat = make([]uint32, 0, total+total/2)
	}
	flat := s.flat[:0]
	if cap(s.recsBuf) < len(records) {
		s.recsBuf = make([][]uint32, len(records)+len(records)/2)
	}
	recs := s.recsBuf[:len(records)]
	if cap(s.supBuf) < len(terms) {
		s.supBuf = make([]int32, len(terms)+len(terms)/2)
	}
	supports := s.supBuf[:len(terms)]
	clear(supports)
	for i, r := range records {
		start := len(flat)
		for _, t := range r {
			lt := uint32(s.localOf[t])
			flat = append(flat, lt)
			supports[lt]++
		}
		recs[i] = flat[start:len(flat):len(flat)]
	}

	if cap(s.postBuf) < total {
		s.postBuf = make([]int32, total+total/2)
	}
	post := s.postBuf[:total]
	if cap(s.posts) < len(terms) {
		s.posts = make([][]int32, len(terms)+len(terms)/2)
	}
	postings := s.posts[:len(terms)]
	used := 0
	for lt, sup := range supports {
		postings[lt] = post[used : used : used+int(sup)]
		used += int(sup)
	}
	for ri, lr := range recs {
		for _, lt := range lr {
			postings[lt] = append(postings[lt], int32(ri))
		}
	}

	if cap(s.domBuf) < len(terms) {
		s.domBuf = make([]bool, len(terms)+len(terms)/2)
	}
	domBits := s.domBuf[:len(terms)]
	clear(domBits)

	ix := &s.ix
	ix.records = records
	ix.terms = terms
	ix.recs = recs
	ix.postings = postings
	ix.domBits = domBits
	return ix
}

// localID returns the dense id of a global term, if the term occurs in the
// indexed records.
func (ix *clusterIndex) localID(t dataset.Term) (uint32, bool) {
	i, ok := slices.BinarySearch(ix.terms, t)
	return uint32(i), ok
}

// resetDomain clears the shared domain bitmap for a fresh checker.
func (ix *clusterIndex) resetDomain() {
	clear(ix.domBits)
}

// packSpace returns base^elems, the size of the positional key space for
// combinations of up to elems local ids in base base, and whether it fits in
// a uint64 (with headroom so key arithmetic cannot overflow).
func packSpace(base uint64, elems int) (uint64, bool) {
	space := uint64(1)
	for i := 0; i < elems; i++ {
		if space > (1<<62)/base {
			return 0, false
		}
		space *= base
	}
	return space, true
}

// maxFlatCounterSpace bounds the dense counting slab: key spaces up to 2^20
// entries (4 MiB of int32) count in a flat array, larger ones fall back to a
// uint64-keyed map.
const maxFlatCounterSpace = 1 << 20

// comboCounter counts packed combination keys. Small key spaces use a flat
// slab reset via a touched list; large ones use a reusable map. Both reuse
// their storage across begin calls, so steady-state counting is
// allocation-free.
type comboCounter struct {
	useFlat bool
	flat    []int32
	touched []uint64
	m       map[uint64]int32
}

// begin prepares the counter for one counting round over the given key space.
func (c *comboCounter) begin(space uint64) {
	for _, k := range c.touched {
		c.flat[k] = 0
	}
	c.touched = c.touched[:0]
	if len(c.m) > 0 {
		clear(c.m)
	}
	c.useFlat = space <= maxFlatCounterSpace
	if c.useFlat {
		if uint64(len(c.flat)) < space {
			c.flat = make([]int32, space)
		}
	} else if c.m == nil {
		c.m = make(map[uint64]int32)
	}
}

func (c *comboCounter) inc(key uint64) {
	if c.useFlat {
		if c.flat[key] == 0 {
			c.touched = append(c.touched, key)
		}
		c.flat[key]++
	} else {
		c.m[key]++
	}
}

// allAtLeast reports whether every counted key reached k.
func (c *comboCounter) allAtLeast(k int32) bool {
	if c.useFlat {
		for _, key := range c.touched {
			if c.flat[key] < k {
				return false
			}
		}
		return true
	}
	//lint:deterministic order-independent forall-threshold reduction over counts
	for _, n := range c.m {
		if n < k {
			return false
		}
	}
	return true
}

// subsetEnum enumerates all subsets of up to maxSize elements of a sorted
// local-id projection, incrementally building the positional packed key
// (digits are id+1 in base base, most significant first, so keys are
// canonical per subset and distinct across sizes). It lives on the index so
// enumeration allocates nothing.
type subsetEnum struct {
	counter  *comboCounter
	proj     []uint32
	base     uint64
	maxSize  int
	countAll bool // count the empty subset too (TryAdd counts combos {t}∪s, s possibly empty)
}

func (e *subsetEnum) run() {
	if e.countAll {
		e.counter.inc(0)
	}
	if e.maxSize > 0 {
		e.rec(0, 0, 0)
	}
}

func (e *subsetEnum) rec(start int, key uint64, depth int) {
	for i := start; i < len(e.proj); i++ {
		k := key*e.base + uint64(e.proj[i]) + 1
		e.counter.inc(k)
		if depth+1 < e.maxSize {
			e.rec(i+1, k, depth+1)
		}
	}
}

// countSubsets counts every subset of proj with at most maxSize elements
// (including, when countAll is set, the empty subset) into the index's
// counter.
func (ix *clusterIndex) countSubsets(proj []uint32, base uint64, maxSize int, countAll bool) {
	ix.enum = subsetEnum{counter: &ix.counter, proj: proj, base: base, maxSize: maxSize, countAll: countAll}
	ix.enum.run()
}
