package core

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/dataset"
)

// figure2Leaves builds the leafStates of the paper's clusters P1 and P2
// after VERPART, as in Figure 2b.
func figure2Leaves(t *testing.T) []*leafState {
	t.Helper()
	p1 := figure2P1()
	p2 := figure2P2()
	return []*leafState{
		{records: p1, cluster: VerPart(p1, 3, 2, nil, testRNG())},
		{records: p2, cluster: VerPart(p2, 3, 2, nil, testRNG())},
	}
}

func TestTryJoinFigure3(t *testing.T) {
	// Joining P1 and P2 must produce the joint cluster of Figure 3: one
	// shared chunk over {ikea, ruby}, with viagra left in P1's term chunk
	// and panic disorder + playboy in P2's.
	leaves := figure2Leaves(t)
	a := &refNode{leaf: leaves[0]}
	b := &refNode{leaf: leaves[1]}
	a.refreshVirtualTC()
	b.refreshVirtualTC()

	j := tryJoin(a, b, 3, 2, nil, testRNG())
	if j == nil {
		t.Fatal("Equation 1 holds ((4+4)/10 ≥ (2+2)/10) but join was rejected")
	}
	if len(j.shared) != 1 {
		t.Fatalf("got %d shared chunks, want 1", len(j.shared))
	}
	sc := j.shared[0]
	if !sc.Domain.Equal(dataset.NewRecord(ikea, ruby)) {
		t.Errorf("shared chunk domain = %v, want {ikea, ruby}", sc.Domain)
	}
	// Figure 3 lists five non-empty shared subrecords: {ikea,ruby}×3 (r1,
	// r7, r10), {ruby} (r2), {ikea} (r3).
	counts := make(map[string]int)
	for _, sr := range sc.Subrecords {
		counts[sr.Key()]++
	}
	if counts[dataset.NewRecord(ikea, ruby).Key()] != 3 ||
		counts[dataset.NewRecord(ruby).Key()] != 1 ||
		counts[dataset.NewRecord(ikea).Key()] != 1 {
		t.Errorf("shared subrecord multiset = %v", counts)
	}
	if !leaves[0].cluster.TermChunk.Equal(dataset.NewRecord(viagra)) {
		t.Errorf("P1 term chunk after join = %v, want {viagra}", leaves[0].cluster.TermChunk)
	}
	if !leaves[1].cluster.TermChunk.Equal(dataset.NewRecord(panicDis, playboy)) {
		t.Errorf("P2 term chunk after join = %v", leaves[1].cluster.TermChunk)
	}
	if !IsChunkKMAnonymous(sc.Domain, sc.Subrecords, 3, 2) {
		t.Error("shared chunk not 3^2-anonymous")
	}
}

func TestTryJoinNoCommonTerms(t *testing.T) {
	mk := func(records []dataset.Record, term dataset.Term) *refNode {
		cl := VerPart(records, 3, 2, nil, testRNG())
		n := &refNode{leaf: &leafState{records: records, cluster: cl}}
		n.refreshVirtualTC()
		return n
	}
	a := mk([]dataset.Record{
		dataset.NewRecord(1, 10), dataset.NewRecord(1), dataset.NewRecord(1), dataset.NewRecord(1),
	}, 10)
	b := mk([]dataset.Record{
		dataset.NewRecord(2, 20), dataset.NewRecord(2), dataset.NewRecord(2), dataset.NewRecord(2),
	}, 20)
	if tryJoin(a, b, 3, 2, nil, testRNG()) != nil {
		t.Error("join without common term-chunk terms must be rejected")
	}
}

func TestTryJoinInsufficientSupport(t *testing.T) {
	// Term 9 is in both term chunks but has total support 2 < k=3: no
	// k^m-anonymous shared chunk can host it, so the join must fail.
	mk := func(records []dataset.Record) *refNode {
		cl := VerPart(records, 3, 2, nil, testRNG())
		n := &refNode{leaf: &leafState{records: records, cluster: cl}}
		n.refreshVirtualTC()
		return n
	}
	a := mk([]dataset.Record{
		dataset.NewRecord(1, 9), dataset.NewRecord(1), dataset.NewRecord(1),
	})
	b := mk([]dataset.Record{
		dataset.NewRecord(2, 9), dataset.NewRecord(2), dataset.NewRecord(2),
	})
	if !a.virtTC.Contains(9) || !b.virtTC.Contains(9) {
		t.Fatal("fixture broken: 9 must be in both term chunks")
	}
	if tryJoin(a, b, 3, 2, nil, testRNG()) != nil {
		t.Error("join with only sub-k refining terms must be rejected")
	}
}

func TestRefineFigure2EndToEnd(t *testing.T) {
	leaves := figure2Leaves(t)
	nodes := []*refNode{{leaf: leaves[0]}, {leaf: leaves[1]}}
	out := refine(nodes, 3, 2, nil, testRNG(), 1)
	if len(out) != 1 {
		t.Fatalf("refine left %d nodes, want 1 joint", len(out))
	}
	if out[0].leaf != nil {
		t.Fatal("result should be a joint node")
	}
	if len(out[0].children) != 2 {
		t.Fatalf("joint has %d children", len(out[0].children))
	}
}

func TestRefineFixpointWithoutJoinableClusters(t *testing.T) {
	// Clusters with disjoint term chunks never join; refine must terminate
	// and return them unchanged.
	var nodes []*refNode
	for i := 0; i < 4; i++ {
		base := dataset.Term(i * 100)
		records := []dataset.Record{
			dataset.NewRecord(base, base+50),
			dataset.NewRecord(base),
			dataset.NewRecord(base),
		}
		cl := VerPart(records, 3, 2, nil, testRNG())
		nodes = append(nodes, &refNode{leaf: &leafState{records: records, cluster: cl}})
	}
	out := refine(nodes, 3, 2, nil, testRNG(), 1)
	if len(out) != 4 {
		t.Errorf("refine changed the forest: %d nodes", len(out))
	}
	for _, n := range out {
		if n.leaf == nil {
			t.Error("unexpected joint node")
		}
	}
}

func TestRefinePropertyOneConflict(t *testing.T) {
	// Term 7 sits in the record chunk of one cluster (support ≥ k there)
	// and in the term chunks of two others. A shared chunk containing 7
	// would meet T^r, so it must come out k-anonymous.
	mkLeaf := func(records []dataset.Record) *refNode {
		cl := VerPart(records, 3, 2, nil, testRNG())
		return &refNode{leaf: &leafState{records: records, cluster: cl}}
	}
	// Cluster A: term 7 frequent → record chunk.
	a := mkLeaf([]dataset.Record{
		dataset.NewRecord(7, 1), dataset.NewRecord(7, 1), dataset.NewRecord(7, 1),
		dataset.NewRecord(7), dataset.NewRecord(9),
	})
	// Clusters B and C: term 7 and 8 infrequent → term chunks {7, 8}.
	mkBC := func() *refNode {
		return mkLeaf([]dataset.Record{
			dataset.NewRecord(7, 8), dataset.NewRecord(7, 8), dataset.NewRecord(5),
			dataset.NewRecord(5), dataset.NewRecord(5),
		})
	}
	b, c := mkBC(), mkBC()

	// First join B and C (term chunks {7,8} each, total support 4 ≥ 3).
	b.refreshVirtualTC()
	c.refreshVirtualTC()
	j := tryJoin(b, c, 3, 2, nil, testRNG())
	if j == nil {
		t.Fatal("B+C join rejected")
	}
	// Now join (B+C) with A: any shared chunk with term 7 conflicts with
	// A's record chunk.
	j.refreshVirtualTC()
	a.refreshVirtualTC()
	j2 := tryJoin(j, a, 3, 2, nil, testRNG())
	if j2 == nil {
		t.Skip("second join rejected by Equation 1 — conflict path not exercised")
	}
	trSize := max(j.maxNodeTerm(), a.maxNodeTerm()) + 1
	tr := make([]bool, trSize)
	j.recordAndSharedDomains(tr)
	a.recordAndSharedDomains(tr)
	for _, sc := range j2.shared {
		meets := false
		for _, term := range sc.Domain {
			if tr[term] {
				meets = true
			}
		}
		if meets && !IsChunkKAnonymous(sc.Domain, sc.Subrecords, 3) {
			t.Errorf("shared chunk %v meets T^r but is not 3-anonymous", sc.Domain)
		}
	}
}

func TestTryJoinKeepsChunklessClustersAlive(t *testing.T) {
	// Regression: two clusters smaller than k have no record chunks, only
	// term chunks {x, y}. Joining them moves both terms into shared chunks
	// (total supports reach k) — but each leaf must retain at least one
	// term, or its records become unreconstructable.
	x, y := dataset.Term(1), dataset.Term(2)
	mk := func(records []dataset.Record) *refNode {
		cl := VerPart(records, 5, 2, nil, testRNG())
		if len(cl.RecordChunks) != 0 {
			t.Fatal("fixture broken: expected no record chunks")
		}
		n := &refNode{leaf: &leafState{records: records, cluster: cl}}
		n.refreshVirtualTC()
		return n
	}
	a := mk([]dataset.Record{
		dataset.NewRecord(x, y), dataset.NewRecord(x, y), dataset.NewRecord(x),
	})
	b := mk([]dataset.Record{
		dataset.NewRecord(x, y), dataset.NewRecord(x, y), dataset.NewRecord(y),
	})
	j := tryJoin(a, b, 5, 2, nil, testRNG())
	if j == nil {
		t.Skip("join rejected — Lemma 2 retention path not exercised")
	}
	for _, l := range j.leaves(nil) {
		if len(l.cluster.RecordChunks) == 0 && len(l.cluster.TermChunk) == 0 {
			t.Fatal("join left a cluster with no chunks and no term chunk")
		}
	}
}

func TestOrderByTermChunksGroupsSharers(t *testing.T) {
	mk := func(termChunk ...dataset.Term) *refNode {
		cl := &Cluster{Size: 3, TermChunk: dataset.NewRecord(termChunk...)}
		n := &refNode{leaf: &leafState{cluster: cl}}
		n.refreshVirtualTC()
		return n
	}
	// Terms 1 and 2 each appear in two term chunks; nodes sharing them must
	// become adjacent.
	nodes := []*refNode{mk(1, 5), mk(3), mk(1, 6), mk(2, 7), mk(2)}
	orderByTermChunks(nodes)
	pos := make(map[dataset.Term][]int)
	for i, n := range nodes {
		for _, term := range n.virtTC {
			pos[term] = append(pos[term], i)
		}
	}
	for _, term := range []dataset.Term{1, 2} {
		p := pos[term]
		if len(p) == 2 && p[1]-p[0] != 1 {
			t.Errorf("clusters sharing term %d are at positions %v, not adjacent", term, p)
		}
	}
}

func TestGreedyDomainsPlacesAllEligible(t *testing.T) {
	records := []dataset.Record{
		dataset.NewRecord(1, 2), dataset.NewRecord(1, 2), dataset.NewRecord(1, 2),
		dataset.NewRecord(3), dataset.NewRecord(3), dataset.NewRecord(3),
	}
	scr := newPlanScratch(4)
	scr.totalSup[1], scr.totalSup[2], scr.totalSup[3] = 3, 3, 3
	var placed dataset.Record
	domains := greedyDomains(dataset.NewRecord(1, 2, 3), scr, func() domainChecker {
		return newKMChecker(3, 2, records)
	}, &placed)
	if len(placed) != 3 {
		t.Errorf("placed %d terms, want 3", len(placed))
	}
	var all dataset.Record
	for _, d := range domains {
		all = all.Union(d)
	}
	if !all.Equal(dataset.NewRecord(1, 2, 3)) {
		t.Errorf("domains cover %v", all)
	}
}

// TestLeafStateSupportStrict pins the support-cache invariant: reading a
// support before the cache is built must panic instead of lazily (and
// racily) building it, since planJoin shares leaves across goroutines.
func TestLeafStateSupportStrict(t *testing.T) {
	l := &leafState{records: []dataset.Record{dataset.NewRecord(1, 2)}}
	defer func() {
		if recover() == nil {
			t.Fatal("support on an unbuilt cache did not panic")
		}
	}()
	l.support(1)
}

func TestLeafStateSupportAfterEnsure(t *testing.T) {
	l := &leafState{records: []dataset.Record{
		dataset.NewRecord(1, 2), dataset.NewRecord(2),
	}}
	l.ensureSupports()
	if got := l.support(2); got != 2 {
		t.Errorf("support(2) = %d, want 2", got)
	}
	if got := l.support(9); got != 0 {
		t.Errorf("support(9) = %d, want 0", got)
	}
	if l.termTotal != 3 {
		t.Errorf("termTotal = %d, want 3", l.termTotal)
	}
}

func TestRefineDeterministic(t *testing.T) {
	run := func() []*refNode {
		leaves := figure2Leaves(t)
		nodes := []*refNode{{leaf: leaves[0]}, {leaf: leaves[1]}}
		return refine(nodes, 3, 2, nil, rand.New(rand.NewPCG(5, 5)), 1)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic refine")
	}
	for i := range a {
		if (a[i].leaf == nil) != (b[i].leaf == nil) {
			t.Fatal("node shapes differ between runs")
		}
	}
}
