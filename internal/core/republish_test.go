package core

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"math/rand/v2"
	"testing"

	"disasso/internal/dataset"
)

// republishConfigs are the equivalence-test configurations: varied K/M,
// cluster size, shard size, sensitivity and refine settings.
func republishConfigs() []Options {
	return []Options{
		{K: 3, M: 2, MaxClusterSize: 10, MaxShardRecords: 40, Seed: 7},
		{K: 4, M: 2, MaxClusterSize: 12, MaxShardRecords: 48, Seed: 99,
			Sensitive: map[dataset.Term]bool{3: true, 11: false}},
		{K: 2, M: 3, MaxClusterSize: 8, MaxShardRecords: 32, Seed: 5, DisableRefine: true},
		{K: 3, M: 2, MaxClusterSize: 10, Seed: 21}, // single global shard
	}
}

// TestAnonymizeWithStateMatchesAnonymize proves the state-building path (plan
// tree + per-shard local dense domains) publishes byte-identical output to
// the plain pipeline.
func TestAnonymizeWithStateMatchesAnonymize(t *testing.T) {
	for ci, opts := range republishConfigs() {
		for _, workers := range []int{1, 4} {
			opts.Parallel = workers
			d := genDataset(uint64(ci)+3, 11, 180)
			want, err := Anonymize(d, opts)
			if err != nil {
				t.Fatalf("config %d: %v", ci, err)
			}
			got, st, err := AnonymizeWithState(d, opts)
			if err != nil {
				t.Fatalf("config %d: %v", ci, err)
			}
			if !bytes.Equal(encodeAnonymized(t, got), encodeAnonymized(t, want)) {
				t.Errorf("config %d workers %d: AnonymizeWithState differs from Anonymize", ci, workers)
			}
			if st.NumRecords() != d.Len() {
				t.Errorf("config %d: state holds %d records, want %d", ci, st.NumRecords(), d.Len())
			}
		}
	}
}

// deltaFor derives a small deterministic delta from the current logical
// records: a few removals of existing records and a few appends, sometimes
// introducing terms outside the original domain.
func deltaFor(rng *rand.Rand, logical []dataset.Record, step int) Delta {
	var delta Delta
	picked := make(map[int]bool)
	for i := 0; i < 1+rng.IntN(4) && len(logical) > 0; i++ {
		// Distinct indexes: the same record may be removed twice only when
		// the bag really holds two occurrences.
		j := rng.IntN(len(logical))
		if picked[j] {
			continue
		}
		picked[j] = true
		delta.Remove = append(delta.Remove, logical[j])
	}
	for i := 0; i < 1+rng.IntN(5); i++ {
		span := 25
		if step%3 == 2 {
			span = 40 // occasionally introduce brand-new terms
		}
		terms := make([]dataset.Term, 1+rng.IntN(5))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(span))
		}
		delta.Append = append(delta.Append, dataset.NewRecord(terms...))
	}
	return delta
}

// TestDeltaRepublishEquivalence is the oracle test: after every Apply the
// published bytes (and their SHA-256) must equal a from-scratch Anonymize
// over the same logical dataset, across configs and worker counts. It also
// checks that the incremental path (not just the fallback) is exercised.
func TestDeltaRepublishEquivalence(t *testing.T) {
	sawIncremental := false
	for ci, opts := range republishConfigs() {
		for _, workers := range []int{1, 4} {
			opts.Parallel = workers
			d := genDataset(uint64(ci)+3, 11, 180)
			logical := append([]dataset.Record(nil), d.Records...)
			_, st, err := AnonymizeWithState(d, opts)
			if err != nil {
				t.Fatalf("config %d: %v", ci, err)
			}
			rng := rand.New(rand.NewPCG(uint64(ci), uint64(workers)))
			for step := 0; step < 6; step++ {
				delta := deltaFor(rng, logical, step)
				logical, err = applyToRecords(logical, delta)
				if err != nil {
					t.Fatalf("config %d step %d: %v", ci, step, err)
				}
				anon, next, stats, err := st.Apply(delta)
				if err != nil {
					t.Fatalf("config %d step %d: Apply: %v", ci, step, err)
				}
				st = next
				want, err := Anonymize(dataset.FromRecords(logical), opts)
				if err != nil {
					t.Fatalf("config %d step %d: scratch: %v", ci, step, err)
				}
				gotBytes, wantBytes := encodeAnonymized(t, anon), encodeAnonymized(t, want)
				if !bytes.Equal(gotBytes, wantBytes) {
					t.Fatalf("config %d workers %d step %d: delta republish differs from scratch (dirty %d/%d, fallback %v)",
						ci, workers, step, stats.DirtyShards, stats.TotalShards, stats.FullRepublish)
				}
				if sha256.Sum256(gotBytes) != sha256.Sum256(wantBytes) {
					t.Fatalf("config %d step %d: stream hash mismatch", ci, step)
				}
				if !stats.FullRepublish && stats.DirtyShards < stats.TotalShards {
					sawIncremental = true
				}
				if got := st.NumRecords(); got != len(logical) {
					t.Fatalf("config %d step %d: state has %d records, want %d", ci, step, got, len(logical))
				}
			}
		}
	}
	if !sawIncremental && !republishScratchDefault {
		t.Error("no delta ever took the incremental path: every Apply fell back to full republish")
	}
}

// TestDeltaFallbackOnBoundaryShift forces a shard-boundary move: a flood of
// records dominated by a brand-new term changes the root split decision, so
// Apply must fall back to a full republish — and still match scratch.
func TestDeltaFallbackOnBoundaryShift(t *testing.T) {
	opts := Options{K: 3, M: 2, MaxClusterSize: 10, MaxShardRecords: 40, Seed: 7, Parallel: 1}
	d := genDataset(1, 2, 180)
	_, st, err := AnonymizeWithState(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards() < 2 {
		t.Fatalf("fixture has %d shards, need at least 2", st.NumShards())
	}
	var delta Delta
	for i := 0; i < 200; i++ {
		delta.Append = append(delta.Append, dataset.NewRecord(999, dataset.Term(i%25)))
	}
	anon, _, stats, err := st.Apply(delta)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FullRepublish {
		t.Errorf("expected fallback to full republish, got dirty %d/%d", stats.DirtyShards, stats.TotalShards)
	}
	logical, err := applyToRecords(d.Records, delta)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Anonymize(dataset.FromRecords(logical), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAnonymized(t, anon), encodeAnonymized(t, want)) {
		t.Error("fallback republish differs from scratch")
	}
}

// TestDeltaRemoveMissing checks a removal of an absent record fails the whole
// delta with ErrRecordNotFound and leaves the state usable.
func TestDeltaRemoveMissing(t *testing.T) {
	opts := Options{K: 3, M: 2, MaxClusterSize: 10, MaxShardRecords: 40, Seed: 7, Parallel: 1}
	d := genDataset(1, 2, 120)
	_, st, err := AnonymizeWithState(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = st.Apply(Delta{Remove: []dataset.Record{dataset.NewRecord(7777)}})
	if !errors.Is(err, ErrRecordNotFound) {
		t.Fatalf("got %v, want ErrRecordNotFound", err)
	}
	// The old state is untouched and still accepts deltas.
	anon, _, _, err := st.Apply(Delta{Append: []dataset.Record{dataset.NewRecord(1, 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if anon.NumRecords() != d.Len()+1 {
		t.Errorf("got %d records, want %d", anon.NumRecords(), d.Len()+1)
	}
}

// TestDeltaValidation rejects empty and unnormalized delta records.
func TestDeltaValidation(t *testing.T) {
	opts := Options{K: 3, M: 2, Seed: 1, Parallel: 1}
	_, st, err := AnonymizeWithState(genDataset(1, 2, 40), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.Apply(Delta{Append: []dataset.Record{{}}}); err == nil {
		t.Error("empty append record accepted")
	}
	if _, _, _, err := st.Apply(Delta{Append: []dataset.Record{{5, 3}}}); err == nil {
		t.Error("unnormalized append record accepted")
	}
	if _, _, _, err := st.Apply(Delta{Remove: []dataset.Record{{5, 3}}}); err == nil {
		t.Error("unnormalized remove record accepted")
	}
}

// TestDeltaDrainAndRefill empties the dataset through removals and grows it
// back, comparing against scratch at both ends.
func TestDeltaDrainAndRefill(t *testing.T) {
	opts := Options{K: 2, M: 1, MaxClusterSize: 4, Seed: 3, Parallel: 1}
	records := []dataset.Record{
		dataset.NewRecord(1, 2),
		dataset.NewRecord(2, 3),
		dataset.NewRecord(1, 3),
	}
	_, st, err := AnonymizeWithState(dataset.FromRecords(records), opts)
	if err != nil {
		t.Fatal(err)
	}
	anon, st, _, err := st.Apply(Delta{Remove: records})
	if err != nil {
		t.Fatal(err)
	}
	if len(anon.Clusters) != 0 || st.NumRecords() != 0 {
		t.Fatalf("drained dataset still publishes %d clusters over %d records", len(anon.Clusters), st.NumRecords())
	}
	anon, st, _, err = st.Apply(Delta{Append: records})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Anonymize(dataset.FromRecords(records), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAnonymized(t, anon), encodeAnonymized(t, want)) {
		t.Error("refilled dataset differs from scratch")
	}
	if st.NumRecords() != len(records) {
		t.Errorf("state has %d records, want %d", st.NumRecords(), len(records))
	}
}

// TestRepublishScratchHook checks the forced from-scratch path returns the
// same bytes as the incremental path from the same starting state.
func TestRepublishScratchHook(t *testing.T) {
	opts := Options{K: 3, M: 2, MaxClusterSize: 10, MaxShardRecords: 40, Seed: 7, Parallel: 1}
	d := genDataset(4, 9, 160)
	_, st, err := AnonymizeWithState(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	delta := Delta{Append: []dataset.Record{dataset.NewRecord(1, 2, 3)}, Remove: []dataset.Record{d.Records[0]}}
	inc, _, incStats, err := st.Apply(delta)
	if err != nil {
		t.Fatal(err)
	}

	republishScratch = true
	defer func() { republishScratch = republishScratchDefault }()
	scr, _, scrStats, err := st.Apply(delta)
	if err != nil {
		t.Fatal(err)
	}
	if !scrStats.FullRepublish {
		t.Error("hooked Apply did not report a full republish")
	}
	if !bytes.Equal(encodeAnonymized(t, inc), encodeAnonymized(t, scr)) {
		t.Errorf("incremental path (fallback=%v) differs from forced scratch path", incStats.FullRepublish)
	}
}

// TestDeltaReplantEquivalence pins the subtree-replant path: single-record
// deltas on a many-shard plan routinely flip a deep ShardCut decision (the
// argmax margins near the leaves are tiny), and the engine must absorb the
// flip by rebuilding just that subtree — byte-identical to scratch, without
// a full republish — whenever the subtree's shard count is preserved.
func TestDeltaReplantEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	records := make([]dataset.Record, 0, 600)
	for i := 0; i < 600; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(6))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(60))
		}
		records = append(records, dataset.NewRecord(terms...))
	}
	opts := Options{K: 3, M: 2, MaxClusterSize: 10, MaxShardRecords: 30, Seed: 9, Parallel: 2}
	d := dataset.FromRecords(records)
	logical := append([]dataset.Record(nil), d.Records...)
	_, st, err := AnonymizeWithState(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards() < 8 {
		t.Fatalf("fixture has %d shards, want a many-shard plan", st.NumShards())
	}
	sawReplant := false
	for step := 0; step < 24; step++ {
		var delta Delta
		if step%2 == 0 {
			delta.Remove = []dataset.Record{logical[rng.IntN(len(logical))]}
		} else {
			delta.Append = []dataset.Record{logical[rng.IntN(len(logical))]}
		}
		logical, err = applyToRecords(logical, delta)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		anon, next, stats, err := st.Apply(delta)
		if err != nil {
			t.Fatalf("step %d: Apply: %v", step, err)
		}
		st = next
		want, err := Anonymize(dataset.FromRecords(logical), opts)
		if err != nil {
			t.Fatalf("step %d: scratch: %v", step, err)
		}
		if !bytes.Equal(encodeAnonymized(t, anon), encodeAnonymized(t, want)) {
			t.Fatalf("step %d: delta republish differs from scratch (dirty %d/%d, replanned %d, fallback %v)",
				step, stats.DirtyShards, stats.TotalShards, stats.ReplannedShards, stats.FullRepublish)
		}
		if !stats.FullRepublish && stats.ReplannedShards > 0 {
			sawReplant = true
			if stats.DirtyShards >= stats.TotalShards {
				t.Errorf("step %d: replant dirtied every shard (%d/%d): the splice saved nothing",
					step, stats.DirtyShards, stats.TotalShards)
			}
		}
	}
	if !sawReplant && !republishScratchDefault {
		t.Error("no delta ever exercised the subtree replant: every flip either fell back or never happened")
	}
}
