package core

import (
	"bytes"
	"testing"

	"disasso/internal/dataset"
)

// encodeAnonymized serializes the published form with the deterministic
// binary writer so outputs can be compared byte for byte.
func encodeAnonymized(t *testing.T, a *Anonymized) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAnonymizeParallelDeterminism is the cross-Parallel regression test:
// for a fixed Seed the published dataset must be byte-identical whether the
// pipeline runs on 1 worker or many — HORPART's parallel splits, the
// VERPART worker pool and REFINE's speculative parallel planning must never
// leak scheduling into the output.
func TestAnonymizeParallelDeterminism(t *testing.T) {
	configs := []Options{
		{K: 3, M: 2, MaxClusterSize: 12, Seed: 7},
		{K: 4, M: 2, MaxClusterSize: 16, Seed: 99, Sensitive: map[dataset.Term]bool{3: true, 11: true}},
		{K: 3, M: 3, MaxClusterSize: 10, Seed: 7, DisableRefine: true},
	}
	for ci, base := range configs {
		d := genDataset(uint64(ci)+5, 17, 160)
		base.Parallel = 1
		ref, err := Anonymize(d, base)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		want := encodeAnonymized(t, ref)
		for _, workers := range []int{2, 4, 8} {
			opts := base
			opts.Parallel = workers
			got, err := Anonymize(d, opts)
			if err != nil {
				t.Fatalf("config %d workers=%d: %v", ci, workers, err)
			}
			if !bytes.Equal(encodeAnonymized(t, got), want) {
				t.Errorf("config %d: output differs between Parallel=1 and Parallel=%d at fixed Seed", ci, workers)
			}
		}
	}
}

// TestAnonymizeReplanReferenceAcrossWorkers pins the strongest cross-path
// guarantee: the reference always-re-plan engine on one worker and the
// incremental memoizing engine on many workers publish the same bytes.
func TestAnonymizeReplanReferenceAcrossWorkers(t *testing.T) {
	if refineAlwaysReplan {
		t.Skip("refine_replan build: the reference path is already the default")
	}
	defer func() { refineAlwaysReplan = false }()
	configs := []Options{
		{K: 3, M: 2, MaxClusterSize: 12, Seed: 7},
		{K: 4, M: 2, MaxClusterSize: 16, Seed: 99, Sensitive: map[dataset.Term]bool{3: true, 11: true}},
	}
	for ci, base := range configs {
		d := genDataset(uint64(ci)+31, 13, 180)
		refineAlwaysReplan = true
		base.Parallel = 1
		ref, err := Anonymize(d, base)
		refineAlwaysReplan = false
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		want := encodeAnonymized(t, ref)
		for _, workers := range []int{1, 4} {
			opts := base
			opts.Parallel = workers
			got, err := Anonymize(d, opts)
			if err != nil {
				t.Fatalf("config %d workers=%d: %v", ci, workers, err)
			}
			if !bytes.Equal(encodeAnonymized(t, got), want) {
				t.Errorf("config %d: incremental engine (workers=%d) differs from always-replan reference", ci, workers)
			}
		}
	}
}

// TestAnonymizeParallelDeterminismRepeated re-runs one parallel
// configuration several times: scheduling may vary between runs, the bytes
// must not.
func TestAnonymizeParallelDeterminismRepeated(t *testing.T) {
	d := genDataset(23, 29, 200)
	opts := Options{K: 3, M: 2, MaxClusterSize: 14, Parallel: 8, Seed: 42}
	first, err := Anonymize(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeAnonymized(t, first)
	for run := 0; run < 4; run++ {
		a, err := Anonymize(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeAnonymized(t, a), want) {
			t.Fatalf("run %d: parallel output not reproducible", run)
		}
	}
}
