//go:build republish_scratch

package core

// republishScratchDefault under the republish_scratch build tag forces the
// reference path: every Apply rebuilds the plan and re-anonymizes every shard
// from scratch. Output must be byte-identical to the incremental engine.
const republishScratchDefault = true
