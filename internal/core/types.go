// Package core implements the paper's primary contribution: the
// disassociation anonymization transform for sparse multidimensional data
// (Terrovitis, Liagouris, Mamoulis, Skiadopoulos: "Privacy Preservation by
// Disassociation", PVLDB 5(10), 2012).
//
// Disassociation partitions the original records horizontally into clusters
// of similar records (HORPART), vertically partitions each cluster into
// k^m-anonymous record chunks plus one term chunk (VERPART), and finally
// refines the result by forming joint clusters with shared chunks (REFINE).
// The published dataset preserves every original term but hides which
// infrequent term combinations co-occurred in a record, guaranteeing that an
// adversary knowing up to m terms of a record cannot narrow it down to fewer
// than k candidate records in some plausible original dataset (Guarantee 1).
package core

import (
	"disasso/internal/dataset"
)

// Chunk is a vertical partition of a cluster: a domain (a subset of the
// cluster's terms) together with the non-empty projections of the cluster's
// records onto that domain. Subrecord order is randomized at construction —
// the association between subrecords of different chunks is exactly the
// information disassociation hides. Record chunks and shared chunks use the
// same representation.
type Chunk struct {
	// Domain is the normalized set of terms T_i the chunk projects onto.
	Domain dataset.Record
	// Subrecords holds the non-empty projections, in randomized order, with
	// bag semantics (duplicates allowed). Projections that came out empty are
	// not materialized; their count is implied by the owning cluster's Size.
	Subrecords []dataset.Record
}

// Clone returns a deep copy of the chunk.
func (c Chunk) Clone() Chunk {
	out := Chunk{Domain: c.Domain.Clone(), Subrecords: make([]dataset.Record, len(c.Subrecords))}
	for i, r := range c.Subrecords {
		out.Subrecords[i] = r.Clone()
	}
	return out
}

// Cluster is a published simple cluster: its original record count (shown
// explicitly, as Section 3 requires), its k^m-anonymous record chunks and its
// term chunk.
type Cluster struct {
	// Size is |P|, the number of original records in the cluster.
	Size int
	// RecordChunks are the chunks C_1..C_v; each is k^m-anonymous.
	RecordChunks []Chunk
	// TermChunk C_T is the set of terms of the cluster that were not placed
	// in any record chunk. Their multiplicities and correlations are not
	// disclosed.
	TermChunk dataset.Record
}

// ClusterNode is one node of the published forest. A leaf node carries a
// simple Cluster; an interior node is a joint cluster carrying the shared
// chunks built from its descendants' term chunks (Section 3, "Refining").
type ClusterNode struct {
	// Simple is non-nil exactly when the node is a leaf.
	Simple *Cluster
	// Children are the constituent clusters of a joint node.
	Children []*ClusterNode
	// SharedChunks are the chunks built over refining terms drawn from the
	// descendants' term chunks. Empty for leaves.
	SharedChunks []Chunk
}

// IsLeaf reports whether the node is a simple cluster.
func (n *ClusterNode) IsLeaf() bool { return n.Simple != nil }

// Size returns the number of original records covered by the node: |P| for a
// leaf, the sum over children for a joint cluster.
func (n *ClusterNode) Size() int {
	if n.IsLeaf() {
		return n.Simple.Size
	}
	total := 0
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}

// Leaves appends the node's simple clusters, left to right, to dst and
// returns it.
func (n *ClusterNode) Leaves(dst []*Cluster) []*Cluster {
	if n.IsLeaf() {
		return append(dst, n.Simple)
	}
	for _, c := range n.Children {
		dst = c.Leaves(dst)
	}
	return dst
}

// Walk visits the node and all its descendants, parents before children.
func (n *ClusterNode) Walk(fn func(*ClusterNode)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Anonymized is the published disassociated dataset D_A: a forest of cluster
// nodes plus the parameters it was anonymized with.
type Anonymized struct {
	K, M     int
	Clusters []*ClusterNode
}

// NumRecords returns the total number of original records across clusters.
func (a *Anonymized) NumRecords() int {
	total := 0
	for _, n := range a.Clusters {
		total += n.Size()
	}
	return total
}

// AllLeaves returns every simple cluster in the forest, in order.
func (a *Anonymized) AllLeaves() []*Cluster {
	var out []*Cluster
	for _, n := range a.Clusters {
		out = n.Leaves(out)
	}
	return out
}

// AllChunks returns every record chunk and shared chunk in the forest. Term
// chunks are not included (they expose terms, not subrecords).
func (a *Anonymized) AllChunks() []Chunk {
	var out []Chunk
	for _, n := range a.Clusters {
		n.Walk(func(cn *ClusterNode) {
			if cn.IsLeaf() {
				out = append(out, cn.Simple.RecordChunks...)
			} else {
				out = append(out, cn.SharedChunks...)
			}
		})
	}
	return out
}

// TermChunkTerms returns, per distinct term, in how many term chunks it
// appears across all leaves.
func (a *Anonymized) TermChunkTerms() map[dataset.Term]int {
	//lint:ignore densedomain export-path analysis API keyed by global terms, off the hot path
	out := make(map[dataset.Term]int)
	for _, leaf := range a.AllLeaves() {
		for _, t := range leaf.TermChunk {
			out[t]++
		}
	}
	return out
}

// LowerBoundSupports computes, as Section 6 describes, supports that are
// certain to exist in any original dataset: every appearance of a term in a
// record or shared chunk counts, plus one appearance per term chunk the term
// occurs in (a term chunk discloses presence, not multiplicity).
func (a *Anonymized) LowerBoundSupports() map[dataset.Term]int {
	//lint:ignore densedomain export-path analysis API keyed by global terms, off the hot path
	out := make(map[dataset.Term]int)
	for _, c := range a.AllChunks() {
		for _, sr := range c.Subrecords {
			for _, t := range sr {
				out[t]++
			}
		}
	}
	//lint:deterministic order-independent merge of per-term counts
	for t, n := range a.TermChunkTerms() {
		out[t] += n
	}
	return out
}

// LowerBoundItemsetSupport returns the support of the itemset that is
// guaranteed in any reconstruction: its appearances inside single chunks
// (subrecord-contained), plus — for single terms only — term-chunk presence.
func (a *Anonymized) LowerBoundItemsetSupport(s dataset.Record) int {
	if len(s) == 1 {
		return a.LowerBoundSupports()[s[0]]
	}
	total := 0
	for _, c := range a.AllChunks() {
		if !c.Domain.ContainsAll(s) {
			continue
		}
		for _, sr := range c.Subrecords {
			if sr.ContainsAll(s) {
				total++
			}
		}
	}
	return total
}

// Domain returns the sorted set of all terms appearing anywhere in the
// anonymized dataset (record chunks, shared chunks and term chunks). By
// construction this equals the original dataset's domain: disassociation
// never deletes a term.
func (a *Anonymized) Domain() []dataset.Term {
	//lint:ignore densedomain export-path dedup over global terms, off the hot path
	seen := make(map[dataset.Term]struct{})
	for _, c := range a.AllChunks() {
		for _, t := range c.Domain {
			seen[t] = struct{}{}
		}
	}
	for _, leaf := range a.AllLeaves() {
		for _, t := range leaf.TermChunk {
			seen[t] = struct{}{}
		}
	}
	out := make([]dataset.Term, 0, len(seen))
	//lint:deterministic NewRecord sorts and dedups the collected terms
	for t := range seen {
		out = append(out, t)
	}
	return dataset.NewRecord(out...)
}
