//go:build !republish_scratch

package core

// republishScratchDefault selects the incremental delta-republish engine:
// Apply routes the delta through the retained shard plan and re-anonymizes
// dirty shards only. Build with -tags republish_scratch to default to the
// reference from-scratch path instead (used to cross-check byte-identical
// output).
const republishScratchDefault = false
