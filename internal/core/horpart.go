package core

import (
	"disasso/internal/dataset"
)

// HorPart implements Algorithm HORPART (Section 4): it recursively splits the
// dataset on its most frequent not-yet-used term — records containing the
// term go to one side (and the term joins the ignore set there), the rest to
// the other — until partitions fall below maxClusterSize. The result is a
// partition of the records of d: similar records (sharing frequent terms)
// end up in the same cluster.
//
// Terms in exclude (the sensitive terms of the l-diversity mode, Section 5)
// are never used for splitting. The returned clusters reference the input's
// record slices without copying. maxClusterSize values below 2 are treated
// as 2.
func HorPart(d *dataset.Dataset, maxClusterSize int, exclude map[dataset.Term]bool) [][]dataset.Record {
	if maxClusterSize < 2 {
		maxClusterSize = 2
	}
	var clusters [][]dataset.Record
	if d.Len() == 0 {
		return clusters
	}

	// Explicit work stack: recursion depth can reach the domain size on
	// pathological inputs, so avoid the call stack. The ignore set grows only
	// along "records containing a" branches; sharing one map per branch via
	// copy keeps semantics exact while splits stay shallow in practice.
	type task struct {
		records []dataset.Record
		ignore  map[dataset.Term]bool
	}
	rootIgnore := make(map[dataset.Term]bool, len(exclude))
	for t := range exclude {
		rootIgnore[t] = true
	}
	stack := []task{{records: d.Records, ignore: rootIgnore}}

	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if len(cur.records) == 0 {
			continue
		}
		if len(cur.records) < maxClusterSize {
			clusters = append(clusters, cur.records)
			continue
		}
		a, ok := mostFrequentTerm(cur.records, cur.ignore)
		if !ok {
			// Every term is ignored: the records cannot be distinguished by
			// any unused term, so they form one (possibly oversized) cluster.
			clusters = append(clusters, cur.records)
			continue
		}
		var with, without []dataset.Record
		for _, r := range cur.records {
			if r.Contains(a) {
				with = append(with, r)
			} else {
				without = append(without, r)
			}
		}
		withIgnore := make(map[dataset.Term]bool, len(cur.ignore)+1)
		for t := range cur.ignore {
			withIgnore[t] = true
		}
		withIgnore[a] = true
		stack = append(stack, task{records: without, ignore: cur.ignore})
		stack = append(stack, task{records: with, ignore: withIgnore})
	}
	return clusters
}

// MergeUndersized repairs the partitioning for the k^m guarantee: a cluster
// with fewer than min records cannot offer min candidate records even for a
// term disclosed only in its term chunk (the Lemma 2 reconstruction needs
// |P| ≥ k records to pad). Undersized clusters are merged together, and a
// still-undersized remainder is absorbed into the largest cluster. Only if
// the whole dataset has fewer than min records can the result stay
// undersized.
func MergeUndersized(clusters [][]dataset.Record, min int) [][]dataset.Record {
	if min <= 1 {
		return clusters
	}
	out := clusters[:0]
	var pending []dataset.Record
	largest := -1
	push := func(c []dataset.Record) {
		out = append(out, c)
		if largest == -1 || len(c) > len(out[largest]) {
			largest = len(out) - 1
		}
	}
	for _, c := range clusters {
		if len(c) < min {
			pending = append(pending, c...)
			if len(pending) >= min {
				push(pending)
				pending = nil
			}
			continue
		}
		push(c)
	}
	if len(pending) > 0 {
		if largest >= 0 {
			out[largest] = append(append([]dataset.Record{}, out[largest]...), pending...)
		} else {
			out = append(out, pending)
		}
	}
	return out
}

// mostFrequentTerm returns the term with the highest support among the
// records, skipping ignored terms; ties break toward the smaller term ID so
// the partitioning is deterministic.
func mostFrequentTerm(records []dataset.Record, ignore map[dataset.Term]bool) (dataset.Term, bool) {
	supports := make(map[dataset.Term]int)
	for _, r := range records {
		for _, t := range r {
			if !ignore[t] {
				supports[t]++
			}
		}
	}
	best := dataset.Term(-1)
	bestSup := 0
	for t, s := range supports {
		if s > bestSup || (s == bestSup && t < best) {
			best, bestSup = t, s
		}
	}
	return best, bestSup > 0
}
