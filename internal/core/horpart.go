package core

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"disasso/internal/dataset"
)

// HorPart implements Algorithm HORPART (Section 4): it recursively splits the
// dataset on its most frequent not-yet-used term — records containing the
// term go to one side (and the term joins the ignore set there), the rest to
// the other — until partitions fall below maxClusterSize. The result is a
// partition of the records of d: similar records (sharing frequent terms)
// end up in the same cluster.
//
// Terms in exclude (the sensitive terms of the l-diversity mode, Section 5)
// are never used for splitting. The returned clusters reference the input's
// records without copying. maxClusterSize values below 2 are treated as 2.
func HorPart(d *dataset.Dataset, maxClusterSize int, exclude map[dataset.Term]bool) [][]dataset.Record {
	return HorPartN(d, maxClusterSize, exclude, 1)
}

// HorPartN is HorPart with parallel recursive splits: the two sides of a
// split recurse concurrently on up to parallel workers (0 means GOMAXPROCS,
// 1 is sequential). The cluster list is identical for every worker count —
// it is the preorder of the split tree, records-containing-the-term branch
// first — so parallelism never changes the anonymizer's output.
func HorPartN(d *dataset.Dataset, maxClusterSize int, exclude map[dataset.Term]bool, parallel int) [][]dataset.Record {
	// Remap the dataset onto dense term ids (ascending with global terms) so
	// per-split support counting is a flat array walk instead of map upkeep.
	dom := dataset.NewDenseDomain(d.Records)
	dense := dom.RemapAll(d.Records)
	excludeBits := make([]bool, dom.Len())
	//lint:deterministic order-independent scatter into a dense exclusion table
	for t := range exclude {
		if id, ok := dom.ID(t); ok {
			excludeBits[id] = true
		}
	}
	return horPartN(d.Records, dense, dom.Len(), excludeBits, maxClusterSize, parallel)
}

// horPartN is the dense-domain core of HorPartN: dense holds the records
// remapped onto term ids below nTerms, emit holds the records the clusters
// are materialized from (the pipeline passes the dense records themselves;
// the exported wrapper passes the originals so callers see their own terms).
func horPartN(emit, dense []dataset.Record, nTerms int, excludeBits []bool, maxClusterSize, parallel int) [][]dataset.Record {
	if maxClusterSize < 2 {
		maxClusterSize = 2
	}
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	n := len(dense)
	if n == 0 {
		return nil
	}

	hp := &horPartition{
		records: emit,
		recs:    dense,
		nTerms:  nTerms,
		max:     maxClusterSize,
	}
	hp.spare.Store(int32(parallel - 1))
	hp.pool.New = func() any {
		return &mfBuf{counts: make([]int32, nTerms), stamp: make([]uint64, nTerms)}
	}

	rootIgnore := make([]bool, nTerms)
	copy(rootIgnore, excludeBits)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	return hp.split(idx, rootIgnore, 0)
}

// horPartition carries the shared, read-only remapping plus the parallelism
// budget of one HorPartN run.
type horPartition struct {
	records []dataset.Record
	recs    []dataset.Record // records as sorted dense term ids
	nTerms  int
	max     int
	spare   atomic.Int32 // extra goroutines still allowed
	pool    sync.Pool    // *mfBuf epoch-stamped support counters
}

// mfBuf is a reusable support counter: a count is valid only when its stamp
// matches the current epoch, so resetting between splits is one increment
// instead of a second walk over the records.
type mfBuf struct {
	counts []int32
	stamp  []uint64
	epoch  uint64
}

// parallelSplitMin is the smallest branch worth a goroutine: below this the
// spawn overhead dwarfs the counting work.
const parallelSplitMin = 128

// maxSpawnDepth bounds the recursive region of split: spawning only pays
// near the root, and capping the recursion keeps the call stack shallow even
// on pathological inputs (a chain of singleton splits would otherwise nest
// one frame per domain term). Below this depth splitIter takes over with an
// explicit work stack.
const maxSpawnDepth = 48

// split partitions the records identified by idx, emitting clusters in the
// preorder of the split tree (with-branch first). ignore is mutated and
// restored in place (mutate-and-undo) on sequential branches; only a branch
// handed to another goroutine gets its own copy.
func (hp *horPartition) split(idx []int32, ignore []bool, depth int) [][]dataset.Record {
	if depth >= maxSpawnDepth {
		return hp.splitIter(idx, ignore)
	}
	if len(idx) == 0 {
		return nil
	}
	if len(idx) < hp.max {
		return [][]dataset.Record{hp.cluster(idx)}
	}
	a, sup, ok := hp.mostFrequent(idx, ignore)
	if !ok {
		// Every term is ignored: the records cannot be distinguished by any
		// unused term, so they form one (possibly oversized) cluster.
		return [][]dataset.Record{hp.cluster(idx)}
	}
	with, without := hp.partition(idx, a, sup)

	if min(len(with), len(without)) >= parallelSplitMin && hp.tryAcquire() {
		withIgnore := make([]bool, hp.nTerms)
		copy(withIgnore, ignore)
		withIgnore[a] = true
		var withClusters [][]dataset.Record
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			withClusters = hp.split(with, withIgnore, depth+1)
			hp.spare.Add(1)
		}()
		withoutClusters := hp.split(without, ignore, depth+1)
		wg.Wait()
		return append(withClusters, withoutClusters...)
	}
	ignore[a] = true
	withClusters := hp.split(with, ignore, depth+1)
	ignore[a] = false
	return append(withClusters, hp.split(without, ignore, depth+1)...)
}

// splitIter is the sequential, constant-stack form of split: an explicit
// work stack whose set/unset markers implement the same mutate-and-undo
// ignore discipline, emitting clusters in the same preorder.
func (hp *horPartition) splitIter(idx []int32, ignore []bool) [][]dataset.Record {
	type task struct {
		records []int32
		unset   int32 // when ≥ 0: undo marker, clear ignore[unset] (records nil)
	}
	var clusters [][]dataset.Record
	stack := []task{{records: idx, unset: -1}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.unset >= 0 {
			ignore[cur.unset] = false
			continue
		}
		if len(cur.records) == 0 {
			continue
		}
		if len(cur.records) < hp.max {
			clusters = append(clusters, hp.cluster(cur.records))
			continue
		}
		a, sup, ok := hp.mostFrequent(cur.records, ignore)
		if !ok {
			clusters = append(clusters, hp.cluster(cur.records))
			continue
		}
		with, without := hp.partition(cur.records, a, sup)
		// Execution order (LIFO): with-subtree under ignore[a], then the
		// undo marker, then the without-subtree.
		ignore[a] = true
		stack = append(stack, task{records: without, unset: -1})
		stack = append(stack, task{unset: a})
		stack = append(stack, task{records: with, unset: -1})
	}
	return clusters
}

// partition splits the record indices by containment of dense term a, whose
// support sup among the records is already known from mostFrequent — both
// sides allocate exactly once.
func (hp *horPartition) partition(idx []int32, a int32, sup int32) (with, without []int32) {
	with = make([]int32, 0, sup)
	without = make([]int32, 0, len(idx)-int(sup))
	for _, ri := range idx {
		if _, found := slices.BinarySearch(hp.recs[ri], dataset.Term(a)); found {
			with = append(with, ri)
		} else {
			without = append(without, ri)
		}
	}
	return with, without
}

func (hp *horPartition) tryAcquire() bool {
	for {
		v := hp.spare.Load()
		if v <= 0 {
			return false
		}
		if hp.spare.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// cluster materializes one emitted cluster as original records.
func (hp *horPartition) cluster(idx []int32) []dataset.Record {
	out := make([]dataset.Record, len(idx))
	for i, ri := range idx {
		out[i] = hp.records[ri]
	}
	return out
}

// mostFrequent returns the local id and support of the term with the highest
// support among the records, skipping ignored terms; ties break toward the
// smaller id so the partitioning is deterministic.
func (hp *horPartition) mostFrequent(idx []int32, ignore []bool) (int32, int32, bool) {
	buf := hp.pool.Get().(*mfBuf)
	buf.epoch++
	ep := buf.epoch
	counts, stamp := buf.counts, buf.stamp
	best, bestSup := int32(-1), int32(0)
	for _, ri := range idx {
		for _, t := range hp.recs[ri] {
			lt := int32(t)
			if ignore[lt] {
				continue
			}
			c := int32(1)
			if stamp[lt] == ep {
				c = counts[lt] + 1
			} else {
				stamp[lt] = ep
			}
			counts[lt] = c
			if c > bestSup || (c == bestSup && lt < best) {
				best, bestSup = lt, c
			}
		}
	}
	hp.pool.Put(buf)
	return best, bestSup, bestSup > 0
}

// MergeUndersized repairs the partitioning for the k^m guarantee: a cluster
// with fewer than min records cannot offer min candidate records even for a
// term disclosed only in its term chunk (the Lemma 2 reconstruction needs
// |P| ≥ k records to pad). Undersized clusters are merged together, and a
// still-undersized remainder is absorbed into the largest cluster. Only if
// the whole dataset has fewer than min records can the result stay
// undersized.
func MergeUndersized(clusters [][]dataset.Record, min int) [][]dataset.Record {
	if min <= 1 {
		return clusters
	}
	out := clusters[:0]
	var pending []dataset.Record
	largest := -1
	push := func(c []dataset.Record) {
		out = append(out, c)
		if largest == -1 || len(c) > len(out[largest]) {
			largest = len(out) - 1
		}
	}
	for _, c := range clusters {
		if len(c) < min {
			pending = append(pending, c...)
			if len(pending) >= min {
				push(pending)
				pending = nil
			}
			continue
		}
		push(c)
	}
	if len(pending) > 0 {
		if largest >= 0 {
			out[largest] = append(append([]dataset.Record{}, out[largest]...), pending...)
		} else {
			out = append(out, pending)
		}
	}
	return out
}
