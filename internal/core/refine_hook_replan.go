//go:build refine_replan

package core

// refineAlwaysReplanDefault under the refine_replan build tag forces the
// reference path: every pass re-plans every adjacent pair, with no verdict
// memoization. Output must be byte-identical to the incremental engine.
const refineAlwaysReplanDefault = true
