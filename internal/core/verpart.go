package core

import (
	"math/rand/v2"
	"slices"

	"disasso/internal/dataset"
)

// VerPart implements Algorithm VERPART (Section 4) plus the Lemma 2 validity
// check of Section 5. Given the records of one cluster it returns the
// published Cluster: k^m-anonymous record chunks C_1..C_v and the term chunk
// C_T.
//
// Terms whose in-cluster support is below k go to the term chunk, as do all
// sensitive terms (the l-diversity mode of Section 5). The remaining terms
// are scanned in descending support order and greedily accumulated into
// chunk domains while the projected chunk stays k^m-anonymous.
//
// After partitioning, the Lemma 2 condition is enforced: if the term chunk is
// empty, the total number of (non-empty) subrecords must reach
// |P| + k·(min(m, v) − 1); otherwise the least frequent record-chunk term is
// demoted to the term chunk, which restores Guarantee 1 (and closes the
// Figure 4 / Example 1 attack).
//
// rng drives the subrecord shuffling that hides cross-chunk associations; it
// must be non-nil.
func VerPart(records []dataset.Record, k, m int, sensitive map[dataset.Term]bool, rng *rand.Rand) *Cluster {
	cl, _ := verPartIndexed(records, k, m, func(t dataset.Term) bool { return sensitive[t] }, rng, nil)
	return cl
}

// verPartIndexed is VerPart's core. scr, when non-nil, provides the reusable
// dense-domain index build (the pipeline hands each worker its own scratch);
// nil falls back to a fresh index. The cluster index is returned so the
// caller can lift the in-cluster supports out of it — it is only valid until
// the scratch's next build.
func verPartIndexed(records []dataset.Record, k, m int, isSensitive func(dataset.Term) bool, rng *rand.Rand, scr *indexScratch) (*Cluster, *clusterIndex) {
	cl := &Cluster{Size: len(records)}

	// One dense index over the cluster's records backs the support counts
	// and every greedy checker pass: in-cluster support is simply the
	// posting-list length.
	var ix *clusterIndex
	if scr != nil {
		ix = scr.build(records)
	} else {
		ix = buildClusterIndex(records)
	}
	support := func(t dataset.Term) int {
		if lt, ok := ix.localID(t); ok {
			return len(ix.postings[lt])
		}
		return 0
	}

	// Split the cluster domain into the candidate list (support ≥ k, not
	// sensitive) ordered by descending support, and the term chunk seed.
	// Candidates sort as local ids: ids ascend with global terms, so the
	// (support desc, term asc) order carries over.
	var remainL []uint32
	var termChunk []dataset.Term
	for lt, t := range ix.terms {
		if len(ix.postings[lt]) < k || isSensitive(t) {
			termChunk = append(termChunk, t)
		} else {
			remainL = append(remainL, uint32(lt))
		}
	}
	slices.SortFunc(remainL, func(a, b uint32) int {
		if d := len(ix.postings[b]) - len(ix.postings[a]); d != 0 {
			return d
		}
		return int(a) - int(b)
	})
	remain := make([]dataset.Term, len(remainL))
	for i, lt := range remainL {
		remain[i] = ix.terms[lt]
	}

	// Greedy domain construction: one pass per chunk over the remaining
	// terms, keeping every term whose addition preserves k^m-anonymity.
	var domains []dataset.Record
	for len(remain) > 0 {
		checker := newKMCheckerOnIndex(k, m, ix)
		var leftover []dataset.Term
		for _, t := range remain {
			if !checker.TryAdd(t) {
				leftover = append(leftover, t)
			}
		}
		domain := checker.Domain()
		if len(domain) == 0 {
			// Cannot happen: a singleton chunk of a support-≥k term is always
			// k^m-anonymous; guard against infinite loops regardless.
			termChunk = append(termChunk, leftover...)
			break
		}
		domains = append(domains, domain)
		remain = leftover
	}

	// Materialize chunks by projection and enforce Lemma 2.
	cl.RecordChunks = buildChunks(records, domains, rng)
	cl.TermChunk = dataset.NewRecord(termChunk...)
	enforceLemma2(cl, records, support, k, m, rng)
	return cl, ix
}

// buildChunks projects the records onto each domain, keeping non-empty
// projections in randomized order. Each chunk's subrecords share one flat
// backing allocation, sized by a counting pass, so projecting |P| records
// costs two allocations instead of |P|.
func buildChunks(records []dataset.Record, domains []dataset.Record, rng *rand.Rand) []Chunk {
	chunks := make([]Chunk, 0, len(domains))
	for _, dom := range domains {
		c := Chunk{Domain: dom}
		total, count := 0, 0
		for _, r := range records {
			if n := intersectCount(r, dom); n > 0 {
				total += n
				count++
			}
		}
		flat := make(dataset.Record, 0, total)
		c.Subrecords = make([]dataset.Record, 0, count)
		for _, r := range records {
			start := len(flat)
			flat = intersectAppend(flat, r, dom)
			if len(flat) > start {
				c.Subrecords = append(c.Subrecords, dataset.Record(flat[start:len(flat):len(flat)]))
			}
		}
		rng.Shuffle(len(c.Subrecords), func(i, j int) {
			c.Subrecords[i], c.Subrecords[j] = c.Subrecords[j], c.Subrecords[i]
		})
		chunks = append(chunks, c)
	}
	return chunks
}

// intersectCount returns |a ∩ b| for sorted records without allocating.
func intersectCount(a, b dataset.Record) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i, j = i+1, j+1
		}
	}
	return n
}

// enforceLemma2 checks the subrecord-count condition of Lemma 2 and, when it
// fails, demotes the least frequent record-chunk term into the term chunk
// (re-projecting the affected chunk). A non-empty term chunk always
// satisfies the lemma, so at most one demotion is needed.
func enforceLemma2(cl *Cluster, records []dataset.Record, support func(dataset.Term) int, k, m int, rng *rand.Rand) {
	if len(cl.TermChunk) > 0 || len(cl.RecordChunks) == 0 {
		return
	}
	if lemma2Holds(cl, k, m) {
		return
	}
	// Find the least frequent term across record chunks (ties: larger ID).
	var victim dataset.Term
	victimSup := -1
	victimChunk := -1
	for ci, c := range cl.RecordChunks {
		for _, t := range c.Domain {
			if s := support(t); victimSup == -1 || s < victimSup || (s == victimSup && t > victim) {
				victim, victimSup, victimChunk = t, s, ci
			}
		}
	}
	c := &cl.RecordChunks[victimChunk]
	newDomain := c.Domain.Subtract(dataset.Record{victim})
	if len(newDomain) == 0 {
		// Chunk degenerates to nothing: drop it entirely.
		cl.RecordChunks = append(cl.RecordChunks[:victimChunk], cl.RecordChunks[victimChunk+1:]...)
	} else {
		rebuilt := buildChunks(records, []dataset.Record{newDomain}, rng)
		cl.RecordChunks[victimChunk] = rebuilt[0]
	}
	cl.TermChunk = dataset.NewRecord(victim)
}

// lemma2Holds evaluates the condition of Lemma 2 on a cluster with an empty
// term chunk: Σ|C_i| ≥ |P| + k·(h−1) with h = min(m, v).
func lemma2Holds(cl *Cluster, k, m int) bool {
	total := 0
	for _, c := range cl.RecordChunks {
		total += len(c.Subrecords)
	}
	h := m
	if v := len(cl.RecordChunks); v < h {
		h = v
	}
	return total >= cl.Size+k*(h-1)
}
