package core

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync/atomic"

	"disasso/internal/dataset"
	"disasso/internal/par"
)

// anonymizeWork counts entries into the per-shard anonymization kernel across
// every pipeline variant — full runs, streamed shards and delta republishes
// all funnel through AnonymizeShard. The snapshot-recovery tests assert the
// counter stays flat across a restart: recovering a persisted publication
// must do zero anonymization work.
var anonymizeWork atomic.Int64

// AnonymizeWorkCount returns the number of shard anonymizations performed by
// this process so far.
func AnonymizeWorkCount() int64 { return anonymizeWork.Load() }

// DefaultMaxClusterSize is the horizontal-partitioning threshold used when
// Options.MaxClusterSize is zero. Clusters of a few dozen records keep the
// vertical partitioning local (limiting disassociation's reach, as Section 3
// motivates) while giving VERPART enough rows to clear the k threshold.
const DefaultMaxClusterSize = 30

// Options configures the disassociation anonymizer.
type Options struct {
	// K and M are the k^m-anonymity parameters (Definition 1): an adversary
	// knowing up to M terms of a record must face at least K candidate
	// records. Both must be at least 2 and 1 respectively.
	K int
	M int
	// MaxClusterSize bounds the horizontal partitions; 0 means
	// DefaultMaxClusterSize. It must exceed K for the guarantee to be
	// satisfiable with non-trivial record chunks.
	MaxClusterSize int
	// MaxShardRecords cuts the HORPART split tree into shards of at most
	// this many records (best effort — lopsided or unsplittable nodes may
	// exceed it) that are anonymized independently: MergeUndersized and
	// REFINE run within each shard, never across. 0 means one global shard,
	// the historical behavior. Values below MaxClusterSize are raised to it.
	// The streaming engine uses the same cut, which is why its output is
	// byte-identical to this path for equal options.
	MaxShardRecords int
	// DisableRefine skips the REFINE step (no joint clusters); used by the
	// ablation benchmarks.
	DisableRefine bool
	// Sensitive marks terms to protect against attribute disclosure
	// (Section 5): they are ignored during horizontal partitioning and always
	// placed in term chunks, so they associate with any record of a cluster
	// with probability at most 1/|P|.
	//lint:ignore densedomain boundary API: callers pass global terms; SensitiveBits densifies them once per run
	Sensitive map[dataset.Term]bool
	// SafeDisassociation runs the safe-disassociation repair (Awad et al.)
	// after REFINE: cover-problem breaches — cross-chunk associations an
	// adversary learns with probability above 1/K despite k^m-anonymity —
	// are removed by merging covering chunks where k^m allows it and
	// demoting heavy terms to term chunks otherwise. Deterministic for a
	// fixed Seed like every other pass, including under parallelism. The
	// JSON tag keeps persisted snapshot metadata byte-identical for
	// publications that do not opt in.
	SafeDisassociation bool `json:",omitempty"`
	// Parallel sets the number of workers for the per-cluster vertical
	// partitioning (Section 3 notes clusters anonymize independently).
	// 0 means GOMAXPROCS; 1 forces sequential operation.
	Parallel int
	// Seed drives subrecord shuffling. Results are deterministic for a fixed
	// seed, including under parallelism.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.MaxClusterSize == 0 {
		o.MaxClusterSize = DefaultMaxClusterSize
	}
	if o.Parallel == 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.MaxShardRecords > 0 && o.MaxShardRecords < o.MaxClusterSize {
		// A cut below the cluster-size threshold could land inside a node
		// HORPART would emit as a single cluster, splitting a cluster across
		// shards; clamping keeps every cut on a cluster boundary.
		o.MaxShardRecords = o.MaxClusterSize
	}
	return o
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.K < 2 {
		return fmt.Errorf("core: K = %d, need K ≥ 2", o.K)
	}
	if o.M < 1 {
		return fmt.Errorf("core: M = %d, need M ≥ 1", o.M)
	}
	if o.MaxClusterSize != 0 && o.MaxClusterSize <= o.K {
		return fmt.Errorf("core: MaxClusterSize = %d must exceed K = %d", o.MaxClusterSize, o.K)
	}
	if o.Parallel < 0 {
		return fmt.Errorf("core: Parallel = %d is negative", o.Parallel)
	}
	if o.MaxShardRecords < 0 {
		return fmt.Errorf("core: MaxShardRecords = %d is negative", o.MaxShardRecords)
	}
	return nil
}

// Anonymize runs the full disassociation pipeline — HORPART, VERPART per
// cluster, then REFINE — and returns the published dataset. The input is not
// modified. Records must be non-empty and normalized (dataset.Validate).
//
// Internally the pipeline runs over a dense term domain computed once from
// the input: every global term becomes its rank 0..|T|-1, so per-term tables
// in every stage are flat slices instead of maps. The remapping is monotone,
// which preserves every ordering the stages rely on, so after the published
// output is mapped back the result is byte-identical to a run over the
// original terms.
func Anonymize(d *dataset.Dataset, opts Options) (*Anonymized, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid input: %w", err)
	}
	opts = opts.withDefaults()

	dom := dataset.NewDenseDomain(d.Records)
	dense := dom.RemapAll(d.Records)
	// HORPART excludes every Sensitive *key* from splitting (matching the
	// exported HorPartN, which ranges over the map's keys), while VERPART
	// and REFINE treat a term as sensitive only when its value is true.
	excludeBits, sensitiveBits := SensitiveBits(opts, dom)
	shards := planShards(dense, dom.Len(), excludeBits, opts.MaxShardRecords, opts.K)
	out := &Anonymized{K: opts.K, M: opts.M}
	for _, sh := range shards {
		out.Clusters = append(out.Clusters, AnonymizeShard(sh, dom.Len(), sensitiveBits, opts)...)
	}
	for _, n := range out.Clusters {
		restoreNode(n, dom)
	}
	return out, nil
}

// AnonymizeShard runs the per-shard pipeline — HORPART (continuing past the
// shard's split path), MergeUndersized, VERPART, REFINE — over one shard of
// dense-id records and returns the published nodes, still in dense ids
// (RestoreClusters maps them back). opts must be validated and defaulted;
// sensitive is the dense sensitive-term table. Every PRNG stream is keyed by
// (Seed, shard index, position), so shards can run in any order or
// concurrently with identical output; shard 0 consumes exactly the streams
// the historical unsharded pipeline did.
func AnonymizeShard(sh Shard, nTerms int, sensitive []bool, opts Options) []*ClusterNode {
	anonymizeWork.Add(1)
	isSensitive := func(t dataset.Term) bool { return sensitive[t] }
	shardIdx := uint64(sh.Index)

	clusters := horPartN(sh.Records, sh.Records, nTerms, sh.Ignore, opts.MaxClusterSize, opts.Parallel)
	// Every cluster needs at least K records, or a term confined to its term
	// chunk would leave an adversary fewer than K candidates (Section 5's
	// reconstruction argument pads up to |P| records only).
	clusters = MergeUndersized(clusters, opts.K)

	leaves := make([]*leafState, len(clusters))
	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	scratches := make([]*indexScratch, workers)
	par.DoWorker(opts.Parallel, len(clusters), func(w, i int) {
		// Per-cluster PRNG: deterministic regardless of scheduling.
		rng := rand.New(rand.NewPCG(opts.Seed, shardIdx<<32|uint64(i)+1))
		if scratches[w] == nil {
			scratches[w] = newIndexScratch(nTerms)
		}
		records := clusters[i]
		cl, ix := verPartIndexed(records, opts.K, opts.M, isSensitive, rng, scratches[w])
		leaves[i] = newLeafState(records, cl, ix)
	})

	nodes := make([]*refNode, len(leaves))
	for i, l := range leaves {
		nodes[i] = &refNode{leaf: l}
	}
	if !opts.DisableRefine {
		rng := rand.New(rand.NewPCG(opts.Seed, 0xEF11E^(shardIdx<<32)))
		nodes = refineN(nodes, opts.K, opts.M, sensitive, rng, opts.Parallel, nTerms)
	}

	published := make([]*ClusterNode, len(nodes))
	for i, n := range nodes {
		published[i] = exportNode(n)
	}
	if opts.SafeDisassociation {
		// Repair runs per top-level node, sequentially, with a PRNG keyed by
		// (Seed, shard, node) — the same discipline as every other pass, so
		// full runs, streamed shards and delta republishes all repair
		// identically. exportNode shares each leaf's *Cluster with its
		// leafState, which still holds the original records the repair needs
		// for merges and re-disclosure.
		orig := make(map[*Cluster][]dataset.Record, len(leaves))
		for _, l := range leaves {
			orig[l.cluster] = l.records
		}
		lookup := func(cl *Cluster) []dataset.Record { return orig[cl] }
		for i, p := range published {
			rng := rand.New(rand.NewPCG(opts.Seed, 0x5AFED15^(shardIdx<<32|uint64(i))))
			repairNode(p, lookup, opts.K, opts.M, rng)
		}
	}
	return published
}

// ShardOptions prepares caller options for AnonymizeShard: validation plus
// the same defaulting Anonymize applies. The streaming engine uses it so both
// paths resolve identical effective options.
func ShardOptions(opts Options) (Options, error) {
	if err := opts.Validate(); err != nil {
		return Options{}, err
	}
	return opts.withDefaults(), nil
}

// SensitiveBits maps Options.Sensitive onto a dense domain: exclude marks
// every sensitive *key* (barred from splitting, as HorPartN's contract says),
// sensitive only the true-valued terms (kept out of record and shared
// chunks).
func SensitiveBits(opts Options, dom *dataset.DenseDomain) (exclude, sensitive []bool) {
	exclude = make([]bool, dom.Len())
	sensitive = make([]bool, dom.Len())
	//lint:deterministic order-independent scatter into dense boolean tables
	for t, v := range opts.Sensitive {
		if id, ok := dom.ID(t); ok {
			exclude[id] = true
			if v {
				sensitive[id] = true
			}
		}
	}
	return exclude, sensitive
}

// RestoreClusters rewrites published nodes from dense ids back to the global
// terms of dom, in place.
func RestoreClusters(nodes []*ClusterNode, dom *dataset.DenseDomain) {
	for _, n := range nodes {
		restoreNode(n, dom)
	}
}

// exportNode converts the working representation into the published form,
// dropping the original records.
func exportNode(n *refNode) *ClusterNode {
	if n.leaf != nil {
		return &ClusterNode{Simple: n.leaf.cluster}
	}
	out := &ClusterNode{SharedChunks: n.shared}
	for _, c := range n.children {
		out.Children = append(out.Children, exportNode(c))
	}
	return out
}

// restoreNode rewrites a published subtree from dense term ids back to the
// original global terms, in place. Every record in the tree is a fresh
// pipeline-owned allocation visited exactly once, and the id→term map is
// monotone, so records stay normalized.
func restoreNode(n *ClusterNode, dom *dataset.DenseDomain) {
	restoreChunks := func(chunks []Chunk) {
		for i := range chunks {
			dom.RestoreRecord(chunks[i].Domain)
			for _, sr := range chunks[i].Subrecords {
				dom.RestoreRecord(sr)
			}
		}
	}
	if n.IsLeaf() {
		dom.RestoreRecord(n.Simple.TermChunk)
		restoreChunks(n.Simple.RecordChunks)
		return
	}
	restoreChunks(n.SharedChunks)
	for _, c := range n.Children {
		restoreNode(c, dom)
	}
}
