package core

import (
	"fmt"
	"math/rand/v2"
	"runtime"

	"disasso/internal/dataset"
	"disasso/internal/par"
)

// DefaultMaxClusterSize is the horizontal-partitioning threshold used when
// Options.MaxClusterSize is zero. Clusters of a few dozen records keep the
// vertical partitioning local (limiting disassociation's reach, as Section 3
// motivates) while giving VERPART enough rows to clear the k threshold.
const DefaultMaxClusterSize = 30

// Options configures the disassociation anonymizer.
type Options struct {
	// K and M are the k^m-anonymity parameters (Definition 1): an adversary
	// knowing up to M terms of a record must face at least K candidate
	// records. Both must be at least 2 and 1 respectively.
	K int
	M int
	// MaxClusterSize bounds the horizontal partitions; 0 means
	// DefaultMaxClusterSize. It must exceed K for the guarantee to be
	// satisfiable with non-trivial record chunks.
	MaxClusterSize int
	// DisableRefine skips the REFINE step (no joint clusters); used by the
	// ablation benchmarks.
	DisableRefine bool
	// Sensitive marks terms to protect against attribute disclosure
	// (Section 5): they are ignored during horizontal partitioning and always
	// placed in term chunks, so they associate with any record of a cluster
	// with probability at most 1/|P|.
	Sensitive map[dataset.Term]bool
	// Parallel sets the number of workers for the per-cluster vertical
	// partitioning (Section 3 notes clusters anonymize independently).
	// 0 means GOMAXPROCS; 1 forces sequential operation.
	Parallel int
	// Seed drives subrecord shuffling. Results are deterministic for a fixed
	// seed, including under parallelism.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.MaxClusterSize == 0 {
		o.MaxClusterSize = DefaultMaxClusterSize
	}
	if o.Parallel == 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.K < 2 {
		return fmt.Errorf("core: K = %d, need K ≥ 2", o.K)
	}
	if o.M < 1 {
		return fmt.Errorf("core: M = %d, need M ≥ 1", o.M)
	}
	if o.MaxClusterSize != 0 && o.MaxClusterSize <= o.K {
		return fmt.Errorf("core: MaxClusterSize = %d must exceed K = %d", o.MaxClusterSize, o.K)
	}
	if o.Parallel < 0 {
		return fmt.Errorf("core: Parallel = %d is negative", o.Parallel)
	}
	return nil
}

// Anonymize runs the full disassociation pipeline — HORPART, VERPART per
// cluster, then REFINE — and returns the published dataset. The input is not
// modified. Records must be non-empty and normalized (dataset.Validate).
//
// Internally the pipeline runs over a dense term domain computed once from
// the input: every global term becomes its rank 0..|T|-1, so per-term tables
// in every stage are flat slices instead of maps. The remapping is monotone,
// which preserves every ordering the stages rely on, so after the published
// output is mapped back the result is byte-identical to a run over the
// original terms.
func Anonymize(d *dataset.Dataset, opts Options) (*Anonymized, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid input: %w", err)
	}
	opts = opts.withDefaults()

	dom := dataset.NewDenseDomain(d.Records)
	dense := dom.RemapAll(d.Records)
	// HORPART excludes every Sensitive *key* from splitting (matching the
	// exported HorPartN, which ranges over the map's keys), while VERPART
	// and REFINE treat a term as sensitive only when its value is true.
	excludeBits := make([]bool, dom.Len())
	sensitiveBits := make([]bool, dom.Len())
	for t, v := range opts.Sensitive {
		if id, ok := dom.ID(t); ok {
			excludeBits[id] = true
			if v {
				sensitiveBits[id] = true
			}
		}
	}
	isSensitive := func(t dataset.Term) bool { return sensitiveBits[t] }

	clusters := horPartN(dense, dense, dom.Len(), excludeBits, opts.MaxClusterSize, opts.Parallel)
	// Every cluster needs at least K records, or a term confined to its term
	// chunk would leave an adversary fewer than K candidates (Section 5's
	// reconstruction argument pads up to |P| records only).
	clusters = MergeUndersized(clusters, opts.K)

	leaves := make([]*leafState, len(clusters))
	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	scratches := make([]*indexScratch, workers)
	par.DoWorker(opts.Parallel, len(clusters), func(w, i int) {
		// Per-cluster PRNG: deterministic regardless of scheduling.
		rng := rand.New(rand.NewPCG(opts.Seed, uint64(i)+1))
		if scratches[w] == nil {
			scratches[w] = newIndexScratch(dom.Len())
		}
		records := clusters[i]
		cl, ix := verPartIndexed(records, opts.K, opts.M, isSensitive, rng, scratches[w])
		leaves[i] = newLeafState(records, cl, ix)
	})

	nodes := make([]*refNode, len(leaves))
	for i, l := range leaves {
		nodes[i] = &refNode{leaf: l}
	}
	if !opts.DisableRefine {
		rng := rand.New(rand.NewPCG(opts.Seed, 0xEF11E))
		nodes = refineN(nodes, opts.K, opts.M, sensitiveBits, rng, opts.Parallel, dom.Len())
	}

	out := &Anonymized{K: opts.K, M: opts.M, Clusters: make([]*ClusterNode, len(nodes))}
	for i, n := range nodes {
		out.Clusters[i] = exportNode(n)
		restoreNode(out.Clusters[i], dom)
	}
	return out, nil
}

// exportNode converts the working representation into the published form,
// dropping the original records.
func exportNode(n *refNode) *ClusterNode {
	if n.leaf != nil {
		return &ClusterNode{Simple: n.leaf.cluster}
	}
	out := &ClusterNode{SharedChunks: n.shared}
	for _, c := range n.children {
		out.Children = append(out.Children, exportNode(c))
	}
	return out
}

// restoreNode rewrites a published subtree from dense term ids back to the
// original global terms, in place. Every record in the tree is a fresh
// pipeline-owned allocation visited exactly once, and the id→term map is
// monotone, so records stay normalized.
func restoreNode(n *ClusterNode, dom *dataset.DenseDomain) {
	restoreChunks := func(chunks []Chunk) {
		for i := range chunks {
			dom.RestoreRecord(chunks[i].Domain)
			for _, sr := range chunks[i].Subrecords {
				dom.RestoreRecord(sr)
			}
		}
	}
	if n.IsLeaf() {
		dom.RestoreRecord(n.Simple.TermChunk)
		restoreChunks(n.Simple.RecordChunks)
		return
	}
	restoreChunks(n.SharedChunks)
	for _, c := range n.Children {
		restoreNode(c, dom)
	}
}
