package core

import (
	"disasso/internal/dataset"
)

// Shard planning cuts HORPART's split tree into processing units ("shards")
// small enough to anonymize independently with bounded memory. The cut
// follows the same most-frequent-term rule as HORPART's own splits, so shard
// boundaries always coincide with cluster boundaries the unsharded pipeline
// would produce: a shard is a node of the split tree, and every HORPART leaf
// cluster lies entirely inside exactly one shard. Continuing HORPART inside
// the shard (with the split-path terms ignored) therefore reproduces the
// global clustering, in the same preorder.
//
// The cut is a declared semantic parameter (Options.MaxShardRecords), not an
// implementation detail: MergeUndersized and REFINE run per shard, so the
// published output depends on it. MaxShardRecords = 0 keeps the whole dataset
// in one shard, which is the historical (fully global) behavior. The
// streaming engine (internal/shard) computes the identical cut over spill
// files, which is what makes its output byte-identical to the in-memory path.

// ShardCut decides whether a shard-plan node should be split further. counts
// holds the node's per-term supports over the dense domain, n its record
// count and ignore the terms unavailable for splitting (sensitive terms plus
// the split path). It returns the dense term HORPART's split of this node
// would use — the most frequent non-ignored term, ties toward the smaller id
// — and its support.
//
// The node is split only when it exceeds maxShard records, a usable split
// term exists, and both sides keep at least k records: a shard below k
// records could not repair its undersized clusters locally (MergeUndersized
// runs per shard), so such lopsided cuts stay unsplit even if the shard then
// exceeds the target size. maxShard must be at least the HORPART cluster-size
// threshold, or a cut could land below a node HORPART would not split;
// Options.withDefaults enforces that clamp.
func ShardCut(n int, counts []int32, ignore []bool, maxShard, k int) (term int32, sup int32, split bool) {
	if maxShard <= 0 || n <= maxShard {
		return -1, 0, false
	}
	best, bestSup := int32(-1), int32(0)
	for t, c := range counts {
		if c == 0 || ignore[t] {
			continue
		}
		if c > bestSup || (c == bestSup && int32(t) < best) {
			best, bestSup = int32(t), c
		}
	}
	if bestSup == 0 {
		return -1, 0, false
	}
	if int(bestSup) < k || n-int(bestSup) < k {
		return best, bestSup, false
	}
	return best, bestSup, true
}

// Shard is one independently anonymizable unit of a shard plan: a contiguous
// split-tree node's records (as dense term ids) together with the terms its
// split path consumed (plus the caller's excluded terms). Index is the
// shard's position in the plan's preorder; it parameterizes the shard's PRNG
// streams so shards can be processed in any order, or concurrently, without
// changing the output.
type Shard struct {
	Records []dataset.Record
	Ignore  []bool
	Index   int
}

// planShards computes the in-memory shard plan: the preorder leaves
// (with-branch first, exactly like horPartN) of the most-frequent-term split
// tree, cut by ShardCut. The returned shards partition dense; their Ignore
// snapshots extend exclude with the split-path terms.
func planShards(dense []dataset.Record, nTerms int, exclude []bool, maxShard, k int) []Shard {
	rootIgnore := make([]bool, nTerms)
	copy(rootIgnore, exclude)
	if maxShard <= 0 {
		return []Shard{{Records: dense, Ignore: rootIgnore}}
	}

	// Explicit preorder stack with undo markers, mirroring splitIter: the
	// shared ignore is mutated for a with-subtree and restored by its marker,
	// so only emitted shards snapshot it.
	type task struct {
		records []dataset.Record
		unset   int32 // when ≥ 0: undo marker, clear ignore[unset]
	}
	counts := make([]int32, nTerms)
	var shards []Shard
	stack := []task{{records: dense, unset: -1}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.unset >= 0 {
			rootIgnore[cur.unset] = false
			continue
		}
		for _, r := range cur.records {
			for _, t := range r {
				counts[t]++
			}
		}
		a, sup, split := ShardCut(len(cur.records), counts, rootIgnore, maxShard, k)
		for _, r := range cur.records {
			for _, t := range r {
				counts[t] = 0
			}
		}
		if !split {
			ignore := make([]bool, nTerms)
			copy(ignore, rootIgnore)
			shards = append(shards, Shard{Records: cur.records, Ignore: ignore, Index: len(shards)})
			continue
		}
		with := make([]dataset.Record, 0, sup)
		without := make([]dataset.Record, 0, len(cur.records)-int(sup))
		for _, r := range cur.records {
			if r.Contains(dataset.Term(a)) {
				with = append(with, r)
			} else {
				without = append(without, r)
			}
		}
		// LIFO: with-subtree under ignore[a], its undo marker, then the
		// without-subtree — the same discipline as horPartN's splitIter.
		rootIgnore[a] = true
		stack = append(stack, task{records: without, unset: -1})
		stack = append(stack, task{unset: a})
		stack = append(stack, task{records: with, unset: -1})
	}
	return shards
}
