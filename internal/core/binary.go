package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"disasso/internal/dataset"
)

// Binary wire format: a compact alternative to JSON for archiving large
// publications (records are delta-encoded varints, so a 515k-record POS
// publication shrinks roughly 8× versus indented JSON).
//
// Layout:
//
//	magic "DSA1"
//	uvarint K, uvarint M, uvarint len(Clusters)
//	node := tag(0x00 leaf | 0x01 joint)
//	  leaf : uvarint Size, uvarint #chunks, chunk..., record(TermChunk)
//	  joint: uvarint #children, node..., uvarint #shared, chunk...
//	chunk  := record(Domain), uvarint #subrecords, record...
//	record := uvarint len, then delta-encoded terms (first absolute,
//	          subsequent gaps ≥ 1) as uvarints
const binaryMagic = "DSA1"

// WriteBinary writes the publication in the compact binary format. It is the
// monolithic composition of WriteBinaryHeader and BinaryClusterWriter, so a
// publication assembled cluster by cluster is byte-identical to this path.
func WriteBinary(w io.Writer, a *Anonymized) error {
	bw := bufio.NewWriter(w)
	if err := WriteBinaryHeader(bw, a.K, a.M, len(a.Clusters)); err != nil {
		return err
	}
	cw := NewBinaryClusterWriter(bw)
	for _, n := range a.Clusters {
		if err := cw.Append(n); err != nil {
			return err
		}
	}
	if err := cw.Flush(); err != nil {
		return err
	}
	return bw.Flush()
}

func writeNode(put func(uint64) error, n *ClusterNode) error {
	if n.IsLeaf() {
		if err := put(0); err != nil {
			return err
		}
		cl := n.Simple
		if err := put(uint64(cl.Size)); err != nil {
			return err
		}
		if err := put(uint64(len(cl.RecordChunks))); err != nil {
			return err
		}
		for _, c := range cl.RecordChunks {
			if err := writeChunk(put, c); err != nil {
				return err
			}
		}
		return writeRecord(put, cl.TermChunk)
	}
	if err := put(1); err != nil {
		return err
	}
	if err := put(uint64(len(n.Children))); err != nil {
		return err
	}
	for _, child := range n.Children {
		if err := writeNode(put, child); err != nil {
			return err
		}
	}
	if err := put(uint64(len(n.SharedChunks))); err != nil {
		return err
	}
	for _, c := range n.SharedChunks {
		if err := writeChunk(put, c); err != nil {
			return err
		}
	}
	return nil
}

func writeChunk(put func(uint64) error, c Chunk) error {
	if err := writeRecord(put, c.Domain); err != nil {
		return err
	}
	if err := put(uint64(len(c.Subrecords))); err != nil {
		return err
	}
	for _, sr := range c.Subrecords {
		if err := writeRecord(put, sr); err != nil {
			return err
		}
	}
	return nil
}

// writeRecord delta-encodes a normalized record: the first term absolute,
// every following term as the gap to its predecessor (always ≥ 1).
func writeRecord(put func(uint64) error, r dataset.Record) error {
	if err := put(uint64(len(r))); err != nil {
		return err
	}
	prev := dataset.Term(0)
	for i, t := range r {
		if i == 0 {
			if err := put(uint64(uint32(t))); err != nil {
				return err
			}
		} else if err := put(uint64(t - prev)); err != nil {
			return err
		}
		prev = t
	}
	return nil
}

// ReadBinary parses a publication written by WriteBinary.
func ReadBinary(r io.Reader) (*Anonymized, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: binary header: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	get := func() (uint64, error) { return binary.ReadUvarint(br) }
	k, err := get()
	if err != nil {
		return nil, err
	}
	m, err := get()
	if err != nil {
		return nil, err
	}
	if k < 2 || m < 1 || k > 1<<20 || m > 64 {
		return nil, fmt.Errorf("core: implausible parameters k=%d m=%d", k, m)
	}
	count, err := get()
	if err != nil {
		return nil, err
	}
	if count > 1<<28 {
		return nil, fmt.Errorf("core: implausible cluster count %d", count)
	}
	// Declared counts cap the pre-allocation only up to a grace size: a
	// crafted header must not make the decoder allocate gigabytes before a
	// single node has parsed.
	a := &Anonymized{K: int(k), M: int(m), Clusters: make([]*ClusterNode, 0, preallocCap(count))}
	for i := uint64(0); i < count; i++ {
		n, err := readNode(get, 0)
		if err != nil {
			return nil, fmt.Errorf("core: cluster %d: %w", i, err)
		}
		a.Clusters = append(a.Clusters, n)
	}
	return a, nil
}

// preallocCap bounds a declared element count to a pre-allocation the decoder
// is willing to make on faith; larger lists grow as elements actually parse.
func preallocCap(n uint64) uint64 {
	const grace = 4096
	return min(n, grace)
}

// maxNodeDepth bounds joint-cluster nesting while decoding. Published forests
// are shallow (a joint of j leaves nests j-1 deep at worst, and REFINE joins
// pairwise), so the bound is far above anything WriteBinary emits while
// keeping adversarial inputs from exhausting the stack.
const maxNodeDepth = 10000

func readNode(get func() (uint64, error), depth int) (*ClusterNode, error) {
	if depth > maxNodeDepth {
		return nil, fmt.Errorf("implausible node nesting depth %d", depth)
	}
	tag, err := get()
	if err != nil {
		return nil, err
	}
	switch tag {
	case 0:
		size, err := get()
		if err != nil {
			return nil, err
		}
		nChunks, err := get()
		if err != nil {
			return nil, err
		}
		if nChunks > 1<<20 {
			return nil, fmt.Errorf("implausible chunk count %d", nChunks)
		}
		cl := &Cluster{Size: int(size)}
		for i := uint64(0); i < nChunks; i++ {
			c, err := readChunk(get)
			if err != nil {
				return nil, err
			}
			cl.RecordChunks = append(cl.RecordChunks, c)
		}
		tc, err := readRecord(get)
		if err != nil {
			return nil, err
		}
		cl.TermChunk = tc
		return &ClusterNode{Simple: cl}, nil
	case 1:
		nChildren, err := get()
		if err != nil {
			return nil, err
		}
		if nChildren < 2 || nChildren > 1<<20 {
			return nil, fmt.Errorf("implausible child count %d", nChildren)
		}
		node := &ClusterNode{}
		for i := uint64(0); i < nChildren; i++ {
			child, err := readNode(get, depth+1)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
		}
		nShared, err := get()
		if err != nil {
			return nil, err
		}
		if nShared > 1<<20 {
			return nil, fmt.Errorf("implausible shared count %d", nShared)
		}
		for i := uint64(0); i < nShared; i++ {
			c, err := readChunk(get)
			if err != nil {
				return nil, err
			}
			node.SharedChunks = append(node.SharedChunks, c)
		}
		return node, nil
	default:
		return nil, fmt.Errorf("unknown node tag %d", tag)
	}
}

func readChunk(get func() (uint64, error)) (Chunk, error) {
	dom, err := readRecord(get)
	if err != nil {
		return Chunk{}, err
	}
	n, err := get()
	if err != nil {
		return Chunk{}, err
	}
	if n > 1<<26 {
		return Chunk{}, fmt.Errorf("implausible subrecord count %d", n)
	}
	c := Chunk{Domain: dom, Subrecords: make([]dataset.Record, 0, preallocCap(n))}
	for i := uint64(0); i < n; i++ {
		sr, err := readRecord(get)
		if err != nil {
			return Chunk{}, err
		}
		c.Subrecords = append(c.Subrecords, sr)
	}
	return c, nil
}

func readRecord(get func() (uint64, error)) (dataset.Record, error) {
	n, err := get()
	if err != nil {
		return nil, err
	}
	if n > 1<<22 {
		return nil, fmt.Errorf("implausible record length %d", n)
	}
	if n == 0 {
		return dataset.Record{}, nil
	}
	r := make(dataset.Record, 0, preallocCap(n))
	var cur uint64
	for i := uint64(0); i < n; i++ {
		v, err := get()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			cur = v
		} else {
			if v == 0 {
				return nil, fmt.Errorf("zero gap: record not strictly increasing")
			}
			cur += v
		}
		if cur > 1<<31-1 {
			return nil, fmt.Errorf("term %d overflows", cur)
		}
		r = append(r, dataset.Term(cur))
	}
	return r, nil
}
