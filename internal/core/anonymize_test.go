package core

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/dataset"
)

func TestOptionsValidate(t *testing.T) {
	good := Options{K: 3, M: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	bad := []Options{
		{K: 1, M: 2},
		{K: 0, M: 2},
		{K: 3, M: 0},
		{K: 3, M: 2, MaxClusterSize: 3},
		{K: 3, M: 2, Parallel: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, o)
		}
	}
}

func TestAnonymizeRejectsInvalidInput(t *testing.T) {
	d := dataset.FromRecords([]dataset.Record{{}})
	if _, err := Anonymize(d, Options{K: 3, M: 2}); err == nil {
		t.Error("empty record accepted")
	}
	if _, err := Anonymize(dataset.FromRecords(figure2Records()), Options{K: 1, M: 2}); err == nil {
		t.Error("K=1 accepted")
	}
}

func TestAnonymizeFigure2(t *testing.T) {
	d := dataset.FromRecords(figure2Records())
	a, err := Anonymize(d, Options{K: 3, M: 2, MaxClusterSize: 6, Parallel: 1, Seed: 1})
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	if a.NumRecords() != 10 {
		t.Errorf("NumRecords = %d", a.NumRecords())
	}
	// Every original term must survive.
	if got, want := dataset.Record(a.Domain()), dataset.NewRecord(d.Domain()...); !got.Equal(want) {
		t.Errorf("domain = %v, want %v", got, want)
	}
	// Every record chunk k^m-anonymous at the configured parameters.
	for _, c := range a.AllChunks() {
		if !IsChunkKMAnonymous(c.Domain, c.Subrecords, 3, 2) {
			t.Errorf("chunk %v fails the 3^2 check", c.Domain)
		}
	}
}

func TestAnonymizeEmptyDataset(t *testing.T) {
	a, err := Anonymize(dataset.New(0), Options{K: 3, M: 2})
	if err != nil {
		t.Fatalf("Anonymize(empty): %v", err)
	}
	if len(a.Clusters) != 0 || a.NumRecords() != 0 {
		t.Errorf("empty dataset gave %d clusters", len(a.Clusters))
	}
}

func TestAnonymizeDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	var records []dataset.Record
	for i := 0; i < 300; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(6))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(40))
		}
		records = append(records, dataset.NewRecord(terms...))
	}
	d := dataset.FromRecords(records)
	opts := Options{K: 4, M: 2, Seed: 3}
	opts.Parallel = 1
	seq, err := Anonymize(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 8
	par, err := Anonymize(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Clusters) != len(par.Clusters) {
		t.Fatalf("cluster counts differ: %d vs %d", len(seq.Clusters), len(par.Clusters))
	}
	sa, sb := seq.AllLeaves(), par.AllLeaves()
	if len(sa) != len(sb) {
		t.Fatalf("leaf counts differ")
	}
	for i := range sa {
		if sa[i].Size != sb[i].Size || !sa[i].TermChunk.Equal(sb[i].TermChunk) {
			t.Fatalf("leaf %d differs between sequential and parallel runs", i)
		}
		if len(sa[i].RecordChunks) != len(sb[i].RecordChunks) {
			t.Fatalf("leaf %d chunk counts differ", i)
		}
		for j := range sa[i].RecordChunks {
			ca, cb := sa[i].RecordChunks[j], sb[i].RecordChunks[j]
			if !ca.Domain.Equal(cb.Domain) {
				t.Fatalf("leaf %d chunk %d domains differ", i, j)
			}
			for x := range ca.Subrecords {
				if !ca.Subrecords[x].Equal(cb.Subrecords[x]) {
					t.Fatalf("leaf %d chunk %d subrecord %d differs (shuffle not deterministic)", i, j, x)
				}
			}
		}
	}
}

func TestAnonymizeDisableRefine(t *testing.T) {
	d := dataset.FromRecords(figure2Records())
	a, err := Anonymize(d, Options{K: 3, M: 2, MaxClusterSize: 6, DisableRefine: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range a.Clusters {
		if !n.IsLeaf() {
			t.Error("DisableRefine produced a joint cluster")
		}
	}
}

func TestAnonymizeSensitiveMode(t *testing.T) {
	d := dataset.FromRecords(figure2Records())
	sensitive := map[dataset.Term]bool{viagra: true, panicDis: true}
	a, err := Anonymize(d, Options{K: 3, M: 2, MaxClusterSize: 6, Sensitive: sensitive, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range a.AllChunks() {
		for _, term := range c.Domain {
			if sensitive[term] {
				t.Errorf("sensitive term %d appears in a record/shared chunk", term)
			}
		}
	}
	// Sensitive terms must still be published (in term chunks).
	found := map[dataset.Term]bool{}
	for _, leaf := range a.AllLeaves() {
		for _, term := range leaf.TermChunk {
			found[term] = true
		}
	}
	if !found[viagra] || !found[panicDis] {
		t.Error("sensitive terms vanished from the output")
	}
}

func TestSensitiveTermsSurviveRefine(t *testing.T) {
	// Regression: sensitive terms used to leak from term chunks into shared
	// chunks during REFINE. Build many clusters sharing an infrequent-per-
	// cluster sensitive term whose total support clears k, so it would be a
	// prime refining candidate.
	rng := rand.New(rand.NewPCG(44, 45))
	sens := dataset.Term(999)
	var records []dataset.Record
	for i := 0; i < 300; i++ {
		terms := []dataset.Term{dataset.Term(rng.IntN(20)), dataset.Term(rng.IntN(20))}
		if i%10 == 0 {
			terms = append(terms, sens)
		}
		records = append(records, dataset.NewRecord(terms...))
	}
	d := dataset.FromRecords(records)
	a, err := Anonymize(d, Options{K: 3, M: 2, Sensitive: map[dataset.Term]bool{sens: true}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range a.AllChunks() {
		if c.Domain.Contains(sens) {
			t.Fatal("sensitive term leaked into a record or shared chunk")
		}
	}
	if a.TermChunkTerms()[sens] == 0 {
		t.Error("sensitive term vanished from the output")
	}
}

func TestLowerBoundSupports(t *testing.T) {
	d := dataset.FromRecords(figure2Records())
	a, err := Anonymize(d, Options{K: 3, M: 2, MaxClusterSize: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lower := a.LowerBoundSupports()
	orig := d.Supports()
	for term, lb := range lower {
		if lb > orig[term] {
			t.Errorf("lower bound of term %d is %d, exceeds original support %d", term, lb, orig[term])
		}
		if lb == 0 {
			t.Errorf("term %d has zero lower bound but appears in the output", term)
		}
	}
	if len(lower) != len(orig) {
		t.Errorf("lower bounds cover %d terms, original has %d", len(lower), len(orig))
	}
}

func TestLowerBoundItemsetSupport(t *testing.T) {
	d := dataset.FromRecords(figure2Records())
	a, err := Anonymize(d, Options{K: 3, M: 2, MaxClusterSize: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Pairs inside one chunk keep exact support; any pair's bound must not
	// exceed the original support.
	pairs := [][2]dataset.Term{
		{itunes, flu}, {madonna, flu}, {audiA4, sonyTV}, {ikea, ruby}, {itunes, viagra},
	}
	for _, p := range pairs {
		s := dataset.NewRecord(p[0], p[1])
		lb := a.LowerBoundItemsetSupport(s)
		orig := d.SupportOf(s)
		if lb > orig {
			t.Errorf("pair %v: lower bound %d > original %d", s, lb, orig)
		}
	}
}

// Property: on random datasets the pipeline must always produce output whose
// chunks pass the exhaustive anonymity checks and whose structure accounts
// for every record and term. (The independent verifier package re-checks
// this from the outside; this is the in-package version.)
func TestAnonymizeRandomDatasets(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 99))
	for trial := 0; trial < 20; trial++ {
		var records []dataset.Record
		n := 50 + rng.IntN(200)
		domain := 10 + rng.IntN(40)
		for i := 0; i < n; i++ {
			terms := make([]dataset.Term, 1+rng.IntN(5))
			for j := range terms {
				terms[j] = dataset.Term(rng.IntN(domain))
			}
			records = append(records, dataset.NewRecord(terms...))
		}
		d := dataset.FromRecords(records)
		k := 2 + rng.IntN(4)
		m := 1 + rng.IntN(3)
		a, err := Anonymize(d, Options{K: k, M: m, Seed: uint64(trial)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if a.NumRecords() != n {
			t.Fatalf("trial %d: %d records out, %d in", trial, a.NumRecords(), n)
		}
		if got, want := dataset.Record(a.Domain()), dataset.NewRecord(d.Domain()...); !got.Equal(want) {
			t.Fatalf("trial %d: domain mismatch", trial)
		}
		for _, c := range a.AllChunks() {
			if !IsChunkKMAnonymous(c.Domain, c.Subrecords, k, m) {
				// Shared chunks under Property 1 satisfy the stronger
				// k-anonymity instead; accept either.
				if !IsChunkKAnonymous(c.Domain, c.Subrecords, k) {
					t.Fatalf("trial %d: chunk %v fails both checks (k=%d, m=%d)", trial, c.Domain, k, m)
				}
			}
		}
	}
}
