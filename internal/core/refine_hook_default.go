//go:build !refine_replan

package core

// refineAlwaysReplanDefault selects the incremental engine: join verdicts are
// memoized by node generation and only pairs with a new side are re-planned.
// Build with -tags refine_replan to default to the reference always-re-plan
// path instead (used to cross-check byte-identical output).
const refineAlwaysReplanDefault = false
