package core

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"disasso/internal/dataset"
)

// genDataset derives a small random dataset from quick's fuzz values.
func genDataset(seed1, seed2 uint64, n int) *dataset.Dataset {
	rng := rand.New(rand.NewPCG(seed1, seed2))
	if n < 10 {
		n = 10 + n%10
	}
	if n > 200 {
		n = 200
	}
	records := make([]dataset.Record, 0, n)
	for i := 0; i < n; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(5))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(25))
		}
		records = append(records, dataset.NewRecord(terms...))
	}
	return dataset.FromRecords(records)
}

// Property (quick): HORPART always yields an exact partition of the input.
func TestQuickHorPartIsPartition(t *testing.T) {
	f := func(s1, s2 uint64, n uint8, maxSize uint8) bool {
		d := genDataset(s1, s2, int(n))
		clusters := HorPart(d, int(maxSize%40)+2, nil)
		count := make(map[string]int)
		for _, r := range d.Records {
			count[r.Key()]++
		}
		total := 0
		for _, c := range clusters {
			for _, r := range c {
				count[r.Key()]--
				total++
			}
		}
		if total != d.Len() {
			return false
		}
		for _, v := range count {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property (quick): MergeUndersized preserves the record multiset and leaves
// at most one undersized cluster (only when the whole input is undersized).
func TestQuickMergeUndersized(t *testing.T) {
	f := func(s1, s2 uint64, n uint8, min uint8) bool {
		d := genDataset(s1, s2, int(n))
		clusters := HorPart(d, 8, nil)
		k := int(min%6) + 2
		merged := MergeUndersized(clusters, k)
		total := 0
		undersized := 0
		for _, c := range merged {
			total += len(c)
			if len(c) < k {
				undersized++
			}
		}
		if total != d.Len() {
			return false
		}
		if undersized > 0 && d.Len() >= k {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property (quick): VERPART chunk domains plus the term chunk exactly tile
// the cluster's term domain, and all chunks pass the exhaustive k^m check.
func TestQuickVerPartTiling(t *testing.T) {
	f := func(s1, s2 uint64, n uint8, kRaw, mRaw uint8) bool {
		d := genDataset(s1, s2, int(n)%40+5)
		k := int(kRaw%4) + 2
		m := int(mRaw%3) + 1
		cl := VerPart(d.Records, k, m, nil, rand.New(rand.NewPCG(s1, s2)))
		var all dataset.Record
		for _, c := range cl.RecordChunks {
			if len(all.Intersect(c.Domain)) > 0 {
				return false
			}
			all = all.Union(c.Domain)
			if !IsChunkKMAnonymous(c.Domain, c.Subrecords, k, m) {
				return false
			}
		}
		if len(all.Intersect(cl.TermChunk)) > 0 {
			return false
		}
		all = all.Union(cl.TermChunk)
		return all.Equal(dataset.NewRecord(d.Domain()...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property (quick): the full pipeline conserves records and terms for
// arbitrary parameter combinations.
func TestQuickAnonymizeConservation(t *testing.T) {
	f := func(s1, s2 uint64, n uint8, kRaw uint8, refineOff bool) bool {
		d := genDataset(s1, s2, int(n))
		k := int(kRaw%4) + 2
		a, err := Anonymize(d, Options{K: k, M: 2, DisableRefine: refineOff, Seed: s1 ^ s2})
		if err != nil {
			return false
		}
		if a.NumRecords() != d.Len() {
			return false
		}
		return dataset.Record(a.Domain()).Equal(dataset.NewRecord(d.Domain()...))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property (quick): the incremental REFINE engine (generation-stamped plan
// memoization, commit-time aggregates) publishes byte-identical datasets to
// the reference always-re-plan path, across seeds, cluster sizes and worker
// counts.
func TestQuickRefinePlanCacheEquivalence(t *testing.T) {
	if refineAlwaysReplan {
		t.Skip("refine_replan build: the reference path is already the default")
	}
	defer func() { refineAlwaysReplan = false }()
	f := func(s1, s2 uint64, n uint8, sizeRaw, workersRaw uint8) bool {
		d := genDataset(s1, s2, int(n))
		opts := Options{
			K: 3, M: 2,
			MaxClusterSize: int(sizeRaw%20) + 8,
			Parallel:       int(workersRaw%4) + 1,
			Seed:           s1 ^ s2,
		}
		refineAlwaysReplan = false
		incremental, err := Anonymize(d, opts)
		if err != nil {
			return false
		}
		refineAlwaysReplan = true
		reference, err := Anonymize(d, opts)
		refineAlwaysReplan = false
		if err != nil {
			return false
		}
		var bufI, bufR bytes.Buffer
		if WriteBinary(&bufI, incremental) != nil || WriteBinary(&bufR, reference) != nil {
			return false
		}
		return bytes.Equal(bufI.Bytes(), bufR.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property (quick): lower-bound supports never exceed originals and cover
// exactly the original domain.
func TestQuickLowerBounds(t *testing.T) {
	f := func(s1, s2 uint64, n uint8) bool {
		d := genDataset(s1, s2, int(n))
		a, err := Anonymize(d, Options{K: 3, M: 2, Seed: s1})
		if err != nil {
			return false
		}
		orig := d.Supports()
		lower := a.LowerBoundSupports()
		if len(lower) != len(orig) {
			return false
		}
		for term, lb := range lower {
			if lb < 1 || lb > orig[term] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
