package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"disasso/internal/dataset"
)

func TestJSONRoundTrip(t *testing.T) {
	d := dataset.FromRecords(figure2Records())
	a, err := Anonymize(d, Options{K: 3, M: 2, MaxClusterSize: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, a); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.K != a.K || back.M != a.M {
		t.Errorf("parameters lost: k=%d m=%d", back.K, back.M)
	}
	if !reflect.DeepEqual(a, back) {
		t.Error("round trip not identical")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"K":0,"M":2,"Clusters":[]}`)); err == nil {
		t.Error("invalid parameters accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"K":3,"M":2,"Clusters":[{"Children":[{"Simple":{"Size":1}}]}]}`)); err == nil {
		t.Error("single-child joint accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"K":3,"M":2,"Clusters":[null]}`)); err == nil {
		t.Error("nil node accepted")
	}
}
