package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Chunked publication writers: the streaming engine anonymizes one shard at a
// time and appends each shard's published clusters as they become available,
// so the monolithic WriteBinary/WriteJSON entry points are split into a
// header, a per-cluster append and a trailer. WriteBinary and WriteJSON are
// implemented on top of these writers, so a chunked emission is
// byte-identical to the monolithic one by construction.

// BinaryClusterWriter appends clusters in the compact binary format.
type BinaryClusterWriter struct {
	bw      *bufio.Writer
	scratch [binary.MaxVarintLen64]byte
}

// NewBinaryClusterWriter returns a cluster writer over w. It writes nothing
// by itself: a complete publication is WriteBinaryHeader followed by the
// Append-ed cluster bodies (the header carries the cluster count, so callers
// assembling a publication incrementally stage the bodies first).
func NewBinaryClusterWriter(w io.Writer) *BinaryClusterWriter {
	return &BinaryClusterWriter{bw: bufio.NewWriter(w)}
}

func (cw *BinaryClusterWriter) put(v uint64) error {
	n := binary.PutUvarint(cw.scratch[:], v)
	_, err := cw.bw.Write(cw.scratch[:n])
	return err
}

// Append writes one top-level cluster node.
func (cw *BinaryClusterWriter) Append(n *ClusterNode) error {
	return writeNode(cw.put, n)
}

// Flush drains the writer's buffer.
func (cw *BinaryClusterWriter) Flush() error { return cw.bw.Flush() }

// WriteBinaryHeader writes the binary format's header: magic, parameters and
// the total cluster count that must follow.
func WriteBinaryHeader(w io.Writer, k, m, clusters int) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	for _, v := range [...]uint64{uint64(k), uint64(m), uint64(clusters)} {
		n := binary.PutUvarint(scratch[:], v)
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONHeader writes the JSON envelope up to the cluster list: the
// object opener, the parameters and the "Clusters" key. It is the single
// source of the envelope prefix for every JSON emission path.
func WriteJSONHeader(w io.Writer, k, m int) error {
	_, err := fmt.Fprintf(w, "{\n  \"K\": %d,\n  \"M\": %d,\n  \"Clusters\": ", k, m)
	return err
}

// WriteJSONTrailer closes the envelope: the array and object close. A
// publication with no clusters serializes its cluster list as [] — the
// stable wire format external consumers iterate (jq '.Clusters[]', typed
// decoders that reject null for an array field), regardless of whether the
// in-memory pipeline's slice happened to be nil.
func WriteJSONTrailer(w io.Writer, clusters int) error {
	s := "\n  ]\n}\n"
	if clusters == 0 {
		s = "[]\n}\n"
	}
	_, err := io.WriteString(w, s)
	return err
}

// JSONClusterWriter appends clusters in the indented JSON format. The
// emission is byte-identical to WriteJSON: Close must be called after the
// last cluster to write the trailer.
type JSONClusterWriter struct {
	bw    *bufio.Writer
	count int
}

// NewJSONClusterWriter writes the JSON header for the given parameters and
// returns the writer for the cluster array.
func NewJSONClusterWriter(w io.Writer, k, m int) (*JSONClusterWriter, error) {
	jw := &JSONClusterWriter{bw: bufio.NewWriter(w)}
	if err := WriteJSONHeader(jw.bw, k, m); err != nil {
		return nil, err
	}
	return jw, nil
}

// MarshalClusterJSON renders one top-level cluster exactly as it appears as
// an element of WriteJSON's cluster array (sans separators): array elements
// sit two indent levels deep, and MarshalIndent's prefix reproduces the
// continuation lines exactly as json.Encoder nests them.
func MarshalClusterJSON(n *ClusterNode) ([]byte, error) {
	body, err := json.MarshalIndent(n, "    ", "  ")
	if err != nil {
		return nil, fmt.Errorf("core: encode cluster: %w", err)
	}
	return body, nil
}

// Append writes one top-level cluster node.
func (jw *JSONClusterWriter) Append(n *ClusterNode) error {
	body, err := MarshalClusterJSON(n)
	if err != nil {
		return err
	}
	if jw.count == 0 {
		if _, err := jw.bw.WriteString("[\n    "); err != nil {
			return err
		}
	} else if _, err := jw.bw.WriteString(",\n    "); err != nil {
		return err
	}
	jw.count++
	_, err = jw.bw.Write(body)
	return err
}

// Close writes the trailer and flushes.
func (jw *JSONClusterWriter) Close() error {
	if err := WriteJSONTrailer(jw.bw, jw.count); err != nil {
		return err
	}
	return jw.bw.Flush()
}
