package core

import (
	"math/rand/v2"

	"disasso/internal/dataset"
)

// Safe disassociation (Awad et al.): repair a published cluster node until
// no cover-problem breach survives, re-verifying k^m-anonymity (and Lemma 2
// where it applies) after every step. Two moves, tried in this order:
//
//   - MERGE: when the learned term and its witness anchor sit in two record
//     chunks of the same leaf, merging the chunks discloses the association
//     openly — the pair stops being an inference and becomes published fact.
//     The merge is committed only if the merged chunk (re-projected from the
//     leaf's original records) is still k^m-anonymous and the leaf still
//     satisfies Lemma 2, so the publication's guarantee never weakens.
//
//   - DEMOTE: otherwise the heavy term moves to the term chunk(s). A term
//     chunk hides multiplicity, so a demoted term associates with any one
//     record with probability 1/|P| ≤ 1/k (MergeUndersized guarantees
//     |P| ≥ k) — demotion always ends the breach, at some utility cost.
//     Demoting from a shared chunk (or from a record chunk when the term
//     also rides a shared chunk) strips the term from every shared chunk of
//     the node and re-discloses it in the term chunk of each leaf whose
//     original records hold it, preserving the per-leaf term sets and the
//     verifier's invariant that shared-chunk domains stay disjoint from
//     descendant term chunks.
//
// Termination: a merge reduces the record-chunk count and never adds a
// record- or shared-chunk term occurrence; a demote removes at least one
// such occurrence and never adds any. The sum (occurrences + chunks)
// strictly decreases every step, and a node whose record and shared chunks
// carry no heavy term has no breach, so the loop reaches a breach-free
// fixpoint. Demoted terms cannot re-breach: term-chunk terms are never
// heavy.
//
// The pass mutates only the published node (fresh pipeline-owned
// allocations) and consumes randomness only when a merge shuffles the
// merged subrecords, so repairing an already-breach-free node is a no-op
// that leaves the PRNG stream untouched — repair is idempotent and
// deterministic for a fixed node and seed, independent of worker counts.

// repairNode repairs one top-level published node in place until
// NodeBreaches(n, k) is empty. originals yields each leaf's original
// records (dense ids, the same id space as the node), needed to re-project
// merged chunks and to re-disclose demoted shared terms. Returns the number
// of repair steps taken.
func repairNode(n *ClusterNode, originals func(*Cluster) []dataset.Record, k, m int, rng *rand.Rand) int {
	steps := 0
	guard := repairBudget(n)
	for {
		srcs := collectSources(n)
		sites := detectBreaches(srcs, k)
		if len(sites) == 0 {
			return steps
		}
		steps++
		if steps > guard {
			// The potential argument above bounds steps by occurrences+chunks;
			// exceeding the budget means a step failed to make progress, which
			// is a bug worth crashing loudly over (the fuzzer hunts for it).
			panic("core: safe-disassociation repair failed to converge")
		}
		b := sites[0]
		l, an := &srcs[b.src], &srcs[b.anchor]
		if l.kind == srcRecordChunk && an.kind == srcRecordChunk && l.leaf == an.leaf {
			if tryMergeChunks(l.leaf, l.chunk, an.chunk, originals(l.leaf), k, m, rng) {
				continue
			}
		}
		demoteTerm(n, l, b.Learned, originals)
	}
}

// repairBudget bounds the repair steps of a node: every step removes a
// chunk or a term occurrence, so occurrences + chunks (plus slack) can
// never be exceeded by a correct repair.
func repairBudget(n *ClusterNode) int {
	total := 8
	for _, src := range collectSources(n) {
		if src.kind == srcTermChunk {
			continue
		}
		total += 1 + len(src.terms)
	}
	return total
}

// tryMergeChunks replaces record chunks i and j of the leaf with their
// union, re-projected from the original records, iff the merged chunk is
// still k^m-anonymous and the leaf still satisfies Lemma 2 (which only
// binds while the term chunk is empty). The merged subrecords are shuffled
// like every published chunk's.
func tryMergeChunks(cl *Cluster, i, j int, records []dataset.Record, k, m int, rng *rand.Rand) bool {
	dom := cl.RecordChunks[i].Domain.Union(cl.RecordChunks[j].Domain)
	subs := make([]dataset.Record, 0, len(records))
	for _, r := range records {
		if p := r.Intersect(dom); len(p) > 0 {
			subs = append(subs, p)
		}
	}
	if !IsChunkKMAnonymous(dom, subs, k, m) {
		return false
	}
	merged := Chunk{Domain: dom, Subrecords: subs}
	if len(cl.TermChunk) == 0 {
		trial := Cluster{Size: cl.Size, RecordChunks: make([]Chunk, 0, len(cl.RecordChunks)-1)}
		for ci := range cl.RecordChunks {
			if ci != i && ci != j {
				trial.RecordChunks = append(trial.RecordChunks, cl.RecordChunks[ci])
			}
		}
		trial.RecordChunks = append(trial.RecordChunks, merged)
		if !lemma2Holds(&trial, k, m) {
			return false
		}
	}
	rng.Shuffle(len(subs), func(x, y int) { subs[x], subs[y] = subs[y], subs[x] })
	lo, hi := min(i, j), max(i, j)
	cl.RecordChunks[lo] = merged
	cl.RecordChunks = append(cl.RecordChunks[:hi], cl.RecordChunks[hi+1:]...)
	return true
}

// stripChunkTerm removes a from the chunk's domain and subrecords, dropping
// projections that become empty; reports whether the domain is now empty
// (the chunk should be removed entirely).
func stripChunkTerm(c *Chunk, a dataset.Term) (empty bool) {
	c.Domain = c.Domain.Subtract(dataset.Record{a})
	subs := c.Subrecords[:0]
	for _, sr := range c.Subrecords {
		if sr.Contains(a) {
			sr = sr.Subtract(dataset.Record{a})
		}
		if len(sr) > 0 {
			subs = append(subs, sr)
		}
	}
	c.Subrecords = subs
	return len(c.Domain) == 0
}

// stripChunks removes a from every chunk of the slice, dropping chunks
// whose domain empties; reports whether anything changed.
func stripChunks(chunks []Chunk, a dataset.Term) ([]Chunk, bool) {
	changed := false
	out := chunks[:0]
	for ci := range chunks {
		c := chunks[ci]
		if !c.Domain.Contains(a) {
			out = append(out, c)
			continue
		}
		changed = true
		if !stripChunkTerm(&c, a) {
			out = append(out, c)
		}
	}
	return out, changed
}

// demoteTerm moves the heavy term a out of its source l into term chunks.
// For a record-chunk source the term moves to that leaf's term chunk; if a
// also appears in any shared chunk (or the source itself is shared), a is
// stripped from every shared chunk of the node and re-disclosed in the term
// chunk of each leaf whose original records contain it — keeping every
// leaf's term set intact and no shared-chunk domain overlapping a
// descendant term chunk.
func demoteTerm(root *ClusterNode, l *breachSrc, a dataset.Term, originals func(*Cluster) []dataset.Record) {
	needShared := l.kind == srcShared
	if l.kind == srcRecordChunk {
		cl := l.leaf
		c := &cl.RecordChunks[l.chunk]
		if stripChunkTerm(c, a) {
			cl.RecordChunks = append(cl.RecordChunks[:l.chunk], cl.RecordChunks[l.chunk+1:]...)
		}
		cl.TermChunk = insertTerm(cl.TermChunk, a)
		if !needShared {
			root.Walk(func(n *ClusterNode) {
				if !n.IsLeaf() {
					for ci := range n.SharedChunks {
						if n.SharedChunks[ci].Domain.Contains(a) {
							needShared = true
						}
					}
				}
			})
		}
	}
	if !needShared {
		return
	}
	root.Walk(func(n *ClusterNode) {
		if !n.IsLeaf() {
			n.SharedChunks, _ = stripChunks(n.SharedChunks, a)
		}
	})
	// Re-disclose: every leaf whose originals hold a must still publish it
	// somewhere; with every shared occurrence gone, that is its term chunk
	// unless a record chunk of the leaf already carries the term.
	root.Walk(func(n *ClusterNode) {
		if !n.IsLeaf() {
			return
		}
		cl := n.Simple
		if cl.TermChunk.Contains(a) {
			return
		}
		for ci := range cl.RecordChunks {
			if cl.RecordChunks[ci].Domain.Contains(a) {
				return
			}
		}
		for _, r := range originals(cl) {
			if r.Contains(a) {
				cl.TermChunk = insertTerm(cl.TermChunk, a)
				return
			}
		}
	})
}
