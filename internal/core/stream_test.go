package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestChunkedBinaryMatchesWriteBinary pins the contract the streaming engine
// relies on: header + per-cluster appends must produce exactly the
// WriteBinary bytes, including when the clusters are staged in separate
// buffers and concatenated.
func TestChunkedBinaryMatchesWriteBinary(t *testing.T) {
	d := genDataset(3, 12, 140)
	a, err := Anonymize(d, Options{K: 3, M: 2, MaxClusterSize: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteBinary(&want, a); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	if err := WriteBinaryHeader(&got, a.K, a.M, len(a.Clusters)); err != nil {
		t.Fatal(err)
	}
	for _, n := range a.Clusters {
		// Each cluster through its own writer: chunk boundaries must not
		// leak into the bytes.
		var body bytes.Buffer
		cw := NewBinaryClusterWriter(&body)
		if err := cw.Append(n); err != nil {
			t.Fatal(err)
		}
		if err := cw.Flush(); err != nil {
			t.Fatal(err)
		}
		got.Write(body.Bytes())
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("chunked binary emission differs from WriteBinary (%d vs %d bytes)", got.Len(), want.Len())
	}
}

// encodeJSONReference renders the publication with a plain json.Encoder —
// the specification WriteJSON's chunked implementation must reproduce byte
// for byte.
func encodeJSONReference(t *testing.T, a *Anonymized) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWriteJSONMatchesEncoderReference pins WriteJSON (built from the
// chunked JSONClusterWriter) against the json.Encoder reference form.
func TestWriteJSONMatchesEncoderReference(t *testing.T) {
	d := genDataset(8, 2, 120)
	a, err := Anonymize(d, Options{K: 3, M: 2, MaxClusterSize: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Clusters) == 0 {
		t.Fatal("fixture produced no clusters")
	}
	want := encodeJSONReference(t, a)
	var got bytes.Buffer
	if err := WriteJSON(&got, a); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("WriteJSON differs from the json.Encoder reference:\nchunked:\n%s\nreference:\n%s",
			clip(got.String()), clip(string(want)))
	}
}

// TestWriteJSONEmptyMatchesReference pins the no-cluster envelope: the
// cluster list serializes as [] — the wire format of every pre-chunked
// release and what array-typed consumers expect — matching the reference
// encoder on the non-nil empty slice the pipeline actually produces.
func TestWriteJSONEmptyMatchesReference(t *testing.T) {
	a := &Anonymized{K: 3, M: 2, Clusters: []*ClusterNode{}}
	want := encodeJSONReference(t, a)
	var got bytes.Buffer
	if err := WriteJSON(&got, a); err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Fatalf("empty WriteJSON %q != reference %q", got.String(), string(want))
	}
	// A nil Clusters slice must serialize identically — the writer, not the
	// slice's nil-ness, owns the envelope.
	var gotNil bytes.Buffer
	if err := WriteJSON(&gotNil, &Anonymized{K: 3, M: 2}); err != nil {
		t.Fatal(err)
	}
	if gotNil.String() != got.String() {
		t.Fatalf("nil-slice WriteJSON %q != empty-slice WriteJSON %q", gotNil.String(), got.String())
	}
}

func clip(s string) string {
	if len(s) > 600 {
		return s[:600] + "…"
	}
	return s
}
