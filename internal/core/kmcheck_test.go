package core

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/dataset"
	"disasso/internal/itemset"
)

func TestComboKeyDistinctness(t *testing.T) {
	buf := make([]byte, 0, 64)
	a, buf := comboKey(buf, dataset.NewRecord(1, 3), 2)
	b, buf := comboKey(buf, dataset.NewRecord(1, 2), 3)
	if a != b {
		t.Error("comboKey must be order-independent: {1,3}+2 vs {1,2}+3")
	}
	c, buf := comboKey(buf, dataset.NewRecord(1), 2)
	d, buf := comboKey(buf, dataset.NewRecord(12), 0)
	if c == d {
		t.Error("distinct combos share a key")
	}
	// extra greater than all combo terms
	e, buf := comboKey(buf, dataset.NewRecord(1, 2), 9)
	f, _ := comboKey(buf, dataset.NewRecord(2, 9), 1)
	if e != f {
		t.Error("comboKey must sort the extra term into place")
	}
}

// TestComboKeyThreadsBuffer pins the regression where comboKey's grown
// buffer was discarded, reallocating on every oversized call.
func TestComboKeyThreadsBuffer(t *testing.T) {
	var buf []byte
	_, buf = comboKey(buf, dataset.NewRecord(1, 2, 3, 4, 5, 6, 7), 8)
	if cap(buf) < 8*4 {
		t.Fatalf("comboKey did not return the grown buffer, cap = %d", cap(buf))
	}
	before := cap(buf)
	_, buf = comboKey(buf, dataset.NewRecord(1, 2, 3), 4)
	if cap(buf) != before {
		t.Errorf("comboKey reallocated a buffer that was large enough: cap %d -> %d", before, cap(buf))
	}
}

func TestKMCheckerFirstTermAlwaysAdds(t *testing.T) {
	// s(t) ≥ k guarantees the singleton chunk is k^m-anonymous (Section 4).
	records := []dataset.Record{
		dataset.NewRecord(1), dataset.NewRecord(1), dataset.NewRecord(1),
	}
	c := newKMChecker(3, 2, records)
	if !c.TryAdd(1) {
		t.Fatal("first term with support ≥ k rejected")
	}
	if !c.Domain().Equal(dataset.NewRecord(1)) {
		t.Errorf("domain = %v", c.Domain())
	}
}

func TestKMCheckerRejectsInfrequentPair(t *testing.T) {
	// Terms 1 and 2 each appear 3 times but co-occur only twice.
	records := []dataset.Record{
		dataset.NewRecord(1, 2),
		dataset.NewRecord(1, 2),
		dataset.NewRecord(1),
		dataset.NewRecord(2),
	}
	c := newKMChecker(3, 2, records)
	if !c.TryAdd(1) {
		t.Fatal("term 1 rejected")
	}
	if c.TryAdd(2) {
		t.Error("pair {1,2} with support 2 < 3 accepted")
	}
	if !c.Domain().Equal(dataset.NewRecord(1)) {
		t.Errorf("failed TryAdd must not modify the domain, got %v", c.Domain())
	}
}

func TestKMCheckerAcceptsZeroCooccurrence(t *testing.T) {
	// Lemma 1: a combination may appear ≥ k times or not at all.
	records := []dataset.Record{
		dataset.NewRecord(1), dataset.NewRecord(1), dataset.NewRecord(1),
		dataset.NewRecord(2), dataset.NewRecord(2), dataset.NewRecord(2),
	}
	c := newKMChecker(3, 2, records)
	if !c.TryAdd(1) || !c.TryAdd(2) {
		t.Error("disjoint terms with support ≥ k must coexist in a chunk")
	}
}

func TestKMCheckerM1(t *testing.T) {
	// m = 1: only singleton supports matter.
	records := []dataset.Record{
		dataset.NewRecord(1, 2), dataset.NewRecord(1, 2), dataset.NewRecord(1),
	}
	c := newKMChecker(2, 1, records)
	if !c.TryAdd(1) || !c.TryAdd(2) {
		t.Error("m=1 must ignore pair supports")
	}
	c = newKMChecker(3, 1, records)
	if !c.TryAdd(1) {
		t.Error("term with support 3 rejected at k=3")
	}
	if c.TryAdd(2) {
		t.Error("term with support 2 accepted at k=3")
	}
}

func TestKMCheckerM3(t *testing.T) {
	// Triple {1,2,3} appears twice; pairs appear 3 times.
	records := []dataset.Record{
		dataset.NewRecord(1, 2, 3),
		dataset.NewRecord(1, 2, 3),
		dataset.NewRecord(1, 2),
		dataset.NewRecord(1, 3),
		dataset.NewRecord(2, 3),
	}
	c := newKMChecker(3, 3, records)
	if !c.TryAdd(1) || !c.TryAdd(2) {
		t.Fatal("setup failed")
	}
	if c.TryAdd(3) {
		t.Error("triple with support 2 < 3 accepted at m=3")
	}
	c2 := newKMChecker(2, 3, records)
	if !c2.TryAdd(1) || !c2.TryAdd(2) || !c2.TryAdd(3) {
		t.Error("k=2 must accept the triple (support 2)")
	}
}

func TestKMCheckerMatchesFullCheck(t *testing.T) {
	// Property: whenever the incremental checker accepts a domain, the
	// from-scratch verifier agrees, across random record bags.
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 100; trial++ {
		var records []dataset.Record
		n := 10 + rng.IntN(20)
		for i := 0; i < n; i++ {
			terms := make([]dataset.Term, 1+rng.IntN(4))
			for j := range terms {
				terms[j] = dataset.Term(rng.IntN(6))
			}
			records = append(records, dataset.NewRecord(terms...))
		}
		k := 2 + rng.IntN(3)
		m := 1 + rng.IntN(3)
		c := newKMChecker(k, m, records)
		for term := dataset.Term(0); term < 6; term++ {
			if itemset.SupportOf(records, dataset.NewRecord(term)) < k {
				continue
			}
			c.TryAdd(term)
		}
		dom := c.Domain()
		if len(dom) == 0 {
			continue
		}
		// Project records and run the exhaustive check.
		var subrecords []dataset.Record
		for _, r := range records {
			if p := r.Intersect(dom); len(p) > 0 {
				subrecords = append(subrecords, p)
			}
		}
		if !IsChunkKMAnonymous(dom, subrecords, k, m) {
			t.Fatalf("trial %d: incremental checker accepted a non-%d^%d-anonymous domain %v", trial, k, m, dom)
		}
	}
}

func TestKAnonChecker(t *testing.T) {
	records := []dataset.Record{
		dataset.NewRecord(1, 2), dataset.NewRecord(1, 2), dataset.NewRecord(1, 2),
		dataset.NewRecord(1), dataset.NewRecord(1), dataset.NewRecord(1),
	}
	c := newKAnonChecker(3, records)
	if !c.TryAdd(1) {
		t.Fatal("singleton domain {1} with 6 identical subrecords rejected")
	}
	// Adding 2 splits the projections into {1,2}×3 and {1}×3 — still 3-anonymous.
	if !c.TryAdd(2) {
		t.Error("domain {1,2} with groups of 3 rejected")
	}

	// Now a bag where adding term 2 creates a group of size 1.
	records = append(records, dataset.NewRecord(2))
	c = newKAnonChecker(3, records)
	if !c.TryAdd(1) {
		t.Fatal("setup")
	}
	if c.TryAdd(2) {
		t.Error("group {2}×1 < 3 accepted")
	}
	if !c.Domain().Equal(dataset.NewRecord(1)) {
		t.Errorf("failed TryAdd must not modify the domain, got %v", c.Domain())
	}
}

func TestIsChunkKAnonymous(t *testing.T) {
	dom := dataset.NewRecord(1, 2)
	ok := []dataset.Record{
		dataset.NewRecord(1, 2), dataset.NewRecord(1, 2),
		dataset.NewRecord(1), dataset.NewRecord(1),
	}
	if !IsChunkKAnonymous(dom, ok, 2) {
		t.Error("2-anonymous chunk rejected")
	}
	bad := append(ok, dataset.NewRecord(2))
	if IsChunkKAnonymous(dom, bad, 2) {
		t.Error("chunk with a singleton group accepted")
	}
	if !IsChunkKAnonymous(dom, nil, 5) {
		t.Error("empty chunk must be trivially k-anonymous")
	}
}

func TestInsertTerm(t *testing.T) {
	r := dataset.NewRecord(2, 5)
	r = insertTerm(r, 3)
	if !r.Equal(dataset.NewRecord(2, 3, 5)) {
		t.Errorf("insert middle: %v", r)
	}
	r = insertTerm(r, 1)
	r = insertTerm(r, 9)
	if !r.Equal(dataset.NewRecord(1, 2, 3, 5, 9)) {
		t.Errorf("insert ends: %v", r)
	}
	r = insertTerm(r, 3) // duplicate
	if !r.Equal(dataset.NewRecord(1, 2, 3, 5, 9)) {
		t.Errorf("duplicate insert changed record: %v", r)
	}
}
