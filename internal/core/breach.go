package core

import (
	"fmt"
	"slices"
	"sort"

	"disasso/internal/dataset"
)

// Cover-problem breach detection over the published form.
//
// k^m-anonymity (Guarantee 1) bounds how precisely an adversary can single
// out a *record*, but not how confidently they can link *terms across
// chunks*: follow-up work (Barakat et al., "On the Evaluation of the Privacy
// Breach in Disassociated Set-Valued Datasets"; Awad et al., "Safe
// Disassociation of Set-Valued Datasets") shows that chunk combinations can
// cover each other so tightly that an association is learned with
// probability above 1/k despite every chunk passing the k^m check.
//
// The detector works over the uniform-reconstruction model the package's
// reconstruction sampler implements: within one top-level cluster node,
// every chunk's subrecords are assigned to the slots of the range the chunk
// covers — a leaf's record chunks to that leaf's Size slots, a joint's
// shared chunks to the slots of all leaves under the joint — independently
// and uniformly, and each term-chunk term materializes in one uniformly
// chosen slot of its leaf (a term chunk discloses presence, not
// multiplicity, so one certain occurrence is the information actually
// published). Under that model, for an anchor term b known to the adversary
// (drawn from source i) and a candidate learned term a (from source l ≠ i):
//
//	P(record has a | record has b) = s_a / max(n_l, n_i)
//
// where s_a is a's subrecord support in its source and n_l, n_i are the
// covered range sizes (ranges nest, so the pair co-occurs only inside the
// smaller range, diluted over the larger). The association is a breach when
// that probability exceeds 1/k — evaluated exactly, by integer
// cross-multiplication, never in floating point.
//
// Pairs are complete: for any larger cross-chunk itemset T with anchor set
// B, every additional learned factor multiplies the probability by s/n ≤ 1
// and every extra anchor term only shrinks the range intersection, so
// P(T|B) ≤ P(a|b) for each single learned term a of T and single anchor b.
// A publication with no breaching pair therefore has no breaching itemset
// at any size — the exhaustive oracle in internal/breach re-derives this by
// brute-force enumeration.
type srcKind uint8

const (
	srcRecordChunk srcKind = iota
	srcTermChunk
	srcShared
)

// breachSrc is one association source of a top-level cluster node: a record
// chunk, a leaf's term chunk, or a joint's shared chunk, with the slot range
// it covers and the subrecord support of each of its terms.
type breachSrc struct {
	kind  srcKind
	where string       // canonical locus, stable across runs and restarts
	leaf  *Cluster     // owning leaf for record/term-chunk sources
	node  *ClusterNode // owning joint for shared sources
	chunk int          // chunk index within the owner (record/shared kinds)
	lo, n int          // covered slot range [lo, lo+n)
	terms dataset.Record
	sup   []int // per terms[i]: subrecords containing it (1 for term chunks)
}

// chunkSupports counts, per domain term, the subrecords containing it.
func chunkSupports(c *Chunk) []int {
	sup := make([]int, len(c.Domain))
	for _, sr := range c.Subrecords {
		for _, t := range sr {
			if i, ok := slices.BinarySearch(c.Domain, t); ok {
				sup[i]++
			}
		}
	}
	return sup
}

// collectSources enumerates the association sources of one top-level node in
// canonical order: leaves left to right (record chunks, then the term
// chunk), then each joint's shared chunks after its descendants. Slot
// offsets follow the in-order leaf layout, so a joint covers the contiguous
// range of its leaves.
func collectSources(root *ClusterNode) []breachSrc {
	var out []breachSrc
	leafIdx := 0
	var walk func(n *ClusterNode, lo int) int
	walk = func(n *ClusterNode, lo int) int {
		if n.IsLeaf() {
			cl := n.Simple
			for ci := range cl.RecordChunks {
				c := &cl.RecordChunks[ci]
				out = append(out, breachSrc{
					kind:  srcRecordChunk,
					where: fmt.Sprintf("leaf %d record chunk %d", leafIdx, ci),
					leaf:  cl, chunk: ci, lo: lo, n: cl.Size,
					terms: c.Domain, sup: chunkSupports(c),
				})
			}
			if len(cl.TermChunk) > 0 {
				sup := make([]int, len(cl.TermChunk))
				for i := range sup {
					sup[i] = 1
				}
				out = append(out, breachSrc{
					kind:  srcTermChunk,
					where: fmt.Sprintf("leaf %d term chunk", leafIdx),
					leaf:  cl, lo: lo, n: cl.Size,
					terms: cl.TermChunk, sup: sup,
				})
			}
			leafIdx++
			return lo + cl.Size
		}
		end := lo
		for _, c := range n.Children {
			end = walk(c, end)
		}
		for ci := range n.SharedChunks {
			c := &n.SharedChunks[ci]
			out = append(out, breachSrc{
				kind:  srcShared,
				where: fmt.Sprintf("joint at slots %d-%d shared chunk %d", lo, end-1, ci),
				node:  n, chunk: ci, lo: lo, n: end - lo,
				terms: c.Domain, sup: chunkSupports(c),
			})
		}
		return end
	}
	walk(root, 0)
	return out
}

func (s *breachSrc) overlaps(o *breachSrc) bool {
	return s.lo < o.lo+o.n && o.lo < s.lo+s.n
}

// Breach is one minimal cover-problem breach: knowing Anchor, an adversary
// learns Learned with probability Num/Den > 1/k. Where and AnchorWhere name
// the sources (chunks) the two terms come from in the canonical layout of
// the cluster's node; larger breaching itemsets always contain a breaching
// pair, so reporting pairs is complete.
type Breach struct {
	// Cluster is the top-level cluster index (set by BreachesOf; -1 when the
	// breach was detected on a bare node).
	Cluster     int          `json:"cluster"`
	Where       string       `json:"where"`
	AnchorWhere string       `json:"anchorWhere"`
	Anchor      dataset.Term `json:"anchor"`
	Learned     dataset.Term `json:"learned"`
	// Num/Den is the exact association probability s / max(n_l, n_a).
	Num int `json:"num"`
	Den int `json:"den"`
}

// breachSite is a detected breach together with the source indices it binds
// to; the repair loop consumes these.
type breachSite struct {
	Breach
	src, anchor int
}

// anchorTermIn returns the smallest term of src with positive support, other
// than a.
func anchorTermIn(src *breachSrc, a dataset.Term) (dataset.Term, bool) {
	for i, t := range src.terms {
		if t != a && src.sup[i] > 0 {
			return t, true
		}
	}
	return 0, false
}

// findAnchor picks the witness anchor for a heavy learned term: the
// overlapping source maximizing the association probability (smallest
// effective range), ties broken by canonical source order, then the
// smallest eligible term within it. Only anchors whose pair still clears
// the 1/k threshold qualify.
func findAnchor(srcs []breachSrc, li int, a dataset.Term, k, s int) (ai int, b dataset.Term, effN int, ok bool) {
	l := &srcs[li]
	ai = -1
	for i := range srcs {
		if i == li {
			continue
		}
		src := &srcs[i]
		if !l.overlaps(src) {
			continue
		}
		eff := max(l.n, src.n)
		if k*s <= eff {
			continue // diluted below threshold by the bigger range
		}
		if ai != -1 && eff >= effN {
			continue // canonical order: first source at the best range wins
		}
		if t, found := anchorTermIn(src, a); found {
			ai, b, effN = i, t, eff
		}
	}
	return ai, b, effN, ai != -1
}

// detectBreaches runs the pair detector over collected sources, returning
// breaches sorted by descending probability (exact cross-multiplication),
// then canonical source order, then learned term.
func detectBreaches(srcs []breachSrc, k int) []breachSite {
	var out []breachSite
	for li := range srcs {
		l := &srcs[li]
		// Term-chunk sources (s = 1, n = leaf size) are scanned too: the
		// pipeline keeps every leaf at Size ≥ k, so they never clear the
		// threshold there, but the detector must stay honest on arbitrary
		// hand-built nodes (the oracle enumerates them all the same).
		for ti, a := range l.terms {
			s := l.sup[ti]
			if k*s <= l.n {
				continue
			}
			ai, b, effN, ok := findAnchor(srcs, li, a, k, s)
			if !ok {
				continue // no co-locatable anchor: nothing to link a to
			}
			out = append(out, breachSite{
				Breach: Breach{
					Cluster: -1,
					Where:   l.where, AnchorWhere: srcs[ai].where,
					Anchor: b, Learned: a,
					Num: s, Den: effN,
				},
				src: li, anchor: ai,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		bi, bj := &out[i], &out[j]
		if d := bi.Num*bj.Den - bj.Num*bi.Den; d != 0 {
			return d > 0
		}
		if bi.src != bj.src {
			return bi.src < bj.src
		}
		return bi.Learned < bj.Learned
	})
	return out
}

// NodeBreaches reports every minimal cover-problem breach of one top-level
// cluster node at threshold 1/k, sorted by descending probability. The node
// is not modified. Results are deterministic for a fixed node.
func NodeBreaches(n *ClusterNode, k int) []Breach {
	sites := detectBreaches(collectSources(n), k)
	out := make([]Breach, len(sites))
	for i, s := range sites {
		out[i] = s.Breach
	}
	return out
}

// BreachesOf audits every top-level cluster of a publication, tagging each
// breach with its cluster index. Clusters are independent (no slot range
// spans two top-level nodes), so the audit is exactly the concatenation of
// per-node detections.
func BreachesOf(a *Anonymized) []Breach {
	var out []Breach
	for i, n := range a.Clusters {
		for _, b := range NodeBreaches(n, a.K) {
			b.Cluster = i
			out = append(out, b)
		}
	}
	return out
}
