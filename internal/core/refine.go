package core

import (
	"math/rand/v2"
	"slices"
	"sort"

	"disasso/internal/dataset"
	"disasso/internal/par"
)

// refineAlwaysReplan disables the join-plan memoization: every pass re-plans
// every adjacent pair from scratch, exactly as the reference (pre-incremental)
// engine did. The output must be byte-identical either way — the property
// tests compare the two paths. The default comes from the refine_replan build
// tag (see refine_hook_*.go); tests can also flip the variable directly.
var refineAlwaysReplan = refineAlwaysReplanDefault

// leafState is a simple cluster's mutable state during refinement: the
// published cluster (whose term chunk shrinks as refining terms move to
// shared chunks) plus the original records needed to build shared-chunk
// projections.
type leafState struct {
	records []dataset.Record
	cluster *Cluster

	// In-cluster term supports, cached because the records never change
	// while planJoin evaluates the same leaves across many passes and pairs.
	// The cache is built exactly once, before the leaf is shared across
	// concurrent planJoin calls; support is strict about that invariant.
	supTerms  []dataset.Term
	supCounts []int32
	termTotal int // Σ len(r) over records, bounds projection arenas
}

// newLeafState builds a leaf with its support cache lifted straight out of
// the cluster index VERPART already built: the posting-list lengths are the
// in-cluster supports. The index's slices are copied because the caller's
// scratch will reuse them.
func newLeafState(records []dataset.Record, cl *Cluster, ix *clusterIndex) *leafState {
	l := &leafState{records: records, cluster: cl}
	l.supTerms = make([]dataset.Term, len(ix.terms))
	copy(l.supTerms, ix.terms)
	l.supCounts = make([]int32, len(ix.postings))
	for i, p := range ix.postings {
		l.supCounts[i] = int32(len(p))
		l.termTotal += len(p)
	}
	return l
}

// ensureSupports builds the support cache. It must be called before the leaf
// is shared across concurrent planJoin calls.
func (l *leafState) ensureSupports() {
	if l.supTerms != nil {
		return
	}
	l.supTerms = collectTerms(l.records)
	l.supCounts = make([]int32, len(l.supTerms))
	for _, r := range l.records {
		l.termTotal += len(r)
		for _, t := range r {
			j, _ := slices.BinarySearch(l.supTerms, t)
			l.supCounts[j]++
		}
	}
}

// support returns the number of the leaf's records containing t. The cache
// must have been built (ensureSupports / newLeafState): lazily building it
// here would race when concurrent planJoin calls share the leaf, so a missing
// cache is a bug, not a condition to repair.
func (l *leafState) support(t dataset.Term) int {
	if l.supTerms == nil {
		panic("core: leafState.support called before ensureSupports; the cache must be built before planJoin shares the leaf across goroutines")
	}
	if i, ok := slices.BinarySearch(l.supTerms, t); ok {
		return int(l.supCounts[i])
	}
	return 0
}

// refNode is a work node of the cluster forest during refinement. Nodes are
// immutable while they sit in the top-level forest: a successful join
// consumes two nodes into a freshly allocated joint (whose leaves' term
// chunks are stripped at that moment) and nothing else ever mutates a node.
// Each node therefore carries a generation stamp and its aggregates —
// descendant leaves, total size, virtual term chunk, record-and-shared term
// domain — computed once at creation instead of being rederived every pass.
type refNode struct {
	leaf     *leafState     // non-nil for leaves
	children []*refNode     // non-nil for joints
	shared   []Chunk        // shared chunks of a joint
	virtTC   dataset.Record // cached virtual term chunk (union over leaves)

	gen       uint32         // generation stamp, unique per node state
	sz        int            // cached total record count over descendant leaves
	leafList  []*leafState   // cached descendant leaves, left to right
	trDomains dataset.Record // cached T^r: record- and shared-chunk domains of the subtree
	supTC     []int32        // per virtTC term: total support over the leaves whose term chunk holds it
}

func (n *refNode) leaves(dst []*leafState) []*leafState {
	if n.leaf != nil {
		return append(dst, n.leaf)
	}
	for _, c := range n.children {
		dst = c.leaves(dst)
	}
	return dst
}

// recordAndSharedDomains collects T^r: every term appearing in a record
// chunk of a descendant leaf or in a shared chunk of a descendant joint.
// into is a dense presence table indexed by term id (the pipeline runs in
// rank space), sized by the caller to at least maxNodeTerm()+1.
func (n *refNode) recordAndSharedDomains(into []bool) {
	if n.leaf != nil {
		for _, c := range n.leaf.cluster.RecordChunks {
			for _, t := range c.Domain {
				into[t] = true
			}
		}
		return
	}
	for _, c := range n.shared {
		for _, t := range c.Domain {
			into[t] = true
		}
	}
	for _, child := range n.children {
		child.recordAndSharedDomains(into)
	}
}

func (n *refNode) refreshVirtualTC() {
	var union dataset.Record
	for _, l := range n.leaves(nil) {
		union = union.Union(l.cluster.TermChunk)
	}
	n.virtTC = union
}

// initDerived computes the cached aggregates from the subtree. It runs once
// per root handed to refine (and in tryJoin); joints created by commit get
// their aggregates incrementally instead.
func (n *refNode) initDerived() {
	n.leafList = n.leaves(nil)
	n.sz = 0
	for _, l := range n.leafList {
		l.ensureSupports()
		n.sz += l.cluster.Size
	}
	n.refreshVirtualTC()
	n.refreshSupTC()
	tr := make([]bool, n.maxNodeTerm()+1)
	n.recordAndSharedDomains(tr)
	var terms dataset.Record
	for t, present := range tr {
		if present {
			terms = append(terms, dataset.Term(t))
		}
	}
	n.trDomains = terms
}

// refreshSupTC rebuilds the per-term support aggregate from the leaves: for
// each virtTC term, the total in-cluster support across the leaves whose term
// chunk still holds it (exactly the totals planJoin's eligibility check
// needs). virtTC must be fresh.
func (n *refNode) refreshSupTC() {
	n.supTC = make([]int32, len(n.virtTC))
	for _, l := range n.leafList {
		j, k := 0, 0
		for _, t := range l.cluster.TermChunk {
			for j < len(n.virtTC) && n.virtTC[j] < t {
				j++
			}
			if j == len(n.virtTC) || n.virtTC[j] != t {
				continue // unreachable: virtTC is the union of the term chunks
			}
			for k < len(l.supTerms) && l.supTerms[k] < t {
				k++
			}
			if k < len(l.supTerms) && l.supTerms[k] == t {
				n.supTC[j] += l.supCounts[k]
			}
		}
	}
}

// maxNodeTerm returns the largest term id appearing in the node's term
// chunks, record-chunk domains or shared-chunk domains (every term the
// refinement of this subtree can touch), or -1.
func (n *refNode) maxNodeTerm() int {
	maxT := -1
	upd := func(r dataset.Record) {
		if len(r) > 0 && int(r[len(r)-1]) > maxT {
			maxT = int(r[len(r)-1])
		}
	}
	if n.leaf != nil {
		upd(n.leaf.cluster.TermChunk)
		for _, c := range n.leaf.cluster.RecordChunks {
			upd(c.Domain)
		}
		return maxT
	}
	for _, c := range n.shared {
		upd(c.Domain)
	}
	for _, child := range n.children {
		if m := child.maxNodeTerm(); m > maxT {
			maxT = m
		}
	}
	return maxT
}

// Refine implements Algorithm REFINE (Section 4): it repeatedly orders the
// cluster forest by term-chunk contents and joins adjacent pairs whose
// refining terms satisfy the Equation 1 criterion, building k^m-anonymous
// (or, where Property 1 demands, k-anonymous) shared chunks, until a fixpoint.
// Sensitive terms never become refining terms: they must stay in term chunks
// (the l-diversity mode of Section 5).
//
// refine is the map-keyed convenience wrapper used by tests and standalone
// callers: it derives a dense term domain bound from the forest and defers to
// refineN. The pipeline calls refineN directly with the dataset's domain.
func refine(nodes []*refNode, k, m int, sensitive map[dataset.Term]bool, rng *rand.Rand, workers int) []*refNode {
	bits, nTerms := sensitiveBitsFor(nodes, sensitive)
	return refineN(nodes, k, m, bits, rng, workers, nTerms)
}

// sensitiveBitsFor derives the dense term-domain bound of a forest (every
// term the refinement can touch, plus the sensitive terms) and the sensitive
// map as a flat table over it.
func sensitiveBitsFor(nodes []*refNode, sensitive map[dataset.Term]bool) ([]bool, int) {
	maxT := -1
	for _, n := range nodes {
		if mt := n.maxNodeTerm(); mt > maxT {
			maxT = mt
		}
	}
	//lint:deterministic order-independent max reduction
	for t := range sensitive {
		if int(t) > maxT {
			maxT = int(t)
		}
	}
	bits := make([]bool, maxT+1)
	//lint:deterministic order-independent scatter into a dense boolean table
	for t, v := range sensitive {
		if v {
			bits[t] = true
		}
	}
	return bits, maxT + 1
}

// refineN is the incremental REFINE engine over a dense term domain: every
// term id is below nTerms and sensitive is indexed by term id.
//
// Each pass orders the forest and evaluates adjacent pairs, but planJoin is a
// pure function of its two subtrees and surviving nodes are never mutated —
// so verdicts are memoized by the nodes' generation stamps and a pass only
// re-plans pairs where at least one side is new since the verdict was
// recorded. With workers > 1 the not-yet-known pairs of a pass are planned
// concurrently; the subsequent left-to-right commit scan consumes exactly the
// pairs the sequential greedy scan would have, and the shuffle RNG is only
// consumed during the ordered commits, so the output is byte-identical for
// every worker count (and to the always-replan reference path).
func refineN(nodes []*refNode, k, m int, sensitive []bool, rng *rand.Rand, workers, nTerms int) []*refNode {
	e := &refineEngine{
		k: k, m: m, nTerms: nTerms, sensitive: sensitive, workers: workers,
		memo:     !refineAlwaysReplan,
		nilPlans: make(map[uint64]struct{}),
		order:    newOrderScratch(nTerms),
	}
	if workers < 1 {
		workers = 1
	}
	e.scratch = make([]*planScratch, workers)
	for _, n := range nodes {
		n.initDerived()
		n.gen = e.nextGen
		e.nextGen++
	}

	// The caller's slice is reordered (as the pre-incremental engine also
	// did) but never recycled as a pass buffer: only slices the engine
	// itself produced ping-pong with outBuf.
	ownNodes := false
	for {
		e.order.order(nodes)

		var plans []*joinPlan
		if e.workers > 1 && len(nodes) > 2 {
			plans = e.planPass(nodes)
		}

		modified := false
		out := e.outBuf[:0]
		i := 0
		for i < len(nodes) {
			if i+1 < len(nodes) {
				var p *joinPlan
				if plans != nil {
					p = plans[i]
				} else {
					p = e.planPair(nodes[i], nodes[i+1], 0)
				}
				if p != nil {
					j := p.commit(rng)
					j.gen = e.nextGen
					e.nextGen++
					out = append(out, j)
					i += 2
					modified = true
					continue
				}
			}
			out = append(out, nodes[i])
			i++
		}
		// Release this pass's plan pointers: committed plans and the stale
		// tail of the reused buffer would otherwise pin their cloned record
		// sets until the fixpoint ends.
		clear(e.plansBuf)
		if ownNodes {
			e.outBuf = nodes[:0]
		}
		nodes = out
		ownNodes = true
		if !modified {
			return nodes
		}
	}
}

// refineEngine carries the per-call state of one refineN run: the memoized
// join verdicts and the per-worker dense scratch pools.
type refineEngine struct {
	k, m      int
	nTerms    int
	sensitive []bool
	workers   int

	memo    bool
	nextGen uint32
	// nilPlans memoizes the known non-joinable pairs by (genA<<32 | genB).
	// Successful plans are never memoized: a non-nil verdict is always
	// consumed in the pass that computed it (the pair commits, or a
	// neighboring commit consumes one of its nodes), so its key retires
	// immediately and caching the plan would only pin its copied record
	// sets for the rest of the run.
	nilPlans map[uint64]struct{}

	order    *orderScratch
	scratch  []*planScratch
	plansBuf []*joinPlan
	needBuf  []int32
	outBuf   []*refNode
}

func pairKey(a, b *refNode) uint64 {
	return uint64(a.gen)<<32 | uint64(b.gen)
}

func (e *refineEngine) scratchFor(w int) *planScratch {
	if e.scratch[w] == nil {
		e.scratch[w] = newPlanScratch(e.nTerms)
	}
	return e.scratch[w]
}

// planPair returns the join verdict for one adjacent pair, consulting and
// feeding the memo.
func (e *refineEngine) planPair(a, b *refNode, worker int) *joinPlan {
	if !e.memo {
		return e.planJoin(a, b, e.scratchFor(worker))
	}
	key := pairKey(a, b)
	if _, ok := e.nilPlans[key]; ok {
		return nil
	}
	p := e.planJoin(a, b, e.scratchFor(worker))
	if p == nil {
		e.nilPlans[key] = struct{}{}
	}
	return p
}

// planPass speculatively evaluates every adjacent pair of the ordered forest
// concurrently, re-planning only the pairs without a memoized verdict.
func (e *refineEngine) planPass(nodes []*refNode) []*joinPlan {
	if cap(e.plansBuf) < len(nodes)-1 {
		e.plansBuf = make([]*joinPlan, len(nodes)-1)
	}
	plans := e.plansBuf[:len(nodes)-1]
	need := e.needBuf[:0]
	for i := 0; i+1 < len(nodes); i++ {
		plans[i] = nil
		if e.memo {
			if _, ok := e.nilPlans[pairKey(nodes[i], nodes[i+1])]; ok {
				continue
			}
		}
		need = append(need, int32(i))
	}
	e.needBuf = need
	par.DoWorker(e.workers, len(need), func(w, j int) {
		i := need[j]
		plans[i] = e.planJoin(nodes[i], nodes[i+1], e.scratchFor(w))
	})
	if e.memo {
		for _, i := range need {
			if plans[i] == nil {
				e.nilPlans[pairKey(nodes[i], nodes[i+1])] = struct{}{}
			}
		}
	}
	return plans
}

// orderScratch holds the dense state behind orderByTermChunks: the term-chunk
// supports and ranks live in flat arrays indexed by term id and every buffer
// is reused across passes.
type orderScratch struct {
	tcs     []int32        // term-chunk support per term id
	touched []dataset.Term // terms with tcs > 0, for sparse reset
	rank    []int32        // global rank per term id
	keys    [][]int32
	keyFlat []int32
	bucket  []int32 // per-rank node buckets (counting sort of key entries)
	cursor  []int32
	idx     []int
	tmp     []*refNode
}

func newOrderScratch(nTerms int) *orderScratch {
	return &orderScratch{
		tcs:  make([]int32, nTerms),
		rank: make([]int32, nTerms),
	}
}

// order sorts nodes so that clusters sharing frequently-recurring term-chunk
// terms become adjacent: each term gets a term-chunk support tcs(t) (the
// number of virtual term chunks it appears in), terms are ranked by
// descending tcs, and clusters compare lexicographically by their ranked
// term-chunk contents. Empty term chunks sort last.
func (o *orderScratch) order(nodes []*refNode) {
	touched := o.touched[:0]
	totalKey := 0
	for _, n := range nodes {
		totalKey += len(n.virtTC)
		for _, t := range n.virtTC {
			if o.tcs[t] == 0 {
				touched = append(touched, t)
			}
			o.tcs[t]++
		}
	}
	// Global rank: higher tcs first, then smaller term ID.
	slices.SortFunc(touched, func(a, b dataset.Term) int {
		if o.tcs[a] != o.tcs[b] {
			return int(o.tcs[b]) - int(o.tcs[a])
		}
		return int(a) - int(b)
	})
	o.touched = touched
	for i, t := range touched {
		o.rank[t] = int32(i)
	}

	// Node keys: each node's virtTC as ascending ranks. Instead of sorting
	// per node, scatter the nodes into per-rank buckets and emit bucket by
	// bucket — two linear passes produce every key already sorted.
	if cap(o.keyFlat) < totalKey {
		o.keyFlat = make([]int32, totalKey+totalKey/2)
		o.bucket = make([]int32, totalKey+totalKey/2)
	}
	flat := o.keyFlat[:totalKey]
	bucket := o.bucket[:totalKey]
	if cap(o.keys) < len(nodes) {
		o.keys = make([][]int32, len(nodes)+len(nodes)/2)
	}
	keys := o.keys[:len(nodes)]
	if cap(o.cursor) < len(touched)+1 {
		o.cursor = make([]int32, len(touched)+len(touched)/2+1)
	}
	cursor := o.cursor[:len(touched)+1]
	pos := int32(0)
	for r, t := range touched {
		cursor[r] = pos
		pos += o.tcs[t]
	}
	cursor[len(touched)] = pos
	for i, n := range nodes {
		for _, t := range n.virtTC {
			r := o.rank[t]
			bucket[cursor[r]] = int32(i)
			cursor[r]++
		}
	}
	// Carve per-node key slices out of flat, then walk the buckets in rank
	// order appending each rank to its nodes' keys.
	used := 0
	for i, n := range nodes {
		keys[i] = flat[used : used : used+len(n.virtTC)]
		used += len(n.virtTC)
	}
	for r := range touched {
		start := cursor[r] - o.tcs[touched[r]]
		for _, i := range bucket[start:cursor[r]] {
			keys[i] = append(keys[i], int32(r))
		}
	}

	if cap(o.idx) < len(nodes) {
		o.idx = make([]int, len(nodes))
	}
	idx := o.idx[:len(nodes)]
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		if len(ka) == 0 || len(kb) == 0 {
			return len(ka) > 0 && len(kb) == 0 // non-empty before empty
		}
		for x := 0; x < len(ka) && x < len(kb); x++ {
			if ka[x] != kb[x] {
				return ka[x] < kb[x]
			}
		}
		return len(ka) < len(kb)
	})
	if cap(o.tmp) < len(nodes) {
		o.tmp = make([]*refNode, len(nodes))
	}
	tmp := o.tmp[:len(nodes)]
	for i, j := range idx {
		tmp[i] = nodes[j]
	}
	copy(nodes, tmp)

	for _, t := range touched {
		o.tcs[t] = 0
	}
}

// orderByTermChunks is the standalone form used by tests: it sizes a scratch
// from the forest and orders through it.
func orderByTermChunks(nodes []*refNode) {
	maxT := -1
	for _, n := range nodes {
		for _, t := range n.virtTC {
			if int(t) > maxT {
				maxT = int(t)
			}
		}
	}
	newOrderScratch(maxT + 1).order(nodes)
}

// planScratch is one worker's dense scratch for planJoin: per-term tables
// indexed by term id (reset sparsely after each call) and reusable buffers
// for the intermediate term sets. Everything that escapes into a returned
// joinPlan is copied out, so the scratch can be reused immediately.
type planScratch struct {
	totalSup []int32 // total support per term id, zeroed via ts/exList after each plan
	excluded []bool  // Lemma 2 exclusions, cleaned via exList
	exList   []dataset.Term

	ts       dataset.Record
	eff      dataset.Record
	free     dataset.Record
	conflict dataset.Record
	placed   dataset.Record
	remain   dataset.Record
	leftover dataset.Record
	leaves   []*leafState
	contrib  []dataset.Record

	// Arenas for the per-plan term sets: contributions and masked
	// projections are built here and only copied out into the rare plans
	// that succeed, so the (dominant) rejected plans allocate nothing.
	contribArena dataset.Record
	maskedArena  dataset.Record
	masked       []dataset.Record

	ixs *indexScratch
}

func newPlanScratch(nTerms int) *planScratch {
	return &planScratch{
		totalSup: make([]int32, nTerms),
		excluded: make([]bool, nTerms),
		ixs:      newIndexScratch(nTerms),
	}
}

// joinPlan is the outcome of a successful planJoin: everything needed to
// materialize the joint cluster, with the two mutation steps (shuffling the
// shared-chunk subrecords, stripping placed terms from the leaves' term
// chunks) deferred to commit so planning stays pure and parallelizable.
type joinPlan struct {
	a, b    *refNode
	leaves  []*leafState
	contrib []dataset.Record // per leaf, its refining terms (post-exclusion)
	placed  dataset.Record   // terms placed into shared chunks, sorted
	masked  []dataset.Record
	domains []dataset.Record
}

// planJoin evaluates the Equation 1 criterion for joining nodes a and b and,
// if it holds, returns the join plan; otherwise it returns nil. It reads
// only the two nodes' subtrees and mutates nothing but its own scratch.
func (e *refineEngine) planJoin(a, b *refNode, scr *planScratch) *joinPlan {
	// Refining terms: common to the virtual term chunks of both sides,
	// excluding sensitive terms (which must remain disassociated from all
	// subrecords), and eligible: the total support across the two subtrees'
	// term chunks — read off the supTC aggregates, no leaf is touched — must
	// reach k, otherwise no k^m- or k-anonymous shared chunk can host the
	// term. Most rejected pairs die right here, in one merge of the two
	// virtual term chunks.
	ts := scr.ts[:0]
	{
		ra, rb := a.virtTC, b.virtTC
		i, j := 0, 0
		for i < len(ra) && j < len(rb) {
			switch {
			case ra[i] < rb[j]:
				i++
			case ra[i] > rb[j]:
				j++
			default:
				t := ra[i]
				if !e.sensitive[t] {
					if s := a.supTC[i] + b.supTC[j]; int(s) >= e.k {
						ts = append(ts, t)
						scr.totalSup[t] = s
					}
				}
				i, j = i+1, j+1
			}
		}
	}
	scr.ts = ts
	if len(ts) == 0 {
		return nil
	}
	defer func() {
		for _, t := range scr.ts {
			scr.totalSup[t] = 0
		}
		for _, t := range scr.exList {
			scr.totalSup[t] = 0
			scr.excluded[t] = false
		}
		scr.exList = scr.exList[:0]
	}()

	leaves := append(scr.leaves[:0], a.leafList...)
	leaves = append(leaves, b.leafList...)
	scr.leaves = leaves

	// Per-leaf contributions: the refining terms present in that leaf's term
	// chunk. A leaf that would end up with an empty term chunk while failing
	// the Lemma 2 subrecord-count condition retains its least frequent
	// refining term, preserving per-cluster validity (Lemma 3 relies on
	// Lemma 2 holding for each cluster independently).
	chunkTotal := 0
	for _, l := range leaves {
		chunkTotal += len(l.cluster.TermChunk)
	}
	if cap(scr.contribArena) < chunkTotal {
		scr.contribArena = make(dataset.Record, 0, chunkTotal+chunkTotal/2)
	}
	arena := scr.contribArena[:0]
	contrib := scr.contrib[:0]
	for _, l := range leaves {
		start := len(arena)
		arena = intersectAppend(arena, l.cluster.TermChunk, ts)
		contrib = append(contrib, dataset.Record(arena[start:len(arena):len(arena)]))
	}
	scr.contribArena = arena
	scr.contrib = contrib

	// Lemma 2 safety: a refining term moves out of *every* term chunk it
	// appears in (the paper's construction removes all T^s terms from the
	// initial clusters' term chunks), so a term is never simultaneously in a
	// term chunk and a shared chunk. If stripping a leaf's contributions
	// would empty its term chunk while the leaf fails the Lemma 2
	// subrecord-count condition, exclude that leaf's least frequent refining
	// term globally: it stays in term chunks everywhere. Exclusions only
	// enlarge later leaves' remaining term chunks, so one pass suffices.
	for i, l := range leaves {
		if len(contrib[i]) == 0 {
			continue
		}
		eff := scr.eff[:0]
		for _, t := range contrib[i] {
			if !scr.excluded[t] {
				eff = append(eff, t)
			}
		}
		scr.eff = eff
		if len(eff) == 0 {
			continue
		}
		// eff ⊆ contrib[i] ⊆ the leaf's term chunk, so stripping eff empties
		// the chunk iff |eff| = |term chunk|. A leaf may give up its whole
		// term chunk only if its record chunks alone satisfy Lemma 2; a
		// chunk-less cluster must always keep at least one term or its
		// records become unreconstructable.
		if len(eff) == len(l.cluster.TermChunk) &&
			(len(l.cluster.RecordChunks) == 0 || !lemma2Holds(l.cluster, e.k, e.m)) {
			keep := eff[0]
			for _, t := range eff {
				if l.support(t) < l.support(keep) {
					keep = t
				}
			}
			scr.excluded[keep] = true
			scr.exList = append(scr.exList, keep)
		}
	}
	if len(scr.exList) > 0 {
		// Dropping an excluded term from every contribution leaves the other
		// terms' occurrence sets — and so their total supports — unchanged,
		// so totalSup needs no recount.
		for i := range contrib {
			contrib[i] = dropExcluded(contrib[i], scr.excluded)
		}
		ts = dropExcluded(ts, scr.excluded)
		scr.ts = ts
	}
	if len(ts) == 0 {
		return nil
	}

	// Equation 1: join only if publishing the refining terms in shared
	// chunks attributes them to the joint's records at least as precisely as
	// the separate term chunks did.
	left := 0.0
	for _, t := range ts {
		left += float64(scr.totalSup[t])
	}
	left /= float64(a.sz + b.sz)
	uSum, pSum := 0, 0
	for i, l := range leaves {
		if len(contrib[i]) > 0 {
			uSum += len(contrib[i])
			pSum += l.cluster.Size
		}
	}
	if pSum == 0 {
		return nil
	}
	right := float64(uSum) / float64(pSum)
	if left < right {
		return nil
	}

	// Masked records: each record projected onto its own leaf's contribution
	// (CT_j ∩ T^s), so no record contributes the same projection twice. The
	// projections live in the scratch arena until the plan is known to
	// succeed.
	maskedBound := 0
	for i, l := range leaves {
		if len(contrib[i]) > 0 {
			maskedBound += l.termTotal
		}
	}
	if cap(scr.maskedArena) < maskedBound {
		scr.maskedArena = make(dataset.Record, 0, maskedBound+maskedBound/2)
	}
	mArena := scr.maskedArena[:0]
	masked := scr.masked[:0]
	for i, l := range leaves {
		if len(contrib[i]) == 0 {
			continue
		}
		for _, r := range l.records {
			start := len(mArena)
			mArena = intersectAppend(mArena, r, contrib[i])
			masked = append(masked, dataset.Record(mArena[start:len(mArena):len(mArena)]))
		}
	}
	scr.maskedArena = mArena
	scr.masked = masked

	// Property 1: refining terms also present in record/shared chunks of the
	// descendants need plain k-anonymous chunks; the rest need k^m. The
	// subtree domains T^r are cached on the nodes.
	free, conflict := scr.free[:0], scr.conflict[:0]
	for _, t := range ts {
		if a.trDomains.Contains(t) || b.trDomains.Contains(t) {
			conflict = append(conflict, t)
		} else {
			free = append(free, t)
		}
	}
	scr.free, scr.conflict = free, conflict

	// One dense index over the masked records backs every greedy pass of
	// both checker kinds (the passes run strictly one after another). The
	// index comes from the worker-owned scratch, so concurrent planJoin
	// calls never share it.
	ix := scr.ixs.build(masked)
	placed := scr.placed[:0]
	var domains []dataset.Record
	domains = append(domains, greedyDomains(free, scr, func() domainChecker {
		return newKMCheckerOnIndex(e.k, e.m, ix)
	}, &placed)...)
	domains = append(domains, greedyDomains(conflict, scr, func() domainChecker {
		return newKAnonCheckerOnIndex(e.k, ix)
	}, &placed)...)
	scr.placed = placed
	if len(domains) == 0 {
		return nil
	}

	// The plan escapes the scratch: copy the arena-backed sets out.
	return &joinPlan{a: a, b: b,
		leaves:  slices.Clone(leaves),
		contrib: cloneRecords(contrib),
		placed:  dataset.NewRecord(placed...),
		masked:  cloneRecords(masked),
		domains: domains}
}

// unionSupSubtract merges the parents' (virtTC, supTC) aggregates into the
// joint's: the union of the virtual term chunks minus the placed terms, with
// supports of common terms summed.
func unionSupSubtract(a, b *refNode, placed dataset.Record) (dataset.Record, []int32) {
	ra, rb := a.virtTC, b.virtTC
	tc := make(dataset.Record, 0, len(ra)+len(rb))
	sup := make([]int32, 0, len(ra)+len(rb))
	p := 0
	emit := func(t dataset.Term, s int32) {
		for p < len(placed) && placed[p] < t {
			p++
		}
		if p < len(placed) && placed[p] == t {
			return
		}
		tc = append(tc, t)
		sup = append(sup, s)
	}
	i, j := 0, 0
	for i < len(ra) && j < len(rb) {
		switch {
		case ra[i] < rb[j]:
			emit(ra[i], a.supTC[i])
			i++
		case ra[i] > rb[j]:
			emit(rb[j], b.supTC[j])
			j++
		default:
			emit(ra[i], a.supTC[i]+b.supTC[j])
			i, j = i+1, j+1
		}
	}
	for ; i < len(ra); i++ {
		emit(ra[i], a.supTC[i])
	}
	for ; j < len(rb); j++ {
		emit(rb[j], b.supTC[j])
	}
	return tc, sup
}

// intersectAppend appends a ∩ b (both sorted) to dst.
func intersectAppend(dst dataset.Record, a, b dataset.Record) dataset.Record {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i, j = i+1, j+1
		}
	}
	return dst
}

// cloneRecords deep-copies a record list into one flat backing allocation.
func cloneRecords(rs []dataset.Record) []dataset.Record {
	total := 0
	for _, r := range rs {
		total += len(r)
	}
	flat := make(dataset.Record, 0, total)
	out := make([]dataset.Record, len(rs))
	for i, r := range rs {
		start := len(flat)
		flat = append(flat, r...)
		out[i] = flat[start:len(flat):len(flat)]
	}
	return out
}

// tryJoin is the sequential form of planJoin + commit: it evaluates the join
// criterion and, on success, immediately materializes the joint node.
func tryJoin(a, b *refNode, k, m int, sensitive map[dataset.Term]bool, rng *rand.Rand) *refNode {
	a.initDerived()
	b.initDerived()
	bits, nTerms := sensitiveBitsFor([]*refNode{a, b}, sensitive)
	e := &refineEngine{k: k, m: m, nTerms: nTerms, sensitive: bits,
		scratch: make([]*planScratch, 1)}
	p := e.planJoin(a, b, e.scratchFor(0))
	if p == nil {
		return nil
	}
	return p.commit(rng)
}

// commit materializes the planned joint node: it builds (and shuffles) the
// shared chunks, removes the placed terms from the leaves' term chunks and
// derives the joint's aggregates from its parents (the only state change the
// join introduces — every other node keeps its cached aggregates). Commits
// run sequentially in scan order, so rng consumption is deterministic.
func (p *joinPlan) commit(rng *rand.Rand) *refNode {
	sharedChunks := buildChunks(p.masked, p.domains, rng)
	for i, l := range p.leaves {
		if len(p.contrib[i]) == 0 || intersectCount(p.contrib[i], p.placed) == 0 {
			continue // nothing placed from this leaf: its term chunk is untouched
		}
		remove := p.contrib[i].Intersect(p.placed)
		l.cluster.TermChunk = l.cluster.TermChunk.Subtract(remove)
	}
	n := &refNode{children: []*refNode{p.a, p.b}, shared: sharedChunks}
	n.sz = p.a.sz + p.b.sz
	n.leafList = make([]*leafState, 0, len(p.a.leafList)+len(p.b.leafList))
	n.leafList = append(append(n.leafList, p.a.leafList...), p.b.leafList...)
	// The placed terms left every term chunk they appeared in, so the joint's
	// virtual term chunk is the parents' union minus them — and for a
	// surviving term the set of leaves holding it is unchanged, so its
	// support aggregate is simply the parents' sum.
	n.virtTC, n.supTC = unionSupSubtract(p.a, p.b, p.placed)
	tr := p.a.trDomains.Union(p.b.trDomains)
	for _, d := range p.domains {
		tr = tr.Union(d)
	}
	n.trDomains = tr
	return n
}

// dropExcluded filters the sorted record in place, dropping excluded terms.
func dropExcluded(r dataset.Record, excluded []bool) dataset.Record {
	out := r[:0]
	for _, t := range r {
		if !excluded[t] {
			out = append(out, t)
		}
	}
	return out
}

// domainChecker abstracts the two incremental chunk checkers so the greedy
// domain construction is shared between the k^m and the k-anonymous cases.
type domainChecker interface {
	TryAdd(t dataset.Term) bool
	Domain() dataset.Record
}

// greedyDomains runs VERPART-style passes over the terms (descending total
// support, from the scratch's dense table), starting a fresh checker per
// chunk, and appends every placed term to placed. Terms that fit nowhere are
// simply not placed.
func greedyDomains(terms dataset.Record, scr *planScratch, newChecker func() domainChecker, placed *dataset.Record) []dataset.Record {
	remain := append(scr.remain[:0], terms...)
	slices.SortFunc(remain, func(x, y dataset.Term) int {
		if scr.totalSup[x] != scr.totalSup[y] {
			return int(scr.totalSup[y]) - int(scr.totalSup[x])
		}
		return int(x) - int(y)
	})
	var domains []dataset.Record
	for len(remain) > 0 {
		checker := newChecker()
		leftover := scr.leftover[:0]
		for _, t := range remain {
			if checker.TryAdd(t) {
				*placed = append(*placed, t)
			} else {
				leftover = append(leftover, t)
			}
		}
		scr.leftover = leftover
		domain := checker.Domain()
		if len(domain) == 0 {
			break // nothing placeable: leave the rest in term chunks
		}
		domains = append(domains, domain)
		remain = append(remain[:0], leftover...)
	}
	scr.remain = remain
	return domains
}
