package core

import (
	"math/rand/v2"
	"slices"
	"sort"

	"disasso/internal/dataset"
	"disasso/internal/par"
)

// leafState is a simple cluster's mutable state during refinement: the
// published cluster (whose term chunk shrinks as refining terms move to
// shared chunks) plus the original records needed to build shared-chunk
// projections.
type leafState struct {
	records []dataset.Record
	cluster *Cluster

	// In-cluster term supports, cached because the records never change
	// while planJoin evaluates the same leaves across many passes and pairs.
	supTerms  []dataset.Term
	supCounts []int32
}

// ensureSupports builds the support cache. It must be called before the leaf
// is shared across concurrent planJoin calls.
func (l *leafState) ensureSupports() {
	if l.supTerms != nil {
		return
	}
	l.supTerms = collectTerms(l.records)
	l.supCounts = make([]int32, len(l.supTerms))
	for _, r := range l.records {
		for _, t := range r {
			j, _ := slices.BinarySearch(l.supTerms, t)
			l.supCounts[j]++
		}
	}
}

// support returns the number of the leaf's records containing t.
func (l *leafState) support(t dataset.Term) int {
	if l.supTerms == nil {
		l.ensureSupports()
	}
	if i, ok := slices.BinarySearch(l.supTerms, t); ok {
		return int(l.supCounts[i])
	}
	return 0
}

// refNode is a work node of the cluster forest during refinement.
type refNode struct {
	leaf     *leafState     // non-nil for leaves
	children []*refNode     // non-nil for joints
	shared   []Chunk        // shared chunks of a joint
	virtTC   dataset.Record // cached virtual term chunk (union over leaves)
}

func (n *refNode) leaves(dst []*leafState) []*leafState {
	if n.leaf != nil {
		return append(dst, n.leaf)
	}
	for _, c := range n.children {
		dst = c.leaves(dst)
	}
	return dst
}

func (n *refNode) size() int {
	total := 0
	for _, l := range n.leaves(nil) {
		total += l.cluster.Size
	}
	return total
}

// recordAndSharedDomains collects T^r: every term appearing in a record
// chunk of a descendant leaf or in a shared chunk of a descendant joint.
func (n *refNode) recordAndSharedDomains(into map[dataset.Term]bool) {
	if n.leaf != nil {
		for _, c := range n.leaf.cluster.RecordChunks {
			for _, t := range c.Domain {
				into[t] = true
			}
		}
		return
	}
	for _, c := range n.shared {
		for _, t := range c.Domain {
			into[t] = true
		}
	}
	for _, child := range n.children {
		child.recordAndSharedDomains(into)
	}
}

func (n *refNode) refreshVirtualTC() {
	var union dataset.Record
	for _, l := range n.leaves(nil) {
		union = union.Union(l.cluster.TermChunk)
	}
	n.virtTC = union
}

// Refine implements Algorithm REFINE (Section 4): it repeatedly orders the
// cluster forest by term-chunk contents and joins adjacent pairs whose
// refining terms satisfy the Equation 1 criterion, building k^m-anonymous
// (or, where Property 1 demands, k-anonymous) shared chunks, until a fixpoint.
// Sensitive terms never become refining terms: they must stay in term chunks
// (the l-diversity mode of Section 5).
//
// With workers > 1 each pass speculatively evaluates every adjacent pair
// concurrently: planJoin is pure, so the plans can be computed in any order,
// and the subsequent left-to-right commit scan consumes exactly the pairs the
// sequential greedy scan would have (a failed sequential attempt mutates
// nothing and a successful one only touches the two nodes it consumes, which
// the scan then skips). The shuffle RNG is only consumed during the ordered
// commits, so the output is byte-identical for every worker count.
func refine(nodes []*refNode, k, m int, sensitive map[dataset.Term]bool, rng *rand.Rand, workers int) []*refNode {
	// The support caches must exist before leaves are shared across
	// concurrent planJoin calls (adjacent pairs overlap in one node).
	for _, n := range nodes {
		for _, l := range n.leaves(nil) {
			l.ensureSupports()
		}
	}
	for {
		for _, n := range nodes {
			n.refreshVirtualTC()
		}
		orderByTermChunks(nodes)

		var plans []*joinPlan
		if workers > 1 && len(nodes) > 2 {
			plans = make([]*joinPlan, len(nodes)-1)
			par.Do(workers, len(plans), func(i int) {
				plans[i] = planJoin(nodes[i], nodes[i+1], k, m, sensitive)
			})
		}

		modified := false
		out := make([]*refNode, 0, len(nodes))
		i := 0
		for i < len(nodes) {
			if i+1 < len(nodes) {
				var p *joinPlan
				if plans != nil {
					p = plans[i]
				} else {
					p = planJoin(nodes[i], nodes[i+1], k, m, sensitive)
				}
				if p != nil {
					out = append(out, p.commit(rng))
					i += 2
					modified = true
					continue
				}
			}
			out = append(out, nodes[i])
			i++
		}
		nodes = out
		if !modified {
			return nodes
		}
	}
}

// orderByTermChunks sorts nodes so that clusters sharing frequently-recurring
// term-chunk terms become adjacent: each term gets a term-chunk support
// tcs(t) (the number of virtual term chunks it appears in), terms are ranked
// by descending tcs, and clusters compare lexicographically by their ranked
// term-chunk contents. Empty term chunks sort last.
func orderByTermChunks(nodes []*refNode) {
	tcs := make(map[dataset.Term]int)
	for _, n := range nodes {
		for _, t := range n.virtTC {
			tcs[t]++
		}
	}
	// Global rank: higher tcs first, then smaller term ID.
	terms := make([]dataset.Term, 0, len(tcs))
	for t := range tcs {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		if tcs[terms[i]] != tcs[terms[j]] {
			return tcs[terms[i]] > tcs[terms[j]]
		}
		return terms[i] < terms[j]
	})
	rank := make(map[dataset.Term]int, len(terms))
	for i, t := range terms {
		rank[t] = i
	}

	keys := make([][]int, len(nodes))
	for i, n := range nodes {
		key := make([]int, 0, len(n.virtTC))
		for _, t := range n.virtTC {
			key = append(key, rank[t])
		}
		sort.Ints(key)
		keys[i] = key
	}
	idx := make([]int, len(nodes))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		if len(ka) == 0 || len(kb) == 0 {
			return len(ka) > 0 && len(kb) == 0 // non-empty before empty
		}
		for x := 0; x < len(ka) && x < len(kb); x++ {
			if ka[x] != kb[x] {
				return ka[x] < kb[x]
			}
		}
		return len(ka) < len(kb)
	})
	reordered := make([]*refNode, len(nodes))
	for i, j := range idx {
		reordered[i] = nodes[j]
	}
	copy(nodes, reordered)
}

// joinPlan is the outcome of a successful planJoin: everything needed to
// materialize the joint cluster, with the two mutation steps (shuffling the
// shared-chunk subrecords, stripping placed terms from the leaves' term
// chunks) deferred to commit so planning stays pure and parallelizable.
type joinPlan struct {
	a, b    *refNode
	leaves  []*leafState
	contrib []dataset.Record // per leaf, its refining terms (post-exclusion)
	placed  map[dataset.Term]bool
	masked  []dataset.Record
	domains []dataset.Record
}

// planJoin evaluates the Equation 1 criterion for joining nodes a and b and,
// if it holds, returns the join plan; otherwise it returns nil. It reads
// only the two nodes' subtrees and mutates nothing.
func planJoin(a, b *refNode, k, m int, sensitive map[dataset.Term]bool) *joinPlan {
	// Refining terms: common to the virtual term chunks of both sides,
	// excluding sensitive terms (which must remain disassociated from all
	// subrecords).
	ts0 := withoutExcluded(a.virtTC.Intersect(b.virtTC), sensitive)
	if len(ts0) == 0 {
		return nil
	}
	leaves := append(a.leaves(nil), b.leaves(nil)...)

	// Per-leaf contributions: the refining terms present in that leaf's term
	// chunk. A leaf that would end up with an empty term chunk while failing
	// the Lemma 2 subrecord-count condition retains its least frequent
	// refining term, preserving per-cluster validity (Lemma 3 relies on
	// Lemma 2 holding for each cluster independently).
	contrib := make([]dataset.Record, len(leaves))
	for i, l := range leaves {
		contrib[i] = l.cluster.TermChunk.Intersect(ts0)
	}

	// Eligibility: total support across contributing leaves must reach k,
	// otherwise no k^m- or k-anonymous shared chunk can host the term. The
	// per-leaf supports come from the leafState cache.
	totalSup := make(map[dataset.Term]int)
	for i, l := range leaves {
		for _, t := range contrib[i] {
			totalSup[t] += l.support(t)
		}
	}
	var ts dataset.Record
	for _, t := range ts0 {
		if totalSup[t] >= k {
			ts = append(ts, t)
		}
	}
	if len(ts) == 0 {
		return nil
	}
	for i := range contrib {
		contrib[i] = contrib[i].Intersect(ts)
	}

	// Lemma 2 safety: a refining term moves out of *every* term chunk it
	// appears in (the paper's construction removes all T^s terms from the
	// initial clusters' term chunks), so a term is never simultaneously in a
	// term chunk and a shared chunk. If stripping a leaf's contributions
	// would empty its term chunk while the leaf fails the Lemma 2
	// subrecord-count condition, exclude that leaf's least frequent refining
	// term globally: it stays in term chunks everywhere. Exclusions only
	// enlarge later leaves' remaining term chunks, so one pass suffices.
	excluded := make(map[dataset.Term]bool)
	for i, l := range leaves {
		if len(contrib[i]) == 0 {
			continue
		}
		eff := withoutExcluded(contrib[i], excluded)
		if len(eff) == 0 {
			continue
		}
		remaining := l.cluster.TermChunk.Subtract(eff)
		// A leaf may give up its whole term chunk only if its record chunks
		// alone satisfy Lemma 2; a chunk-less cluster must always keep at
		// least one term or its records become unreconstructable.
		if len(remaining) == 0 &&
			(len(l.cluster.RecordChunks) == 0 || !lemma2Holds(l.cluster, k, m)) {
			keep := eff[0]
			for _, t := range eff {
				if l.support(t) < l.support(keep) {
					keep = t
				}
			}
			excluded[keep] = true
		}
	}
	if len(excluded) > 0 {
		for i := range contrib {
			contrib[i] = withoutExcluded(contrib[i], excluded)
		}
		ts = withoutExcluded(ts, excluded)
		totalSup = make(map[dataset.Term]int)
		for i, l := range leaves {
			for _, t := range contrib[i] {
				totalSup[t] += l.support(t)
			}
		}
	}
	if len(ts) == 0 {
		return nil
	}

	// Equation 1: join only if publishing the refining terms in shared
	// chunks attributes them to the joint's records at least as precisely as
	// the separate term chunks did.
	left := 0.0
	for _, t := range ts {
		left += float64(totalSup[t])
	}
	left /= float64(a.size() + b.size())
	uSum, pSum := 0, 0
	for i, l := range leaves {
		if len(contrib[i]) > 0 {
			uSum += len(contrib[i])
			pSum += l.cluster.Size
		}
	}
	if pSum == 0 {
		return nil
	}
	right := float64(uSum) / float64(pSum)
	if left < right {
		return nil
	}

	// Masked records: each record projected onto its own leaf's contribution
	// (CT_j ∩ T^s), so no record contributes the same projection twice.
	var masked []dataset.Record
	for i, l := range leaves {
		if len(contrib[i]) == 0 {
			continue
		}
		for _, r := range l.records {
			masked = append(masked, r.Intersect(contrib[i]))
		}
	}

	// Property 1: refining terms also present in record/shared chunks of the
	// descendants need plain k-anonymous chunks; the rest need k^m.
	tr := make(map[dataset.Term]bool)
	a.recordAndSharedDomains(tr)
	b.recordAndSharedDomains(tr)
	var free, conflict dataset.Record
	for _, t := range ts {
		if tr[t] {
			conflict = append(conflict, t)
		} else {
			free = append(free, t)
		}
	}

	// One dense index over the masked records backs every greedy pass of
	// both checker kinds (the passes run strictly one after another). The
	// index is plan-local, so concurrent planJoin calls never share scratch.
	ix := buildClusterIndex(masked)
	placed := make(map[dataset.Term]bool)
	var domains []dataset.Record
	domains = append(domains, greedyDomains(free, totalSup, func() domainChecker {
		return newKMCheckerOnIndex(k, m, ix)
	}, placed)...)
	domains = append(domains, greedyDomains(conflict, totalSup, func() domainChecker {
		return newKAnonCheckerOnIndex(k, ix)
	}, placed)...)
	if len(domains) == 0 {
		return nil
	}

	return &joinPlan{a: a, b: b, leaves: leaves, contrib: contrib,
		placed: placed, masked: masked, domains: domains}
}

// tryJoin is the sequential form of planJoin + commit: it evaluates the join
// criterion and, on success, immediately materializes the joint node.
func tryJoin(a, b *refNode, k, m int, sensitive map[dataset.Term]bool, rng *rand.Rand) *refNode {
	p := planJoin(a, b, k, m, sensitive)
	if p == nil {
		return nil
	}
	return p.commit(rng)
}

// commit materializes the planned joint node: it builds (and shuffles) the
// shared chunks and removes the placed terms from the leaves' term chunks.
// Commits run sequentially in scan order, so rng consumption is
// deterministic.
func (p *joinPlan) commit(rng *rand.Rand) *refNode {
	sharedChunks := buildChunks(p.masked, p.domains, rng)
	for i, l := range p.leaves {
		var remove dataset.Record
		for _, t := range p.contrib[i] {
			if p.placed[t] {
				remove = append(remove, t)
			}
		}
		l.cluster.TermChunk = l.cluster.TermChunk.Subtract(remove)
	}
	return &refNode{children: []*refNode{p.a, p.b}, shared: sharedChunks}
}

// withoutExcluded filters a sorted term set, dropping excluded terms.
func withoutExcluded(r dataset.Record, excluded map[dataset.Term]bool) dataset.Record {
	out := make(dataset.Record, 0, len(r))
	for _, t := range r {
		if !excluded[t] {
			out = append(out, t)
		}
	}
	return out
}

// domainChecker abstracts the two incremental chunk checkers so the greedy
// domain construction is shared between the k^m and the k-anonymous cases.
type domainChecker interface {
	TryAdd(t dataset.Term) bool
	Domain() dataset.Record
}

// greedyDomains runs VERPART-style passes over the terms (descending total
// support), starting a fresh checker per chunk, and records every placed
// term. Terms that fit nowhere are simply not placed.
func greedyDomains(terms dataset.Record, totalSup map[dataset.Term]int, newChecker func() domainChecker, placed map[dataset.Term]bool) []dataset.Record {
	remain := terms.Clone()
	sort.Slice(remain, func(i, j int) bool {
		if totalSup[remain[i]] != totalSup[remain[j]] {
			return totalSup[remain[i]] > totalSup[remain[j]]
		}
		return remain[i] < remain[j]
	})
	var domains []dataset.Record
	for len(remain) > 0 {
		checker := newChecker()
		var leftover dataset.Record
		for _, t := range remain {
			if checker.TryAdd(t) {
				placed[t] = true
			} else {
				leftover = append(leftover, t)
			}
		}
		domain := checker.Domain()
		if len(domain) == 0 {
			break // nothing placeable: leave the rest in term chunks
		}
		domains = append(domains, domain)
		remain = leftover
	}
	return domains
}
