package core

import (
	"bytes"
	"testing"
)

// fuzzSeedPublication builds a small real publication for the fuzz corpora.
func fuzzSeedPublication(tb testing.TB) *Anonymized {
	tb.Helper()
	d := genDataset(2, 6, 60)
	a, err := Anonymize(d, Options{K: 3, M: 2, MaxClusterSize: 8, Seed: 4})
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

// FuzzReadBinary feeds arbitrary bytes to the binary decoder: it must never
// panic, and any input it accepts must re-encode canonically (encode →
// decode → encode is a fixpoint).
func FuzzReadBinary(f *testing.F) {
	a := fuzzSeedPublication(f)
	var seed bytes.Buffer
	if err := WriteBinary(&seed, a); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("DSA1"))
	f.Add([]byte("DSA1\x03\x02\x00"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01, 0x02}, 2000)) // deeply nested joint tags
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc1 bytes.Buffer
		if err := WriteBinary(&enc1, decoded); err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		again, err := ReadBinary(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded publication rejected: %v", err)
		}
		var enc2 bytes.Buffer
		if err := WriteBinary(&enc2, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("binary round trip is not a fixpoint")
		}
	})
}

// FuzzReadJSON is the same contract for the JSON decoder.
func FuzzReadJSON(f *testing.F) {
	a := fuzzSeedPublication(f)
	var seed bytes.Buffer
	if err := WriteJSON(&seed, a); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`{"K":2,"M":1,"Clusters":null}`))
	f.Add([]byte(`{"K":2,"M":1,"Clusters":[{"Simple":null,"Children":null,"SharedChunks":null}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc1 bytes.Buffer
		if err := WriteJSON(&enc1, decoded); err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		again, err := ReadJSON(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded publication rejected: %v", err)
		}
		var enc2 bytes.Buffer
		if err := WriteJSON(&enc2, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("JSON round trip is not a fixpoint")
		}
	})
}
