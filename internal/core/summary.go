package core

import (
	"fmt"
	"strings"
)

// Summary describes the shape of a published dataset — the instrumentation a
// data publisher inspects before release (how much structure survived in
// record chunks versus how much was pushed to term chunks).
type Summary struct {
	// Records is the total number of original records covered.
	Records int
	// Leaves counts simple clusters; Joints counts joint (interior) nodes.
	Leaves int
	Joints int
	// MaxDepth is the deepest joint nesting (0 for a forest of leaves).
	MaxDepth int
	// RecordChunks / SharedChunks count the published chunks by kind.
	RecordChunks int
	SharedChunks int
	// Subrecords counts non-empty subrecords across all chunks.
	Subrecords int
	// TermChunkEntries sums term-chunk sizes over leaves (a term counts once
	// per cluster whose term chunk holds it).
	TermChunkEntries int
	// DistinctTerms is the size of the published domain.
	DistinctTerms int
	// MinClusterSize / MaxClusterSize / AvgClusterSize describe the leaves.
	MinClusterSize int
	MaxClusterSize int
	AvgClusterSize float64
}

// Stats computes the summary in one walk over the forest.
func (a *Anonymized) Stats() Summary {
	s := Summary{}
	for _, n := range a.Clusters {
		depth := summarizeNode(n, &s, 0)
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
	}
	s.Records = a.NumRecords()
	s.DistinctTerms = len(a.Domain())
	if s.Leaves > 0 {
		total := 0
		for _, leaf := range a.AllLeaves() {
			total += leaf.Size
		}
		s.AvgClusterSize = float64(total) / float64(s.Leaves)
	}
	return s
}

// summarizeNode accumulates counts and returns the node's joint depth.
func summarizeNode(n *ClusterNode, s *Summary, depth int) int {
	if n.IsLeaf() {
		cl := n.Simple
		s.Leaves++
		s.RecordChunks += len(cl.RecordChunks)
		for _, c := range cl.RecordChunks {
			s.Subrecords += len(c.Subrecords)
		}
		s.TermChunkEntries += len(cl.TermChunk)
		if s.MinClusterSize == 0 || cl.Size < s.MinClusterSize {
			s.MinClusterSize = cl.Size
		}
		if cl.Size > s.MaxClusterSize {
			s.MaxClusterSize = cl.Size
		}
		return depth
	}
	s.Joints++
	s.SharedChunks += len(n.SharedChunks)
	for _, c := range n.SharedChunks {
		s.Subrecords += len(c.Subrecords)
	}
	deepest := depth
	for _, child := range n.Children {
		if d := summarizeNode(child, s, depth+1); d > deepest {
			deepest = d
		}
	}
	return deepest
}

// String renders the summary as a compact multi-line report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "records:           %d\n", s.Records)
	fmt.Fprintf(&b, "clusters:          %d leaves, %d joints (depth %d)\n", s.Leaves, s.Joints, s.MaxDepth)
	fmt.Fprintf(&b, "cluster sizes:     min %d, max %d, avg %.1f\n", s.MinClusterSize, s.MaxClusterSize, s.AvgClusterSize)
	fmt.Fprintf(&b, "record chunks:     %d\n", s.RecordChunks)
	fmt.Fprintf(&b, "shared chunks:     %d\n", s.SharedChunks)
	fmt.Fprintf(&b, "subrecords:        %d\n", s.Subrecords)
	fmt.Fprintf(&b, "term-chunk entries: %d\n", s.TermChunkEntries)
	fmt.Fprintf(&b, "distinct terms:    %d", s.DistinctTerms)
	return b.String()
}
