package core

import (
	"strings"
	"testing"

	"disasso/internal/dataset"
)

func TestStatsOnFigure2(t *testing.T) {
	d := dataset.FromRecords(figure2Records())
	a, err := Anonymize(d, Options{K: 3, M: 2, MaxClusterSize: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.Records != 10 {
		t.Errorf("Records = %d", s.Records)
	}
	if s.Leaves < 1 {
		t.Errorf("Leaves = %d", s.Leaves)
	}
	if s.DistinctTerms != 12 {
		t.Errorf("DistinctTerms = %d, want 12", s.DistinctTerms)
	}
	if s.MinClusterSize <= 0 || s.MaxClusterSize < s.MinClusterSize {
		t.Errorf("cluster sizes: min %d max %d", s.MinClusterSize, s.MaxClusterSize)
	}
	if s.AvgClusterSize <= 0 {
		t.Errorf("AvgClusterSize = %v", s.AvgClusterSize)
	}
	// Totals must agree with direct walks.
	if got := len(a.AllChunks()); got != s.RecordChunks+s.SharedChunks {
		t.Errorf("chunk total %d vs %d+%d", got, s.RecordChunks, s.SharedChunks)
	}
	sub := 0
	for _, c := range a.AllChunks() {
		sub += len(c.Subrecords)
	}
	if sub != s.Subrecords {
		t.Errorf("subrecords %d vs %d", sub, s.Subrecords)
	}
}

func TestStatsDepthAndJoints(t *testing.T) {
	leaf := func(size int) *ClusterNode {
		return &ClusterNode{Simple: &Cluster{Size: size, TermChunk: dataset.NewRecord(1)}}
	}
	nested := &ClusterNode{
		Children: []*ClusterNode{
			{Children: []*ClusterNode{leaf(3), leaf(4)}},
			leaf(5),
		},
	}
	a := &Anonymized{K: 3, M: 2, Clusters: []*ClusterNode{nested}}
	s := a.Stats()
	if s.Joints != 2 || s.Leaves != 3 {
		t.Errorf("joints %d leaves %d", s.Joints, s.Leaves)
	}
	if s.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d, want 2", s.MaxDepth)
	}
	if s.MinClusterSize != 3 || s.MaxClusterSize != 5 {
		t.Errorf("sizes: %d..%d", s.MinClusterSize, s.MaxClusterSize)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Records: 10, Leaves: 2, RecordChunks: 3}
	out := s.String()
	for _, want := range []string{"records:", "10", "record chunks:", "3"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}
