package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// The published form serializes as JSON: the exported Chunk / Cluster /
// ClusterNode fields are the wire format, so a disassociated dataset written
// by cmd/disasso can be archived, diffed and re-verified later.

// WriteJSON writes the anonymized dataset as indented JSON. It is the
// monolithic composition of the chunked JSONClusterWriter, so a publication
// assembled cluster by cluster is byte-identical to this path; the marshal
// tests pin both against the json.Encoder reference form.
func WriteJSON(w io.Writer, a *Anonymized) error {
	jw, err := NewJSONClusterWriter(w, a.K, a.M)
	if err != nil {
		return fmt.Errorf("core: encode: %w", err)
	}
	for _, n := range a.Clusters {
		if err := jw.Append(n); err != nil {
			return fmt.Errorf("core: encode: %w", err)
		}
	}
	if err := jw.Close(); err != nil {
		return fmt.Errorf("core: encode: %w", err)
	}
	return nil
}

// ReadJSON parses an anonymized dataset written by WriteJSON and validates
// its basic shape (parameters present, leaf/joint structure consistent).
func ReadJSON(r io.Reader) (*Anonymized, error) {
	var a Anonymized
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("core: decode: %w", err)
	}
	if a.K < 2 || a.M < 1 {
		return nil, fmt.Errorf("core: decoded parameters k=%d m=%d invalid", a.K, a.M)
	}
	for i, n := range a.Clusters {
		if err := checkShape(n); err != nil {
			return nil, fmt.Errorf("core: cluster %d: %w", i, err)
		}
	}
	return &a, nil
}

func checkShape(n *ClusterNode) error {
	if n == nil {
		return fmt.Errorf("nil node")
	}
	if n.IsLeaf() {
		if len(n.Children) > 0 || len(n.SharedChunks) > 0 {
			return fmt.Errorf("leaf carries joint fields")
		}
		return nil
	}
	if len(n.Children) < 2 {
		return fmt.Errorf("joint with %d children", len(n.Children))
	}
	for _, c := range n.Children {
		if err := checkShape(c); err != nil {
			return err
		}
	}
	return nil
}
