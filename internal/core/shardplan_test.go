package core

import (
	"bytes"
	"testing"

	"disasso/internal/dataset"
)

// TestShardPlanPreservesHorPart pins the property the whole sharded design
// rests on: cutting the split tree with planShards and continuing HORPART
// inside each shard (with the split-path terms ignored) yields exactly the
// clusters, in exactly the order, that one global HORPART run produces.
func TestShardPlanPreservesHorPart(t *testing.T) {
	for _, S := range []int{12, 30, 64, 200} {
		d := genDataset(11, 7, 260)
		dom := dataset.NewDenseDomain(d.Records)
		dense := dom.RemapAll(d.Records)
		exclude := make([]bool, dom.Len())

		global := horPartN(dense, dense, dom.Len(), exclude, 12, 1)
		shards := planShards(dense, dom.Len(), exclude, S, 3)

		total := 0
		for _, sh := range shards {
			total += len(sh.Records)
		}
		if total != len(dense) {
			t.Fatalf("S=%d: shards cover %d of %d records", S, total, len(dense))
		}

		var sharded [][]dataset.Record
		for _, sh := range shards {
			sharded = append(sharded, horPartN(sh.Records, sh.Records, dom.Len(), sh.Ignore, 12, 1)...)
		}
		if len(sharded) != len(global) {
			t.Fatalf("S=%d: %d sharded clusters vs %d global", S, len(sharded), len(global))
		}
		for i := range global {
			if len(global[i]) != len(sharded[i]) {
				t.Fatalf("S=%d: cluster %d sizes differ: %d vs %d", S, i, len(global[i]), len(sharded[i]))
			}
			for j := range global[i] {
				if !global[i][j].Equal(sharded[i][j]) {
					t.Fatalf("S=%d: cluster %d record %d differs", S, i, j)
				}
			}
		}
	}
}

// TestShardCut covers the decision kernel's edges: under-threshold nodes,
// ignored terms, the tie-break, and the lopsided-side guard.
func TestShardCut(t *testing.T) {
	ignore := make([]bool, 4)
	if _, _, split := ShardCut(10, []int32{5, 5, 0, 0}, ignore, 10, 2); split {
		t.Error("node at maxShard split")
	}
	if _, _, split := ShardCut(10, []int32{5, 5, 0, 0}, ignore, 0, 2); split {
		t.Error("maxShard=0 split")
	}
	term, sup, split := ShardCut(10, []int32{5, 5, 0, 3}, ignore, 9, 2)
	if !split || term != 0 || sup != 5 {
		t.Errorf("tie-break: got term=%d sup=%d split=%v, want 0/5/true", term, sup, split)
	}
	ignore[0] = true
	term, _, split = ShardCut(10, []int32{5, 5, 0, 3}, ignore, 9, 2)
	if !split || term != 1 {
		t.Errorf("ignored term still chosen: term=%d split=%v", term, split)
	}
	ignore[0] = false
	// With-side below k: support 1 < k=2.
	if _, _, split := ShardCut(10, []int32{1, 0, 0, 0}, ignore, 9, 2); split {
		t.Error("split with with-side below k")
	}
	// Without-side below k: 10-9 = 1 < 2.
	if _, _, split := ShardCut(10, []int32{9, 0, 0, 0}, ignore, 9, 2); split {
		t.Error("split with without-side below k")
	}
	// No usable term at all.
	if _, _, split := ShardCut(10, []int32{0, 0, 0, 0}, ignore, 9, 2); split {
		t.Error("split without any usable term")
	}
}

// TestAnonymizeShardedValid checks that sharded runs still publish a valid,
// record-complete dataset, that shard 0 output is stable against the
// unsharded path's prefix semantics (MaxShardRecords=0 ≡ historical bytes),
// and that sharded output is deterministic across worker counts.
func TestAnonymizeShardedValid(t *testing.T) {
	d := genDataset(5, 17, 300)
	base := Options{K: 3, M: 2, MaxClusterSize: 12, Seed: 7}

	unsharded, err := Anonymize(d, base)
	if err != nil {
		t.Fatal(err)
	}

	sharded := base
	sharded.MaxShardRecords = 60
	a, err := Anonymize(d, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRecords() != d.Len() {
		t.Fatalf("sharded run covers %d of %d records", a.NumRecords(), d.Len())
	}
	if got, want := a.NumRecords(), unsharded.NumRecords(); got != want {
		t.Fatalf("record counts differ: %d vs %d", got, want)
	}

	want := encodeAnonymized(t, a)
	for _, workers := range []int{2, 8} {
		opts := sharded
		opts.Parallel = workers
		got, err := Anonymize(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeAnonymized(t, got), want) {
			t.Errorf("sharded output differs at Parallel=%d", workers)
		}
	}
}
