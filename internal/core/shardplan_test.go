package core

import (
	"bytes"
	"testing"

	"disasso/internal/dataset"
)

// TestShardPlanPreservesHorPart pins the property the whole sharded design
// rests on: cutting the split tree with planShards and continuing HORPART
// inside each shard (with the split-path terms ignored) yields exactly the
// clusters, in exactly the order, that one global HORPART run produces.
func TestShardPlanPreservesHorPart(t *testing.T) {
	for _, S := range []int{12, 30, 64, 200} {
		d := genDataset(11, 7, 260)
		dom := dataset.NewDenseDomain(d.Records)
		dense := dom.RemapAll(d.Records)
		exclude := make([]bool, dom.Len())

		global := horPartN(dense, dense, dom.Len(), exclude, 12, 1)
		shards := planShards(dense, dom.Len(), exclude, S, 3)

		total := 0
		for _, sh := range shards {
			total += len(sh.Records)
		}
		if total != len(dense) {
			t.Fatalf("S=%d: shards cover %d of %d records", S, total, len(dense))
		}

		var sharded [][]dataset.Record
		for _, sh := range shards {
			sharded = append(sharded, horPartN(sh.Records, sh.Records, dom.Len(), sh.Ignore, 12, 1)...)
		}
		if len(sharded) != len(global) {
			t.Fatalf("S=%d: %d sharded clusters vs %d global", S, len(sharded), len(global))
		}
		for i := range global {
			if len(global[i]) != len(sharded[i]) {
				t.Fatalf("S=%d: cluster %d sizes differ: %d vs %d", S, i, len(global[i]), len(sharded[i]))
			}
			for j := range global[i] {
				if !global[i][j].Equal(sharded[i][j]) {
					t.Fatalf("S=%d: cluster %d record %d differs", S, i, j)
				}
			}
		}
	}
}

// TestShardCut covers the decision kernel's edges: under-threshold nodes,
// ignored terms, the tie-break, and the lopsided-side guard.
func TestShardCut(t *testing.T) {
	ignore := make([]bool, 4)
	if _, _, split := ShardCut(10, []int32{5, 5, 0, 0}, ignore, 10, 2); split {
		t.Error("node at maxShard split")
	}
	if _, _, split := ShardCut(10, []int32{5, 5, 0, 0}, ignore, 0, 2); split {
		t.Error("maxShard=0 split")
	}
	term, sup, split := ShardCut(10, []int32{5, 5, 0, 3}, ignore, 9, 2)
	if !split || term != 0 || sup != 5 {
		t.Errorf("tie-break: got term=%d sup=%d split=%v, want 0/5/true", term, sup, split)
	}
	ignore[0] = true
	term, _, split = ShardCut(10, []int32{5, 5, 0, 3}, ignore, 9, 2)
	if !split || term != 1 {
		t.Errorf("ignored term still chosen: term=%d split=%v", term, split)
	}
	ignore[0] = false
	// With-side below k: support 1 < k=2.
	if _, _, split := ShardCut(10, []int32{1, 0, 0, 0}, ignore, 9, 2); split {
		t.Error("split with with-side below k")
	}
	// Without-side below k: 10-9 = 1 < 2.
	if _, _, split := ShardCut(10, []int32{9, 0, 0, 0}, ignore, 9, 2); split {
		t.Error("split with without-side below k")
	}
	// No usable term at all.
	if _, _, split := ShardCut(10, []int32{0, 0, 0, 0}, ignore, 9, 2); split {
		t.Error("split without any usable term")
	}
}

// TestShardPlanNeverStrandsBelowK is the guard delta routing relies on: no
// planned shard may hold fewer than k records (MergeUndersized repairs within
// a shard only), however small maxShard is pushed relative to the dataset.
func TestShardPlanNeverStrandsBelowK(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		d := genDataset(seed, seed+41, 150+int(seed)*30)
		dom := dataset.NewDenseDomain(d.Records)
		dense := dom.RemapAll(d.Records)
		exclude := make([]bool, dom.Len())
		for _, k := range []int{2, 4, 7} {
			for _, S := range []int{10, 25, 60} {
				shards := planShards(dense, dom.Len(), exclude, S, k)
				for _, sh := range shards {
					if len(sh.Records) < k && len(shards) > 1 {
						t.Fatalf("seed %d k=%d S=%d: shard %d stranded with %d < k records",
							seed, k, S, sh.Index, len(sh.Records))
					}
				}
			}
		}
	}
}

// TestShardPlanMaxClusterClamp pins the withDefaults interaction: a
// MaxShardRecords below MaxClusterSize is raised to it (a smaller cut could
// land inside a node HORPART would emit as one cluster), so both settings
// publish identical bytes.
func TestShardPlanMaxClusterClamp(t *testing.T) {
	opts, err := ShardOptions(Options{K: 3, M: 2, MaxClusterSize: 25, MaxShardRecords: 5})
	if err != nil {
		t.Fatal(err)
	}
	if opts.MaxShardRecords != 25 {
		t.Fatalf("MaxShardRecords clamped to %d, want MaxClusterSize=25", opts.MaxShardRecords)
	}

	d := genDataset(9, 2, 200)
	below := Options{K: 3, M: 2, MaxClusterSize: 25, MaxShardRecords: 5, Seed: 3, Parallel: 1}
	at := below
	at.MaxShardRecords = 25
	a1, err := Anonymize(d, below)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Anonymize(d, at)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeAnonymized(t, a1), encodeAnonymized(t, a2)) {
		t.Error("clamped MaxShardRecords publishes different bytes than the clamp target")
	}
}

// TestShardCutAllRecordsOneTerm covers the degenerate split: when one term
// appears in every record, splitting on it would strand an empty without-side,
// and every other term is too rare — the node must stay one (oversized) shard.
func TestShardCutAllRecordsOneTerm(t *testing.T) {
	const n = 40
	ignore := make([]bool, 2)
	term, sup, split := ShardCut(n, []int32{n, 1}, ignore, 10, 2)
	if split {
		t.Errorf("split on a term present in all records: term=%d sup=%d", term, sup)
	}
	if term != 0 || sup != n {
		t.Errorf("argmax should still report the dominant term: got term=%d sup=%d", term, sup)
	}

	// End to end: records {shared, unique_i} — the shared term's without-side
	// is empty, each unique term's with-side is 1 < k.
	records := make([]dataset.Record, n)
	for i := range records {
		records[i] = dataset.NewRecord(0, dataset.Term(i+1))
	}
	dom := dataset.NewDenseDomain(records)
	dense := dom.RemapAll(records)
	shards := planShards(dense, dom.Len(), make([]bool, dom.Len()), 10, 2)
	if len(shards) != 1 {
		t.Fatalf("degenerate dataset split into %d shards, want 1", len(shards))
	}
	if len(shards[0].Records) != n {
		t.Fatalf("single shard holds %d of %d records", len(shards[0].Records), n)
	}
}

// TestAnonymizeShardedValid checks that sharded runs still publish a valid,
// record-complete dataset, that shard 0 output is stable against the
// unsharded path's prefix semantics (MaxShardRecords=0 ≡ historical bytes),
// and that sharded output is deterministic across worker counts.
func TestAnonymizeShardedValid(t *testing.T) {
	d := genDataset(5, 17, 300)
	base := Options{K: 3, M: 2, MaxClusterSize: 12, Seed: 7}

	unsharded, err := Anonymize(d, base)
	if err != nil {
		t.Fatal(err)
	}

	sharded := base
	sharded.MaxShardRecords = 60
	a, err := Anonymize(d, sharded)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRecords() != d.Len() {
		t.Fatalf("sharded run covers %d of %d records", a.NumRecords(), d.Len())
	}
	if got, want := a.NumRecords(), unsharded.NumRecords(); got != want {
		t.Fatalf("record counts differ: %d vs %d", got, want)
	}

	want := encodeAnonymized(t, a)
	for _, workers := range []int{2, 8} {
		opts := sharded
		opts.Parallel = workers
		got, err := Anonymize(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeAnonymized(t, got), want) {
			t.Errorf("sharded output differs at Parallel=%d", workers)
		}
	}
}
