package core

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/dataset"
)

// collectPartition flattens clusters and checks they form an exact partition
// of the input records (same multiset).
func assertPartition(t *testing.T, d *dataset.Dataset, clusters [][]dataset.Record) {
	t.Helper()
	count := make(map[string]int)
	for _, r := range d.Records {
		count[r.Key()]++
	}
	total := 0
	for _, c := range clusters {
		for _, r := range c {
			count[r.Key()]--
			total++
		}
	}
	if total != d.Len() {
		t.Fatalf("clusters cover %d records, dataset has %d", total, d.Len())
	}
	for key, n := range count {
		if n != 0 {
			t.Fatalf("record %s imbalance %d", key, n)
		}
	}
}

func TestHorPartFormsPartition(t *testing.T) {
	d := dataset.FromRecords(figure2Records())
	clusters := HorPart(d, 6, nil)
	assertPartition(t, d, clusters)
	for i, c := range clusters {
		if len(c) >= 7 {
			t.Errorf("cluster %d has %d records, exceeding the bound", i, len(c))
		}
	}
}

func TestHorPartFigure2Split(t *testing.T) {
	// On Figure 2a with maxClusterSize 6 the first split is on madonna
	// (support 8); the recursion then splits the madonna side on ikea
	// (support 4 there). The resulting clusters keep co-occurring records
	// together.
	d := dataset.FromRecords(figure2Records())
	clusters := HorPart(d, 6, nil)
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3", len(clusters))
	}
	sizes := []int{len(clusters[0]), len(clusters[1]), len(clusters[2])}
	want := map[int]int{4: 2, 2: 1} // two clusters of 4 and the {r4, r9} leftover
	got := map[int]int{}
	for _, s := range sizes {
		got[s]++
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("cluster sizes %v, want two of 4 and one of 2", sizes)
		}
	}
}

func TestHorPartSmallDatasetSingleCluster(t *testing.T) {
	d := dataset.FromRecords(figure2Records()[:3])
	clusters := HorPart(d, 10, nil)
	if len(clusters) != 1 || len(clusters[0]) != 3 {
		t.Errorf("clusters = %v", clusters)
	}
}

func TestHorPartEmptyDataset(t *testing.T) {
	if got := HorPart(dataset.New(0), 10, nil); len(got) != 0 {
		t.Errorf("empty dataset gave %d clusters", len(got))
	}
}

func TestHorPartIgnoreExhaustion(t *testing.T) {
	// All records identical: after splitting on every term, the remaining
	// block cannot be split and must be emitted as one oversized cluster.
	var records []dataset.Record
	for i := 0; i < 20; i++ {
		records = append(records, dataset.NewRecord(1, 2))
	}
	d := dataset.FromRecords(records)
	clusters := HorPart(d, 5, nil)
	assertPartition(t, d, clusters)
	// Splitting on 1 keeps all 20 together; splitting on 2 likewise; then
	// terms are exhausted. One cluster of 20 results.
	if len(clusters) != 1 || len(clusters[0]) != 20 {
		t.Errorf("got %d clusters with sizes %v, want one of 20", len(clusters), clusterSizes(clusters))
	}
}

func clusterSizes(clusters [][]dataset.Record) []int {
	out := make([]int, len(clusters))
	for i, c := range clusters {
		out[i] = len(c)
	}
	return out
}

func TestHorPartExcludedTermsNeverSplit(t *testing.T) {
	// Term 1 is the most frequent but excluded (sensitive); the split must
	// use term 2 instead, grouping by it.
	var records []dataset.Record
	for i := 0; i < 6; i++ {
		records = append(records, dataset.NewRecord(1, 2))
	}
	for i := 0; i < 6; i++ {
		records = append(records, dataset.NewRecord(1, dataset.Term(10+i)))
	}
	d := dataset.FromRecords(records)
	clusters := HorPart(d, 8, map[dataset.Term]bool{1: true})
	assertPartition(t, d, clusters)
	for _, c := range clusters {
		has2, lacks2 := 0, 0
		for _, r := range c {
			if r.Contains(2) {
				has2++
			} else {
				lacks2++
			}
		}
		if has2 > 0 && lacks2 > 0 {
			t.Errorf("cluster mixes term-2 and non-term-2 records: %v", c)
		}
	}
}

func TestHorPartGroupsSimilarRecords(t *testing.T) {
	// Two disjoint communities; every cluster must be pure.
	rng := rand.New(rand.NewPCG(3, 1))
	var records []dataset.Record
	for i := 0; i < 100; i++ {
		base := dataset.Term(0)
		if i%2 == 1 {
			base = 100
		}
		terms := make([]dataset.Term, 3)
		for j := range terms {
			terms[j] = base + dataset.Term(rng.IntN(10))
		}
		records = append(records, dataset.NewRecord(terms...))
	}
	d := dataset.FromRecords(records)
	clusters := HorPart(d, 20, nil)
	assertPartition(t, d, clusters)
	// The heuristic may emit one mixed catch-all of leftovers, but the bulk
	// of records must land in community-pure clusters.
	pure := 0
	for _, c := range clusters {
		lo, hi := false, false
		for _, r := range c {
			if r[0] < 100 {
				lo = true
			} else {
				hi = true
			}
		}
		if !(lo && hi) {
			pure += len(c)
		}
	}
	if pure < 80 {
		t.Errorf("only %d of 100 records in community-pure clusters", pure)
	}
}

func TestHorPartDeterministic(t *testing.T) {
	d := dataset.FromRecords(figure2Records())
	a := HorPart(d, 4, nil)
	b := HorPart(d, 4, nil)
	if len(a) != len(b) {
		t.Fatal("nondeterministic cluster count")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("cluster %d sizes differ", i)
		}
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				t.Fatalf("cluster %d record %d differs", i, j)
			}
		}
	}
}

func TestHorPartMinimumClusterSize(t *testing.T) {
	// maxClusterSize below 2 is clamped; must not loop or panic.
	d := dataset.FromRecords(figure2Records())
	clusters := HorPart(d, 0, nil)
	assertPartition(t, d, clusters)
}
