package core

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"disasso/internal/dataset"
)

func TestBinaryRoundTripFigure2(t *testing.T) {
	d := dataset.FromRecords(figure2Records())
	a, err := Anonymize(d, Options{K: 3, M: 2, MaxClusterSize: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, a); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Error("binary round trip not identical")
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	var records []dataset.Record
	for i := 0; i < 300; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(5))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(40))
		}
		records = append(records, dataset.NewRecord(terms...))
	}
	d := dataset.FromRecords(records)
	a, err := Anonymize(d, Options{K: 3, M: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatal("binary round trip not identical")
	}
	// The format should beat JSON comfortably.
	var jsonBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf, a); err != nil {
		t.Fatal(err)
	}
	if buf.Len()*4 > jsonBuf.Len() {
		t.Errorf("binary %d bytes vs JSON %d — expected at least 4× smaller", buf.Len(), jsonBuf.Len())
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad magic": "XXXX\x03\x02\x00",
		"truncated": "DSA1\x03",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadBinary(strings.NewReader(in)); err == nil {
				t.Error("garbage accepted")
			}
		})
	}
	// Implausible parameters.
	if _, err := ReadBinary(bytes.NewReader([]byte("DSA1\x01\x02\x00"))); err == nil {
		t.Error("k=1 accepted")
	}
	// Zero gap (non-increasing record) inside a leaf's term chunk.
	var buf bytes.Buffer
	buf.WriteString("DSA1")
	buf.Write([]byte{3, 2, 1}) // k=3 m=2 one cluster
	buf.Write([]byte{0})       // leaf
	buf.Write([]byte{5, 0})    // size 5, no chunks
	buf.Write([]byte{2, 1, 0}) // term chunk: len 2, first 1, gap 0 (invalid)
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("zero-gap record accepted")
	}
}
