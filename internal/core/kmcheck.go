package core

import (
	"encoding/binary"

	"disasso/internal/dataset"
	"disasso/internal/itemset"
)

// comboKey encodes a small sorted term combination (plus one extra term) into
// a compact string usable as a map key. Binary 4-byte big-endian encoding
// keeps keys unique and cheap to hash.
func comboKey(buf []byte, combo dataset.Record, extra dataset.Term) string {
	buf = buf[:0]
	placed := false
	var scratch [4]byte
	for _, t := range combo {
		if !placed && extra < t {
			binary.BigEndian.PutUint32(scratch[:], uint32(extra))
			buf = append(buf, scratch[:]...)
			placed = true
		}
		binary.BigEndian.PutUint32(scratch[:], uint32(t))
		buf = append(buf, scratch[:]...)
	}
	if !placed {
		binary.BigEndian.PutUint32(scratch[:], uint32(extra))
		buf = append(buf, scratch[:]...)
	}
	return string(buf)
}

// kmChecker incrementally grows a chunk domain over a fixed bag of records
// while maintaining k^m-anonymity: every combination of at most m domain
// terms that appears in the projected chunk appears at least k times.
//
// TryAdd exploits that extending the domain with a term t cannot change the
// support of combinations not involving t, so only combinations that include
// t need counting — each is a subset of (record ∩ current domain) of size at
// most m−1, unioned with {t}.
type kmChecker struct {
	k, m    int
	records []dataset.Record
	domain  dataset.Record // current chunk domain, sorted
	keyBuf  []byte
	counts  map[string]int // scratch map reused across TryAdd calls
}

// newKMChecker builds a checker over the given record bag.
func newKMChecker(k, m int, records []dataset.Record) *kmChecker {
	return &kmChecker{
		k:       k,
		m:       m,
		records: records,
		keyBuf:  make([]byte, 0, 4*(m+1)),
		counts:  make(map[string]int),
	}
}

// Domain returns the accumulated chunk domain.
func (c *kmChecker) Domain() dataset.Record { return c.domain }

// TryAdd tests whether the domain extended with t keeps the projected chunk
// k^m-anonymous; on success the term is added and TryAdd reports true.
func (c *kmChecker) TryAdd(t dataset.Term) bool {
	clear(c.counts)
	maxSub := c.m - 1
	for _, r := range c.records {
		if !r.Contains(t) {
			continue
		}
		proj := r.Intersect(c.domain)
		top := maxSub
		if top > len(proj) {
			top = len(proj)
		}
		for size := 0; size <= top; size++ {
			itemset.Subsets(proj, size, func(s dataset.Record) bool {
				c.counts[comboKey(c.keyBuf, s, t)]++
				return true
			})
		}
	}
	for _, n := range c.counts {
		if n < c.k {
			return false
		}
	}
	c.domain = insertTerm(c.domain, t)
	return true
}

// insertTerm inserts t into the sorted record, keeping it normalized.
func insertTerm(r dataset.Record, t dataset.Term) dataset.Record {
	i := 0
	for i < len(r) && r[i] < t {
		i++
	}
	if i < len(r) && r[i] == t {
		return r
	}
	r = append(r, 0)
	copy(r[i+1:], r[i:])
	r[i] = t
	return r
}

// kAnonChecker incrementally grows a chunk domain while maintaining plain
// k-anonymity of the projected chunk: every *distinct non-empty subrecord*
// appears at least k times. Property 1 requires this stronger condition for
// shared chunks whose terms also appear in record chunks of descendants.
type kAnonChecker struct {
	k       int
	records []dataset.Record
	domain  dataset.Record
	keyBuf  []byte
	counts  map[string]int
}

func newKAnonChecker(k int, records []dataset.Record) *kAnonChecker {
	return &kAnonChecker{k: k, records: records, counts: make(map[string]int)}
}

// Domain returns the accumulated chunk domain.
func (c *kAnonChecker) Domain() dataset.Record { return c.domain }

// TryAdd tests whether extending the domain with t keeps every distinct
// non-empty projection occurring at least k times; on success the term is
// added. Unlike the k^m check, adding a term can split existing groups, so
// the projection multiset is recounted from scratch.
func (c *kAnonChecker) TryAdd(t dataset.Term) bool {
	candidate := insertTerm(c.domain.Clone(), t)
	clear(c.counts)
	var scratch [4]byte
	for _, r := range c.records {
		proj := r.Intersect(candidate)
		if len(proj) == 0 {
			continue
		}
		c.keyBuf = c.keyBuf[:0]
		for _, term := range proj {
			binary.BigEndian.PutUint32(scratch[:], uint32(term))
			c.keyBuf = append(c.keyBuf, scratch[:]...)
		}
		c.counts[string(c.keyBuf)]++
	}
	for _, n := range c.counts {
		if n < c.k {
			return false
		}
	}
	c.domain = candidate
	return true
}

// IsChunkKMAnonymous verifies from scratch that every combination of at most
// m domain terms appearing in the subrecords appears at least k times. The
// anonymizer itself uses the incremental checkers; this full check backs the
// independent verifier and tests.
func IsChunkKMAnonymous(domain dataset.Record, subrecords []dataset.Record, k, m int) bool {
	counts := make(map[string]int)
	var keyBuf []byte
	var scratch [4]byte
	encode := func(s dataset.Record) string {
		keyBuf = keyBuf[:0]
		for _, t := range s {
			binary.BigEndian.PutUint32(scratch[:], uint32(t))
			keyBuf = append(keyBuf, scratch[:]...)
		}
		return string(keyBuf)
	}
	for _, sr := range subrecords {
		proj := sr.Intersect(domain)
		top := m
		if top > len(proj) {
			top = len(proj)
		}
		for size := 1; size <= top; size++ {
			itemset.Subsets(proj, size, func(s dataset.Record) bool {
				counts[encode(s)]++
				return true
			})
		}
	}
	for _, n := range counts {
		if n < k {
			return false
		}
	}
	return true
}

// IsChunkKAnonymous verifies that every distinct non-empty subrecord
// (projected onto the domain) appears at least k times.
func IsChunkKAnonymous(domain dataset.Record, subrecords []dataset.Record, k int) bool {
	counts := make(map[string]int)
	for _, sr := range subrecords {
		proj := sr.Intersect(domain)
		if len(proj) == 0 {
			continue
		}
		counts[proj.Key()]++
	}
	for _, n := range counts {
		if n < k {
			return false
		}
	}
	return true
}
