package core

import (
	"encoding/binary"
	"slices"

	"disasso/internal/dataset"
	"disasso/internal/itemset"
)

// comboKey encodes a small sorted term combination (plus one extra term) into
// a compact string usable as a map key. Binary 4-byte big-endian encoding
// keeps keys unique and cheap to hash. It backs the fallback path for m too
// large to pack combinations into a uint64; the hot path packs local ids
// instead (see clusterIndex).
func comboKey(buf []byte, combo dataset.Record, extra dataset.Term) (string, []byte) {
	buf = buf[:0]
	placed := false
	var scratch [4]byte
	for _, t := range combo {
		if !placed && extra < t {
			binary.BigEndian.PutUint32(scratch[:], uint32(extra))
			buf = append(buf, scratch[:]...)
			placed = true
		}
		binary.BigEndian.PutUint32(scratch[:], uint32(t))
		buf = append(buf, scratch[:]...)
	}
	if !placed {
		binary.BigEndian.PutUint32(scratch[:], uint32(extra))
		buf = append(buf, scratch[:]...)
	}
	return string(buf), buf
}

// kmChecker incrementally grows a chunk domain over a fixed bag of records
// while maintaining k^m-anonymity: every combination of at most m domain
// terms that appears in the projected chunk appears at least k times.
//
// TryAdd exploits that extending the domain with a term t cannot change the
// support of combinations not involving t, so only combinations that include
// t need counting — each is a subset of (record ∩ current domain) of size at
// most m−1, unioned with {t}. The posting lists of the cluster index let it
// visit only the records containing t, and combinations pack into uint64
// keys counted in a reusable flat slab or map, so the steady state
// allocates nothing.
type kmChecker struct {
	k, m   int
	ix     *clusterIndex
	domain dataset.Record // current chunk domain (global terms), sorted

	packed      bool   // combinations fit the packed-key fast path
	base, space uint64 // positional packing base (n+1) and key space base^(m−1)

	// Fallback state for m too large to pack (string-keyed counting).
	keyBuf []byte
	counts map[string]int
}

// newKMChecker builds a checker over the given record bag. VERPART and
// REFINE, which run several greedy passes over one bag, build the index once
// and use newKMCheckerOnIndex instead.
func newKMChecker(k, m int, records []dataset.Record) *kmChecker {
	return newKMCheckerOnIndex(k, m, buildClusterIndex(records))
}

// newKMCheckerOnIndex builds a checker sharing a prebuilt cluster index (and
// its scratch buffers — checkers on one index must not be used concurrently).
func newKMCheckerOnIndex(k, m int, ix *clusterIndex) *kmChecker {
	c := &kmChecker{k: k, m: m, ix: ix}
	c.base = uint64(len(ix.terms)) + 1
	c.space, c.packed = packSpace(c.base, m-1)
	if !c.packed {
		c.keyBuf = make([]byte, 0, 4*(m+1))
		c.counts = make(map[string]int)
	}
	ix.resetDomain()
	return c
}

// Domain returns the accumulated chunk domain.
func (c *kmChecker) Domain() dataset.Record { return c.domain }

// TryAdd tests whether the domain extended with t keeps the projected chunk
// k^m-anonymous; on success the term is added and TryAdd reports true.
func (c *kmChecker) TryAdd(t dataset.Term) bool {
	lt, found := c.ix.localID(t)
	if !found {
		// No record contains t: the projection is unchanged, trivially safe.
		c.domain = insertTerm(c.domain, t)
		return true
	}
	if !c.packed {
		return c.tryAddSlow(t, lt)
	}
	ix := c.ix
	ix.counter.begin(c.space)
	maxSub := c.m - 1
	for _, ri := range ix.postings[lt] {
		proj := ix.proj[:0]
		for _, id := range ix.recs[ri] {
			if ix.domBits[id] {
				proj = append(proj, id)
			}
		}
		ix.proj = proj
		ix.countSubsets(proj, c.base, maxSub, true)
	}
	if !ix.counter.allAtLeast(int32(c.k)) {
		return false
	}
	ix.domBits[lt] = true
	c.domain = insertTerm(c.domain, t)
	return true
}

// tryAddSlow is the string-keyed fallback for m beyond packing capacity.
func (c *kmChecker) tryAddSlow(t dataset.Term, lt uint32) bool {
	clear(c.counts)
	maxSub := c.m - 1
	for _, ri := range c.ix.postings[lt] {
		r := c.ix.records[ri]
		proj := r.Intersect(c.domain)
		top := maxSub
		if top > len(proj) {
			top = len(proj)
		}
		for size := 0; size <= top; size++ {
			itemset.Subsets(proj, size, func(s dataset.Record) bool {
				var key string
				key, c.keyBuf = comboKey(c.keyBuf, s, t)
				c.counts[key]++
				return true
			})
		}
	}
	//lint:deterministic order-independent forall-threshold reduction over counts
	for _, n := range c.counts {
		if n < c.k {
			return false
		}
	}
	c.ix.domBits[lt] = true
	c.domain = insertTerm(c.domain, t)
	return true
}

// insertTerm inserts t into the sorted record, keeping it normalized.
func insertTerm(r dataset.Record, t dataset.Term) dataset.Record {
	i := 0
	for i < len(r) && r[i] < t {
		i++
	}
	if i < len(r) && r[i] == t {
		return r
	}
	r = append(r, 0)
	copy(r[i+1:], r[i:])
	r[i] = t
	return r
}

// kAnonChecker incrementally grows a chunk domain while maintaining plain
// k-anonymity of the projected chunk: every *distinct non-empty subrecord*
// appears at least k times. Property 1 requires this stronger condition for
// shared chunks whose terms also appear in record chunks of descendants.
//
// It maintains the equivalence classes of equal projections explicitly: two
// records project equally onto domain ∪ {t} iff they project equally onto
// domain and agree on containing t, so adding a term splits each class into
// its with-t and without-t halves. TryAdd therefore only walks t's posting
// list and the touched classes — no recounting, no sorting, no hashing.
type kAnonChecker struct {
	k      int
	ix     *clusterIndex
	domain dataset.Record

	group     []int32 // per record: projection class, 0 = empty projection
	groupSize []int32 // per class: member count (class 0 = empty projection)
	withCnt   []int32 // scratch: members of the class containing t
	newID     []int32 // scratch: class -> freshly split-off class
	touched   []int32 // scratch: classes with at least one t-containing member
}

func newKAnonChecker(k int, records []dataset.Record) *kAnonChecker {
	return newKAnonCheckerOnIndex(k, buildClusterIndex(records))
}

func newKAnonCheckerOnIndex(k int, ix *clusterIndex) *kAnonChecker {
	c := &kAnonChecker{k: k, ix: ix}
	c.group = make([]int32, len(ix.recs))
	c.groupSize = []int32{int32(len(ix.recs))}
	return c
}

// Domain returns the accumulated chunk domain.
func (c *kAnonChecker) Domain() dataset.Record { return c.domain }

// TryAdd tests whether extending the domain with t keeps every distinct
// non-empty projection occurring at least k times; on success the term is
// added and the projection classes are split accordingly.
func (c *kAnonChecker) TryAdd(t dataset.Term) bool {
	lt, found := c.ix.localID(t)
	if !found {
		c.domain = insertTerm(c.domain, t)
		return true
	}
	post := c.ix.postings[lt]
	if len(c.withCnt) < len(c.groupSize) {
		c.withCnt = make([]int32, len(c.groupSize)*2)
		c.newID = make([]int32, len(c.groupSize)*2)
	}
	c.touched = c.touched[:0]
	for _, ri := range post {
		g := c.group[ri]
		if c.withCnt[g] == 0 {
			c.touched = append(c.touched, g)
		}
		c.withCnt[g]++
	}
	ok := true
	for _, g := range c.touched {
		w := c.withCnt[g]
		// The with-t half forms a new non-empty projection class of w
		// members; the without-t half keeps the old projection, which is
		// only constrained when it is non-empty (g != 0) and inhabited.
		if w < int32(c.k) || (g != 0 && c.groupSize[g]-w > 0 && c.groupSize[g]-w < int32(c.k)) {
			ok = false
			break
		}
	}
	if !ok {
		for _, g := range c.touched {
			c.withCnt[g] = 0
		}
		return false
	}
	// Commit: split every touched class.
	for _, g := range c.touched {
		w := c.withCnt[g]
		c.newID[g] = int32(len(c.groupSize))
		c.groupSize = append(c.groupSize, w)
		c.groupSize[g] -= w
	}
	for _, ri := range post {
		c.group[ri] = c.newID[c.group[ri]]
	}
	for _, g := range c.touched {
		c.withCnt[g] = 0
	}
	c.domain = insertTerm(c.domain, t)
	return true
}

// IsChunkKMAnonymous verifies from scratch that every combination of at most
// m domain terms appearing in the subrecords appears at least k times. The
// anonymizer itself uses the incremental checkers; this full check backs the
// independent verifier and tests.
func IsChunkKMAnonymous(domain dataset.Record, subrecords []dataset.Record, k, m int) bool {
	ix := buildClusterIndex(subrecords)
	base := uint64(len(ix.terms)) + 1
	space, ok := packSpace(base, m)
	if !ok {
		return isChunkKMAnonymousSlow(domain, subrecords, k, m)
	}
	for _, t := range domain {
		if lt, found := ix.localID(t); found {
			ix.domBits[lt] = true
		}
	}
	ix.counter.begin(space)
	for _, lr := range ix.recs {
		proj := ix.proj[:0]
		for _, id := range lr {
			if ix.domBits[id] {
				proj = append(proj, id)
			}
		}
		ix.proj = proj
		ix.countSubsets(proj, base, m, false)
	}
	return ix.counter.allAtLeast(int32(k))
}

// isChunkKMAnonymousSlow is the string-keyed fallback for m beyond packing
// capacity.
func isChunkKMAnonymousSlow(domain dataset.Record, subrecords []dataset.Record, k, m int) bool {
	counts := make(map[string]int)
	var keyBuf []byte
	var scratch [4]byte
	encode := func(s dataset.Record) string {
		keyBuf = keyBuf[:0]
		for _, t := range s {
			binary.BigEndian.PutUint32(scratch[:], uint32(t))
			keyBuf = append(keyBuf, scratch[:]...)
		}
		return string(keyBuf)
	}
	for _, sr := range subrecords {
		proj := sr.Intersect(domain)
		top := m
		if top > len(proj) {
			top = len(proj)
		}
		for size := 1; size <= top; size++ {
			itemset.Subsets(proj, size, func(s dataset.Record) bool {
				counts[encode(s)]++
				return true
			})
		}
	}
	//lint:deterministic order-independent forall-threshold reduction over counts
	for _, n := range counts {
		if n < k {
			return false
		}
	}
	return true
}

// IsChunkKAnonymous verifies that every distinct non-empty subrecord
// (projected onto the domain) appears at least k times. Projections are
// sorted and counted as runs, avoiding per-projection map keys.
func IsChunkKAnonymous(domain dataset.Record, subrecords []dataset.Record, k int) bool {
	projs := make([]dataset.Record, 0, len(subrecords))
	for _, sr := range subrecords {
		if p := sr.Intersect(domain); len(p) > 0 {
			projs = append(projs, p)
		}
	}
	slices.SortFunc(projs, func(a, b dataset.Record) int { return slices.Compare(a, b) })
	for i := 0; i < len(projs); {
		j := i + 1
		for j < len(projs) && slices.Compare(projs[i], projs[j]) == 0 {
			j++
		}
		if j-i < k {
			return false
		}
		i = j
	}
	return true
}
