package core

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/dataset"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(1, 1)) }

// domainSet returns the set of chunk domains as keys for comparison.
func domainSet(cl *Cluster) map[string]bool {
	out := make(map[string]bool)
	for _, c := range cl.RecordChunks {
		out[c.Domain.Key()] = true
	}
	return out
}

func TestVerPartFigure2P1(t *testing.T) {
	// VERPART on the paper's cluster P1 with k=3, m=2 must reproduce
	// Figure 2b exactly: T1 = {itunes, flu, madonna}, T2 = {audi a4,
	// sony tv}, term chunk {ikea, viagra, ruby}.
	cl := VerPart(figure2P1(), 3, 2, nil, testRNG())
	if cl.Size != 5 {
		t.Fatalf("Size = %d", cl.Size)
	}
	if len(cl.RecordChunks) != 2 {
		t.Fatalf("got %d record chunks, want 2", len(cl.RecordChunks))
	}
	doms := domainSet(cl)
	if !doms[dataset.NewRecord(itunes, flu, madonna).Key()] {
		t.Errorf("missing chunk domain {itunes, flu, madonna}; got %v", doms)
	}
	if !doms[dataset.NewRecord(audiA4, sonyTV).Key()] {
		t.Errorf("missing chunk domain {audi a4, sony tv}; got %v", doms)
	}
	if !cl.TermChunk.Equal(dataset.NewRecord(ikea, viagra, ruby)) {
		t.Errorf("term chunk = %v, want {ikea, viagra, ruby}", cl.TermChunk)
	}
	// Chunk contents: C1 has 5 non-empty subrecords, C2 has 3.
	for _, c := range cl.RecordChunks {
		switch c.Domain.Key() {
		case dataset.NewRecord(itunes, flu, madonna).Key():
			if len(c.Subrecords) != 5 {
				t.Errorf("C1 has %d subrecords, want 5", len(c.Subrecords))
			}
		case dataset.NewRecord(audiA4, sonyTV).Key():
			if len(c.Subrecords) != 3 {
				t.Errorf("C2 has %d subrecords, want 3", len(c.Subrecords))
			}
		}
	}
}

func TestVerPartFigure2P2(t *testing.T) {
	// Figure 2b: P2 gets one record chunk {iphone sdk, madonna, digital
	// camera} and term chunk {panic disorder, playboy, ikea, ruby}.
	cl := VerPart(figure2P2(), 3, 2, nil, testRNG())
	if len(cl.RecordChunks) != 1 {
		t.Fatalf("got %d record chunks, want 1", len(cl.RecordChunks))
	}
	wantDom := dataset.NewRecord(madonna, iphoneSDK, digitalCam)
	if !cl.RecordChunks[0].Domain.Equal(wantDom) {
		t.Errorf("domain = %v, want %v", cl.RecordChunks[0].Domain, wantDom)
	}
	if !cl.TermChunk.Equal(dataset.NewRecord(ikea, ruby, panicDis, playboy)) {
		t.Errorf("term chunk = %v", cl.TermChunk)
	}
	if len(cl.RecordChunks[0].Subrecords) != 5 {
		t.Errorf("chunk has %d subrecords, want 5", len(cl.RecordChunks[0].Subrecords))
	}
}

func TestVerPartChunksAreKMAnonymous(t *testing.T) {
	for _, records := range [][]dataset.Record{figure2P1(), figure2P2(), figure2Records()} {
		cl := VerPart(records, 3, 2, nil, testRNG())
		for i, c := range cl.RecordChunks {
			if !IsChunkKMAnonymous(c.Domain, c.Subrecords, 3, 2) {
				t.Errorf("chunk %d (%v) not 3^2-anonymous", i, c.Domain)
			}
		}
	}
}

func TestVerPartDomainsPartitionClusterTerms(t *testing.T) {
	records := figure2Records()
	cl := VerPart(records, 3, 2, nil, testRNG())
	var all dataset.Record
	for _, c := range cl.RecordChunks {
		if inter := all.Intersect(c.Domain); len(inter) > 0 {
			t.Fatalf("chunk domains overlap on %v", inter)
		}
		all = all.Union(c.Domain)
	}
	if inter := all.Intersect(cl.TermChunk); len(inter) > 0 {
		t.Fatalf("term chunk overlaps record chunks on %v", inter)
	}
	all = all.Union(cl.TermChunk)
	want := dataset.FromRecords(records).Domain()
	if !all.Equal(dataset.NewRecord(want...)) {
		t.Errorf("chunks+term chunk cover %v, cluster domain is %v", all, want)
	}
}

func TestVerPartLowSupportTermsGoToTermChunk(t *testing.T) {
	cl := VerPart(figure2P1(), 3, 2, nil, testRNG())
	// viagra has support 1 < 3 in P1 — must be in the term chunk.
	if !cl.TermChunk.Contains(viagra) {
		t.Error("viagra (support 1) not in term chunk")
	}
	for _, c := range cl.RecordChunks {
		if c.Domain.Contains(viagra) {
			t.Error("viagra placed in a record chunk")
		}
	}
}

func TestVerPartSensitiveTermsForcedToTermChunk(t *testing.T) {
	// madonna has support 4 ≥ k in P1, but marked sensitive it must land in
	// the term chunk (l-diversity mode, Section 5).
	sensitive := map[dataset.Term]bool{madonna: true}
	cl := VerPart(figure2P1(), 3, 2, sensitive, testRNG())
	if !cl.TermChunk.Contains(madonna) {
		t.Error("sensitive term not in term chunk")
	}
	for _, c := range cl.RecordChunks {
		if c.Domain.Contains(madonna) {
			t.Error("sensitive term in a record chunk")
		}
	}
}

func TestVerPartFigure4Lemma2(t *testing.T) {
	// Example 1 (Figure 4): records {a},{a},{b,c},{b,c},{a,b,c} with k=3,
	// m=2. The naive chunks C1={a}, C2={b,c} are 3^2-anonymous but violate
	// Lemma 2 (6 subrecords < 5 + 3·1 = 8). VERPART must demote a term to
	// the term chunk.
	a, b, c := dataset.Term(0), dataset.Term(1), dataset.Term(2)
	records := []dataset.Record{
		dataset.NewRecord(a),
		dataset.NewRecord(a),
		dataset.NewRecord(b, c),
		dataset.NewRecord(b, c),
		dataset.NewRecord(a, b, c),
	}
	cl := VerPart(records, 3, 2, nil, testRNG())
	if len(cl.TermChunk) == 0 && !lemma2Holds(cl, 3, 2) {
		t.Fatalf("Lemma 2 violated: chunks %v, term chunk %v", cl.RecordChunks, cl.TermChunk)
	}
	if len(cl.TermChunk) == 0 {
		t.Fatalf("expected a demoted term in the term chunk, got chunks %+v", cl.RecordChunks)
	}
	for _, ch := range cl.RecordChunks {
		if !IsChunkKMAnonymous(ch.Domain, ch.Subrecords, 3, 2) {
			t.Errorf("chunk %v lost k^m-anonymity after the Lemma 2 fix", ch.Domain)
		}
	}
}

func TestVerPartTinyCluster(t *testing.T) {
	// Fewer records than k: everything must go to the term chunk.
	records := []dataset.Record{
		dataset.NewRecord(1, 2),
		dataset.NewRecord(3),
	}
	cl := VerPart(records, 5, 2, nil, testRNG())
	if len(cl.RecordChunks) != 0 {
		t.Errorf("got %d record chunks, want 0", len(cl.RecordChunks))
	}
	if !cl.TermChunk.Equal(dataset.NewRecord(1, 2, 3)) {
		t.Errorf("term chunk = %v", cl.TermChunk)
	}
	if cl.Size != 2 {
		t.Errorf("Size = %d", cl.Size)
	}
}

func TestVerPartSubrecordsAreProjections(t *testing.T) {
	records := figure2P1()
	cl := VerPart(records, 3, 2, nil, testRNG())
	for _, c := range cl.RecordChunks {
		// Each subrecord must be the projection of some record, with the
		// right multiplicity (bag equality).
		want := make(map[string]int)
		for _, r := range records {
			if p := r.Intersect(c.Domain); len(p) > 0 {
				want[p.Key()]++
			}
		}
		got := make(map[string]int)
		for _, sr := range c.Subrecords {
			got[sr.Key()]++
		}
		for key, n := range want {
			if got[key] != n {
				t.Errorf("chunk %v: projection %s count %d, want %d", c.Domain, key, got[key], n)
			}
		}
		if len(got) != len(want) {
			t.Errorf("chunk %v: spurious subrecords", c.Domain)
		}
	}
}

func TestVerPartShuffleDeterministicBySeed(t *testing.T) {
	r1 := VerPart(figure2P1(), 3, 2, nil, rand.New(rand.NewPCG(7, 7)))
	r2 := VerPart(figure2P1(), 3, 2, nil, rand.New(rand.NewPCG(7, 7)))
	for i := range r1.RecordChunks {
		for j := range r1.RecordChunks[i].Subrecords {
			if !r1.RecordChunks[i].Subrecords[j].Equal(r2.RecordChunks[i].Subrecords[j]) {
				t.Fatal("same seed produced different subrecord order")
			}
		}
	}
}

// Property: on random clusters, VERPART output always passes the exhaustive
// k^m check and covers exactly the cluster's terms.
func TestVerPartRandomClusters(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 42))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.IntN(30)
		var records []dataset.Record
		for i := 0; i < n; i++ {
			terms := make([]dataset.Term, 1+rng.IntN(6))
			for j := range terms {
				terms[j] = dataset.Term(rng.IntN(15))
			}
			records = append(records, dataset.NewRecord(terms...))
		}
		k := 2 + rng.IntN(4)
		m := 1 + rng.IntN(3)
		cl := VerPart(records, k, m, nil, testRNG())
		if cl.Size != n {
			t.Fatalf("trial %d: size %d, want %d", trial, cl.Size, n)
		}
		var all dataset.Record
		for _, c := range cl.RecordChunks {
			if !IsChunkKMAnonymous(c.Domain, c.Subrecords, k, m) {
				t.Fatalf("trial %d: chunk %v fails %d^%d check", trial, c.Domain, k, m)
			}
			if len(all.Intersect(c.Domain)) > 0 {
				t.Fatalf("trial %d: overlapping domains", trial)
			}
			all = all.Union(c.Domain)
		}
		all = all.Union(cl.TermChunk)
		want := dataset.NewRecord(dataset.FromRecords(records).Domain()...)
		if !all.Equal(want) {
			t.Fatalf("trial %d: domain coverage %v vs %v", trial, all, want)
		}
		if len(cl.TermChunk) == 0 && len(cl.RecordChunks) > 0 && !lemma2Holds(cl, k, m) {
			t.Fatalf("trial %d: Lemma 2 violated", trial)
		}
	}
}
