package core

import (
	"errors"
	"fmt"
	"maps"
	"slices"

	"disasso/internal/dataset"
)

// Incremental delta republish. A full publish retains, besides the published
// forest, the HORPART shard-plan decision tree itself: per node, the record
// count and per-term supports that drove ShardCut's decision. A delta (a batch
// of appended and/or removed records) is then routed down the tree by the same
// most-frequent-term containment rule HORPART uses, the counts along each path
// are adjusted, and every touched decision is re-verified. When all decisions
// stand, only the leaf shards that actually received or lost records are
// re-anonymized — with the same shard index, hence the same shard-keyed PRNG
// streams — and the untouched shards' published nodes are spliced through
// unchanged. When any decision changes (the delta moved a shard boundary), the
// engine falls back to a full from-scratch republish.
//
// Two proven invariances make the dirty-shard re-run exact:
//
//  1. Shard membership and within-shard record order are content-based: a
//     record's shard is determined by which split terms it contains, and
//     planShards preserves relative record order, so "old records minus
//     removals, then appends at the end" is exactly the shard list a
//     from-scratch run over the same logical dataset would produce.
//  2. The pipeline is invariant under monotone dense-domain remapping
//     (anonymize.go), so each dirty shard can be re-run over its own local
//     dense domain and still produce bytes identical to the global run.
//
// The republish_scratch build tag (hook pair republish_hook_default.go /
// republish_hook_scratch.go) forces Apply through the from-scratch path, which
// is the oracle the equivalence tests compare against.

// republishScratch forces Apply to take the full from-scratch path instead of
// the dirty-shard delta path. The delta path must be byte-identical; tests and
// the republish_scratch CI build cross-check that.
var republishScratch = republishScratchDefault

// ErrRecordNotFound reports a Delta.Remove record that is not present in the
// dataset. The delta is rejected as a whole; the state is unchanged.
var ErrRecordNotFound = errors.New("core: record to remove not present")

// errShardShift is the internal signal that a delta moved a shard boundary in
// a way local replanning cannot absorb: a flipped ShardCut decision whose
// rebuilt subtree has a different shard count, which would shift every later
// shard's preorder index (and so its PRNG stream). Apply catches it and falls
// back to a full republish.
var errShardShift = errors.New("core: delta shifts a shard boundary")

// Delta is one republish request: records to remove from and append to the
// logical dataset. Removals are applied first (each removes one occurrence;
// datasets have bag semantics), then appends go to the end. All records must
// be non-empty and normalized.
type Delta struct {
	Append []dataset.Record
	Remove []dataset.Record
}

// RepublishStats reports what a delta republish did.
type RepublishStats struct {
	Appended, Removed int
	// DirtyShards of TotalShards were re-anonymized; Dirty lists their
	// indexes in ascending order.
	DirtyShards, TotalShards int
	Dirty                    []int
	// ReplannedShards counts the dirty shards whose plan subtree was rebuilt
	// because the delta flipped a ShardCut decision — churn the engine
	// absorbed locally instead of falling back to a full republish.
	ReplannedShards int
	// FullRepublish is set when the engine ran from scratch: either the delta
	// moved a shard-plan boundary, or the republish_scratch hook forced it.
	FullRepublish bool
}

// planNode is one node of the retained shard-plan decision tree: the record
// count and per-term supports ShardCut's decision was made from, and the
// decision itself. Nodes are immutable once built — Apply copies every node it
// touches, so old snapshots stay valid.
type planNode struct {
	n       int
	counts  []int32 // per term index; may lag the universe, missing = 0
	term    int32   // split term index; -1 for a leaf
	sup     int32
	with    *planNode
	without *planNode
	shard   int // leaf: index into RepubState.shards; -1 for interior nodes
}

// repubShard is one leaf of the plan tree: its records (global terms, in
// ascending insertion order), their insertion sequence numbers, the
// split-path terms consumed above it, and its published nodes.
type repubShard struct {
	records   []dataset.Record
	seq       []uint64       // parallel to records, strictly ascending
	path      []dataset.Term // split-path terms, barred from splitting inside
	published []*ClusterNode
}

// RepubState is the retained state of a publish that supports incremental
// delta republish. It is immutable: Apply returns a new state sharing every
// untouched shard and subtree with the old one, so concurrent readers of the
// old snapshot are never disturbed.
type RepubState struct {
	opts Options // validated and defaulted

	// The republish term universe: every term the dataset has ever contained,
	// in first-seen order (ascending for the initial build; terms appended
	// later keep their index for the lifetime of the state chain, so plan-node
	// count slices stay comparable across deltas). id is the inverse map.
	terms []dataset.Term
	//lint:ignore densedomain boundary bookkeeping keyed by global terms: the universe outlives any one shard-local dense domain
	id       map[dataset.Term]int32
	excluded []bool // per term index: a Sensitive key, never usable for splits

	root   *planNode
	shards []*repubShard

	// nextSeq numbers appended records. The logical dataset is the bag of
	// shard records in ascending sequence order (original insertion order,
	// with every append at the end) — the exact list a from-scratch run is
	// compared against. Shards keep their records seq-ascending, so the
	// scratch fallback can reconstruct the insertion order even when the new
	// plan's shards cut across the old ones.
	nextSeq uint64
}

// AnonymizeWithState is Anonymize plus retained delta-republish state: the
// published output is byte-identical to Anonymize(d, opts), and the returned
// state accepts Apply calls for incremental republishes.
func AnonymizeWithState(d *dataset.Dataset, opts Options) (*Anonymized, *RepubState, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: invalid input: %w", err)
	}
	seq := make([]uint64, d.Len())
	for i := range seq {
		seq[i] = uint64(i)
	}
	st := newRepubState(d.Records, seq, uint64(d.Len()), opts.withDefaults())
	return st.runAll(), st, nil
}

// newRepubState builds the plan tree and shard lists for records, whose
// insertion sequence numbers are seq (strictly ascending). opts must be
// validated and defaulted. Published nodes are not yet materialized.
func newRepubState(records []dataset.Record, seq []uint64, nextSeq uint64, opts Options) *RepubState {
	dom := dataset.NewDenseDomain(records)
	st := &RepubState{
		opts:  opts,
		terms: make([]dataset.Term, dom.Len()),
		//lint:ignore densedomain boundary bookkeeping keyed by global terms: the universe outlives any one shard-local dense domain
		id:       make(map[dataset.Term]int32, dom.Len()),
		excluded: make([]bool, dom.Len()),
		nextSeq:  nextSeq,
	}
	for i := range st.terms {
		t := dom.TermOf(dataset.Term(i))
		st.terms[i] = t
		st.id[t] = int32(i)
		_, st.excluded[i] = opts.Sensitive[t]
	}
	ignore := slices.Clone(st.excluded)
	st.root = st.build(records, seq, ignore, nil, &st.shards)
	return st
}

// build constructs the plan subtree over records, mirroring planShards: the
// same counts, the same ShardCut decision, the same with-branch-first preorder
// shard numbering. ignore is mutated and restored (split path + excluded);
// path accumulates the split-path terms for leaf snapshots. Leaves are
// appended to *leaves and numbered by their position in it — the full-tree
// build passes &st.shards so positions are global shard indexes; a subtree
// replant collects into a scratch slice and renumbers after the leaf count is
// verified.
func (st *RepubState) build(records []dataset.Record, seq []uint64, ignore []bool, path []dataset.Term, leaves *[]*repubShard) *planNode {
	counts := make([]int32, len(st.terms))
	for _, r := range records {
		for _, t := range r {
			counts[st.id[t]]++
		}
	}
	nd := &planNode{n: len(records), counts: counts, term: -1, shard: -1}
	best, sup, split := st.decide(nd.n, counts, ignore)
	if !split {
		nd.shard = len(*leaves)
		*leaves = append(*leaves, &repubShard{records: records, seq: seq, path: slices.Clone(path)})
		return nd
	}
	nd.term, nd.sup = best, sup
	splitTerm := st.terms[best]
	with := make([]dataset.Record, 0, sup)
	withSeq := make([]uint64, 0, sup)
	without := make([]dataset.Record, 0, len(records)-int(sup))
	withoutSeq := make([]uint64, 0, len(records)-int(sup))
	for i, r := range records {
		if r.Contains(splitTerm) {
			with = append(with, r)
			withSeq = append(withSeq, seq[i])
		} else {
			without = append(without, r)
			withoutSeq = append(withoutSeq, seq[i])
		}
	}
	ignore[best] = true
	nd.with = st.build(with, withSeq, ignore, append(path, splitTerm), leaves)
	ignore[best] = false
	nd.without = st.build(without, withoutSeq, ignore, path, leaves)
	return nd
}

// decide is ShardCut over the republish universe. The argmax tie-break
// compares global terms, not indexes: for the initial build the two coincide
// (indexes ascend with terms), but terms appended later get out-of-order
// indexes, and the decision must keep matching what planShards would compute
// over a freshly sorted domain.
func (st *RepubState) decide(n int, counts []int32, ignore []bool) (term int32, sup int32, split bool) {
	maxShard, k := st.opts.MaxShardRecords, st.opts.K
	if maxShard <= 0 || n <= maxShard {
		return -1, 0, false
	}
	best, bestSup := int32(-1), int32(0)
	for t, c := range counts {
		if c == 0 || ignore[t] {
			continue
		}
		if c > bestSup || (c == bestSup && st.terms[t] < st.terms[best]) {
			best, bestSup = int32(t), c
		}
	}
	if bestSup == 0 {
		return -1, 0, false
	}
	if int(bestSup) < k || n-int(bestSup) < k {
		return best, bestSup, false
	}
	return best, bestSup, true
}

// runAll anonymizes every shard and assembles the published dataset.
func (st *RepubState) runAll() *Anonymized {
	out := &Anonymized{K: st.opts.K, M: st.opts.M}
	for i, sh := range st.shards {
		sh.published = st.runShard(sh, i)
		out.Clusters = append(out.Clusters, sh.published...)
	}
	return out
}

// runShard re-anonymizes one shard over its own local dense domain. By the
// monotone-remap invariance the restored output is byte-identical to the
// shard's slice of a global run, and the shard index keys the same PRNG
// streams either way.
func (st *RepubState) runShard(sh *repubShard, index int) []*ClusterNode {
	dom := dataset.NewDenseDomain(sh.records)
	dense := dom.RemapAll(sh.records)
	excludeBits, sensitiveBits := SensitiveBits(st.opts, dom)
	for _, t := range sh.path {
		if id, ok := dom.ID(t); ok {
			excludeBits[id] = true
		}
	}
	nodes := AnonymizeShard(Shard{Records: dense, Ignore: excludeBits, Index: index}, dom.Len(), sensitiveBits, st.opts)
	RestoreClusters(nodes, dom)
	return nodes
}

// Records returns the logical dataset behind the state, in insertion order
// (original order, every surviving append at the end). Anonymizing exactly
// this list from scratch with the state's options reproduces the current
// published bytes.
func (st *RepubState) Records() []dataset.Record {
	records, _ := st.orderedRecords()
	return records
}

// orderedRecords flattens the shards back into insertion (sequence) order.
func (st *RepubState) orderedRecords() ([]dataset.Record, []uint64) {
	total := 0
	for _, sh := range st.shards {
		total += len(sh.records)
	}
	records := make([]dataset.Record, 0, total)
	seq := make([]uint64, 0, total)
	for _, sh := range st.shards {
		records = append(records, sh.records...)
		seq = append(seq, sh.seq...)
	}
	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		if seq[a] < seq[b] {
			return -1
		}
		return 1
	})
	outR := make([]dataset.Record, total)
	outS := make([]uint64, total)
	for i, j := range idx {
		outR[i], outS[i] = records[j], seq[j]
	}
	return outR, outS
}

// NumRecords returns the logical dataset size.
func (st *RepubState) NumRecords() int {
	total := 0
	for _, sh := range st.shards {
		total += len(sh.records)
	}
	return total
}

// NumShards returns the number of shards in the plan.
func (st *RepubState) NumShards() int { return len(st.shards) }

// ShardClusters returns shard i's published nodes. Callers must treat them as
// immutable: clean shards share their nodes across snapshots.
func (st *RepubState) ShardClusters(i int) []*ClusterNode { return st.shards[i].published }

// Options returns the effective (defaulted) options the state publishes with.
func (st *RepubState) Options() Options { return st.opts }

// Apply republishes the dataset with the delta applied: removals first (each
// drops one occurrence of the record; a removal with no occurrence fails the
// whole delta with ErrRecordNotFound), then appends at the end. It returns the
// new published dataset and the successor state; the receiver is unchanged and
// stays valid. The published bytes are exactly those of a from-scratch
// Anonymize over the new logical dataset; the delta path merely skips the
// shards the delta cannot have affected.
func (st *RepubState) Apply(delta Delta) (*Anonymized, *RepubState, RepublishStats, error) {
	for _, r := range delta.Append {
		if len(r) == 0 {
			return nil, nil, RepublishStats{}, errors.New("core: delta appends an empty record")
		}
		if !r.IsNormalized() {
			return nil, nil, RepublishStats{}, fmt.Errorf("core: delta append record not normalized: %v", r)
		}
	}
	for _, r := range delta.Remove {
		if len(r) == 0 {
			return nil, nil, RepublishStats{}, errors.New("core: delta removes an empty record")
		}
		if !r.IsNormalized() {
			return nil, nil, RepublishStats{}, fmt.Errorf("core: delta remove record not normalized: %v", r)
		}
	}
	if republishScratch {
		return st.applyScratch(delta, false)
	}
	anon, ns, stats, err := st.applyDelta(delta)
	if errors.Is(err, errShardShift) {
		return st.applyScratch(delta, true)
	}
	return anon, ns, stats, err
}

// applyScratch is the reference path: apply the delta to the insertion-ordered
// logical dataset and rebuild everything from scratch.
func (st *RepubState) applyScratch(delta Delta, fellBack bool) (*Anonymized, *RepubState, RepublishStats, error) {
	records, seq := st.orderedRecords()
	appends := make([]seqRecord, len(delta.Append))
	for i, r := range delta.Append {
		appends[i] = seqRecord{r: r, seq: st.nextSeq + uint64(i)}
	}
	records, seq, err := applyWithSeq(records, seq, delta.Remove, appends)
	if err != nil {
		return nil, nil, RepublishStats{}, err
	}
	ns := newRepubState(records, seq, st.nextSeq+uint64(len(delta.Append)), st.opts)
	anon := ns.runAll()
	dirty := make([]int, len(ns.shards))
	for i := range dirty {
		dirty[i] = i
	}
	return anon, ns, RepublishStats{
		Appended:      len(delta.Append),
		Removed:       len(delta.Remove),
		DirtyShards:   len(ns.shards),
		TotalShards:   len(ns.shards),
		Dirty:         dirty,
		FullRepublish: true,
	}, nil
}

// applyToRecords applies a delta to a record list: removals drop the first
// occurrence of each removed record (bag semantics), appends go to the end.
// It is the plain-list form of applyWithSeq; the equivalence tests use it to
// maintain their reference logical dataset.
func applyToRecords(records []dataset.Record, delta Delta) ([]dataset.Record, error) {
	seq := make([]uint64, len(records))
	for i := range seq {
		seq[i] = uint64(i)
	}
	appends := make([]seqRecord, len(delta.Append))
	for i, r := range delta.Append {
		appends[i] = seqRecord{r: r, seq: uint64(len(records) + i)}
	}
	out, _, err := applyWithSeq(records, seq, delta.Remove, appends)
	return out, err
}

// seqRecord is an appended record with its assigned sequence number.
type seqRecord struct {
	r   dataset.Record
	seq uint64
}

// applyWithSeq applies a delta to a seq-ascending record list: each removal
// drops the earliest occurrence of the removed record, appends go to the end
// in their given order. A removal with no occurrence fails the whole delta.
func applyWithSeq(records []dataset.Record, seq []uint64, removes []dataset.Record, appends []seqRecord) ([]dataset.Record, []uint64, error) {
	outR := make([]dataset.Record, 0, len(records)-len(removes)+len(appends))
	outS := make([]uint64, 0, cap(outR))
	if len(removes) == 0 {
		outR = append(outR, records...)
		outS = append(outS, seq...)
	} else {
		want := make(map[string]int, len(removes))
		for _, r := range removes {
			want[r.Key()]++
		}
		left := len(removes)
		for i, r := range records {
			if left > 0 {
				if k := r.Key(); want[k] > 0 {
					want[k]--
					left--
					continue
				}
			}
			outR = append(outR, r)
			outS = append(outS, seq[i])
		}
		if left > 0 {
			for _, r := range removes {
				if want[r.Key()] > 0 {
					return nil, nil, fmt.Errorf("%w: %v", ErrRecordNotFound, r)
				}
			}
		}
	}
	for _, a := range appends {
		outR = append(outR, a.r)
		outS = append(outS, a.seq)
	}
	return outR, outS, nil
}

// nodeDelta accumulates the routing pass's effect on one plan node.
type nodeDelta struct {
	dn      int
	dcounts map[int32]int32 // per term index; sparse — deltas are small
}

// applyDelta is the incremental path: route the delta down the plan tree,
// re-verify every touched decision, re-anonymize only the dirty leaves.
func (st *RepubState) applyDelta(delta Delta) (*Anonymized, *RepubState, RepublishStats, error) {
	ns := &RepubState{
		opts:     st.opts,
		terms:    st.terms,
		id:       st.id,
		excluded: st.excluded,
		shards:   slices.Clone(st.shards),
		nextSeq:  st.nextSeq + uint64(len(delta.Append)),
	}
	// Extend the universe copy-on-write with terms first seen in this delta.
	grown := false
	for _, r := range delta.Append {
		for _, t := range r {
			if _, ok := ns.id[t]; ok {
				continue
			}
			if !grown {
				ns.terms = slices.Clone(ns.terms)
				ns.id = maps.Clone(ns.id)
				ns.excluded = slices.Clone(ns.excluded)
				grown = true
			}
			ns.id[t] = int32(len(ns.terms))
			ns.terms = append(ns.terms, t)
			_, sens := st.opts.Sensitive[t]
			ns.excluded = append(ns.excluded, sens)
		}
	}

	// Route every delta record down the tree by split-term containment,
	// accumulating count deltas per touched node and the per-shard append and
	// remove lists (both in delta order).
	touched := make(map[*planNode]*nodeDelta)
	shardAppend := make(map[int][]seqRecord)
	shardRemove := make(map[int][]dataset.Record)
	route := func(r dataset.Record, sign int32) int {
		nd := st.root
		for {
			d := touched[nd]
			if d == nil {
				d = &nodeDelta{dcounts: make(map[int32]int32)}
				touched[nd] = d
			}
			d.dn += int(sign)
			for _, t := range r {
				d.dcounts[ns.id[t]] += sign
			}
			if nd.term < 0 {
				return nd.shard
			}
			if r.Contains(ns.terms[nd.term]) {
				nd = nd.with
			} else {
				nd = nd.without
			}
		}
	}
	for _, r := range delta.Remove {
		si := route(r, -1)
		shardRemove[si] = append(shardRemove[si], r)
	}
	for i, r := range delta.Append {
		si := route(r, +1)
		shardAppend[si] = append(shardAppend[si], seqRecord{r: r, seq: st.nextSeq + uint64(i)})
	}

	// Rebuild the touched spine copy-on-write, re-verifying each decision
	// against the updated counts. Dirty leaves get fresh shard states. A
	// flipped decision invalidates only its subtree: replant rebuilds that
	// subtree's plan from its updated records, and as long as the new plan
	// has the same shard count, every shard outside the subtree keeps its
	// preorder index and the splice stays valid. Only a count change — which
	// would renumber every later shard and so re-key its PRNG stream —
	// aborts to the from-scratch fallback.
	var dirty []int
	replanned := 0
	ignore := make([]bool, len(ns.terms))
	copy(ignore, ns.excluded)

	// replant rebuilds the plan subtree rooted at old: its leaves' records
	// are merged back into insertion (seq) order, the subtree's slice of the
	// delta is applied, and build reruns over the result with the node's
	// ignore/path context — exactly the records and context a from-scratch
	// run would hand this subtree. Preorder numbering makes the old leaves a
	// contiguous index range; the new leaves must fill the same range.
	replant := func(old *planNode, path []dataset.Term) (*planNode, error) {
		var idxs []int
		var collect func(nd *planNode)
		collect = func(nd *planNode) {
			if nd.term < 0 {
				idxs = append(idxs, nd.shard)
				return
			}
			collect(nd.with)
			collect(nd.without)
		}
		collect(old)
		lo := idxs[0]
		total := 0
		for _, si := range idxs {
			total += len(st.shards[si].records)
		}
		records := make([]dataset.Record, 0, total)
		seq := make([]uint64, 0, total)
		var removes []dataset.Record
		var appends []seqRecord
		for _, si := range idxs {
			sh := st.shards[si]
			records = append(records, sh.records...)
			seq = append(seq, sh.seq...)
			removes = append(removes, shardRemove[si]...)
			appends = append(appends, shardAppend[si]...)
		}
		order := make([]int, len(records))
		for i := range order {
			order[i] = i
		}
		slices.SortFunc(order, func(a, b int) int {
			if seq[a] < seq[b] {
				return -1
			}
			return 1
		})
		mergedR := make([]dataset.Record, len(records))
		mergedS := make([]uint64, len(records))
		for i, j := range order {
			mergedR[i], mergedS[i] = records[j], seq[j]
		}
		slices.SortFunc(appends, func(a, b seqRecord) int {
			if a.seq < b.seq {
				return -1
			}
			return 1
		})
		mergedR, mergedS, err := applyWithSeq(mergedR, mergedS, removes, appends)
		if err != nil {
			return nil, err
		}
		var leaves []*repubShard
		nd := ns.build(mergedR, mergedS, ignore, slices.Clone(path), &leaves)
		if len(leaves) != len(idxs) {
			return nil, errShardShift
		}
		for i, sh := range leaves {
			ns.shards[lo+i] = sh
		}
		var renumber func(nd *planNode)
		renumber = func(nd *planNode) {
			if nd.term < 0 {
				nd.shard += lo
				return
			}
			renumber(nd.with)
			renumber(nd.without)
		}
		renumber(nd)
		dirty = append(dirty, idxs...)
		replanned += len(idxs)
		return nd, nil
	}

	var rebuild func(old *planNode, path []dataset.Term) (*planNode, error)
	rebuild = func(old *planNode, path []dataset.Term) (*planNode, error) {
		d := touched[old]
		if d == nil {
			return old, nil
		}
		counts := make([]int32, len(ns.terms))
		copy(counts, old.counts)
		//lint:deterministic order-independent additive scatter into dense counts
		for idx, dc := range d.dcounts {
			counts[idx] += dc
		}
		n := old.n + d.dn
		best, sup, split := ns.decide(n, counts, ignore)
		nd := &planNode{n: n, counts: counts, term: -1, shard: -1}
		if old.term >= 0 {
			if !split || best != old.term {
				return replant(old, path)
			}
			nd.term, nd.sup = best, sup
			ignore[best] = true
			w, err := rebuild(old.with, append(path, ns.terms[best]))
			ignore[best] = false
			if err != nil {
				return nil, err
			}
			wo, err := rebuild(old.without, path)
			if err != nil {
				return nil, err
			}
			nd.with, nd.without = w, wo
			return nd, nil
		}
		if split {
			// A leaf that must now split always changes the shard count, so
			// replant is futile — but route through it anyway for the
			// uniform not-found error handling; it returns errShardShift.
			return replant(old, path)
		}
		nd.shard = old.shard
		oldSh := st.shards[old.shard]
		records, seq, err := applyWithSeq(oldSh.records, oldSh.seq, shardRemove[old.shard], shardAppend[old.shard])
		if err != nil {
			return nil, err
		}
		ns.shards[old.shard] = &repubShard{records: records, seq: seq, path: oldSh.path}
		dirty = append(dirty, old.shard)
		return nd, nil
	}
	root, err := rebuild(st.root, nil)
	if err != nil {
		return nil, nil, RepublishStats{}, err
	}
	ns.root = root

	// Re-anonymize the dirty shards (same index, same PRNG streams) and
	// splice every clean shard's published nodes straight through.
	slices.Sort(dirty)
	for _, si := range dirty {
		sh := ns.shards[si]
		sh.published = ns.runShard(sh, si)
	}
	out := &Anonymized{K: ns.opts.K, M: ns.opts.M}
	for _, sh := range ns.shards {
		out.Clusters = append(out.Clusters, sh.published...)
	}
	return out, ns, RepublishStats{
		Appended:        len(delta.Append),
		Removed:         len(delta.Remove),
		DirtyShards:     len(dirty),
		TotalShards:     len(ns.shards),
		Dirty:           dirty,
		ReplannedShards: replanned,
	}, nil
}
