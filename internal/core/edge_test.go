package core

import (
	"testing"

	"disasso/internal/dataset"
)

// TestAnonymizeSingleRecord: one record cannot meet K=2, but the pipeline
// must still publish it (everything lands in the term chunk) instead of
// panicking.
func TestAnonymizeSingleRecord(t *testing.T) {
	d := dataset.FromRecords([]dataset.Record{dataset.NewRecord(1, 2, 3)})
	a, err := Anonymize(d, Options{K: 2, M: 2, Seed: 1})
	if err != nil {
		t.Fatalf("Anonymize(single) error: %v", err)
	}
	if got := a.NumRecords(); got != 1 {
		t.Fatalf("NumRecords = %d, want 1", got)
	}
	leaves := a.AllLeaves()
	if len(leaves) != 1 {
		t.Fatalf("got %d leaves, want 1", len(leaves))
	}
	// Support 1 < K for every term: all must be disassociated into the term
	// chunk, no record chunks.
	if len(leaves[0].RecordChunks) != 0 {
		t.Errorf("single record produced %d record chunks", len(leaves[0].RecordChunks))
	}
	if !leaves[0].TermChunk.Equal(dataset.NewRecord(1, 2, 3)) {
		t.Errorf("term chunk = %v, want {1, 2, 3}", leaves[0].TermChunk)
	}
}

// TestAnonymizeAllSensitive: when every term is sensitive, HORPART has no
// split candidates and VERPART must put the whole domain in term chunks.
func TestAnonymizeAllSensitive(t *testing.T) {
	var records []dataset.Record
	for i := 0; i < 12; i++ {
		records = append(records, dataset.NewRecord(1, 2, dataset.Term(3+i%3)))
	}
	d := dataset.FromRecords(records)
	sensitive := map[dataset.Term]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	a, err := Anonymize(d, Options{K: 3, M: 2, MaxClusterSize: 5, Sensitive: sensitive, Seed: 1})
	if err != nil {
		t.Fatalf("Anonymize(all sensitive) error: %v", err)
	}
	if got := a.NumRecords(); got != 12 {
		t.Fatalf("NumRecords = %d, want 12", got)
	}
	for li, leaf := range a.AllLeaves() {
		if len(leaf.RecordChunks) != 0 {
			t.Errorf("leaf %d: sensitive terms leaked into %d record chunks", li, len(leaf.RecordChunks))
		}
	}
	// Sensitive terms must never appear in shared chunks either.
	for _, c := range a.AllChunks() {
		for _, term := range c.Domain {
			if sensitive[term] {
				t.Errorf("sensitive term %d published in a chunk domain", term)
			}
		}
	}
}

// TestHorPartAllRecordsOneTerm: a dataset whose every record is the same
// singleton exhausts split terms immediately; mostFrequentTerm must cope
// with the resulting no-candidate calls.
func TestHorPartAllRecordsOneTerm(t *testing.T) {
	var records []dataset.Record
	for i := 0; i < 10; i++ {
		records = append(records, dataset.NewRecord(7))
	}
	d := dataset.FromRecords(records)
	clusters := HorPart(d, 4, nil)
	assertPartition(t, d, clusters)
	if len(clusters) != 1 {
		t.Errorf("got %d clusters, want 1 oversized cluster", len(clusters))
	}
}

// TestHorPartPathologicalChain: pairwise-disjoint singleton records make
// every split peel exactly one record, driving the split tree to depth n.
// The explicit-stack fallback must keep this from exhausting the call stack.
func TestHorPartPathologicalChain(t *testing.T) {
	const n = 10_000
	records := make([]dataset.Record, n)
	for i := range records {
		records[i] = dataset.NewRecord(dataset.Term(i))
	}
	d := dataset.FromRecords(records)
	clusters := HorPart(d, 2, nil)
	total := 0
	for _, c := range clusters {
		total += len(c)
		if len(c) != 1 {
			t.Fatalf("expected singleton clusters, got one of %d", len(c))
		}
	}
	if total != n {
		t.Fatalf("clusters cover %d records, want %d", total, n)
	}
}

// TestHorPartNMatchesSequential: the parallel split must emit the exact
// cluster list of the sequential one for any worker count.
func TestHorPartNMatchesSequential(t *testing.T) {
	d := genDataset(21, 43, 180)
	want := HorPartN(d, 8, nil, 1)
	for _, workers := range []int{2, 4, 8} {
		got := HorPartN(d, 8, nil, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d clusters, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d: cluster %d has %d records, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if !got[i][j].Equal(want[i][j]) {
					t.Fatalf("workers=%d: cluster %d record %d differs", workers, i, j)
				}
			}
		}
	}
}

// TestKMCheckerSlowPathAgrees: force the string-keyed fallback and check it
// accepts/rejects exactly like the packed fast path.
func TestKMCheckerSlowPathAgrees(t *testing.T) {
	records := []dataset.Record{
		dataset.NewRecord(1, 2, 3),
		dataset.NewRecord(1, 2, 3),
		dataset.NewRecord(1, 2),
		dataset.NewRecord(1, 3),
		dataset.NewRecord(2, 3),
		dataset.NewRecord(4), dataset.NewRecord(4),
	}
	for _, k := range []int{2, 3} {
		for _, m := range []int{1, 2, 3} {
			fast := newKMChecker(k, m, records)
			slow := newKMChecker(k, m, records)
			if !slow.packed {
				t.Fatal("fixture should default to the packed path")
			}
			slow.packed = false
			slow.keyBuf = make([]byte, 0, 4*(m+1))
			slow.counts = make(map[string]int)
			for term := dataset.Term(1); term <= 4; term++ {
				gotFast := fast.TryAdd(term)
				gotSlow := slow.TryAdd(term)
				if gotFast != gotSlow {
					t.Errorf("k=%d m=%d TryAdd(%d): fast=%v slow=%v", k, m, term, gotFast, gotSlow)
				}
			}
			if !fast.Domain().Equal(slow.Domain()) {
				t.Errorf("k=%d m=%d: domains diverge: %v vs %v", k, m, fast.Domain(), slow.Domain())
			}
		}
	}
}

// TestIsChunkKMAnonymousSlowAgrees: the packed full check and the
// string-keyed fallback must agree.
func TestIsChunkKMAnonymousSlowAgrees(t *testing.T) {
	dom := dataset.NewRecord(1, 2, 3)
	cases := [][]dataset.Record{
		{dataset.NewRecord(1, 2), dataset.NewRecord(1, 2), dataset.NewRecord(3), dataset.NewRecord(3)},
		{dataset.NewRecord(1, 2), dataset.NewRecord(1), dataset.NewRecord(2)},
		nil,
	}
	for i, subrecords := range cases {
		for _, k := range []int{2, 3} {
			for _, m := range []int{1, 2, 3} {
				fast := IsChunkKMAnonymous(dom, subrecords, k, m)
				slow := isChunkKMAnonymousSlow(dom, subrecords, k, m)
				if fast != slow {
					t.Errorf("case %d k=%d m=%d: fast=%v slow=%v", i, k, m, fast, slow)
				}
			}
		}
	}
}
