package core

import (
	"disasso/internal/dataset"
)

// The paper's running example (Figure 2a): a web search query log of 10
// records. Term IDs are assigned in a fixed order so tests can reference
// them symbolically.
const (
	itunes dataset.Term = iota
	flu
	madonna
	ikea
	ruby
	viagra
	audiA4
	sonyTV
	iphoneSDK
	digitalCam
	panicDis
	playboy
)

// figure2Records returns the ten records r1..r10 of Figure 2a.
func figure2Records() []dataset.Record {
	return []dataset.Record{
		dataset.NewRecord(itunes, flu, madonna, ikea, ruby),           // r1
		dataset.NewRecord(madonna, flu, viagra, ruby, audiA4, sonyTV), // r2
		dataset.NewRecord(itunes, madonna, audiA4, ikea, sonyTV),      // r3
		dataset.NewRecord(itunes, flu, viagra),                        // r4
		dataset.NewRecord(itunes, flu, madonna, audiA4, sonyTV),       // r5
		dataset.NewRecord(madonna, digitalCam, panicDis, playboy),     // r6
		dataset.NewRecord(iphoneSDK, madonna, ikea, ruby),             // r7
		dataset.NewRecord(iphoneSDK, digitalCam, madonna, playboy),    // r8
		dataset.NewRecord(iphoneSDK, digitalCam, panicDis),            // r9
		dataset.NewRecord(iphoneSDK, digitalCam, madonna, ikea, ruby), // r10
	}
}

// figure2P1 and figure2P2 are the paper's horizontal partitioning: P1 =
// r1..r5, P2 = r6..r10.
func figure2P1() []dataset.Record { return figure2Records()[:5] }
func figure2P2() []dataset.Record { return figure2Records()[5:] }
