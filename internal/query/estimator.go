package query

import (
	"sync"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/qindex"
)

// supportViaScan routes Estimator.Support through the retained linear scan
// path instead of the inverted index — the correctness oracle. Tests flip it
// to cross-check the two paths; building with -tags query_scan flips the
// default so the whole suite (including the HTTP server tests) runs on the
// scan path, the same device as internal/core's refine_replan tag.
var supportViaScan = supportViaScanDefault

// Estimator answers support queries over one published dataset through an
// inverted term index: a query visits only the clusters in the intersection
// of its terms' posting lists (sublinear in the cluster count), and
// singleton queries return precomputed estimates without touching the forest
// at all. The estimator is immutable after construction, so any number of
// goroutines may query it concurrently.
//
// Estimates are identical — bit for bit, including float rounding — to the
// scan path Support: the non-intersecting clusters a scan visits contribute
// exact zeros, and the singleton precomputation replays the scan's
// arithmetic operation by operation.
type Estimator struct {
	a          *core.Anonymized
	ix         *qindex.Index
	nodes      []*nodeIndex // per top-level cluster: spans + chunk postings
	singles    []Estimate   // rank -> Support(a, {term})
	numRecords int

	// lazyNodes defers building nodes until the first multi-term query — the
	// snapshot-recovery mode, where the index slabs and singleton table come
	// straight off the snapshot file and rebuilding per-cluster chunk postings
	// up front would turn an O(1) restart back into an O(dataset) reindex.
	// Singleton queries (the common case) never trigger the build.
	lazyNodes bool
	nodesOnce sync.Once
}

// NewEstimator builds the inverted index over the published dataset and the
// estimator on top of it.
func NewEstimator(a *core.Anonymized) *Estimator {
	return NewEstimatorWithIndex(a, qindex.Build(a))
}

// NewEstimatorWithIndex builds an estimator over an already-built index
// (which must index exactly a).
func NewEstimatorWithIndex(a *core.Anonymized, ix *qindex.Index) *Estimator {
	nodes := make([]*nodeIndex, len(a.Clusters))
	for i, n := range a.Clusters {
		nodes[i] = buildNodeIndex(n)
	}
	return &Estimator{
		a:          a,
		ix:         ix,
		nodes:      nodes,
		singles:    computeSingles(a, ix),
		numRecords: a.NumRecords(),
	}
}

// NewRecoveredEstimator builds an estimator over serving state recovered
// from a persisted snapshot: a decoded publication, an index whose slabs may
// be zero-copy views over a file mapping, and the persisted singleton
// estimate table (rank order, as Singles returns). The per-cluster chunk
// postings are rebuilt lazily on the first multi-term query, so recovery
// itself performs no index construction. The estimates are identical to
// NewEstimator(a)'s: the singleton table is the one the original estimator
// computed, and the multi-term path runs the same indexed evaluation over
// the same forest.
func NewRecoveredEstimator(a *core.Anonymized, ix *qindex.Index, singles []Estimate) *Estimator {
	return &Estimator{
		a:          a,
		ix:         ix,
		singles:    singles,
		numRecords: a.NumRecords(),
		lazyNodes:  true,
	}
}

// nodeIndexes returns the per-cluster chunk postings, building them on first
// use for recovered estimators. Safe for concurrent callers.
func (e *Estimator) nodeIndexes() []*nodeIndex {
	if e.lazyNodes {
		e.nodesOnce.Do(func() {
			nodes := make([]*nodeIndex, len(e.a.Clusters))
			for i, n := range e.a.Clusters {
				nodes[i] = buildNodeIndex(n)
			}
			e.nodes = nodes
		})
	}
	return e.nodes
}

// Index returns the underlying inverted index.
func (e *Estimator) Index() *qindex.Index { return e.ix }

// Singles returns the precomputed singleton estimate table, indexed by the
// underlying index's term ranks — the slab internal/snapfile persists.
// Callers must not modify the returned slice.
func (e *Estimator) Singles() []Estimate { return e.singles }

// Publication returns the published dataset the estimator answers for.
func (e *Estimator) Publication() *core.Anonymized { return e.a }

// Support estimates the support of the normalized itemset s, returning the
// same Estimate as Support(a, s).
func (e *Estimator) Support(s dataset.Record) Estimate {
	if supportViaScan {
		return Support(e.a, s)
	}
	var est Estimate
	if len(s) == 0 {
		est.Lower = e.numRecords
		est.Upper = est.Lower
		est.Expected = float64(est.Lower)
		return est
	}
	if len(s) == 1 {
		if r, ok := e.ix.Rank(s[0]); ok {
			return e.singles[r]
		}
		return est
	}
	nodes := e.nodeIndexes()
	for _, ci := range e.ix.IntersectClusters(nil, s) {
		o := estimateNodeIx(e.a.Clusters[ci], nodes[ci], s)
		est.Lower += o.Lower
		est.Upper += o.Upper
		est.Expected += o.Expected
	}
	return clampEstimate(est)
}

// sharedEntry is one ancestor shared chunk's view of a term during the
// singleton precomputation: how many of the chunk's subrecords carry the
// term and how many records the hosting joint spans.
type sharedEntry struct {
	count int
	span  int
}

// singlesPass carries the flat per-rank state of the singleton
// precomputation. All tables are indexed by the qindex rank; node-scoped
// accumulators are epoch-stamped by cluster id so nothing is cleared between
// clusters.
type singlesPass struct {
	ix *qindex.Index

	// Node-scoped accumulators, valid where nodeStamp matches the cluster.
	lower, upper []int
	expected     []float64
	touched      []int32
	nodeStamp    []int32

	// Ancestor shared-chunk stacks, in descent order, plus the ranks with
	// non-empty stacks (activation order; frames truncate on exit).
	shared       [][]sharedEntry
	activeShared []int32

	// Leaf-scoped state, epoch-stamped per leaf.
	leafCnts    [][]int32 // counts per containing record chunk, chunk order
	leafTC      []bool
	leafTouched []int32
	leafStamp   []int32
	leafEpoch   int32
}

// computeSingles precomputes Support(a, {t}) for every published term in one
// walk over the forest, mirroring the scan path's arithmetic exactly: per
// leaf it replays evalLeaf's operations for the singleton case, per joint it
// adds the shared-chunk certain occurrences, per node it applies
// estimateNode's clamps in leaf-major accumulation order, and at the end it
// applies Support's final sandwich clamp.
func computeSingles(a *core.Anonymized, ix *qindex.Index) []Estimate {
	singles := make([]Estimate, ix.NumTerms())
	forEachClusterContribution(a, ix, func(r int32, o Estimate) {
		singles[r].Lower += o.Lower
		singles[r].Upper += o.Upper
		singles[r].Expected += o.Expected
	})
	for r := range singles {
		singles[r] = clampEstimate(singles[r])
	}
	return singles
}

// forEachClusterContribution walks the forest cluster by cluster and emits
// each touched rank's per-cluster clamped estimate, in cluster order — the
// exact contribution sequence computeSingles folds. The delta-republish path
// captures these per shard and re-folds them globally; keeping the fold
// left-to-right in cluster order is what makes the Expected float of an
// incrementally assembled estimator bit-identical to a full build (float
// addition is not associative, so per-part partial sums would not be).
func forEachClusterContribution(a *core.Anonymized, ix *qindex.Index, emit func(r int32, o Estimate)) {
	n := ix.NumTerms()
	p := &singlesPass{
		ix:        ix,
		lower:     make([]int, n),
		upper:     make([]int, n),
		expected:  make([]float64, n),
		nodeStamp: make([]int32, n),
		shared:    make([][]sharedEntry, n),
		leafCnts:  make([][]int32, n),
		leafTC:    make([]bool, n),
		leafStamp: make([]int32, n),
	}
	for i := range p.nodeStamp {
		p.nodeStamp[i] = -1
		p.leafStamp[i] = -1
	}
	for ci, node := range a.Clusters {
		p.touched = p.touched[:0]
		p.walk(node, int32(ci))
		// estimateNode's node-level clamps, then hand off to the fold.
		for _, r := range p.touched {
			emit(r, clampEstimate(Estimate{Lower: p.lower[r], Upper: p.upper[r], Expected: p.expected[r]}))
		}
	}
}

// touch readies the node-scoped accumulators of a rank for the cluster.
func (p *singlesPass) touch(r int32, ci int32) {
	if p.nodeStamp[r] != ci {
		p.nodeStamp[r] = ci
		p.lower[r], p.upper[r], p.expected[r] = 0, 0, 0
		p.touched = append(p.touched, r)
	}
}

// walk processes one node of the cluster forest: joints push their shared
// chunks onto the per-term stacks for the descent and add their certain
// subrecord occurrences to Lower; leaves replay evalLeaf per term.
func (p *singlesPass) walk(n *core.ClusterNode, ci int32) {
	if n.IsLeaf() {
		p.leaf(n.Simple, ci)
		return
	}
	span := n.Size()
	activeMark := len(p.activeShared)
	for i := range n.SharedChunks {
		c := &n.SharedChunks[i]
		for _, t := range c.Domain {
			r := p.ix.MustRank(t)
			if len(p.shared[r]) == 0 {
				p.activeShared = append(p.activeShared, r)
			}
			p.shared[r] = append(p.shared[r], sharedEntry{span: span})
		}
		for _, sr := range c.Subrecords {
			for _, t := range sr {
				r := p.ix.MustRank(t)
				// The subrecord term is in the domain, so the entry just
				// pushed for this chunk is the top of the rank's stack.
				p.shared[r][len(p.shared[r])-1].count++
				// Certain occurrence: a shared subrecord containing the
				// term lands on some record in every reconstruction.
				p.touch(r, ci)
				p.lower[r]++
			}
		}
	}
	for _, child := range n.Children {
		p.walk(child, ci)
	}
	// Pop this frame's stack entries; every rank activated at or below this
	// frame is empty again, so the active list truncates to its entry mark.
	for i := range n.SharedChunks {
		for _, t := range n.SharedChunks[i].Domain {
			r := p.ix.MustRank(t)
			p.shared[r] = p.shared[r][:len(p.shared[r])-1]
		}
	}
	p.activeShared = p.activeShared[:activeMark]
}

// leaf replays evalLeaf for every term visible at this leaf: the terms of
// its own record chunks and term chunk, plus the terms available from
// ancestor shared chunks.
func (p *singlesPass) leaf(leaf *core.Cluster, ci int32) {
	z := leaf.Size
	if z == 0 {
		return
	}
	p.leafEpoch++
	p.leafTouched = p.leafTouched[:0]
	touchLeaf := func(r int32) {
		if p.leafStamp[r] != p.leafEpoch {
			p.leafStamp[r] = p.leafEpoch
			p.leafCnts[r] = p.leafCnts[r][:0]
			p.leafTC[r] = false
			p.leafTouched = append(p.leafTouched, r)
		}
	}
	for i := range leaf.RecordChunks {
		c := &leaf.RecordChunks[i]
		for _, t := range c.Domain {
			r := p.ix.MustRank(t)
			touchLeaf(r)
			p.leafCnts[r] = append(p.leafCnts[r], 0)
		}
		for _, sr := range c.Subrecords {
			for _, t := range sr {
				r := p.ix.MustRank(t)
				p.leafCnts[r][len(p.leafCnts[r])-1]++
			}
		}
	}
	for _, t := range leaf.TermChunk {
		r := p.ix.MustRank(t)
		touchLeaf(r)
		p.leafTC[r] = true
	}

	fz := float64(z)
	// Terms hosted by the leaf's own chunks: evalLeaf's record-chunk and
	// term-chunk sections (ancestor chunks are never consulted once the
	// term is covered).
	for _, r := range p.leafTouched {
		expected := fz
		upper := -1
		inOneChunk := -1
		for _, cnt := range p.leafCnts[r] {
			c := int(cnt)
			inOneChunk = c
			expected *= float64(c) / fz
			if upper == -1 || c < upper {
				upper = c
			}
		}
		if p.leafTC[r] {
			expected /= fz
			if upper == -1 || z < upper {
				upper = z
			}
		}
		if upper > z {
			upper = z
		}
		p.touch(r, ci)
		switch {
		case inOneChunk >= 0 && !p.leafTC[r]:
			p.lower[r] += inOneChunk
		case p.leafTC[r]:
			p.lower[r]++
		}
		if upper > 0 {
			p.upper[r] += upper
		}
		p.expected[r] += expected
	}

	// Terms available only from ancestor shared chunks: evalLeaf's shared
	// section, with capacity summed and probabilities accumulated in
	// root-to-leaf descent order.
	for _, r := range p.activeShared {
		if p.leafStamp[r] == p.leafEpoch {
			continue // covered by the leaf's own chunks above
		}
		capacity := 0
		probSum := 0.0
		for _, en := range p.shared[r] {
			capacity += en.count
			probSum += float64(en.count) / float64(en.span)
		}
		if probSum > 1 {
			probSum = 1
		}
		upper := capacity
		if upper > z {
			upper = z
		}
		p.touch(r, ci)
		if upper > 0 {
			p.upper[r] += upper
		}
		p.expected[r] += fz * probSum
	}
}
