package query

import (
	"slices"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// The indexed per-cluster evaluator. Intersecting posting lists tells the
// Estimator which clusters to visit; this file makes each visit cheap. The
// scan path's estimateNode spends its time scanning chunk subrecords — once
// per record chunk slice, and once per uncovered term per ancestor shared
// chunk per leaf. The Estimator instead precomputes, per chunk, a posting
// list of subrecord indices per domain term; a slice count is then a
// posting-list intersection and a single-term count a length lookup. The
// integer counts are identical by construction, and every float operation
// of estimateNode is replayed in the same order, so the results match the
// scan bit for bit.

// chunkPostings is the per-chunk occurrence index: for each term of the
// chunk's domain, the ascending subrecord indices containing it.
type chunkPostings struct {
	domain dataset.Record // the chunk's domain (shared, not copied)
	off    []int32        // per domain position; len == len(domain)+1
	ids    []int32        // flat subrecord-index backing
}

func buildChunkPostings(c *core.Chunk) chunkPostings {
	d := c.Domain
	counts := make([]int32, len(d))
	for _, sr := range c.Subrecords {
		for _, t := range sr {
			if i, ok := slices.BinarySearch(d, t); ok {
				counts[i]++
			}
		}
	}
	off := make([]int32, len(d)+1)
	total := int32(0)
	for i, n := range counts {
		off[i] = total
		total += n
	}
	off[len(d)] = total
	ids := make([]int32, total)
	next := slices.Clone(off[:len(d)])
	for si, sr := range c.Subrecords {
		for _, t := range sr {
			if i, ok := slices.BinarySearch(d, t); ok {
				ids[next[i]] = int32(si)
				next[i]++
			}
		}
	}
	return chunkPostings{domain: d, off: off, ids: ids}
}

// listAt returns the posting list of the term at domain position i.
func (cp *chunkPostings) listAt(i int) []int32 {
	return cp.ids[cp.off[i]:cp.off[i+1]]
}

// count returns how many subrecords contain the term, 0 when the term is
// outside the domain.
func (cp *chunkPostings) count(t dataset.Term) (int, bool) {
	i, ok := slices.BinarySearch(cp.domain, t)
	if !ok {
		return 0, false
	}
	return len(cp.listAt(i)), true
}

// countAll returns how many subrecords contain every term of the non-empty
// slice, which must be a subset of the domain. It walks the shortest
// posting list probing the others — the subrecord-scan loop of the scan
// path, reduced to the occurrences of the rarest term.
func (cp *chunkPostings) countAll(slice dataset.Record) int {
	var buf [4][]int32
	lists := buf[:0]
	if len(slice) > len(buf) {
		lists = make([][]int32, 0, len(slice))
	}
	minIdx := 0
	for _, t := range slice {
		i, ok := slices.BinarySearch(cp.domain, t)
		if !ok {
			return 0
		}
		lists = append(lists, cp.listAt(i))
		if len(lists[len(lists)-1]) < len(lists[minIdx]) {
			minIdx = len(lists) - 1
		}
	}
	cnt := 0
outer:
	for _, id := range lists[minIdx] {
		for j, l := range lists {
			if j == minIdx {
				continue
			}
			if _, ok := slices.BinarySearch(l, id); !ok {
				continue outer
			}
		}
		cnt++
	}
	return cnt
}

// nodeIndex shadows one published cluster node: precomputed spans and chunk
// postings, parallel to the node's own structure.
type nodeIndex struct {
	size     int // == node.Size()
	chunks   []chunkPostings
	children []*nodeIndex
}

func buildNodeIndex(n *core.ClusterNode) *nodeIndex {
	ni := &nodeIndex{size: n.Size()}
	if n.IsLeaf() {
		ni.chunks = make([]chunkPostings, len(n.Simple.RecordChunks))
		for i := range n.Simple.RecordChunks {
			ni.chunks[i] = buildChunkPostings(&n.Simple.RecordChunks[i])
		}
		return ni
	}
	ni.chunks = make([]chunkPostings, len(n.SharedChunks))
	for i := range n.SharedChunks {
		ni.chunks[i] = buildChunkPostings(&n.SharedChunks[i])
	}
	ni.children = make([]*nodeIndex, len(n.Children))
	for i, c := range n.Children {
		ni.children[i] = buildNodeIndex(c)
	}
	return ni
}

// sharedPartIx mirrors sharedPart with the chunk's postings in place of its
// subrecords. The scan path's materialized slice is not carried: the leaf
// evaluation only ever asks per-term counts of ancestor chunks.
type sharedPartIx struct {
	post *chunkPostings
	span int
}

// hasCommonTerm reports whether the small normalized itemset s shares a
// term with the (typically larger) normalized domain — the allocation-free
// pre-check before materializing an intersection, since most chunks a query
// walks do not intersect it at all.
func hasCommonTerm(s, domain dataset.Record) bool {
	for _, t := range s {
		if _, ok := slices.BinarySearch(domain, t); ok {
			return true
		}
	}
	return false
}

// estimateNodeIx is estimateNode on the shadow index: same decomposition,
// same accumulation order, same clamps — with every subrecord scan replaced
// by a posting lookup.
func estimateNodeIx(n *core.ClusterNode, ni *nodeIndex, s dataset.Record) Estimate {
	var est Estimate
	walkLeavesIx(n, ni, s, nil, &est)
	sharedLowerIx(ni, s, &est)
	return clampEstimate(est)
}

// sharedLowerIx adds the certain occurrences inside shared chunks — the
// n.Walk block of estimateNode.
func sharedLowerIx(ni *nodeIndex, s dataset.Record, est *Estimate) {
	if ni.children == nil {
		return
	}
	for i := range ni.chunks {
		cp := &ni.chunks[i]
		if !cp.domain.ContainsAll(s) {
			continue
		}
		est.Lower += cp.countAll(s)
	}
	for _, child := range ni.children {
		sharedLowerIx(child, s, est)
	}
}

func walkLeavesIx(n *core.ClusterNode, ni *nodeIndex, s dataset.Record, shared []sharedPartIx, est *Estimate) {
	if n.IsLeaf() {
		evalLeafIx(n.Simple, ni, s, shared, est)
		return
	}
	next := shared
	for i := range ni.chunks {
		cp := &ni.chunks[i]
		if !hasCommonTerm(s, cp.domain) {
			continue
		}
		next = append(next, sharedPartIx{post: cp, span: ni.size})
	}
	for i, child := range n.Children {
		walkLeavesIx(child, ni.children[i], s, next, est)
	}
}

func evalLeafIx(leaf *core.Cluster, ni *nodeIndex, s dataset.Record, shared []sharedPartIx, est *Estimate) {
	z := leaf.Size
	if z == 0 {
		return
	}
	covered := dataset.Record{}
	upper := -1
	expected := float64(z)

	inOneChunkCount := -1
	for i := range ni.chunks {
		cp := &ni.chunks[i]
		if !hasCommonTerm(s, cp.domain) {
			continue
		}
		slice := s.Intersect(cp.domain)
		covered = covered.Union(slice)
		cnt := cp.countAll(slice)
		if len(slice) == len(s) {
			inOneChunkCount = cnt
		}
		expected *= float64(cnt) / float64(z)
		if upper == -1 || cnt < upper {
			upper = cnt
		}
	}

	var tcTerms dataset.Record
	if hasCommonTerm(s, leaf.TermChunk) {
		tcTerms = s.Intersect(leaf.TermChunk)
		covered = covered.Union(tcTerms)
		for range tcTerms {
			expected /= float64(z)
		}
		if upper == -1 || z < upper {
			upper = z
		}
	}

	// Terms not covered by the leaf's own parts must come from ancestor
	// shared chunks. covered ⊆ s by construction, so once every missing
	// term is found the itemset is fully covered — the scan path's trailing
	// covered.Equal(s) check can never fire and is elided.
	if !covered.Equal(s) {
		for _, t := range s.Subtract(covered) {
			capacity := 0
			probSum := 0.0
			found := false
			for _, p := range shared {
				cnt, ok := p.post.count(t)
				if !ok {
					continue
				}
				found = true
				capacity += cnt
				probSum += float64(cnt) / float64(p.span)
			}
			if !found {
				return
			}
			if probSum > 1 {
				probSum = 1
			}
			expected *= probSum
			if upper == -1 || capacity < upper {
				upper = capacity
			}
		}
	}
	if upper > z {
		upper = z
	}

	switch {
	case inOneChunkCount >= 0 && len(tcTerms) == 0:
		est.Lower += inOneChunkCount
	case len(tcTerms) == 1 && len(s) == 1:
		est.Lower++
	}
	if upper > 0 {
		est.Upper += upper
	}
	est.Expected += expected
}
