package query

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/reconstruct"
)

func rec(terms ...dataset.Term) dataset.Record { return dataset.NewRecord(terms...) }

// fixture: one cluster, chunk {1,2} with subrecords {1,2}×3, {1}×2, term
// chunk {9}, size 6.
func fixture() *core.Anonymized {
	return &core.Anonymized{
		K: 3, M: 2,
		Clusters: []*core.ClusterNode{{Simple: &core.Cluster{
			Size: 6,
			RecordChunks: []core.Chunk{{
				Domain: rec(1, 2),
				Subrecords: []dataset.Record{
					rec(1, 2), rec(1, 2), rec(1, 2), rec(1), rec(1),
				},
			}},
			TermChunk: rec(9),
		}}},
	}
}

func TestSupportEmptyItemset(t *testing.T) {
	est := Support(fixture(), rec())
	if est.Lower != 6 || est.Upper != 6 || est.Expected != 6 {
		t.Errorf("empty itemset = %+v, want 6 everywhere", est)
	}
}

func TestSupportSingleChunkExact(t *testing.T) {
	est := Support(fixture(), rec(1, 2))
	if est.Lower != 3 || est.Upper != 3 || est.Expected != 3 {
		t.Errorf("in-chunk pair = %+v, want exact 3", est)
	}
	est = Support(fixture(), rec(1))
	if est.Lower != 5 || est.Upper != 5 || est.Expected != 5 {
		t.Errorf("single term = %+v, want exact 5", est)
	}
}

func TestSupportTermChunkSingle(t *testing.T) {
	est := Support(fixture(), rec(9))
	if est.Lower != 1 {
		t.Errorf("term-chunk term lower = %d, want 1", est.Lower)
	}
	if est.Upper != 6 {
		t.Errorf("term-chunk term upper = %d, want 6 (cluster size)", est.Upper)
	}
	if est.Expected != 1 {
		t.Errorf("term-chunk term expected = %v, want 1", est.Expected)
	}
}

func TestSupportCrossChunk(t *testing.T) {
	// {1, 9} spans the record chunk (count 5) and the term chunk.
	est := Support(fixture(), rec(1, 9))
	if est.Lower != 0 {
		t.Errorf("cross-chunk lower = %d, want 0", est.Lower)
	}
	if est.Upper != 5 {
		// min(record-chunk count 5, term-chunk span 6)
		t.Errorf("cross-chunk upper = %d, want 5", est.Upper)
	}
	// Expected: 6 × (5/6) × (1/6) = 5/6.
	if est.Expected < 0.82 || est.Expected > 0.84 {
		t.Errorf("cross-chunk expected = %v, want 5/6", est.Expected)
	}
}

func TestSupportAbsentTerm(t *testing.T) {
	est := Support(fixture(), rec(42))
	if est.Lower != 0 || est.Upper != 0 || est.Expected != 0 {
		t.Errorf("absent term = %+v, want zero", est)
	}
	// Pair with one absent term is impossible too.
	est = Support(fixture(), rec(1, 42))
	if est.Upper != 0 {
		t.Errorf("pair with absent term = %+v, want zero", est)
	}
}

func TestSupportTwoTermChunkTerms(t *testing.T) {
	a := fixture()
	a.Clusters[0].Simple.TermChunk = rec(8, 9)
	est := Support(a, rec(8, 9))
	if est.Lower != 0 || est.Upper != 6 {
		t.Errorf("two term-chunk terms = %+v", est)
	}
	// Expected 6 × (1/6)² = 1/6.
	if est.Expected < 0.16 || est.Expected > 0.17 {
		t.Errorf("expected = %v, want 1/6", est.Expected)
	}
}

// Against real anonymizer output: the bounds must bracket the original
// support AND the support of every reconstruction.
func TestBoundsBracketReality(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 33))
	var records []dataset.Record
	for i := 0; i < 400; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(5))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(30))
		}
		records = append(records, rec(terms...))
	}
	d := dataset.FromRecords(records)
	a, err := core.Anonymize(d, core.Options{K: 3, M: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	recons := reconstruct.SampleMany(a, 5, rng)

	check := func(s dataset.Record) {
		t.Helper()
		est := Support(a, s)
		orig := d.SupportOf(s)
		if orig < est.Lower || orig > est.Upper {
			t.Errorf("itemset %v: original support %d outside [%d, %d]", s, orig, est.Lower, est.Upper)
		}
		for i, r := range recons {
			got := r.SupportOf(s)
			if got < est.Lower {
				t.Errorf("itemset %v: reconstruction %d support %d below lower bound %d", s, i, got, est.Lower)
			}
		}
		if est.Expected < float64(est.Lower)-1e-9 || (est.Upper >= 0 && est.Expected > float64(est.Upper)+1e-9) {
			t.Errorf("itemset %v: expected %v outside bounds [%d, %d]", s, est.Expected, est.Lower, est.Upper)
		}
	}
	for term := dataset.Term(0); term < 30; term++ {
		check(rec(term))
	}
	for trial := 0; trial < 100; trial++ {
		a1 := dataset.Term(rng.IntN(30))
		a2 := dataset.Term(rng.IntN(30))
		if a1 != a2 {
			check(rec(a1, a2))
		}
	}
}

// The expected estimator should, on average, land nearer the original
// support than the worst-case bounds for pairs (sanity of the probabilistic
// model rather than a formal guarantee).
func TestExpectedEstimatorReasonable(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 55))
	var records []dataset.Record
	for i := 0; i < 600; i++ {
		base := dataset.Term(rng.IntN(6) * 2)
		records = append(records, rec(base, base+1, dataset.Term(12+rng.IntN(20))))
	}
	d := dataset.FromRecords(records)
	a, err := core.Anonymize(d, core.Options{K: 3, M: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	totalErrExp, totalErrLower := 0.0, 0.0
	n := 0
	for b := dataset.Term(0); b < 12; b += 2 {
		s := rec(b, b+1)
		orig := float64(d.SupportOf(s))
		if orig == 0 {
			continue
		}
		est := Support(a, s)
		totalErrExp += abs(orig - est.Expected)
		totalErrLower += abs(orig - float64(est.Lower))
		n++
	}
	if n == 0 {
		t.Skip("no structured pairs survived")
	}
	if totalErrExp > totalErrLower+1e-9 {
		t.Errorf("expected-model error %v worse than lower-bound error %v", totalErrExp/float64(n), totalErrLower/float64(n))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Property: support estimates are antitone in the itemset — adding a term
// can only shrink (or keep) every estimator, mirroring real supports.
func TestEstimatorsAntitone(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 99))
	var records []dataset.Record
	for i := 0; i < 300; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(5))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(25))
		}
		records = append(records, rec(terms...))
	}
	d := dataset.FromRecords(records)
	a, err := core.Anonymize(d, core.Options{K: 3, M: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		t1 := dataset.Term(rng.IntN(25))
		t2 := dataset.Term(rng.IntN(25))
		if t1 == t2 {
			continue
		}
		single := Support(a, rec(t1))
		pair := Support(a, rec(t1, t2))
		if pair.Upper > single.Upper {
			t.Fatalf("{%d,%d}.Upper=%d > {%d}.Upper=%d", t1, t2, pair.Upper, t1, single.Upper)
		}
		if pair.Lower > single.Lower {
			t.Fatalf("{%d,%d}.Lower=%d > {%d}.Lower=%d", t1, t2, pair.Lower, t1, single.Lower)
		}
		if pair.Expected > single.Expected+1e-9 {
			t.Fatalf("{%d,%d}.Expected=%v > {%d}.Expected=%v", t1, t2, pair.Expected, t1, single.Expected)
		}
	}
}
