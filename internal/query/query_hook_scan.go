//go:build query_scan

package query

// supportViaScanDefault under the query_scan build tag forces the reference
// path: every Estimator query runs the linear cluster scan, with the index
// unused. Results must be identical to the indexed path.
const supportViaScanDefault = true
