package query

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// forceIndexed runs fn with the scan-fallback hook off so the indexed path
// is what's under test even under -tags query_scan.
func forceIndexed(t *testing.T, fn func()) {
	t.Helper()
	old := supportViaScan
	supportViaScan = false
	defer func() { supportViaScan = old }()
	fn()
}

func randomDataset(rng *rand.Rand, n, domain, maxLen int) *dataset.Dataset {
	var records []dataset.Record
	for i := 0; i < n; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(maxLen))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(domain))
		}
		records = append(records, dataset.NewRecord(terms...))
	}
	return dataset.FromRecords(records)
}

// The oracle property test of the tentpole: across K/M/cluster-size
// configurations and random datasets, the indexed Estimator must return
// Estimates identical — including the Expected float, bit for bit — to the
// retained scan path, for singletons and multi-term itemsets alike,
// including terms absent from the publication.
func TestEstimatorMatchesScanExactly(t *testing.T) {
	configs := []struct {
		k, m, maxCluster int
	}{
		{3, 2, 0},
		{5, 2, 0},
		{3, 3, 0},
		{4, 2, 12},
		{2, 1, 8},
	}
	for _, cfg := range configs {
		for _, seed := range []uint64{1, 2, 3} {
			rng := rand.New(rand.NewPCG(seed, uint64(cfg.k*100+cfg.m)))
			d := randomDataset(rng, 500, 40, 5)
			a, err := core.Anonymize(d, core.Options{
				K: cfg.k, M: cfg.m, MaxClusterSize: cfg.maxCluster, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			est := NewEstimator(a)
			forceIndexed(t, func() {
				check := func(s dataset.Record) {
					t.Helper()
					got := est.Support(s)
					want := Support(a, s)
					if got != want {
						t.Fatalf("config %+v seed %d itemset %v: indexed %+v != scan %+v",
							cfg, seed, s, got, want)
					}
				}
				check(dataset.Record{})
				for term := dataset.Term(0); term < 44; term++ { // incl. absent terms
					check(dataset.NewRecord(term))
				}
				for trial := 0; trial < 150; trial++ {
					size := 2 + rng.IntN(3)
					terms := make([]dataset.Term, size)
					for j := range terms {
						terms[j] = dataset.Term(rng.IntN(44))
					}
					check(dataset.NewRecord(terms...))
				}
			})
		}
	}
}

// The estimator sandwich invariant: Lower ≤ Expected ≤ Upper holds for every
// estimate of both paths, on random datasets and itemsets.
func TestSupportSandwichInvariant(t *testing.T) {
	for _, seed := range []uint64{10, 11, 12} {
		rng := rand.New(rand.NewPCG(seed, 77))
		d := randomDataset(rng, 400, 30, 5)
		a, err := core.Anonymize(d, core.Options{K: 3, M: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		est := NewEstimator(a)
		check := func(s dataset.Record, e Estimate, path string) {
			t.Helper()
			if e.Lower > e.Upper {
				t.Errorf("seed %d itemset %v (%s): Lower %d > Upper %d", seed, s, path, e.Lower, e.Upper)
			}
			if e.Expected < float64(e.Lower) || e.Expected > float64(e.Upper) {
				t.Errorf("seed %d itemset %v (%s): Expected %v outside [%d, %d]",
					seed, s, path, e.Expected, e.Lower, e.Upper)
			}
		}
		forceIndexed(t, func() {
			for trial := 0; trial < 300; trial++ {
				size := 1 + rng.IntN(4)
				terms := make([]dataset.Term, size)
				for j := range terms {
					terms[j] = dataset.Term(rng.IntN(33))
				}
				s := dataset.NewRecord(terms...)
				check(s, Support(a, s), "scan")
				check(s, est.Support(s), "indexed")
			}
		})
	}
}

// The scan-hook must actually route through the scan path and still agree.
func TestEstimatorScanHook(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	d := randomDataset(rng, 300, 25, 4)
	a, err := core.Anonymize(d, core.Options{K: 3, M: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(a)
	old := supportViaScan
	defer func() { supportViaScan = old }()
	for trial := 0; trial < 50; trial++ {
		s := dataset.NewRecord(dataset.Term(rng.IntN(25)), dataset.Term(rng.IntN(25)))
		supportViaScan = true
		viaScan := est.Support(s)
		supportViaScan = false
		viaIndex := est.Support(s)
		if viaScan != viaIndex {
			t.Fatalf("itemset %v: scan-hook %+v != indexed %+v", s, viaScan, viaIndex)
		}
	}
}

// Estimator on joint-heavy output: force small clusters so REFINE builds
// deep joints, and require exact agreement (exercises the shared-chunk
// stack of the singleton precomputation).
func TestEstimatorMatchesScanOnJointHeavyForest(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	var records []dataset.Record
	// Correlated pairs so REFINE has refining terms to share.
	for i := 0; i < 800; i++ {
		base := dataset.Term(rng.IntN(8) * 2)
		extra := dataset.Term(16 + rng.IntN(12))
		records = append(records, dataset.NewRecord(base, base+1, extra))
	}
	a, err := core.Anonymize(dataset.FromRecords(records), core.Options{K: 2, M: 2, MaxClusterSize: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	joints := 0
	for _, n := range a.Clusters {
		n.Walk(func(cn *core.ClusterNode) {
			if !cn.IsLeaf() {
				joints++
			}
		})
	}
	if joints == 0 {
		t.Skip("workload produced no joint clusters; nothing joint-specific to test")
	}
	est := NewEstimator(a)
	forceIndexed(t, func() {
		for term := dataset.Term(0); term < 28; term++ {
			if got, want := est.Support(dataset.NewRecord(term)), Support(a, dataset.NewRecord(term)); got != want {
				t.Fatalf("term %d: indexed %+v != scan %+v", term, got, want)
			}
		}
		for trial := 0; trial < 200; trial++ {
			s := dataset.NewRecord(dataset.Term(rng.IntN(28)), dataset.Term(rng.IntN(28)), dataset.Term(rng.IntN(28)))
			if got, want := est.Support(s), Support(a, s); got != want {
				t.Fatalf("itemset %v: indexed %+v != scan %+v", s, got, want)
			}
		}
	})
}
