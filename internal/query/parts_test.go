package query

import (
	"math/rand/v2"
	"reflect"
	"slices"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// partition splits the publication's clusters into contiguous parts at the
// cut points and builds an EstimatorPart over each.
func partition(a *core.Anonymized, cuts []int) []*EstimatorPart {
	var parts []*EstimatorPart
	prev := 0
	for _, c := range append(slices.Clone(cuts), len(a.Clusters)) {
		if c <= prev {
			continue
		}
		parts = append(parts, BuildEstimatorPart(a.K, a.M, a.Clusters[prev:c]))
		prev = c
	}
	return parts
}

// TestEstimatorFromPartsExact proves the part-assembled estimator is
// indistinguishable from a full build: identical precomputed singles
// (including Expected bits) and identical answers for a battery of queries.
func TestEstimatorFromPartsExact(t *testing.T) {
	for _, seed := range []uint64{1, 2, 5} {
		rng := rand.New(rand.NewPCG(seed, 31))
		d := randomDataset(rng, 400, 40, 5)
		a, err := core.Anonymize(d, core.Options{K: 3, M: 2, MaxClusterSize: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		want := NewEstimator(a)
		cutsets := [][]int{nil, {len(a.Clusters) / 3, 2 * len(a.Clusters) / 3}}
		var random []int
		for c := rng.IntN(4) + 1; c < len(a.Clusters); c += rng.IntN(5) + 1 {
			random = append(random, c)
		}
		cutsets = append(cutsets, random)
		for wi, cuts := range cutsets {
			got := NewEstimatorFromParts(a, partition(a, cuts))
			if !reflect.DeepEqual(got.singles, want.singles) {
				t.Fatalf("seed %d cuts %d: precomputed singles differ", seed, wi)
			}
			if got.numRecords != want.numRecords {
				t.Fatalf("seed %d cuts %d: record counts differ: %d vs %d", seed, wi, got.numRecords, want.numRecords)
			}
			forceIndexed(t, func() {
				for term := dataset.Term(0); term < 44; term++ {
					s := dataset.NewRecord(term)
					if g, w := got.Support(s), want.Support(s); g != w {
						t.Fatalf("seed %d cuts %d term %d: %+v != %+v", seed, wi, term, g, w)
					}
				}
				for q := 0; q < 60; q++ {
					s := make(dataset.Record, 0, 3)
					for len(s) < 2+q%2 {
						s = append(s, dataset.Term(rng.IntN(40)))
					}
					s = s.Normalize()
					if g, w := got.Support(s), want.Support(s); g != w {
						t.Fatalf("seed %d cuts %d itemset %v: %+v != %+v", seed, wi, s, g, w)
					}
				}
			})
		}
	}
}
