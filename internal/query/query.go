// Package query answers support queries directly on the disassociated form,
// without materializing reconstructions — the analysis mode Section 6 of the
// paper describes: "the analyst can compute lower bounds of the supports of
// all terms and itemsets [...] Moreover, the analyst can employ models for
// answering queries in probabilistic databases to directly query the
// anonymization result".
package query

import (
	"disasso/internal/core"
	"disasso/internal/dataset"
)

// Estimate carries three support estimators for one itemset:
//
//   - Lower: appearances certain in every reconstruction — occurrences
//     inside single chunks, plus term-chunk presence for singletons.
//   - Upper: a bound no reconstruction can exceed — per leaf, the minimum
//     across the chunk parts hosting the itemset, summed over leaves.
//   - Expected: the probabilistic model the paper cites — each chunk's
//     subrecords are uniform random assignments to the records the chunk
//     spans, independent across chunks, and each term-chunk term attaches
//     to exactly one uniformly chosen record of its cluster.
type Estimate struct {
	Lower    int
	Upper    int
	Expected float64
}

// Support estimates the support of the normalized itemset s across the
// published dataset by a linear scan over every cluster node. It is the
// reference path: Estimator answers the same queries through an inverted
// index and must return identical estimates.
func Support(a *core.Anonymized, s dataset.Record) Estimate {
	var est Estimate
	if len(s) == 0 {
		est.Lower = a.NumRecords()
		est.Upper = est.Lower
		est.Expected = float64(est.Lower)
		return est
	}
	for _, node := range a.Clusters {
		o := estimateNode(node, s)
		est.Lower += o.Lower
		est.Upper += o.Upper
		est.Expected += o.Expected
	}
	return clampEstimate(est)
}

// clampEstimate enforces the sandwich invariant Lower ≤ Expected ≤ Upper.
// Every per-node estimate and every cluster sum passes through it — the
// single definition keeps the scan path, the indexed path and the singleton
// precomputation in lockstep. At the sum level it matters because integer
// sums preserve Lower ≤ Upper exactly while the Expected float accumulates
// independent rounding per cluster, so a hair of drift past an integer
// bound is possible and is clamped rather than leaked to callers.
func clampEstimate(est Estimate) Estimate {
	if est.Upper < est.Lower {
		est.Upper = est.Lower
	}
	if est.Expected < float64(est.Lower) {
		est.Expected = float64(est.Lower)
	}
	if est.Expected > float64(est.Upper) {
		est.Expected = float64(est.Upper)
	}
	return est
}

// sharedPart is an ancestor shared chunk applicable to a leaf. The terms a
// leaf actually needs from it depend on what the leaf's own chunks already
// cover (a term may legitimately sit in both a record chunk here and the
// shared chunk via other leaves), so counts are computed per leaf.
type sharedPart struct {
	chunk *core.Chunk
	slice dataset.Record // itemset terms inside the chunk domain
	span  int
}

// countContaining returns how many of the chunk's subrecords contain the
// normalized slice.
func countContaining(c *core.Chunk, slice dataset.Record) int {
	n := 0
	for _, sr := range c.Subrecords {
		if sr.ContainsAll(slice) {
			n++
		}
	}
	return n
}

// estimateNode estimates one top-level cluster node's contribution by
// decomposing the node's records into its leaves: each leaf's records draw
// from the leaf's own record chunks and term chunk plus the shared chunks of
// every ancestor joint.
func estimateNode(n *core.ClusterNode, s dataset.Record) Estimate {
	var est Estimate
	walkLeaves(n, s, nil, &est)

	// Certain occurrences inside shared chunks: a shared subrecord
	// containing the whole itemset lands on some record of the joint in
	// every valid reconstruction, and (by the disjointness invariants of
	// REFINE) on a record not already counted by a leaf part.
	n.Walk(func(cn *core.ClusterNode) {
		if cn.IsLeaf() {
			return
		}
		for _, c := range cn.SharedChunks {
			if !c.Domain.ContainsAll(s) {
				continue
			}
			for _, sr := range c.Subrecords {
				if sr.ContainsAll(s) {
					est.Lower++
				}
			}
		}
	})
	return clampEstimate(est)
}

// walkLeaves descends the node tree accumulating the ancestor shared-chunk
// parts, then evaluates each leaf.
func walkLeaves(n *core.ClusterNode, s dataset.Record, shared []sharedPart, est *Estimate) {
	if n.IsLeaf() {
		evalLeaf(n.Simple, s, shared, est)
		return
	}
	span := n.Size()
	next := shared
	for i := range n.SharedChunks {
		c := &n.SharedChunks[i]
		slice := s.Intersect(c.Domain)
		if len(slice) == 0 {
			continue
		}
		next = append(next, sharedPart{chunk: c, slice: slice, span: span})
	}
	for _, child := range n.Children {
		walkLeaves(child, s, next, est)
	}
}

// evalLeaf computes one leaf's contribution to the three estimators.
func evalLeaf(leaf *core.Cluster, s dataset.Record, shared []sharedPart, est *Estimate) {
	z := leaf.Size
	if z == 0 {
		return
	}
	covered := dataset.Record{}
	upper := -1
	expected := float64(z)

	// Leaf record chunks.
	inOneChunkCount := -1 // count when the whole itemset sits in one chunk
	for _, c := range leaf.RecordChunks {
		slice := s.Intersect(c.Domain)
		if len(slice) == 0 {
			continue
		}
		covered = covered.Union(slice)
		cnt := 0
		for _, sr := range c.Subrecords {
			if sr.ContainsAll(slice) {
				cnt++
			}
		}
		if len(slice) == len(s) {
			inOneChunkCount = cnt
		}
		expected *= float64(cnt) / float64(z)
		if upper == -1 || cnt < upper {
			upper = cnt
		}
	}

	// Leaf term chunk: each term attaches to exactly one of z records.
	tcTerms := s.Intersect(leaf.TermChunk)
	if len(tcTerms) > 0 {
		covered = covered.Union(tcTerms)
		for range tcTerms {
			expected /= float64(z)
		}
		if upper == -1 || z < upper {
			upper = z
		}
	}

	// Ancestor shared chunks: the terms not already covered by the leaf's
	// own parts must each come from some ancestor chunk. A term may be
	// available in several chunks along the chain (with disjoint source
	// occurrences), so its capacity is the summed count across them — the
	// sound per-term bound (any record carrying the term uses one of those
	// subrecords). Spans exceed the leaf; probabilities stay per-record
	// uniform over each joint.
	for _, t := range s.Subtract(covered) {
		capacity := 0
		probSum := 0.0
		found := false
		single := dataset.Record{t}
		for _, p := range shared {
			if !p.chunk.Domain.Contains(t) {
				continue
			}
			found = true
			cnt := countContaining(p.chunk, single)
			capacity += cnt
			probSum += float64(cnt) / float64(p.span)
		}
		if !found {
			return // term unavailable: itemset impossible within this leaf
		}
		covered = covered.Union(single)
		if probSum > 1 {
			probSum = 1
		}
		expected *= probSum
		if upper == -1 || capacity < upper {
			upper = capacity
		}
	}

	if !covered.Equal(s) {
		return // itemset impossible within this leaf
	}
	if upper > z {
		upper = z // a leaf cannot host more candidates than records
	}

	// Lower bound: certain only in the single-chunk cases.
	switch {
	case inOneChunkCount >= 0 && len(tcTerms) == 0:
		est.Lower += inOneChunkCount
	case len(tcTerms) == 1 && len(s) == 1:
		est.Lower++ // the term chunk discloses presence
	}
	if upper > 0 {
		est.Upper += upper
	}
	est.Expected += expected
}
