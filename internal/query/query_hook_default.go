//go:build !query_scan

package query

// supportViaScanDefault selects the indexed path: Estimator.Support answers
// through the inverted index. Build with -tags query_scan to route every
// Estimator query through the reference scan path instead (used to
// cross-check that the two paths are interchangeable).
const supportViaScanDefault = false
