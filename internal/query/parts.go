package query

import (
	"disasso/internal/core"
	"disasso/internal/qindex"
)

// EstimatorPart is the reusable serving state of one contiguous segment of a
// publication's top-level clusters — in practice, one delta-republish shard.
// A part is immutable; a delta republish rebuilds parts only for its dirty
// shards and assembles the full estimator from the mixed old and new parts
// with NewEstimatorFromParts, making index and estimator maintenance
// O(churn) like the anonymization itself.
type EstimatorPart struct {
	a       *core.Anonymized // the segment's clusters under the publication's K/M
	ix      *qindex.Index    // inverted index over the segment alone
	nodes   []*nodeIndex     // per-cluster chunk postings, reusable as-is
	contrib [][]Estimate     // per local rank: per-cluster clamped singleton contributions, cluster order
	records int
}

// BuildEstimatorPart indexes one contiguous cluster segment of a publication
// with parameters k and m.
func BuildEstimatorPart(k, m int, clusters []*core.ClusterNode) *EstimatorPart {
	pa := &core.Anonymized{K: k, M: m, Clusters: clusters}
	ix := qindex.Build(pa)
	nodes := make([]*nodeIndex, len(clusters))
	for i, n := range clusters {
		nodes[i] = buildNodeIndex(n)
	}
	contrib := make([][]Estimate, ix.NumTerms())
	forEachClusterContribution(pa, ix, func(r int32, o Estimate) {
		contrib[r] = append(contrib[r], o)
	})
	return &EstimatorPart{a: pa, ix: ix, nodes: nodes, contrib: contrib, records: pa.NumRecords()}
}

// NumClusters returns the number of top-level clusters the part covers.
func (p *EstimatorPart) NumClusters() int { return len(p.a.Clusters) }

// NewEstimatorFromParts assembles the estimator of a full publication from
// its contiguous parts: parts[i] must cover the i-th segment of a.Clusters,
// in order. The result is identical — including every Expected float bit —
// to NewEstimator(a): the inverted index is merged segment-wise, per-cluster
// node indexes are spliced through, and the singleton estimates are re-folded
// from the parts' per-cluster contributions in global cluster order, exactly
// the sequence computeSingles produces.
func NewEstimatorFromParts(a *core.Anonymized, parts []*EstimatorPart) *Estimator {
	ixParts := make([]*qindex.Index, len(parts))
	nodes := make([]*nodeIndex, 0, len(a.Clusters))
	numRecords := 0
	for i, p := range parts {
		ixParts[i] = p.ix
		nodes = append(nodes, p.nodes...)
		numRecords += p.records
	}
	ix := qindex.Merge(a, ixParts)
	singles := make([]Estimate, ix.NumTerms())
	for _, p := range parts {
		terms := p.ix.Terms()
		g := int32(0)
		for lr, t := range terms {
			for ix.TermOf(g) != t {
				g++
			}
			for _, o := range p.contrib[lr] {
				singles[g].Lower += o.Lower
				singles[g].Upper += o.Upper
				singles[g].Expected += o.Expected
			}
		}
	}
	for r := range singles {
		singles[r] = clampEstimate(singles[r])
	}
	return &Estimator{
		a:          a,
		ix:         ix,
		nodes:      nodes,
		singles:    singles,
		numRecords: numRecords,
	}
}
