// Package realdata synthesizes stand-ins for the three real datasets of the
// paper's evaluation (Figure 6): POS (an electronics retailer's transaction
// log) and WV1/WV2 (e-commerce click-streams), all introduced by Zheng,
// Kohavi & Mason (KDD 2001) and not publicly redistributable.
//
// Substitution rationale (see DESIGN.md §4): disassociation's behaviour is
// driven by the term-support distribution (which terms clear the threshold
// k), the record-length distribution (how many chunks VERPART forms) and the
// dataset-to-domain density ratio (which Figure 7 identifies as the factor
// separating POS/WV1 from WV2). The stand-ins match the published |D|, |T|,
// max and average record sizes, use Zipf-distributed term popularity — the
// standard model for query/click logs — and inherit Quest-style pattern
// co-occurrence so frequent itemsets exist to preserve or lose.
package realdata

import (
	"math/rand/v2"

	"disasso/internal/dataset"
	"disasso/internal/quest"
)

// Spec describes a real dataset's published statistics plus the synthesis
// knobs used to imitate it.
type Spec struct {
	Name       string
	NumRecords int     // |D| from Figure 6
	DomainSize int     // |T| from Figure 6
	MaxRecord  int     // max record size from Figure 6
	AvgRecord  float64 // avg record size from Figure 6
	ZipfS      float64 // Zipf exponent of term popularity
	Seed       uint64
}

// The three specs mirror the paper's Figure 6 exactly.
var (
	// POS: transaction log from an electronics retailer.
	POS = Spec{Name: "POS", NumRecords: 515_597, DomainSize: 1_657, MaxRecord: 164, AvgRecord: 6.5, ZipfS: 0.9, Seed: 101}
	// WV1: click-stream data from an e-commerce web site.
	WV1 = Spec{Name: "WV1", NumRecords: 59_602, DomainSize: 497, MaxRecord: 267, AvgRecord: 2.5, ZipfS: 0.9, Seed: 102}
	// WV2: click-stream data from a second e-commerce web site.
	WV2 = Spec{Name: "WV2", NumRecords: 77_512, DomainSize: 3_340, MaxRecord: 161, AvgRecord: 5.0, ZipfS: 0.9, Seed: 103}
)

// All returns the three specs in the order the paper's figures list them.
func All() []Spec { return []Spec{POS, WV1, WV2} }

// Scaled returns a copy of the spec with |D| divided by scale (minimum 1000
// records) and the same domain knobs. Scaling trades the |D|/|T| density
// ratio for runtime; EXPERIMENTS.md records the scale each run used.
func (s Spec) Scaled(scale int) Spec {
	if scale <= 1 {
		return s
	}
	out := s
	out.NumRecords /= scale
	if out.NumRecords < 1000 {
		out.NumRecords = 1000
	}
	out.Name = s.Name
	return out
}

// Generate synthesizes the stand-in dataset: record lengths follow a
// truncated geometric with the published mean and max; terms inside Quest
// patterns are drawn from a Zipf popularity profile so the support
// distribution is heavy-tailed like a real query/click log.
func (s Spec) Generate() *dataset.Dataset {
	rng := rand.New(rand.NewPCG(s.Seed, 0xA5A5A5A5DEADBEEF))
	popularity := quest.ZipfWeights(s.DomainSize, s.ZipfS)
	itemPick := quest.NewWeightedSampler(popularity)

	// Pattern pool: real query/click logs exhibit co-occurrence structure at
	// every popularity depth — mid-ranked terms (the 200th–220th ranks the
	// paper's re metric traces) co-occur with similarly-ranked terms, not
	// just with the head of the distribution. We model this with one small
	// correlated pattern per contiguous rank block, weighted by the block's
	// Zipf mass, so popular blocks dominate usage exactly as popular terms
	// dominate supports.
	// Patterns are overlapping sliding windows over the rank order (width 8,
	// stride 3): the pattern boost stays uniform within a neighbourhood, so
	// the final support order remains aligned with the Zipf rank order, and
	// any two terms within a few ranks of each other co-occur strongly —
	// the structure that makes the paper's re range (ranks 200–220)
	// preservable.
	const windowWidth, windowStride = 20, 5
	var patterns []dataset.Record
	var weights []float64
	for start := 0; start < s.DomainSize; start += windowStride {
		end := start + windowWidth
		if end > s.DomainSize {
			end = s.DomainSize
		}
		pat := make(dataset.Record, 0, end-start)
		w := 0.0
		for id := start; id < end; id++ {
			pat = append(pat, dataset.Term(id))
			w += popularity[id]
		}
		patterns = append(patterns, pat)
		weights = append(weights, w)
		if end == s.DomainSize {
			break
		}
	}
	roulette := quest.NewWeightedSampler(weights)

	d := dataset.New(s.NumRecords)
	for i := 0; i < s.NumRecords; i++ {
		target := quest.TruncatedGeometric(rng, s.AvgRecord, s.MaxRecord)
		items := make(map[dataset.Term]struct{}, target)
		// Half of each record comes from patterns (co-occurrence), half from
		// independent Zipf draws (noise), mirroring real log structure.
		for guard := 0; len(items) < target && guard < 4*target; guard++ {
			if rng.Float64() < 0.5 {
				p := patterns[roulette.Sample(rng)]
				// Take a random subset of the pattern (random order, budget
				// capped) so every within-block pair co-occurs.
				for _, idx := range rng.Perm(len(p)) {
					if len(items) >= target {
						break
					}
					items[p[idx]] = struct{}{}
				}
			} else {
				items[dataset.Term(itemPick.Sample(rng))] = struct{}{}
			}
		}
		flat := make([]dataset.Term, 0, len(items))
		for t := range items {
			flat = append(flat, t)
		}
		d.Records = append(d.Records, dataset.NewRecord(flat...))
	}
	return d
}
