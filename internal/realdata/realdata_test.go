package realdata

import (
	"math"
	"testing"
)

func TestSpecsMatchFigure6(t *testing.T) {
	// The published statistics of the paper's Figure 6.
	tests := []struct {
		spec   Spec
		numRec int
		domain int
		maxRec int
		avgRec float64
	}{
		{POS, 515_597, 1_657, 164, 6.5},
		{WV1, 59_602, 497, 267, 2.5},
		{WV2, 77_512, 3_340, 161, 5.0},
	}
	for _, tc := range tests {
		if tc.spec.NumRecords != tc.numRec || tc.spec.DomainSize != tc.domain ||
			tc.spec.MaxRecord != tc.maxRec || tc.spec.AvgRecord != tc.avgRec {
			t.Errorf("%s spec %+v does not match Figure 6", tc.spec.Name, tc.spec)
		}
	}
	if len(All()) != 3 {
		t.Errorf("All() = %d specs", len(All()))
	}
}

func TestScaled(t *testing.T) {
	s := POS.Scaled(10)
	if s.NumRecords != 51_559 {
		t.Errorf("scaled records = %d", s.NumRecords)
	}
	if s.DomainSize != POS.DomainSize {
		t.Error("scaling must keep the domain")
	}
	if POS.Scaled(1).NumRecords != POS.NumRecords {
		t.Error("scale 1 must be identity")
	}
	tiny := Spec{Name: "t", NumRecords: 5000, DomainSize: 10, MaxRecord: 5, AvgRecord: 2, ZipfS: 1, Seed: 1}
	if tiny.Scaled(100).NumRecords != 1000 {
		t.Errorf("scaling must floor at 1000 records, got %d", tiny.Scaled(100).NumRecords)
	}
}

// Generating the full-size stand-ins is exercised by the experiment harness;
// here we generate a scaled POS and check the synthesized statistics track
// the published ones.
func TestGenerateTracksSpec(t *testing.T) {
	spec := POS.Scaled(50) // ~10k records
	d := spec.Generate()
	if d.Len() != spec.NumRecords {
		t.Fatalf("generated %d records, want %d", d.Len(), spec.NumRecords)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	st := d.ComputeStats()
	if st.MaxRecord > spec.MaxRecord {
		t.Errorf("max record %d exceeds spec %d", st.MaxRecord, spec.MaxRecord)
	}
	if math.Abs(st.AvgRecord-spec.AvgRecord) > 1.5 {
		t.Errorf("avg record %.2f, spec %.2f", st.AvgRecord, spec.AvgRecord)
	}
	if st.DomainSize > spec.DomainSize {
		t.Errorf("domain %d exceeds spec %d", st.DomainSize, spec.DomainSize)
	}
	// Heavy tail: the most frequent term should dominate the median term.
	sups := d.Supports()
	top := 0
	for _, s := range sups {
		if s > top {
			top = s
		}
	}
	if top < d.Len()/20 {
		t.Errorf("top term support %d of %d records — popularity not skewed", top, d.Len())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := WV1.Scaled(20)
	a, b := spec.Generate(), spec.Generate()
	for i := range a.Records {
		if !a.Records[i].Equal(b.Records[i]) {
			t.Fatalf("record %d differs between runs", i)
		}
	}
}
