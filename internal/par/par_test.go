package par

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDoCoversEveryIndexOnce checks the fanout contract for worker counts
// around every boundary: each index 0..n-1 runs exactly once.
func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 5, 97, 1000} {
			counts := make([]atomic.Int32, max(n, 1))
			Do(workers, n, func(i int) {
				counts[i].Add(1)
			})
			for i := 0; i < n; i++ {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestDoDeterministicResults pins the index-addressed-slots discipline the
// pipeline relies on: for any worker count, writing fn(i) results to slot i
// yields identical output.
func TestDoDeterministicResults(t *testing.T) {
	const n = 500
	want := make([]int, n)
	Do(1, n, func(i int) { want[i] = i * i })
	for _, workers := range []int{2, 4, 32} {
		got := make([]int, n)
		Do(workers, n, func(i int) { got[i] = i * i })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestDoWorkerIndexUnique checks DoWorker's core guarantee: no two
// goroutines ever share a worker index concurrently, so per-worker scratch
// needs no locks. Each worker slot tracks a busy flag that must never be
// observed set on entry.
func TestDoWorkerIndexUnique(t *testing.T) {
	const workers, n = 8, 2000
	busy := make([]atomic.Bool, workers)
	seen := make([]atomic.Int32, workers)
	DoWorker(workers, n, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of range", w)
			return
		}
		if !busy[w].CompareAndSwap(false, true) {
			t.Errorf("worker index %d entered concurrently", w)
			return
		}
		seen[w].Add(1)
		busy[w].Store(false)
	})
	total := int32(0)
	for w := range seen {
		total += seen[w].Load()
	}
	if total != n {
		t.Fatalf("workers processed %d of %d items", total, n)
	}
}

// TestDoWorkerSequentialSeesWorkerZero pins the degenerate path.
func TestDoWorkerSequentialSeesWorkerZero(t *testing.T) {
	DoWorker(1, 10, func(w, i int) {
		if w != 0 {
			t.Fatalf("sequential run saw worker %d", w)
		}
	})
	// workers > n degenerates to n workers; n = 1 must still be worker 0.
	DoWorker(16, 1, func(w, i int) {
		if w != 0 {
			t.Fatalf("single-item run saw worker %d", w)
		}
	})
}

// TestDoWorkerPanicPropagates: a panic in any worker must surface on the
// calling goroutine (not crash the process), for both the parallel and the
// sequential path.
func TestDoWorkerPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				if msg := fmt.Sprint(r); msg != "boom 13" {
					t.Fatalf("workers=%d: unexpected panic value %q", workers, msg)
				}
			}()
			DoWorker(workers, 100, func(w, i int) {
				if i == 13 {
					panic("boom 13")
				}
			})
		}()
	}
}

// TestDoWorkerPanicStopsDispatch: after a panic, remaining items are no
// longer handed out (workers drain promptly rather than running the whole
// range).
func TestDoWorkerPanicStopsDispatch(t *testing.T) {
	const n = 1 << 20
	var ran atomic.Int64
	func() {
		defer func() { recover() }()
		DoWorker(4, n, func(w, i int) {
			ran.Add(1)
			panic("first item")
		})
	}()
	if got := ran.Load(); got > 64 {
		t.Errorf("%d items ran after the first panic; dispatch did not stop", got)
	}
}

// TestDoWorkerConcurrentCalls: independent fanouts may run concurrently
// without sharing state.
func TestDoWorkerConcurrentCalls(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum atomic.Int64
			DoWorker(3, 100, func(w, i int) { sum.Add(int64(i)) })
			if got := sum.Load(); got != 4950 {
				t.Errorf("concurrent fanout summed %d, want 4950", got)
			}
		}()
	}
	wg.Wait()
}
