// Package par provides the one concurrency primitive the pipeline needs:
// a deterministic index-fanout worker pool.
package par

import (
	"sync"
	"sync/atomic"
)

// Do executes fn(0..n-1) on up to workers goroutines, pulling indices from a
// shared atomic counter. Results must be written to index-addressed slots so
// scheduling never affects the outcome; with workers ≤ 1 it degenerates to a
// plain loop.
func Do(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
