// Package par provides the one concurrency primitive the pipeline needs:
// a deterministic index-fanout worker pool.
package par

import (
	"sync"
	"sync/atomic"
)

// Do executes fn(0..n-1) on up to workers goroutines, pulling indices from a
// shared atomic counter. Results must be written to index-addressed slots so
// scheduling never affects the outcome; with workers ≤ 1 it degenerates to a
// plain loop.
func Do(workers, n int, fn func(int)) {
	DoWorker(workers, n, func(_, i int) { fn(i) })
}

// DoWorker is Do with the executing worker's index (0..workers-1) passed to
// fn, so callers can hand each worker its own scratch state (buffers, pooled
// indexes) without synchronization. A given worker index runs fn sequentially;
// with workers ≤ 1 every call sees worker 0.
//
// A panic inside fn does not crash the process from a worker goroutine: the
// first panic value is captured, the remaining workers finish their current
// items and stop handing out new ones, and the panic is re-raised on the
// calling goroutine — the same observable behavior as the sequential path.
func DoWorker(workers, n int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicked atomic.Bool
	var panicOnce sync.Once
	var panicVal any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
					panicked.Store(true)
				}
			}()
			for !panicked.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}
