// Package metrics implements the information-loss measures of the paper's
// Section 6 and the conventions its Section 7.1 evaluates them under:
//
//   - tKd: top-K frequent-itemset deviation between the original and a
//     published (reconstructed) dataset, K = 1000 in the paper.
//   - tKd-a: the same deviation computed against the lower-bound supports
//     that are certain in any reconstruction (chunk-contained itemsets plus
//     one appearance per term-chunk term).
//   - tKd-ML2: the multiple-level variant used against generalization-based
//     methods — both sides are extended with their hierarchy ancestors
//     before mining, so generalized itemsets can be traced.
//   - re: average relative error of pair supports over a chosen term range
//     (the 200th–220th most frequent terms in the paper), normalized by the
//     average of the two supports so it lies in [0, 2].
//   - tlost: fraction of terms frequent in the original (support ≥ k) that
//     the anonymization left only in term chunks.
package metrics

import (
	"math"
	"slices"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/hierarchy"
	"disasso/internal/itemset"
)

// TopKDeviation computes tKd = 1 − |FI ∩ FI′| / |FI| where FI are the top-K
// frequent itemsets of the original records and FI′ those of the published
// records, both mined up to maxSize. A zero result means the published data
// preserves the entire top-K.
func TopKDeviation(original, published []dataset.Record, k, maxSize int) float64 {
	fi := itemset.TopK(original, k, maxSize)
	if len(fi) == 0 {
		return 0
	}
	fiPrime := itemset.TopK(published, k, maxSize)
	prime := make(map[string]bool, len(fiPrime))
	for _, f := range fiPrime {
		prime[f.Items.Key()] = true
	}
	common := 0
	for _, f := range fi {
		if prime[f.Items.Key()] {
			common++
		}
	}
	return 1 - float64(common)/float64(len(fi))
}

// PseudoRecords flattens a disassociated dataset into the record bag whose
// itemset supports are exactly the lower bounds of Section 6: every record
// and shared chunk contributes its subrecords, and every term-chunk term
// contributes one singleton per term chunk it appears in.
func PseudoRecords(a *core.Anonymized) []dataset.Record {
	var out []dataset.Record
	for _, c := range a.AllChunks() {
		out = append(out, c.Subrecords...)
	}
	for _, leaf := range a.AllLeaves() {
		for _, t := range leaf.TermChunk {
			out = append(out, dataset.Record{t})
		}
	}
	return out
}

// TopKDeviationLowerBound computes tKd-a: the deviation of the top-K
// itemsets traceable from the disassociated form alone (no reconstruction).
func TopKDeviationLowerBound(original []dataset.Record, a *core.Anonymized, k, maxSize int) float64 {
	return TopKDeviation(original, PseudoRecords(a), k, maxSize)
}

// ExtendWithAncestors maps each record to the union of its terms and all
// their hierarchy ancestors (the multiple-level mining transform of Han & Fu
// the tKd-ML2 metric builds on). The hierarchy root is omitted — it appears
// in every record and carries no information.
func ExtendWithAncestors(records []dataset.Record, h *hierarchy.Hierarchy) []dataset.Record {
	out := make([]dataset.Record, len(records))
	for i, r := range records {
		ext := make(dataset.Record, 0, 2*len(r))
		for _, t := range r {
			for t != h.Root() {
				ext = append(ext, t)
				t = h.Parent(t)
			}
		}
		out[i] = ext.Normalize()
	}
	return out
}

// TopKDeviationML2 computes tKd-ML2: both sides are extended with their
// ancestors so that itemsets over generalized terms are traceable in both
// the original and the anonymized data.
func TopKDeviationML2(original, published []dataset.Record, h *hierarchy.Hierarchy, k, maxSize int) float64 {
	return TopKDeviation(ExtendWithAncestors(original, h), ExtendWithAncestors(published, h), k, maxSize)
}

// RelativeError computes the mean re over all pairs drawn from the given
// terms: |so − sp| / avg(so, sp), using the supports in the original and
// published records respectively. Pairs absent from both sides are skipped;
// pairs present on exactly one side contribute the metric's maximum of 2.
func RelativeError(original, published []dataset.Record, terms []dataset.Term) float64 {
	so := itemset.PairSupports(original, terms)
	sp := itemset.PairSupports(published, terms)
	keys := pairKeys(so, sp)
	if len(keys) == 0 {
		return 0
	}
	total := 0.0
	for _, k := range keys {
		a, b := float64(so[k]), float64(sp[k])
		total += math.Abs(a-b) / ((a + b) / 2)
	}
	return total / float64(len(keys))
}

// pairKeys returns the union of both support maps' keys in sorted order, so
// the float summations above visit pairs deterministically — map iteration
// order would perturb the last bits of the reported metric run to run.
func pairKeys[V1, V2 any](so map[uint64]V1, sp map[uint64]V2) []uint64 {
	keys := make([]uint64, 0, len(so)+len(sp))
	for k := range so {
		keys = append(keys, k)
	}
	for k := range sp {
		if _, ok := so[k]; !ok {
			keys = append(keys, k)
		}
	}
	slices.Sort(keys)
	return keys
}

// RelativeErrorAveraged computes re with published supports averaged across
// several reconstructions (the Figure 7d experiment: re-1, re-2, re-5,
// re-10).
func RelativeErrorAveraged(original []dataset.Record, reconstructions []*dataset.Dataset, terms []dataset.Term) float64 {
	if len(reconstructions) == 0 {
		return 0
	}
	so := itemset.PairSupports(original, terms)
	avg := make(map[uint64]float64)
	for _, r := range reconstructions {
		for k, v := range itemset.PairSupports(r.Records, terms) {
			avg[k] += float64(v)
		}
	}
	n := float64(len(reconstructions))
	keys := pairKeys(so, avg)
	if len(keys) == 0 {
		return 0
	}
	total := 0.0
	for _, k := range keys {
		a := float64(so[k])
		b := avg[k] / n
		total += math.Abs(a-b) / ((a + b) / 2)
	}
	return total / float64(len(keys))
}

// RelativeErrorLowerBound computes re-a: pair supports taken only from the
// published chunks (the lower bounds certain in any reconstruction).
func RelativeErrorLowerBound(original []dataset.Record, a *core.Anonymized, terms []dataset.Term) float64 {
	return RelativeError(original, PseudoRecords(a), terms)
}

// RangeTerms returns the terms ranked [lo, hi) by descending support in the
// dataset — the paper traces re over the 200th–220th most frequent terms
// (RangeTerms(d, 200, 220)). Out-of-range bounds are clipped.
func RangeTerms(d *dataset.Dataset, lo, hi int) []dataset.Term {
	ranked := d.TermsByFrequency()
	if lo < 0 {
		lo = 0
	}
	if hi > len(ranked) {
		hi = len(ranked)
	}
	if lo >= hi {
		return nil
	}
	return ranked[lo:hi]
}

// TermsLost computes tlost: among terms with support ≥ k in the original
// dataset, the fraction that ended up only in term chunks (appearing in no
// record or shared chunk), losing their multiplicities and correlations.
func TermsLost(d *dataset.Dataset, a *core.Anonymized, k int) float64 {
	inChunks := make(map[dataset.Term]bool)
	for _, c := range a.AllChunks() {
		for _, t := range c.Domain {
			inChunks[t] = true
		}
	}
	frequent, lost := 0, 0
	for t, s := range d.Supports() {
		if s < k {
			continue
		}
		frequent++
		if !inChunks[t] {
			lost++
		}
	}
	if frequent == 0 {
		return 0
	}
	return float64(lost) / float64(frequent)
}
