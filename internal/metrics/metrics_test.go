package metrics

import (
	"math"
	"math/rand/v2"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/hierarchy"
	"disasso/internal/reconstruct"
)

func rec(terms ...dataset.Term) dataset.Record { return dataset.NewRecord(terms...) }

func TestTopKDeviationIdentical(t *testing.T) {
	records := []dataset.Record{rec(1, 2), rec(1, 2), rec(3), rec(3)}
	if got := TopKDeviation(records, records, 5, 2); got != 0 {
		t.Errorf("tKd of identical data = %v, want 0", got)
	}
}

func TestTopKDeviationDisjoint(t *testing.T) {
	a := []dataset.Record{rec(1), rec(1), rec(2), rec(2)}
	b := []dataset.Record{rec(8), rec(8), rec(9), rec(9)}
	if got := TopKDeviation(a, b, 2, 1); got != 1 {
		t.Errorf("tKd of disjoint data = %v, want 1", got)
	}
}

func TestTopKDeviationPartial(t *testing.T) {
	// Original top-2 singles: {1}, {2}. Published keeps {1} but replaces
	// {2} with {9} → deviation 0.5.
	a := []dataset.Record{rec(1), rec(1), rec(1), rec(2), rec(2)}
	b := []dataset.Record{rec(1), rec(1), rec(1), rec(9), rec(9)}
	if got := TopKDeviation(a, b, 2, 1); got != 0.5 {
		t.Errorf("tKd = %v, want 0.5", got)
	}
}

func TestTopKDeviationEmptyOriginal(t *testing.T) {
	if got := TopKDeviation(nil, []dataset.Record{rec(1)}, 5, 2); got != 0 {
		t.Errorf("tKd with empty original = %v", got)
	}
}

func TestPseudoRecordsLowerBounds(t *testing.T) {
	// One cluster: chunk over {1,2} with three subrecords, term chunk {5}.
	a := &core.Anonymized{
		K: 3, M: 2,
		Clusters: []*core.ClusterNode{{Simple: &core.Cluster{
			Size: 4,
			RecordChunks: []core.Chunk{{
				Domain:     rec(1, 2),
				Subrecords: []dataset.Record{rec(1, 2), rec(1, 2), rec(1)},
			}},
			TermChunk: rec(5),
		}}},
	}
	pseudo := PseudoRecords(a)
	if len(pseudo) != 4 {
		t.Fatalf("pseudo records = %d, want 4 (3 subrecords + 1 term)", len(pseudo))
	}
	ps := dataset.FromRecords(pseudo)
	if ps.Support(1) != 3 || ps.Support(2) != 2 || ps.Support(5) != 1 {
		t.Errorf("pseudo supports: 1→%d 2→%d 5→%d", ps.Support(1), ps.Support(2), ps.Support(5))
	}
	if ps.SupportOf(rec(1, 2)) != 2 {
		t.Errorf("pair lower bound = %d, want 2", ps.SupportOf(rec(1, 2)))
	}
}

func TestPseudoRecordsWithJointClusters(t *testing.T) {
	// A joint cluster's shared chunks must contribute their subrecords, and
	// every leaf term chunk one singleton per term.
	joint := &core.ClusterNode{
		Children: []*core.ClusterNode{
			{Simple: &core.Cluster{Size: 3, TermChunk: rec(7)}},
			{Simple: &core.Cluster{
				Size: 3,
				RecordChunks: []core.Chunk{{
					Domain:     rec(1),
					Subrecords: []dataset.Record{rec(1), rec(1), rec(1)},
				}},
				TermChunk: rec(8),
			}},
		},
		SharedChunks: []core.Chunk{{
			Domain:     rec(5, 6),
			Subrecords: []dataset.Record{rec(5, 6), rec(5, 6), rec(5, 6)},
		}},
	}
	a := &core.Anonymized{K: 3, M: 2, Clusters: []*core.ClusterNode{joint}}
	ps := dataset.FromRecords(PseudoRecords(a))
	if got := ps.SupportOf(rec(5, 6)); got != 3 {
		t.Errorf("shared pair lower bound = %d, want 3", got)
	}
	if ps.Support(1) != 3 || ps.Support(7) != 1 || ps.Support(8) != 1 {
		t.Errorf("supports: 1→%d 7→%d 8→%d", ps.Support(1), ps.Support(7), ps.Support(8))
	}
}

func TestRelativeErrorExact(t *testing.T) {
	records := []dataset.Record{rec(1, 2), rec(1, 2), rec(2, 3)}
	if got := RelativeError(records, records, []dataset.Term{1, 2, 3}); got != 0 {
		t.Errorf("re of identical data = %v", got)
	}
}

func TestRelativeErrorMissingPair(t *testing.T) {
	orig := []dataset.Record{rec(1, 2), rec(1, 2)}
	pub := []dataset.Record{rec(1), rec(2)}
	// The only pair {1,2} exists in the original (2) and not at all in the
	// published data → re = |2−0| / 1 = 2 (the maximum).
	if got := RelativeError(orig, pub, []dataset.Term{1, 2}); got != 2 {
		t.Errorf("re = %v, want 2", got)
	}
}

func TestRelativeErrorInventedPair(t *testing.T) {
	orig := []dataset.Record{rec(1), rec(2)}
	pub := []dataset.Record{rec(1, 2)}
	// Pair exists only in the published data — still maximal error, the
	// averaging denominator keeps it finite.
	if got := RelativeError(orig, pub, []dataset.Term{1, 2}); got != 2 {
		t.Errorf("re = %v, want 2", got)
	}
}

func TestRelativeErrorHalfway(t *testing.T) {
	orig := []dataset.Record{rec(1, 2), rec(1, 2), rec(1, 2)}
	pub := []dataset.Record{rec(1, 2)}
	// so=3, sp=1 → |3−1|/2 = 1.
	if got := RelativeError(orig, pub, []dataset.Term{1, 2}); got != 1 {
		t.Errorf("re = %v, want 1", got)
	}
}

func TestRelativeErrorNoPairs(t *testing.T) {
	if got := RelativeError([]dataset.Record{rec(1)}, []dataset.Record{rec(2)}, []dataset.Term{1, 2}); got != 0 {
		t.Errorf("re with no pairs anywhere = %v, want 0", got)
	}
}

// TestRelativeErrorDeterministic pins the bit-exactness of the float
// summation: before pairKeys sorted the pair universe, map iteration order
// perturbed the last bits of re run to run (caught by the PR 8 restart
// byte-identity test under the query_scan tag).
func TestRelativeErrorDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 99))
	gen := func() []dataset.Record {
		records := make([]dataset.Record, 200)
		for i := range records {
			terms := make([]dataset.Term, 2+rng.IntN(5))
			for j := range terms {
				terms[j] = dataset.Term(rng.IntN(40))
			}
			records[i] = dataset.NewRecord(terms...)
		}
		return records
	}
	orig, pub := gen(), gen()
	terms := make([]dataset.Term, 40)
	for i := range terms {
		terms[i] = dataset.Term(i)
	}
	want := RelativeError(orig, pub, terms)
	for i := 0; i < 50; i++ {
		if got := RelativeError(orig, pub, terms); got != want {
			t.Fatalf("run %d: re = %v, first run %v (summation order leak)", i, got, want)
		}
	}
}

func TestRelativeErrorEmptyTermRange(t *testing.T) {
	// No terms at all (e.g. RangeTerms clipping emptied the range): no pair
	// keys exist, so the metric is 0, not NaN from a 0/0 average.
	records := []dataset.Record{rec(1, 2), rec(2, 3)}
	if got := RelativeError(records, records, nil); got != 0 {
		t.Errorf("re over empty term range = %v, want 0", got)
	}
	if got := RelativeError(records, records, []dataset.Term{}); got != 0 {
		t.Errorf("re over zero-length term range = %v, want 0", got)
	}
	// A single term forms no pair either.
	if got := RelativeError(records, records, []dataset.Term{2}); got != 0 {
		t.Errorf("re over one term = %v, want 0", got)
	}
}

func TestRelativeErrorOneSidedPairsMixed(t *testing.T) {
	// Three pairs over terms {1,2,3}: {1,2} only in the original, {2,3}
	// only in the published, {1,3} on both sides with equal support. The
	// one-sided pairs each contribute the documented maximum of 2.
	orig := []dataset.Record{rec(1, 2), rec(1, 3)}
	pub := []dataset.Record{rec(2, 3), rec(1, 3)}
	want := (2.0 + 2.0 + 0.0) / 3.0
	if got := RelativeError(orig, pub, []dataset.Term{1, 2, 3}); math.Abs(got-want) > 1e-12 {
		t.Errorf("re = %v, want %v", got, want)
	}
	// A metric value can never leave [0, 2] whatever the inputs.
	if got := RelativeError(orig, nil, []dataset.Term{1, 2, 3}); got < 0 || got > 2 {
		t.Errorf("re against empty published data = %v, outside [0, 2]", got)
	}
}

func TestRangeTermsClipping(t *testing.T) {
	// Supports: 5→3, 7→2, 9→1 — ranked [5, 7, 9].
	d := dataset.FromRecords([]dataset.Record{rec(5, 7), rec(5, 7), rec(5, 9)})
	cases := []struct {
		lo, hi int
		want   []dataset.Term
	}{
		{0, 3, []dataset.Term{5, 7, 9}},
		{1, 2, []dataset.Term{7}},
		{-4, 2, []dataset.Term{5, 7}}, // negative lo clips to 0
		{1, 99, []dataset.Term{7, 9}}, // hi clips to the domain size
		{-1, 99, []dataset.Term{5, 7, 9}},
		{2, 2, nil},  // empty range
		{3, 2, nil},  // inverted range
		{99, 4, nil}, // both out of range
	}
	for _, c := range cases {
		got := RangeTerms(d, c.lo, c.hi)
		if len(got) != len(c.want) {
			t.Errorf("RangeTerms(%d, %d) = %v, want %v", c.lo, c.hi, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("RangeTerms(%d, %d) = %v, want %v", c.lo, c.hi, got, c.want)
				break
			}
		}
	}
}

func TestRelativeErrorAveragedImproves(t *testing.T) {
	// Averaging across reconstructions should not be worse than a single
	// one for the same anonymized dataset (statistically; fixed seeds).
	rng := rand.New(rand.NewPCG(15, 16))
	var records []dataset.Record
	for i := 0; i < 500; i++ {
		terms := make([]dataset.Term, 2+rng.IntN(4))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(30))
		}
		records = append(records, rec(terms...))
	}
	d := dataset.FromRecords(records)
	a, err := core.Anonymize(d, core.Options{K: 3, M: 2, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	terms := RangeTerms(d, 5, 25)
	rs := reconstruct.SampleMany(a, 10, rng)
	one := RelativeErrorAveraged(d.Records, rs[:1], terms)
	ten := RelativeErrorAveraged(d.Records, rs, terms)
	if ten > one+0.1 {
		t.Errorf("averaging 10 reconstructions (%v) much worse than 1 (%v)", ten, one)
	}
	if RelativeErrorAveraged(d.Records, nil, terms) != 0 {
		t.Error("no reconstructions must give 0")
	}
}

func TestRangeTerms(t *testing.T) {
	d := dataset.FromRecords([]dataset.Record{
		rec(1, 2, 3), rec(1, 2), rec(1),
	})
	if got := RangeTerms(d, 0, 2); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("RangeTerms(0,2) = %v", got)
	}
	if got := RangeTerms(d, 2, 10); len(got) != 1 || got[0] != 3 {
		t.Errorf("RangeTerms(2,10) = %v", got)
	}
	if got := RangeTerms(d, 5, 10); got != nil {
		t.Errorf("out-of-range = %v", got)
	}
}

func TestTermsLost(t *testing.T) {
	// Terms 1, 2 frequent and in chunks; term 3 frequent but only in a term
	// chunk; term 4 infrequent (ignored).
	d := dataset.FromRecords([]dataset.Record{
		rec(1, 2, 3), rec(1, 2, 3), rec(1, 2, 3), rec(4),
	})
	a := &core.Anonymized{
		K: 3, M: 2,
		Clusters: []*core.ClusterNode{{Simple: &core.Cluster{
			Size: 4,
			RecordChunks: []core.Chunk{{
				Domain:     rec(1, 2),
				Subrecords: []dataset.Record{rec(1, 2), rec(1, 2), rec(1, 2)},
			}},
			TermChunk: rec(3, 4),
		}}},
	}
	got := TermsLost(d, a, 3)
	if math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("tlost = %v, want 1/3", got)
	}
}

func TestTermsLostNoFrequentTerms(t *testing.T) {
	d := dataset.FromRecords([]dataset.Record{rec(1)})
	a := &core.Anonymized{K: 3, M: 2}
	if got := TermsLost(d, a, 3); got != 0 {
		t.Errorf("tlost = %v, want 0", got)
	}
}

func TestExtendWithAncestors(t *testing.T) {
	h, err := hierarchy.New(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	ext := ExtendWithAncestors([]dataset.Record{rec(0, 4)}, h)
	// 0 → parent 9; 4 → parent 10; root 12 omitted.
	want := rec(0, 4, 9, 10)
	if !ext[0].Equal(want) {
		t.Errorf("extended = %v, want %v", ext[0], want)
	}
}

func TestTopKDeviationML2TracksGeneralization(t *testing.T) {
	h, err := hierarchy.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	orig := []dataset.Record{rec(0), rec(0), rec(1), rec(1)}
	// Fully generalized to the sibling parent (node 4): the leaf-level
	// itemsets are lost, but the generalized level-1 itemset {4} survives,
	// so ML2 deviation is below the plain tKd.
	gen := []dataset.Record{rec(4), rec(4), rec(4), rec(4)}
	plain := TopKDeviation(orig, gen, 3, 2)
	ml2 := TopKDeviationML2(orig, gen, h, 3, 2)
	if plain != 1 {
		t.Errorf("plain tKd = %v, want 1 (no original term survives)", plain)
	}
	if ml2 >= plain {
		t.Errorf("ML2 (%v) should credit the surviving generalized itemset vs plain (%v)", ml2, plain)
	}
}

// End-to-end sanity: disassociation on a structured dataset must preserve
// the top itemsets far better than random destruction, and tKd-a must be an
// upper bound proxy consistent with tKd on a reconstruction.
func TestMetricsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 100))
	var records []dataset.Record
	for i := 0; i < 600; i++ {
		// Strong pair structure plus noise.
		base := dataset.Term(rng.IntN(5) * 2)
		terms := []dataset.Term{base, base + 1, dataset.Term(20 + rng.IntN(30))}
		records = append(records, rec(terms...))
	}
	d := dataset.FromRecords(records)
	a, err := core.Anonymize(d, core.Options{K: 3, M: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := reconstruct.Sample(a, rng)
	tkd := TopKDeviation(d.Records, r.Records, 50, 2)
	tkdA := TopKDeviationLowerBound(d.Records, a, 50, 2)
	if tkd > 0.5 {
		t.Errorf("tKd = %v — reconstruction lost most of the top-50", tkd)
	}
	if tkdA > 0.8 {
		t.Errorf("tKd-a = %v — chunks lost almost everything", tkdA)
	}
	tl := TermsLost(d, a, 3)
	if tl < 0 || tl > 1 {
		t.Errorf("tlost = %v out of range", tl)
	}
}
