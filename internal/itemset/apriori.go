package itemset

import (
	"sort"

	"disasso/internal/dataset"
)

// Mine runs the Apriori algorithm over the records and returns every itemset
// of size 1..maxSize whose support is at least minSupport. minSupport values
// below 1 are treated as 1. Results are in SortFrequent order.
//
// Candidate supports are counted with a prefix trie (a hash-tree variant), so
// cost is proportional to the candidates actually present in each record
// rather than to C(|r|, size).
func Mine(records []dataset.Record, minSupport, maxSize int) []Frequent {
	if minSupport < 1 {
		minSupport = 1
	}
	if maxSize < 1 {
		return nil
	}
	var result []Frequent

	// L1: frequent terms.
	supports := TermSupports(records)
	var frequent []dataset.Term
	for t, s := range supports {
		if s >= minSupport {
			frequent = append(frequent, t)
			result = append(result, Frequent{Items: Itemset{t}, Support: s})
		}
	}
	sort.Slice(frequent, func(i, j int) bool { return frequent[i] < frequent[j] })

	prev := make([]Itemset, len(frequent))
	for i, t := range frequent {
		prev[i] = Itemset{t}
	}

	for size := 2; size <= maxSize && len(prev) >= 2; size++ {
		candidates := generateCandidates(prev)
		if len(candidates) == 0 {
			break
		}
		tr := newTrie(candidates)
		for _, r := range records {
			tr.countRecord(r)
		}
		var next []Itemset
		for i, c := range candidates {
			if s := tr.supports[i]; s >= minSupport {
				next = append(next, c)
				result = append(result, Frequent{Items: c, Support: s})
			}
		}
		prev = next
	}
	SortFrequent(result)
	return result
}

// generateCandidates performs the classic Apriori join+prune step: itemsets of
// size s sharing their first s−1 terms are joined into size s+1 candidates,
// and any candidate with an infrequent s-subset is pruned. prev must be
// lexicographically sorted (Mine maintains this).
func generateCandidates(prev []Itemset) []Itemset {
	prevSet := make(map[string]bool, len(prev))
	for _, p := range prev {
		prevSet[p.Key()] = true
	}
	size := len(prev[0])
	var out []Itemset
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			if !samePrefix(prev[i], prev[j], size-1) {
				break // prev is sorted: once prefixes diverge they stay diverged
			}
			cand := make(Itemset, size+1)
			copy(cand, prev[i])
			cand[size] = prev[j][size-1]
			if hasAllSubsets(cand, prevSet) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hasAllSubsets reports whether every (len−1)-subset of cand is in prevSet.
// The first len−2 subsets are guaranteed by construction, so only subsets
// dropping one of the first len−1 positions need checking.
func hasAllSubsets(cand Itemset, prevSet map[string]bool) bool {
	buf := make(Itemset, 0, len(cand)-1)
	for drop := 0; drop < len(cand)-2; drop++ {
		buf = buf[:0]
		for i, t := range cand {
			if i != drop {
				buf = append(buf, t)
			}
		}
		if !prevSet[buf.Key()] {
			return false
		}
	}
	return true
}

// trie is a prefix tree over sorted candidate itemsets used for support
// counting. Leaves carry the candidate's index into the supports slice.
type trie struct {
	root     *trieNode
	supports []int
}

type trieNode struct {
	children map[dataset.Term]*trieNode
	leaf     int // candidate index, −1 for interior nodes
}

func newTrie(candidates []Itemset) *trie {
	tr := &trie{
		root:     &trieNode{children: map[dataset.Term]*trieNode{}, leaf: -1},
		supports: make([]int, len(candidates)),
	}
	for idx, c := range candidates {
		n := tr.root
		for _, t := range c {
			child, ok := n.children[t]
			if !ok {
				child = &trieNode{children: map[dataset.Term]*trieNode{}, leaf: -1}
				n.children[t] = child
			}
			n = child
		}
		n.leaf = idx
	}
	return tr
}

// countRecord increments the support of every candidate contained in r.
func (tr *trie) countRecord(r dataset.Record) {
	tr.walk(tr.root, r, 0)
}

func (tr *trie) walk(n *trieNode, r dataset.Record, start int) {
	if n.leaf >= 0 {
		tr.supports[n.leaf]++
		return
	}
	for i := start; i < len(r); i++ {
		if child, ok := n.children[r[i]]; ok {
			tr.walk(child, r, i+1)
		}
	}
}

// TopK returns the K most frequent itemsets of size 1..maxSize, mined with an
// adaptively lowered support threshold: it starts at the support of the K-th
// most frequent term and keeps lowering until at least K itemsets qualify (or
// the threshold reaches 1). Ordering follows SortFrequent, so the result is
// deterministic.
func TopK(records []dataset.Record, k, maxSize int) []Frequent {
	if k <= 0 {
		return nil
	}
	supports := TermSupports(records)
	sups := make([]int, 0, len(supports))
	for _, s := range supports {
		sups = append(sups, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sups)))
	threshold := 1
	if len(sups) >= k {
		threshold = sups[k-1]
	}
	for {
		mined := Mine(records, threshold, maxSize)
		if len(mined) >= k || threshold == 1 {
			if len(mined) > k {
				mined = mined[:k]
			}
			return mined
		}
		threshold = threshold * 2 / 3
		if threshold < 1 {
			threshold = 1
		}
	}
}
