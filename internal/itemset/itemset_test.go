package itemset

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"disasso/internal/dataset"
)

func rec(terms ...dataset.Term) dataset.Record { return dataset.NewRecord(terms...) }

func TestSubsets(t *testing.T) {
	var got []string
	Subsets(rec(1, 2, 3, 4), 2, func(s Itemset) bool {
		got = append(got, s.Key())
		return true
	})
	want := []string{"1,2", "1,3", "1,4", "2,3", "2,4", "3,4"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Subsets = %v, want %v", got, want)
	}
}

func TestSubsetsEdgeCases(t *testing.T) {
	calls := 0
	Subsets(rec(1, 2), 0, func(s Itemset) bool { calls++; return true })
	if calls != 1 {
		t.Errorf("k=0 produced %d calls, want 1 (the empty set)", calls)
	}
	calls = 0
	Subsets(rec(1, 2), 3, func(s Itemset) bool { calls++; return true })
	if calls != 0 {
		t.Errorf("k>n produced %d calls, want 0", calls)
	}
	calls = 0
	Subsets(rec(1, 2), -1, func(s Itemset) bool { calls++; return true })
	if calls != 0 {
		t.Errorf("k<0 produced %d calls, want 0", calls)
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	calls := 0
	done := Subsets(rec(1, 2, 3, 4, 5), 2, func(s Itemset) bool {
		calls++
		return calls < 3
	})
	if done {
		t.Error("Subsets reported completion despite early stop")
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestSubsetsCount(t *testing.T) {
	for n := 0; n <= 8; n++ {
		terms := make([]dataset.Term, n)
		for i := range terms {
			terms[i] = dataset.Term(i)
		}
		r := rec(terms...)
		for k := 0; k <= n; k++ {
			count := 0
			Subsets(r, k, func(Itemset) bool { count++; return true })
			if count != CountSubsets(n, k) {
				t.Errorf("n=%d k=%d: enumerated %d, C(n,k)=%d", n, k, count, CountSubsets(n, k))
			}
		}
	}
}

func TestCountSubsets(t *testing.T) {
	tests := []struct{ n, k, want int }{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{5, 6, 0}, {5, -1, 0}, {164, 2, 13366},
	}
	for _, tc := range tests {
		if got := CountSubsets(tc.n, tc.k); got != tc.want {
			t.Errorf("C(%d,%d) = %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	a, b := UnpackPair(PairKey(7, 3))
	if a != 3 || b != 7 {
		t.Errorf("UnpackPair(PairKey(7,3)) = %d,%d, want 3,7", a, b)
	}
	if PairKey(3, 7) != PairKey(7, 3) {
		t.Error("PairKey is not order-independent")
	}
	if PairKey(1, 2) == PairKey(1, 3) {
		t.Error("distinct pairs share a key")
	}
}

func TestPairSupports(t *testing.T) {
	records := []dataset.Record{
		rec(1, 2, 3),
		rec(1, 2),
		rec(2, 3),
		rec(4, 5),
	}
	got := PairSupports(records, []dataset.Term{1, 2, 3})
	want := map[uint64]int{
		PairKey(1, 2): 2,
		PairKey(1, 3): 1,
		PairKey(2, 3): 2,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PairSupports = %v, want %v", got, want)
	}
	// Terms outside the requested set must not appear.
	if _, ok := got[PairKey(4, 5)]; ok {
		t.Error("PairSupports counted a pair outside the requested terms")
	}
}

func TestSupportOf(t *testing.T) {
	records := []dataset.Record{rec(1, 2, 3), rec(1, 3), rec(2)}
	if got := SupportOf(records, rec(1, 3)); got != 2 {
		t.Errorf("SupportOf({1,3}) = %d, want 2", got)
	}
	if got := SupportOf(records, rec()); got != 3 {
		t.Errorf("SupportOf({}) = %d, want 3", got)
	}
}

func TestMineSmall(t *testing.T) {
	// Classic toy example.
	records := []dataset.Record{
		rec(1, 2, 5),
		rec(2, 4),
		rec(2, 3),
		rec(1, 2, 4),
		rec(1, 3),
		rec(2, 3),
		rec(1, 3),
		rec(1, 2, 3, 5),
		rec(1, 2, 3),
	}
	got := Mine(records, 2, 3)
	bySupport := make(map[string]int)
	for _, f := range got {
		bySupport[f.Items.Key()] = f.Support
	}
	want := map[string]int{
		"1": 6, "2": 7, "3": 6, "4": 2, "5": 2,
		"1,2": 4, "1,3": 4, "1,5": 2, "2,3": 4, "2,4": 2, "2,5": 2,
		"1,2,3": 2, "1,2,5": 2,
	}
	if !reflect.DeepEqual(bySupport, want) {
		t.Errorf("Mine = %v\nwant %v", bySupport, want)
	}
}

func TestMineOrderingDeterministic(t *testing.T) {
	records := []dataset.Record{rec(1, 2), rec(1, 2), rec(3), rec(3)}
	a := Mine(records, 1, 2)
	b := Mine(records, 1, 2)
	if !reflect.DeepEqual(a, b) {
		t.Error("Mine is not deterministic")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Support > a[i-1].Support {
			t.Errorf("result not sorted by support at %d", i)
		}
	}
}

func TestMineEmptyAndDegenerate(t *testing.T) {
	if got := Mine(nil, 1, 3); len(got) != 0 {
		t.Errorf("Mine(nil) = %v", got)
	}
	if got := Mine([]dataset.Record{rec(1)}, 2, 3); len(got) != 0 {
		t.Errorf("Mine above max support = %v", got)
	}
	if got := Mine([]dataset.Record{rec(1, 2)}, 1, 0); got != nil {
		t.Errorf("maxSize 0 = %v", got)
	}
}

// Property: every itemset Mine reports has exactly the support that a naive
// scan computes, and nothing frequent is missed (cross-check on random data).
func TestMineMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	for trial := 0; trial < 25; trial++ {
		var records []dataset.Record
		n := 20 + rng.IntN(30)
		for i := 0; i < n; i++ {
			size := 1 + rng.IntN(5)
			terms := make([]dataset.Term, size)
			for j := range terms {
				terms[j] = dataset.Term(rng.IntN(10))
			}
			records = append(records, rec(terms...))
		}
		minSup := 2 + rng.IntN(4)
		mined := Mine(records, minSup, 3)
		seen := make(map[string]int)
		for _, f := range mined {
			seen[f.Items.Key()] = f.Support
			if got := SupportOf(records, f.Items); got != f.Support {
				t.Fatalf("trial %d: support of %v = %d, naive %d", trial, f.Items, f.Support, got)
			}
			if f.Support < minSup {
				t.Fatalf("trial %d: reported infrequent itemset %v (%d < %d)", trial, f.Items, f.Support, minSup)
			}
		}
		// Completeness for sizes 1..3 by brute force over the domain.
		domain := dataset.FromRecords(records).Domain()
		all := dataset.NewRecord(domain...)
		for size := 1; size <= 3; size++ {
			Subsets(all, size, func(s Itemset) bool {
				if sup := SupportOf(records, s); sup >= minSup {
					if _, ok := seen[s.Key()]; !ok {
						t.Fatalf("trial %d: missed frequent itemset %v (support %d)", trial, s, sup)
					}
				}
				return true
			})
		}
	}
}

func TestTopK(t *testing.T) {
	records := []dataset.Record{
		rec(1, 2), rec(1, 2), rec(1, 2), rec(1), rec(3), rec(3), rec(4),
	}
	got := TopK(records, 3, 2)
	if len(got) != 3 {
		t.Fatalf("TopK returned %d itemsets, want 3", len(got))
	}
	if got[0].Items.Key() != "1" || got[0].Support != 4 {
		t.Errorf("top itemset = %v (%d)", got[0].Items, got[0].Support)
	}
	// The top-3 must be {1}:4, {2}:3, {1,2}:3.
	keys := []string{got[0].Items.Key(), got[1].Items.Key(), got[2].Items.Key()}
	if keys[1] != "2" || keys[2] != "1,2" {
		t.Errorf("TopK order = %v", keys)
	}
}

func TestTopKFewerThanK(t *testing.T) {
	records := []dataset.Record{rec(1), rec(2)}
	got := TopK(records, 100, 2)
	if len(got) != 2 {
		t.Errorf("TopK = %d itemsets, want 2 (all there are)", len(got))
	}
	if TopK(records, 0, 2) != nil {
		t.Error("TopK(0) should be nil")
	}
}

// Property: TopK(k) is a prefix of TopK(k') for k < k' (stability of the
// total order).
func TestTopKPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	var records []dataset.Record
	for i := 0; i < 60; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(4))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(8))
		}
		records = append(records, rec(terms...))
	}
	small := TopK(records, 5, 3)
	large := TopK(records, 15, 3)
	if len(large) < len(small) {
		t.Fatalf("TopK(15) smaller than TopK(5)")
	}
	for i := range small {
		if !reflect.DeepEqual(small[i], large[i]) {
			t.Errorf("prefix mismatch at %d: %v vs %v", i, small[i], large[i])
		}
	}
}
