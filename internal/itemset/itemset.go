// Package itemset provides combination enumeration, support counting and an
// Apriori frequent-itemset miner over transactional records.
//
// It is the substrate for the k^m-anonymity checks of the disassociation core
// (every combination of up to m terms in a chunk must appear at least k
// times) and for the information-loss metrics of the paper's Section 6
// (top-K frequent itemsets, supports of term pairs).
package itemset

import (
	"sort"

	"disasso/internal/dataset"
)

// Itemset is a normalized set of terms, identical in representation to a
// record.
type Itemset = dataset.Record

// Frequent is an itemset together with its support in the mined collection.
type Frequent struct {
	Items   Itemset
	Support int
}

// Subsets enumerates every size-k subset of the normalized record r, invoking
// fn for each. Enumeration stops early if fn returns false; Subsets reports
// whether enumeration ran to completion. The slice passed to fn is reused
// between invocations — callers must clone it if they retain it.
func Subsets(r Itemset, k int, fn func(Itemset) bool) bool {
	if k < 0 || k > len(r) {
		return true
	}
	if k == 0 {
		return fn(Itemset{})
	}
	buf := make(Itemset, k)
	var rec func(start, depth int) bool
	rec = func(start, depth int) bool {
		if depth == k {
			return fn(buf)
		}
		for i := start; i <= len(r)-(k-depth); i++ {
			buf[depth] = r[i]
			if !rec(i+1, depth+1) {
				return false
			}
		}
		return true
	}
	return rec(0, 0)
}

// CountSubsets returns the number of size-k subsets of an n-element set,
// C(n, k), saturating at MaxInt for large values.
func CountSubsets(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		// c * (n-i) may overflow for degenerate inputs; the library never
		// calls this with n beyond a few hundred.
		c = c * (n - i) / (i + 1)
	}
	return c
}

// SupportOf counts the records that contain every term of the normalized
// itemset s.
func SupportOf(records []dataset.Record, s Itemset) int {
	n := 0
	for _, r := range records {
		if r.ContainsAll(s) {
			n++
		}
	}
	return n
}

// TermSupports returns the support of every term across the records.
func TermSupports(records []dataset.Record) map[dataset.Term]int {
	s := make(map[dataset.Term]int)
	for _, r := range records {
		for _, t := range r {
			s[t]++
		}
	}
	return s
}

// PairKey packs an ordered term pair into a single comparable key.
func PairKey(a, b dataset.Term) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// UnpackPair is the inverse of PairKey.
func UnpackPair(k uint64) (a, b dataset.Term) {
	return dataset.Term(k >> 32), dataset.Term(uint32(k))
}

// PairSupports counts, in one pass, the supports of every pair drawn from the
// given terms. Pairs that never co-occur are absent from the result.
func PairSupports(records []dataset.Record, terms []dataset.Term) map[uint64]int {
	want := make(map[dataset.Term]bool, len(terms))
	for _, t := range terms {
		want[t] = true
	}
	out := make(map[uint64]int)
	var buf []dataset.Term
	for _, r := range records {
		buf = buf[:0]
		for _, t := range r {
			if want[t] {
				buf = append(buf, t)
			}
		}
		for i := 0; i < len(buf); i++ {
			for j := i + 1; j < len(buf); j++ {
				out[PairKey(buf[i], buf[j])]++
			}
		}
	}
	return out
}

// SortFrequent orders itemsets by descending support, then ascending size,
// then lexicographically — a total, deterministic order.
func SortFrequent(fs []Frequent) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Items) != len(b.Items) {
			return len(a.Items) < len(b.Items)
		}
		for k := 0; k < len(a.Items); k++ {
			if a.Items[k] != b.Items[k] {
				return a.Items[k] < b.Items[k]
			}
		}
		return false
	})
}
