//go:build !unix

package snapfile

import "os"

// mmapFile always refuses on platforms without the unix mmap syscalls; Open
// falls back to reading the file into the heap.
func mmapFile(f *os.File, size int64) ([]byte, bool) { return nil, false }

func munmapBytes(data []byte) error { return nil }
