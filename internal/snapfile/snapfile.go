// Package snapfile defines the on-disk snapshot format that makes disassod
// restarts O(1) in anonymization work: everything a published dataset needs
// to serve reads — the cluster forest, the inverted index's slabs, the
// estimator's singleton table and (optionally) the retained original records
// — persisted as one versioned, sectioned, little-endian file.
//
// The format is built for zero-copy recovery. The dense-rank domain, the
// prefix-sum posting slab and the per-term aggregate/singleton tables are
// fixed-width little-endian slabs whose byte layout matches the in-memory
// layout on 64-bit little-endian hosts, so the reader reconstructs
// qindex/query views as slice casts over a memory mapping of the file:
// posting reads on a recovered snapshot never materialize the slab into the
// heap. Variable-length payloads reuse the repository's existing delta-varint
// codecs (core.WriteBinary for the forest, dataset.BinaryRecordWriter for the
// original records) instead of inventing a second encoding.
//
// Layout (all integers little-endian):
//
//	header (16 bytes): magic "DSNP", u32 version (=1), u32 section count,
//	                   u32 reserved (0)
//	section table    : count × 24 bytes — u32 id, u32 crc32 (IEEE, over the
//	                   payload), u64 offset, u64 length
//	payloads         : each starting at an 8-byte-aligned offset (zero
//	                   padding between), so every slab cast is aligned
//
// Sections (ids; F = fixed width, V = delta-varint):
//
//	1 meta      V  JSON: name, parameters, version, summary, publish options
//	2 forest    V  the published cluster forest, core.WriteBinary bytes
//	3 domain    F  u32 × |T|: the dense-rank term domain, ascending
//	4 postoff   F  u32 × (|T|+1): per-rank prefix sums into the posting slab
//	5 postings  F  8 B × P: i32 cluster id, u8 occurrence bits, 3 B zero pad
//	6 termstats F  24 B × |T|: i64 subrecord occ, i64 term-chunk occ, i64 clusters
//	7 singles   F  24 B × |T|: i64 lower, i64 upper, f64 expected
//	8 original  V  optional: the retained original records,
//	               dataset.BinaryRecordWriter framing
//
// Every section carries its own CRC; a reader verifies all of them before
// serving anything, so torn or bit-rotted files are detected at open time
// (the disassod startup scan skips and reports such files rather than
// aborting recovery).
package snapfile

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/qindex"
	"disasso/internal/query"
)

// Format constants.
const (
	magic          = "DSNP"
	formatVersion  = 1
	headerSize     = 16
	tableEntrySize = 24
	sectionAlign   = 8

	// maxSections bounds the declared table size before any allocation —
	// far above the eight known ids, low enough that a crafted header cannot
	// make the reader allocate much on faith.
	maxSections = 64
)

// Section ids.
const (
	secMeta     = 1
	secForest   = 2
	secDomain   = 3
	secPostOff  = 4
	secPostings = 5
	secStats    = 6
	secSingles  = 7
	secOriginal = 8
)

// Fixed-width entry sizes.
const (
	termSize     = 4
	postingSize  = 8
	termStatSize = 24
	estimateSize = 24
)

// Meta is the snapshot's JSON-encoded metadata section: everything disassod
// needs to rebuild its registry entry (and, together with the original
// section, to rehydrate delta-republish state) without touching the slabs.
type Meta struct {
	Name     string `json:"name"`
	K        int    `json:"k"`
	M        int    `json:"m"`
	Records  int    `json:"records"`
	Terms    int    `json:"terms"`
	Clusters int    `json:"clusters"`
	Streamed bool   `json:"streamed,omitempty"`
	Version  int    `json:"version"`
	// ShardRecords is the effective shard cut the publication was produced
	// with (see server.DatasetInfo).
	ShardRecords int `json:"shard_records,omitempty"`
	// Opts are the effective anonymization options of the publication. With
	// the original records they are sufficient to reproduce the published
	// bytes from scratch — the delta-republish rehydration path relies on it.
	Opts core.Options `json:"opts"`
	// Summary is the publication's precomputed shape summary, persisted so
	// the stats endpoint needs no forest walk at recovery.
	Summary core.Summary `json:"summary"`
}

// Contents is everything Write persists for one snapshot.
type Contents struct {
	Meta Meta
	// Forest is the published cluster forest.
	Forest *core.Anonymized
	// Index is the inverted index over Forest; its four slabs are written as
	// the fixed-width sections.
	Index *qindex.Index
	// Singles is the estimator's singleton table, in the index's rank order.
	Singles []query.Estimate
	// Original, when non-nil, is the retained original dataset (absent for
	// streamed publishes).
	Original *dataset.Dataset
}

// Write serializes the snapshot to w. The output is deterministic: equal
// contents produce equal bytes on every platform (the golden-file test pins
// this).
func (c Contents) Write(w io.Writer) error {
	terms, post, postOff, stats := c.Index.Slabs()
	n := len(terms)
	if len(postOff) != n+1 || len(stats) != n || len(c.Singles) != n {
		return fmt.Errorf("snapfile: inconsistent slab sizes: %d terms, %d offsets, %d stats, %d singles",
			n, len(postOff), len(stats), len(c.Singles))
	}

	metaSec, err := json.Marshal(c.Meta)
	if err != nil {
		return fmt.Errorf("snapfile: encoding meta: %w", err)
	}
	var forestBuf bytes.Buffer
	if err := core.WriteBinary(&forestBuf, c.Forest); err != nil {
		return fmt.Errorf("snapfile: encoding forest: %w", err)
	}

	sections := []struct {
		id      uint32
		payload []byte
	}{
		{secMeta, metaSec},
		{secForest, forestBuf.Bytes()},
		{secDomain, encodeTerms(terms)},
		{secPostOff, encodeOffsets(postOff)},
		{secPostings, encodePostings(post)},
		{secStats, encodeStats(stats)},
		{secSingles, encodeSingles(c.Singles)},
	}
	if c.Original != nil {
		var origBuf bytes.Buffer
		rw := dataset.NewBinaryRecordWriter(&origBuf)
		for _, r := range c.Original.Records {
			if err := rw.Write(r); err != nil {
				return fmt.Errorf("snapfile: encoding original: %w", err)
			}
		}
		if err := rw.Flush(); err != nil {
			return fmt.Errorf("snapfile: encoding original: %w", err)
		}
		sections = append(sections, struct {
			id      uint32
			payload []byte
		}{secOriginal, origBuf.Bytes()})
	}

	// Header + section table, with payload offsets laid out 8-aligned.
	var head bytes.Buffer
	head.WriteString(magic)
	putU32(&head, formatVersion)
	putU32(&head, uint32(len(sections)))
	putU32(&head, 0)
	off := uint64(headerSize + len(sections)*tableEntrySize)
	off = alignUp(off)
	for _, s := range sections {
		putU32(&head, s.id)
		putU32(&head, crc32.ChecksumIEEE(s.payload))
		putU64(&head, off)
		putU64(&head, uint64(len(s.payload)))
		off = alignUp(off + uint64(len(s.payload)))
	}
	if _, err := w.Write(head.Bytes()); err != nil {
		return err
	}

	var pad [sectionAlign]byte
	written := uint64(head.Len())
	for _, s := range sections {
		if gap := alignUp(written) - written; gap > 0 {
			if _, err := w.Write(pad[:gap]); err != nil {
				return err
			}
			written += gap
		}
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
		written += uint64(len(s.payload))
	}
	return nil
}

func alignUp(off uint64) uint64 {
	return (off + sectionAlign - 1) &^ (sectionAlign - 1)
}

func putU32(b *bytes.Buffer, v uint32) {
	var s [4]byte
	binary.LittleEndian.PutUint32(s[:], v)
	b.Write(s[:])
}

func putU64(b *bytes.Buffer, v uint64) {
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], v)
	b.Write(s[:])
}

func encodeTerms(terms []dataset.Term) []byte {
	out := make([]byte, len(terms)*termSize)
	for i, t := range terms {
		binary.LittleEndian.PutUint32(out[i*termSize:], uint32(t))
	}
	return out
}

func encodeOffsets(off []int32) []byte {
	out := make([]byte, len(off)*4)
	for i, v := range off {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

func encodePostings(post []qindex.Posting) []byte {
	out := make([]byte, len(post)*postingSize)
	for i, p := range post {
		binary.LittleEndian.PutUint32(out[i*postingSize:], uint32(p.Cluster))
		out[i*postingSize+4] = p.Bits
		// Bytes 5..7 stay zero: the padding matches Go's in-memory layout so
		// the reader can cast the slab, and zeroing it keeps output bytes
		// deterministic.
	}
	return out
}

func encodeStats(stats []qindex.TermStats) []byte {
	out := make([]byte, len(stats)*termStatSize)
	for i, s := range stats {
		base := i * termStatSize
		binary.LittleEndian.PutUint64(out[base:], uint64(int64(s.SubrecordOcc)))
		binary.LittleEndian.PutUint64(out[base+8:], uint64(int64(s.TermChunkOcc)))
		binary.LittleEndian.PutUint64(out[base+16:], uint64(int64(s.Clusters)))
	}
	return out
}

func encodeSingles(singles []query.Estimate) []byte {
	out := make([]byte, len(singles)*estimateSize)
	for i, e := range singles {
		base := i * estimateSize
		binary.LittleEndian.PutUint64(out[base:], uint64(int64(e.Lower)))
		binary.LittleEndian.PutUint64(out[base+8:], uint64(int64(e.Upper)))
		binary.LittleEndian.PutUint64(out[base+16:], math.Float64bits(e.Expected))
	}
	return out
}
