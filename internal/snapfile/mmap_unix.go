//go:build unix

package snapfile

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. It reports ok=false when the
// platform refuses (e.g. an empty file or an exotic filesystem), in which
// case the caller falls back to a heap read.
func mmapFile(f *os.File, size int64) ([]byte, bool) {
	if size <= 0 || size != int64(int(size)) {
		return nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return data, true
}

func munmapBytes(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
