package snapfile

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
	"unsafe"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/qindex"
	"disasso/internal/query"
)

// Snapshot is one opened snapshot file: the decoded forest plus index and
// estimator state served, where the platform allows, as zero-copy views over
// the file bytes. A Snapshot (and everything derived from it) is immutable
// and safe for concurrent use.
//
// Lifetime: when the file is memory-mapped, the slabs returned by Index and
// Singles point into the mapping. The mapping is released by Close, or — the
// serving path, where in-flight readers may outlive a registry swap — by a
// GC cleanup once the Snapshot is unreachable. The Index pins the Snapshot
// (qindex.FromSlabs retains it), so holding any derived view keeps the
// mapping alive.
type Snapshot struct {
	meta    Meta
	data    []byte
	mapped  bool
	cleanup runtime.Cleanup

	forest  *core.Anonymized
	ix      *qindex.Index
	singles []query.Estimate

	// original lazily decodes the retained original records (nil when the
	// snapshot was written without them).
	original func() (*dataset.Dataset, error)
}

// Meta returns the snapshot's metadata section.
func (s *Snapshot) Meta() Meta { return s.meta }

// Forest returns the decoded published cluster forest.
func (s *Snapshot) Forest() *core.Anonymized { return s.forest }

// Index returns the inverted index over the forest. On little-endian 64-bit
// hosts with a mapped file its slabs are views into the mapping.
func (s *Snapshot) Index() *qindex.Index { return s.ix }

// Singles returns the persisted singleton estimate table, rank order.
func (s *Snapshot) Singles() []query.Estimate { return s.singles }

// Mapped reports whether the snapshot serves from a memory mapping of the
// file (as opposed to a heap copy — the portable fallback).
func (s *Snapshot) Mapped() bool { return s.mapped }

// HasOriginal reports whether the snapshot retains the original records.
func (s *Snapshot) HasOriginal() bool { return s.original != nil }

// Original decodes (once) and returns the retained original dataset.
// It must only be called when HasOriginal is true.
func (s *Snapshot) Original() (*dataset.Dataset, error) { return s.original() }

// Close releases the file mapping, if any. It must not be called while
// derived views (Index slabs, Singles) are still in use; long-lived servers
// instead drop all references and let the GC cleanup release the mapping.
func (s *Snapshot) Close() error {
	if !s.mapped {
		return nil
	}
	s.cleanup.Stop()
	s.mapped = false
	data := s.data
	s.data = nil
	return munmapBytes(data)
}

// Open reads the snapshot at path, memory-mapping it when the platform
// supports it and falling back to a heap read otherwise. All section CRCs
// are verified before anything is served.
func Open(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only descriptor; the mapping outlives it
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < headerSize {
		return nil, fmt.Errorf("snapfile: %s: %d bytes is smaller than the header", path, size)
	}
	if data, ok := mmapFile(f, size); ok {
		s, err := parse(data, true)
		if err != nil {
			_ = munmapBytes(data)
			return nil, fmt.Errorf("snapfile: %s: %w", path, err)
		}
		// The serving path never calls Close (in-flight readers may hold
		// slab views across a registry swap); the mapping is released when
		// the Snapshot becomes unreachable.
		s.cleanup = runtime.AddCleanup(s, func(b []byte) { _ = munmapBytes(b) }, data)
		return s, nil
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, fmt.Errorf("snapfile: %s: %w", path, err)
	}
	s, err := parse(data, false)
	if err != nil {
		return nil, fmt.Errorf("snapfile: %s: %w", path, err)
	}
	return s, nil
}

// Decode parses a snapshot from an in-memory byte slice (no mapping) — the
// portable io.ReaderAt-style path and the fuzz entry point. The returned
// Snapshot may alias data; callers must not modify it afterwards.
func Decode(data []byte) (*Snapshot, error) {
	return parse(data, false)
}

// section is one parsed table entry.
type section struct {
	id      uint32
	payload []byte
}

// parse validates the whole file — header, table bounds, alignment, CRCs,
// slab invariants — and assembles the Snapshot. Nothing is trusted before
// its CRC passes, and nothing structural (offsets, counts, cluster ids) is
// trusted before it is range-checked, so arbitrary input bytes can at worst
// produce an error (the fuzz target enforces this).
func parse(data []byte, mapped bool) (*Snapshot, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("truncated header: %d bytes", len(data))
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != formatVersion {
		return nil, fmt.Errorf("unsupported format version %d", v)
	}
	count := binary.LittleEndian.Uint32(data[8:])
	if count == 0 || count > maxSections {
		return nil, fmt.Errorf("implausible section count %d", count)
	}
	tableEnd := headerSize + int(count)*tableEntrySize
	if tableEnd > len(data) {
		return nil, fmt.Errorf("section table overruns the file")
	}

	secs := make(map[uint32]section, count)
	for i := 0; i < int(count); i++ {
		entry := data[headerSize+i*tableEntrySize:]
		id := binary.LittleEndian.Uint32(entry)
		crc := binary.LittleEndian.Uint32(entry[4:])
		off := binary.LittleEndian.Uint64(entry[8:])
		length := binary.LittleEndian.Uint64(entry[16:])
		if off%sectionAlign != 0 {
			return nil, fmt.Errorf("section %d: offset %d not %d-aligned", id, off, sectionAlign)
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("section %d: [%d, %d+%d) overruns the file", id, off, off, length)
		}
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("duplicate section id %d", id)
		}
		payload := data[off : off+length]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, fmt.Errorf("section %d: CRC mismatch (stored %08x, computed %08x)", id, crc, got)
		}
		secs[id] = section{id: id, payload: payload}
	}
	for _, id := range []uint32{secMeta, secForest, secDomain, secPostOff, secPostings, secStats, secSingles} {
		if _, ok := secs[id]; !ok {
			return nil, fmt.Errorf("missing required section %d", id)
		}
	}

	s := &Snapshot{data: data, mapped: mapped}
	if err := json.Unmarshal(secs[secMeta].payload, &s.meta); err != nil {
		return nil, fmt.Errorf("meta section: %w", err)
	}
	if s.meta.Records < 0 {
		return nil, fmt.Errorf("meta section: negative record count %d", s.meta.Records)
	}
	forest, err := core.ReadBinary(bytes.NewReader(secs[secForest].payload))
	if err != nil {
		return nil, fmt.Errorf("forest section: %w", err)
	}
	s.forest = forest

	terms, err := decodeTerms(secs[secDomain].payload)
	if err != nil {
		return nil, err
	}
	n := len(terms)
	postOff, err := decodeOffsets(secs[secPostOff].payload, n)
	if err != nil {
		return nil, err
	}
	post, err := decodePostings(secs[secPostings].payload, postOff, len(forest.Clusters))
	if err != nil {
		return nil, err
	}
	stats, err := decodeStats(secs[secStats].payload, n)
	if err != nil {
		return nil, err
	}
	s.singles, err = decodeSingles(secs[secSingles].payload, n)
	if err != nil {
		return nil, err
	}
	s.ix = qindex.FromSlabs(forest, terms, post, postOff, stats, s)

	if orig, ok := secs[secOriginal]; ok {
		payload, records := orig.payload, s.meta.Records
		s.original = sync.OnceValues(func() (*dataset.Dataset, error) {
			return decodeOriginal(payload, records)
		})
	}
	return s, nil
}

// hostLittleEndian reports whether the running host stores integers
// little-endian — the precondition for casting the file's slabs in place.
var hostLittleEndian = func() bool {
	var b [4]byte
	binary.NativeEndian.PutUint32(b[:], 1)
	return b[0] == 1
}()

// Cast eligibility per slab type: the host must be little-endian and the Go
// in-memory layout must match the on-disk layout exactly (field offsets and
// total size). On any mismatch — big-endian hosts, 32-bit ints — the decoder
// falls back to an explicit little-endian copy, the portable path.
var (
	canCastTerms = hostLittleEndian && unsafe.Sizeof(dataset.Term(0)) == termSize
	canCastPost  = hostLittleEndian &&
		unsafe.Sizeof(qindex.Posting{}) == postingSize &&
		unsafe.Offsetof(qindex.Posting{}.Cluster) == 0 &&
		unsafe.Offsetof(qindex.Posting{}.Bits) == 4
	canCastStats = hostLittleEndian &&
		unsafe.Sizeof(qindex.TermStats{}) == termStatSize &&
		unsafe.Offsetof(qindex.TermStats{}.SubrecordOcc) == 0 &&
		unsafe.Offsetof(qindex.TermStats{}.TermChunkOcc) == 8 &&
		unsafe.Offsetof(qindex.TermStats{}.Clusters) == 16
	canCastSingles = hostLittleEndian &&
		unsafe.Sizeof(query.Estimate{}) == estimateSize &&
		unsafe.Offsetof(query.Estimate{}.Lower) == 0 &&
		unsafe.Offsetof(query.Estimate{}.Upper) == 8 &&
		unsafe.Offsetof(query.Estimate{}.Expected) == 16
)

// castSlice reinterprets b as a []T without copying. The caller guarantees
// len(b) == n*sizeof(T) and that the layout matches; alignment is checked
// here (section offsets are 8-aligned within the file, and both mmap and the
// Go allocator align the base, but a defensive check costs nothing).
func castSlice[T any](b []byte, n int) ([]T, bool) {
	if n == 0 {
		return nil, true
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%unsafe.Alignof(*new(T)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*T)(p), n), true
}

func decodeTerms(b []byte) ([]dataset.Term, error) {
	if len(b)%termSize != 0 {
		return nil, fmt.Errorf("domain section: %d bytes is not a multiple of %d", len(b), termSize)
	}
	n := len(b) / termSize
	terms, ok := []dataset.Term(nil), false
	if canCastTerms {
		terms, ok = castSlice[dataset.Term](b, n)
	}
	if !ok {
		terms = make([]dataset.Term, n)
		for i := range terms {
			terms[i] = dataset.Term(int32(binary.LittleEndian.Uint32(b[i*termSize:])))
		}
	}
	for i := 1; i < n; i++ {
		if terms[i] <= terms[i-1] {
			return nil, fmt.Errorf("domain section: terms not strictly ascending at rank %d", i)
		}
	}
	return terms, nil
}

func decodeOffsets(b []byte, terms int) ([]int32, error) {
	if len(b) != (terms+1)*4 {
		return nil, fmt.Errorf("postoff section: %d bytes for %d terms (want %d)", len(b), terms, (terms+1)*4)
	}
	off, ok := []int32(nil), false
	if canCastTerms { // int32 layout == Term layout
		off, ok = castSlice[int32](b, terms+1)
	}
	if !ok {
		off = make([]int32, terms+1)
		for i := range off {
			off[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
		}
	}
	if len(off) == 0 || off[0] != 0 {
		return nil, fmt.Errorf("postoff section: first offset must be 0")
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return nil, fmt.Errorf("postoff section: offsets decrease at rank %d", i)
		}
	}
	return off, nil
}

func decodePostings(b []byte, postOff []int32, clusters int) ([]qindex.Posting, error) {
	if len(b)%postingSize != 0 {
		return nil, fmt.Errorf("postings section: %d bytes is not a multiple of %d", len(b), postingSize)
	}
	n := len(b) / postingSize
	if int(postOff[len(postOff)-1]) != n {
		return nil, fmt.Errorf("postings section: %d postings but prefix sums end at %d", n, postOff[len(postOff)-1])
	}
	post, ok := []qindex.Posting(nil), false
	if canCastPost {
		post, ok = castSlice[qindex.Posting](b, n)
	}
	if !ok {
		post = make([]qindex.Posting, n)
		for i := range post {
			post[i] = qindex.Posting{
				Cluster: int32(binary.LittleEndian.Uint32(b[i*postingSize:])),
				Bits:    b[i*postingSize+4],
			}
		}
	}
	// Per-rank lists must be sorted by cluster id with ids in range — the
	// invariants IntersectClusters' binary searches and the estimator's
	// Clusters[ci] lookups rely on.
	for r := 0; r+1 < len(postOff); r++ {
		list := post[postOff[r]:postOff[r+1]]
		for i, p := range list {
			if p.Cluster < 0 || int(p.Cluster) >= clusters {
				return nil, fmt.Errorf("postings section: rank %d: cluster id %d out of range [0, %d)", r, p.Cluster, clusters)
			}
			if i > 0 && p.Cluster <= list[i-1].Cluster {
				return nil, fmt.Errorf("postings section: rank %d: posting list not strictly ascending", r)
			}
		}
	}
	return post, nil
}

func decodeStats(b []byte, terms int) ([]qindex.TermStats, error) {
	if len(b) != terms*termStatSize {
		return nil, fmt.Errorf("termstats section: %d bytes for %d terms (want %d)", len(b), terms, terms*termStatSize)
	}
	if canCastStats {
		if stats, ok := castSlice[qindex.TermStats](b, terms); ok {
			return stats, nil
		}
	}
	stats := make([]qindex.TermStats, terms)
	for i := range stats {
		base := i * termStatSize
		stats[i] = qindex.TermStats{
			SubrecordOcc: int(int64(binary.LittleEndian.Uint64(b[base:]))),
			TermChunkOcc: int(int64(binary.LittleEndian.Uint64(b[base+8:]))),
			Clusters:     int(int64(binary.LittleEndian.Uint64(b[base+16:]))),
		}
	}
	return stats, nil
}

func decodeSingles(b []byte, terms int) ([]query.Estimate, error) {
	if len(b) != terms*estimateSize {
		return nil, fmt.Errorf("singles section: %d bytes for %d terms (want %d)", len(b), terms, terms*estimateSize)
	}
	if canCastSingles {
		if singles, ok := castSlice[query.Estimate](b, terms); ok {
			return singles, nil
		}
	}
	singles := make([]query.Estimate, terms)
	for i := range singles {
		base := i * estimateSize
		singles[i] = query.Estimate{
			Lower:    int(int64(binary.LittleEndian.Uint64(b[base:]))),
			Upper:    int(int64(binary.LittleEndian.Uint64(b[base+8:]))),
			Expected: math.Float64frombits(binary.LittleEndian.Uint64(b[base+16:])),
		}
	}
	return singles, nil
}

// decodeOriginal replays the delta-varint record stream of the original
// section. The record count must match the meta section — a cheap
// end-to-end consistency check across sections.
func decodeOriginal(b []byte, want int) (*dataset.Dataset, error) {
	rr := dataset.NewBinaryRecordReader(bytes.NewReader(b))
	records := make([]dataset.Record, 0, min(want, 1<<16))
	for {
		r, err := rr.Next(nil)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("original section: %w", err)
		}
		records = append(records, r)
	}
	if len(records) != want {
		return nil, fmt.Errorf("original section: %d records, meta says %d", len(records), want)
	}
	return dataset.FromRecords(records), nil
}
