package snapfile

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"testing"
	"unsafe"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/query"
)

// testContents builds a deterministic publication — pinned PRNG dataset,
// fixed options — so every test (and the golden pin) sees identical bytes.
func testContents(t testing.TB) Contents {
	t.Helper()
	rng := rand.New(rand.NewPCG(0xD15A550, 0x60D1DA7A))
	records := make([]dataset.Record, 300)
	for i := range records {
		terms := make([]dataset.Term, 1+rng.IntN(6))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(50))
		}
		records[i] = dataset.NewRecord(terms...)
	}
	d := dataset.FromRecords(records)
	opts := core.Options{K: 3, M: 2, Seed: 9, MaxShardRecords: 64}
	a, err := core.Anonymize(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	est := query.NewEstimator(a)
	sum := a.Stats()
	return Contents{
		Meta: Meta{
			Name: "golden", K: 3, M: 2,
			Records:      sum.Records,
			Terms:        sum.DistinctTerms,
			Clusters:     len(a.Clusters),
			Version:      1,
			ShardRecords: 64,
			Opts:         opts,
			Summary:      sum,
		},
		Forest:   a,
		Index:    est.Index(),
		Singles:  est.Singles(),
		Original: d,
	}
}

func encode(t testing.TB, c Contents) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRoundTrip writes a snapshot and decodes it back, checking every
// section survives exactly.
func TestRoundTrip(t *testing.T) {
	c := testContents(t)
	s, err := Decode(encode(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Meta(), c.Meta) {
		t.Errorf("meta: got %+v, want %+v", s.Meta(), c.Meta)
	}
	// Forest equality via its canonical encoding.
	var want, got bytes.Buffer
	if err := core.WriteBinary(&want, c.Forest); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteBinary(&got, s.Forest()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("forest did not round-trip")
	}
	wTerms, wPost, wOff, wStats := c.Index.Slabs()
	gTerms, gPost, gOff, gStats := s.Index().Slabs()
	if !slices.Equal(wTerms, gTerms) || !slices.Equal(wPost, gPost) ||
		!slices.Equal(wOff, gOff) || !slices.Equal(wStats, gStats) {
		t.Error("index slabs did not round-trip")
	}
	if !slices.Equal(c.Singles, s.Singles()) {
		t.Error("singles did not round-trip")
	}
	if !s.HasOriginal() {
		t.Fatal("original section missing")
	}
	orig, err := s.Original()
	if err != nil {
		t.Fatal(err)
	}
	if orig.Len() != c.Original.Len() {
		t.Fatalf("original: %d records, want %d", orig.Len(), c.Original.Len())
	}
	for i, r := range orig.Records {
		if !slices.Equal(r, c.Original.Records[i]) {
			t.Fatalf("original record %d differs", i)
		}
	}

	// Recovered estimator answers identically to a fresh build.
	fresh := query.NewEstimator(c.Forest)
	rec := query.NewRecoveredEstimator(s.Forest(), s.Index(), s.Singles())
	queries := []dataset.Record{
		dataset.NewRecord(3), dataset.NewRecord(7, 12), dataset.NewRecord(1, 4, 9), nil,
	}
	for _, q := range queries {
		if w, g := fresh.Support(q), rec.Support(q); w != g {
			t.Errorf("Support(%v): recovered %+v, fresh %+v", q, g, w)
		}
	}
}

// TestWithoutOriginal covers the streamed-publish shape: no original section.
func TestWithoutOriginal(t *testing.T) {
	c := testContents(t)
	c.Original = nil
	c.Meta.Streamed = true
	s, err := Decode(encode(t, c))
	if err != nil {
		t.Fatal(err)
	}
	if s.HasOriginal() {
		t.Error("HasOriginal = true without an original section")
	}
	if !s.Meta().Streamed {
		t.Error("streamed flag lost")
	}
}

// TestDeterministicOutput pins that equal contents produce equal bytes.
func TestDeterministicOutput(t *testing.T) {
	a := encode(t, testContents(t))
	b := encode(t, testContents(t))
	if !bytes.Equal(a, b) {
		t.Fatal("two writes of equal contents differ")
	}
}

// goldenSHA256 pins the exact output bytes for the testContents publication.
// A change here is a format change: bump formatVersion and regenerate
// testdata/golden.snap (go test -run TestGolden -update).
const goldenSHA256 = "ce5c01209a8e97b603d51ccdedb59e2c59a2df727a330caa724c0f450c9fe911"

var update = os.Getenv("UPDATE_GOLDEN") != ""

func TestGoldenFile(t *testing.T) {
	raw := encode(t, testContents(t))
	sum := sha256.Sum256(raw)
	if update {
		if err := os.WriteFile(filepath.Join("testdata", "golden.snap"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote testdata/golden.snap, sha256 %s", hex.EncodeToString(sum[:]))
	}
	if got := hex.EncodeToString(sum[:]); got != goldenSHA256 {
		t.Errorf("output sha256 = %s, want %s (format drift?)", got, goldenSHA256)
	}
	disk, err := os.ReadFile(filepath.Join("testdata", "golden.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(disk, raw) {
		t.Error("committed golden fixture differs from freshly written bytes")
	}
	// And the committed fixture must still open.
	if _, err := Decode(disk); err != nil {
		t.Errorf("decoding committed fixture: %v", err)
	}
}

// TestOpenServesFromMapping opens a snapshot file and asserts the posting
// slab is a view into the mapping — the zero-copy property — on platforms
// where the cast is eligible.
func TestOpenServesFromMapping(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.snap")
	if err := os.WriteFile(path, encode(t, testContents(t)), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	}()
	if !s.Mapped() {
		t.Skip("platform did not mmap; heap fallback in use")
	}
	if !canCastPost {
		t.Skip("posting layout not castable on this platform")
	}
	_, post, _, _ := s.Index().Slabs()
	base := uintptr(unsafe.Pointer(unsafe.SliceData(s.data)))
	p := uintptr(unsafe.Pointer(unsafe.SliceData(post)))
	if p < base || p >= base+uintptr(len(s.data)) {
		t.Error("posting slab is not backed by the file mapping")
	}
}

// TestCorruptionDetected flips one byte in every section payload in turn and
// checks the CRC rejects the file; same for truncations and a bad magic.
func TestCorruptionDetected(t *testing.T) {
	raw := encode(t, testContents(t))
	// Flip a byte inside each section payload (past the table).
	for off := headerSize + 8*tableEntrySize; off < len(raw); off += len(raw) / 37 {
		bad := slices.Clone(raw)
		bad[off] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Errorf("corruption at offset %d not detected", off)
		}
	}
	for _, cut := range []int{0, 3, headerSize - 1, headerSize + 5, len(raw) / 2, len(raw) - 1} {
		if _, err := Decode(raw[:cut]); err == nil {
			t.Errorf("truncation to %d bytes not detected", cut)
		}
	}
	bad := slices.Clone(raw)
	copy(bad, "NOPE")
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic not detected")
	}
	bad = slices.Clone(raw)
	bad[4] = 99 // unsupported version
	if _, err := Decode(bad); err == nil {
		t.Error("unsupported version not detected")
	}
}

// FuzzSnapfileReader throws arbitrary bytes at the parser: any input must
// either fail cleanly or produce a snapshot whose accessors can be exercised
// without panicking.
func FuzzSnapfileReader(f *testing.F) {
	c := Contents{}
	func() {
		defer func() { _ = recover() }()
		c = testContents(f)
	}()
	if c.Forest != nil {
		raw := encode(f, c)
		f.Add(raw)
		f.Add(raw[:len(raw)/2])
		flip := slices.Clone(raw)
		flip[len(flip)/3] ^= 0xFF
		f.Add(flip)
	}
	f.Add([]byte(magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		// The parser accepted the bytes: everything reachable must hold up.
		_ = s.Meta()
		terms, post, postOff, stats := s.Index().Slabs()
		if len(postOff) != len(terms)+1 || len(stats) != len(terms) {
			t.Fatalf("inconsistent slabs: %d terms, %d offsets, %d stats", len(terms), len(postOff), len(stats))
		}
		if int(postOff[len(terms)]) != len(post) {
			t.Fatalf("prefix sums end at %d, %d postings", postOff[len(terms)], len(post))
		}
		est := query.NewRecoveredEstimator(s.Forest(), s.Index(), s.Singles())
		if len(terms) > 0 {
			_ = est.Support(dataset.NewRecord(terms[0]))
			_ = est.Support(dataset.NewRecord(terms[0], terms[len(terms)-1]))
		}
		if s.HasOriginal() {
			_, _ = s.Original()
		}
	})
}
