// Package reconstruct samples possible original datasets D' ∈ I(D_A) from a
// disassociated dataset, as Section 3 ("Reconstruction of datasets") and
// Section 6 of the paper describe: within each cluster, subrecords of the
// different chunks are combined row-wise after independent shuffles, shared
// chunks combine across the joint cluster's records, and term-chunk terms pad
// the result (their multiplicity is undisclosed, so each is materialized
// once).
//
// Reconstructed datasets have statistical properties close to the original —
// the paper's analysts run mining tasks on them, and averaging query results
// over several reconstructions improves accuracy (evaluated by Figure 7d).
package reconstruct

import (
	"math/rand/v2"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// Sample draws one reconstructed dataset. Records within a cluster are
// produced in slot order, so the output length always equals the original
// dataset's length and no record is empty (record chunks are assigned
// empty-slots-first, which combined with the Lemma 2 subrecord-count bound
// guarantees coverage; remaining empties are padded from the term chunk).
func Sample(a *core.Anonymized, rng *rand.Rand) *dataset.Dataset {
	out := dataset.New(a.NumRecords())
	for _, node := range a.Clusters {
		out.Records = append(out.Records, sampleNode(node, rng)...)
	}
	return out
}

// SampleMany draws n independent reconstructions.
func SampleMany(a *core.Anonymized, n int, rng *rand.Rand) []*dataset.Dataset {
	out := make([]*dataset.Dataset, n)
	for i := range out {
		out[i] = Sample(a, rng)
	}
	return out
}

// sampleNode reconstructs the records of one top-level cluster node.
func sampleNode(n *core.ClusterNode, rng *rand.Rand) []dataset.Record {
	leaves := n.Leaves(nil)
	total := 0
	for _, l := range leaves {
		total += l.Size
	}
	slots := make([]dataset.Record, total)

	// Record chunks: each leaf's chunks combine within that leaf's slots.
	// Precompute each slot's leaf record-chunk domain union: a shared
	// subrecord placed on a slot must not intersect it, or the combined
	// record would project onto the leaf's chunks differently than published
	// and the result would fall outside I(D_A) (the "conflict" analysis in
	// the proof of Lemma 3).
	slotDomain := make([]dataset.Record, total)
	off := 0
	for _, leaf := range leaves {
		for _, c := range leaf.RecordChunks {
			assignChunk(slots[off:off+leaf.Size], c.Subrecords, rng, true)
		}
		var domUnion dataset.Record
		for _, c := range leaf.RecordChunks {
			domUnion = domUnion.Union(c.Domain)
		}
		for i := off; i < off+leaf.Size; i++ {
			slotDomain[i] = domUnion
		}
		off += leaf.Size
	}

	// Shared chunks: each joint's chunks combine across all slots its leaves
	// cover. Leaves() is in-order, so every node covers a contiguous range.
	extras := make([][]dataset.Record, total)
	assignShared(n, slots, slotDomain, extras, 0, rng)

	// Term chunks: each term goes to one record of its leaf (presence is
	// certain, multiplicity is not), then any still-empty slot is padded.
	off = 0
	for _, leaf := range leaves {
		rangeSlots := slots[off : off+leaf.Size]
		for _, t := range leaf.TermChunk {
			i := rng.IntN(len(rangeSlots))
			rangeSlots[i] = rangeSlots[i].Union(dataset.Record{t})
		}
		if len(leaf.TermChunk) > 0 {
			for i, s := range rangeSlots {
				if len(s) == 0 {
					t := leaf.TermChunk[rng.IntN(len(leaf.TermChunk))]
					rangeSlots[i] = dataset.Record{t}
				}
			}
		}
		off += leaf.Size
	}
	return slots
}

// assignShared walks the joint structure bottom-up, assigning each node's
// shared chunks into the slot range its leaves occupy while avoiding slots
// whose conflict domains intersect the subrecord. After a node's chunks are
// assigned, their domains join the conflict domains of the covered slots
// (appended to the slots' extras lists, not unioned — cheap): a term may
// appear in the shared chunks of both a joint and its ancestor (with
// disjoint source occurrences, kept k-anonymous by Property 1), and an
// ancestor subrecord must not merge into a slot already carrying the term.
// It returns the number of slots the node covers.
func assignShared(n *core.ClusterNode, slots, slotDomain []dataset.Record, extras [][]dataset.Record, lo int, rng *rand.Rand) int {
	if n.IsLeaf() {
		return n.Simple.Size
	}
	covered := 0
	for _, child := range n.Children {
		covered += assignShared(child, slots, slotDomain, extras, lo+covered, rng)
	}
	for _, c := range n.SharedChunks {
		assignSharedChunk(slots[lo:lo+covered], slotDomain[lo:lo+covered], extras[lo:lo+covered], c.Subrecords, rng)
		for i := lo; i < lo+covered; i++ {
			extras[i] = append(extras[i], c.Domain)
		}
	}
	return covered
}

// conflicts reports whether sr intersects the slot's leaf record-chunk
// domain or any shared-chunk domain already assigned below it.
func conflicts(sr, leafDomain dataset.Record, extras []dataset.Record) bool {
	if len(sr.Intersect(leafDomain)) != 0 {
		return true
	}
	for _, d := range extras {
		if len(sr.Intersect(d)) != 0 {
			return true
		}
	}
	return false
}

// assignSharedChunk places each shared subrecord on a distinct random slot
// whose leaf record-chunk domains do not intersect it. Such slots always
// exist for the anonymizer's own output (each subrecord originated in a leaf
// whose term chunk — not record chunks — held its terms). When the greedy
// pass runs out of directly usable slots, a one-level augmentation relocates
// an earlier placement to free a compatible slot; only if that fails too
// (possible for hand-built inputs) does the subrecord share a conflicting
// slot and deduplicate.
func assignSharedChunk(slots, slotDomain []dataset.Record, extras [][]dataset.Record, subrecords []dataset.Record, rng *rand.Rand) {
	unused := make([]int, len(slots))
	for i := range unused {
		unused[i] = i
	}
	take := func(pos int) int {
		idx := unused[pos]
		unused[pos] = unused[len(unused)-1]
		unused = unused[:len(unused)-1]
		return idx
	}
	fits := func(sr dataset.Record, slot int) bool {
		return !conflicts(sr, slotDomain[slot], extras[slot])
	}
	type placement struct {
		slot int
		sr   dataset.Record
	}
	var placements []placement

	for _, sr := range subrecords {
		if len(unused) == 0 {
			break // defensive: more subrecords than slots
		}
		placed := -1
		// A few random probes, then a linear fallback scan.
		for probe := 0; probe < 16 && placed < 0; probe++ {
			pos := rng.IntN(len(unused))
			if fits(sr, unused[pos]) {
				placed = take(pos)
			}
		}
		if placed < 0 {
			for pos := range unused {
				if fits(sr, unused[pos]) {
					placed = take(pos)
					break
				}
			}
		}
		if placed < 0 {
			// Augment: move an earlier placement p from slot u to a free
			// compatible slot v, then put sr on u. Valid because subrecord
			// terms live only in this chunk's domain, so removing p's terms
			// from u is exact.
		augment:
			for pi := range placements {
				u := placements[pi].slot
				if !fits(sr, u) {
					continue
				}
				for pos := range unused {
					v := unused[pos]
					if fits(placements[pi].sr, v) {
						slots[u] = slots[u].Subtract(placements[pi].sr)
						slots[v] = slots[v].Union(placements[pi].sr)
						take(pos)
						placements[pi].slot = v
						placed = u
						break augment
					}
				}
			}
		}
		if placed < 0 {
			forcedMerges++
			placed = take(rng.IntN(len(unused)))
		}
		slots[placed] = slots[placed].Union(sr)
		placements = append(placements, placement{slot: placed, sr: sr})
	}
}

// forcedMerges counts shared subrecords placed on conflicting slots after
// the augmentation failed; only tests read it.
var forcedMerges int

// assignChunk unions the chunk's subrecords into distinct random slots. With
// preferEmpty, still-empty slots are filled first (within each group the
// order is random); this keeps the Lemma 2 guarantee that enough subrecords
// exist to leave no record empty.
func assignChunk(slots []dataset.Record, subrecords []dataset.Record, rng *rand.Rand, preferEmpty bool) {
	n := len(slots)
	order := make([]int, 0, n)
	if preferEmpty {
		var empty, full []int
		for i, s := range slots {
			if len(s) == 0 {
				empty = append(empty, i)
			} else {
				full = append(full, i)
			}
		}
		rng.Shuffle(len(empty), func(i, j int) { empty[i], empty[j] = empty[j], empty[i] })
		rng.Shuffle(len(full), func(i, j int) { full[i], full[j] = full[j], full[i] })
		order = append(order, empty...)
		order = append(order, full...)
	} else {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	for i, sr := range subrecords {
		if i >= len(order) {
			break // defensive: malformed chunk with more subrecords than slots
		}
		slot := order[i]
		slots[slot] = slots[slot].Union(sr)
	}
}

// Conflicts counts, for diagnostics, how many shared subrecords of the given
// anonymized dataset have no conflict-free slot at all (every slot's leaf
// record-chunk domains intersect them). The anonymizer's own output has zero
// such subrecords; hand-built inputs may not.
func Conflicts(a *core.Anonymized) int {
	conflicts := 0
	for _, node := range a.Clusters {
		leaves := node.Leaves(nil)
		total := 0
		for _, l := range leaves {
			total += l.Size
		}
		slotDomain := make([]dataset.Record, total)
		off := 0
		for _, leaf := range leaves {
			var domUnion dataset.Record
			for _, c := range leaf.RecordChunks {
				domUnion = domUnion.Union(c.Domain)
			}
			for i := off; i < off+leaf.Size; i++ {
				slotDomain[i] = domUnion
			}
			off += leaf.Size
		}
		var walk func(n *core.ClusterNode, lo int) int
		walk = func(n *core.ClusterNode, lo int) int {
			if n.IsLeaf() {
				return n.Simple.Size
			}
			covered := 0
			for _, child := range n.Children {
				covered += walk(child, lo+covered)
			}
			for _, c := range n.SharedChunks {
				for _, sr := range c.Subrecords {
					ok := false
					for i := lo; i < lo+covered; i++ {
						if len(sr.Intersect(slotDomain[i])) == 0 {
							ok = true
							break
						}
					}
					if !ok {
						conflicts++
					}
				}
			}
			return covered
		}
		walk(node, 0)
	}
	return conflicts
}
