package reconstruct

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

func rec(terms ...dataset.Term) dataset.Record { return dataset.NewRecord(terms...) }

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0xABCD)) }

// randomDataset builds a random sparse dataset for round-trip tests.
func randomDataset(rng *rand.Rand, n, domain, maxLen int) *dataset.Dataset {
	var records []dataset.Record
	for i := 0; i < n; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(maxLen))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(domain))
		}
		records = append(records, rec(terms...))
	}
	return dataset.FromRecords(records)
}

func anonymizeOrDie(t *testing.T, d *dataset.Dataset, k, m int) *core.Anonymized {
	t.Helper()
	a, err := core.Anonymize(d, core.Options{K: k, M: m, Seed: 11})
	if err != nil {
		t.Fatalf("Anonymize: %v", err)
	}
	return a
}

func TestSamplePreservesCardinality(t *testing.T) {
	d := randomDataset(testRNG(1), 200, 30, 5)
	a := anonymizeOrDie(t, d, 3, 2)
	r := Sample(a, testRNG(2))
	if r.Len() != d.Len() {
		t.Fatalf("reconstruction has %d records, original %d", r.Len(), d.Len())
	}
}

func TestSampleNoEmptyRecords(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		d := randomDataset(testRNG(seed+10), 150, 25, 4)
		a := anonymizeOrDie(t, d, 3, 2)
		r := Sample(a, testRNG(seed))
		if err := r.Validate(); err != nil {
			t.Fatalf("seed %d: invalid reconstruction: %v", seed, err)
		}
	}
}

func TestSampleDomainMatchesOriginal(t *testing.T) {
	d := randomDataset(testRNG(3), 200, 30, 5)
	a := anonymizeOrDie(t, d, 3, 2)
	r := Sample(a, testRNG(4))
	got := dataset.NewRecord(r.Domain()...)
	want := dataset.NewRecord(d.Domain()...)
	if !got.Equal(want) {
		t.Errorf("reconstruction domain differs:\n got %v\nwant %v", got, want)
	}
}

// The defining property of a reconstruction: projecting it back onto each
// cluster's chunk domains must reproduce the published chunks exactly (as
// multisets of non-empty subrecords). This is D' ∈ I(D_A) for record chunks.
func TestSampleProjectsBackToChunks(t *testing.T) {
	d := randomDataset(testRNG(5), 250, 40, 5)
	a := anonymizeOrDie(t, d, 3, 2)
	r := Sample(a, testRNG(6))

	// Walk top-level nodes, tracking the record ranges of each leaf.
	off := 0
	for _, node := range a.Clusters {
		for _, leaf := range node.Leaves(nil) {
			slice := r.Records[off : off+leaf.Size]
			for _, c := range leaf.RecordChunks {
				want := make(map[string]int)
				for _, sr := range c.Subrecords {
					want[sr.Key()]++
				}
				got := make(map[string]int)
				for _, record := range slice {
					if p := record.Intersect(c.Domain); len(p) > 0 {
						got[p.Key()]++
					}
				}
				for key, n := range want {
					if got[key] != n {
						t.Fatalf("chunk %v: projection %q has %d copies, published %d",
							c.Domain, key, got[key], n)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("chunk %v: reconstruction adds projections: got %v want %v", c.Domain, got, want)
				}
			}
			off += leaf.Size
		}
	}
	if off != r.Len() {
		t.Fatalf("walked %d records, reconstruction has %d", off, r.Len())
	}
}

func TestSampleTermChunkTermsAppear(t *testing.T) {
	d := randomDataset(testRNG(7), 200, 50, 4)
	a := anonymizeOrDie(t, d, 4, 2)
	r := Sample(a, testRNG(8))
	sup := r.Supports()
	for term := range a.TermChunkTerms() {
		if sup[term] == 0 {
			t.Errorf("term-chunk term %d absent from reconstruction", term)
		}
	}
}

func TestSampleManyIndependent(t *testing.T) {
	d := randomDataset(testRNG(9), 300, 30, 5)
	a := anonymizeOrDie(t, d, 3, 2)
	rs := SampleMany(a, 3, testRNG(10))
	if len(rs) != 3 {
		t.Fatalf("got %d reconstructions", len(rs))
	}
	// Different samples should differ somewhere (astronomically likely).
	same := true
	for i := range rs[0].Records {
		if !rs[0].Records[i].Equal(rs[1].Records[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("two samples are identical — shuffling is broken")
	}
	for _, r := range rs {
		if err := r.Validate(); err != nil {
			t.Fatalf("invalid sample: %v", err)
		}
	}
}

func TestSampleSupportsCloseToOriginal(t *testing.T) {
	// Terms in record chunks keep exact supports; overall per-term supports
	// in a reconstruction must never exceed the original by more than the
	// term-chunk inflation (terms materialized once per term chunk).
	d := randomDataset(testRNG(12), 400, 25, 5)
	a := anonymizeOrDie(t, d, 3, 2)
	r := Sample(a, testRNG(13))
	orig := d.Supports()
	got := r.Supports()
	lower := a.LowerBoundSupports()
	for term, s := range got {
		if s < lower[term] {
			t.Errorf("term %d: reconstructed support %d below lower bound %d", term, s, lower[term])
		}
		if s > orig[term] {
			// Padding empty slots can add at most a handful of extras.
			if s > orig[term]+3 {
				t.Errorf("term %d: reconstructed support %d far above original %d", term, s, orig[term])
			}
		}
	}
}

func TestConflictsZeroOnAnonymizerOutput(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		d := randomDataset(testRNG(seed+40), 300, 30, 5)
		a := anonymizeOrDie(t, d, 3, 2)
		if n := Conflicts(a); n != 0 {
			t.Errorf("seed %d: %d unplaceable shared subrecords", seed, n)
		}
	}
}

func TestSampleFigure2bJoint(t *testing.T) {
	// Hand-built Figure 3 joint cluster: reconstruction must produce 10
	// records, with the shared chunk's subrecords spread across them.
	const (
		itunes dataset.Term = iota
		flu
		madonna
		ikea
		ruby
		viagra
		audiA4
		sonyTV
		iphoneSDK
		digitalCam
		panicDis
		playboy
	)
	p1 := &core.Cluster{
		Size: 5,
		RecordChunks: []core.Chunk{
			{Domain: rec(itunes, flu, madonna), Subrecords: []dataset.Record{
				rec(itunes, flu, madonna), rec(madonna, flu), rec(itunes, madonna),
				rec(itunes, flu), rec(itunes, flu, madonna)}},
			{Domain: rec(audiA4, sonyTV), Subrecords: []dataset.Record{
				rec(audiA4, sonyTV), rec(audiA4, sonyTV), rec(audiA4, sonyTV)}},
		},
		TermChunk: rec(viagra),
	}
	p2 := &core.Cluster{
		Size: 5,
		RecordChunks: []core.Chunk{
			{Domain: rec(madonna, iphoneSDK, digitalCam), Subrecords: []dataset.Record{
				rec(madonna, digitalCam), rec(iphoneSDK, madonna),
				rec(iphoneSDK, digitalCam, madonna), rec(iphoneSDK, digitalCam),
				rec(iphoneSDK, digitalCam, madonna)}},
		},
		TermChunk: rec(panicDis, playboy),
	}
	joint := &core.ClusterNode{
		Children: []*core.ClusterNode{{Simple: p1}, {Simple: p2}},
		SharedChunks: []core.Chunk{{
			Domain: rec(ikea, ruby),
			Subrecords: []dataset.Record{
				rec(ikea, ruby), rec(ruby), rec(ikea), rec(ikea, ruby), rec(ikea, ruby)},
		}},
	}
	a := &core.Anonymized{K: 3, M: 2, Clusters: []*core.ClusterNode{joint}}
	r := Sample(a, testRNG(14))
	if r.Len() != 10 {
		t.Fatalf("reconstruction has %d records", r.Len())
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	sup := r.Supports()
	if sup[ikea] != 4 || sup[ruby] != 4 {
		t.Errorf("shared-chunk supports ikea=%d ruby=%d, want 4 and 4", sup[ikea], sup[ruby])
	}
	if sup[viagra] < 1 || sup[panicDis] < 1 || sup[playboy] < 1 {
		t.Error("term-chunk terms missing")
	}
}
