package reconstruct

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// seededAnonymized builds anonymizer output for the invariant tests below.
func seededAnonymized(t *testing.T, seed uint64) (*dataset.Dataset, *core.Anonymized) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 33))
	var records []dataset.Record
	for i := 0; i < 400; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(5))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(30))
		}
		records = append(records, dataset.NewRecord(terms...))
	}
	d := dataset.FromRecords(records)
	a, err := core.Anonymize(d, core.Options{K: 3, M: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	return d, a
}

// The anonymizer's own output always offers a conflict-free slot for every
// shared subrecord; the sampler's last-resort merge path must never fire.
func TestNoForcedMerges(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		_, a := seededAnonymized(t, seed)
		rng := rand.New(rand.NewPCG(seed, 1))
		forcedMerges = 0
		SampleMany(a, 5, rng)
		if forcedMerges != 0 {
			t.Errorf("seed %d: %d forced merges", seed, forcedMerges)
		}
	}
}

// A term in a leaf's term chunk never appears in the shared-chunk domains of
// that leaf's ancestors — the invariant that lets term-chunk padding skip
// conflict checks (REFINE removes placed terms from every term chunk).
func TestTermChunkDisjointFromAncestorShared(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		_, a := seededAnonymized(t, seed)
		for ci, node := range a.Clusters {
			var walk func(n *core.ClusterNode, anc dataset.Record)
			walk = func(n *core.ClusterNode, anc dataset.Record) {
				if n.IsLeaf() {
					if inter := n.Simple.TermChunk.Intersect(anc); len(inter) > 0 {
						t.Errorf("seed %d cluster %d: TC terms %v in ancestor shared domains", seed, ci, inter)
					}
					return
				}
				for _, c := range n.SharedChunks {
					anc = anc.Union(c.Domain)
				}
				for _, child := range n.Children {
					walk(child, anc)
				}
			}
			walk(node, nil)
		}
	}
}

// Regression for the ancestor/descendant shared-chunk merge: every published
// occurrence of a term within a cluster must survive into each
// reconstruction (per-cluster support ≥ chunk occurrences + term-chunk
// presences). A term may sit in shared chunks at two levels of the same
// chain; their subrecords must land on distinct records.
func TestPerClusterSupportsAtLeastPublished(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		_, a := seededAnonymized(t, seed)
		rng := rand.New(rand.NewPCG(seed, 2))
		domain := a.Domain()
		for trial := 0; trial < 3; trial++ {
			r := Sample(a, rng)
			off := 0
			for ci, node := range a.Clusters {
				size := node.Size()
				published := make(map[dataset.Term]int)
				node.Walk(func(cn *core.ClusterNode) {
					if cn.IsLeaf() {
						for _, c := range cn.Simple.RecordChunks {
							for _, sr := range c.Subrecords {
								for _, tm := range sr {
									published[tm]++
								}
							}
						}
						for _, tm := range cn.Simple.TermChunk {
							published[tm]++
						}
					} else {
						for _, c := range cn.SharedChunks {
							for _, sr := range c.Subrecords {
								for _, tm := range sr {
									published[tm]++
								}
							}
						}
					}
				})
				got := make(map[dataset.Term]int)
				for i := off; i < off+size; i++ {
					for _, tm := range r.Records[i] {
						got[tm]++
					}
				}
				for _, tm := range domain {
					if got[tm] < published[tm] {
						t.Errorf("seed %d trial %d cluster %d term %d: reconstructed %d < published %d",
							seed, trial, ci, tm, got[tm], published[tm])
					}
				}
				off += size
			}
		}
	}
}
