package reconstruct

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// Hand-built publication exercising the augmentation path: the shared chunk
// spans two leaves; leaf A's record-chunk domain conflicts with term 1, so
// every {1}-subrecord must land in leaf B, and with tight slot counts the
// greedy's random probes alone can strand one (forcing a relocation).
func TestAssignSharedAugmentation(t *testing.T) {
	leafA := &core.Cluster{
		Size: 3,
		RecordChunks: []core.Chunk{{
			Domain:     dataset.NewRecord(1, 2),
			Subrecords: []dataset.Record{dataset.NewRecord(1, 2), dataset.NewRecord(1, 2), dataset.NewRecord(1, 2)},
		}},
		TermChunk: dataset.NewRecord(9),
	}
	leafB := &core.Cluster{
		Size: 3,
		RecordChunks: []core.Chunk{{
			Domain:     dataset.NewRecord(5),
			Subrecords: []dataset.Record{dataset.NewRecord(5), dataset.NewRecord(5), dataset.NewRecord(5)},
		}},
		TermChunk: dataset.NewRecord(8),
	}
	joint := &core.ClusterNode{
		Children: []*core.ClusterNode{{Simple: leafA}, {Simple: leafB}},
		SharedChunks: []core.Chunk{{
			Domain: dataset.NewRecord(1),
			// Three {1}-subrecords, exactly leaf B's capacity.
			Subrecords: []dataset.Record{dataset.NewRecord(1), dataset.NewRecord(1), dataset.NewRecord(1)},
		}},
	}
	a := &core.Anonymized{K: 3, M: 2, Clusters: []*core.ClusterNode{joint}}

	for seed := uint64(0); seed < 30; seed++ {
		forcedMerges = 0
		r := Sample(a, rand.New(rand.NewPCG(seed, seed+1)))
		if forcedMerges != 0 {
			t.Fatalf("seed %d: forced merge despite feasible assignment", seed)
		}
		// All three shared {1}-subrecords must land on leaf B's records
		// (slots 3..5), never merging with leaf A's chunk-domain slots.
		count1 := 0
		for i := 3; i < 6; i++ {
			if r.Records[i].Contains(1) {
				count1++
			}
		}
		if count1 != 3 {
			t.Fatalf("seed %d: %d of 3 shared subrecords reached leaf B", seed, count1)
		}
		for i := 0; i < 3; i++ {
			// Leaf A records keep exactly one occurrence of term 1 (their
			// own chunk part).
			if !r.Records[i].Contains(1) || !r.Records[i].Contains(2) {
				t.Fatalf("seed %d: leaf A record %d = %v lost its chunk part", seed, i, r.Records[i])
			}
		}
	}
}

// A hand-built infeasible publication (more conflicting subrecords than
// conflict-free slots) must fall back to merging rather than hang or panic.
func TestAssignSharedInfeasibleFallsBack(t *testing.T) {
	leaf := &core.Cluster{
		Size: 3,
		RecordChunks: []core.Chunk{{
			Domain:     dataset.NewRecord(1),
			Subrecords: []dataset.Record{dataset.NewRecord(1), dataset.NewRecord(1), dataset.NewRecord(1)},
		}},
		TermChunk: dataset.NewRecord(9),
	}
	leafB := &core.Cluster{Size: 1, TermChunk: dataset.NewRecord(8)}
	joint := &core.ClusterNode{
		Children: []*core.ClusterNode{{Simple: leaf}, {Simple: leafB}},
		SharedChunks: []core.Chunk{{
			Domain: dataset.NewRecord(1),
			// Two {1}-subrecords but only one conflict-free slot.
			Subrecords: []dataset.Record{dataset.NewRecord(1), dataset.NewRecord(1)},
		}},
	}
	a := &core.Anonymized{K: 2, M: 2, Clusters: []*core.ClusterNode{joint}}
	forcedMerges = 0
	r := Sample(a, rand.New(rand.NewPCG(4, 4)))
	if forcedMerges == 0 {
		t.Error("expected a forced merge on an infeasible publication")
	}
	if r.Len() != 4 {
		t.Errorf("reconstruction has %d records", r.Len())
	}
	if err := r.Validate(); err != nil {
		t.Errorf("fallback produced an invalid dataset: %v", err)
	}
}
