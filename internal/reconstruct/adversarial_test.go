package reconstruct

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/attack"
	"disasso/internal/core"
	"disasso/internal/dataset"
)

// Hand-built publication exercising the augmentation path: the shared chunk
// spans two leaves; leaf A's record-chunk domain conflicts with term 1, so
// every {1}-subrecord must land in leaf B, and with tight slot counts the
// greedy's random probes alone can strand one (forcing a relocation).
func TestAssignSharedAugmentation(t *testing.T) {
	leafA := &core.Cluster{
		Size: 3,
		RecordChunks: []core.Chunk{{
			Domain:     dataset.NewRecord(1, 2),
			Subrecords: []dataset.Record{dataset.NewRecord(1, 2), dataset.NewRecord(1, 2), dataset.NewRecord(1, 2)},
		}},
		TermChunk: dataset.NewRecord(9),
	}
	leafB := &core.Cluster{
		Size: 3,
		RecordChunks: []core.Chunk{{
			Domain:     dataset.NewRecord(5),
			Subrecords: []dataset.Record{dataset.NewRecord(5), dataset.NewRecord(5), dataset.NewRecord(5)},
		}},
		TermChunk: dataset.NewRecord(8),
	}
	joint := &core.ClusterNode{
		Children: []*core.ClusterNode{{Simple: leafA}, {Simple: leafB}},
		SharedChunks: []core.Chunk{{
			Domain: dataset.NewRecord(1),
			// Three {1}-subrecords, exactly leaf B's capacity.
			Subrecords: []dataset.Record{dataset.NewRecord(1), dataset.NewRecord(1), dataset.NewRecord(1)},
		}},
	}
	a := &core.Anonymized{K: 3, M: 2, Clusters: []*core.ClusterNode{joint}}

	for seed := uint64(0); seed < 30; seed++ {
		forcedMerges = 0
		r := Sample(a, rand.New(rand.NewPCG(seed, seed+1)))
		if forcedMerges != 0 {
			t.Fatalf("seed %d: forced merge despite feasible assignment", seed)
		}
		// All three shared {1}-subrecords must land on leaf B's records
		// (slots 3..5), never merging with leaf A's chunk-domain slots.
		count1 := 0
		for i := 3; i < 6; i++ {
			if r.Records[i].Contains(1) {
				count1++
			}
		}
		if count1 != 3 {
			t.Fatalf("seed %d: %d of 3 shared subrecords reached leaf B", seed, count1)
		}
		for i := 0; i < 3; i++ {
			// Leaf A records keep exactly one occurrence of term 1 (their
			// own chunk part).
			if !r.Records[i].Contains(1) || !r.Records[i].Contains(2) {
				t.Fatalf("seed %d: leaf A record %d = %v lost its chunk part", seed, i, r.Records[i])
			}
		}
	}
}

// TestCoverKnowledgeOnRepaired arms the adversary with exactly the itemsets
// the cover-problem detector flags on an unrepaired publication — the anchor
// and learned terms of every breach — and asserts the k^m guarantee on the
// repaired publication for every subset of that knowledge of size up to m.
// This is the end-to-end adversarial reading of safe disassociation: the
// associations that were learnable above 1/k before the repair give a real
// attacker no narrowing power afterwards.
func TestCoverKnowledgeOnRepaired(t *testing.T) {
	rng := rand.New(rand.NewPCG(505, 0xDA7A))
	records := make([]dataset.Record, 0, 40)
	for len(records) < 40 {
		length := 1 + rng.IntN(6)
		terms := make([]dataset.Term, 0, length)
		for i := 0; i < length; i++ {
			u := rng.Float64()
			terms = append(terms, dataset.Term(8*u*u))
		}
		if r := dataset.NewRecord(terms...); len(r) > 0 {
			records = append(records, r)
		}
	}
	d := dataset.FromRecords(records)
	opts := core.Options{K: 2, M: 2, MaxClusterSize: 5, Parallel: 1, Seed: 505}

	plain, err := core.Anonymize(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	breaches := core.BreachesOf(plain)
	if len(breaches) == 0 {
		t.Fatal("dense publication has no breaches; the adversarial sweep would be vacuous")
	}

	opts.SafeDisassociation = true
	repaired, err := core.Anonymize(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if left := core.BreachesOf(repaired); len(left) != 0 {
		t.Fatalf("repair left %d breaches", len(left))
	}
	for _, b := range breaches {
		// Every |S| ≤ m subset of the breach's itemset {Anchor, Learned}.
		for _, knowledge := range []dataset.Record{
			dataset.NewRecord(b.Anchor),
			dataset.NewRecord(b.Learned),
			dataset.NewRecord(b.Anchor, b.Learned),
		} {
			if !attack.GuaranteeHolds(repaired, knowledge, opts.K) {
				t.Errorf("knowledge %v (from breach %s -> %v): only %d candidates on the repaired publication",
					knowledge, b.Where, b.Learned, attack.Candidates(repaired, knowledge))
			}
		}
	}

	// And the repaired publication still reconstructs into valid datasets.
	for seed := uint64(0); seed < 5; seed++ {
		r := Sample(repaired, rand.New(rand.NewPCG(seed, 9)))
		if err := r.Validate(); err != nil {
			t.Fatalf("seed %d: reconstruction of repaired publication invalid: %v", seed, err)
		}
		if r.Len() != d.Len() {
			t.Fatalf("seed %d: reconstruction has %d records, original %d", seed, r.Len(), d.Len())
		}
	}
}

// A hand-built infeasible publication (more conflicting subrecords than
// conflict-free slots) must fall back to merging rather than hang or panic.
func TestAssignSharedInfeasibleFallsBack(t *testing.T) {
	leaf := &core.Cluster{
		Size: 3,
		RecordChunks: []core.Chunk{{
			Domain:     dataset.NewRecord(1),
			Subrecords: []dataset.Record{dataset.NewRecord(1), dataset.NewRecord(1), dataset.NewRecord(1)},
		}},
		TermChunk: dataset.NewRecord(9),
	}
	leafB := &core.Cluster{Size: 1, TermChunk: dataset.NewRecord(8)}
	joint := &core.ClusterNode{
		Children: []*core.ClusterNode{{Simple: leaf}, {Simple: leafB}},
		SharedChunks: []core.Chunk{{
			Domain: dataset.NewRecord(1),
			// Two {1}-subrecords but only one conflict-free slot.
			Subrecords: []dataset.Record{dataset.NewRecord(1), dataset.NewRecord(1)},
		}},
	}
	a := &core.Anonymized{K: 2, M: 2, Clusters: []*core.ClusterNode{joint}}
	forcedMerges = 0
	r := Sample(a, rand.New(rand.NewPCG(4, 4)))
	if forcedMerges == 0 {
		t.Error("expected a forced merge on an infeasible publication")
	}
	if r.Len() != 4 {
		t.Errorf("reconstruction has %d records", r.Len())
	}
	if err := r.Validate(); err != nil {
		t.Errorf("fallback produced an invalid dataset: %v", err)
	}
}
