// Package generalization implements the Apriori anonymization baseline the
// paper compares against in Figure 11b/c: the generalization-based
// k^m-anonymization of set-valued data from Terrovitis, Mamoulis & Kalnis
// ("Privacy-preserving anonymization of set-valued data", PVLDB 2008),
// reference [27] of the paper.
//
// The algorithm uses global (full-subtree) recoding over a generalization
// hierarchy: working itemset size by itemset size (1..m, the Apriori
// principle), it finds term combinations that appear in the data fewer than
// k times and generalizes the least frequent participating terms one
// hierarchy level up, until every appearing combination of at most m
// (generalized) terms has support at least k. Its characteristic failure
// mode — "few uncommon terms cause the generalization of several common
// ones" (Section 7.2) — emerges from the full-subtree recoding.
package generalization

import (
	"fmt"
	"sort"

	"disasso/internal/dataset"
	"disasso/internal/hierarchy"
	"disasso/internal/itemset"
)

// Result is the output of the Apriori anonymization.
type Result struct {
	// Dataset is the generalized dataset; its terms are hierarchy node IDs
	// (leaves or interior nodes).
	Dataset *dataset.Dataset
	// Mapping gives, per original leaf term, the hierarchy node it is
	// published as. Identity for non-generalized terms.
	Mapping map[dataset.Term]dataset.Term
	// GeneralizationSteps counts how many single-level generalizations were
	// applied (a measure of information loss).
	GeneralizationSteps int
}

// GeneralizedTermCount returns how many original terms are published above
// leaf level.
func (r *Result) GeneralizedTermCount() int {
	n := 0
	for t, g := range r.Mapping {
		if t != g {
			n++
		}
	}
	return n
}

// Anonymize runs the Apriori anonymization until the generalized dataset is
// k^m-anonymous. It always terminates: each step moves at least one subtree
// up one level, and at the root the dataset collapses to identical records.
func Anonymize(d *dataset.Dataset, h *hierarchy.Hierarchy, k, m int) (*Result, error) {
	if k < 2 {
		return nil, fmt.Errorf("generalization: k = %d, need ≥ 2", k)
	}
	if m < 1 {
		return nil, fmt.Errorf("generalization: m = %d, need ≥ 1", m)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("generalization: invalid input: %w", err)
	}

	// gen maps every leaf to its current published node (global recoding).
	gen := make([]dataset.Term, h.DomainSize)
	for i := range gen {
		gen[i] = dataset.Term(i)
	}
	steps := 0

	for {
		g := apply(d, gen)
		victims := findViolations(g.Records, k, m)
		if len(victims) == 0 {
			res := &Result{Dataset: g, GeneralizationSteps: steps, Mapping: make(map[dataset.Term]dataset.Term, h.DomainSize)}
			for i, t := range gen {
				res.Mapping[dataset.Term(i)] = t
			}
			return res, nil
		}
		// Generalize each victim one level, collapsing its whole sibling
		// subtree (global recoding). Deduplicate: generalizing one victim
		// may cover another.
		progressed := false
		for _, v := range victims {
			p := h.Parent(v)
			if p == v {
				continue // already at the root
			}
			changed := false
			for leaf := 0; leaf < h.DomainSize; leaf++ {
				if h.IsAncestor(p, gen[leaf]) && gen[leaf] != p {
					gen[leaf] = p
					changed = true
				}
			}
			if changed {
				steps++
				progressed = true
			}
		}
		if !progressed {
			// All victims at the root already: every record is {root}; the
			// dataset is trivially anonymous for |D| ≥ k, and nothing more
			// can be done otherwise.
			g = apply(d, gen)
			res := &Result{Dataset: g, GeneralizationSteps: steps, Mapping: make(map[dataset.Term]dataset.Term, h.DomainSize)}
			for i, t := range gen {
				res.Mapping[dataset.Term(i)] = t
			}
			return res, nil
		}
	}
}

// apply maps a dataset through the current recoding.
func apply(d *dataset.Dataset, gen []dataset.Term) *dataset.Dataset {
	out := dataset.New(d.Len())
	for _, r := range d.Records {
		mapped := make(dataset.Record, 0, len(r))
		for _, t := range r {
			mapped = append(mapped, gen[t])
		}
		out.Records = append(out.Records, mapped.Normalize())
	}
	return out
}

// findViolations scans all combinations of size ≤ m appearing in the records
// and returns, per violating combination (0 < support < k), its least
// frequent term — the generalization victims, deduplicated, most frequent
// first so popular terms are climbed last.
func findViolations(records []dataset.Record, k, m int) []dataset.Term {
	counts := make(map[string]int)
	combos := make(map[string]dataset.Record)
	for _, r := range records {
		top := m
		if top > len(r) {
			top = len(r)
		}
		for size := 1; size <= top; size++ {
			itemset.Subsets(r, size, func(s dataset.Record) bool {
				key := s.Key()
				if _, ok := combos[key]; !ok {
					combos[key] = s.Clone()
				}
				counts[key]++
				return true
			})
		}
	}
	termSup := itemset.TermSupports(records)
	victimSet := make(map[dataset.Term]bool)
	for key, n := range counts {
		if n >= k {
			continue
		}
		combo := combos[key]
		victim := combo[0]
		for _, t := range combo {
			if termSup[t] < termSup[victim] || (termSup[t] == termSup[victim] && t < victim) {
				victim = t
			}
		}
		victimSet[victim] = true
	}
	victims := make([]dataset.Term, 0, len(victimSet))
	for t := range victimSet {
		victims = append(victims, t)
	}
	sort.Slice(victims, func(i, j int) bool {
		if termSup[victims[i]] != termSup[victims[j]] {
			return termSup[victims[i]] < termSup[victims[j]]
		}
		return victims[i] < victims[j]
	})
	return victims
}

// IsKMAnonymous reports whether every combination of at most m terms that
// appears in the dataset appears at least k times — the guarantee the
// baseline must deliver (same Definition 1 as disassociation).
func IsKMAnonymous(d *dataset.Dataset, k, m int) bool {
	return len(findViolations(d.Records, k, m)) == 0
}
