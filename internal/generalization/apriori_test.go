package generalization

import (
	"math/rand/v2"
	"testing"

	"disasso/internal/dataset"
	"disasso/internal/hierarchy"
)

func rec(terms ...dataset.Term) dataset.Record { return dataset.NewRecord(terms...) }

func TestAnonymizeValidation(t *testing.T) {
	h, _ := hierarchy.New(4, 2)
	d := dataset.FromRecords([]dataset.Record{rec(0)})
	if _, err := Anonymize(d, h, 1, 2); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Anonymize(d, h, 2, 0); err == nil {
		t.Error("m=0 accepted")
	}
	bad := dataset.FromRecords([]dataset.Record{{}})
	if _, err := Anonymize(bad, h, 2, 2); err == nil {
		t.Error("empty record accepted")
	}
}

func TestAlreadyAnonymousUnchanged(t *testing.T) {
	h, _ := hierarchy.New(4, 2)
	d := dataset.FromRecords([]dataset.Record{
		rec(0, 1), rec(0, 1), rec(0, 1),
	})
	res, err := Anonymize(d, h, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.GeneralizationSteps != 0 {
		t.Errorf("took %d steps on already-anonymous data", res.GeneralizationSteps)
	}
	for i, r := range res.Dataset.Records {
		if !r.Equal(d.Records[i]) {
			t.Errorf("record %d changed: %v", i, r)
		}
	}
}

func TestViolationForcesGeneralization(t *testing.T) {
	// Terms 0 and 1 are siblings under node 4 in a 4-leaf fanout-2 tree.
	// {0} appears twice, {1} appears once: k=3 violations at size 1.
	h, _ := hierarchy.New(4, 2)
	d := dataset.FromRecords([]dataset.Record{
		rec(0), rec(0), rec(1),
	})
	res, err := Anonymize(d, h, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !IsKMAnonymous(res.Dataset, 3, 2) {
		t.Fatal("output is not k^m-anonymous")
	}
	// 0 and 1 must both publish as their parent (node 4): support becomes 3.
	if res.Mapping[0] != 4 || res.Mapping[1] != 4 {
		t.Errorf("mapping = %v, want 0,1 → 4", res.Mapping)
	}
	if res.GeneralizationSteps == 0 {
		t.Error("no steps counted")
	}
	for _, r := range res.Dataset.Records {
		if !r.Equal(rec(4)) {
			t.Errorf("record = %v, want {4}", r)
		}
	}
}

func TestUncommonTermsDragCommonOnes(t *testing.T) {
	// The failure mode Section 7.2 describes: one rare term under the same
	// subtree as a frequent one forces the frequent term up as well (global
	// recoding).
	h, _ := hierarchy.New(4, 2) // leaves 0..3; parents: 4={0,1}, 5={2,3}, root 6
	var records []dataset.Record
	for i := 0; i < 10; i++ {
		records = append(records, rec(0)) // frequent term 0
	}
	records = append(records, rec(1)) // rare sibling term 1
	d := dataset.FromRecords(records)
	res, err := Anonymize(d, h, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !IsKMAnonymous(res.Dataset, 3, 2) {
		t.Fatal("not anonymous")
	}
	if res.Mapping[0] == 0 {
		t.Error("frequent term 0 should have been dragged up by its rare sibling")
	}
}

func TestPairViolations(t *testing.T) {
	// All singletons frequent, but the pair {0,2} appears only once (k=2).
	h, _ := hierarchy.New(4, 2)
	d := dataset.FromRecords([]dataset.Record{
		rec(0), rec(0), rec(0, 2),
		rec(2), rec(2),
	})
	res, err := Anonymize(d, h, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !IsKMAnonymous(res.Dataset, 2, 2) {
		t.Fatalf("pair violation survived: %v", res.Dataset.Records)
	}
}

func TestIsKMAnonymous(t *testing.T) {
	d := dataset.FromRecords([]dataset.Record{rec(1, 2), rec(1, 2), rec(3)})
	if IsKMAnonymous(d, 2, 2) {
		t.Error("support-1 term {3} accepted at k=2")
	}
	d = dataset.FromRecords([]dataset.Record{rec(1, 2), rec(1, 2)})
	if !IsKMAnonymous(d, 2, 2) {
		t.Error("2-anonymous dataset rejected")
	}
}

func TestGeneralizationClimbsToRoot(t *testing.T) {
	// Every term unique and k = 5: level-2 nodes only reach support 4, so
	// nothing short of the root fixes the violations, and at the root the
	// dataset is |D| identical records.
	h, _ := hierarchy.New(8, 2)
	d := dataset.FromRecords([]dataset.Record{
		rec(0), rec(1), rec(2), rec(3), rec(4), rec(5), rec(6), rec(7),
	})
	res, err := Anonymize(d, h, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	root := h.Root()
	for _, r := range res.Dataset.Records {
		if !r.Equal(rec(root)) {
			t.Fatalf("record %v, want {root}", r)
		}
	}
	if !IsKMAnonymous(res.Dataset, 5, 2) {
		t.Error("root-level dataset not anonymous")
	}
}

func TestGeneralizationTinyDatasetTerminates(t *testing.T) {
	// |D| < k: even the root cannot reach support k; the algorithm must
	// still terminate (at the root) rather than loop.
	h, _ := hierarchy.New(4, 2)
	d := dataset.FromRecords([]dataset.Record{rec(0), rec(1)})
	res, err := Anonymize(d, h, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset.Len() != 2 {
		t.Fatalf("records = %d", res.Dataset.Len())
	}
	for _, r := range res.Dataset.Records {
		if !r.Equal(rec(h.Root())) {
			t.Errorf("record %v not fully generalized", r)
		}
	}
}

func TestGeneralizationM1(t *testing.T) {
	// m = 1: only singleton supports matter; the frequent pair structure is
	// irrelevant.
	h, _ := hierarchy.New(4, 2)
	d := dataset.FromRecords([]dataset.Record{
		rec(0, 2), rec(0, 2), rec(0, 3),
	})
	res, err := Anonymize(d, h, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !IsKMAnonymous(res.Dataset, 3, 1) {
		t.Error("not 3^1-anonymous")
	}
	// 0 has support 3 and must stay a leaf; 2 and 3 (supports 2, 1) climb.
	if res.Mapping[0] != 0 {
		t.Errorf("term 0 generalized needlessly to %d", res.Mapping[0])
	}
}

// Property: on random datasets the baseline always terminates with a k^m-
// anonymous result, and the mapping sends every leaf to one of its ancestors.
func TestAnonymizeRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	h, _ := hierarchy.New(30, 3)
	for trial := 0; trial < 15; trial++ {
		var records []dataset.Record
		n := 40 + rng.IntN(100)
		for i := 0; i < n; i++ {
			terms := make([]dataset.Term, 1+rng.IntN(4))
			for j := range terms {
				terms[j] = dataset.Term(rng.IntN(30))
			}
			records = append(records, rec(terms...))
		}
		d := dataset.FromRecords(records)
		k := 2 + rng.IntN(3)
		res, err := Anonymize(d, h, k, 2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !IsKMAnonymous(res.Dataset, k, 2) {
			t.Fatalf("trial %d: output not %d^2-anonymous", trial, k)
		}
		if res.Dataset.Len() != d.Len() {
			t.Fatalf("trial %d: record count changed", trial)
		}
		for leaf, g := range res.Mapping {
			if !h.IsAncestor(g, leaf) {
				t.Fatalf("trial %d: %d published as non-ancestor %d", trial, leaf, g)
			}
		}
	}
}
