// Package linttest runs lint analyzers over fixture packages and compares
// the diagnostics against `// want "regexp"` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (which this repo cannot
// depend on). A fixture line may carry several want comments; every
// diagnostic must match a want on its exact file:line and every want must
// be matched by at least one diagnostic.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"disasso/internal/lint"
)

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads each fixture package under testdataDir/src and applies the
// analyzer (ignoring its production package scope), then checks the
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdataDir string, a *lint.Analyzer, fixtures ...string) {
	t.Helper()
	patterns := make([]string, len(fixtures))
	for i, fx := range fixtures {
		patterns[i] = "./" + filepath.ToSlash(filepath.Join("src", fx))
	}
	pkgs, err := lint.Load(testdataDir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", fixtures, err)
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzersUnscoped(pkg, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
		}
		wants := collectWants(t, append(append([]string{}, pkg.GoFiles...), pkg.OtherGoFiles...))

		for _, d := range diags {
			matched := false
			for _, w := range wants {
				if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
					continue
				}
				if w.re.MatchString(d.Message) {
					w.hit = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
			}
		}
		for _, w := range wants {
			if !w.hit {
				t.Errorf("%s: missing diagnostic at %s:%d matching %q",
					a.Name, w.file, w.line, w.re)
			}
		}
	}
}

func collectWants(t *testing.T, files []string) []*want {
	t.Helper()
	var wants []*want
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture %s: %v", path, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &want{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants
}
