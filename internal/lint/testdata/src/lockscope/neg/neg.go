// Fixture: disciplined lock usage produces no findings.
package neg

import (
	"os"
	"sync"
)

type S struct {
	mu sync.Mutex
	m  map[string]int
}

// short critical section: map ops only.
func shortSection(s *S, k string) int {
	s.mu.Lock()
	v := s.m[k]
	s.mu.Unlock()
	return v
}

// blocking work outside the section.
func blockOutside(s *S, k string) {
	data, _ := os.ReadFile("x")
	s.mu.Lock()
	s.m[k] = len(data)
	s.mu.Unlock()
}

// deferred unlock covers every path.
func deferred(s *S, k string, cond bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cond {
		return 0
	}
	return s.m[k]
}

// read locks paired with RUnlock.
type R struct {
	mu sync.RWMutex
	m  map[string]int
}

func read(r *R, k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

// The name-lock pattern used correctly, with an audited justification for
// the intentionally-blocking critical section on the ACQUISITION line.
type nameLock struct {
	mu   sync.Mutex
	refs int
}

type Reg struct {
	mu    sync.Mutex
	locks map[string]*nameLock
}

func (r *Reg) lockName(name string) *nameLock {
	r.mu.Lock()
	l := r.locks[name]
	if l == nil {
		l = &nameLock{}
		r.locks[name] = l
	}
	l.refs++
	r.mu.Unlock()
	l.mu.Lock()
	return l
}

func (r *Reg) unlockName(name string, l *nameLock) {
	l.mu.Unlock()
	r.mu.Lock()
	l.refs--
	if l.refs == 0 {
		delete(r.locks, name)
	}
	r.mu.Unlock()
}

func (r *Reg) justifiedMutation(name string) {
	//lint:ignore lockscope fixture justification: mutators serialize per name by design; readers never take this lock
	l := r.lockName(name)
	defer r.unlockName(name, l)
	_, _ = os.ReadFile("x")
}

// non-blocking work under the name lock needs no justification.
func (r *Reg) quickUnderNameLock(name string, vals []int) int {
	l := r.lockName(name)
	defer r.unlockName(name, l)
	sum := 0
	for _, v := range vals {
		sum += v
	}
	return sum
}
