// Fixture: blocking work under mutexes, leaked locks, and name-lock misuse.
package pos

import (
	"os"
	"sync"
)

type S struct {
	mu sync.Mutex
	m  map[string]int
}

// direct blocking call while the mutex is held.
func direct(s *S) {
	s.mu.Lock()
	_, _ = os.ReadFile("x") // want "may reach blocking I/O while s.mu is held"
	s.mu.Unlock()
}

// the summary propagates through in-package helpers.
func viaHelper(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	load() // want "call to load may reach blocking I/O while s.mu is held"
}

func load() {
	_, _ = os.ReadFile("x")
}

// a deferred Unlock releases at exit, not at its line: the body still runs
// under the lock (viaHelper above), but the lock is not leaked.

// leaked on the early-return path.
func leaked(s *S, cond bool) {
	s.mu.Lock() // want "s.mu is not released on every path"
	if cond {
		return
	}
	s.mu.Unlock()
}

// read locks pair with RUnlock, not Unlock.
type R struct {
	mu sync.RWMutex
}

func readLeaked(r *R) {
	r.mu.RLock() // want "r.mu is not released on every path"
	r.mu.Unlock()
}

// The refcounted name-lock pattern.
type nameLock struct {
	mu   sync.Mutex
	refs int
}

type Reg struct {
	mu    sync.Mutex
	locks map[string]*nameLock
}

func (r *Reg) lockName(name string) *nameLock {
	r.mu.Lock()
	l := r.locks[name]
	if l == nil {
		l = &nameLock{}
		r.locks[name] = l
	}
	l.refs++
	r.mu.Unlock()
	l.mu.Lock() // returned below: the caller owns the held lock
	return l
}

func (r *Reg) unlockName(name string, l *nameLock) {
	l.mu.Unlock()
	r.mu.Lock()
	l.refs--
	if l.refs == 0 {
		delete(r.locks, name)
	}
	r.mu.Unlock()
}

// discarding the result orphans the refcount and wedges the name.
func (r *Reg) discard(name string) {
	r.lockName(name) // want "result of lockName discarded"
}

// blocking work under the per-name lock needs a justification (see neg).
func (r *Reg) blockingUnderNameLock(name string) {
	l := r.lockName(name)
	defer r.unlockName(name, l)
	_, _ = os.ReadFile("x") // want "while the per-name lock from lockName is held"
}

// a name lock never passed to unlockName leaks.
func (r *Reg) nameLeaked(name string) {
	l := r.lockName(name) // want "the lock returned by lockName is not released on every path"
	_ = l
}
