// Package neg holds densedomain negative fixtures: nothing here may be
// flagged.
package neg

import "disasso/internal/lint/testdata/src/dataset"

// Boundary signatures may accept a caller's Term-keyed map.
func Boundary(m map[dataset.Term]int) int {
	return m[7]
}

// Dense state is the approved flat rank-indexed form.
func Dense(n int) []uint32 {
	return make([]uint32, n)
}

// OtherKeys is a map, but not keyed by dataset.Term.
func OtherKeys() map[string]int {
	return make(map[string]int)
}

// Convert is annotated boundary conversion at the package edge.
func Convert(terms []dataset.Term) map[dataset.Term]bool {
	//lint:ignore densedomain boundary conversion for a public API
	out := make(map[dataset.Term]bool, len(terms))
	for _, t := range terms {
		out[t] = true
	}
	return out
}
