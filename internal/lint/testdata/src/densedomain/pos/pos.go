// Package pos holds densedomain positive fixtures: every site below must
// be flagged.
package pos

import "disasso/internal/lint/testdata/src/dataset"

// holder stores per-term state as a hash map instead of a rank slice.
type holder struct {
	supports map[dataset.Term]int // want "struct field stores"
}

// Make builds a fresh Term-keyed map.
func Make(n int) map[dataset.Term]int {
	return make(map[dataset.Term]int, n) // want "building map"
}

// Lit builds one as a literal, nested inside a slice element.
func Lit() []map[dataset.Term]bool {
	return []map[dataset.Term]bool{{1: true}} // want "literal of"
}
