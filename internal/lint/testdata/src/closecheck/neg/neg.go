// Package neg holds closecheck negative fixtures: nothing here may be
// flagged.
package neg

import (
	"bufio"
	"io"
	"os"
)

// Propagated returns the flush error.
func Propagated(w io.Writer) error {
	bw := bufio.NewWriter(w)
	return bw.Flush()
}

// Explicit discards visibly; `_ =` is greppable and allowed.
func Explicit(w io.Writer) {
	bw := bufio.NewWriter(w)
	_ = bw.Flush()
}

// SafetyNet is the house pattern: a deferred close as the error-path
// safety net plus a checked close on the success path.
func SafetyNet(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteString("x"); err != nil {
		return err
	}
	return f.Close()
}

// Reader closes a read-only file; nothing written, nothing lost.
func Reader(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Justified suppresses with a reason.
func Justified(w io.Writer) {
	bw := bufio.NewWriter(w)
	//lint:ignore closecheck fixture demonstrates an intentional drop
	bw.Flush()
}
