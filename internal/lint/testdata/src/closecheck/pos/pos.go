// Package pos holds closecheck positive fixtures: every site below must
// be flagged.
package pos

import (
	"bufio"
	"io"
	"os"
)

// DroppedFlush loses the only failure signal a buffered writer emits.
func DroppedFlush(w io.Writer) {
	bw := bufio.NewWriter(w)
	bw.Flush() // want "error from bw.Flush is dropped"
}

// DeferredClose swallows short writes that surface only at close time —
// the PR 4 -reconstruct bug shape.
func DeferredClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "deferred f.Close discards its error"
	_, err = f.WriteString("x")
	return err
}
