//go:build goodtag

package good

// fancyPathDefault routes through the reference path under the tag build.
const fancyPathDefault = true
