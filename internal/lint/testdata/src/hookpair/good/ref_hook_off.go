//go:build !goodtag

package good

// fancyPathDefault routes through the production path by default.
const fancyPathDefault = false
