//go:build sstag

package sameside

const samePathDefault = true
