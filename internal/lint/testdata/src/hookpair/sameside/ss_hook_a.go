//go:build sstag

package sameside

const samePathDefault = true // want "declared under the same constraint"
