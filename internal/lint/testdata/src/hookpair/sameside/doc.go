// Package sameside declares both halves of a hook under the same
// constraint, so flipping the tag never swaps the implementation.
package sameside
