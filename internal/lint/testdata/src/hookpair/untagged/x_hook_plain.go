package untagged // want "needs a //go:build line"

const plainPathDefault = true
