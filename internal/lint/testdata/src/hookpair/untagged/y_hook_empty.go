//go:build sometag

package untagged // want "declares no .Default hook constant"
