//go:build solotag

package missing

const soloPathDefault = true // want "declared in 1 tag file"
