// Package missing has an orphaned hook: only the tag-on side exists.
package missing
