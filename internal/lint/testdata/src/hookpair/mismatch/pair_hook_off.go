//go:build !mtagB

package mismatch

const pairedPathDefault = false // want "mismatched build tags"
