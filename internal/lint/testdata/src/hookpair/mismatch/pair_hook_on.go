//go:build mtagA

package mismatch

const pairedPathDefault = true
