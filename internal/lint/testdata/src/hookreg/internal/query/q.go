package query // want "supportViaScanDefault is missing"
