// Fixture standing in for the real snapfile package (final path segment
// "snapfile" triggers the format-version pin). The version deliberately
// disagrees with pinnedSnapfileVersion; the casts exercise the alignment
// guard requirement.
package snapfile

import "unsafe"

const formatVersion = 2 // want "formatVersion is 2 but unsafeslab pins version 1"

// badCast reconstructs a pointer with no alignment guard anywhere in the
// function.
func badCast(b []byte) *int32 {
	return (*int32)(unsafe.Pointer(unsafe.SliceData(b))) // want "without an alignment guard"
}

// goodCast guards alignment before both the pointer conversion and the
// slice reconstruction.
func goodCast(b []byte, n int) []int32 {
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%unsafe.Alignof(int32(0)) != 0 {
		return nil
	}
	return unsafe.Slice((*int32)(p), n)
}
