// Fixture standing in for the real qindex package (unsafeslab matches pins
// by import-path suffix, and this package's final segment is "qindex").
// Posting deliberately diverges from the pinned layout; TermStats matches.
package qindex

type Posting struct { // want "layout of Posting diverges from the snapfile format pin"
	Cluster int32
	Bits    uint8
	Extra   uint8
}

type TermStats struct {
	SubrecordOcc int
	TermChunkOcc int
	Clusters     int
}
