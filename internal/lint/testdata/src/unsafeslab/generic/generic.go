// Fixture: instantiation discipline for unsafe-reconstructing generics and
// the FromSlabs retain pin.
package generic

import (
	"unsafe"

	"disasso/internal/lint/testdata/src/unsafeslab/qindex"
)

// unpinned has no entry in the analyzer's layout pins.
type unpinned struct {
	A, B int
}

// castSlice mirrors the real snapfile helper: generic, unsafe, guarded.
func castSlice[T any](b []byte, n int) ([]T, bool) {
	if n == 0 {
		return nil, true
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%unsafe.Alignof(*new(T)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*T)(p), n), true
}

func use(b []byte) {
	_, _ = castSlice[int32](b, 1)          // basic element types are fine
	_, _ = castSlice[qindex.Posting](b, 1) // pinned type: fine
	_, _ = castSlice[unpinned](b, 1)       // want "castSlice instantiated with .*unpinned, whose layout is not pinned"

	//lint:ignore unsafeslab fixture justification: exercised by the suppression test
	_, _ = castSlice[unpinned](b, 2)
}

// FromSlabs mirrors the real index constructor's retain-pin contract.
func FromSlabs(terms []int32, retain any) int {
	_ = retain
	return len(terms)
}

func build(terms []int32, file any) {
	_ = FromSlabs(terms, file)
	_ = FromSlabs(terms, nil) // want "FromSlabs called with a nil retain pin"
}
