// Fixture: the legal snapshot lifecycle — build fresh, stamp, install, swap.
package neg

type index struct {
	terms []int
}

type snap struct {
	version int
	ix      *index
}

type reg struct {
	//lint:immutable fixture: readers hold installed pointers lock-free
	snaps map[string]*snap

	// counters is mutable bookkeeping, deliberately unmarked: immutsnap
	// protects only directive-marked registries.
	counters map[string]int
}

func (r *reg) lookup(name string) (*snap, bool) {
	s, ok := r.snaps[name]
	return s, ok
}

// publish builds and stamps a fresh snapshot; the install is the last write.
func (r *reg) publish(name string) {
	s := &snap{ix: &index{}}
	s.version = 1
	s.ix.terms = append(s.ix.terms, 7)
	r.snaps[name] = s
}

// republish reads the old snapshot but only ever writes the successor.
func (r *reg) republish(name string) {
	old, ok := r.lookup(name)
	if !ok {
		return
	}
	next := &snap{ix: &index{}, version: old.version + 1}
	next.ix.terms = append([]int(nil), old.ix.terms...)
	r.snaps[name] = next
}

// rebind reassigns the VARIABLE, which is not a store through the snapshot.
func (r *reg) rebind(name string) {
	s, _ := r.lookup(name)
	s = &snap{version: 9}
	s.version = 10 // s now holds a fresh value; the installed one is untouched
	_ = s
}

// unmarked mutates the plain bookkeeping map: no registry, no finding.
func (r *reg) unmarked(name string) {
	r.counters[name]++
}

// suppressed carries an audited justification.
func (r *reg) suppressed(name string) {
	s, _ := r.lookup(name)
	//lint:ignore immutsnap fixture justification: exercised by the suppression test
	s.version = 11
}
