// Fixture: stores through snapshot-reachable state after it escapes.
package pos

type index struct {
	terms []int
}

type snap struct {
	version int
	ix      *index
}

type reg struct {
	//lint:immutable fixture: readers hold installed pointers lock-free
	snaps map[string]*snap

	//lint:immutable fixture: the directive only marks maps
	notAMap int // want "not a map"
}

func (r *reg) lookup(name string) (*snap, bool) {
	s, ok := r.snaps[name]
	return s, ok
}

// publish stamps before the install (legal) and mutates after it (finding).
func (r *reg) publish(name string) {
	s := &snap{ix: &index{}}
	s.version = 1 // fresh value: legal
	r.snaps[name] = s
	s.version = 2 // want "store through s mutates snapshot-reachable state"
}

// mutateLooked stores through a value read back out of the registry, via the
// lookup helper (returns-installed summary).
func (r *reg) mutateLooked(name string) {
	s, _ := r.lookup(name)
	s.version = 3     // want "store through s mutates snapshot-reachable state"
	s.ix.terms[0] = 9 // want "store through s mutates snapshot-reachable state"
}

// direct stores through a registry read without a local binding.
func (r *reg) direct(name string) {
	r.snaps[name].version = 4 // want "store through the registry mutates snapshot-reachable state"
}

// helper cannot know whether its argument is installed: escaped at entry.
func helper(s *snap) {
	s.version = 5 // want "store through s mutates snapshot-reachable state"
}

// newSnap is a constructor (in-package, returns the snapshot type): passing
// a payload into it escapes the payload.
func newSnap(ix *index) *snap {
	return &snap{ix: ix}
}

func build(r *reg, name string) {
	ix := &index{}
	ix.terms = append(ix.terms, 1) // fresh payload: legal
	s := newSnap(ix)
	ix.terms[0] = 2 // want "store through ix mutates snapshot-reachable state"
	r.snaps[name] = s
}
