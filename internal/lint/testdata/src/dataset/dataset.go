// Package dataset mirrors the real dataset package's Term rank type so
// densedomain fixtures exercise the same package-name + type-name match
// the analyzer uses against the production tree.
package dataset

// Term is a fixture stand-in for the production term identifier.
type Term uint32
