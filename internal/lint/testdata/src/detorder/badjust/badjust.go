// Package badjust checks that a typo'd //lint: directive is itself
// reported and does not silence the finding it sits above.
package badjust

// Count mistypes the directive name.
func Count(m map[string]int) int {
	n := 0
	//lint:wibble order does not matter // want "unknown //lint: directive"
	for range m { // want "iteration over map"
		n++
	}
	return n
}
