// Package neg holds detorder negative fixtures: nothing here may be
// flagged.
package neg

import (
	"math/rand/v2"
	"sort"
)

// SortedKeys is the canonical collect-then-sort pattern the analyzer must
// recognize.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Justified carries an auditable justification for an order-independent
// reduction.
func Justified(m map[string]int) int {
	n := 0
	//lint:deterministic order-independent count
	for range m {
		n++
	}
	return n
}

// SliceRange iterates a slice, which is ordered and fine.
func SliceRange(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

// SeededRand threads an explicit seed, the approved PRNG pattern.
func SeededRand(seed uint64) int {
	rng := rand.New(rand.NewPCG(seed, 1))
	return rng.IntN(10)
}
