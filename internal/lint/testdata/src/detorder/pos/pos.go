// Package pos holds detorder positive fixtures: every site below must be
// flagged.
package pos

import (
	"math/rand"
	"time"
)

// MapRange ranges a map with no sort afterwards and no justification.
func MapRange(m map[string]int) []string {
	var keys []string
	for k := range m { // want "iteration over map"
		keys = append(keys, k)
	}
	return keys
}

// Wallclock lets the current time influence a returned value.
func Wallclock() int64 {
	return time.Now().UnixNano() // want "time.Now in an output-affecting package"
}

// GlobalRand draws from the shared unseeded source.
func GlobalRand() int {
	return rand.Intn(10) // want "global rand.Intn"
}
