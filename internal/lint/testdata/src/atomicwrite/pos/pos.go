// Fixture: violations of the temp+fsync+rename+dirsync persistence ritual.
package pos

import "os"

// missingSync renames a temp file that was never fsynced, and never syncs
// the directory either.
func missingSync(dir string) error {
	f, err := os.CreateTemp(dir, "*.tmp")
	if err != nil {
		return err
	}
	if _, err := f.WriteString("x"); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), dir+"/final") // want "not preceded by Sync" // want "not followed by a directory sync"
}

// notTemp renames something that never came from CreateTemp.
func notTemp(dir string) error {
	return os.Rename(dir+"/a", dir+"/b") // want "does not trace to an os.CreateTemp file"
}

// direct writes skip the ritual entirely.
func direct(dir string) error {
	return os.WriteFile(dir+"/x", []byte("torn"), 0o644) // want "direct file create/write"
}

func directCreate(dir string) error {
	f, err := os.Create(dir + "/y") // want "direct file create/write"
	if err != nil {
		return err
	}
	return f.Close()
}

// syncedButNoDirSync follows the file part of the ritual but forgets the
// directory entry.
func syncedButNoDirSync(dir string) error {
	f, err := os.CreateTemp(dir, "*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, dir+"/final") // want "not followed by a directory sync"
}
