// Fixture: the full persistence ritual, plus audited exceptions.
package neg

import "os"

// good is the canonical shape: temp in the target dir, write, fsync, close,
// rename, directory sync — with the error plumbing the real persist uses.
func good(dir string) error {
	f, err := os.CreateTemp(dir, "*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.WriteString("payload")
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, dir+"/final")
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// inlineName renames via f.Name() directly instead of a saved variable.
func inlineName(dir string) error {
	f, err := os.CreateTemp(dir, "*.tmp")
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(f.Name(), dir+"/final"); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// suppressed records an audited exception for a non-servable scratch file.
func suppressed(dir string) error {
	//lint:ignore atomicwrite fixture justification: scratch file, never served, swept on startup
	return os.WriteFile(dir+"/scratch", nil, 0o600)
}
