package lint

import "go/ast"

// The forward dataflow engine: a worklist fixpoint over a cfg with
// union-join ("may") semantics. Facts are opaque comparable keys — escaped
// objects for immutsnap, held locks for lockscope, synced files for
// atomicwrite — and a fact holds at a point if SOME path to that point
// generates it without a later kill. Union join is the right polarity for
// every check in this suite: "a store may happen after the value escaped",
// "a blocking call may run while the lock is held". (A must-analysis would
// need path pruning the cfg deliberately does not do — see cfg.go.)

// facts is a set of analyzer-defined fact keys.
type facts map[any]bool

func (f facts) clone() facts {
	out := make(facts, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// addAll unions other into f and reports whether f grew.
func (f facts) addAll(other facts) bool {
	grew := false
	for k := range other {
		if !f[k] {
			f[k] = true
			grew = true
		}
	}
	return grew
}

// forwardMay runs the fixpoint and returns each block's ENTRY facts. step is
// the per-node transfer function: it mutates the fact set in place (adding
// generated facts, deleting killed ones) and must be deterministic in its
// input facts. entry seeds the function's entry block (e.g. parameters that
// are tainted at birth).
func forwardMay(c *cfg, entry facts, step func(n ast.Node, f facts)) map[*cfgBlock]facts {
	in := make(map[*cfgBlock]facts, len(c.blocks))
	for _, b := range c.blocks {
		in[b] = facts{}
	}
	in[c.entry] = entry.clone()

	// Worklist seeded with every block (detached/unreachable blocks simply
	// keep empty facts). Union join is monotone over finite fact sets, so
	// this terminates.
	work := make([]*cfgBlock, len(c.blocks))
	copy(work, c.blocks)
	queued := make(map[*cfgBlock]bool, len(c.blocks))
	for _, b := range work {
		queued[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		out := in[b].clone()
		for _, n := range b.nodes {
			step(n, out)
		}
		for _, succ := range b.succs {
			if in[succ].addAll(out) && !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// walkWithFacts replays the transfer over every block from its fixpoint entry
// facts, invoking visit on each node with the facts holding JUST BEFORE the
// node executes. This is the reporting pass: analyzers check a node against
// the pre-state (e.g. "is the receiver escaped here?") and the engine then
// applies the node's own effects before moving on.
func walkWithFacts(c *cfg, in map[*cfgBlock]facts, step func(n ast.Node, f facts), visit func(n ast.Node, before facts)) {
	for _, b := range c.blocks {
		f := in[b].clone()
		for _, n := range b.nodes {
			visit(n, f)
			step(n, f)
		}
	}
}

// reachableFrom returns the set of nodes reachable from (and including) the
// node at index i of block b: the rest of b plus every node of every
// transitively reachable successor. atomicwrite uses it for "a directory
// sync is reachable after the rename".
func reachableFrom(c *cfg, b *cfgBlock, i int, visit func(n ast.Node) bool) bool {
	for _, n := range b.nodes[i:] {
		if visit(n) {
			return true
		}
	}
	seen := map[*cfgBlock]bool{}
	var stack []*cfgBlock
	stack = append(stack, b.succs...)
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		for _, n := range blk.nodes {
			if visit(n) {
				return true
			}
		}
		stack = append(stack, blk.succs...)
	}
	return false
}

// forEachFuncBody yields every function body in the file set of the pass —
// declarations and literals — each as its own dataflow unit. Function
// literals are separate units on purpose: their body executes at some other
// time (goroutine, defer, callback), so facts must not leak across the
// boundary. inspectShallow is the matching traversal that stays inside one
// unit.
func forEachFuncBody(pass *Pass, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					fn(x, x.Body)
				}
				return true // descend: literals inside get their own visit
			case *ast.FuncLit:
				fn(nil, x.Body)
				return true
			}
			return true
		})
	}
}

// inspectShallow walks n without descending into nested function literals:
// the per-function traversal matching forEachFuncBody's unit boundaries.
// When n itself is a *ast.FuncLit (a unit's own body wrapper is never passed
// here), it is skipped entirely.
func inspectShallow(n ast.Node, visit func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return visit(m)
	})
}
