package lint_test

import (
	"path/filepath"
	"testing"

	"disasso/internal/lint"
)

// BenchmarkLintModule measures a full disassolint run — go list, type
// checking, and all eight analyzers over every package in the module — which
// is the wall time the CI lint job pays on each push. The dataflow analyzers
// (CFGs, fixpoints, call-graph summaries) dominate the analysis share, so a
// regression here usually means a summary or fixpoint stopped converging
// quickly.
func BenchmarkLintModule(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pkgs, err := lint.Load(root, "./...")
		if err != nil {
			b.Fatal(err)
		}
		for _, pkg := range pkgs {
			diags, err := lint.RunAnalyzers(pkg, lint.All())
			if err != nil {
				b.Fatal(err)
			}
			if len(diags) != 0 {
				b.Fatalf("module should lint clean, got: %v", diags)
			}
		}
	}
}
