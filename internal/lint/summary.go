package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Bottom-up call-graph summaries. The loader type-checks dependencies from
// export data only (no syntax), so summaries are computed transitively for
// the functions of the analyzed package and looked up in a fixed
// classification table at the package boundary. That split matches how the
// invariants work in practice: the interesting facts about external calls
// ("os.Rename touches the filesystem", "core.Anonymize is minutes of CPU")
// are stable API contracts, while the interesting facts about in-package
// helpers ("persist reaches a Sync") change with every edit and must be
// derived, not listed.

// funcSummaries maps the package's own functions to a boolean property,
// computed to fixpoint over the intra-package call graph.
type funcSummaries struct {
	pass *Pass
	// property holds the fixpoint result for package-local functions.
	property map[*types.Func]bool
	// external classifies out-of-package callees.
	external func(fn *types.Func) bool
	bodies   map[*types.Func]*ast.FuncDecl
}

// summarize computes, for every function declared in the package, whether it
// (transitively) calls a function for which external returns true. Calls
// through interfaces and function values are unresolvable and count as
// false — the classification table must name concrete entry points.
func summarize(pass *Pass, external func(fn *types.Func) bool) *funcSummaries {
	s := &funcSummaries{
		pass:     pass,
		property: make(map[*types.Func]bool),
		external: external,
		bodies:   make(map[*types.Func]*ast.FuncDecl),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				s.bodies[fn] = fd
			}
		}
	}
	// Fixpoint: the property only flips false->true, so iterating until no
	// change terminates in at most |functions| rounds.
	for changed := true; changed; {
		changed = false
		for fn, fd := range s.bodies {
			if s.property[fn] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if s.callHasProperty(call) {
					found = true
					return false
				}
				return true
			})
			if found {
				s.property[fn] = true
				changed = true
			}
		}
	}
	return s
}

// callHasProperty reports whether one call expression resolves to a callee
// with the property — a package-local function whose summary is true, or an
// external function the classification table marks.
func (s *funcSummaries) callHasProperty(call *ast.CallExpr) bool {
	fn := calleeFunc(s.pass, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() == s.pass.Pkg {
		return s.property[fn]
	}
	return s.external(fn)
}

// calleeFunc resolves a call expression to the *types.Func it statically
// invokes: a plain function, a method (value or pointer receiver), or an
// instantiated generic. Calls through function-typed variables, builtins and
// conversions resolve to nil.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		switch x := ast.Unparen(fun.X).(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		}
	case *ast.IndexListExpr:
		switch x := ast.Unparen(fun.X).(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	if fn != nil {
		return fn.Origin()
	}
	return nil
}

// pathHasSuffix reports whether an import path is exactly suffix or ends
// with "/"+suffix — the same matching Analyzer.Scope uses, so fixtures under
// testdata can stand in for production packages.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// blockingIO is the classification table of external calls that reach
// blocking work: filesystem and network operations, plus this module's
// CPU-expensive pipeline entry points. Lock-free serving is the product's
// core latency promise; lockscope uses this table to keep such work out of
// critical sections. Interface calls (http.ResponseWriter writes, io.Writer
// chains) are unresolvable statically and deliberately unclassified.
func blockingIO(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	// Methods: any method on *os.File does filesystem I/O (Sync above all).
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			switch {
			case obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File":
				return true
			case pathHasSuffix(pkg.Path(), "internal/core") && obj.Name() == "RepubState" && fn.Name() == "Apply":
				return true // incremental re-anonymization: O(churn) CPU
			case pathHasSuffix(pkg.Path(), "internal/snapfile") && obj.Name() == "Contents" && fn.Name() == "Write":
				return true // serializes a whole publication
			}
		}
		if pkg.Path() == "net/http" || pkg.Path() == "net" {
			return true
		}
		return false
	}
	switch pkg.Path() {
	case "os":
		switch fn.Name() {
		case "Create", "CreateTemp", "Open", "OpenFile", "Rename", "Remove",
			"RemoveAll", "ReadDir", "ReadFile", "WriteFile", "Mkdir",
			"MkdirAll", "Stat", "Lstat", "Truncate", "Link", "Symlink":
			return true
		}
		return false
	case "net/http", "net", "os/exec":
		return true
	case "io":
		switch fn.Name() {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull":
			return true
		}
		return false
	}
	switch {
	case pathHasSuffix(pkg.Path(), "internal/core"):
		return strings.HasPrefix(fn.Name(), "Anonymize")
	case pathHasSuffix(pkg.Path(), "internal/shard"):
		return fn.Name() == "Anonymize"
	case pathHasSuffix(pkg.Path(), "internal/snapfile"):
		return fn.Name() == "Open"
	case pathHasSuffix(pkg.Path(), "internal/dataset"):
		return fn.Name() == "ReadIDs"
	}
	return false
}
