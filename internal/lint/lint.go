// Package lint is a self-contained static-analysis framework plus the
// project-specific analyzers that enforce this repository's invariants:
// deterministic published output, the dense rank-space domain in hot-path
// packages, propagated writer Close/Flush errors, and paired build-tag
// reference hooks.
//
// The framework mirrors a small subset of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Report) but is built only on the standard library:
// packages are loaded with `go list -export -deps -json` and type-checked
// with go/types against compiler export data, so the suite needs no
// third-party modules. cmd/disassolint is the multichecker front end.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run is invoked once per loaded
// package with a Pass describing that package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// suppression comments. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Scope restricts the analyzer to packages whose import path ends with
	// one of these suffixes. Empty means every package. The scope is applied
	// by Run (and therefore by cmd/disassolint); fixture tests invoke
	// analyzers directly and bypass it.
	Scope []string

	// Run performs the check and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// AppliesTo reports whether the analyzer's scope admits the import path.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, suf := range a.Scope {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

// A Diagnostic is one finding, positioned in the loaded file set.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File // parsed GoFiles, with comments

	Path         string // import path
	Dir          string // package directory on disk
	GoFiles      []string
	OtherGoFiles []string // .go files excluded by build constraints (hook tag-on files)

	Pkg  *types.Package
	Info *types.Info

	suppress *suppressionIndex
	sink     *[]Diagnostic
}

// Reportf records a finding at pos unless a suppression comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppress.covers(p.Analyzer.Name, position) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressionIndex records, per file and line, which analyzers are silenced
// by //lint: directives. A directive on line N covers findings on line N
// (trailing comment) and on line N+1 (comment above the statement).
//
// Three directive forms are honored:
//
//	//lint:deterministic <justification>   — silences detorder only; the
//	    justification is mandatory (the whole point is an auditable reason).
//	//lint:ignore <analyzer> <justification> — silences the named analyzer.
//	//lint:immutable <justification> — not a suppression: marks a registry
//	    map field whose installed values immutsnap must protect. The
//	    justification states the reader-side contract being relied on.
type suppressionIndex struct {
	// byLine maps file name -> line -> analyzer names silenced there.
	// The wildcard name "*" is not supported on purpose: every suppression
	// names the check it mutes.
	byLine map[string]map[int][]string
}

func newSuppressionIndex() *suppressionIndex {
	return &suppressionIndex{byLine: make(map[string]map[int][]string)}
}

func (s *suppressionIndex) add(file string, line int, analyzer string) {
	m := s.byLine[file]
	if m == nil {
		m = make(map[int][]string)
		s.byLine[file] = m
	}
	m[line] = append(m[line], analyzer)
}

func (s *suppressionIndex) covers(analyzer string, pos token.Position) bool {
	m := s.byLine[pos.Filename]
	if m == nil {
		return false
	}
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range m[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// directiveDiag is a malformed-directive finding produced while indexing.
type directiveDiag struct {
	pos token.Pos
	msg string
}

// indexSuppressions scans a file's comments for //lint: directives. It
// returns the indexed suppressions (added into idx) and diagnostics for
// malformed directives (missing justification, unknown form).
func indexSuppressions(fset *token.FileSet, file *ast.File, idx *suppressionIndex) []directiveDiag {
	var diags []directiveDiag
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(text)
			if len(fields) == 0 {
				diags = append(diags, directiveDiag{c.Pos(), "empty //lint: directive"})
				continue
			}
			switch fields[0] {
			case "deterministic":
				if len(fields) < 2 {
					diags = append(diags, directiveDiag{c.Pos(),
						"//lint:deterministic requires a justification (why is this iteration order safe?)"})
					continue
				}
				idx.add(pos.Filename, pos.Line, "detorder")
			case "ignore":
				if len(fields) < 3 {
					diags = append(diags, directiveDiag{c.Pos(),
						"//lint:ignore requires an analyzer name and a justification"})
					continue
				}
				idx.add(pos.Filename, pos.Line, fields[1])
			case "immutable":
				// A marker, not a suppression: immutsnap reads it off the
				// syntax directly. Indexed here only so the justification
				// requirement is enforced uniformly.
				if len(fields) < 2 {
					diags = append(diags, directiveDiag{c.Pos(),
						"//lint:immutable requires a justification (what reader contract depends on these values never changing?)"})
				}
			default:
				diags = append(diags, directiveDiag{c.Pos(),
					fmt.Sprintf("unknown //lint: directive %q (want deterministic, ignore, or immutable)", fields[0])})
			}
		}
	}
	return diags
}

// RunAnalyzers executes every analyzer whose scope admits the package and
// returns the collected diagnostics sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runAnalyzers(pkg, analyzers, true)
}

// RunAnalyzersUnscoped executes the analyzers regardless of their package
// scope. Fixture tests (linttest) use it: fixtures live under testdata, so
// their import paths never match the production scopes.
func RunAnalyzersUnscoped(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runAnalyzers(pkg, analyzers, false)
}

func runAnalyzers(pkg *Package, analyzers []*Analyzer, applyScope bool) ([]Diagnostic, error) {
	idx := newSuppressionIndex()
	var directiveDiags []directiveDiag
	for _, f := range pkg.Syntax {
		directiveDiags = append(directiveDiags, indexSuppressions(pkg.Fset, f, idx)...)
	}

	var out []Diagnostic
	for _, d := range directiveDiags {
		out = append(out, Diagnostic{
			Pos:      pkg.Fset.Position(d.pos),
			Analyzer: "lintdirective",
			Message:  d.msg,
		})
	}

	for _, a := range analyzers {
		if applyScope && !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:     a,
			Fset:         pkg.Fset,
			Files:        pkg.Syntax,
			Path:         pkg.Path,
			Dir:          pkg.Dir,
			GoFiles:      pkg.GoFiles,
			OtherGoFiles: pkg.OtherGoFiles,
			Pkg:          pkg.Types,
			Info:         pkg.Info,
			suppress:     idx,
			sink:         &out,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// All returns the full disassolint suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DetOrder,
		DenseDomain,
		CloseCheck,
		HookPair,
		ImmutSnap,
		LockScope,
		AtomicWrite,
		UnsafeSlab,
	}
}
