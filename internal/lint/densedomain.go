package lint

import (
	"go/ast"
	"go/types"
)

// DenseDomain guards the PR 2 dense-domain refactor: the hot-path packages
// run entirely in rank space (dataset.DenseDomain maps Term -> contiguous
// rank once per pipeline; every per-term table is a flat slice indexed by
// rank). Building new Term-keyed map state inside those packages reintroduces
// hashing, pointer-chasing, and nondeterministic iteration on the hot path.
//
// Flagged: composite literals, make() calls, and struct field declarations
// whose type is (or contains) a map keyed by dataset.Term, in the scoped
// packages. Accepting or returning a caller's map[Term] in a signature is
// boundary conversion and allowed; creating or storing one is not.
var DenseDomain = &Analyzer{
	Name: "densedomain",
	Doc: "flags construction or storage of map[dataset.Term] state in " +
		"rank-space hot-path packages",
	Scope: []string{
		"internal/core",
		"internal/qindex",
		"internal/query",
	},
	Run: runDenseDomain,
}

func runDenseDomain(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				// make(map[Term]V, ...)
				if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" {
					if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(x.Args) > 0 {
						if mt := termMapIn(pass.Info.TypeOf(x.Args[0])); mt != nil {
							pass.Reportf(x.Pos(),
								"building %s in a rank-space package: use a flat slice indexed by DenseDomain rank (//lint:ignore densedomain <reason> if this is boundary conversion)",
								typeString(pass, mt))
						}
					}
				}
			case *ast.CompositeLit:
				if mt := termMapIn(pass.Info.TypeOf(x)); mt != nil {
					pass.Reportf(x.Pos(),
						"literal of %s in a rank-space package: use a flat slice indexed by DenseDomain rank",
						typeString(pass, mt))
					return false // one report per literal tree
				}
			case *ast.StructType:
				for _, field := range x.Fields.List {
					if mt := termMapIn(pass.Info.TypeOf(field.Type)); mt != nil {
						pass.Reportf(field.Pos(),
							"struct field stores %s in a rank-space package: store a flat rank-indexed slice instead",
							typeString(pass, mt))
					}
				}
			}
			return true
		})
	}
	return nil
}

// termMapIn returns the first map-keyed-by-Term type found inside t
// (directly, or as a map value / slice element / pointer target), or nil.
func termMapIn(t types.Type) *types.Map {
	seen := make(map[types.Type]bool)
	var walk func(types.Type) *types.Map
	walk = func(t types.Type) *types.Map {
		if t == nil || seen[t] {
			return nil
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Map:
			if isTermType(u.Key()) {
				return u
			}
			if m := walk(u.Elem()); m != nil {
				return m
			}
		case *types.Slice:
			return walk(u.Elem())
		case *types.Array:
			return walk(u.Elem())
		case *types.Pointer:
			return walk(u.Elem())
		}
		return nil
	}
	return walk(t)
}

// isTermType reports whether t is the dataset.Term rank type (matched by
// package name + type name so lint fixtures with a local dataset package
// behave like the real one).
func isTermType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Term" && obj.Pkg() != nil && obj.Pkg().Name() == "dataset"
}
