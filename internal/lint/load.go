package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// A Package is one loaded, parsed, and type-checked package.
type Package struct {
	Fset  *token.FileSet
	Path  string
	Dir   string
	Types *types.Package
	Info  *types.Info

	Syntax       []*ast.File
	GoFiles      []string // absolute paths of the files in Syntax
	OtherGoFiles []string // absolute paths of constraint-excluded .go files
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir            string
	ImportPath     string
	Name           string
	GoFiles        []string
	IgnoredGoFiles []string
	Export         string
	DepOnly        bool
	Standard       bool
	Error          *struct {
		Err string
	}
}

// Load resolves patterns with the go command and returns the matched
// packages (dependencies are type-checked from compiler export data, not
// returned). Patterns are anything `go list` accepts: ./..., explicit
// directories, or import paths. dir is the working directory for the go
// invocation ("" means the current directory).
//
// Only GoFiles are analyzed — _test.go files and constraint-excluded files
// are not type-checked (excluded files are still surfaced to analyzers via
// Package.OtherGoFiles so file-level checks like hookpair can see both
// sides of a build-tag pair).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("lint.Load: no patterns")
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(byPath))

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportLookup resolves import paths to their compiler export data, for the
// go/importer-driven type-checking of dependencies. Both failure modes are
// real: a path go list never mentioned (a loader bug or a stale module
// graph) and a listed package without export data (its compile failed, so
// the compiler never wrote any).
func exportLookup(byPath map[string]*listedPackage) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		lp := byPath[path]
		if lp == nil {
			return nil, fmt.Errorf("no listed package for import path %q", path)
		}
		if lp.Export == "" {
			return nil, fmt.Errorf("no export data for %q (compile error?)", path)
		}
		return os.Open(lp.Export)
	}
}

func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Name,GoFiles,IgnoredGoFiles,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	return decodeGoList(out)
}

// decodeGoList parses the concatenated-JSON stream `go list -json` emits.
// Factored out of goList so the malformed-output paths are testable without
// invoking the go command.
func decodeGoList(out []byte) ([]*listedPackage, error) {
	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	goFiles := make([]string, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
		goFiles = append(goFiles, path)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}

	other := make([]string, 0, len(lp.IgnoredGoFiles))
	for _, name := range lp.IgnoredGoFiles {
		other = append(other, filepath.Join(lp.Dir, name))
	}
	return &Package{
		Fset:         fset,
		Path:         lp.ImportPath,
		Dir:          lp.Dir,
		Types:        tpkg,
		Info:         info,
		Syntax:       files,
		GoFiles:      goFiles,
		OtherGoFiles: other,
	}, nil
}
