package lint

import (
	"go/ast"
	"go/token"
)

// This file is the flow layer of the framework: a per-function control-flow
// graph built from syntax alone. The PR 6 analyzers were AST-local — they
// could say "this call exists" but not "this call happens after that lock is
// taken and before it is released". The CFG (plus the forward dataflow engine
// in dataflow.go and the call-graph summaries in summary.go) is what lets
// immutsnap, lockscope and atomicwrite reason about order: escape-then-store,
// lock-then-block, sync-then-rename.
//
// The graph is deliberately simple: basic blocks hold statements (and the
// condition/tag expressions of the control statements that end them) in
// execution order, edges are the possible successors. Infeasible paths are
// not pruned (the graph has no notion of branch conditions being mutually
// exclusive), so analyses built on it must be phrased as may-analyses —
// "some path reaches" — rather than path-sensitive must-claims.

// cfgBlock is one basic block: nodes in execution order plus successor edges.
// Nodes are statements, except that branching statements contribute their
// Init/Cond/Tag parts as individual nodes so transfer functions see the calls
// inside them.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// cfg is one function body's control-flow graph. exit is a synthetic empty
// block every return (and the fall-off end) leads to; defers collects the
// function's defer statements in source order, since their calls execute at
// exit rather than at their syntactic position.
type cfg struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
	defers []*ast.DeferStmt
}

// loopTarget is one entry of the builder's break/continue resolution stack.
type loopTarget struct {
	label    string // enclosing label, "" if none
	brk      *cfgBlock
	cont     *cfgBlock // nil for switch/select (break-only targets)
	isSwitch bool
}

type cfgBuilder struct {
	c     *cfg
	cur   *cfgBlock
	loops []loopTarget
	// labels maps label names to their blocks (created eagerly on first
	// mention, so forward gotos resolve).
	labels map[string]*cfgBlock
	// pendingLabel is set by a LabeledStmt so the following loop/switch
	// registers itself under that label for labeled break/continue.
	pendingLabel string
	// fallTarget is the next case clause of the switch clause currently being
	// built — the destination of a fallthrough statement. Saved and restored
	// around nested clauses by switchLike.
	fallTarget *cfgBlock
}

// buildCFG constructs the control-flow graph of one function body. It never
// fails: unhandled or malformed control flow degrades to conservative
// straight-line edges, which at worst widens a may-analysis.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{
		c:      &cfg{},
		labels: make(map[string]*cfgBlock),
	}
	b.c.exit = b.newBlock() // index 0; kept out of normal fallthrough order
	b.c.entry = b.newBlock()
	b.cur = b.c.entry
	b.stmt(body)
	b.edge(b.cur, b.c.exit) // fall off the end
	return b.c
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// append adds a node to the current block.
func (b *cfgBuilder) append(n ast.Node) {
	if n == nil {
		return
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

// startDetached begins a new, unreachable block — the state after return,
// break, continue, goto. Statements syntactically following them land there;
// with no incoming edges the block's entry facts stay empty, so dead code
// never produces findings.
func (b *cfgBuilder) startDetached() {
	b.cur = b.newBlock()
}

// takeLabel consumes the pending label set by an enclosing LabeledStmt.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range st.List {
			b.stmt(inner)
		}
	case *ast.IfStmt:
		b.stmt(st.Init)
		b.append(st.Cond)
		condBlock := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(condBlock, then)
		b.cur = then
		b.stmt(st.Body)
		b.edge(b.cur, after)
		if st.Else != nil {
			elseB := b.newBlock()
			b.edge(condBlock, elseB)
			b.cur = elseB
			b.stmt(st.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(condBlock, after)
		}
		b.cur = after
	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(st.Init)
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.append(st.Cond)
		body := b.newBlock()
		after := b.newBlock()
		post := b.newBlock()
		b.edge(head, body)
		if st.Cond != nil {
			b.edge(head, after)
		}
		b.loops = append(b.loops, loopTarget{label: label, brk: after, cont: post})
		b.cur = body
		b.stmt(st.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, post)
		b.cur = post
		b.stmt(st.Post)
		b.edge(b.cur, head)
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		b.append(st.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after) // the range may be empty
		b.loops = append(b.loops, loopTarget{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(st.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, head)
		b.cur = after
	case *ast.SwitchStmt:
		b.switchLike(st.Init, st.Tag, st.Body)
	case *ast.TypeSwitchStmt:
		b.switchLike(st.Init, nil, st.Body)
		// The Assign ("x := y.(type)") was not emitted by switchLike; its
		// effects are per-clause bindings no current analyzer tracks.
	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newBlock()
		head := b.cur
		b.loops = append(b.loops, loopTarget{label: label, brk: after, isSwitch: true})
		for _, clause := range st.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			b.stmt(cc.Comm)
			for _, inner := range cc.Body {
				b.stmt(inner)
			}
			b.edge(b.cur, after)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = after
	case *ast.ReturnStmt:
		b.append(st)
		b.edge(b.cur, b.c.exit)
		b.startDetached()
	case *ast.BranchStmt:
		b.branch(st)
	case *ast.LabeledStmt:
		name := st.Label.Name
		lb := b.labels[name]
		if lb == nil {
			lb = b.newBlock()
			b.labels[name] = lb
		}
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = name
		b.stmt(st.Stmt)
		b.pendingLabel = ""
	case *ast.DeferStmt:
		b.c.defers = append(b.c.defers, st)
		b.append(st) // visible in-flow too, so analyzers see where it was set up
	default:
		// ExprStmt, AssignStmt, IncDecStmt, DeclStmt, SendStmt, GoStmt,
		// EmptyStmt: plain nodes of the current block.
		b.append(s)
	}
}

// switchLike builds expression and type switches: every clause branches off
// the head, falls to the join, and fallthrough chains to the next clause.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.stmt(init)
	b.append(tag)
	head := b.cur
	after := b.newBlock()
	b.loops = append(b.loops, loopTarget{label: label, brk: after, isSwitch: true})

	var clauses []*ast.CaseClause
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after) // no case may match
	}
	savedFall := b.fallTarget
	for i, cc := range clauses {
		b.cur = blocks[i]
		if i+1 < len(blocks) {
			b.fallTarget = blocks[i+1]
		} else {
			b.fallTarget = after
		}
		for _, inner := range cc.Body {
			b.stmt(inner)
		}
		// An explicit fallthrough (handled in branch below) already wired the
		// edge to the next clause and detached; a normal end falls to after.
		b.edge(b.cur, after)
	}
	b.fallTarget = savedFall
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) branch(st *ast.BranchStmt) {
	label := ""
	if st.Label != nil {
		label = st.Label.Name
	}
	switch st.Tok {
	case token.BREAK:
		for i := len(b.loops) - 1; i >= 0; i-- {
			t := b.loops[i]
			if label == "" || t.label == label {
				b.edge(b.cur, t.brk)
				break
			}
		}
		b.startDetached()
	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			t := b.loops[i]
			if t.isSwitch {
				continue // continue skips switch/select levels
			}
			if label == "" || t.label == label {
				b.edge(b.cur, t.cont)
				break
			}
		}
		b.startDetached()
	case token.GOTO:
		lb := b.labels[label]
		if lb == nil {
			lb = b.newBlock()
			b.labels[label] = lb
		}
		b.edge(b.cur, lb)
		b.startDetached()
	case token.FALLTHROUGH:
		// Wire to the lexically next clause of the innermost switch, tracked
		// by switchLike while the clause body is being built.
		if b.fallTarget != nil {
			b.edge(b.cur, b.fallTarget)
		}
		b.startDetached()
	}
}
