package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockScope enforces the serving layer's latency contract around critical
// sections. The server's locking design is two-tier: s.mu is a short-hold
// registry mutex (map read, pointer swap, refcount bump — microseconds), and
// per-name locks serialize mutations without ever blocking readers. Three
// rules keep that design honest:
//
//  1. While a sync.Mutex/RWMutex is held, no call may (transitively) reach
//     blocking work — file I/O, Sync, anonymization, network. The call-graph
//     summaries (summary.go) propagate "reaches blocking I/O" bottom-up
//     through package-local helpers; external callees come from the fixed
//     classification table.
//  2. A lock acquired on some path must be released on every path out of the
//     function (deferred unlocks count), unless the lock's owner is handed
//     off by returning it — the lockName pattern returns the acquired
//     per-name lock to its caller, which is the one legal escape.
//  3. The refcounted name-lock pattern has its own discipline: the value
//     returned by lockName is a held lock that only unlockName releases.
//     Discarding the result orphans the refcount and wedges the name forever.
//
// Defer statements are handled at exit only: a deferred Unlock does not
// release the lock at its syntactic position (the body below it still runs
// under the lock, and blocking calls there are still findings), but it does
// satisfy rule 2.
//
// Suppression granularity: rule 1 findings honor a //lint:ignore lockscope
// directive on the ACQUISITION line as well as on the call line. A critical
// section that intentionally holds a lock across blocking work (the per-name
// mutation locks are designed for exactly that) carries one justification
// where the lock is taken, instead of one per blocking call inside it.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc: "flags blocking I/O while a mutex is held, locks not released on " +
		"every path, and misuse of the refcounted name-lock pattern",
	Scope: []string{
		"internal/server",
	},
	Run: runLockScope,
}

// lockFact identifies one held lock: the root object of the receiver chain
// ("s" in s.mu.Lock, "l" in l.mu.Lock), the printed selector path, and
// whether it is a read lock (RLock pairs with RUnlock, Lock with Unlock).
type lockFact struct {
	root types.Object
	path string
	read bool
}

// nameLockFact marks a variable holding the result of lockName: a per-name
// lock that is held until passed to unlockName.
type nameLockFact struct {
	obj types.Object
}

func runLockScope(pass *Pass) error {
	sums := summarize(pass, blockingIO)
	forEachFuncBody(pass, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		checkLockScope(pass, sums, decl, body)
	})
	return nil
}

func checkLockScope(pass *Pass, sums *funcSummaries, decl *ast.FuncDecl, body *ast.BlockStmt) {
	g := buildCFG(body)

	// acquiredAt remembers one acquisition site per fact for reporting
	// unpaired locks; returnedRoots collects root objects of return results
	// (the handoff exemption).
	acquiredAt := make(map[any]token.Pos)
	returnedRoots := make(map[types.Object]bool)

	step := func(n ast.Node, f facts) {
		if _, ok := n.(*ast.DeferStmt); ok {
			return // deferred effects apply at exit, not here
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, res := range ret.Results {
				if obj := rootIdentObj(pass, res); obj != nil {
					returnedRoots[obj] = true
				}
			}
		}
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lf, acquire, ok := mutexOp(pass, call); ok {
				if acquire {
					f[lf] = true
					if _, seen := acquiredAt[lf]; !seen {
						acquiredAt[lf] = call.Pos()
					}
				} else {
					delete(f, lf)
				}
				return true
			}
			if fn := calleeFunc(pass, call); fn != nil && fn.Name() == "unlockName" {
				// unlockName(name, l) releases the pseudo-lock carried by l.
				for _, arg := range call.Args {
					if obj := rootIdentObj(pass, arg); obj != nil {
						delete(f, nameLockFact{obj})
					}
				}
			}
			return true
		})
		// lockName's result is a held lock bound to the assigned variable.
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
				if fn := calleeFunc(pass, call); fn != nil && fn.Name() == "lockName" {
					for _, lhs := range as.Lhs {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
							if obj := pass.Info.ObjectOf(id); obj != nil {
								nf := nameLockFact{obj}
								f[nf] = true
								if _, seen := acquiredAt[nf]; !seen {
									acquiredAt[nf] = call.Pos()
								}
							}
						}
					}
				}
			}
		}
	}

	in := forwardMay(g, facts{}, step)

	// Reporting pass: blocking calls under a held lock, and discarded
	// lockName results.
	for _, b := range g.blocks {
		f := in[b].clone()
		for _, n := range b.nodes {
			visitLockNode(pass, sums, n, f, acquiredAt)
			step(n, f)
		}
	}

	// Rule 2: locks still held at exit. Deferred releases and returned locks
	// are fine; anything else leaked on at least one path.
	released := deferReleased(pass, g)
	for k := range in[g.exit] {
		if released[k] {
			continue
		}
		var root types.Object
		var what string
		switch lf := k.(type) {
		case lockFact:
			root, what = lf.root, lf.path
		case nameLockFact:
			root, what = lf.obj, "the lock returned by lockName"
		default:
			continue
		}
		if returnedRoots[root] {
			continue // handoff: the caller now owns the held lock
		}
		pos := acquiredAt[k]
		if !pos.IsValid() {
			pos = body.Pos()
		}
		pass.Reportf(pos,
			"%s is not released on every path out of the function: add the missing Unlock (or defer it) so no return leaks the lock", what)
	}
	_ = decl
}

// visitLockNode reports blocking calls made while any lock fact is held, and
// lockName results that are discarded.
func visitLockNode(pass *Pass, sums *funcSummaries, n ast.Node, before facts, acquiredAt map[any]token.Pos) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return // deferred calls run at exit; lock state there is not this state
	}
	if es, ok := n.(*ast.ExprStmt); ok {
		if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
			if fn := calleeFunc(pass, call); fn != nil && fn.Name() == "lockName" {
				pass.Reportf(call.Pos(),
					"result of lockName discarded: the returned lock is held and refcounted, and only unlockName can release it")
			}
		}
	}
	held := heldLockName(pass, before, acquiredAt)
	if held == "" {
		return
	}
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, _, isMutex := mutexOp(pass, call); isMutex {
			return true // lock management itself is not blocking work
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		if !sums.callHasProperty(call) {
			return true
		}
		pass.Reportf(call.Pos(),
			"call to %s may reach blocking I/O while %s is held: move the work outside the critical section or restructure the lock",
			fn.Name(), held)
		return true
	})
}

// heldLockName returns a printable name for some held lock whose critical
// section is NOT justified by a //lint:ignore lockscope directive at its
// acquisition site, or "" if every held lock is justified (or none is held).
func heldLockName(pass *Pass, f facts, acquiredAt map[any]token.Pos) string {
	for k := range f {
		var name string
		switch lf := k.(type) {
		case lockFact:
			name = lf.path
		case nameLockFact:
			name = "the per-name lock from lockName"
		default:
			continue
		}
		if pos, ok := acquiredAt[k]; ok &&
			pass.suppress.covers(pass.Analyzer.Name, pass.Fset.Position(pos)) {
			continue // the whole critical section carries a justification
		}
		return name
	}
	return ""
}

// mutexOp recognizes calls to sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock
// and returns the corresponding fact and whether it acquires.
func mutexOp(pass *Pass, call *ast.CallExpr) (lockFact, bool, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockFact{}, false, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockFact{}, false, false
	}
	var acquire, read bool
	switch fn.Name() {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return lockFact{}, false, false
	}
	root := rootIdentObj(pass, sel.X)
	if root == nil {
		return lockFact{}, false, false
	}
	return lockFact{root: root, path: exprString(sel.X), read: read}, acquire, true
}

// deferReleased collects the lock facts that the function's defer statements
// release at exit.
func deferReleased(pass *Pass, g *cfg) map[any]bool {
	out := make(map[any]bool)
	for _, d := range g.defers {
		call := d.Call
		if lf, acquire, ok := mutexOp(pass, call); ok && !acquire {
			out[lf] = true
			continue
		}
		if fn := calleeFunc(pass, call); fn != nil && fn.Name() == "unlockName" {
			for _, arg := range call.Args {
				if obj := rootIdentObj(pass, arg); obj != nil {
					out[nameLockFact{obj}] = true
				}
			}
		}
	}
	return out
}

// rootIdentObj resolves the root identifier object of a selector/index/deref
// chain, nil if the root is not a plain identifier.
func rootIdentObj(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.Info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
