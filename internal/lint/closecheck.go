package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// CloseCheck flags dropped errors from Close, Flush, and Sync on writers —
// the exact class of the PR 4 -reconstruct bug, where `defer out.Close()`
// swallowed short writes on a full disk and the CLI exited 0 with truncated
// output. A buffered writer in particular reports most write failures only
// at Flush/Close time, so dropping that error drops the only failure signal.
//
// Flagged, when the receiver implements io.Writer and the method returns an
// error:
//   - a bare call statement `w.Close()` / `w.Flush()` / `w.Sync()`;
//   - `defer w.Close()`, unless the same receiver's Close/Flush error is
//     checked elsewhere in the function (the house pattern: a deferred
//     close as the error-path safety net plus an explicit checked close on
//     the success path — double Close on *os.File is defined and returns
//     ErrClosed, which the safety net intentionally ignores).
//
// An explicit `_ = w.Close()` is not flagged: the discard is visible at the
// call site and greppable, which is the auditability this analyzer wants.
// Readers (receivers not implementing io.Writer) are exempt — closing a
// read-only file can fail only in exotic ways that don't corrupt output.
var CloseCheck = &Analyzer{
	Name: "closecheck",
	Doc: "flags dropped Close/Flush/Sync errors on writers, including " +
		"deferred closes whose error is never propagated",
	Run: runCloseCheck,
}

var closeMethods = map[string]bool{"Close": true, "Flush": true, "Sync": true}

func runCloseCheck(pass *Pass) error {
	writer := ioWriterType()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCloseInFunc(pass, writer, fd.Body)
		}
	}
	return nil
}

type closeSite struct {
	pos     token.Pos
	method  string
	recv    string // printed receiver expression, e.g. "e.spill.f"
	isDefer bool
}

func checkCloseInFunc(pass *Pass, writer *types.Interface, body *ast.BlockStmt) {
	var dropped []closeSite
	checked := make(map[string]bool)      // receiver exprs whose close error is consumed
	readonly := readOnlyFiles(pass, body) // objects assigned from os.Open

	// Track which call expressions appear in dropped positions so the
	// general walk below can classify every other occurrence as checked.
	droppedCalls := make(map[*ast.CallExpr]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if site, ok := closeSiteOf(pass, writer, call, readonly); ok {
					site.isDefer = false
					dropped = append(dropped, site)
					droppedCalls[call] = true
				}
			}
		case *ast.DeferStmt:
			if site, ok := closeSiteOf(pass, writer, st.Call, readonly); ok {
				site.isDefer = true
				dropped = append(dropped, site)
				droppedCalls[st.Call] = true
			}
		case *ast.AssignStmt:
			// `_ = w.Close()` with every LHS blank: explicit discard.
			allBlank := true
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
					break
				}
			}
			if allBlank {
				for _, rhs := range st.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok {
						droppedCalls[call] = true // neither flagged nor "checked"
					}
				}
			}
		}
		return true
	})

	// Any close call NOT in a dropped/blank position has its error consumed
	// (assigned, returned, compared, passed to errors.Join, ...).
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || droppedCalls[call] {
			return true
		}
		if site, ok := closeSiteOf(pass, writer, call, readonly); ok {
			checked[site.recv] = true
		}
		return true
	})

	for _, site := range dropped {
		if site.isDefer {
			if checked[site.recv] {
				continue // safety-net defer paired with a checked close
			}
			pass.Reportf(site.pos,
				"deferred %s.%s discards its error: propagate it (named return + closure) or add a checked %s on the success path",
				site.recv, site.method, site.method)
			continue
		}
		pass.Reportf(site.pos,
			"error from %s.%s is dropped: a buffered writer reports write failures here; propagate it or make the discard explicit with `_ =`",
			site.recv, site.method)
	}
}

// closeSiteOf reports whether call is Close/Flush/Sync returning error on a
// receiver that implements io.Writer and was not opened read-only.
func closeSiteOf(pass *Pass, writer *types.Interface, call *ast.CallExpr, readonly map[types.Object]bool) (closeSite, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !closeMethods[sel.Sel.Name] {
		return closeSite{}, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return closeSite{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return closeSite{}, false
	}
	if sig.Results().Len() != 1 || !isErrorType(sig.Results().At(0).Type()) {
		return closeSite{}, false
	}
	recvType := pass.Info.TypeOf(sel.X)
	if recvType == nil || !implementsWriter(recvType, writer) {
		return closeSite{}, false
	}
	if id, ok := sel.X.(*ast.Ident); ok && readonly[pass.Info.ObjectOf(id)] {
		return closeSite{}, false
	}
	return closeSite{
		pos:    call.Pos(),
		method: sel.Sel.Name,
		recv:   exprString(sel.X),
	}, true
}

// readOnlyFiles collects variables assigned from os.Open within body.
// *os.File satisfies io.Writer whatever mode it was opened in, so without
// this a `defer f.Close()` on a read-only input file would be flagged; a
// failed close of a file that was only read cannot lose data.
func readOnlyFiles(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Open" {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func implementsWriter(t types.Type, writer *types.Interface) bool {
	if types.Implements(t, writer) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		if types.Implements(types.NewPointer(t), writer) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// ioWriterType constructs the io.Writer interface shape without importing
// io's export data (the analyzed package may not depend on io).
func ioWriterType() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", byteSlice))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType(
		[]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}

func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "<expr>"
	}
	return buf.String()
}
