package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetOrder enforces deterministic output in the packages whose results reach
// published bytes or experiment reports. The published form is proven
// byte-identical across worker counts and shard budgets; a single
// map-iteration-order dependency or wall-clock/global-PRNG call silently
// voids that guarantee.
//
// Flagged:
//   - `for range` over a map value, unless a slice accumulated in the loop
//     body is passed to sort.*/slices.Sort* later in the same function, or
//     the site carries a //lint:deterministic justification;
//   - calls to time.Now;
//   - calls to package-level math/rand or math/rand/v2 functions (PRNGs must
//     be seed-threaded *rand.Rand values, per the shard-keyed stream design).
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc: "flags map iteration, time.Now, and global PRNG use in " +
		"output-affecting packages unless sorted or justified",
	Scope: []string{
		"internal/core",
		"internal/shard",
		"internal/qindex",
		"internal/dataset",
		"internal/experiments",
		"internal/anonymity",
	},
	Run: runDetOrder,
}

func runDetOrder(pass *Pass) error {
	for _, file := range pass.Files {
		var funcs []*ast.FuncDecl
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				funcs = append(funcs, fd)
			}
		}
		// Package-level var initializers can also range/call; inspect the
		// whole file for calls, but resolve the sorted-after heuristic only
		// within function bodies (the only place a RangeStmt can appear).
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkDetCall(pass, call)
			return true
		})
		for _, fd := range funcs {
			checkDetRanges(pass, fd)
		}
	}
	return nil
}

// checkDetCall flags time.Now and global math/rand calls.
func checkDetCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if _, isPkg := pass.Info.Uses[ident].(*types.PkgName); !isPkg {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now in an output-affecting package: wall-clock values must not influence published bytes")
		}
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewPCG, NewSource, NewZipf, ...) build the
		// seed-threaded *rand.Rand values the design requires; everything
		// else at package level draws from the unseeded global source.
		if strings.HasPrefix(fn.Name(), "New") {
			return
		}
		pass.Reportf(call.Pos(),
			"global %s.%s draws from the shared unseeded source: use a seed-threaded *rand.Rand (shard-keyed stream) so output is reproducible",
			ident.Name, fn.Name())
	}
}

// checkDetRanges flags `for range` over maps in fd unless a slice the loop
// accumulates into is sorted later in the same function.
func checkDetRanges(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if sortedAfter(pass, fd, rs) {
			return true
		}
		pass.Reportf(rs.Pos(),
			"iteration over map %s has nondeterministic order: sort the accumulated result before use, or justify with //lint:deterministic",
			typeString(pass, t))
		return true
	})
}

func typeString(pass *Pass, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}

// sortedAfter reports whether an object assigned inside the range body is
// later (positionally after the loop, in the same function) passed to a
// sort.* or slices.Sort* call, or is the receiver of a .Sort() method call.
// This recognizes the canonical deterministic pattern:
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	sinks := make(map[types.Object]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if obj := assignRoot(pass, lhs); obj != nil {
					sinks[obj] = true
				}
			}
		case *ast.IncDecStmt:
			if obj := assignRoot(pass, st.X); obj != nil {
				sinks[obj] = true
			}
		}
		return true
	})
	if len(sinks) == 0 {
		return false
	}

	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		// Does any argument (or a .Sort() receiver) mention a sink object?
		for _, arg := range call.Args {
			if mentionsAny(pass, arg, sinks) {
				sorted = true
				return false
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && mentionsAny(pass, sel.X, sinks) {
			sorted = true
			return false
		}
		return true
	})
	return sorted
}

// assignRoot resolves the variable object ultimately written by an
// assignment LHS: the ident itself, or the root ident of an index/selector
// chain (writing m[i] or s.f mutates the root).
func assignRoot(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.ObjectOf(x); obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					return obj
				}
			}
			return nil
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "sort", "slices":
			return true
		}
	}
	// Method call x.Sort() on any receiver counts (sort.Interface impls).
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && fn.Name() == "Sort" {
		return true
	}
	return false
}

func mentionsAny(pass *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(id); obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
