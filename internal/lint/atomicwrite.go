package lint

import (
	"go/ast"
	"go/types"
)

// AtomicWrite enforces the persistence ritual that makes restarts safe
// (PR 8): bytes go to a fresh temp file in the target directory, the temp
// file is fsynced, THEN renamed over the servable name, and the directory is
// fsynced after the rename. A crash at any point leaves either the old
// artifact or the new one — never a torn file under a servable name.
//
// The analyzer tracks, per function, which variables hold CreateTemp files,
// which hold their Name() strings, and which files have seen a Sync. Every
// os.Rename must then satisfy three clauses:
//
//   - the source traces back to a temp file created in the same function;
//   - a Sync on that temp file may-reaches the rename (deleting the Sync
//     breaks the fact chain and fails lint — mutation (b) of the issue);
//   - a directory sync (a call to a function named syncDir, directly or
//     deferred) is reachable after the rename.
//
// Direct os.Create / os.WriteFile in the persistence packages is a finding
// outright: there is no way to write-then-rename-atomically through them, so
// any use is either a torn-write bug or belongs behind the temp-file ritual.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc: "enforces the temp-file + fsync + rename + dir-sync persistence " +
		"ritual; flags direct creates/writes into persisted paths",
	Scope: []string{
		"internal/server",
		"cmd/disassod",
	},
	Run: runAtomicWrite,
}

// tempFileFact marks a variable holding an os.CreateTemp result.
type tempFileFact struct{ obj types.Object }

// tempNameFact links a string variable to the temp file whose Name() it is.
type tempNameFact struct{ name, file types.Object }

// syncedFact marks a temp file that has seen a Sync call.
type syncedFact struct{ file types.Object }

func runAtomicWrite(pass *Pass) error {
	forEachFuncBody(pass, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		checkAtomicWrite(pass, body)
	})
	return nil
}

func checkAtomicWrite(pass *Pass, body *ast.BlockStmt) {
	g := buildCFG(body)

	step := func(n ast.Node, f facts) {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
				// f, err := os.CreateTemp(dir, pattern)
				if isOsCall(pass, call, "CreateTemp") && len(as.Lhs) > 0 {
					if obj := identObj(pass, as.Lhs[0]); obj != nil {
						f[tempFileFact{obj}] = true
					}
				}
				// tmp := f.Name()
				if fileObj := tempFileMethodRecv(pass, call, "Name", f); fileObj != nil {
					for _, lhs := range as.Lhs {
						if obj := identObj(pass, lhs); obj != nil {
							f[tempNameFact{name: obj, file: fileObj}] = true
						}
					}
				}
			}
		}
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fileObj := tempFileMethodRecv(pass, call, "Sync", f); fileObj != nil {
				f[syncedFact{fileObj}] = true
			}
			return true
		})
	}

	in := forwardMay(g, facts{}, step)

	// Reporting pass, block by block so rename sites know their position for
	// the "dir sync reachable after" query.
	for _, b := range g.blocks {
		f := in[b].clone()
		for i, n := range b.nodes {
			visitAtomicNode(pass, g, b, i, n, f)
			step(n, f)
		}
	}
}

func visitAtomicNode(pass *Pass, g *cfg, b *cfgBlock, i int, n ast.Node, before facts) {
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isOsCall(pass, call, "Create"), isOsCall(pass, call, "WriteFile"):
			pass.Reportf(call.Pos(),
				"direct file create/write in a persistence package: write to an os.CreateTemp file, Sync it, and os.Rename it into place so a crash never leaves a torn artifact")
		case isOsCall(pass, call, "Rename") && len(call.Args) == 2:
			checkRename(pass, g, b, i, call, before)
		}
		return true
	})
}

// checkRename verifies the three clauses of the ritual at one os.Rename.
func checkRename(pass *Pass, g *cfg, b *cfgBlock, i int, call *ast.CallExpr, before facts) {
	src := ast.Unparen(call.Args[0])

	// Clause 1: the source traces to a temp file created here.
	var fileObj types.Object
	if srcObj := identObj(pass, src); srcObj != nil {
		for k := range before {
			if tn, ok := k.(tempNameFact); ok && tn.name == srcObj {
				fileObj = tn.file
				break
			}
		}
	} else if inner, ok := src.(*ast.CallExpr); ok {
		// os.Rename(f.Name(), dst) — inline Name() on a tracked file.
		fileObj = tempFileMethodRecv(pass, inner, "Name", before)
	}
	if fileObj == nil {
		pass.Reportf(call.Pos(),
			"os.Rename source does not trace to an os.CreateTemp file from this function: persisted artifacts must be written temp-first and renamed into place")
		return
	}

	// Clause 2: the temp file was synced on some path reaching the rename.
	if !before[syncedFact{fileObj}] {
		pass.Reportf(call.Pos(),
			"os.Rename is not preceded by Sync on the temp file: without the fsync a crash after the rename can expose an empty or torn artifact under the servable name")
	}

	// Clause 3: a directory sync is reachable after the rename (or deferred).
	found := reachableFrom(g, b, i+1, func(n ast.Node) bool {
		return containsSyncDirCall(pass, n)
	})
	if !found {
		for _, d := range g.defers {
			if containsSyncDirCall(pass, d) {
				found = true
				break
			}
		}
	}
	if !found {
		pass.Reportf(call.Pos(),
			"os.Rename is not followed by a directory sync: call syncDir on the target directory so the new directory entry is durable")
	}
}

func containsSyncDirCall(pass *Pass, n ast.Node) bool {
	found := false
	inspectShallow(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass, call); fn != nil && fn.Name() == "syncDir" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// isOsCall reports whether call invokes os.<name>.
func isOsCall(pass *Pass, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == name
}

// tempFileMethodRecv resolves calls of the form f.<method>() where f is a
// tracked temp file, returning the file object (nil otherwise).
func tempFileMethodRecv(pass *Pass, call *ast.CallExpr, method string, f facts) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	obj := rootIdentObj(pass, sel.X)
	if obj == nil || !f[tempFileFact{obj}] {
		return nil
	}
	return obj
}

// identObj resolves a plain identifier expression to its object (blank and
// non-identifiers resolve to nil).
func identObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.Info.ObjectOf(id)
}
