package lint

import (
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// HookPair verifies the house reference-path hook pattern. Each proven
// equivalence in this repo (incremental REFINE vs always-re-plan, indexed
// query vs linear scan, cached vs uncached support serving) is wired through
// a `<name>Default` constant declared twice: once in a file built under a
// reference tag and once in a file built under its negation. CI flips the
// tags to cross-check byte-identical output. If one side of a pair is
// deleted or its constraint drifts, the oracle is silently orphaned — the
// build still succeeds and the equivalence is simply never exercised again.
//
// Enforced, per package:
//   - every file named *_hook_*.go carries a //go:build line that is exactly
//     `tag` or `!tag`;
//   - every `<name>Default` const/var declared in hook files appears in
//     exactly two of them, with constraints `tag` and `!tag` for the same
//     tag;
//   - hooks listed in the registry below must exist (so deleting both sides
//     of a pair is also caught).
var HookPair = &Analyzer{
	Name: "hookpair",
	Doc: "verifies every reference-path hook has matching tag-on and " +
		"tag-off build files, so equivalence oracles cannot be orphaned",
	Run: runHookPair,
}

// requiredHooks is the registry of hooks that must exist, keyed by import
// path suffix. Extend it when a new reference path ships.
var requiredHooks = map[string][]string{
	"internal/breach": {"breachExhaustiveDefault"},
	"internal/core":   {"refineAlwaysReplanDefault", "republishScratchDefault"},
	"internal/query":  {"supportViaScanDefault"},
	"internal/server": {"supportCacheOnDefault"},
}

// hookDecl records one declaration of a hook constant in one build-tag file.
type hookDecl struct {
	file string
	pos  token.Pos
	tag  string // build tag name
	neg  bool   // constraint is !tag
	ok   bool   // constraint parsed to a plain tag / !tag
}

func runHookPair(pass *Pass) error {
	hookFiles := hookFilesOf(pass)
	if len(hookFiles) == 0 {
		return checkRegistry(pass, nil)
	}

	hooks := make(map[string][]hookDecl)
	for _, path := range hookFiles {
		f, err := parser.ParseFile(pass.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pass.Reportf(token.NoPos, "hook file %s does not parse: %v", filepath.Base(path), err)
			continue
		}
		tag, neg, okTag := buildTagOf(f)
		if !okTag {
			pass.Reportf(f.Package,
				"hook file %s needs a //go:build line that is exactly a tag or its negation (got none or a composite expression)",
				filepath.Base(path))
		}
		names := hookNamesIn(f)
		if len(names) == 0 {
			pass.Reportf(f.Package,
				"hook file %s declares no *Default hook constant: either rename the file or declare the hook it gates",
				filepath.Base(path))
			continue
		}
		for name, pos := range names {
			hooks[name] = append(hooks[name], hookDecl{
				file: filepath.Base(path), pos: pos, tag: tag, neg: neg, ok: okTag,
			})
		}
	}

	names := make([]string, 0, len(hooks))
	for name := range hooks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		checkHookPairing(pass, name, hooks[name])
	}
	return checkRegistry(pass, hooks)
}

func checkHookPairing(pass *Pass, name string, decls []hookDecl) {
	for _, d := range decls {
		if !d.ok {
			return // constraint problem already reported per file
		}
	}
	if len(decls) != 2 {
		files := make([]string, len(decls))
		for i, d := range decls {
			files[i] = d.file
		}
		pass.Reportf(decls[0].pos,
			"hook %s is declared in %d tag file(s) (%s): want exactly one tag-on and one tag-off file",
			name, len(decls), strings.Join(files, ", "))
		return
	}
	a, b := decls[0], decls[1]
	switch {
	case a.tag != b.tag:
		pass.Reportf(a.pos,
			"hook %s pair uses mismatched build tags %q (%s) and %q (%s): both sides must gate on one tag",
			name, a.tag, a.file, b.tag, b.file)
	case a.neg == b.neg:
		pass.Reportf(a.pos,
			"hook %s is declared under the same constraint in %s and %s: one side must be //go:build %s and the other //go:build !%s",
			name, a.file, b.file, a.tag, a.tag)
	}
}

func checkRegistry(pass *Pass, hooks map[string][]hookDecl) error {
	for suffix, required := range requiredHooks {
		if pass.Path != suffix && !strings.HasSuffix(pass.Path, "/"+suffix) {
			continue
		}
		for _, name := range required {
			if len(hooks[name]) == 0 {
				pos := token.NoPos
				if len(pass.Files) > 0 {
					pos = pass.Files[0].Package
				}
				pass.Reportf(pos,
					"registered reference-path hook %s is missing from %s: its tag files were deleted or renamed (update the registry in internal/lint/hookpair.go only when the reference path itself is retired)",
					name, pass.Path)
			}
		}
	}
	return nil
}

// hookFilesOf returns the package's *_hook_*.go files, both the compiled
// side and the constraint-excluded side, excluding tests.
func hookFilesOf(pass *Pass) []string {
	var out []string
	for _, list := range [2][]string{pass.GoFiles, pass.OtherGoFiles} {
		for _, path := range list {
			base := filepath.Base(path)
			if strings.HasSuffix(base, "_test.go") || !strings.Contains(base, "_hook_") {
				continue
			}
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// buildTagOf extracts the file's //go:build constraint if it is exactly
// `tag` or `!tag`.
func buildTagOf(f *ast.File) (tag string, neg, ok bool) {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return "", false, false
			}
			switch x := expr.(type) {
			case *constraint.TagExpr:
				return x.Tag, false, true
			case *constraint.NotExpr:
				if t, isTag := x.X.(*constraint.TagExpr); isTag {
					return t.Tag, true, true
				}
			}
			return "", false, false
		}
	}
	return "", false, false
}

// hookNamesIn collects top-level const/var names matching the *Default hook
// convention, with their positions.
func hookNamesIn(f *ast.File) map[string]token.Pos {
	out := make(map[string]token.Pos)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || (gd.Tok != token.CONST && gd.Tok != token.VAR) {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if strings.HasSuffix(name.Name, "Default") && name.Name != "Default" {
					out[name.Name] = name.Pos()
				}
			}
		}
	}
	return out
}
