package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseForDirectives(t *testing.T, src string) ([]directiveDiag, *suppressionIndex) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	idx := newSuppressionIndex()
	return indexSuppressions(fset, f, idx), idx
}

func TestDeterministicDirectiveRequiresJustification(t *testing.T) {
	diags, idx := parseForDirectives(t, `package d

func f(m map[string]int) {
	//lint:deterministic
	for range m {
	}
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].msg, "requires a justification") {
		t.Fatalf("want one missing-justification diagnostic, got %v", diags)
	}
	if idx.covers("detorder", token.Position{Filename: "d.go", Line: 5}) {
		t.Fatalf("bare //lint:deterministic must not suppress anything")
	}
}

func TestIgnoreDirectiveRequiresNameAndReason(t *testing.T) {
	diags, _ := parseForDirectives(t, `package d

//lint:ignore closecheck
var x int
`)
	if len(diags) != 1 || !strings.Contains(diags[0].msg, "analyzer name and a justification") {
		t.Fatalf("want one malformed-ignore diagnostic, got %v", diags)
	}
}

func TestJustifiedDirectivesSuppress(t *testing.T) {
	diags, idx := parseForDirectives(t, `package d

//lint:deterministic order-independent reduction
var a int

//lint:ignore densedomain boundary conversion
var b int
`)
	if len(diags) != 0 {
		t.Fatalf("well-formed directives reported: %v", diags)
	}
	if !idx.covers("detorder", token.Position{Filename: "d.go", Line: 4}) {
		t.Fatalf("deterministic directive should cover the following line")
	}
	if !idx.covers("densedomain", token.Position{Filename: "d.go", Line: 7}) {
		t.Fatalf("ignore directive should cover the following line")
	}
	if idx.covers("closecheck", token.Position{Filename: "d.go", Line: 4}) {
		t.Fatalf("directives must only silence the analyzer they name")
	}
}
