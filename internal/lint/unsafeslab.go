package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// UnsafeSlab guards the zero-copy serving path. snapfile reconstructs typed
// slices (postings, term stats, singleton estimates) directly over mmapped
// bytes with unsafe.Pointer; that is sound only while three things hold:
//
//  1. every reconstruction sits behind an alignment guard (the Sizeof and
//     Offsetof guards are package-level canCast* checks; the alignment of
//     the actual byte slice can only be checked at the cast site);
//  2. the index built over borrowed slabs pins the backing file against
//     unmapping (the retain argument of FromSlabs);
//  3. the casted struct layouts match what the on-disk format encodes.
//
// Clause 3 is the subtle one: editing qindex.Posting compiles fine, the
// runtime guards even pass (they compare the NEW layout against itself), and
// the reader silently misinterprets every old artifact. So the analyzer pins
// the layouts — size, field names, field offsets, field COUNT (a padding-
// sized addition changes no offset) — of every casted type, plus the
// snapfile format version. Changing a casted struct fails lint until the pin
// is updated, and the pin file says the update must ride with a
// formatVersion bump; changing formatVersion fails lint until
// pinnedSnapfileVersion follows. Either way the layout/version pair is
// edited consciously, together.
//
// Layouts are computed with the gc sizes for amd64 regardless of host, so
// lint results do not vary by machine; the snapfile format itself is
// declared little-endian/64-bit and refuses other hosts at runtime.
var UnsafeSlab = &Analyzer{
	Name: "unsafeslab",
	Doc: "pins the layouts of unsafe-casted slab types to the snapfile " +
		"format version and requires alignment guards and retain pins at " +
		"every zero-copy reconstruction",
	Scope: []string{
		"internal/snapfile",
		"internal/qindex",
		"internal/query",
		"internal/dataset",
	},
	Run: runUnsafeSlab,
}

// pinnedField is one field of a pinned struct layout.
type pinnedField struct {
	name   string
	offset int64
}

// pinnedLayout is the recorded layout of one casted type. For non-struct
// types (dataset.Term) fields is nil and underlying names the basic type.
type pinnedLayout struct {
	size       int64
	underlying string // non-struct pins: the expected underlying basic type
	fields     []pinnedField
}

// pinnedSnapfileVersion must match snapfile's formatVersion constant. Bump
// it ONLY together with the format: if a pinned layout below changed, the
// on-disk encoding changed with it.
const pinnedSnapfileVersion = 1

// pinnedLayouts records, per package (matched by import-path suffix, so the
// lint fixtures can stand in for the real packages), the layout of every
// type that snapfile reconstructs by cast. Computed against gc/amd64 sizes.
//
// DO NOT edit a layout here without bumping snapfile's formatVersion and
// pinnedSnapfileVersion above: the old artifacts on disk still hold the old
// layout.
var pinnedLayouts = map[string]map[string]pinnedLayout{
	"qindex": {
		"Posting": {size: 8, fields: []pinnedField{
			{"Cluster", 0}, {"Bits", 4},
		}},
		"TermStats": {size: 24, fields: []pinnedField{
			{"SubrecordOcc", 0}, {"TermChunkOcc", 8}, {"Clusters", 16},
		}},
	},
	"query": {
		"Estimate": {size: 24, fields: []pinnedField{
			{"Lower", 0}, {"Upper", 8}, {"Expected", 16},
		}},
	},
	"dataset": {
		"Term": {size: 4, underlying: "int32"},
	},
}

// slabSizes are the fixed target sizes for layout pinning (see doc above).
var slabSizes = types.SizesFor("gc", "amd64")

func runUnsafeSlab(pass *Pass) error {
	seg := pass.Path
	if i := strings.LastIndex(seg, "/"); i >= 0 {
		seg = seg[i+1:]
	}
	if pins, ok := pinnedLayouts[seg]; ok {
		checkPinnedLayouts(pass, pins)
	}
	if seg == "snapfile" {
		checkFormatVersionPin(pass)
	}
	checkCastGuards(pass)
	checkInstantiations(pass)
	checkRetainPins(pass)
	return nil
}

// checkPinnedLayouts compares each pinned type against its actual layout.
func checkPinnedLayouts(pass *Pass, pins map[string]pinnedLayout) {
	for name, pin := range pins {
		obj := pass.Pkg.Scope().Lookup(name)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			pass.Reportf(pass.Files[0].Pos(),
				"pinned slab type %s is missing from package %s: if it was renamed or moved, update the pinned layout in unsafeslab.go together with a snapfile formatVersion bump", name, pass.Path)
			continue
		}
		if diff := diffLayout(tn, pin); diff != "" {
			pass.Reportf(tn.Pos(),
				"layout of %s diverges from the snapfile format pin (%s): this type is reconstructed by cast from persisted bytes, so bump snapfile's formatVersion and update the pinned layout in unsafeslab.go together", name, diff)
		}
	}
}

// diffLayout returns a human-readable description of how tn's layout differs
// from pin, or "" if it matches.
func diffLayout(tn *types.TypeName, pin pinnedLayout) string {
	t := tn.Type()
	size := slabSizes.Sizeof(t)
	if size != pin.size {
		return fmt.Sprintf("size is %d, pinned %d", size, pin.size)
	}
	st, isStruct := t.Underlying().(*types.Struct)
	if pin.fields == nil {
		if isStruct {
			return "pinned as a non-struct type but is now a struct"
		}
		if got := t.Underlying().String(); got != pin.underlying {
			return fmt.Sprintf("underlying type is %s, pinned %s", got, pin.underlying)
		}
		return ""
	}
	if !isStruct {
		return "pinned as a struct but is no longer one"
	}
	if st.NumFields() != len(pin.fields) {
		return fmt.Sprintf("has %d fields, pinned %d (even a padding-sized addition changes what old artifacts decode to)", st.NumFields(), len(pin.fields))
	}
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := slabSizes.Offsetsof(fields)
	for i, pf := range pin.fields {
		if fields[i].Name() != pf.name {
			return fmt.Sprintf("field %d is %s, pinned %s", i, fields[i].Name(), pf.name)
		}
		if offsets[i] != pf.offset {
			return fmt.Sprintf("field %s is at offset %d, pinned %d", pf.name, offsets[i], pf.offset)
		}
	}
	return ""
}

// checkFormatVersionPin verifies snapfile's formatVersion constant against
// pinnedSnapfileVersion.
func checkFormatVersionPin(pass *Pass) {
	obj := pass.Pkg.Scope().Lookup("formatVersion")
	cn, ok := obj.(*types.Const)
	if !ok {
		pass.Reportf(pass.Files[0].Pos(),
			"snapfile package has no formatVersion constant: the on-disk format version is what lets readers reject artifacts with a different slab layout")
		return
	}
	v, ok := constant.Int64Val(cn.Val())
	if !ok || v != pinnedSnapfileVersion {
		pass.Reportf(cn.Pos(),
			"formatVersion is %s but unsafeslab pins version %d: after a deliberate format change, re-verify every pinned slab layout and update pinnedSnapfileVersion in unsafeslab.go", cn.Val(), pinnedSnapfileVersion)
	}
}

// checkCastGuards requires an alignment guard in every function that
// reconstructs typed memory from an unsafe.Pointer: a call to unsafe.Slice
// or a pointer conversion from unsafe.Pointer must be accompanied, in the
// same function body, by a % expression involving unsafe.Alignof.
func checkCastGuards(pass *Pass) {
	forEachFuncBody(pass, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		var casts []*ast.CallExpr
		guarded := false
		inspectShallow(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if isUnsafeSliceCall(pass, x) || isPointerReinterpret(pass, x) {
					casts = append(casts, x)
				}
			case *ast.BinaryExpr:
				if x.Op.String() == "%" && mentionsUnsafeAlignof(pass, x) {
					guarded = true
				}
			}
			return true
		})
		if guarded {
			return
		}
		for _, c := range casts {
			pass.Reportf(c.Pos(),
				"unsafe slice reconstruction without an alignment guard in the same function: check uintptr(p)%%unsafe.Alignof(...) == 0 before the cast — a misaligned mmap window makes every load undefined")
		}
	})
}

// isUnsafeSliceCall reports whether call is unsafe.Slice(...).
func isUnsafeSliceCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Slice" {
		return false
	}
	return isUnsafePkgIdent(pass, sel.X)
}

// isPointerReinterpret reports whether call is a conversion of an
// unsafe.Pointer value to a typed pointer — (*T)(p).
func isPointerReinterpret(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); !isPtr {
		return false
	}
	argT := pass.Info.TypeOf(call.Args[0])
	if argT == nil {
		return false
	}
	b, ok := argT.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UnsafePointer
}

// mentionsUnsafeAlignof reports whether unsafe.Alignof appears anywhere
// inside e.
func mentionsUnsafeAlignof(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Alignof" && isUnsafePkgIdent(pass, sel.X) {
			found = true
		}
		return !found
	})
	return found
}

// isUnsafePkgIdent reports whether e is the package qualifier "unsafe".
func isUnsafePkgIdent(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "unsafe"
}

// checkInstantiations verifies that in-package generic functions whose
// bodies perform unsafe reconstruction are only instantiated with pinned or
// basic element types — a castSlice[NewStruct] with an unpinned NewStruct
// would bypass the layout pin entirely.
func checkInstantiations(pass *Pass) {
	// Generic in-package functions that use unsafe in their bodies.
	unsafeGenerics := make(map[*types.Func]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.TypeParams == nil {
				continue
			}
			usesUnsafe := false
			inspectShallow(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if isUnsafeSliceCall(pass, call) || isPointerReinterpret(pass, call) {
						usesUnsafe = true
					}
				}
				return !usesUnsafe
			})
			if !usesUnsafe {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				unsafeGenerics[fn] = true
			}
		}
	}
	if len(unsafeGenerics) == 0 {
		return
	}
	for id, inst := range pass.Info.Instances {
		fn, ok := pass.Info.Uses[id].(*types.Func)
		if !ok || !unsafeGenerics[fn.Origin()] {
			continue
		}
		for i := 0; i < inst.TypeArgs.Len(); i++ {
			arg := inst.TypeArgs.At(i)
			if typeArgPinned(arg) {
				continue
			}
			pass.Reportf(id.Pos(),
				"%s instantiated with %s, whose layout is not pinned: every type reconstructed from persisted bytes must have its size and field offsets pinned in unsafeslab.go (and format changes need a snapfile version bump)",
				fn.Name(), arg.String())
		}
	}
}

// typeArgPinned reports whether a type argument to an unsafe-reconstructing
// generic is accounted for: a basic fixed-size type, or a named type pinned
// in pinnedLayouts under its package's final path segment.
func typeArgPinned(t types.Type) bool {
	if b, ok := t.(*types.Basic); ok {
		switch b.Kind() {
		case types.Int8, types.Int16, types.Int32, types.Int64,
			types.Uint8, types.Uint16, types.Uint32, types.Uint64,
			types.Float32, types.Float64:
			return true
		}
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	seg := obj.Pkg().Path()
	if i := strings.LastIndex(seg, "/"); i >= 0 {
		seg = seg[i+1:]
	}
	pins, ok := pinnedLayouts[seg]
	if !ok {
		return false
	}
	_, ok = pins[obj.Name()]
	return ok
}

// checkRetainPins flags FromSlabs calls whose retain argument (the last one)
// is a nil literal: an index over borrowed slabs without a retain pin lets
// the backing mmap be unmapped while readers still hold slice views.
func checkRetainPins(pass *Pass) {
	forEachFuncBody(pass, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		inspectShallow(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Name() != "FromSlabs" || len(call.Args) == 0 {
				return true
			}
			last := ast.Unparen(call.Args[len(call.Args)-1])
			if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
				pass.Reportf(call.Pos(),
					"FromSlabs called with a nil retain pin: an index over borrowed slabs must keep the backing file alive, or its slices dangle after Close unmaps the window")
			}
			return true
		})
	})
}
