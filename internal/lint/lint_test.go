package lint_test

import (
	"testing"

	"disasso/internal/lint"
	"disasso/internal/lint/linttest"
)

func TestDetOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.DetOrder,
		"detorder/pos", "detorder/neg", "detorder/badjust")
}

func TestDenseDomain(t *testing.T) {
	linttest.Run(t, "testdata", lint.DenseDomain,
		"densedomain/pos", "densedomain/neg")
}

func TestCloseCheck(t *testing.T) {
	linttest.Run(t, "testdata", lint.CloseCheck,
		"closecheck/pos", "closecheck/neg")
}

func TestHookPair(t *testing.T) {
	linttest.Run(t, "testdata", lint.HookPair,
		"hookpair/good", "hookpair/missing", "hookpair/mismatch",
		"hookpair/sameside", "hookpair/untagged", "hookreg/internal/query")
}

func TestImmutSnap(t *testing.T) {
	linttest.Run(t, "testdata", lint.ImmutSnap,
		"immutsnap/pos", "immutsnap/neg")
}

func TestLockScope(t *testing.T) {
	linttest.Run(t, "testdata", lint.LockScope,
		"lockscope/pos", "lockscope/neg")
}

func TestAtomicWrite(t *testing.T) {
	linttest.Run(t, "testdata", lint.AtomicWrite,
		"atomicwrite/pos", "atomicwrite/neg")
}

func TestUnsafeSlab(t *testing.T) {
	linttest.Run(t, "testdata", lint.UnsafeSlab,
		"unsafeslab/qindex", "unsafeslab/snapfile", "unsafeslab/generic")
}

// TestRepoIsClean is the self-smoke test: the scoped suite over the whole
// module must produce zero findings, mirroring the CI gate
// `go run ./cmd/disassolint ./...`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, lint.All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}
