package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"disasso/internal/lint"
)

// TestMutationsAreCaught is the analyzers' own regression harness: it copies
// the module into a temp dir, re-introduces each of the bug classes the
// dataflow analyzers exist for, and asserts the corresponding analyzer turns
// the build red. Together with TestRepoIsClean (zero findings on the real
// tree) this proves the suite is neither vacuous nor noisy.
func TestMutationsAreCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and re-type-checks module packages")
	}
	mod := copyModule(t)

	mutations := []struct {
		name     string
		file     string // module-relative
		old, new string
		pattern  string // load pattern for the mutated package
		analyzer string // analyzer expected to fire
	}{
		{
			name:     "store-after-install",
			file:     "internal/server/server.go",
			old:      "\ts.snapshots[name] = sn\n\ts.mu.Unlock()\n\ts.writeJSON(w, http.StatusCreated, sn.info)",
			new:      "\ts.snapshots[name] = sn\n\ts.mu.Unlock()\n\tsn.info.Version = 99\n\ts.writeJSON(w, http.StatusCreated, sn.info)",
			pattern:  "./internal/server",
			analyzer: "immutsnap",
		},
		{
			name:     "sync-deleted-from-persist",
			file:     "internal/server/persist.go",
			old:      "\tif err == nil {\n\t\terr = f.Sync()\n\t}\n",
			new:      "",
			pattern:  "./internal/server",
			analyzer: "atomicwrite",
		},
		{
			name:     "posting-widened-without-version-bump",
			file:     "internal/qindex/qindex.go",
			old:      "\tCluster int32",
			new:      "\tCluster int32\n\tExtra int32",
			pattern:  "./internal/qindex",
			analyzer: "unsafeslab",
		},
		{
			name:     "blocking-io-under-registry-mutex",
			file:     "internal/server/server.go",
			old:      "\ts.mu.Lock()\n\ts.snapshots[name] = sn\n\ts.mu.Unlock()\n\ts.writeJSON(w, http.StatusCreated, sn.info)",
			new:      "\ts.mu.Lock()\n\t_, _ = os.ReadFile(\"/etc/hostname\")\n\ts.snapshots[name] = sn\n\ts.mu.Unlock()\n\ts.writeJSON(w, http.StatusCreated, sn.info)",
			pattern:  "./internal/server",
			analyzer: "lockscope",
		},
	}

	for _, mut := range mutations {
		t.Run(mut.name, func(t *testing.T) {
			path := filepath.Join(mod, mut.file)
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading %s: %v", mut.file, err)
			}
			mutated := strings.Replace(string(orig), mut.old, mut.new, 1)
			if mutated == string(orig) {
				t.Fatalf("mutation %s did not apply: pattern not found in %s (file drifted? update the mutation)", mut.name, mut.file)
			}
			if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
				t.Fatalf("writing mutation: %v", err)
			}
			defer func() {
				if err := os.WriteFile(path, orig, 0o644); err != nil {
					t.Fatalf("restoring %s: %v", mut.file, err)
				}
			}()

			pkgs, err := lint.Load(mod, mut.pattern)
			if err != nil {
				t.Fatalf("loading mutated module: %v", err)
			}
			found := false
			for _, pkg := range pkgs {
				diags, err := lint.RunAnalyzers(pkg, lint.All())
				if err != nil {
					t.Fatalf("%s: %v", pkg.Path, err)
				}
				for _, d := range diags {
					if d.Analyzer == mut.analyzer {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("mutation %s: expected a %s finding, got none — the analyzer no longer catches this bug class", mut.name, mut.analyzer)
			}
		})
	}
}

// copyModule replicates the module's Go sources (plus go.mod) into a temp
// dir so mutations never touch the real tree. testdata, .git and CI config
// are irrelevant to type-checking the mutated packages and are skipped.
func copyModule(t *testing.T) string {
	t.Helper()
	root := "../.."
	dst := t.TempDir()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", ".github":
				if rel != "." {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") && d.Name() != "go.mod" && d.Name() != "go.sum" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module: %v", err)
	}
	return dst
}
