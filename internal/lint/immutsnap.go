package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ImmutSnap enforces the serving layer's lock-free-read soundness argument:
// reads serve from registry snapshots without locking ONLY because an
// installed snapshot is never mutated again. The registry map is marked in
// source with a //lint:immutable directive; from there the analyzer derives
// the snapshot type and its payload types (the named types its fields point
// to — the published forest, the estimator, the republish state, ...) and
// runs a forward dataflow over each function's CFG tracking which values
// have ESCAPED into shared state:
//
//   - a value read back out of the registry (directly, or through a helper
//     whose summary says it returns registry values) is escaped at birth;
//   - a value installed into the registry escapes at the install statement —
//     stores before it (version stamping, option shims) stay legal;
//   - a tracked value passed to an in-package constructor returning the
//     snapshot type escapes at the call (the constructor wires it into the
//     snapshot that will be installed);
//   - parameters and receivers of tracked types are escaped at entry: a
//     helper cannot know whether its argument is already installed.
//
// Any store through an escaped value (assignment or ++/-- whose left side is
// a selector/index/dereference chain rooted at it) is a finding. Rebinding
// the variable itself (sn = other) is not a store through the snapshot and
// is allowed — it kills the escape fact.
//
// Internally synchronized mutable state (the support cache) stays out of
// scope structurally: payload types are derived one level deep from the
// snapshot struct, and the cache mutates its own shard structs behind its
// own mutex, never through a snapshot-rooted chain.
var ImmutSnap = &Analyzer{
	Name: "immutsnap",
	Doc: "flags stores through registry-installed snapshot state after it " +
		"escapes; installed snapshots must stay immutable for lock-free reads",
	Scope: []string{
		"internal/server",
	},
	Run: runImmutSnap,
}

// immutCtx is the per-package state shared by the per-function analyses.
type immutCtx struct {
	pass *Pass
	// registryFields are the //lint:immutable-marked map fields.
	registryFields map[types.Object]bool
	// snapshotTypes are the named types the registries' map values point to.
	snapshotTypes map[*types.TypeName]bool
	// payloadTypes are the named types reachable from snapshot struct fields
	// (one level: what the snapshot owns).
	payloadTypes map[*types.TypeName]bool
	// returnsInstalled marks package functions that may return a value read
	// from a registry (lookup-style helpers), to fixpoint.
	returnsInstalled map[*types.Func]bool
}

func runImmutSnap(pass *Pass) error {
	ctx := &immutCtx{
		pass:             pass,
		registryFields:   make(map[types.Object]bool),
		snapshotTypes:    make(map[*types.TypeName]bool),
		payloadTypes:     make(map[*types.TypeName]bool),
		returnsInstalled: make(map[*types.Func]bool),
	}
	ctx.findRegistries()
	if len(ctx.registryFields) == 0 {
		return nil // nothing marked immutable in this package
	}
	ctx.derivePayloads()
	ctx.summarizeReturnsInstalled()

	forEachFuncBody(pass, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		ctx.checkFunc(decl, body)
	})
	return nil
}

// findRegistries locates map-typed struct fields carrying a //lint:immutable
// directive (same line or the line above) and records the snapshot types.
func (c *immutCtx) findRegistries() {
	marked := make(map[string]map[int]bool) // filename -> line -> marked
	for _, file := range c.pass.Files {
		for _, cg := range file.Comments {
			for _, cm := range cg.List {
				text, ok := strings.CutPrefix(cm.Text, "//lint:")
				if !ok || !strings.HasPrefix(text, "immutable") {
					continue
				}
				pos := c.pass.Fset.Position(cm.Pos())
				m := marked[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					marked[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				pos := c.pass.Fset.Position(field.Pos())
				m := marked[pos.Filename]
				if m == nil || (!m[pos.Line] && !m[pos.Line-1]) {
					continue
				}
				for _, name := range field.Names {
					obj := c.pass.Info.Defs[name]
					if obj == nil {
						continue
					}
					mt, ok := obj.Type().Underlying().(*types.Map)
					if !ok {
						c.pass.Reportf(field.Pos(),
							"//lint:immutable marks %s, which is not a map: the directive marks registry maps whose installed values must never be mutated", name.Name)
						continue
					}
					c.registryFields[obj] = true
					if tn := namedPointee(mt.Elem()); tn != nil {
						c.snapshotTypes[tn] = true
					}
				}
			}
			return true
		})
	}
}

// namedPointee resolves *Named to its type name, nil otherwise.
func namedPointee(t types.Type) *types.TypeName {
	p, ok := t.(*types.Pointer)
	if !ok {
		return nil
	}
	if named, ok := p.Elem().(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// derivePayloads walks each snapshot struct's fields and collects the named
// types one pointer/slice level down — the state the snapshot owns and
// shares with every reader.
func (c *immutCtx) derivePayloads() {
	for tn := range c.snapshotTypes {
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			t := st.Field(i).Type()
			if sl, ok := t.Underlying().(*types.Slice); ok {
				t = sl.Elem()
			}
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				if _, isStruct := named.Underlying().(*types.Struct); isStruct {
					c.payloadTypes[named.Obj()] = true
				}
			}
		}
	}
}

// tracked reports whether values of type t are snapshot-reachable state: the
// snapshot type or a payload type, behind a pointer or a slice (value copies
// are private and harmless to mutate).
func (c *immutCtx) tracked(t types.Type) bool {
	if t == nil {
		return false
	}
	if sl, ok := t.Underlying().(*types.Slice); ok {
		t = sl.Elem()
	}
	tn := namedPointee(t)
	if tn == nil {
		return false
	}
	return c.snapshotTypes[tn] || c.payloadTypes[tn]
}

// summarizeReturnsInstalled computes, to fixpoint, which package functions
// may return a registry-read value (flow-insensitively: any assignment from
// a registry read or installed-returning call taints the variable; a tainted
// return result taints the function).
func (c *immutCtx) summarizeReturnsInstalled() {
	type fnBody struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var fns []fnBody
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := c.pass.Info.Defs[fd.Name].(*types.Func); ok {
				fns = append(fns, fnBody{fn, fd.Body})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fb := range fns {
			if c.returnsInstalled[fb.fn] {
				continue
			}
			tainted := make(map[types.Object]bool)
			// Two passes over the body so taint assigned below a use still
			// registers (flow-insensitive).
			for pass := 0; pass < 2; pass++ {
				ast.Inspect(fb.body, func(n ast.Node) bool {
					as, ok := n.(*ast.AssignStmt)
					if !ok {
						return true
					}
					rhsTainted := false
					for _, rhs := range as.Rhs {
						if c.exprInstalledStatic(rhs, tainted) {
							rhsTainted = true
						}
					}
					if !rhsTainted {
						return true
					}
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if obj := c.pass.Info.ObjectOf(id); obj != nil {
								tainted[obj] = true
							}
						}
					}
					return true
				})
			}
			returns := false
			ast.Inspect(fb.body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					if c.exprInstalledStatic(res, tainted) {
						returns = true
					}
				}
				return true
			})
			if returns {
				c.returnsInstalled[fb.fn] = true
				changed = true
			}
		}
	}
}

// exprInstalledStatic reports whether e reads registry state, given a static
// taint set: a registry index, a call to an installed-returning function, a
// tainted identifier, or a chain rooted at one.
func (c *immutCtx) exprInstalledStatic(e ast.Expr, tainted map[types.Object]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.Info.ObjectOf(x)
		return obj != nil && tainted[obj]
	case *ast.IndexExpr:
		if c.isRegistryIndex(x) {
			return true
		}
		return c.exprInstalledStatic(x.X, tainted)
	case *ast.SelectorExpr:
		return c.exprInstalledStatic(x.X, tainted)
	case *ast.StarExpr:
		return c.exprInstalledStatic(x.X, tainted)
	case *ast.CallExpr:
		fn := calleeFunc(c.pass, x)
		return fn != nil && c.returnsInstalled[fn]
	}
	return false
}

// isRegistryIndex reports whether e indexes a marked registry map.
func (c *immutCtx) isRegistryIndex(e *ast.IndexExpr) bool {
	switch x := ast.Unparen(e.X).(type) {
	case *ast.SelectorExpr:
		if sel, ok := c.pass.Info.Selections[x]; ok {
			return c.registryFields[sel.Obj()]
		}
	case *ast.Ident:
		obj := c.pass.Info.ObjectOf(x)
		return obj != nil && c.registryFields[obj]
	}
	return false
}

// isConstructorCall reports whether call invokes an in-package function
// returning the snapshot type (directly among its results).
func (c *immutCtx) isConstructorCall(call *ast.CallExpr) bool {
	fn := calleeFunc(c.pass, call)
	if fn == nil || fn.Pkg() != c.pass.Pkg {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if tn := namedPointee(sig.Results().At(i).Type()); tn != nil && c.snapshotTypes[tn] {
			return true
		}
	}
	return false
}

// checkFunc runs the escape dataflow over one function body and reports
// stores through escaped values.
func (c *immutCtx) checkFunc(decl *ast.FuncDecl, body *ast.BlockStmt) {
	g := buildCFG(body)
	entry := facts{}
	if decl != nil {
		// Parameters and receivers of tracked types: escaped at entry.
		seed := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, field := range fl.List {
				for _, name := range field.Names {
					if obj := c.pass.Info.Defs[name]; obj != nil && c.tracked(obj.Type()) {
						entry[obj] = true
					}
				}
			}
		}
		seed(decl.Recv)
		seed(decl.Type.Params)
	} else {
		// Function literal: captured tracked variables (declared outside the
		// body) have unknown provenance — escaped at entry.
		ast.Inspect(body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := c.pass.Info.Uses[id].(*types.Var)
			if !ok || !c.tracked(obj.Type()) {
				return true
			}
			if obj.Pos() < body.Pos() || obj.Pos() > body.End() {
				entry[obj] = true
			}
			return true
		})
	}

	step := func(n ast.Node, f facts) { c.step(n, f) }
	in := forwardMay(g, entry, step)
	walkWithFacts(g, in, step, func(n ast.Node, before facts) {
		c.visit(n, before)
	})
}

// step is the transfer function: escape generation and kill.
func (c *immutCtx) step(n ast.Node, f facts) {
	switch st := n.(type) {
	case *ast.AssignStmt:
		c.stepAssign(st, f)
	}
	// Constructor and install escapes anywhere inside the node (conditions,
	// call arguments, defer statements).
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok || !c.isConstructorCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if obj := c.rootObj(arg); obj != nil && c.tracked(obj.Type()) {
				f[obj] = true
			}
		}
		return true
	})
	if as, ok := n.(*ast.AssignStmt); ok {
		for i, lhs := range as.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok || !c.isRegistryIndex(ix) {
				continue
			}
			// Install: the RHS value is now shared with every future reader.
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			if rhs != nil {
				if obj := c.rootObj(rhs); obj != nil {
					f[obj] = true
				}
			}
		}
	}
}

// stepAssign handles escape propagation through plain assignments: x = y
// copies y's escape status onto x; x = fresh() clears it.
func (c *immutCtx) stepAssign(as *ast.AssignStmt, f facts) {
	installedCall := false
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			fn := calleeFunc(c.pass, call)
			installedCall = fn != nil && c.returnsInstalled[fn]
		}
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := c.pass.Info.ObjectOf(id)
		if obj == nil || !c.tracked(obj.Type()) {
			continue
		}
		escaped := installedCall
		if !escaped && len(as.Rhs) == len(as.Lhs) {
			escaped = c.exprEscaped(as.Rhs[i], f)
		}
		if escaped {
			f[obj] = true
		} else {
			delete(f, obj)
		}
	}
}

// exprEscaped reports whether evaluating e yields escaped state under the
// current facts: an escaped variable, a chain rooted at one, a registry
// read, or a lookup-helper call.
func (c *immutCtx) exprEscaped(e ast.Expr, f facts) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.Info.ObjectOf(x)
		return obj != nil && f[obj]
	case *ast.SelectorExpr:
		return c.exprEscaped(x.X, f)
	case *ast.StarExpr:
		return c.exprEscaped(x.X, f)
	case *ast.UnaryExpr:
		return c.exprEscaped(x.X, f)
	case *ast.IndexExpr:
		if c.isRegistryIndex(x) {
			return true
		}
		return c.exprEscaped(x.X, f)
	case *ast.CallExpr:
		fn := calleeFunc(c.pass, x)
		return fn != nil && c.returnsInstalled[fn]
	}
	return false
}

// rootObj resolves the root identifier object of an expression chain.
func (c *immutCtx) rootObj(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return c.pass.Info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// visit reports stores through escaped state, given the facts holding just
// before the node executes.
func (c *immutCtx) visit(n ast.Node, before facts) {
	switch st := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			c.checkStoreTarget(lhs, before)
		}
	case *ast.IncDecStmt:
		c.checkStoreTarget(st.X, before)
	}
}

// checkStoreTarget flags an assignment target that writes THROUGH escaped
// state: a selector/index/deref chain whose root is escaped, or that passes
// through a registry read. A bare identifier target is a rebind, not a
// store; the exact registry index expression is the install itself.
func (c *immutCtx) checkStoreTarget(lhs ast.Expr, before facts) {
	e := ast.Unparen(lhs)
	if _, ok := e.(*ast.Ident); ok {
		return // rebinding the variable, not mutating the pointee
	}
	if ix, ok := e.(*ast.IndexExpr); ok && c.isRegistryIndex(ix) {
		return // the install statement itself
	}
	// Walk the chain: a registry read or helper call anywhere inside means
	// the store goes into installed state regardless of local facts.
	chain := e
	for {
		switch x := chain.(type) {
		case *ast.Ident:
			obj := c.pass.Info.ObjectOf(x)
			if obj != nil && before[obj] {
				c.reportStore(lhs, obj.Name())
			}
			return
		case *ast.SelectorExpr:
			chain = ast.Unparen(x.X)
		case *ast.IndexExpr:
			if c.isRegistryIndex(x) {
				c.reportStore(lhs, "the registry")
				return
			}
			chain = ast.Unparen(x.X)
		case *ast.StarExpr:
			chain = ast.Unparen(x.X)
		case *ast.CallExpr:
			fn := calleeFunc(c.pass, x)
			if fn != nil && c.returnsInstalled[fn] {
				c.reportStore(lhs, fn.Name()+"(...)")
			}
			return
		default:
			return
		}
	}
}

func (c *immutCtx) reportStore(lhs ast.Expr, root string) {
	c.pass.Reportf(lhs.Pos(),
		"store through %s mutates snapshot-reachable state after it escaped (installed in or read from the registry): "+
			"readers serve lock-free from installed snapshots, so build a new snapshot and swap the pointer instead",
		root)
}

var _ = token.NoPos // keep go/token imported if report positions change shape
