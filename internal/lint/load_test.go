package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDecodeGoList(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		listed, err := decodeGoList(nil)
		if err != nil || len(listed) != 0 {
			t.Fatalf("decodeGoList(nil) = %v, %v; want empty, nil", listed, err)
		}
	})
	t.Run("stream", func(t *testing.T) {
		out := []byte(`{"ImportPath":"a","Dir":"/a"}` + "\n" + `{"ImportPath":"b","DepOnly":true}`)
		listed, err := decodeGoList(out)
		if err != nil {
			t.Fatalf("decodeGoList: %v", err)
		}
		if len(listed) != 2 || listed[0].ImportPath != "a" || !listed[1].DepOnly {
			t.Fatalf("decoded %+v; want packages a and b(DepOnly)", listed)
		}
	})
	t.Run("malformed", func(t *testing.T) {
		if _, err := decodeGoList([]byte(`{"ImportPath":`)); err == nil {
			t.Fatal("decodeGoList on truncated JSON: want error, got nil")
		}
		if _, err := decodeGoList([]byte(`not json at all`)); err == nil {
			t.Fatal("decodeGoList on garbage: want error, got nil")
		}
	})
}

func TestLoadNoPatterns(t *testing.T) {
	if _, err := Load(""); err == nil {
		t.Fatal("Load with no patterns: want error, got nil")
	}
}

// writeTestModule lays out a throwaway module for loader failure tests.
func writeTestModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadConstraintExcludedOnly covers a package whose every file is
// excluded by build constraints: go list refuses it and Load must surface
// that as an error, not an empty result.
func TestLoadConstraintExcludedOnly(t *testing.T) {
	dir := writeTestModule(t, map[string]string{
		"go.mod":        "module probe\n\ngo 1.22\n",
		"excluded/x.go": "//go:build never\n\npackage excluded\n",
	})
	_, err := Load(dir, "./excluded")
	if err == nil {
		t.Fatal("Load on constraint-excluded-only package: want error, got nil")
	}
	if !strings.Contains(err.Error(), "build constraints") {
		t.Errorf("error should name the build-constraint cause, got: %v", err)
	}
}

// TestLoadBrokenDependency: a dependency that fails to compile must fail the
// whole load with the compiler's diagnosis, not a silently partial result.
func TestLoadBrokenDependency(t *testing.T) {
	dir := writeTestModule(t, map[string]string{
		"go.mod":      "module probe\n\ngo 1.22\n",
		"broken/b.go": "package broken\n\nfunc Bad() {\n", // syntax error
		"uses/u.go":   "package uses\n\nimport \"probe/broken\"\n\nvar _ = broken.Bad\n",
	})
	_, err := Load(dir, "./uses")
	if err == nil {
		t.Fatal("Load with a broken dependency: want error, got nil")
	}
	if !strings.Contains(err.Error(), "syntax error") {
		t.Errorf("error should carry the compiler diagnosis, got: %v", err)
	}
}

// TestExportLookup covers the importer's export-data failure paths directly:
// go list refuses most broken inputs before the importer ever runs, so these
// branches are only reachable when the listing and the import graph disagree
// — exactly when a clear error matters most.
func TestExportLookup(t *testing.T) {
	exp := filepath.Join(t.TempDir(), "pkg.a")
	if err := os.WriteFile(exp, []byte("fake export data"), 0o644); err != nil {
		t.Fatal(err)
	}
	lookup := exportLookup(map[string]*listedPackage{
		"probe/ok":       {ImportPath: "probe/ok", Export: exp},
		"probe/noexport": {ImportPath: "probe/noexport"},
	})

	rc, err := lookup("probe/ok")
	if err != nil {
		t.Fatalf("lookup(probe/ok): %v", err)
	}
	rc.Close()

	if _, err := lookup("probe/noexport"); err == nil || !strings.Contains(err.Error(), "no export data") {
		t.Errorf("lookup on export-less package: want 'no export data' error, got %v", err)
	}
	if _, err := lookup("probe/unlisted"); err == nil || !strings.Contains(err.Error(), "no listed package") {
		t.Errorf("lookup on unlisted path: want 'no listed package' error, got %v", err)
	}
}
