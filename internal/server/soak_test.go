package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/load"
)

// TestServerSoakUnderChurn is the loadbench-shaped e2e soak: N concurrent
// clients drain workload-model op streams (Zipf singletons, correlated
// itemsets, reconstructions, append/remove delta republishes, plus
// publish/delete churn) against a live disassod handler for a bounded
// duration. The dominant churn is incremental: each client appends batches
// through the delta endpoint and later removes its own oldest batch, so
// snapshot versions chain under the readers' feet; full republishes
// (replace=1, varying seed) and deletes keep racing dataset replacement and
// disappearance on top. Invariants, checked on every response: the server
// never answers 5xx, and every support estimate satisfies the sandwich
// Lower ≤ Expected ≤ Upper. Run under -race (CI does) this is the
// registry+version-chain+cache concurrency proof.
func TestServerSoakUnderChurn(t *testing.T) {
	duration := 1500 * time.Millisecond
	if testing.Short() {
		duration = 300 * time.Millisecond
	}

	// A deterministic upload body plus the matching local publication the
	// workload model draws terms from. The publication is sharded
	// (shardrecords=60) so delta republishes genuinely exercise the
	// dirty-shard path; churn republishes vary the seed, so swapped-in
	// snapshots genuinely differ — the model's terms remain valid queries
	// (the domain survives anonymization).
	body, d := testDataset(t, 21, 300, 60, 6)
	a, err := core.Anonymize(d, core.Options{K: 3, M: 2, Seed: 1, MaxShardRecords: 60})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := load.ParseSpec(`
		singleton weight=45 zipf=1.2
		itemset weight=25 min=2 max=3
		reconstruct weight=4 samples=2
		append weight=12 count=6 min=1 max=4
		remove weight=8
		publish weight=3
		delete weight=3
	`)
	if err != nil {
		t.Fatal(err)
	}
	model, err := load.NewModel(a, spec, 77)
	if err != nil {
		t.Fatal(err)
	}

	// A small cache cap keeps eviction churning during the soak.
	srv := httptest.NewServer(New(Options{SupportCacheEntries: 64}))
	defer srv.Close()
	base := srv.URL + "/v1/datasets/soak"
	do(t, srv.Client(), "POST", base+"?k=3&m=2&seed=1&shardrecords=60", body, http.StatusCreated, nil)

	const clients = 6
	var (
		wg       sync.WaitGroup
		pubSeq   atomic.Uint64
		opsDone  [6]atomic.Int64
		failures = make(chan error, clients)
	)
	deadline := time.Now().Add(duration)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sc := &soakClient{client: srv.Client()}
			st := model.Stream(c)
			for time.Now().Before(deadline) {
				op := st.Next()
				if err := sc.soakOp(base, body, op, &pubSeq); err != nil {
					failures <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				opsDone[op.Kind].Add(1)
			}
		}(c)
	}
	wg.Wait()
	close(failures)
	for err := range failures {
		t.Error(err)
	}
	total := int64(0)
	for k := range opsDone {
		if opsDone[k].Load() == 0 {
			t.Errorf("soak never exercised op kind %v", load.OpKind(k))
		}
		total += opsDone[k].Load()
	}
	t.Logf("soak: %d ops in %v (support=%d reconstruct=%d publish=%d delete=%d append=%d remove=%d)",
		total, duration, opsDone[load.OpSupport].Load(), opsDone[load.OpReconstruct].Load(),
		opsDone[load.OpPublish].Load(), opsDone[load.OpDelete].Load(),
		opsDone[load.OpAppend].Load(), opsDone[load.OpRemove].Load())
}

// soakClient is one soak goroutine's driver state: its HTTP client plus the
// queue of batches it appended and has not yet removed — the bookkeeping that
// lets OpRemove target records that were genuinely resident when appended.
type soakClient struct {
	client  *http.Client
	pending []string // rendered batches, oldest first
}

// soakOp executes one workload op against the server, enforcing the soak
// invariants: no 5xx ever; 404/409 are legitimate churn outcomes; support
// answers must satisfy the sandwich invariant.
func (sc *soakClient) soakOp(base, body string, op load.Op, pubSeq *atomic.Uint64) error {
	client := sc.client
	switch op.Kind {
	case load.OpSupport:
		reqBody, err := json.Marshal(SupportRequest{Itemsets: [][]dataset.Term{op.Itemset}})
		if err != nil {
			return err
		}
		status, raw, err := soakDo(client, "POST", base+"/support", string(reqBody))
		if err != nil {
			return err
		}
		if status == http.StatusNotFound {
			return nil // deleted mid-flight by churn
		}
		if status != http.StatusOK {
			return fmt.Errorf("support: status %d, body %s", status, raw)
		}
		var resp SupportResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			return fmt.Errorf("support: %w (body %s)", err, raw)
		}
		if len(resp.Estimates) != 1 {
			return fmt.Errorf("support: %d estimates", len(resp.Estimates))
		}
		e := resp.Estimates[0]
		if e.Lower > e.Upper || e.Expected < float64(e.Lower) || e.Expected > float64(e.Upper) {
			return fmt.Errorf("support %v: sandwich violated: %+v", op.Itemset, e)
		}
		return nil
	case load.OpReconstruct:
		req, err := json.Marshal(ReconstructRequest{Samples: op.Samples, Seed: op.Seed})
		if err != nil {
			return err
		}
		status, raw, err := soakDo(client, "POST", base+"/reconstruct", string(req))
		if err != nil {
			return err
		}
		if status != http.StatusOK && status != http.StatusNotFound {
			return fmt.Errorf("reconstruct: status %d, body %s", status, raw)
		}
		return nil
	case load.OpPublish:
		// Vary the seed so each republish swaps in a genuinely different
		// snapshot (new forest, new index, fresh empty cache).
		seed := 1 + pubSeq.Add(1)%5
		url := fmt.Sprintf("%s?k=3&m=2&seed=%d&shardrecords=60&replace=1", base, seed)
		status, raw, err := soakDo(client, "POST", url, body)
		if err != nil {
			return err
		}
		if status != http.StatusCreated {
			return fmt.Errorf("publish: status %d, body %s", status, raw)
		}
		return nil
	case load.OpDelete:
		status, raw, err := soakDo(client, "DELETE", base, "")
		if err != nil {
			return err
		}
		if status != http.StatusNoContent && status != http.StatusNotFound {
			return fmt.Errorf("delete: status %d, body %s", status, raw)
		}
		return nil
	case load.OpAppend:
		batch := renderRecords(op.Batch)
		status, raw, err := soakDo(client, "POST", base+"/append", batch)
		if err != nil {
			return err
		}
		switch status {
		case http.StatusOK:
			sc.pending = append(sc.pending, batch)
		case http.StatusNotFound:
			// Deleted mid-flight by churn.
		default:
			return fmt.Errorf("append: status %d, body %s", status, raw)
		}
		return nil
	case load.OpRemove:
		if len(sc.pending) == 0 {
			return nil // nothing this client appended survives to remove
		}
		batch := sc.pending[0]
		sc.pending = sc.pending[1:]
		status, raw, err := soakDo(client, "POST", base+"/remove", batch)
		if err != nil {
			return err
		}
		// 404: deleted mid-flight. 409: a full republish (replace=1) reset
		// the dataset to the original body, so this client's appended batch
		// is legitimately gone. Both are churn, not failures.
		if status != http.StatusOK && status != http.StatusNotFound && status != http.StatusConflict {
			return fmt.Errorf("remove: status %d, body %s", status, raw)
		}
		return nil
	}
	return fmt.Errorf("unknown op kind %v", op.Kind)
}

// soakDo issues one request, returning status and body; any 5xx is an
// immediate error.
func soakDo(client *http.Client, method, url, body string) (int, []byte, error) {
	req, err := http.NewRequest(method, url, bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	if resp.StatusCode >= 500 {
		return resp.StatusCode, raw, fmt.Errorf("%s %s: server error %d: %s", method, url, resp.StatusCode, raw)
	}
	return resp.StatusCode, raw, nil
}
