//go:build !unix

package server

// ignorableSyncError on non-unix platforms: there is no directory-fsync
// contract at all (Windows directory handles refuse FlushFileBuffers), so a
// failure carries no signal and every error is treated as unsupported.
func ignorableSyncError(err error) bool {
	return true
}
