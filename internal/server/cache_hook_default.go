//go:build !support_nocache

package server

// supportCacheOnDefault enables the snapshot-scoped support cache. Build
// with -tags support_nocache to route every estimate through the uncached
// estimator instead (used to cross-check that the cache is transparent).
const supportCacheOnDefault = true
