package server

import (
	"net/http"
	"sync"

	"disasso/internal/breach"
	"disasso/internal/core"
)

// The breach-audit cache follows the support cache's soundness pattern: it
// is scoped to one immutable snapshot, so invalidation is free (a republish
// installs a successor snapshot with a fresh, empty cell) and a hit can
// only ever return exactly what the miss path would have computed — the
// audit is a pure function of the immutable forest. Unlike the support
// cache there is exactly one answer per snapshot, so the cell memoizes a
// single report behind a mutex: concurrent first readers serialize on the
// one computation, every later reader returns the shared report.
type auditCell struct {
	s *auditSlot
}

type auditSlot struct {
	mu  sync.Mutex
	rep *breach.Report
}

func newAuditCell() *auditCell { return &auditCell{s: &auditSlot{}} }

// slot hands out the cell's internally synchronized state; mutation happens
// only through it, behind its mutex.
func (c *auditCell) slot() *auditSlot { return c.s }

// report returns the memoized breach audit of the forest, computing it on
// first use.
func (c *auditCell) report(anon *core.Anonymized) *breach.Report {
	s := c.slot()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rep == nil {
		s.rep = breach.Audit(anon)
	}
	return s.rep
}

// BreachResponse is the body of GET /v1/datasets/{name}/breaches: the
// dataset identity plus the full cover-problem audit report.
type BreachResponse struct {
	DatasetInfo
	Report *breach.Report `json:"report"`
}

// handleBreaches serves the cover-problem breach audit of the current
// snapshot. The report is computed from the immutable published forest on
// first request and cached for the snapshot's lifetime; a delta republish
// installs a successor snapshot whose audit is recomputed on its own first
// request. Cold (recovered) snapshots serve audits the same way — the
// forest is in the snapshot file — so audit results are byte-identical
// across restarts.
func (s *Server) handleBreaches(w http.ResponseWriter, r *http.Request) {
	sn := s.snapshotOr404(w, r)
	if sn == nil {
		return
	}
	s.writeJSON(w, http.StatusOK, BreachResponse{DatasetInfo: sn.info, Report: sn.audit.report(sn.anon)})
}
