package server

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/load"
	"disasso/internal/query"
)

// TestSupportCacheTransparent is the cache's correctness contract: for
// random datasets, anonymization configs and random workload mixes, the
// cached path answers bit-identically to the uncached estimator — which is
// itself pinned to the query_scan oracle by the internal/query property
// tests, so the chain publication → scan → index → cache is closed. The
// cache is kept tiny so the op stream churns it through constant eviction,
// and every query is re-asked to force hit-path answers.
func TestSupportCacheTransparent(t *testing.T) {
	old := supportCacheOn
	supportCacheOn = true
	defer func() { supportCacheOn = old }()

	configs := []struct {
		seed               uint64
		n, domain, maxLen  int
		k, m, cacheEntries int
	}{
		{seed: 1, n: 250, domain: 50, maxLen: 6, k: 3, m: 2, cacheEntries: 32},
		{seed: 2, n: 400, domain: 120, maxLen: 8, k: 5, m: 2, cacheEntries: 64},
		{seed: 3, n: 150, domain: 30, maxLen: 4, k: 2, m: 3, cacheEntries: 16},
	}
	mixes := []string{
		"singleton zipf=1.4",
		"itemset min=2 max=4",
		"singleton weight=3 zipf=0\nitemset weight=2 min=1 max=3",
	}
	for ci, cfg := range configs {
		rng := rand.New(rand.NewPCG(cfg.seed, 0xCAC4E))
		var records []dataset.Record
		for i := 0; i < cfg.n; i++ {
			terms := make([]dataset.Term, 1+rng.IntN(cfg.maxLen))
			for j := range terms {
				terms[j] = dataset.Term(rng.IntN(cfg.domain))
			}
			records = append(records, dataset.NewRecord(terms...))
		}
		a, err := core.Anonymize(dataset.FromRecords(records), core.Options{K: cfg.k, M: cfg.m, Seed: cfg.seed})
		if err != nil {
			t.Fatal(err)
		}
		sn := newSnapshot("t", a, false, core.Options{}, cfg.cacheEntries)
		if sn.cache == nil {
			t.Fatalf("config %d: cache not built for %d entries", ci, cfg.cacheEntries)
		}
		uncached := query.NewEstimator(a)
		for mi, mix := range mixes {
			spec, err := load.ParseSpec(mix)
			if err != nil {
				t.Fatal(err)
			}
			model, err := load.NewModel(a, spec, cfg.seed*31+uint64(mi))
			if err != nil {
				t.Fatal(err)
			}
			st := model.Stream(0)
			var asked []dataset.Record
			for i := 0; i < 600; i++ {
				asked = append(asked, st.Next().Itemset)
			}
			// Two passes: the second re-asks every itemset so answers come
			// off the hit path wherever the entry survived eviction.
			for pass := 0; pass < 2; pass++ {
				for i, itemset := range asked {
					got := sn.support(itemset)
					want := uncached.Support(itemset)
					if got != want {
						t.Fatalf("config %d mix %d pass %d op %d: cached %+v != uncached %+v for %v",
							ci, mi, pass, i, got, want, itemset)
					}
				}
			}
			if n := sn.cache.len(); n > cfg.cacheEntries {
				t.Fatalf("config %d mix %d: cache holds %d entries, cap %d", ci, mi, n, cfg.cacheEntries)
			}
		}
	}
}

// TestSupportCacheDisabled: the hook and the nil cache both bypass cleanly.
func TestSupportCacheDisabled(t *testing.T) {
	a, itemsets := cacheBenchPublication(t, 200, 40)
	// Non-positive caps mean "no cache at all"...
	for _, entries := range []int{-1, 0} {
		if sn := newSnapshot("t", a, false, core.Options{}, entries); sn.cache != nil {
			t.Errorf("newSnapshot(cacheEntries=%d) built a cache", entries)
		}
	}
	// ...while a small positive cap rounds up to one entry per shard
	// rather than silently disabling.
	if sn := newSnapshot("t", a, false, core.Options{}, cacheShards-1); sn.cache == nil {
		t.Errorf("newSnapshot(cacheEntries=%d) disabled the cache", cacheShards-1)
	}
	sn := newSnapshot("t", a, false, core.Options{}, 1024)
	old := supportCacheOn
	supportCacheOn = false
	defer func() { supportCacheOn = old }()
	for _, s := range itemsets {
		sn.support(s)
	}
	if n := sn.cache.len(); n != 0 {
		t.Errorf("hook off, but the cache filled %d entries", n)
	}
}

// TestSupportCacheConcurrent hammers one snapshot's cache from many
// goroutines over a key set far exceeding the cap, so gets, puts and clock
// evictions race; run under -race this is the cache's synchronization
// proof, and every answer must still be bit-identical to the uncached
// estimator.
func TestSupportCacheConcurrent(t *testing.T) {
	old := supportCacheOn
	supportCacheOn = true
	defer func() { supportCacheOn = old }()

	a, _ := cacheBenchPublication(t, 400, 80)
	sn := newSnapshot("t", a, false, core.Options{}, 64)
	uncached := query.NewEstimator(a)
	spec, err := load.ParseSpec("singleton weight=2 zipf=1.2\nitemset weight=1 min=2 max=3")
	if err != nil {
		t.Fatal(err)
	}
	model, err := load.NewModel(a, spec, 99)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := model.Stream(c)
			for i := 0; i < 2000; i++ {
				itemset := st.Next().Itemset
				if got, want := sn.support(itemset), uncached.Support(itemset); got != want {
					errc <- fmt.Errorf("client %d op %d: cached %+v != uncached %+v", c, i, got, want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if n := sn.cache.len(); n > 64 {
		t.Errorf("cache exceeded its cap: %d entries", n)
	}
}

// cacheBenchPublication builds a deterministic publication plus a query set
// for the cache tests and benchmarks.
func cacheBenchPublication(tb testing.TB, n, domain int) (*core.Anonymized, []dataset.Record) {
	tb.Helper()
	rng := rand.New(rand.NewPCG(77, 0xBE7C4))
	var records []dataset.Record
	for i := 0; i < n; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(8))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(domain))
		}
		records = append(records, dataset.NewRecord(terms...))
	}
	a, err := core.Anonymize(dataset.FromRecords(records), core.Options{K: 3, M: 2, Seed: 77})
	if err != nil {
		tb.Fatal(err)
	}
	spec, err := load.ParseSpec("singleton weight=3 zipf=1.3\nitemset weight=1 min=2 max=3")
	if err != nil {
		tb.Fatal(err)
	}
	model, err := load.NewModel(a, spec, 7)
	if err != nil {
		tb.Fatal(err)
	}
	st := model.Stream(0)
	itemsets := make([]dataset.Record, 4096)
	for i := range itemsets {
		itemsets[i] = st.Next().Itemset
	}
	return a, itemsets
}

// BenchmarkServedSupportCached / Uncached measure the snapshot-level
// difference the cache makes on a Zipf repeat-heavy mix (the HTTP-level
// counterpart is cmd/loadbench's cache on/off run archived in
// BENCH_PR5.json).
func BenchmarkServedSupportCached(b *testing.B) {
	old := supportCacheOn
	supportCacheOn = true
	defer func() { supportCacheOn = old }()
	a, itemsets := cacheBenchPublication(b, 2000, 300)
	sn := newSnapshot("b", a, false, core.Options{}, defaultCacheEntries)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn.support(itemsets[i%len(itemsets)])
	}
}

func BenchmarkServedSupportUncached(b *testing.B) {
	old := supportCacheOn
	supportCacheOn = false
	defer func() { supportCacheOn = old }()
	a, itemsets := cacheBenchPublication(b, 2000, 300)
	sn := newSnapshot("b", a, false, core.Options{}, defaultCacheEntries)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sn.support(itemsets[i%len(itemsets)])
	}
}
