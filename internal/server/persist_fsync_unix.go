//go:build unix

package server

import (
	"errors"
	"syscall"
)

// ignorableSyncError reports whether a directory-fsync failure means the
// filesystem does not SUPPORT the operation rather than that it failed:
// EINVAL and ENOTSUP/EOPNOTSUPP are how kernels answer fsync on descriptors
// the filesystem will not sync (many network and FUSE mounts). Everything
// else — EIO above all — is a real durability problem worth logging.
func ignorableSyncError(err error) bool {
	return errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.EOPNOTSUPP)
}
