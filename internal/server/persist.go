package server

import (
	"bufio"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/query"
	"disasso/internal/snapfile"
)

// artifactPath is where a dataset's snapshot file lives. Names are validated
// against nameRe before any handler runs, so they are safe path components.
func (s *Server) artifactPath(name string) string {
	return filepath.Join(s.opts.DataDir, name+".snap")
}

// persist writes the snapshot's file under DataDir, atomically: the bytes go
// to a fresh temp file in the same directory, are fsynced, and only then
// renamed over the final name, so a crash at any point leaves either the old
// artifact or the new one — never a torn file under the servable name (a
// leftover *.tmp is swept by Recover). A no-op without a DataDir.
func (s *Server) persist(sn *snapshot) error {
	if s.opts.DataDir == "" {
		return nil
	}
	var original *dataset.Dataset
	if sn.original != nil {
		var err error
		if original, err = sn.original(); err != nil {
			return err
		}
	}
	c := snapfile.Contents{
		Meta: snapfile.Meta{
			Name:         sn.info.Name,
			K:            sn.info.K,
			M:            sn.info.M,
			Records:      sn.info.Records,
			Terms:        sn.info.Terms,
			Clusters:     sn.info.Clusters,
			Streamed:     sn.info.Streamed,
			Version:      sn.info.Version,
			ShardRecords: sn.info.ShardRecords,
			Opts:         sn.opts,
			Summary:      sn.summary,
		},
		Forest:   sn.anon,
		Index:    sn.est.Index(),
		Singles:  sn.est.Singles(),
		Original: original,
	}

	f, err := os.CreateTemp(s.opts.DataDir, sn.info.Name+"-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	bw := bufio.NewWriter(f)
	if err := c.Write(bw); err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.artifactPath(sn.info.Name))
	}
	if err != nil {
		_ = os.Remove(tmp) // best-effort cleanup; Recover sweeps survivors
		return err
	}
	// The artifact itself is durable (fsynced before the rename); a failed
	// directory sync only risks the rename after a crash, so it is logged
	// rather than failing a publish whose data is safely on disk.
	if err := syncDir(s.opts.DataDir); err != nil {
		s.logf("disassod: persisting %q: %v", sn.info.Name, err)
	}
	return nil
}

// removeArtifact deletes a dataset's snapshot file; a file that was never
// persisted (or a server without a DataDir) is not an error.
func (s *Server) removeArtifact(name string) error {
	if s.opts.DataDir == "" {
		return nil
	}
	if err := os.Remove(s.artifactPath(name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	if err := syncDir(s.opts.DataDir); err != nil {
		s.logf("disassod: deleting snapshot file of %q: %v", name, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed (or just-removed) entry is
// durable. A filesystem REFUSING directory fsync (EINVAL/ENOTSUP — common on
// network and FUSE mounts, which offer nothing stronger) is not an error:
// the rename already happened and there is no better call to make. Anything
// else — an I/O error actually failing the sync — is returned so callers
// log it instead of silently losing the durability guarantee.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("opening %s for directory sync: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr // read-only descriptor; a Close failure is still anomalous
	}
	if err != nil && !ignorableSyncError(err) {
		return fmt.Errorf("syncing directory %s: %w", dir, err)
	}
	return nil
}

// SkippedFile is one file Recover found under DataDir but did not load.
type SkippedFile struct {
	File   string `json:"file"`
	Reason string `json:"reason"`
}

// RecoveryReport says what a registry recovery scan did: which datasets are
// serving again and which files were passed over (with why), so an operator
// sees corruption or leftovers instead of silently missing data.
type RecoveryReport struct {
	Loaded  []string      `json:"loaded"`
	Skipped []SkippedFile `json:"skipped"`
}

// Recover scans DataDir and registers every valid snapshot file, in O(files)
// with zero anonymization or index-construction work: each file is opened
// (memory-mapped where possible), CRC-verified, and served as-is. Damaged
// files and leftover temp files are skipped and reported, never fatal — a
// single bad artifact must not keep the other datasets down. Recovery of a
// name already registered in this server is skipped too, so Recover is safe
// to call at any time, not only on an empty registry.
func (s *Server) Recover() (RecoveryReport, error) {
	var rep RecoveryReport
	if s.opts.DataDir == "" {
		return rep, nil
	}
	entries, err := os.ReadDir(s.opts.DataDir)
	if err != nil {
		return rep, err
	}
	for _, e := range entries { // ReadDir sorts by name: deterministic order
		if e.IsDir() {
			continue
		}
		fname := e.Name()
		path := filepath.Join(s.opts.DataDir, fname)
		if strings.HasSuffix(fname, ".tmp") {
			// An interrupted persist: the rename never happened, so the
			// servable artifact (if any) is intact and this is garbage.
			reason := "interrupted write; temp file removed"
			if err := os.Remove(path); err != nil {
				reason = fmt.Sprintf("interrupted write; removing failed: %v", err)
			}
			rep.Skipped = append(rep.Skipped, SkippedFile{File: fname, Reason: reason})
			continue
		}
		name, ok := strings.CutSuffix(fname, ".snap")
		if !ok {
			rep.Skipped = append(rep.Skipped, SkippedFile{File: fname, Reason: "not a snapshot file"})
			continue
		}
		if !nameRe.MatchString(name) {
			rep.Skipped = append(rep.Skipped, SkippedFile{File: fname, Reason: "invalid dataset name"})
			continue
		}
		f, err := snapfile.Open(path)
		if err != nil {
			rep.Skipped = append(rep.Skipped, SkippedFile{File: fname, Reason: err.Error()})
			continue
		}
		if got := f.Meta().Name; got != name {
			rep.Skipped = append(rep.Skipped, SkippedFile{File: fname, Reason: fmt.Sprintf("metadata names %q", got)})
			_ = f.Close() // no views escaped; safe to unmap immediately
			continue
		}
		sn := s.snapshotFromFile(f)
		l := s.lockName(name)
		_, exists := s.lookup(name)
		if !exists {
			s.mu.Lock()
			s.snapshots[name] = sn
			s.mu.Unlock()
		}
		s.unlockName(name, l)
		if exists {
			rep.Skipped = append(rep.Skipped, SkippedFile{File: fname, Reason: "dataset already registered"})
			continue
		}
		rep.Loaded = append(rep.Loaded, name)
	}
	return rep, nil
}

// snapshotFromFile assembles a cold serving snapshot over an opened snapshot
// file: the estimator's singleton table and the index slabs come straight
// from the file (zero-copy when mapped), the per-cluster chunk postings and
// the original records stay lazy, and no anonymization state is carried —
// the first delta against the name rehydrates it (see rehydrate).
func (s *Server) snapshotFromFile(f *snapfile.Snapshot) *snapshot {
	meta := f.Meta()
	sn := &snapshot{
		cache: newSupportCache(s.opts.SupportCacheEntries),
		audit: newAuditCell(),
		info: DatasetInfo{
			Name: meta.Name, K: meta.K, M: meta.M,
			Records:      meta.Records,
			Terms:        meta.Terms,
			Clusters:     meta.Clusters,
			Streamed:     meta.Streamed,
			Version:      meta.Version,
			ShardRecords: meta.ShardRecords,
		},
		anon:    f.Forest(),
		est:     query.NewRecoveredEstimator(f.Forest(), f.Index(), f.Singles()),
		summary: meta.Summary,
		opts:    meta.Opts,
		cold:    true,
		mapped:  f.Mapped(),
	}
	if f.HasOriginal() {
		sn.original = f.Original
	}
	return sn
}

// rehydrate rebuilds the delta-republish state of a recovered snapshot by
// re-running the stateful pipeline over the persisted original records with
// the persisted options. The republish determinism guarantee (Apply ≡
// from-scratch anonymize, byte for byte) is what makes this sound: the
// rebuilt state describes exactly the publication the snapshot file holds.
func (s *Server) rehydrate(sn *snapshot) (*core.RepubState, []*query.EstimatorPart, error) {
	d, err := sn.original()
	if err != nil {
		return nil, nil, err
	}
	a, st, err := core.AnonymizeWithState(d, sn.opts)
	if err != nil {
		return nil, nil, err
	}
	parts := make([]*query.EstimatorPart, st.NumShards())
	for i := range parts {
		parts[i] = query.BuildEstimatorPart(a.K, a.M, st.ShardClusters(i))
	}
	return st, parts, nil
}
