package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/query"
)

// testDataset renders a random dataset in the upload text format and
// returns it alongside the parsed form.
func testDataset(t *testing.T, seed uint64, n, domain, maxLen int) (string, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed*31+7))
	var b strings.Builder
	var records []dataset.Record
	for i := 0; i < n; i++ {
		terms := make([]dataset.Term, 1+rng.IntN(maxLen))
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(domain))
		}
		r := dataset.NewRecord(terms...)
		records = append(records, r)
		for j, term := range r {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", term)
		}
		b.WriteByte('\n')
	}
	return b.String(), dataset.FromRecords(records)
}

// do runs one request against the test server and decodes the JSON answer.
func do(t *testing.T, client *http.Client, method, url string, body string, status int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != status {
		t.Fatalf("%s %s: status %d, want %d; body: %s", method, url, resp.StatusCode, status, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
}

// TestServerEndToEnd drives the whole analyst session over HTTP: publish an
// uploaded dataset, query supports (cross-checked against the library
// paths), sample reconstructions (validated against the bounds), fetch
// metrics and stats, then hammer the read endpoints with concurrent
// clients — the scenario CI runs under -race.
func TestServerEndToEnd(t *testing.T) {
	text, d := testDataset(t, 3, 400, 30, 5)
	srv := httptest.NewServer(New(Options{}))
	defer srv.Close()
	client := srv.Client()

	// Publish.
	var info DatasetInfo
	do(t, client, "POST", srv.URL+"/v1/datasets/web?k=3&m=2&seed=8", text, http.StatusCreated, &info)
	if info.Name != "web" || info.K != 3 || info.M != 2 || info.Records != 400 {
		t.Fatalf("publish info = %+v", info)
	}
	if info.Streamed {
		t.Fatal("in-memory publish reported as streamed")
	}

	// The reference publication this server must agree with.
	want, err := core.Anonymize(d, core.Options{K: 3, M: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Listing and stats.
	var list ListResponse
	do(t, client, "GET", srv.URL+"/v1/datasets", "", http.StatusOK, &list)
	if len(list.Datasets) != 1 || list.Datasets[0].Name != "web" {
		t.Fatalf("list = %+v", list)
	}
	var stats StatsResponse
	do(t, client, "GET", srv.URL+"/v1/datasets/web/stats", "", http.StatusOK, &stats)
	if stats.Summary != want.Stats() {
		t.Fatalf("served summary %+v != library summary %+v", stats.Summary, want.Stats())
	}

	// Batch support estimates, cross-checked against the scan path.
	reqBody, _ := json.Marshal(SupportRequest{Itemsets: [][]dataset.Term{
		{0}, {1}, {0, 1}, {2, 5, 9}, {999}, {},
	}})
	var sup SupportResponse
	do(t, client, "POST", srv.URL+"/v1/datasets/web/support", string(reqBody), http.StatusOK, &sup)
	if len(sup.Estimates) != 6 {
		t.Fatalf("got %d estimates, want 6", len(sup.Estimates))
	}
	for _, e := range sup.Estimates {
		ref := query.Support(want, dataset.NewRecord(e.Itemset...))
		if e.Lower != ref.Lower || e.Upper != ref.Upper || e.Expected != ref.Expected {
			t.Errorf("itemset %v: served (%d, %d, %v) != library (%d, %d, %v)",
				e.Itemset, e.Lower, e.Upper, e.Expected, ref.Lower, ref.Upper, ref.Expected)
		}
		if e.Lower > e.Upper || e.Expected < float64(e.Lower) || e.Expected > float64(e.Upper) {
			t.Errorf("itemset %v: served estimate violates Lower ≤ Expected ≤ Upper: %+v", e.Itemset, e)
		}
	}

	// Single-itemset GET convenience.
	var one ItemsetEstimate
	do(t, client, "GET", srv.URL+"/v1/datasets/web/support?itemset=0,1", "", http.StatusOK, &one)
	ref := query.Support(want, dataset.NewRecord(0, 1))
	if one.Lower != ref.Lower || one.Upper != ref.Upper {
		t.Errorf("GET support = %+v, want (%d, %d)", one, ref.Lower, ref.Upper)
	}

	// Reconstruction sampling: right shape, supports within served bounds.
	var recon ReconstructResponse
	do(t, client, "POST", srv.URL+"/v1/datasets/web/reconstruct", `{"samples": 2, "seed": 5}`, http.StatusOK, &recon)
	if len(recon.Datasets) != 2 {
		t.Fatalf("got %d reconstructions, want 2", len(recon.Datasets))
	}
	for i, ds := range recon.Datasets {
		if len(ds) != 400 {
			t.Fatalf("reconstruction %d has %d records, want 400", i, len(ds))
		}
		for _, e := range sup.Estimates {
			if len(e.Itemset) == 0 {
				continue
			}
			got := 0
			itemset := dataset.NewRecord(e.Itemset...)
			for _, rec := range ds {
				if dataset.NewRecord(rec...).ContainsAll(itemset) {
					got++
				}
			}
			if got < e.Lower {
				t.Errorf("reconstruction %d: itemset %v support %d below served lower bound %d", i, e.Itemset, got, e.Lower)
			}
		}
	}

	// Metrics against the retained original.
	var met MetricsResponse
	do(t, client, "GET", srv.URL+"/v1/datasets/web/metrics?lo=0&hi=10", "", http.StatusOK, &met)
	if met.TermsLost < 0 || met.TermsLost > 1 || met.TopKDeviationLB < 0 || met.TopKDeviationLB > 1 {
		t.Errorf("metrics out of range: %+v", met)
	}
	if met.RelativeErrorLB < 0 || met.RelativeErrorLB > 2 {
		t.Errorf("re-a out of [0,2]: %+v", met)
	}

	// Concurrent clients over every read endpoint plus a concurrent
	// publish of a second dataset — the registry swap must not disturb
	// in-flight readers.
	text2, _ := testDataset(t, 9, 200, 20, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				itemset := fmt.Sprintf("%d,%d", (c+i)%30, (c*i)%30)
				var est ItemsetEstimate
				resp, err := client.Get(srv.URL + "/v1/datasets/web/support?itemset=" + itemset)
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("support status %d: %s", resp.StatusCode, raw)
					return
				}
				if err := json.Unmarshal(raw, &est); err != nil {
					errs <- err
					return
				}
				if est.Lower > est.Upper {
					errs <- fmt.Errorf("itemset %s: bounds inverted: %+v", itemset, est)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := client.Post(srv.URL+"/v1/datasets/other?k=3&m=2", "text/plain", strings.NewReader(text2))
		if err != nil {
			errs <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			errs <- fmt.Errorf("concurrent publish status %d", resp.StatusCode)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Delete and 404 afterwards.
	do(t, client, "DELETE", srv.URL+"/v1/datasets/web", "", http.StatusNoContent, nil)
	var e ErrorResponse
	do(t, client, "GET", srv.URL+"/v1/datasets/web/stats", "", http.StatusNotFound, &e)
	if e.Error == "" {
		t.Error("404 body missing error message")
	}
}

// TestServerStreamedPublish anonymizes an upload through the PR 3 streaming
// engine and checks the result serves queries identically to the in-memory
// path, while the metrics endpoint honestly reports the original as not
// retained.
func TestServerStreamedPublish(t *testing.T) {
	text, d := testDataset(t, 5, 300, 25, 4)
	srv := httptest.NewServer(New(Options{TempDir: t.TempDir()}))
	defer srv.Close()
	client := srv.Client()

	var info DatasetInfo
	do(t, client, "POST", srv.URL+"/v1/datasets/big?k=3&m=2&seed=2&stream=1&membudget=1K",
		text, http.StatusCreated, &info)
	if !info.Streamed {
		t.Fatal("streamed publish not flagged")
	}
	if info.Records != 300 {
		t.Fatalf("streamed publish saw %d records, want 300", info.Records)
	}

	// The streaming engine derives its shard cut from the budget and reports
	// it; the in-memory reference must run with the same effective options.
	want, err := core.Anonymize(d, core.Options{K: 3, M: 2, Seed: 2, MaxShardRecords: info.ShardRecords})
	if err != nil {
		t.Fatal(err)
	}
	for term := dataset.Term(0); term < 25; term++ {
		var got ItemsetEstimate
		do(t, client, "GET", fmt.Sprintf("%s/v1/datasets/big/support?itemset=%d", srv.URL, term),
			"", http.StatusOK, &got)
		ref := query.Support(want, dataset.NewRecord(term))
		if got.Lower != ref.Lower || got.Upper != ref.Upper || got.Expected != ref.Expected {
			t.Errorf("term %d: streamed-served (%d, %d, %v) != in-memory (%d, %d, %v)",
				term, got.Lower, got.Upper, got.Expected, ref.Lower, ref.Upper, ref.Expected)
		}
	}

	var e ErrorResponse
	do(t, client, "GET", srv.URL+"/v1/datasets/big/metrics", "", http.StatusConflict, &e)
	if !strings.Contains(e.Error, "not retained") {
		t.Errorf("streamed metrics error = %q", e.Error)
	}
}

// A broken spill directory is the server's fault, not the client's: the
// streamed publish must answer 500, not 400.
func TestServerStreamedPublishInternalError(t *testing.T) {
	text, _ := testDataset(t, 2, 60, 10, 3)
	srv := httptest.NewServer(New(Options{TempDir: "/nonexistent-disassod-tmpdir"}))
	defer srv.Close()
	do(t, srv.Client(), "POST", srv.URL+"/v1/datasets/x?k=3&m=2&stream=1", text,
		http.StatusInternalServerError, nil)
}

// TestServerValidation covers the error paths: bad names, bad parameters,
// conflicts, caps and oversized bodies.
func TestServerValidation(t *testing.T) {
	text, _ := testDataset(t, 1, 60, 10, 3)
	srv := httptest.NewServer(New(Options{MaxBodyBytes: 1 << 20, MaxReconstructions: 4}))
	defer srv.Close()
	client := srv.Client()

	do(t, client, "POST", srv.URL+"/v1/datasets/bad%2Fname?k=3&m=2", text, http.StatusBadRequest, nil)
	do(t, client, "POST", srv.URL+"/v1/datasets/ds?k=zap", text, http.StatusBadRequest, nil)
	do(t, client, "POST", srv.URL+"/v1/datasets/ds?k=3&m=2&stream=1&membudget=lots", text, http.StatusBadRequest, nil)
	do(t, client, "POST", srv.URL+"/v1/datasets/ds?k=1&m=2", text, http.StatusBadRequest, nil)

	do(t, client, "POST", srv.URL+"/v1/datasets/ds?k=3&m=2", text, http.StatusCreated, nil)
	do(t, client, "POST", srv.URL+"/v1/datasets/ds?k=3&m=2", text, http.StatusConflict, nil)
	// replace must be explicitly "1" — a present-but-declined replace=0
	// does not license overwriting.
	do(t, client, "POST", srv.URL+"/v1/datasets/ds?k=3&m=2&replace=0", text, http.StatusConflict, nil)
	do(t, client, "POST", srv.URL+"/v1/datasets/ds?k=3&m=2&replace=1", text, http.StatusCreated, nil)

	do(t, client, "POST", srv.URL+"/v1/datasets/ds/reconstruct", `{"samples": 99}`, http.StatusBadRequest, nil)
	do(t, client, "POST", srv.URL+"/v1/datasets/ds/reconstruct", `{"samples": 0}`, http.StatusBadRequest, nil)
	do(t, client, "POST", srv.URL+"/v1/datasets/ds/support", `{bad json`, http.StatusBadRequest, nil)
	do(t, client, "GET", srv.URL+"/v1/datasets/ds/support?itemset=1,frog", "", http.StatusBadRequest, nil)
	// A missing/mistyped itemset parameter must not answer the empty
	// itemset; negative seeds must not wrap into uint64.
	do(t, client, "GET", srv.URL+"/v1/datasets/ds/support", "", http.StatusBadRequest, nil)
	do(t, client, "GET", srv.URL+"/v1/datasets/ds/support?itemsets=1,2", "", http.StatusBadRequest, nil)
	do(t, client, "POST", srv.URL+"/v1/datasets/neg?k=3&m=2&seed=-1", text, http.StatusBadRequest, nil)
	do(t, client, "POST", srv.URL+"/v1/datasets/big64?k=3&m=2&seed=9223372036854775809", text, http.StatusCreated, nil)

	// Metrics-endpoint work caps: unbounded mining parameters are rejected.
	do(t, client, "GET", srv.URL+"/v1/datasets/ds/metrics?topk=1000000000", "", http.StatusBadRequest, nil)
	do(t, client, "GET", srv.URL+"/v1/datasets/ds/metrics?size=30", "", http.StatusBadRequest, nil)
	do(t, client, "GET", srv.URL+"/v1/datasets/ds/metrics?lo=0&hi=5000", "", http.StatusBadRequest, nil)
	do(t, client, "GET", srv.URL+"/v1/datasets/ds/metrics?k=0", "", http.StatusBadRequest, nil)
	// hi-lo must not wrap past the width cap.
	do(t, client, "GET", srv.URL+"/v1/datasets/ds/metrics?lo=-9000000000000000000&hi=9000000000000000000", "", http.StatusBadRequest, nil)
	do(t, client, "GET", srv.URL+"/v1/datasets/ds/metrics?lo=10&hi=2", "", http.StatusBadRequest, nil)

	// An explicit in-memory shard cut is reported back like a streamed one.
	var cut DatasetInfo
	do(t, client, "POST", srv.URL+"/v1/datasets/cut?k=3&m=2&shardrecords=40", text, http.StatusCreated, &cut)
	if cut.ShardRecords != 40 {
		t.Errorf("explicit shardrecords=40 reported as %d", cut.ShardRecords)
	}
	do(t, client, "DELETE", srv.URL+"/v1/datasets/ghost", "", http.StatusNotFound, nil)
	do(t, client, "GET", srv.URL+"/v1/datasets/ghost/metrics", "", http.StatusNotFound, nil)

	big := strings.Repeat("1 2 3\n", 1<<18) // ~1.5 MiB > 1 MiB cap
	resp, err := client.Post(srv.URL+"/v1/datasets/huge?k=3&m=2", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: status %d, want 413", resp.StatusCode)
	}

	var health map[string]string
	do(t, client, "GET", srv.URL+"/healthz", "", http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}
}
