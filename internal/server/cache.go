package server

import (
	"encoding/binary"
	"hash/maphash"
	"sync"

	"disasso/internal/dataset"
	"disasso/internal/query"
)

// supportCacheOn routes snapshot support estimates through the per-snapshot
// cache. Tests flip it to run cache-off; building with -tags support_nocache
// flips the default so the whole suite (including the e2e soak) runs
// uncached — the same oracle device as internal/query's query_scan and
// internal/core's refine_replan tags.
var supportCacheOn = supportCacheOnDefault

// supportCache memoizes SupportResult-identical estimates for one snapshot.
// Scoping the cache to the snapshot is what makes invalidation free: a
// republish builds a new snapshot (with a fresh, empty cache) and swaps the
// registry pointer, and the old snapshot — cache included — is unreachable
// the moment in-flight readers drain. There is no cross-snapshot state to
// flush and no version check on the read path.
//
// Transparency is structural: the estimator is a pure function of the
// immutable snapshot, so a hit can only ever return exactly what the miss
// path would have computed (the cached-vs-uncached property test and the
// support_nocache CI build enforce this bit for bit).
//
// The cache is sharded to keep concurrent readers from serializing on one
// lock, and each shard is capped by entries with clock (second-chance)
// eviction: a hit sets the entry's referenced bit, eviction sweeps the
// shard's slot ring clearing bits until it finds an unreferenced victim.
// Repeat-heavy (Zipf) mixes therefore keep their head entries resident
// without any per-hit list surgery an LRU would need.
type supportCache struct {
	seed   maphash.Seed
	shards []cacheShard
	mask   uint64
}

type cacheShard struct {
	mu   sync.Mutex
	m    map[string]int // key -> slot
	ring []cacheSlot    // capped at maxSlots
	hand int
	max  int
}

type cacheSlot struct {
	key string
	est query.Estimate
	ref bool
}

const (
	cacheShards = 16
	// defaultCacheEntries is the Options.SupportCacheEntries default: small
	// enough to be noise next to the snapshot itself (an entry is ~64 bytes,
	// so the default is ~0.5 MiB per snapshot at worst), large enough to
	// hold the whole hot head of a skewed query mix.
	defaultCacheEntries = 8192
)

// newSupportCache returns a cache bounded to roughly maxEntries, or nil —
// the disabled state — when maxEntries ≤ 0. Positive caps below one entry
// per shard round up to one (an operator asking for a small cache gets a
// small cache, not a silently disabled one).
func newSupportCache(maxEntries int) *supportCache {
	if maxEntries <= 0 {
		return nil
	}
	c := &supportCache{
		seed:   maphash.MakeSeed(),
		shards: make([]cacheShard, cacheShards),
		mask:   cacheShards - 1,
	}
	per := maxEntries / cacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].max = per
		c.shards[i].m = make(map[string]int, per)
	}
	return c
}

// cacheKey encodes a normalized itemset as the cache's string key: fixed
// 4-byte little-endian terms, so distinct itemsets cannot collide.
func cacheKey(s dataset.Record) string {
	b := make([]byte, 4*len(s))
	for i, t := range s {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(t))
	}
	return string(b)
}

func (c *supportCache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)&c.mask]
}

// get returns the cached estimate for the key, marking the entry recently
// used.
func (c *supportCache) get(key string) (query.Estimate, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	slot, ok := sh.m[key]
	if !ok {
		return query.Estimate{}, false
	}
	sh.ring[slot].ref = true
	return sh.ring[slot].est, true
}

// put inserts the estimate, clock-evicting one resident entry when the
// shard is full. Racing puts of the same key are idempotent (both write the
// same pure-function result).
func (c *supportCache) put(key string, est query.Estimate) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[key]; ok {
		return
	}
	if len(sh.ring) < sh.max {
		sh.m[key] = len(sh.ring)
		sh.ring = append(sh.ring, cacheSlot{key: key, est: est})
		return
	}
	// Second-chance sweep: clear referenced bits until an unreferenced slot
	// comes up. Bounded: after one full lap every bit is clear.
	for sh.ring[sh.hand].ref {
		sh.ring[sh.hand].ref = false
		sh.hand = (sh.hand + 1) % len(sh.ring)
	}
	victim := sh.hand
	sh.hand = (sh.hand + 1) % len(sh.ring)
	delete(sh.m, sh.ring[victim].key)
	sh.m[key] = victim
	sh.ring[victim] = cacheSlot{key: key, est: est}
}

// len reports the resident entries across shards (for tests and stats).
func (c *supportCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.ring)
		sh.mu.Unlock()
	}
	return n
}

// support answers one itemset through the snapshot's cache (when present
// and enabled), falling back to the immutable estimator. The itemset must
// be normalized.
func (sn *snapshot) support(itemset dataset.Record) query.Estimate {
	if sn.cache == nil || !supportCacheOn {
		return sn.est.Support(itemset)
	}
	key := cacheKey(itemset)
	if est, ok := sn.cache.get(key); ok {
		return est
	}
	est := sn.est.Support(itemset)
	sn.cache.put(key, est)
	return est
}
