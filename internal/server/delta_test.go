package server

import (
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/query"
)

// renderRecords writes records in the upload/delta text format.
func renderRecords(records []dataset.Record) string {
	var b strings.Builder
	for _, r := range records {
		for j, term := range r {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", term)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// removeFirst drops the first occurrence of each removed record from the
// logical list — the bag semantics the delta endpoints promise.
func removeFirst(t *testing.T, logical []dataset.Record, removes []dataset.Record) []dataset.Record {
	t.Helper()
	out := make([]dataset.Record, 0, len(logical))
	out = append(out, logical...)
	for _, rm := range removes {
		found := false
		for i, r := range out {
			if r.Equal(rm) {
				out = append(out[:i], out[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("test generator removed absent record %v", rm)
		}
	}
	return out
}

// checkServedAgainst cross-checks the served dataset against a from-scratch
// publication of the expected logical records: summary plus a battery of
// support queries must agree bit for bit.
func checkServedAgainst(t *testing.T, client *http.Client, base string, logical []dataset.Record, opts core.Options, tag string) {
	t.Helper()
	want, err := core.Anonymize(dataset.FromRecords(logical), opts)
	if err != nil {
		t.Fatalf("%s: reference publish: %v", tag, err)
	}
	var stats StatsResponse
	do(t, client, "GET", base+"/stats", "", http.StatusOK, &stats)
	if stats.Summary != want.Stats() {
		t.Fatalf("%s: served summary %+v != from-scratch summary %+v", tag, stats.Summary, want.Stats())
	}
	rng := rand.New(rand.NewPCG(77, 5))
	itemsets := make([]dataset.Record, 0, 40)
	for term := dataset.Term(0); term < 12; term++ {
		itemsets = append(itemsets, dataset.NewRecord(term))
	}
	for q := 0; q < 25; q++ {
		terms := make([]dataset.Term, 2+q%2)
		for j := range terms {
			terms[j] = dataset.Term(rng.IntN(30))
		}
		itemsets = append(itemsets, dataset.NewRecord(terms...))
	}
	for _, s := range itemsets {
		parts := make([]string, len(s))
		for i, term := range s {
			parts[i] = fmt.Sprintf("%d", term)
		}
		var got ItemsetEstimate
		do(t, client, "GET", base+"/support?itemset="+strings.Join(parts, ","), "", http.StatusOK, &got)
		ref := query.Support(want, s)
		if got.Lower != ref.Lower || got.Upper != ref.Upper || got.Expected != ref.Expected {
			t.Fatalf("%s: itemset %v: served (%d, %d, %v) != from-scratch (%d, %d, %v)",
				tag, s, got.Lower, got.Upper, got.Expected, ref.Lower, ref.Upper, ref.Expected)
		}
	}
}

// TestServerDeltaRepublish drives append/remove republishes over HTTP and
// proves each resulting version serves exactly what a from-scratch publish of
// the same logical dataset would: identical summaries and bit-identical
// support estimates. It also checks the version chain and that small deltas
// actually take the incremental path (dirty shards < total shards).
func TestServerDeltaRepublish(t *testing.T) {
	text, d := testDataset(t, 11, 400, 30, 5)
	logical := d.Records
	opts := core.Options{K: 3, M: 2, Seed: 8, MaxShardRecords: 100}
	srv := httptest.NewServer(New(Options{}))
	defer srv.Close()
	client := srv.Client()
	base := srv.URL + "/v1/datasets/churn"

	var info DatasetInfo
	do(t, client, "POST", base+"?k=3&m=2&seed=8&shardrecords=100", text, http.StatusCreated, &info)
	if info.Version != 1 {
		t.Fatalf("initial publish version = %d, want 1", info.Version)
	}
	checkServedAgainst(t, client, base, logical, opts, "initial")

	rng := rand.New(rand.NewPCG(11, 99))
	wantVersion := 1
	sawIncremental := false
	allFullRepublish := true
	for step := 0; step < 4; step++ {
		// Remove a few random survivors.
		nRemove := 3 + rng.IntN(5)
		picked := map[int]bool{}
		var removes []dataset.Record
		for len(removes) < nRemove {
			i := rng.IntN(len(logical))
			if picked[i] {
				continue
			}
			picked[i] = true
			removes = append(removes, logical[i])
		}
		var dr DeltaResponse
		do(t, client, "POST", base+"/remove", renderRecords(removes), http.StatusOK, &dr)
		logical = removeFirst(t, logical, removes)
		wantVersion++
		if dr.Version != wantVersion {
			t.Fatalf("step %d remove: version = %d, want %d", step, dr.Version, wantVersion)
		}
		if dr.Removed != len(removes) || dr.Appended != 0 {
			t.Fatalf("step %d remove: stats %+v", step, dr)
		}
		if !dr.FullRepublish {
			allFullRepublish = false
			if dr.DirtyShards < dr.TotalShards {
				sawIncremental = true
			}
		}
		checkServedAgainst(t, client, base, logical, opts, fmt.Sprintf("step %d remove", step))

		// Append a few fresh records (wider span every third step, so new
		// terms enter the universe mid-chain).
		span := 30
		if step%3 == 2 {
			span = 40
		}
		nAppend := 3 + rng.IntN(5)
		var appends []dataset.Record
		for i := 0; i < nAppend; i++ {
			terms := make([]dataset.Term, 1+rng.IntN(4))
			for j := range terms {
				terms[j] = dataset.Term(rng.IntN(span))
			}
			appends = append(appends, dataset.NewRecord(terms...))
		}
		do(t, client, "POST", base+"/append", renderRecords(appends), http.StatusOK, &dr)
		logical = append(logical, appends...)
		wantVersion++
		if dr.Version != wantVersion {
			t.Fatalf("step %d append: version = %d, want %d", step, dr.Version, wantVersion)
		}
		if dr.Appended != len(appends) || dr.Removed != 0 {
			t.Fatalf("step %d append: stats %+v", step, dr)
		}
		if dr.Records != len(logical) {
			t.Fatalf("step %d append: served %d records, want %d", step, dr.Records, len(logical))
		}
		if !dr.FullRepublish {
			allFullRepublish = false
			if dr.DirtyShards < dr.TotalShards {
				sawIncremental = true
			}
		}
		checkServedAgainst(t, client, base, logical, opts, fmt.Sprintf("step %d append", step))
	}
	// Under the republish_scratch build tag every delta honestly reports
	// FullRepublish, so the incremental-path assertion is vacuous by design;
	// any other all-fallback run is a regression.
	if !sawIncremental && !allFullRepublish {
		t.Error("no delta ever took the incremental path (dirty < total); the test exercises nothing")
	}
}

// TestServerDeltaErrors covers the delta error surface: unknown datasets,
// streamed snapshots without retained records, removals of absent records
// (state must survive untouched), and malformed bodies.
func TestServerDeltaErrors(t *testing.T) {
	text, _ := testDataset(t, 4, 120, 15, 4)
	srv := httptest.NewServer(New(Options{TempDir: t.TempDir()}))
	defer srv.Close()
	client := srv.Client()

	do(t, client, "POST", srv.URL+"/v1/datasets/ghost/append", "1 2\n", http.StatusNotFound, nil)
	do(t, client, "POST", srv.URL+"/v1/datasets/ghost/remove", "1 2\n", http.StatusNotFound, nil)

	// Streamed publishes retain no records, so deltas are impossible — and
	// the error says how to get them.
	do(t, client, "POST", srv.URL+"/v1/datasets/str?k=3&m=2&stream=1&membudget=1K", text, http.StatusCreated, nil)
	var e ErrorResponse
	do(t, client, "POST", srv.URL+"/v1/datasets/str/append", "1 2\n", http.StatusConflict, &e)
	if !strings.Contains(e.Error, "not retained") {
		t.Errorf("streamed append error = %q", e.Error)
	}

	do(t, client, "POST", srv.URL+"/v1/datasets/ds?k=3&m=2&shardrecords=60", text, http.StatusCreated, nil)
	var before StatsResponse
	do(t, client, "GET", srv.URL+"/v1/datasets/ds/stats", "", http.StatusOK, &before)

	// Absent removal: 409, and the whole delta is rejected atomically.
	do(t, client, "POST", srv.URL+"/v1/datasets/ds/remove", "7 11 13 14\n", http.StatusConflict, &e)
	if !strings.Contains(e.Error, "not present") {
		t.Errorf("absent-removal error = %q", e.Error)
	}
	var after StatsResponse
	do(t, client, "GET", srv.URL+"/v1/datasets/ds/stats", "", http.StatusOK, &after)
	if after.Version != before.Version || after.Summary != before.Summary {
		t.Error("failed removal mutated the snapshot")
	}

	// Malformed bodies.
	do(t, client, "POST", srv.URL+"/v1/datasets/ds/append", "", http.StatusBadRequest, nil)
	do(t, client, "POST", srv.URL+"/v1/datasets/ds/append", "1 frog\n", http.StatusBadRequest, nil)
	do(t, client, "POST", srv.URL+"/v1/datasets/ds/remove", "\n\n", http.StatusBadRequest, nil)
}
