package server

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"testing"

	"disasso/internal/dataset"
)

// TestBreachAuditSurvivesChurn drives append/remove republishes against a
// SafeDisassociation dataset and requires every served version to audit
// breach-free: the repair is part of the publish pipeline, so deltas — which
// re-anonymize dirty shards through the same path — must never reintroduce a
// cover-problem breach. A plain publication of the same data establishes the
// property is not vacuous (it does breach), and repeated audit reads must be
// byte-identical (the per-snapshot cache is transparent).
func TestBreachAuditSurvivesChurn(t *testing.T) {
	text, d := testDataset(t, 31, 240, 12, 5)
	logical := d.Records
	srv := httptest.NewServer(New(Options{}))
	defer srv.Close()
	client := srv.Client()

	// The unrepaired control: same records, no safe=1.
	do(t, client, "POST", srv.URL+"/v1/datasets/plain?k=3&m=2&seed=9&shardrecords=80", text, http.StatusCreated, nil)
	var plain BreachResponse
	do(t, client, "GET", srv.URL+"/v1/datasets/plain/breaches", "", http.StatusOK, &plain)
	if plain.Report == nil || plain.Report.Clean() {
		t.Fatalf("plain publication audits clean; the churn test would prove nothing (report %+v)", plain.Report)
	}

	base := srv.URL + "/v1/datasets/safe"
	var info DatasetInfo
	do(t, client, "POST", base+"?k=3&m=2&seed=9&shardrecords=80&safe=1", text, http.StatusCreated, &info)
	if info.Version != 1 {
		t.Fatalf("initial publish version = %d, want 1", info.Version)
	}

	auditClean := func(tag string, wantVersion int) {
		t.Helper()
		raw1 := rawDo(t, client, "GET", base+"/breaches", "", http.StatusOK)
		raw2 := rawDo(t, client, "GET", base+"/breaches", "", http.StatusOK)
		if !bytes.Equal(raw1, raw2) {
			t.Fatalf("%s: repeated audit reads differ:\n%s\n%s", tag, raw1, raw2)
		}
		var br BreachResponse
		do(t, client, "GET", base+"/breaches", "", http.StatusOK, &br)
		if br.Version != wantVersion {
			t.Fatalf("%s: audit served version %d, want %d", tag, br.Version, wantVersion)
		}
		if br.Report == nil || !br.Report.Clean() {
			t.Fatalf("%s: safe dataset has %d breaches (max P=%v)", tag, len(br.Report.Findings), br.Report.MaxProbability)
		}
		if br.Report.Clusters == 0 {
			t.Fatalf("%s: audit covered zero clusters", tag)
		}
	}
	auditClean("initial", 1)

	rng := rand.New(rand.NewPCG(31, 7))
	wantVersion := 1
	for step := 0; step < 4; step++ {
		nRemove := 2 + rng.IntN(4)
		picked := map[int]bool{}
		var removes []dataset.Record
		for len(removes) < nRemove {
			i := rng.IntN(len(logical))
			if picked[i] {
				continue
			}
			picked[i] = true
			removes = append(removes, logical[i])
		}
		var dr DeltaResponse
		do(t, client, "POST", base+"/remove", renderRecords(removes), http.StatusOK, &dr)
		logical = removeFirst(t, logical, removes)
		wantVersion++
		if dr.Version != wantVersion {
			t.Fatalf("step %d remove: version = %d, want %d", step, dr.Version, wantVersion)
		}
		auditClean(fmt.Sprintf("step %d remove", step), wantVersion)

		nAppend := 2 + rng.IntN(4)
		var appends []dataset.Record
		for i := 0; i < nAppend; i++ {
			terms := make([]dataset.Term, 1+rng.IntN(4))
			for j := range terms {
				terms[j] = dataset.Term(rng.IntN(12))
			}
			appends = append(appends, dataset.NewRecord(terms...))
		}
		do(t, client, "POST", base+"/append", renderRecords(appends), http.StatusOK, &dr)
		logical = append(logical, appends...)
		wantVersion++
		if dr.Version != wantVersion {
			t.Fatalf("step %d append: version = %d, want %d", step, dr.Version, wantVersion)
		}
		auditClean(fmt.Sprintf("step %d append", step), wantVersion)
	}

	// Unknown datasets 404 on the audit endpoint like every other read.
	do(t, client, "GET", srv.URL+"/v1/datasets/ghost/breaches", "", http.StatusNotFound, nil)
}
