package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// rawDo fetches one URL and returns the exact response bytes, for the
// byte-identity assertions a decoded comparison would weaken.
func rawDo(t *testing.T, client *http.Client, method, url, body string, status int) []byte {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != status {
		t.Fatalf("%s %s: status %d, want %d; body: %s", method, url, resp.StatusCode, status, raw)
	}
	return raw
}

const persistSupportBody = `{"itemsets": [[3], [7, 12], [1, 4, 9], [2, 5]]}`

// readEndpoints captures the responses whose bytes must survive a restart.
func readEndpoints(t *testing.T, ts *httptest.Server, name string) map[string][]byte {
	t.Helper()
	client := ts.Client()
	return map[string][]byte{
		"stats":      rawDo(t, client, "GET", ts.URL+"/v1/datasets/"+name+"/stats", "", http.StatusOK),
		"support":    rawDo(t, client, "POST", ts.URL+"/v1/datasets/"+name+"/support", persistSupportBody, http.StatusOK),
		"supportGet": rawDo(t, client, "GET", ts.URL+"/v1/datasets/"+name+"/support?itemset=3,17", "", http.StatusOK),
		"metrics":    rawDo(t, client, "GET", ts.URL+"/v1/datasets/"+name+"/metrics?lo=0&hi=30", "", http.StatusOK),
		"breaches":   rawDo(t, client, "GET", ts.URL+"/v1/datasets/"+name+"/breaches", "", http.StatusOK),
	}
}

// TestRestartByteIdentical is the end-to-end restart contract: publish and
// delta-update a dataset against a persistent server, restart into a fresh
// Server over the same data directory, and require (a) recovery performed
// zero anonymization work, (b) every read endpoint answers byte-identically,
// and (c) the recovered dataset still accepts deltas.
func TestRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	text, _ := testDataset(t, 11, 400, 40, 6)
	deltaText, _ := testDataset(t, 13, 30, 40, 6)

	srv1 := New(Options{DataDir: dir})
	ts1 := httptest.NewServer(srv1)
	var info DatasetInfo
	do(t, ts1.Client(), "POST", ts1.URL+"/v1/datasets/web?k=3&m=2&seed=8&shardrecords=64", text, http.StatusCreated, &info)
	var dr DeltaResponse
	do(t, ts1.Client(), "POST", ts1.URL+"/v1/datasets/web/append", deltaText, http.StatusOK, &dr)
	if dr.Version != 2 {
		t.Fatalf("delta version = %d, want 2", dr.Version)
	}
	// A repaired (SafeDisassociation) publication rides the same restart
	// contract: its audit must come back breach-free and byte-identical from
	// the recovered snapshot.
	do(t, ts1.Client(), "POST", ts1.URL+"/v1/datasets/safeweb?k=3&m=2&seed=8&shardrecords=64&safe=1", text, http.StatusCreated, nil)
	var safeAudit BreachResponse
	do(t, ts1.Client(), "GET", ts1.URL+"/v1/datasets/safeweb/breaches", "", http.StatusOK, &safeAudit)
	if safeAudit.Report == nil || !safeAudit.Report.Clean() {
		t.Fatalf("safe publication audits dirty before restart: %+v", safeAudit.Report)
	}
	before := readEndpoints(t, ts1, "web")
	beforeSafe := readEndpoints(t, ts1, "safeweb")
	ts1.Close()

	work := core.AnonymizeWorkCount()
	srv2 := New(Options{DataDir: dir})
	rep, err := srv2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loaded) != 2 || rep.Loaded[0] != "safeweb" || rep.Loaded[1] != "web" || len(rep.Skipped) != 0 {
		t.Fatalf("recovery report = %+v", rep)
	}
	if got := core.AnonymizeWorkCount(); got != work {
		t.Fatalf("recovery ran %d shard anonymizations; recovery must be O(1) in anonymization work", got-work)
	}

	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	after := readEndpoints(t, ts2, "web")
	afterSafe := readEndpoints(t, ts2, "safeweb")
	if got := core.AnonymizeWorkCount(); got != work {
		t.Fatalf("read path ran %d shard anonymizations after recovery", got-work)
	}
	for ep, want := range before {
		if !bytes.Equal(after[ep], want) {
			t.Errorf("%s differs across restart:\n pre: %s\npost: %s", ep, want, after[ep])
		}
	}
	for ep, want := range beforeSafe {
		if !bytes.Equal(afterSafe[ep], want) {
			t.Errorf("safeweb %s differs across restart:\n pre: %s\npost: %s", ep, want, afterSafe[ep])
		}
	}

	// The listing marks the recovered snapshot cold (and mapped, where the
	// platform mmaps) without disturbing the identity fields.
	var list ListResponse
	do(t, ts2.Client(), "GET", ts2.URL+"/v1/datasets", "", http.StatusOK, &list)
	if len(list.Datasets) != 2 {
		t.Fatalf("recovered listing = %+v, want two entries", list.Datasets)
	}
	var web *ListEntry
	for i := range list.Datasets {
		if !list.Datasets[i].Cold {
			t.Fatalf("recovered %q not marked cold", list.Datasets[i].Name)
		}
		if list.Datasets[i].Name == "web" {
			web = &list.Datasets[i]
		}
	}
	if web == nil || web.Version != 2 || web.ShardRecords != 64 {
		t.Fatalf("recovered info = %+v", list.Datasets)
	}

	// Deltas still work after recovery (state rehydrates from the persisted
	// original) and keep the version chain.
	delta2, _ := testDataset(t, 17, 20, 40, 6)
	var dr2 DeltaResponse
	do(t, ts2.Client(), "POST", ts2.URL+"/v1/datasets/web/append", delta2, http.StatusOK, &dr2)
	if dr2.Version != 3 {
		t.Fatalf("post-recovery delta version = %d, want 3", dr2.Version)
	}

	// And a third incarnation sees the delta'd snapshot.
	srv3 := New(Options{DataDir: dir})
	if _, err := srv3.Recover(); err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(srv3)
	defer ts3.Close()
	var info3 StatsResponse
	do(t, ts3.Client(), "GET", ts3.URL+"/v1/datasets/web/stats", "", http.StatusOK, &info3)
	if info3.Version != 3 || info3.Records != dr2.Records {
		t.Fatalf("third incarnation stats = %+v, want version 3 with %d records", info3.DatasetInfo, dr2.Records)
	}
}

// TestRecoverySkipsDamage is the crash-consistency contract: leftover temp
// files are swept, corrupted snapshots and foreign files are skipped with a
// reason, and none of it stops the healthy datasets from loading.
func TestRecoverySkipsDamage(t *testing.T) {
	dir := t.TempDir()
	text, _ := testDataset(t, 21, 200, 30, 5)
	srv1 := New(Options{DataDir: dir})
	ts1 := httptest.NewServer(srv1)
	do(t, ts1.Client(), "POST", ts1.URL+"/v1/datasets/good?k=3&m=2", text, http.StatusCreated, nil)
	do(t, ts1.Client(), "POST", ts1.URL+"/v1/datasets/hurt?k=3&m=2", text, http.StatusCreated, nil)
	ts1.Close()

	// A torn write the crash left behind, a bit-rotted snapshot, a foreign file.
	tmpPath := filepath.Join(dir, "half-1234.tmp")
	if err := os.WriteFile(tmpPath, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	hurt := filepath.Join(dir, "hurt.snap")
	raw, err := os.ReadFile(hurt)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(hurt, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := New(Options{DataDir: dir})
	rep, err := srv2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loaded) != 1 || rep.Loaded[0] != "good" {
		t.Fatalf("loaded = %v, want [good]", rep.Loaded)
	}
	if len(rep.Skipped) != 3 {
		t.Fatalf("skipped = %+v, want 3 entries", rep.Skipped)
	}
	reasons := map[string]string{}
	for _, sk := range rep.Skipped {
		reasons[sk.File] = sk.Reason
	}
	if r := reasons["half-1234.tmp"]; !strings.Contains(r, "temp file removed") {
		t.Errorf("tmp skip reason = %q", r)
	}
	if r := reasons["hurt.snap"]; !strings.Contains(r, "CRC mismatch") {
		t.Errorf("corrupt skip reason = %q", r)
	}
	if r := reasons["notes.txt"]; !strings.Contains(r, "not a snapshot") {
		t.Errorf("foreign skip reason = %q", r)
	}
	if _, err := os.Stat(tmpPath); !errors.Is(err, os.ErrNotExist) {
		t.Error("leftover temp file was not removed")
	}
	// The damaged artifact stays on disk for forensics.
	if _, err := os.Stat(hurt); err != nil {
		t.Errorf("corrupted snapshot file was removed: %v", err)
	}
}

// TestDeleteRemovesArtifact: DELETE must unpublish durably — the snapshot
// file goes away, so a restart cannot resurrect the dataset.
func TestDeleteRemovesArtifact(t *testing.T) {
	dir := t.TempDir()
	text, _ := testDataset(t, 31, 150, 25, 4)
	srv := New(Options{DataDir: dir})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	do(t, ts.Client(), "POST", ts.URL+"/v1/datasets/gone?k=3&m=2", text, http.StatusCreated, nil)
	path := filepath.Join(dir, "gone.snap")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("publish did not persist: %v", err)
	}
	rawDo(t, ts.Client(), "DELETE", ts.URL+"/v1/datasets/gone", "", http.StatusNoContent)
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("DELETE left the snapshot file behind")
	}
	srv2 := New(Options{DataDir: dir})
	rep, err := srv2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Loaded) != 0 {
		t.Fatalf("deleted dataset resurrected: %v", rep.Loaded)
	}
}

// TestNameLocksDoNotLeak is the regression test for the per-name mutex leak:
// a publish/delete churn over many distinct names must leave the lock map
// empty once no mutation is in flight.
func TestNameLocksDoNotLeak(t *testing.T) {
	text, _ := testDataset(t, 41, 60, 20, 4)
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("churn-%d", i)
		do(t, ts.Client(), "POST", ts.URL+"/v1/datasets/"+name+"?k=3&m=2", text, http.StatusCreated, nil)
		rawDo(t, ts.Client(), "DELETE", ts.URL+"/v1/datasets/"+name, "", http.StatusNoContent)
	}
	// Misses take (and must release) the lock too.
	rawDo(t, ts.Client(), "DELETE", ts.URL+"/v1/datasets/never-was", "", http.StatusNotFound)
	srv.mu.Lock()
	n := len(srv.locks)
	srv.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d name locks leaked after churn", n)
	}
}

// failingWriter is an http.ResponseWriter whose body writes fail — a client
// that hung up mid-response.
type failingWriter struct {
	header http.Header
	status int
}

func (f *failingWriter) Header() http.Header { return f.header }
func (f *failingWriter) WriteHeader(s int)   { f.status = s }
func (f *failingWriter) Write([]byte) (int, error) {
	return 0, errors.New("client went away")
}

// TestWriteJSONErrors pins writeJSON's two failure modes apart: an
// unencodable value (a server bug) becomes a logged 500 with a JSON body,
// while a failed client write after a successful encode changes nothing and
// logs nothing.
func TestWriteJSONErrors(t *testing.T) {
	var logs strings.Builder
	srv := New(Options{Logf: func(format string, args ...any) {
		fmt.Fprintf(&logs, format+"\n", args...)
	}})

	rr := httptest.NewRecorder()
	srv.writeJSON(rr, http.StatusOK, map[string]any{"bad": make(chan int)})
	if rr.Code != http.StatusInternalServerError {
		t.Errorf("unencodable value: status %d, want 500", rr.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Errorf("unencodable value: body %q is not an error document (%v)", rr.Body.String(), err)
	}
	if !strings.Contains(logs.String(), "encoding") {
		t.Errorf("encode failure was not logged; logs: %q", logs.String())
	}

	logs.Reset()
	fw := &failingWriter{header: http.Header{}}
	srv.writeJSON(fw, http.StatusOK, map[string]string{"ok": "yes"})
	if fw.status != http.StatusOK {
		t.Errorf("failing client write: status %d, want 200 (encode succeeded)", fw.status)
	}
	if logs.Len() != 0 {
		t.Errorf("client write failure was logged as a server problem: %q", logs.String())
	}
}

// benchPersistedDir publishes one dataset into a fresh data directory and
// returns it, for the cold-start benchmarks.
func benchPersistedDir(b *testing.B, records int) (string, core.Options, string) {
	b.Helper()
	dir := b.TempDir()
	rng := rand.New(rand.NewPCG(55, 0xC01D))
	var text strings.Builder
	for i := 0; i < records; i++ {
		r := dataset.NewRecord(benchTerms(rng, 300)...)
		for j, t := range r {
			if j > 0 {
				text.WriteByte(' ')
			}
			fmt.Fprintf(&text, "%d", t)
		}
		text.WriteByte('\n')
	}
	opts := core.Options{K: 4, M: 2, Seed: 5, MaxShardRecords: 256}
	s := New(Options{DataDir: dir})
	sn, err := s.publishInMemory("bench", strings.NewReader(text.String()), opts)
	if err != nil {
		b.Fatal(err)
	}
	sn.info.Version = 1
	if err := s.persist(sn); err != nil {
		b.Fatal(err)
	}
	return dir, opts, text.String()
}

func benchTerms(rng *rand.Rand, domain int) []dataset.Term {
	terms := make([]dataset.Term, 1+rng.IntN(8))
	for j := range terms {
		terms[j] = dataset.Term(rng.IntN(domain))
	}
	return terms
}

// BenchmarkColdStart compares the two ways a restarted server can get a
// dataset serving again: recovering the persisted snapshot (mmap + CRC +
// slab views, no anonymization) versus rebuilding it from the original
// records (anonymize + index + estimator). The ratio is the point of the
// snapshot store.
func BenchmarkColdStart(b *testing.B) {
	dir, opts, text := benchPersistedDir(b, 4000)
	b.Run("recover", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := New(Options{DataDir: dir})
			rep, err := s.Recover()
			if err != nil || len(rep.Loaded) != 1 {
				b.Fatalf("recover: %v, %+v", err, rep)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := New(Options{})
			if _, err := s.publishInMemory("bench", strings.NewReader(text), opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkColdServe measures serve-from-disk support latency on a freshly
// recovered snapshot, with and without the support cache — the mapped-slab
// read path.
func BenchmarkColdServe(b *testing.B) {
	dir, _, _ := benchPersistedDir(b, 4000)
	rng := rand.New(rand.NewPCG(56, 0xC01D))
	itemsets := make([]dataset.Record, 512)
	for i := range itemsets {
		itemsets[i] = dataset.NewRecord(benchTerms(rng, 300)...)
	}
	for _, cfg := range []struct {
		name    string
		entries int
	}{{"cached", 0}, {"uncached", -1}} {
		b.Run(cfg.name, func(b *testing.B) {
			s := New(Options{DataDir: dir, SupportCacheEntries: cfg.entries})
			if _, err := s.Recover(); err != nil {
				b.Fatal(err)
			}
			sn, ok := s.lookup("bench")
			if !ok {
				b.Fatal("recovered dataset missing")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sn.support(itemsets[i%len(itemsets)])
			}
		})
	}
}
