// Package server is the long-running query-serving surface over published
// disassociated datasets — the deployment Section 6 of the paper implies and
// the ROADMAP's "serves heavy traffic" north star asks for: a publisher
// loads and anonymizes datasets once, then any number of analysts query
// itemset supports, sample reconstructions and read utility metrics over
// HTTP.
//
// Concurrency model: the registry maps names to immutable snapshots. A
// publish builds the whole snapshot — published forest, inverted index,
// estimator, summary — before the registry pointer is swapped under a short
// write lock; reads grab the pointer under a read lock and then serve
// entirely from immutable state, so queries never contend with each other
// and a re-publish never disturbs in-flight readers of the old snapshot.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"regexp"
	"slices"
	"strconv"
	"strings"
	"sync"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/metrics"
	"disasso/internal/query"
	"disasso/internal/reconstruct"
	"disasso/internal/shard"

	"math/rand/v2"
)

// Options configures a Server.
type Options struct {
	// MaxBodyBytes bounds upload and request bodies; 0 means 64 MiB.
	MaxBodyBytes int64
	// MaxReconstructions caps the samples of one reconstruction request;
	// 0 means 16.
	MaxReconstructions int
	// TempDir hosts spill files of streamed publishes; "" means the system
	// temp directory.
	TempDir string
	// SupportCacheEntries bounds the per-snapshot support cache (see
	// cache.go): 0 means the default (8192 entries), negative disables
	// caching. Each published snapshot gets its own cache, so a republish
	// invalidates by the same pointer swap that installs the new snapshot.
	SupportCacheEntries int
	// DataDir, when non-empty, makes publications durable: every publish,
	// append, remove writes a snapshot file (atomic temp+rename, see
	// persist.go) under this directory, delete removes it, and Recover
	// repopulates the registry from the files without re-anonymizing or
	// re-indexing anything. "" keeps the server fully in-memory — the
	// historical behavior.
	DataDir string
	// Logf receives server-side log lines (snapshot persistence problems,
	// response-encoding bugs). nil means log.Printf.
	Logf func(format string, args ...any)
}

// Server is the HTTP query service. Create one with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	opts Options
	mux  *http.ServeMux

	mu sync.RWMutex
	// snapshots is the registry. Once a snapshot is installed here it must
	// never be written again — readers serve from it lock-free and hold its
	// pointer across a whole request, so a republish builds a successor and
	// swaps the pointer. The directive below makes immutsnap enforce that.
	//
	//lint:immutable lock-free readers hold installed snapshot pointers across requests
	snapshots map[string]*snapshot
	// locks serializes mutations (publish install, delta republish, delete)
	// per dataset name, so a delta's read-modify-write of the snapshot
	// pointer is atomic against concurrent mutators. Reads never touch these.
	// Entries are refcounted and dropped at zero (lockName/unlockName):
	// without that, every name ever published — including deleted ones —
	// would pin a mutex forever, an unbounded leak under churning names.
	locks map[string]*nameLock
}

// nameLock is one name's mutation mutex plus the number of holders and
// waiters currently referencing it. refs is guarded by Server.mu; the map
// entry is removed only when refs drops to zero, so a goroutine blocked in
// mu.Lock always holds a reference and the mutex it eventually acquires is
// never a stale one that a third goroutine replaced in the map.
type nameLock struct {
	mu   sync.Mutex
	refs int
}

// snapshot is one published dataset with everything needed to serve reads.
// It is immutable after construction. A delta republish builds a complete
// successor snapshot (version+1) and swaps the registry pointer; in-flight
// readers of the old version are never disturbed.
type snapshot struct {
	info    DatasetInfo
	anon    *core.Anonymized
	est     *query.Estimator
	summary core.Summary
	// opts are the effective anonymization options the publication was
	// produced with — persisted in the snapshot file and used to rehydrate
	// delta-republish state after a restart.
	opts core.Options
	// original lazily yields the original dataset; nil when the records were
	// not retained (streamed publishes). In-memory publishes capture the
	// dataset directly; recovered snapshots decode it from the snapshot
	// file's original section on first use (metrics or the first delta).
	original func() (*dataset.Dataset, error)
	// cold marks a snapshot recovered from disk rather than built by a
	// publish in this process; mapped additionally reports that its index
	// slabs are zero-copy views over a file mapping (false on platforms
	// where the reader fell back to a heap read).
	cold   bool
	mapped bool
	// state is the retained delta-republish state; nil for streamed publishes
	// (the streaming engine does not keep records, so such snapshots cannot
	// accept deltas) and for recovered snapshots, which rehydrate it from the
	// persisted original on their first delta. parts are the per-shard
	// estimator segments the next delta splices clean shards from.
	state *core.RepubState
	parts []*query.EstimatorPart
	// cache memoizes support estimates for this snapshot only (nil when
	// disabled). It is a mutable field, internally synchronized, and
	// provably transparent: estimates are a pure function of the immutable
	// snapshot, so cached and uncached answers are bit-identical.
	cache *supportCache
	// audit memoizes the cover-problem breach report for this snapshot, on
	// the same per-snapshot-transparency argument as cache (see audit.go).
	audit *auditCell
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name     string `json:"name"`
	K        int    `json:"k"`
	M        int    `json:"m"`
	Records  int    `json:"records"`
	Terms    int    `json:"terms"`
	Clusters int    `json:"clusters"` // top-level cluster nodes
	Streamed bool   `json:"streamed"` // published via the streaming engine
	// Version counts the publications behind this name: 1 for the initial
	// publish, +1 for every replace and every delta republish. Each version is
	// an immutable snapshot; a reader that saw version v keeps serving from it
	// even while v+1 is being installed.
	Version int `json:"version"`
	// ShardRecords is the effective shard cut the publication was produced
	// with — the explicit shardrecords parameter, or the cut a streamed
	// publish derived from its budget. 0 means one global shard. Together
	// with the other parameters it is what a client needs to reproduce the
	// publication byte for byte.
	ShardRecords int `json:"shard_records,omitempty"`
}

// ListEntry is one dataset in the GET /v1/datasets listing: its info plus
// serving-tier facts that are process state rather than publication identity
// (they are deliberately kept out of DatasetInfo so stats responses stay
// byte-identical across a restart).
type ListEntry struct {
	DatasetInfo
	// Cold reports the snapshot was recovered from its on-disk file rather
	// than published by this process.
	Cold bool `json:"cold"`
	// Mapped reports a cold snapshot serving posting reads from a memory
	// mapping of the file (false when the reader fell back to a heap copy).
	Mapped bool `json:"mapped,omitempty"`
}

// ListResponse is the body of GET /v1/datasets.
type ListResponse struct {
	Datasets []ListEntry `json:"datasets"`
}

// StatsResponse is the body of GET /v1/datasets/{name}/stats.
type StatsResponse struct {
	DatasetInfo
	Summary core.Summary `json:"summary"`
}

// SupportRequest is the body of POST /v1/datasets/{name}/support: the
// itemsets to estimate, each a set of term ids.
type SupportRequest struct {
	Itemsets [][]dataset.Term `json:"itemsets"`
}

// ItemsetEstimate is one itemset's three support estimators (Section 6):
// the certain lower bound, the reconstruction upper bound, and the expected
// support under the probabilistic chunk model.
type ItemsetEstimate struct {
	Itemset  []dataset.Term `json:"itemset"`
	Lower    int            `json:"lower"`
	Upper    int            `json:"upper"`
	Expected float64        `json:"expected"`
}

// SupportResponse is the body answering a support request, estimates in
// request order.
type SupportResponse struct {
	Estimates []ItemsetEstimate `json:"estimates"`
}

// ReconstructRequest is the body of POST /v1/datasets/{name}/reconstruct.
type ReconstructRequest struct {
	Samples int    `json:"samples"` // default 1
	Seed    uint64 `json:"seed"`    // default 1
}

// ReconstructResponse carries the sampled reconstructions: datasets of
// records of term ids.
type ReconstructResponse struct {
	Datasets [][][]dataset.Term `json:"datasets"`
}

// MetricsResponse is the body of GET /v1/datasets/{name}/metrics: the
// utility metrics computable against the retained original (Section 6
// conventions; the ranges echo the effective parameters).
type MetricsResponse struct {
	K               int     `json:"k"`
	TopK            int     `json:"top_k"`
	MaxItemsetSize  int     `json:"max_itemset_size"`
	RangeLo         int     `json:"range_lo"`
	RangeHi         int     `json:"range_hi"`
	TermsLost       float64 `json:"terms_lost"`
	TopKDeviationLB float64 `json:"tkd_lower_bound"`
	RelativeErrorLB float64 `json:"re_lower_bound"`
}

// DeltaResponse is the body answering a successful append or remove: the new
// snapshot's info plus what the republish actually recomputed. DirtyShards out
// of TotalShards were re-anonymized (and had their index/estimator segments
// rebuilt); ReplannedShards of those had their plan subtree rebuilt in place
// because the delta flipped a shard-boundary decision; FullRepublish reports
// the fallback for boundary shifts replanning could not absorb.
type DeltaResponse struct {
	DatasetInfo
	Appended        int  `json:"appended"`
	Removed         int  `json:"removed"`
	DirtyShards     int  `json:"dirty_shards"`
	TotalShards     int  `json:"total_shards"`
	ReplannedShards int  `json:"replanned_shards"`
	FullRepublish   bool `json:"full_republish"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

const (
	defaultMaxBody  = 64 << 20
	defaultMaxRecon = 16
	maxItemsets     = 10_000

	// Metrics-endpoint work caps (handleMetrics).
	maxMetricsTopK        = 10_000
	maxMetricsItemsetSize = 4
	maxMetricsRangeWidth  = 1_000
)

var nameRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// New returns a Server with the given options.
func New(opts Options) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = defaultMaxBody
	}
	if opts.MaxReconstructions <= 0 {
		opts.MaxReconstructions = defaultMaxRecon
	}
	if opts.SupportCacheEntries == 0 {
		opts.SupportCacheEntries = defaultCacheEntries
	}
	s := &Server{
		opts:      opts,
		snapshots: make(map[string]*snapshot),
		locks:     make(map[string]*nameLock),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/datasets", s.handleList)
	mux.HandleFunc("POST /v1/datasets/{name}", s.handlePublish)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDelete)
	mux.HandleFunc("POST /v1/datasets/{name}/append", s.handleAppend)
	mux.HandleFunc("POST /v1/datasets/{name}/remove", s.handleRemove)
	mux.HandleFunc("GET /v1/datasets/{name}/stats", s.handleStats)
	mux.HandleFunc("POST /v1/datasets/{name}/support", s.handleSupport)
	mux.HandleFunc("GET /v1/datasets/{name}/support", s.handleSupportGet)
	mux.HandleFunc("POST /v1/datasets/{name}/reconstruct", s.handleReconstruct)
	mux.HandleFunc("GET /v1/datasets/{name}/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/datasets/{name}/breaches", s.handleBreaches)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// lookup fetches a snapshot pointer; the read lock is held only for the map
// access, never while serving.
func (s *Server) lookup(name string) (*snapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sn, ok := s.snapshots[name]
	return sn, ok
}

// lockName acquires the mutation mutex of a dataset name, creating the entry
// on first use and counting the reference so unlockName knows when the entry
// is garbage. Lock ordering: the name lock is always taken before s.mu and
// never while holding it (the registration below releases s.mu first).
func (s *Server) lockName(name string) *nameLock {
	s.mu.Lock()
	l, ok := s.locks[name]
	if !ok {
		l = &nameLock{}
		s.locks[name] = l
	}
	l.refs++
	s.mu.Unlock()
	l.mu.Lock()
	return l
}

// unlockName releases a lock acquired by lockName and drops the map entry
// once nobody holds or waits for it.
func (s *Server) unlockName(name string, l *nameLock) {
	l.mu.Unlock()
	s.mu.Lock()
	l.refs--
	if l.refs == 0 {
		delete(s.locks, name)
	}
	s.mu.Unlock()
}

// logf reports a server-side problem through the configured sink.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// writeJSON encodes v into a buffer first, so an encoding failure — a server
// bug, e.g. a response type the encoder rejects — turns into a logged 500
// instead of a silent 200 with a half-written body. Only once the encode has
// succeeded do bytes go to the client; a failed client write at that point
// is the client's problem and is deliberately ignored (the status line is
// already out, nothing can be repaired).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.logf("disassod: encoding %T response: %v", v, err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = io.WriteString(w, "{\n  \"error\": \"internal: response encoding failed\"\n}\n")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	list := make([]ListEntry, 0, len(s.snapshots))
	for _, sn := range s.snapshots {
		list = append(list, ListEntry{DatasetInfo: sn.info, Cold: sn.cold, Mapped: sn.mapped})
	}
	s.mu.RUnlock()
	slices.SortFunc(list, func(a, b ListEntry) int { return strings.Compare(a.Name, b.Name) })
	s.writeJSON(w, http.StatusOK, ListResponse{Datasets: list})
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, key string, def int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", key, v)
	}
	return n, nil
}

// queryUint64 parses an unsigned parameter with a default — the full PRNG
// seed range the CLI's flag.Uint64 accepts, with negatives rejected rather
// than wrapped.
func queryUint64(r *http.Request, key string, def uint64) (uint64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", key, v)
	}
	return n, nil
}

// handlePublish loads the uploaded dataset (text format, one record of
// whitespace-separated integer term ids per line), anonymizes it with the
// parameters given as query values (k, m, maxcluster, seed, shardrecords,
// norefine; stream=1 selects the bounded-memory streaming engine with
// membudget), and registers the published snapshot. Re-publishing an
// existing name needs replace=1.
func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !nameRe.MatchString(name) {
		s.writeError(w, http.StatusBadRequest, "bad dataset name %q", name)
		return
	}
	q := r.URL.Query()
	k, err1 := queryInt(r, "k", 5)
	m, err2 := queryInt(r, "m", 2)
	maxCluster, err3 := queryInt(r, "maxcluster", 0)
	shardRecords, err4 := queryInt(r, "shardrecords", 0)
	seed, err5 := queryUint64(r, "seed", 1)
	if err := errors.Join(err1, err2, err3, err4, err5); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := core.Options{
		K: k, M: m, MaxClusterSize: maxCluster, MaxShardRecords: shardRecords,
		Seed: seed, DisableRefine: q.Get("norefine") == "1",
		SafeDisassociation: q.Get("safe") == "1",
	}

	replace := q.Get("replace") == "1"
	if !replace {
		// Fast pre-check so a conflicting upload fails before the expensive
		// anonymization; the insert below re-checks under the write lock.
		if _, exists := s.lookup(name); exists {
			s.writeError(w, http.StatusConflict, "dataset %q already exists (republish with replace=1)", name)
			return
		}
	}

	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var (
		sn  *snapshot
		err error
	)
	if q.Get("stream") == "1" {
		var budget int64
		budget, err = dataset.ParseByteSize(q.Get("membudget"))
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		sn, err = s.publishStreamed(name, body, opts, budget)
	} else {
		sn, err = s.publishInMemory(name, body, opts)
	}
	if err != nil {
		s.publishError(w, err)
		return
	}

	// The expensive anonymization above needed no lock (it reads nothing
	// shared); only the install is a mutation, serialized per name so the
	// version counter is a clean chain even under concurrent publishes and
	// deltas. The snapshot is persisted before the registry swap: a snapshot
	// the server ever served must already be on disk, so a crash cannot
	// forget a publication it acknowledged.
	//lint:ignore lockscope the per-name lock intentionally serializes the whole install — persist and response included; readers never take it, so holding it across blocking work delays only competing mutators of this name
	lock := s.lockName(name)
	defer s.unlockName(name, lock)
	old, exists := s.lookup(name)
	if exists && !replace {
		s.writeError(w, http.StatusConflict, "dataset %q already exists (republish with replace=1)", name)
		return
	}
	if exists {
		sn.info.Version = old.info.Version + 1
	} else {
		sn.info.Version = 1
	}
	if err := s.persist(sn); err != nil {
		s.logf("disassod: persisting %q: %v", name, err)
		s.writeError(w, http.StatusInternalServerError, "persisting snapshot: %v", err)
		return
	}
	s.mu.Lock()
	s.snapshots[name] = sn
	s.mu.Unlock()
	s.writeJSON(w, http.StatusCreated, sn.info)
}

// internalError marks a failure of the server's own machinery (spill files,
// re-reading its own output) as opposed to a bad request.
type internalError struct{ err error }

func (e internalError) Error() string { return e.err.Error() }
func (e internalError) Unwrap() error { return e.err }

// publishError maps a failed publish to a status: oversized bodies are 413,
// server-side machinery failures are 500, everything else (parse errors,
// k/m validation) is a 400.
func (s *Server) publishError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		s.writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	var internal internalError
	if errors.As(err, &internal) {
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.writeError(w, http.StatusBadRequest, "%v", err)
}

// publishInMemory runs the standard pipeline with retained delta-republish
// state (the published bytes are identical to a plain Anonymize), keeping the
// original for the metrics endpoint and the per-shard estimator parts for the
// next delta to splice from.
func (s *Server) publishInMemory(name string, body io.Reader, opts core.Options) (*snapshot, error) {
	d, err := dataset.ReadIDs(body)
	if err != nil {
		return nil, err
	}
	a, st, err := core.AnonymizeWithState(d, opts)
	if err != nil {
		return nil, err
	}
	parts := make([]*query.EstimatorPart, st.NumShards())
	for i := range parts {
		parts[i] = query.BuildEstimatorPart(a.K, a.M, st.ShardClusters(i))
	}
	sn := newStateSnapshot(name, a, st, parts, d, opts, s.opts.SupportCacheEntries)
	sn.info.ShardRecords = opts.MaxShardRecords
	return sn, nil
}

// newStateSnapshot builds a snapshot whose estimator is assembled from
// per-shard parts — bit-identical to a full build — and that carries the
// delta-republish state for append/remove to continue from.
func newStateSnapshot(name string, a *core.Anonymized, st *core.RepubState, parts []*query.EstimatorPart, original *dataset.Dataset, opts core.Options, cacheEntries int) *snapshot {
	sum := a.Stats()
	return &snapshot{
		cache: newSupportCache(cacheEntries),
		audit: newAuditCell(),
		info: DatasetInfo{
			Name: name, K: a.K, M: a.M,
			Records:  sum.Records,
			Terms:    sum.DistinctTerms,
			Clusters: len(a.Clusters),
		},
		anon:     a,
		est:      query.NewEstimatorFromParts(a, parts),
		summary:  sum,
		opts:     opts,
		original: func() (*dataset.Dataset, error) { return original, nil },
		state:    st,
		parts:    parts,
	}
}

// publishStreamed runs the sharded streaming engine: the upload is
// anonymized in bounded memory (spilling to TempDir) and the publication
// re-read from its compact binary form. The original records are not
// retained — that is the point of streaming — so the snapshot serves
// support, reconstruction and stats but not original-vs-published metrics.
func (s *Server) publishStreamed(name string, body io.Reader, opts core.Options, budget int64) (*snapshot, error) {
	// The engine's serialized output goes through a spill file, not an
	// in-memory buffer: buffering it would reintroduce exactly the
	// unbounded working set stream publishing exists to avoid.
	spill, err := os.CreateTemp(s.opts.TempDir, "disassod-publish-*.bin")
	if err != nil {
		return nil, internalError{err}
	}
	defer func() {
		// Cleanup of a temp file whose bytes were already consumed by
		// ReadBinary; a close failure here cannot lose published data.
		_ = spill.Close()
		_ = os.Remove(spill.Name())
	}()
	bw := bufio.NewWriter(spill)
	st, err := shard.Anonymize(body, bw, shard.Options{
		Core:         opts,
		MemoryBudget: budget,
		TempDir:      s.opts.TempDir,
	})
	if err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, internalError{err}
	}
	if _, err := spill.Seek(0, io.SeekStart); err != nil {
		return nil, internalError{err}
	}
	a, err := core.ReadBinary(bufio.NewReader(spill))
	if err != nil {
		return nil, internalError{fmt.Errorf("re-reading streamed publication: %w", err)}
	}
	sn := newSnapshot(name, a, true, opts, s.opts.SupportCacheEntries)
	sn.info.ShardRecords = st.ShardRecords
	return sn, nil
}

// newSnapshot builds the immutable serving state — summary, inverted index
// and estimator — plus the snapshot's own (empty) support cache.
func newSnapshot(name string, a *core.Anonymized, streamed bool, opts core.Options, cacheEntries int) *snapshot {
	est := query.NewEstimator(a)
	sum := a.Stats()
	return &snapshot{
		cache: newSupportCache(cacheEntries),
		audit: newAuditCell(),
		info: DatasetInfo{
			Name: name, K: a.K, M: a.M,
			Records:  sum.Records,
			Terms:    sum.DistinctTerms,
			Clusters: len(a.Clusters),
			Streamed: streamed,
		},
		anon:    a,
		est:     est,
		summary: sum,
		opts:    opts,
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	//lint:ignore lockscope the per-name lock intentionally covers artifact removal and the response; readers never take it, so only competing mutators of this name wait
	lock := s.lockName(name)
	defer s.unlockName(name, lock)
	if _, ok := s.lookup(name); !ok {
		s.writeError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	// Artifact first, registry second: if the file refuses to go the server
	// keeps serving the dataset (still consistent — present both on disk and
	// in memory) rather than resurrecting it on the next restart.
	if err := s.removeArtifact(name); err != nil {
		s.logf("disassod: deleting snapshot file of %q: %v", name, err)
		s.writeError(w, http.StatusInternalServerError, "deleting snapshot file: %v", err)
		return
	}
	s.mu.Lock()
	delete(s.snapshots, name)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleAppend republishes the dataset with the uploaded records (text
// format, like publish) appended to the end of the logical dataset.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	s.handleDelta(w, r, false)
}

// handleRemove republishes the dataset with the uploaded records removed —
// each line removes one occurrence of that record (bag semantics); a record
// not present fails the whole delta with 409.
func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	s.handleDelta(w, r, true)
}

// handleDelta is the shared append/remove implementation: an incremental
// republish that re-anonymizes only the shards the delta touches, rebuilds
// the index/estimator segments of those shards alone, and installs the result
// as a new immutable snapshot version. Reads racing the delta keep serving
// the old version; the per-name lock only serializes mutators.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request, remove bool) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	d, err := dataset.ReadIDs(body)
	if err != nil {
		s.publishError(w, err)
		return
	}
	if d.Len() == 0 {
		s.writeError(w, http.StatusBadRequest, "empty delta: the body must hold at least one record")
		return
	}
	var delta core.Delta
	if remove {
		delta.Remove = d.Records
	} else {
		delta.Append = d.Records
	}

	//lint:ignore lockscope the per-name lock intentionally covers the whole delta — rehydrate, Apply, persist, response — so concurrent deltas to one name serialize; readers never take it
	lock := s.lockName(name)
	defer s.unlockName(name, lock)
	sn, ok := s.lookup(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	if sn.state == nil && sn.original == nil {
		s.writeError(w, http.StatusConflict,
			"dataset %q was published via the streaming engine; the records needed for delta republish were not retained (republish it non-streamed to enable append/remove)", name)
		return
	}
	state, parts := sn.state, sn.parts
	if state == nil {
		// A recovered snapshot carries the original records but not the live
		// republish state (sharding plans, per-shard indexes). Rehydrate it
		// once by re-running the stateful pipeline over the persisted
		// original with the persisted options — byte-identical to the
		// pre-restart publication by the delta-republish determinism
		// guarantee — then apply the delta to it as usual. This is the one
		// place recovery pays anonymization cost, and only on the first
		// mutation of a recovered name, never on the read path.
		var err error
		state, parts, err = s.rehydrate(sn)
		if err != nil {
			s.logf("disassod: rehydrating republish state of %q: %v", name, err)
			s.writeError(w, http.StatusInternalServerError, "rehydrating republish state: %v", err)
			return
		}
	}
	a, st, stats, err := state.Apply(delta)
	if err != nil {
		if errors.Is(err, core.ErrRecordNotFound) {
			s.writeError(w, http.StatusConflict, "%v", err)
			return
		}
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Estimator parts: rebuild only the dirty shards' segments, splice every
	// clean shard's part straight through (clean shards share their published
	// nodes with the old snapshot, so the old parts describe them exactly).
	var nextParts []*query.EstimatorPart
	if stats.FullRepublish {
		nextParts = make([]*query.EstimatorPart, st.NumShards())
		for i := range nextParts {
			nextParts[i] = query.BuildEstimatorPart(a.K, a.M, st.ShardClusters(i))
		}
	} else {
		nextParts = slices.Clone(parts)
		for _, si := range stats.Dirty {
			nextParts[si] = query.BuildEstimatorPart(a.K, a.M, st.ShardClusters(si))
		}
	}
	next := newStateSnapshot(name, a, st, nextParts, dataset.FromRecords(st.Records()), sn.opts, s.opts.SupportCacheEntries)
	next.info.ShardRecords = sn.info.ShardRecords
	next.info.Version = sn.info.Version + 1

	if err := s.persist(next); err != nil {
		s.logf("disassod: persisting %q: %v", name, err)
		s.writeError(w, http.StatusInternalServerError, "persisting snapshot: %v", err)
		return
	}
	s.mu.Lock()
	s.snapshots[name] = next
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, DeltaResponse{
		DatasetInfo:     next.info,
		Appended:        stats.Appended,
		Removed:         stats.Removed,
		DirtyShards:     stats.DirtyShards,
		TotalShards:     stats.TotalShards,
		ReplannedShards: stats.ReplannedShards,
		FullRepublish:   stats.FullRepublish,
	})
}

// snapshotOr404 resolves the {name} path value, answering 404 itself when
// the dataset is unknown.
func (s *Server) snapshotOr404(w http.ResponseWriter, r *http.Request) *snapshot {
	name := r.PathValue("name")
	sn, ok := s.lookup(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "no dataset %q", name)
		return nil
	}
	return sn
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sn := s.snapshotOr404(w, r)
	if sn == nil {
		return
	}
	s.writeJSON(w, http.StatusOK, StatsResponse{DatasetInfo: sn.info, Summary: sn.summary})
}

func (s *Server) handleSupport(w http.ResponseWriter, r *http.Request) {
	sn := s.snapshotOr404(w, r)
	if sn == nil {
		return
	}
	var req SupportRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.publishError(w, err)
		return
	}
	if len(req.Itemsets) > maxItemsets {
		s.writeError(w, http.StatusBadRequest, "%d itemsets exceed the per-request cap of %d", len(req.Itemsets), maxItemsets)
		return
	}
	resp := SupportResponse{Estimates: make([]ItemsetEstimate, len(req.Itemsets))}
	for i, terms := range req.Itemsets {
		resp.Estimates[i] = estimateOne(sn, dataset.NewRecord(terms...))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleSupportGet answers a single itemset given as a comma-separated term
// list: GET .../support?itemset=3,17,42.
func (s *Server) handleSupportGet(w http.ResponseWriter, r *http.Request) {
	sn := s.snapshotOr404(w, r)
	if sn == nil {
		return
	}
	raw := r.URL.Query().Get("itemset")
	if raw == "" {
		// A missing/mistyped parameter must not silently degrade into the
		// empty itemset (whose "estimate" is the total record count); the
		// batch POST endpoint serves empty itemsets for callers who mean it.
		s.writeError(w, http.StatusBadRequest, "missing itemset parameter (e.g. ?itemset=3,17)")
		return
	}
	var terms []dataset.Term
	for _, f := range strings.Split(raw, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 32)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad itemset term %q", f)
			return
		}
		terms = append(terms, dataset.Term(n))
	}
	s.writeJSON(w, http.StatusOK, estimateOne(sn, dataset.NewRecord(terms...)))
}

// estimateOne runs one itemset through the snapshot's support cache (backed
// by the indexed estimator).
func estimateOne(sn *snapshot, itemset dataset.Record) ItemsetEstimate {
	est := sn.support(itemset)
	return ItemsetEstimate{
		Itemset:  itemset,
		Lower:    est.Lower,
		Upper:    est.Upper,
		Expected: est.Expected,
	}
}

func (s *Server) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	sn := s.snapshotOr404(w, r)
	if sn == nil {
		return
	}
	req := ReconstructRequest{Samples: 1, Seed: 1}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	raw, err := io.ReadAll(body)
	if err != nil {
		s.publishError(w, err)
		return
	}
	if len(bytes.TrimSpace(raw)) > 0 {
		if err := json.Unmarshal(raw, &req); err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if req.Samples < 1 || req.Samples > s.opts.MaxReconstructions {
		s.writeError(w, http.StatusBadRequest, "samples must be in [1, %d]", s.opts.MaxReconstructions)
		return
	}
	rng := rand.New(rand.NewPCG(req.Seed, 0x5EED))
	resp := ReconstructResponse{Datasets: make([][][]dataset.Term, req.Samples)}
	for i, d := range reconstruct.SampleMany(sn.anon, req.Samples, rng) {
		recs := make([][]dataset.Term, len(d.Records))
		for j, rec := range d.Records {
			recs[j] = rec
		}
		resp.Datasets[i] = recs
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleMetrics computes the utility metrics of the publication against the
// retained original: tlost, tKd-a and re-a under the Section 7.1
// conventions, parameterized by k, topk, size, lo, hi query values.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sn := s.snapshotOr404(w, r)
	if sn == nil {
		return
	}
	if sn.original == nil {
		s.writeError(w, http.StatusConflict,
			"dataset %q was published via the streaming engine; the original records were not retained, so original-vs-published metrics are unavailable", sn.info.Name)
		return
	}
	original, err := sn.original()
	if err != nil {
		s.logf("disassod: decoding original records of %q: %v", sn.info.Name, err)
		s.writeError(w, http.StatusInternalServerError, "decoding retained original records: %v", err)
		return
	}
	k, err1 := queryInt(r, "k", sn.info.K)
	topK, err2 := queryInt(r, "topk", 200)
	maxSize, err3 := queryInt(r, "size", 2)
	lo, err4 := queryInt(r, "lo", 200)
	hi, err5 := queryInt(r, "hi", 220)
	if err := errors.Join(err1, err2, err3, err4, err5); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Bound per-request mining work like every other endpoint bounds its
	// own: Apriori candidate generation is combinatorial in the itemset
	// size and the top-K threshold drops toward support 1 as K grows.
	switch {
	case k < 1:
		s.writeError(w, http.StatusBadRequest, "k must be ≥ 1")
		return
	case topK < 1 || topK > maxMetricsTopK:
		s.writeError(w, http.StatusBadRequest, "topk must be in [1, %d]", maxMetricsTopK)
		return
	case maxSize < 1 || maxSize > maxMetricsItemsetSize:
		s.writeError(w, http.StatusBadRequest, "size must be in [1, %d]", maxMetricsItemsetSize)
		return
	case lo < 0 || hi < lo:
		// Ordered non-negative bounds first, so the width subtraction below
		// cannot wrap around and slip past the cap.
		s.writeError(w, http.StatusBadRequest, "term range [%d, %d) must satisfy 0 ≤ lo ≤ hi", lo, hi)
		return
	case hi-lo > maxMetricsRangeWidth:
		s.writeError(w, http.StatusBadRequest, "term range wider than %d", maxMetricsRangeWidth)
		return
	}
	terms := metrics.RangeTerms(original, lo, hi)
	s.writeJSON(w, http.StatusOK, MetricsResponse{
		K: k, TopK: topK, MaxItemsetSize: maxSize, RangeLo: lo, RangeHi: hi,
		TermsLost:       metrics.TermsLost(original, sn.anon, k),
		TopKDeviationLB: metrics.TopKDeviationLowerBound(original.Records, sn.anon, topK, maxSize),
		RelativeErrorLB: metrics.RelativeErrorLowerBound(original.Records, sn.anon, terms),
	})
}
