//go:build support_nocache

package server

// supportCacheOnDefault under the support_nocache build tag disables the
// snapshot-scoped support cache: every estimate is recomputed by the
// estimator. Served answers must be identical to the cached build.
const supportCacheOnDefault = false
