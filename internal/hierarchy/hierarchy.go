// Package hierarchy provides generalization hierarchies (taxonomies) over
// term domains. They are the substrate for the generalization-based Apriori
// anonymization baseline [Terrovitis et al. 2008], for the tKd-ML2 metric of
// Section 6 (multiple-level mining), and for DiffPart's top-down domain
// partitioning.
//
// A hierarchy is a balanced n-ary tree whose leaves are the original terms;
// interior nodes are generalized terms. Node IDs extend the term ID space:
// leaves keep their term IDs, interior nodes get IDs from DomainSize upward,
// so generalized datasets remain ordinary datasets over a larger domain.
package hierarchy

import (
	"fmt"

	"disasso/internal/dataset"
)

// Hierarchy is a balanced n-ary generalization tree over the term domain
// [0, DomainSize).
type Hierarchy struct {
	// DomainSize is the number of leaf terms.
	DomainSize int
	// Fanout is the tree's branching factor.
	Fanout int
	// parent[id] is the generalized node one level above id; the root's
	// parent is itself.
	parent []dataset.Term
	// children[id] lists the node's direct children (nil for leaves).
	children [][]dataset.Term
	// level[id] is 0 for leaves, increasing toward the root.
	level []int
	// root is the single top node.
	root dataset.Term
	// numLevels counts levels including leaves (a domain of 1 has 1 level).
	numLevels int
}

// New builds a balanced hierarchy with the given fanout over domainSize leaf
// terms. fanout must be ≥ 2 and domainSize ≥ 1.
func New(domainSize, fanout int) (*Hierarchy, error) {
	if domainSize < 1 {
		return nil, fmt.Errorf("hierarchy: domain size %d < 1", domainSize)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("hierarchy: fanout %d < 2", fanout)
	}
	h := &Hierarchy{DomainSize: domainSize, Fanout: fanout}

	// Build bottom-up: group the current level's nodes in blocks of fanout,
	// each block getting a fresh parent ID.
	current := make([]dataset.Term, domainSize)
	for i := range current {
		current[i] = dataset.Term(i)
	}
	h.parent = make([]dataset.Term, domainSize)
	h.children = make([][]dataset.Term, domainSize)
	h.level = make([]int, domainSize)
	next := dataset.Term(domainSize)
	lvl := 0
	for len(current) > 1 {
		lvl++
		var upper []dataset.Term
		for i := 0; i < len(current); i += fanout {
			end := i + fanout
			if end > len(current) {
				end = len(current)
			}
			p := next
			next++
			h.parent = append(h.parent, 0) // placeholder for p's own parent
			h.children = append(h.children, append([]dataset.Term(nil), current[i:end]...))
			h.level = append(h.level, lvl)
			for _, child := range current[i:end] {
				h.parent[child] = p
			}
			upper = append(upper, p)
		}
		current = upper
	}
	h.root = current[0]
	h.parent[h.root] = h.root
	h.numLevels = lvl + 1
	return h, nil
}

// Root returns the hierarchy's top node.
func (h *Hierarchy) Root() dataset.Term { return h.root }

// NumNodes returns the total number of nodes (leaves + interior).
func (h *Hierarchy) NumNodes() int { return len(h.parent) }

// NumLevels returns the number of levels including the leaf level.
func (h *Hierarchy) NumLevels() int { return h.numLevels }

// Level returns a node's level: 0 for leaves, NumLevels−1 for the root.
func (h *Hierarchy) Level(t dataset.Term) int {
	if !h.valid(t) {
		return -1
	}
	return h.level[t]
}

// IsLeaf reports whether t is an original (non-generalized) term.
func (h *Hierarchy) IsLeaf(t dataset.Term) bool {
	return int(t) >= 0 && int(t) < h.DomainSize
}

// Parent returns the node one level up; the root returns itself.
func (h *Hierarchy) Parent(t dataset.Term) dataset.Term {
	if !h.valid(t) {
		return t
	}
	return h.parent[t]
}

// Ancestor returns t generalized up the given number of levels, stopping at
// the root.
func (h *Hierarchy) Ancestor(t dataset.Term, levels int) dataset.Term {
	for i := 0; i < levels; i++ {
		p := h.Parent(t)
		if p == t {
			break
		}
		t = p
	}
	return t
}

// AncestorAtLevel returns t's ancestor at exactly the given level (or the
// root if the level exceeds the tree height).
func (h *Hierarchy) AncestorAtLevel(t dataset.Term, level int) dataset.Term {
	for h.valid(t) && h.level[t] < level {
		p := h.parent[t]
		if p == t {
			break
		}
		t = p
	}
	return t
}

// IsAncestor reports whether anc is on the path from t to the root
// (inclusive of t itself).
func (h *Hierarchy) IsAncestor(anc, t dataset.Term) bool {
	for {
		if t == anc {
			return true
		}
		p := h.Parent(t)
		if p == t {
			return false
		}
		t = p
	}
}

// Children returns a node's direct children (nil for leaves). The returned
// slice must not be modified.
func (h *Hierarchy) Children(t dataset.Term) []dataset.Term {
	if !h.valid(t) {
		return nil
	}
	return h.children[t]
}

// Leaves appends all leaf terms under node t to dst and returns it.
func (h *Hierarchy) Leaves(t dataset.Term, dst []dataset.Term) []dataset.Term {
	if h.IsLeaf(t) {
		return append(dst, t)
	}
	for _, c := range h.Children(t) {
		dst = h.Leaves(c, dst)
	}
	return dst
}

// LeafCount returns the number of leaf terms under t.
func (h *Hierarchy) LeafCount(t dataset.Term) int {
	if h.IsLeaf(t) {
		return 1
	}
	n := 0
	for _, c := range h.Children(t) {
		n += h.LeafCount(c)
	}
	return n
}

// GeneralizeRecord maps every term of r through cut: cut[t] gives the level
// to which t must be generalized (0 = keep). Duplicate generalized terms
// collapse (set semantics).
func (h *Hierarchy) GeneralizeRecord(r dataset.Record, cut map[dataset.Term]int) dataset.Record {
	out := make(dataset.Record, 0, len(r))
	for _, t := range r {
		out = append(out, h.AncestorAtLevel(t, cut[t]))
	}
	return out.Normalize()
}

// GeneralizeDataset applies GeneralizeRecord to every record.
func (h *Hierarchy) GeneralizeDataset(d *dataset.Dataset, cut map[dataset.Term]int) *dataset.Dataset {
	out := dataset.New(d.Len())
	for _, r := range d.Records {
		out.Records = append(out.Records, h.GeneralizeRecord(r, cut))
	}
	return out
}

func (h *Hierarchy) valid(t dataset.Term) bool {
	return int(t) >= 0 && int(t) < len(h.parent)
}
