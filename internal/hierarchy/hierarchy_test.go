package hierarchy

import (
	"testing"

	"disasso/internal/dataset"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("domain 0 accepted")
	}
	if _, err := New(10, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
}

func TestSingleLeafHierarchy(t *testing.T) {
	h, err := New(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Root() != 0 || h.NumLevels() != 1 || h.NumNodes() != 1 {
		t.Errorf("degenerate hierarchy: root=%d levels=%d nodes=%d", h.Root(), h.NumLevels(), h.NumNodes())
	}
	if h.Parent(0) != 0 {
		t.Error("root's parent must be itself")
	}
}

func TestBalancedStructure(t *testing.T) {
	// 9 leaves, fanout 3: 9 → 3 → 1, so 13 nodes over 3 levels.
	h, err := New(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 13 {
		t.Errorf("NumNodes = %d, want 13", h.NumNodes())
	}
	if h.NumLevels() != 3 {
		t.Errorf("NumLevels = %d, want 3", h.NumLevels())
	}
	if h.Root() != 12 {
		t.Errorf("Root = %d, want 12", h.Root())
	}
	// Leaves 0..2 share the first interior node, 9.
	for leaf := dataset.Term(0); leaf < 3; leaf++ {
		if h.Parent(leaf) != 9 {
			t.Errorf("Parent(%d) = %d, want 9", leaf, h.Parent(leaf))
		}
	}
	if h.Parent(9) != h.Root() {
		t.Errorf("Parent(9) = %d, want root", h.Parent(9))
	}
	if h.Level(0) != 0 || h.Level(9) != 1 || h.Level(h.Root()) != 2 {
		t.Error("levels wrong")
	}
}

func TestUnevenDomain(t *testing.T) {
	// 10 leaves, fanout 3: 10 → 4 → 2 → 1.
	h, err := New(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() != 4 {
		t.Errorf("NumLevels = %d, want 4", h.NumLevels())
	}
	// Every leaf must reach the root.
	for leaf := dataset.Term(0); leaf < 10; leaf++ {
		if !h.IsAncestor(h.Root(), leaf) {
			t.Errorf("leaf %d not under the root", leaf)
		}
	}
}

func TestAncestorOps(t *testing.T) {
	h, _ := New(9, 3)
	if got := h.Ancestor(0, 1); got != 9 {
		t.Errorf("Ancestor(0,1) = %d", got)
	}
	if got := h.Ancestor(0, 99); got != h.Root() {
		t.Errorf("Ancestor(0,99) = %d, want root", got)
	}
	if got := h.AncestorAtLevel(0, 0); got != 0 {
		t.Errorf("AncestorAtLevel(0,0) = %d", got)
	}
	if got := h.AncestorAtLevel(0, 1); got != 9 {
		t.Errorf("AncestorAtLevel(0,1) = %d", got)
	}
	if !h.IsAncestor(9, 2) || h.IsAncestor(9, 3) {
		t.Error("IsAncestor wrong")
	}
	if !h.IsAncestor(5, 5) {
		t.Error("a node must be its own ancestor")
	}
}

func TestLeavesAndCounts(t *testing.T) {
	h, _ := New(9, 3)
	leaves := h.Leaves(9, nil)
	if len(leaves) != 3 {
		t.Fatalf("Leaves(9) = %v", leaves)
	}
	if h.LeafCount(h.Root()) != 9 {
		t.Errorf("LeafCount(root) = %d", h.LeafCount(h.Root()))
	}
	if h.LeafCount(4) != 1 {
		t.Errorf("LeafCount(leaf) = %d", h.LeafCount(4))
	}
	if len(h.Children(h.Root())) != 3 {
		t.Errorf("Children(root) = %v", h.Children(h.Root()))
	}
	if h.Children(0) != nil {
		t.Error("leaf has children")
	}
}

func TestGeneralizeRecord(t *testing.T) {
	h, _ := New(9, 3)
	r := dataset.NewRecord(0, 1, 5)
	cut := map[dataset.Term]int{0: 1, 1: 1} // 0 and 1 both generalize to node 9
	g := h.GeneralizeRecord(r, cut)
	if !g.Equal(dataset.NewRecord(5, 9)) {
		t.Errorf("GeneralizeRecord = %v, want {5, 9}", g)
	}
}

func TestGeneralizeDataset(t *testing.T) {
	h, _ := New(9, 3)
	d := dataset.FromRecords([]dataset.Record{
		dataset.NewRecord(0, 3),
		dataset.NewRecord(1),
	})
	cut := map[dataset.Term]int{0: 2, 1: 2, 3: 0}
	g := h.GeneralizeDataset(d, cut)
	if !g.Records[0].Equal(dataset.NewRecord(3, h.Root())) {
		t.Errorf("record 0 = %v", g.Records[0])
	}
	if !g.Records[1].Equal(dataset.NewRecord(h.Root())) {
		t.Errorf("record 1 = %v", g.Records[1])
	}
}

func TestLargeHierarchy(t *testing.T) {
	h, err := New(5000, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 5000 → 500 → 50 → 5 → 1.
	if h.NumLevels() != 5 {
		t.Errorf("NumLevels = %d, want 5", h.NumLevels())
	}
	if h.LeafCount(h.Root()) != 5000 {
		t.Errorf("LeafCount(root) = %d", h.LeafCount(h.Root()))
	}
}
