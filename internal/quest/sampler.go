package quest

import (
	"math"
	"math/rand/v2"
)

// WeightedSampler draws indices in O(1) from a fixed discrete distribution
// using Walker's alias method. It backs both the pattern-weight roulette of
// the Quest generator and the Zipf term popularity of the real-data
// stand-ins.
type WeightedSampler struct {
	prob  []float64
	alias []int
}

// NewWeightedSampler builds a sampler over the given non-negative weights.
// Weights need not be normalized. At least one weight must be positive;
// otherwise the sampler draws uniformly.
func NewWeightedSampler(weights []float64) *WeightedSampler {
	n := len(weights)
	s := &WeightedSampler{prob: make([]float64, n), alias: make([]int, n)}
	if n == 0 {
		return s
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	scaled := make([]float64, n)
	for i, w := range weights {
		if total <= 0 {
			scaled[i] = 1 // degenerate input: uniform
		} else if w > 0 {
			scaled[i] = w * float64(n) / total
		}
	}
	var small, large []int
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, i := range large {
		s.prob[i] = 1
	}
	for _, i := range small {
		s.prob[i] = 1 // numerical leftovers
	}
	return s
}

// Sample draws one index.
func (s *WeightedSampler) Sample(rng *rand.Rand) int {
	if len(s.prob) == 0 {
		return 0
	}
	i := rng.IntN(len(s.prob))
	if rng.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}

// Len returns the size of the distribution's support.
func (s *WeightedSampler) Len() int { return len(s.prob) }

// ZipfWeights returns weights w_i = 1/(i+1)^s for a finite Zipf distribution
// over n ranks with exponent s.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}

// Poisson draws from a Poisson distribution with mean lambda. For small
// lambda it uses Knuth's product method; for large lambda a normal
// approximation keeps it O(1).
func Poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}

// TruncatedGeometric draws a record length in [1, max] with mean
// approximately mean: a geometric distribution on {1, 2, ...} with success
// probability 1/mean, resampled while above max. The geometric's heavy-ish
// tail reproduces the long-record skew the paper's real datasets exhibit
// (avg 6.5 vs max 164 for POS).
func TruncatedGeometric(rng *rand.Rand, mean float64, max int) int {
	if max < 1 {
		return 1
	}
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	for {
		// Inverse CDF of geometric on {1,2,...}.
		u := rng.Float64()
		l := 1 + int(math.Floor(math.Log(1-u)/math.Log(1-p)))
		if l >= 1 && l <= max {
			return l
		}
	}
}
