package quest

import (
	"math"
	"math/rand/v2"
	"testing"

	"disasso/internal/dataset"
)

func TestWeightedSamplerDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	s := NewWeightedSampler([]float64{1, 3, 6})
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[s.Sample(rng)]++
	}
	want := []float64{0.1, 0.3, 0.6}
	for i, c := range counts {
		got := float64(c) / n
		if math.Abs(got-want[i]) > 0.02 {
			t.Errorf("index %d frequency %.3f, want %.3f ± 0.02", i, got, want[i])
		}
	}
}

func TestWeightedSamplerDegenerate(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	s := NewWeightedSampler(nil)
	if got := s.Sample(rng); got != 0 {
		t.Errorf("empty sampler returned %d", got)
	}
	// All-zero weights fall back to uniform.
	s = NewWeightedSampler([]float64{0, 0, 0})
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		seen[s.Sample(rng)] = true
	}
	if len(seen) != 3 {
		t.Errorf("zero-weight sampler covered %d of 3 indices", len(seen))
	}
	// Single weight always returns 0.
	s = NewWeightedSampler([]float64{5})
	for i := 0; i < 10; i++ {
		if s.Sample(rng) != 0 {
			t.Fatal("single-element sampler strayed")
		}
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 1)
	if w[0] != 1 || math.Abs(w[1]-0.5) > 1e-12 || math.Abs(w[3]-0.25) > 1e-12 {
		t.Errorf("ZipfWeights = %v", w)
	}
	w = ZipfWeights(3, 0)
	for _, v := range w {
		if v != 1 {
			t.Errorf("s=0 should be uniform, got %v", w)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for _, lambda := range []float64{0.5, 4, 10, 50} {
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += Poisson(rng, lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.1 {
			t.Errorf("Poisson(%v) mean %.3f", lambda, mean)
		}
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -1) != 0 {
		t.Error("Poisson with non-positive lambda must be 0")
	}
}

func TestTruncatedGeometric(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	const n = 30000
	sum, maxSeen := 0, 0
	for i := 0; i < n; i++ {
		v := TruncatedGeometric(rng, 6.5, 164)
		if v < 1 || v > 164 {
			t.Fatalf("out of range: %d", v)
		}
		sum += v
		if v > maxSeen {
			maxSeen = v
		}
	}
	mean := float64(sum) / n
	if math.Abs(mean-6.5) > 0.5 {
		t.Errorf("mean %.2f, want ≈6.5", mean)
	}
	if maxSeen < 20 {
		t.Errorf("max seen %d — tail too light", maxSeen)
	}
	if TruncatedGeometric(rng, 1, 10) != 1 {
		t.Error("mean 1 must yield length 1")
	}
	if TruncatedGeometric(rng, 5, 0) != 1 {
		t.Error("max<1 must clamp to 1")
	}
}

func TestGeneratorBasics(t *testing.T) {
	cfg := Config{
		NumTransactions: 2000,
		DomainSize:      200,
		AvgTransLen:     8,
		AvgPatternLen:   4,
		NumPatterns:     50,
		Correlation:     0.5,
		CorruptionMean:  0.5,
		CorruptionDev:   0.1,
		Seed:            7,
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d := g.Generate()
	if d.Len() != 2000 {
		t.Fatalf("generated %d records, want 2000", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	st := d.ComputeStats()
	if st.AvgRecord < 4 || st.AvgRecord > 12 {
		t.Errorf("avg record length %.2f far from configured 8", st.AvgRecord)
	}
	if st.DomainSize > cfg.DomainSize {
		t.Errorf("domain %d exceeds configured %d", st.DomainSize, cfg.DomainSize)
	}
	for _, r := range d.Records {
		for _, term := range r {
			if term < 0 || int(term) >= cfg.DomainSize {
				t.Fatalf("term %d outside domain", term)
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumTransactions = 500
	cfg.DomainSize = 100
	cfg.NumPatterns = 30
	g1, _ := New(cfg)
	g2, _ := New(cfg)
	d1, d2 := g1.Generate(), g2.Generate()
	if d1.Len() != d2.Len() {
		t.Fatal("lengths differ")
	}
	for i := range d1.Records {
		if !d1.Records[i].Equal(d2.Records[i]) {
			t.Fatalf("record %d differs: %v vs %v", i, d1.Records[i], d2.Records[i])
		}
	}
	cfg.Seed = 99
	g3, _ := New(cfg)
	d3 := g3.Generate()
	same := true
	for i := range d1.Records {
		if !d1.Records[i].Equal(d3.Records[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGeneratorProducesCooccurrence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumTransactions = 5000
	cfg.DomainSize = 300
	cfg.NumPatterns = 40
	g, _ := New(cfg)
	d := g.Generate()
	// With a 40-pattern pool, some pair must co-occur far above the
	// independence baseline. Find the most frequent pair among top terms.
	top := d.TermsByFrequency()
	if len(top) > 30 {
		top = top[:30]
	}
	best := 0
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			s := d.SupportOf(dataset.NewRecord(top[i], top[j]))
			if s > best {
				best = s
			}
		}
	}
	if best < 50 {
		t.Errorf("max pair support %d — no co-occurrence structure", best)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumTransactions: -1, DomainSize: 10, AvgTransLen: 5, NumPatterns: 5},
		{NumTransactions: 10, DomainSize: 0, AvgTransLen: 5, NumPatterns: 5},
		{NumTransactions: 10, DomainSize: 10, AvgTransLen: 0.5, NumPatterns: 5},
		{NumTransactions: 10, DomainSize: 10, AvgTransLen: 5, NumPatterns: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewWithPopularity(DefaultConfig(), []float64{1}); err == nil {
		t.Error("mismatched popularity length accepted")
	}
}
