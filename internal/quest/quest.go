// Package quest implements the IBM Quest market-basket synthetic data
// generator of Agrawal & Srikant ("Fast Algorithms for Mining Association
// Rules", VLDB 1994, §4.1), which the paper uses for all synthetic
// experiments (1M records, 5k domain, average record length 10 by default).
//
// The original Quest binary is closed source; this is a from-scratch
// implementation of the published procedure: a pool of "potentially large"
// itemsets with exponential weights, inter-pattern correlation, per-pattern
// corruption levels, and Poisson-distributed transaction and pattern sizes.
package quest

import (
	"fmt"
	"math/rand/v2"

	"disasso/internal/dataset"
)

// Config parameterizes the generator using the conventional Quest notation.
type Config struct {
	NumTransactions int     // |D|: number of records to generate
	DomainSize      int     // N: number of distinct items
	AvgTransLen     float64 // |T|: average record size
	AvgPatternLen   float64 // |I|: average size of potentially large itemsets
	NumPatterns     int     // |L|: size of the pattern pool (Quest default 2000)
	Correlation     float64 // fraction of a pattern drawn from its predecessor (Quest default 0.5)
	CorruptionMean  float64 // mean per-pattern corruption level (Quest default 0.5)
	CorruptionDev   float64 // std-dev of the corruption level (Quest default 0.1)
	Seed            uint64  // PRNG seed; same seed, same dataset
}

// DefaultConfig mirrors the paper's synthetic defaults: 1M records, 5k
// domain, average record length 10.
func DefaultConfig() Config {
	return Config{
		NumTransactions: 1_000_000,
		DomainSize:      5_000,
		AvgTransLen:     10,
		AvgPatternLen:   4,
		NumPatterns:     2_000,
		Correlation:     0.5,
		CorruptionMean:  0.5,
		CorruptionDev:   0.1,
		Seed:            1,
	}
}

func (c Config) validate() error {
	if c.NumTransactions < 0 {
		return fmt.Errorf("quest: negative NumTransactions %d", c.NumTransactions)
	}
	if c.DomainSize < 1 {
		return fmt.Errorf("quest: DomainSize %d < 1", c.DomainSize)
	}
	if c.AvgTransLen < 1 {
		return fmt.Errorf("quest: AvgTransLen %v < 1", c.AvgTransLen)
	}
	if c.NumPatterns < 1 {
		return fmt.Errorf("quest: NumPatterns %d < 1", c.NumPatterns)
	}
	return nil
}

// pattern is a potentially large itemset with its corruption level.
type pattern struct {
	items      []dataset.Term
	corruption float64
}

// Generator produces datasets from a fixed pattern pool. Create one with New
// and call Generate; Generate may be called multiple times for independent
// datasets over the same pool.
type Generator struct {
	cfg      Config
	patterns []pattern
	roulette *WeightedSampler
	rng      *rand.Rand
	itemPick *WeightedSampler // popularity of items inside patterns; nil = uniform
}

// New builds a generator with a uniform item-popularity profile, as the
// original Quest does.
func New(cfg Config) (*Generator, error) {
	return NewWithPopularity(cfg, nil)
}

// NewWithPopularity builds a generator whose pattern items are drawn from the
// given per-item weight profile (e.g. Zipf weights for web-log-like data).
// A nil profile means uniform. len(popularity) must equal cfg.DomainSize when
// non-nil.
func NewWithPopularity(cfg Config, popularity []float64) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if popularity != nil && len(popularity) != cfg.DomainSize {
		return nil, fmt.Errorf("quest: popularity has %d weights, domain is %d", len(popularity), cfg.DomainSize)
	}
	g := &Generator{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0x9E3779B97F4A7C15)),
	}
	if popularity != nil {
		g.itemPick = NewWeightedSampler(popularity)
	}
	g.buildPatterns()
	return g, nil
}

// buildPatterns creates the pool of potentially large itemsets. Sizes are
// Poisson(|I|) with minimum 1; a Correlation fraction of each pattern's items
// come from the previous pattern; weights are exponential with mean 1,
// normalized by the roulette sampler; corruption levels are clipped normals.
func (g *Generator) buildPatterns() {
	g.patterns = make([]pattern, g.cfg.NumPatterns)
	weights := make([]float64, g.cfg.NumPatterns)
	var prev []dataset.Term
	for i := range g.patterns {
		size := Poisson(g.rng, g.cfg.AvgPatternLen)
		if size < 1 {
			size = 1
		}
		if size > g.cfg.DomainSize {
			size = g.cfg.DomainSize
		}
		items := make(map[dataset.Term]struct{}, size)
		// Carry over a correlated fraction from the previous pattern.
		if len(prev) > 0 {
			carry := int(g.cfg.Correlation*float64(size) + 0.5)
			for _, idx := range g.rng.Perm(len(prev)) {
				if len(items) >= carry {
					break
				}
				items[prev[idx]] = struct{}{}
			}
		}
		for len(items) < size {
			items[g.pickItem()] = struct{}{}
		}
		flat := make([]dataset.Term, 0, len(items))
		for t := range items {
			flat = append(flat, t)
		}
		corr := g.cfg.CorruptionMean + g.cfg.CorruptionDev*g.rng.NormFloat64()
		if corr < 0 {
			corr = 0
		}
		if corr > 1 {
			corr = 1
		}
		g.patterns[i] = pattern{items: dataset.NewRecord(flat...), corruption: corr}
		prev = g.patterns[i].items
		weights[i] = g.rng.ExpFloat64()
	}
	g.roulette = NewWeightedSampler(weights)
}

func (g *Generator) pickItem() dataset.Term {
	if g.itemPick != nil {
		return dataset.Term(g.itemPick.Sample(g.rng))
	}
	return dataset.Term(g.rng.IntN(g.cfg.DomainSize))
}

// Generate produces cfg.NumTransactions records. Each record's target size is
// Poisson(|T|) (minimum 1); patterns are drawn by weight and corrupted by
// dropping items while U(0,1) < corruption; a pattern that overflows the
// remaining budget is added anyway half the time, otherwise the record is
// closed. Records have set semantics, matching the paper's data model.
func (g *Generator) Generate() *dataset.Dataset {
	d := dataset.New(g.cfg.NumTransactions)
	for i := 0; i < g.cfg.NumTransactions; i++ {
		d.Records = append(d.Records, g.transaction())
	}
	return d
}

func (g *Generator) transaction() dataset.Record {
	target := Poisson(g.rng, g.cfg.AvgTransLen)
	if target < 1 {
		target = 1
	}
	items := make(map[dataset.Term]struct{}, target)
	for guard := 0; len(items) < target && guard < 50; guard++ {
		p := g.patterns[g.roulette.Sample(g.rng)]
		kept := make([]dataset.Term, 0, len(p.items))
		for _, t := range p.items {
			if g.rng.Float64() >= p.corruption {
				kept = append(kept, t)
			}
		}
		if len(kept) == 0 {
			continue
		}
		if len(items)+len(kept) > target && len(items) > 0 {
			// Quest: oversize patterns go in half the time; otherwise the
			// transaction is closed as-is.
			if g.rng.Float64() < 0.5 {
				for _, t := range kept {
					items[t] = struct{}{}
				}
			}
			break
		}
		for _, t := range kept {
			items[t] = struct{}{}
		}
	}
	if len(items) == 0 {
		items[g.pickItem()] = struct{}{}
	}
	flat := make([]dataset.Term, 0, len(items))
	for t := range items {
		flat = append(flat, t)
	}
	return dataset.NewRecord(flat...)
}
