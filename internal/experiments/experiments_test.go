package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// testConfig shrinks everything so the whole suite runs in seconds.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 500 // POS → ~1k records; synthetic sweeps → 2k–20k
	cfg.TopK = 100
	cfg.Seed = 7
	return cfg
}

func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("fig99", testConfig()); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(RegistryOrder) != len(Registry) {
		t.Fatalf("RegistryOrder has %d entries, Registry %d", len(RegistryOrder), len(Registry))
	}
	for _, id := range RegistryOrder {
		if _, ok := Registry[id]; !ok {
			t.Errorf("RegistryOrder lists unknown id %q", id)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	tables, err := Run("fig6", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("Fig6: %d tables, %d rows", len(tables), len(tables[0].Rows))
	}
	var buf bytes.Buffer
	tables[0].Fprint(&buf)
	out := buf.String()
	for _, name := range []string{"POS", "WV1", "WV2"} {
		if !strings.Contains(out, name) {
			t.Errorf("Fig6 output missing %s:\n%s", name, out)
		}
	}
}

func TestFig7aShapeAndRanges(t *testing.T) {
	tables, err := Run("fig7a", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("Fig7a rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for i := 1; i < len(row); i++ {
			v := parseCell(t, row[i])
			if v < 0 || v > 2 {
				t.Errorf("Fig7a %s %s = %v out of range", row[0], tab.Header[i], v)
			}
		}
	}
}

func TestFig7bcMonotonicTendency(t *testing.T) {
	tables, err := Run("fig7bc", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("Fig7bc produced %d tables", len(tables))
	}
	b := tables[0]
	if len(b.Rows) != 9 { // k = 4..20 step 2
		t.Fatalf("Fig7b rows = %d, want 9", len(b.Rows))
	}
	// The paper's claim: information loss grows (weakly) with k. Check the
	// ends rather than strict monotonicity (randomness in reconstruction).
	first := parseCell(t, b.Rows[0][1])
	last := parseCell(t, b.Rows[len(b.Rows)-1][1])
	if last+1e-9 < first-0.2 {
		t.Errorf("tKd-a fell sharply with k: %v → %v", first, last)
	}
}

func TestFig7dShape(t *testing.T) {
	tables, err := Run("fig7d", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) == 0 {
		t.Fatal("Fig7d has no rows")
	}
	if len(tab.Header) != 6 {
		t.Fatalf("Fig7d header = %v", tab.Header)
	}
}

func TestFig8Family(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 2000 // keep the 10-point sweeps tiny: 500–5000 records
	tables, err := Run("fig8ab", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || len(tables[0].Rows) != 10 {
		t.Fatalf("Fig8ab: %d tables, %d rows", len(tables), len(tables[0].Rows))
	}
	for _, id := range []string{"fig8c", "fig8d"} {
		tabs, err := Run(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tabs) != 1 || len(tabs[0].Rows) == 0 {
			t.Fatalf("%s shape wrong", id)
		}
	}
}

func TestFig9and10ReportPositiveTimes(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 2000
	for _, id := range []string{"fig9ab", "fig10a", "fig10b"} {
		tabs, err := Run(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tab := range tabs {
			for _, row := range tab.Rows {
				secs := parseCell(t, row[len(row)-1])
				if secs < 0 {
					t.Errorf("%s: negative time %v", tab.ID, secs)
				}
			}
		}
	}
}

func TestFig11ComparisonShape(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 500
	tables, err := Run("fig11", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Fig11 produced %d tables", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) != 3 {
			t.Fatalf("%s rows = %d", tab.ID, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			for i := 1; i < len(row); i++ {
				v := parseCell(t, row[i])
				if v < 0 || v > 2 {
					t.Errorf("%s %s col %d = %v out of range", tab.ID, row[0], i, v)
				}
			}
		}
	}
	// The headline result: disassociation beats DiffPart on tKd.
	a11 := tables[0]
	wins := 0
	for _, row := range a11.Rows {
		if parseCell(t, row[1]) <= parseCell(t, row[2]) {
			wins++
		}
	}
	if wins < 2 {
		t.Errorf("disassociation won tKd on only %d of 3 datasets:\n%+v", wins, a11.Rows)
	}
}

func TestAblationAndAuditRunners(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 500
	for _, id := range []string{"ablation", "clustering", "audit"} {
		tabs, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tabs) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		for _, tab := range tabs {
			if len(tab.Rows) == 0 {
				t.Errorf("%s table %s has no rows", id, tab.ID)
			}
		}
	}
}

func TestTableFprintAlignment(t *testing.T) {
	tab := &Table{ID: "T", Title: "title", Header: []string{"a", "long-header"}}
	tab.AddRow("x", 1.23456)
	tab.AddRow("yyyy", 2)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("output lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[1], "long-header") || !strings.Contains(lines[2], "1.235") {
		t.Errorf("formatting off:\n%s", buf.String())
	}
}
