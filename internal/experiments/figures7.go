package experiments

import (
	"fmt"
	"math/rand/v2"

	"disasso/internal/metrics"
	"disasso/internal/realdata"
	"disasso/internal/reconstruct"
)

// Fig6 reproduces the dataset-statistics table (Figure 6): |D|, |T|, max and
// average record size of the three stand-ins at the configured scale.
func Fig6(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "Fig6",
		Title:  fmt.Sprintf("experimental datasets (stand-ins, scale 1/%d)", cfg.Scale),
		Header: []string{"Dataset", "|D|", "|T|", "max rec. size", "avg rec. size"},
	}
	for _, spec := range realdata.All() {
		d := standIn(spec, cfg)
		st := d.ComputeStats()
		t.AddRow(spec.Name, st.NumRecords, st.DomainSize, st.MaxRecord, fmt.Sprintf("%.1f", st.AvgRecord))
	}
	return []*Table{t}
}

// Fig7a reproduces Figure 7a: information loss of disassociation on the
// three real datasets at k = 5, m = 2 — the five standard series.
func Fig7a(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "Fig7a",
		Title:  "information loss on real data (k=5, m=2)",
		Header: []string{"Dataset", "tKd-a", "tKd", "re-a", "re", "tlost"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7A))
	for _, spec := range realdata.All() {
		d := standIn(spec, cfg)
		a, _ := anonymize(d, cfg)
		q := quality(d, a, cfg, rng)
		t.AddRow(spec.Name, q.tkdA, q.tkd, q.reA, q.re, q.tlost)
	}
	return []*Table{t}
}

// Fig7bc reproduces Figures 7b and 7c: information loss on POS as the
// guarantee strength k grows from 4 to 20 (tKd-a and tKd in 7b; re-a, re
// and tlost in 7c).
func Fig7bc(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	b := &Table{
		ID:     "Fig7b",
		Title:  "tKd vs k (POS)",
		Header: []string{"k", "tKd-a", "tKd"},
	}
	c := &Table{
		ID:     "Fig7c",
		Title:  "re and tlost vs k (POS)",
		Header: []string{"k", "re-a", "re", "tlost"},
	}
	d := standIn(realdata.POS, cfg)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7BC))
	for k := 4; k <= 20; k += 2 {
		kcfg := cfg
		kcfg.K = k
		a, _ := anonymize(d, kcfg)
		q := quality(d, a, kcfg, rng)
		b.AddRow(k, q.tkdA, q.tkd)
		c.AddRow(k, q.reA, q.re, q.tlost)
	}
	return []*Table{b, c}
}

// Fig7d reproduces Figure 7d: relative error over term-rank windows
// (0–20th, 100–120th, ..., 400–420th most frequent terms of POS), comparing
// the chunk lower bounds (re-a) against averages over 1, 2, 5 and 10
// reconstructions.
func Fig7d(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "Fig7d",
		Title:  "re vs term frequency range (POS), averaged reconstructions",
		Header: []string{"range", "re-a", "re-1", "re-2", "re-5", "re-10"},
	}
	d := standIn(realdata.POS, cfg)
	a, _ := anonymize(d, cfg)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7D))
	rs := reconstruct.SampleMany(a, 10, rng)
	for _, lo := range []int{0, 100, 200, 300, 400} {
		terms := metrics.RangeTerms(d, lo, lo+20)
		if len(terms) == 0 {
			continue
		}
		reA := metrics.RelativeErrorLowerBound(d.Records, a, terms)
		re1 := metrics.RelativeErrorAveraged(d.Records, rs[:1], terms)
		re2 := metrics.RelativeErrorAveraged(d.Records, rs[:2], terms)
		re5 := metrics.RelativeErrorAveraged(d.Records, rs[:5], terms)
		re10 := metrics.RelativeErrorAveraged(d.Records, rs, terms)
		t.AddRow(lo, reA, re1, re2, re5, re10)
	}
	return []*Table{t}
}
