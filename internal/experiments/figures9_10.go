package experiments

import (
	"fmt"

	"disasso/internal/realdata"
)

// Fig9ab reproduces Figures 9a and 9b: anonymization cost in seconds on the
// three real stand-ins (9a), and on POS as k grows (9b — the paper's claim
// is that cost is insensitive to k).
func Fig9ab(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	a9 := &Table{
		ID:     "Fig9a",
		Title:  "anonymization time on real data (seconds)",
		Header: []string{"Dataset", "seconds"},
	}
	for _, spec := range realdata.All() {
		d := standIn(spec, cfg)
		_, elapsed := anonymize(d, cfg)
		a9.AddRow(spec.Name, elapsed.Seconds())
	}
	b9 := &Table{
		ID:     "Fig9b",
		Title:  "anonymization time vs k (POS, seconds)",
		Header: []string{"k", "seconds"},
	}
	d := standIn(realdata.POS, cfg)
	for k := 4; k <= 20; k += 2 {
		kcfg := cfg
		kcfg.K = k
		_, elapsed := anonymize(d, kcfg)
		b9.AddRow(k, elapsed.Seconds())
	}
	return []*Table{a9, b9}
}

// Fig10a reproduces Figure 10a: anonymization cost versus dataset size on
// Quest synthetic data (the paper's claim: linear growth in |D|).
func Fig10a(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "Fig10a",
		Title:  fmt.Sprintf("anonymization time vs dataset size (synthetic, 1/%d of 1M–10M, seconds)", cfg.Scale),
		Header: []string{"records", "seconds"},
	}
	for i, n := range fig8Sizes(cfg) {
		d := questDataset(n, 5000, 10, cfg.Seed+uint64(i))
		_, elapsed := anonymize(d, cfg)
		t.AddRow(n, elapsed.Seconds())
	}
	return []*Table{t}
}

// Fig10b reproduces Figure 10b: anonymization cost versus domain size (the
// paper's claim: linear growth in |T|).
func Fig10b(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "Fig10b",
		Title:  "anonymization time vs domain size (synthetic, seconds)",
		Header: []string{"domain", "seconds"},
	}
	n := 1_000_000 / cfg.Scale
	for domain := 2000; domain <= 10000; domain += 2000 {
		d := questDataset(n, domain, 10, cfg.Seed+uint64(domain))
		_, elapsed := anonymize(d, cfg)
		t.AddRow(domain, elapsed.Seconds())
	}
	return []*Table{t}
}
