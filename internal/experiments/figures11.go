package experiments

import (
	"fmt"
	"math/rand/v2"

	"disasso/internal/dataset"
	"disasso/internal/diffpriv"
	"disasso/internal/generalization"
	"disasso/internal/hierarchy"
	"disasso/internal/metrics"
	"disasso/internal/realdata"
	"disasso/internal/reconstruct"
)

// hierarchyFanout is the branching factor of the generalization taxonomy
// used by the Apriori baseline, the tKd-ML2 metric and DiffPart.
const hierarchyFanout = 10

// Fig11 reproduces Figures 11a, 11b and 11c: disassociation versus DiffPart
// (tKd, re) and versus the generalization-based Apriori anonymization
// (tKd-ML2, re) on the three real stand-ins at k = 5, m = 2.
//
// Per the paper's protocol: DiffPart runs with privacy budgets 0.5–1.25
// (step 0.25) and the best result is reported; Figure 11c uses the 0–20th
// most frequent terms for re because DiffPart suppresses the 200–220th
// outright; Apriori's re divides a generalized term's support uniformly
// among the original terms mapping to it (realized here as a uniform leaf
// sample per occurrence).
func Fig11(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	a11 := &Table{
		ID:     "Fig11a",
		Title:  "tKd: disassociation vs DiffPart",
		Header: []string{"Dataset", "Disassociation", "DiffPart"},
	}
	b11 := &Table{
		ID:     "Fig11b",
		Title:  "tKd-ML2: disassociation vs Apriori generalization",
		Header: []string{"Dataset", "Disassociation", "Apriori"},
	}
	c11 := &Table{
		ID:     "Fig11c",
		Title:  "re (top 0–20 terms): disassociation vs DiffPart vs Apriori",
		Header: []string{"Dataset", "Disassociation", "DiffPart", "Apriori"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x11ABC))
	for _, spec := range realdata.All() {
		d := standIn(spec, cfg)
		domain := spec.DomainSize
		h, err := hierarchy.New(domain, hierarchyFanout)
		if err != nil {
			panic(fmt.Sprintf("experiments: hierarchy: %v", err))
		}

		// Disassociation.
		anon, _ := anonymize(d, cfg)
		recon := reconstruct.Sample(anon, rng)

		// DiffPart: best tKd across the paper's budget sweep.
		bestTKD := 2.0
		var bestOut *dataset.Dataset
		for _, eps := range []float64{0.5, 0.75, 1.0, 1.25} {
			out, err := diffpriv.Anonymize(d, h, diffpriv.Config{Epsilon: eps, Seed: cfg.Seed})
			if err != nil {
				panic(fmt.Sprintf("experiments: diffpart: %v", err))
			}
			if tkd := metrics.TopKDeviation(d.Records, out.Records, cfg.TopK, cfg.MaxItemsetSize); tkd < bestTKD {
				bestTKD, bestOut = tkd, out
			}
		}

		// Apriori generalization.
		gen, err := generalization.Anonymize(d, h, cfg.K, cfg.M)
		if err != nil {
			panic(fmt.Sprintf("experiments: apriori: %v", err))
		}
		genRecon := uniformLeafSample(gen.Dataset, h, rng)

		disTKD := metrics.TopKDeviation(d.Records, recon.Records, cfg.TopK, cfg.MaxItemsetSize)
		a11.AddRow(spec.Name, disTKD, bestTKD)

		disML2 := metrics.TopKDeviationML2(d.Records, recon.Records, h, cfg.TopK, cfg.MaxItemsetSize)
		aprML2 := metrics.TopKDeviationML2(d.Records, gen.Dataset.Records, h, cfg.TopK, cfg.MaxItemsetSize)
		b11.AddRow(spec.Name, disML2, aprML2)

		topTerms := metrics.RangeTerms(d, 0, 20)
		disRE := metrics.RelativeError(d.Records, recon.Records, topTerms)
		dpRE := 2.0
		if bestOut != nil {
			dpRE = metrics.RelativeError(d.Records, bestOut.Records, topTerms)
		}
		aprRE := metrics.RelativeError(d.Records, genRecon.Records, topTerms)
		c11.AddRow(spec.Name, disRE, dpRE, aprRE)
	}
	return []*Table{a11, b11, c11}
}

// uniformLeafSample realizes the paper's convention for computing re on a
// generalized dataset: each generalized term's support is divided uniformly
// among the original terms that map to it. Sampling one uniform leaf per
// occurrence achieves that division in expectation.
func uniformLeafSample(d *dataset.Dataset, h *hierarchy.Hierarchy, rng *rand.Rand) *dataset.Dataset {
	leavesOf := make(map[dataset.Term][]dataset.Term)
	out := dataset.New(d.Len())
	for _, r := range d.Records {
		sampled := make(dataset.Record, 0, len(r))
		for _, t := range r {
			if h.IsLeaf(t) {
				sampled = append(sampled, t)
				continue
			}
			ls, ok := leavesOf[t]
			if !ok {
				ls = h.Leaves(t, nil)
				leavesOf[t] = ls
			}
			if len(ls) > 0 {
				sampled = append(sampled, ls[rng.IntN(len(ls))])
			}
		}
		out.Records = append(out.Records, sampled.Normalize())
	}
	return out
}
