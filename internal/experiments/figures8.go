package experiments

import (
	"fmt"
	"math/rand/v2"
)

// fig8Sizes returns the paper's 1M..10M record sweep divided by Scale.
func fig8Sizes(cfg Config) []int {
	var sizes []int
	for millions := 1; millions <= 10; millions++ {
		sizes = append(sizes, millions*1_000_000/cfg.Scale)
	}
	return sizes
}

// Fig8ab reproduces Figures 8a and 8b: information loss on Quest synthetic
// data (5k domain, average record length 10) as the dataset grows from 1M to
// 10M records (divided by Scale). 8a plots tKd-a and tKd; 8b plots tlost,
// re-a and re.
func Fig8ab(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	a8 := &Table{
		ID:     "Fig8a",
		Title:  fmt.Sprintf("tKd vs dataset size (synthetic, sizes 1/%d of 1M–10M)", cfg.Scale),
		Header: []string{"records", "tKd-a", "tKd"},
	}
	b8 := &Table{
		ID:     "Fig8b",
		Title:  "tlost and re vs dataset size (synthetic)",
		Header: []string{"records", "tlost", "re-a", "re"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x8AB))
	for i, n := range fig8Sizes(cfg) {
		d := questDataset(n, 5000, 10, cfg.Seed+uint64(i))
		a, _ := anonymize(d, cfg)
		q := quality(d, a, cfg, rng)
		a8.AddRow(n, q.tkdA, q.tkd)
		b8.AddRow(n, q.tlost, q.reA, q.re)
	}
	return []*Table{a8, b8}
}

// Fig8c reproduces Figure 8c: information loss as the domain size grows from
// 2k to 10k terms (1M records / Scale, average record length 10).
func Fig8c(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "Fig8c",
		Title:  "information loss vs domain size (synthetic)",
		Header: []string{"domain", "tlost", "re", "tKd-a", "tKd"},
	}
	n := 1_000_000 / cfg.Scale
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x8C))
	for domain := 2000; domain <= 10000; domain += 1000 {
		d := questDataset(n, domain, 10, cfg.Seed+uint64(domain))
		a, _ := anonymize(d, cfg)
		q := quality(d, a, cfg, rng)
		t.AddRow(domain, q.tlost, q.re, q.tkdA, q.tkd)
	}
	return []*Table{t}
}

// Fig8d reproduces Figure 8d: information loss as the average record length
// grows from 6 to 14 (1M records / Scale, 5k domain).
func Fig8d(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "Fig8d",
		Title:  "information loss vs record length (synthetic)",
		Header: []string{"avg length", "tlost", "re", "tKd-a", "tKd"},
	}
	n := 1_000_000 / cfg.Scale
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x8D))
	for avgLen := 6; avgLen <= 14; avgLen += 2 {
		d := questDataset(n, 5000, float64(avgLen), cfg.Seed+uint64(avgLen))
		a, _ := anonymize(d, cfg)
		q := quality(d, a, cfg, rng)
		t.AddRow(avgLen, q.tlost, q.re, q.tkdA, q.tkd)
	}
	return []*Table{t}
}
