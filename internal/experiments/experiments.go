// Package experiments regenerates every table and figure of the paper's
// Section 7 evaluation. Each runner returns one or more Tables carrying the
// same rows/series the paper plots; cmd/experiments prints them and
// EXPERIMENTS.md records paper-vs-measured values.
//
// The paper's real datasets are replaced by the internal/realdata stand-ins
// and the IBM Quest binary by internal/quest (DESIGN.md §4); a Scale divisor
// keeps the multi-million-record sweeps tractable. Absolute values shift
// accordingly, but the shapes the paper claims — who wins, what grows
// linearly, where quality degrades — are what the harness reproduces.
package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strings"
	"time"

	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/metrics"
	"disasso/internal/quest"
	"disasso/internal/realdata"
	"disasso/internal/reconstruct"
)

// Config carries the shared experiment parameters (paper defaults: k = 5,
// m = 2, top-1000 itemsets, re over the 200th–220th most frequent terms).
type Config struct {
	K, M           int
	TopK           int
	MaxItemsetSize int
	// Scale divides every dataset size (real stand-ins and synthetic
	// sweeps). 1 reproduces the paper's sizes; the default CLI uses 10.
	Scale int
	// Parallel is passed to the anonymizer (0 = GOMAXPROCS).
	Parallel int
	Seed     uint64
}

// DefaultConfig returns the paper's parameters at Scale 10.
func DefaultConfig() Config {
	return Config{K: 5, M: 2, TopK: 1000, MaxItemsetSize: 3, Scale: 10, Seed: 1}
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 5
	}
	if c.M == 0 {
		c.M = 2
	}
	if c.TopK == 0 {
		c.TopK = 1000
	}
	if c.MaxItemsetSize == 0 {
		c.MaxItemsetSize = 3
	}
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Table is one figure's data: rows of pre-formatted cells under a header.
type Table struct {
	ID     string // e.g. "Fig7a"
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row; float64 cells are rendered with 3
// decimals, ints and strings verbatim.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// Runner produces one or more tables.
type Runner func(cfg Config) []*Table

// Registry maps figure IDs (lower-case) to runners; cmd/experiments uses it
// to run figures by name. Runners that share computation are registered
// jointly (fig7bc produces both 7b and 7c).
var Registry = map[string]Runner{
	"fig6":       Fig6,
	"fig7a":      Fig7a,
	"fig7bc":     Fig7bc,
	"fig7d":      Fig7d,
	"fig8ab":     Fig8ab,
	"fig8c":      Fig8c,
	"fig8d":      Fig8d,
	"fig9ab":     Fig9ab,
	"fig10a":     Fig10a,
	"fig10b":     Fig10b,
	"fig11":      Fig11,
	"ablation":   Ablation,
	"clustering": Clustering,
	"audit":      Audit,
}

// RegistryOrder lists the registry keys in the paper's order, with the
// beyond-the-paper ablation and audit sweeps last.
var RegistryOrder = []string{
	"fig6", "fig7a", "fig7bc", "fig7d", "fig8ab", "fig8c", "fig8d",
	"fig9ab", "fig10a", "fig10b", "fig11", "ablation", "clustering", "audit",
}

// Run executes the named figure (case-insensitive) and returns its tables.
func Run(id string, cfg Config) ([]*Table, error) {
	r, ok := Registry[strings.ToLower(id)]
	if !ok {
		known := make([]string, 0, len(Registry))
		for k := range Registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown figure %q (known: %s)", id, strings.Join(known, ", "))
	}
	return r(cfg), nil
}

// standIn generates one scaled real-data stand-in.
func standIn(spec realdata.Spec, cfg Config) *dataset.Dataset {
	return spec.Scaled(cfg.Scale).Generate()
}

// anonymize runs the disassociation pipeline with the experiment parameters.
func anonymize(d *dataset.Dataset, cfg Config) (*core.Anonymized, time.Duration) {
	//lint:deterministic wall-clock runtime is the measured quantity, reported as such
	start := time.Now()
	a, err := core.Anonymize(d, core.Options{
		K: cfg.K, M: cfg.M, Parallel: cfg.Parallel, Seed: cfg.Seed,
	})
	if err != nil {
		// Experiment configurations are statically valid; an error here is a
		// bug, not an input problem.
		panic(fmt.Sprintf("experiments: anonymize: %v", err))
	}
	return a, time.Since(start)
}

// quality computes the five standard series for one dataset: tKd-a, tKd,
// re-a, re and tlost, using one random reconstruction.
type qualityResult struct {
	tkdA, tkd, reA, re, tlost float64
}

func quality(d *dataset.Dataset, a *core.Anonymized, cfg Config, rng *rand.Rand) qualityResult {
	terms := metrics.RangeTerms(d, 200, 220)
	if len(terms) == 0 {
		// Tiny domains: fall back to the least frequent decile.
		ranked := d.TermsByFrequency()
		lo := len(ranked) * 4 / 10
		hi := lo + 20
		if hi > len(ranked) {
			hi = len(ranked)
		}
		terms = ranked[lo:hi]
	}
	r := reconstruct.Sample(a, rng)
	return qualityResult{
		tkdA:  metrics.TopKDeviationLowerBound(d.Records, a, cfg.TopK, cfg.MaxItemsetSize),
		tkd:   metrics.TopKDeviation(d.Records, r.Records, cfg.TopK, cfg.MaxItemsetSize),
		reA:   metrics.RelativeErrorLowerBound(d.Records, a, terms),
		re:    metrics.RelativeError(d.Records, r.Records, terms),
		tlost: metrics.TermsLost(d, a, cfg.K),
	}
}

// questDataset generates a synthetic dataset with the paper's defaults (5k
// domain, average record length 10) at the given record count.
func questDataset(numRecords, domain int, avgLen float64, seed uint64) *dataset.Dataset {
	qcfg := quest.DefaultConfig()
	qcfg.NumTransactions = numRecords
	qcfg.DomainSize = domain
	qcfg.AvgTransLen = avgLen
	qcfg.Seed = seed
	g, err := quest.New(qcfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: quest: %v", err))
	}
	return g.Generate()
}
