package experiments

import (
	"math/rand/v2"
	"time"

	"disasso/internal/attack"
	"disasso/internal/core"
	"disasso/internal/dataset"
	"disasso/internal/largeitem"
	"disasso/internal/metrics"
	"disasso/internal/realdata"
	"disasso/internal/reconstruct"
)

// Ablation sweeps the design choices DESIGN.md calls out, beyond what the
// paper reports: the maximum cluster size of HORPART, and the REFINE step
// on/off — each measured on the POS stand-in with the standard quality
// metrics plus wall-clock cost.
func Ablation(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	d := standIn(realdata.POS, cfg)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xAB1A))

	mcs := &Table{
		ID:     "AblationMaxClusterSize",
		Title:  "effect of the horizontal partition bound (POS stand-in, k=5, m=2)",
		Header: []string{"maxClusterSize", "tKd-a", "tKd", "re", "tlost", "seconds"},
	}
	for _, size := range []int{10, 20, 30, 50, 100} {
		//lint:deterministic wall-clock runtime is the measured quantity, reported as such
		start := time.Now()
		a, err := core.Anonymize(d, core.Options{
			K: cfg.K, M: cfg.M, MaxClusterSize: size, Parallel: cfg.Parallel, Seed: cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		q := quality(d, a, cfg, rng)
		mcs.AddRow(size, q.tkdA, q.tkd, q.re, q.tlost, elapsed.Seconds())
	}

	ref := &Table{
		ID:     "AblationRefine",
		Title:  "effect of the REFINE step (POS stand-in, k=5, m=2)",
		Header: []string{"refine", "tKd-a", "tKd", "re", "tlost", "seconds"},
	}
	for _, disable := range []bool{false, true} {
		//lint:deterministic wall-clock runtime is the measured quantity, reported as such
		start := time.Now()
		a, err := core.Anonymize(d, core.Options{
			K: cfg.K, M: cfg.M, DisableRefine: disable, Parallel: cfg.Parallel, Seed: cfg.Seed,
		})
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		q := quality(d, a, cfg, rng)
		label := "on"
		if disable {
			label = "off"
		}
		ref.AddRow(label, q.tkdA, q.tkd, q.re, q.tlost, elapsed.Seconds())
	}
	return []*Table{mcs, ref}
}

// Clustering compares HORPART against the large-item transaction clustering
// of reference [29] (Wang, Xu & Liu, CIKM 1999) as the horizontal step —
// the comparison behind Section 4's claim that existing set-valued
// clusterers are too slow and lack size control. Both feed the same VERPART;
// the large-item side runs on a small sample because its cost evaluation is
// quadratic (that slowness being half the claim).
func Clustering(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	// Sample size kept small: the large-item algorithm re-evaluates the
	// global cost per candidate cluster per record. Scale shrinks it further
	// for tests and benchmarks.
	spec := realdata.POS
	spec.NumRecords = 20_000 / cfg.Scale
	if spec.NumRecords < 200 {
		spec.NumRecords = 200
	}
	d := spec.Generate()
	// Per-cluster RNGs are derived below; no shared stream needed.

	t := &Table{
		ID:     "AblationClustering",
		Title:  "HORPART vs large-item clustering as the horizontal step (2k-record POS sample)",
		Header: []string{"algorithm", "clusters", "max cluster", "tKd-a", "tlost", "seconds"},
	}

	evaluate := func(name string, clusters [][]dataset.Record, elapsed time.Duration) {
		maxSize := 0
		var leaves []*core.ClusterNode
		for i, records := range clusters {
			if len(records) > maxSize {
				maxSize = len(records)
			}
			crng := rand.New(rand.NewPCG(cfg.Seed, uint64(i)+1))
			cl := core.VerPart(records, cfg.K, cfg.M, nil, crng)
			leaves = append(leaves, &core.ClusterNode{Simple: cl})
		}
		a := &core.Anonymized{K: cfg.K, M: cfg.M, Clusters: leaves}
		tkdA := metrics.TopKDeviationLowerBound(d.Records, a, cfg.TopK, cfg.MaxItemsetSize)
		tlost := metrics.TermsLost(d, a, cfg.K)
		t.AddRow(name, len(clusters), maxSize, tkdA, tlost, elapsed.Seconds())
	}

	//lint:deterministic wall-clock runtime is the measured quantity, reported as such
	start := time.Now()
	hp := core.HorPart(d, core.DefaultMaxClusterSize, nil)
	hp = core.MergeUndersized(hp, cfg.K)
	evaluate("HORPART", hp, time.Since(start))

	//lint:deterministic wall-clock runtime is the measured quantity, reported as such
	start = time.Now()
	li := largeitem.Cluster(d.Records, largeitem.DefaultConfig())
	groups := li.Groups(d.Records)
	evaluate("large-item [29]", core.MergeUndersized(groups, cfg.K), time.Since(start))

	return []*Table{t}
}

// Audit measures the privacy guarantee empirically — the Section 5
// discussion quantified: candidate-set statistics for adversaries whose
// background knowledge grows from 1 term to beyond the protected m, on the
// WV1 stand-in (the smallest dataset, hence the most exposed).
func Audit(cfg Config) []*Table {
	cfg = cfg.withDefaults()
	d := standIn(realdata.WV1, cfg)
	a, _ := anonymize(d, cfg)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xA0D17))

	t := &Table{
		ID:     "Audit",
		Title:  "adversary candidate sets vs background knowledge size (WV1 stand-in, k=5, m=2)",
		Header: []string{"knowledge", "min candidates", "mean candidates", "identified", "samples"},
	}
	for _, e := range attack.StrongerAdversary(a, d, cfg.M+3, 400, rng) {
		t.AddRow(e.KnowledgeSize, e.MinCandidates, e.MeanCandidates, e.Identified, e.Samples)
	}

	// Cross-check: a sampled reconstruction respects the published lower
	// bounds (sanity line rather than a series).
	r := reconstruct.Sample(a, rng)
	tkd := metrics.TopKDeviation(d.Records, r.Records, cfg.TopK, cfg.MaxItemsetSize)
	t.AddRow("tKd(check)", "", tkd, "", "")
	return []*Table{t}
}
