package shard

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// writeBigDataset streams a generated dataset to a text file until its
// estimated in-memory footprint reaches atLeast bytes, returning the path
// and the footprint. The records never exist in memory together.
func writeBigDataset(t testing.TB, dir string, atLeast int64) (string, int64, int) {
	t.Helper()
	path := filepath.Join(dir, "big.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sw := dataset.NewStreamWriter(f)
	rng := rand.New(rand.NewPCG(0xB16, 0xDA7A))
	var footprint int64
	n := 0
	terms := make([]dataset.Term, 0, 12)
	for footprint < atLeast {
		terms = terms[:0]
		for j := 0; j < 2+rng.IntN(9); j++ {
			terms = append(terms, dataset.Term(rng.IntN(2000)))
		}
		rec := dataset.NewRecord(terms...)
		if err := sw.Write(rec); err != nil {
			t.Fatal(err)
		}
		footprint += recordFootprint(len(rec))
		n++
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	return path, footprint, n
}

// TestStreamBoundedMemory is the acceptance guard for the streaming engine:
// anonymizing a dataset at least 4× the configured memory budget must keep
// the peak heap under ~1.5× the budget. The heap is sampled concurrently
// while the engine runs; GC is tightened so the sampled peak tracks live
// bytes instead of collector lag.
func TestStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-thousand-record run")
	}
	if raceEnabled {
		t.Skip("race instrumentation multiplies the heap; the bound is meaningless")
	}
	const budget = int64(4 << 20)
	dir := t.TempDir()
	path, footprint, n := writeBigDataset(t, dir, 4*budget)
	t.Logf("dataset: %d records, est. footprint %.1f MiB (budget %.1f MiB)",
		n, float64(footprint)/(1<<20), float64(budget)/(1<<20))

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	// The sampler measures *live* heap: each sample forces a collection, so
	// HeapAlloc reflects the engine's resident working set rather than
	// GC-pacing lag (Go's pacer happily lets small heaps grow several MiB of
	// garbage between cycles, which is noise, not footprint).
	var peak atomic.Uint64
	done := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		ticker := time.NewTicker(100 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				runtime.GC()
				var s runtime.MemStats
				runtime.ReadMemStats(&s)
				for {
					p := peak.Load()
					if s.HeapAlloc <= p || peak.CompareAndSwap(p, s.HeapAlloc) {
						break
					}
				}
			}
		}
	}()

	in, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	out, err := os.Create(filepath.Join(dir, "out.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()

	st, err := Anonymize(in, out, Options{
		Core:         core.Options{K: 5, M: 2, Seed: 1, Parallel: 2},
		MemoryBudget: budget,
		TempDir:      dir,
	})
	close(done)
	samplerWG.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Spilled || st.Shards < 4 {
		t.Fatalf("run did not exercise the sharded path: %+v", st)
	}
	if st.Records != n {
		t.Fatalf("engine saw %d of %d records", st.Records, n)
	}

	peakDelta := int64(peak.Load()) - int64(base)
	limit := budget + budget/2
	t.Logf("peak heap over baseline: %.1f MiB (limit %.1f MiB), %d shards (cut %d)",
		float64(peakDelta)/(1<<20), float64(limit)/(1<<20), st.Shards, st.ShardRecords)
	if peakDelta > limit {
		t.Errorf("peak heap %.1f MiB exceeds 1.5× budget %.1f MiB for a %.1f MiB dataset",
			float64(peakDelta)/(1<<20), float64(limit)/(1<<20), float64(footprint)/(1<<20))
	}
}
