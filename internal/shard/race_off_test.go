//go:build !race

package shard

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = false
