package shard

import (
	"fmt"
	"io"
	"os"

	"disasso/internal/core"
	"disasso/internal/dataset"
)

// The file-based shard planner mirrors core's in-memory planShards over
// spill files: the same preorder (with-branch first), the same mutate-and-
// undo ignore discipline and the same core.ShardCut decisions, so for equal
// options both planners cut the split tree at identical nodes and the
// concatenated per-shard outputs are byte-identical to the in-memory path.

// plan recursively routes the root spill file into shard files. counts is
// the dense per-term support of the whole stream (from pass 1); exclude the
// sensitive split exclusions.
func (e *engine) plan(counts []int32, exclude []bool) error {
	ignore := make([]bool, e.dom.Len())
	copy(ignore, exclude)
	root := fileShard{path: e.spill.f.Name(), n: e.numRecords}
	return e.planNode(root, counts, ignore, nil)
}

// planNode decides one split-tree node. counts may be nil for a node whose
// supports were not retained; it is then recounted from the file. The
// caller cedes ownership of counts. ignore is mutated for the with-subtree
// and restored afterwards; path tracks the split terms consumed so far,
// snapshotted into emitted shards.
func (e *engine) planNode(node fileShard, counts []int32, ignore []bool, path []int32) error {
	if counts == nil {
		var err error
		if counts, err = e.countFile(node); err != nil {
			return err
		}
	}
	a, _, split := core.ShardCut(node.n, counts, ignore, e.copts.MaxShardRecords, e.copts.K)
	if !split {
		node.pathTerms = append([]int32(nil), path...)
		e.shards = append(e.shards, node)
		return nil
	}
	with, without, withCounts, err := e.route(node, a)
	if err != nil {
		return err
	}
	os.Remove(node.path)

	// The without side's supports are the parent's minus the with side's
	// (every occurrence lands on exactly one side), so they come for free by
	// in-place subtraction — no recount pass. The array must survive the
	// with-recursion, so the hold is budgeted: past the cap it is dropped
	// and the without side recounts from its file when reached. On the
	// common lopsided-split chains the with-subtree is a leaf that returns
	// immediately, so only one level's counts are ever held.
	woCounts := counts
	countBytes := int64(len(counts)) * 4
	if e.heldCountBytes+countBytes > e.budget/4 {
		woCounts = nil
	} else {
		for t, c := range withCounts {
			woCounts[t] -= c
		}
	}
	counts = nil

	// With-subtree first (preorder), under ignore[a]; the without side keeps
	// the parent's ignore set, exactly like horPartN.
	ignore[a] = true
	if woCounts != nil {
		e.heldCountBytes += countBytes
	}
	err = e.planNode(with, withCounts, ignore, append(path, a))
	if woCounts != nil {
		e.heldCountBytes -= countBytes
	}
	if err != nil {
		return err
	}
	ignore[a] = false
	return e.planNode(without, woCounts, ignore, path)
}

// countFile computes a node's dense per-term supports in one streaming pass.
func (e *engine) countFile(node fileShard) ([]int32, error) {
	f, err := os.Open(node.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	counts := make([]int32, e.dom.Len())
	rr := dataset.NewBinaryRecordReader(f)
	var buf dataset.Record
	for {
		rec, err := rr.Next(buf)
		if err == io.EOF {
			return counts, nil
		}
		if err != nil {
			return nil, fmt.Errorf("shard: count %s: %w", node.path, err)
		}
		for _, t := range rec {
			counts[t]++
		}
		buf = rec
	}
}

// route splits a node's file on dense term a: records containing a stream to
// the with-file, the rest to the without-file, preserving order on both
// sides. The with-side supports are counted during the pass (they steer the
// immediate with-recursion); the without side is recounted lazily if needed.
// Records of the root file (original terms) are remapped to dense ids here,
// so every routed file holds dense records.
func (e *engine) route(node fileShard, a int32) (with, without fileShard, withCounts []int32, err error) {
	f, err := os.Open(node.path)
	if err != nil {
		return with, without, nil, err
	}
	defer f.Close()

	withPath, woPath := e.tmpPath("with"), e.tmpPath("wo")
	wf, err := os.Create(withPath)
	if err != nil {
		return with, without, nil, err
	}
	defer wf.Close()
	wof, err := os.Create(woPath)
	if err != nil {
		return with, without, nil, err
	}
	defer wof.Close()

	wcw := &countingWriter{w: wf}
	wocw := &countingWriter{w: wof}
	ww := dataset.NewBinaryRecordWriter(wcw)
	wow := dataset.NewBinaryRecordWriter(wocw)
	withCounts = make([]int32, e.dom.Len())
	with = fileShard{path: withPath, dense: true}
	without = fileShard{path: woPath, dense: true}

	rr := dataset.NewBinaryRecordReader(f)
	var buf, denseBuf dataset.Record
	for {
		rec, rerr := rr.Next(buf)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return with, without, nil, fmt.Errorf("shard: route %s: %w", node.path, rerr)
		}
		buf = rec
		if !node.dense {
			denseBuf = e.remap(rec, denseBuf[:0])
			rec = denseBuf
		}
		if rec.Contains(dataset.Term(a)) {
			for _, t := range rec {
				withCounts[t]++
			}
			with.n++
			err = ww.Write(rec)
		} else {
			without.n++
			err = wow.Write(rec)
		}
		if err != nil {
			return with, without, nil, fmt.Errorf("shard: route %s: %w", node.path, err)
		}
	}
	if err := ww.Flush(); err != nil {
		return with, without, nil, err
	}
	if err := wow.Flush(); err != nil {
		return with, without, nil, err
	}
	e.spillBytes.Add(wcw.n + wocw.n)
	if err := wf.Close(); err != nil {
		return with, without, nil, err
	}
	return with, without, withCounts, wof.Close()
}

// remap rewrites a record from original terms to dense ids into dst.
func (e *engine) remap(rec dataset.Record, dst dataset.Record) dataset.Record {
	for _, t := range rec {
		id, ok := e.dom.ID(t)
		if !ok {
			panic("shard: spilled term outside domain")
		}
		dst = append(dst, dataset.Term(id))
	}
	return dst
}

// writeJSONBody stages one shard's clusters in the JSON format: every
// cluster prefixed by the ",\n    " element separator (assembly strips the
// leading comma of the very first cluster overall).
func writeJSONBody(w io.Writer, nodes []*core.ClusterNode) error {
	for _, n := range nodes {
		body, err := core.MarshalClusterJSON(n)
		if err != nil {
			return err
		}
		if _, err := io.WriteString(w, ",\n    "); err != nil {
			return err
		}
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// assembleJSON stitches the staged JSON bodies behind the WriteJSON header,
// reproducing its bytes exactly (the envelope pieces come from the same
// core.WriteJSONHeader/WriteJSONTrailer every JSON path shares).
func (e *engine) assembleJSON(w io.Writer) error {
	if err := core.WriteJSONHeader(w, e.copts.K, e.copts.M); err != nil {
		return err
	}
	total := 0
	for i := range e.shards {
		total += e.shards[i].clusters
	}
	if total == 0 {
		return core.WriteJSONTrailer(w, 0)
	}
	if _, err := io.WriteString(w, "["); err != nil {
		return err
	}
	first := true
	for i := range e.shards {
		if e.shards[i].clusters == 0 {
			os.Remove(e.shards[i].bodyPath)
			continue
		}
		f, err := os.Open(e.shards[i].bodyPath)
		if err != nil {
			return err
		}
		if first {
			// Drop the first cluster's leading comma: "[\n    {...".
			if _, err := f.Seek(1, io.SeekStart); err != nil {
				f.Close()
				return err
			}
			first = false
		}
		_, err = io.Copy(w, f)
		f.Close()
		if err != nil {
			return err
		}
		os.Remove(e.shards[i].bodyPath)
	}
	return core.WriteJSONTrailer(w, total)
}
