//go:build race

package shard

// raceEnabled reports that the race detector is instrumenting this build;
// the bounded-memory guard skips, since instrumentation multiplies the heap.
const raceEnabled = true
